// Package contingency implements contingency tables and Patefield's AS 159
// algorithm for sampling random r×c tables with fixed marginals.
//
// Section 5 of the paper replaces the naive permutation test — which
// re-shuffles the whole database for every replicate — with sampling from
// the distribution of contingency tables with fixed marginals: "randomly
// shuffling data only changes the entries of a contingency table, leaving
// all marginal frequencies unchanged". Patefield's algorithm (AS 159, 1981)
// draws such tables with exactly the probability that random shuffling
// would, at a cost proportional to the table dimensions rather than the
// data size.
package contingency

import (
	"fmt"
	"math"
	"math/rand"

	"hypdb/internal/stats"
)

// Table2 is a two-way r×c contingency table of non-negative counts with
// maintained marginals.
type Table2 struct {
	R, C      int
	counts    []int // row-major
	rowTotals []int
	colTotals []int
	total     int
}

// NewTable2 creates an all-zero r×c table.
func NewTable2(r, c int) (*Table2, error) {
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("contingency: invalid shape %dx%d", r, c)
	}
	return &Table2{
		R:         r,
		C:         c,
		counts:    make([]int, r*c),
		rowTotals: make([]int, r),
		colTotals: make([]int, c),
	}, nil
}

// FromCodes tabulates two parallel code vectors into a cardX×cardY table.
func FromCodes(x, y []int32, cardX, cardY int) (*Table2, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("contingency: code vectors of different length %d vs %d", len(x), len(y))
	}
	t, err := NewTable2(cardX, cardY)
	if err != nil {
		return nil, err
	}
	for i := range x {
		if x[i] < 0 || int(x[i]) >= cardX || y[i] < 0 || int(y[i]) >= cardY {
			return nil, fmt.Errorf("contingency: code out of range at row %d: (%d,%d)", i, x[i], y[i])
		}
		t.Add(int(x[i]), int(y[i]), 1)
	}
	return t, nil
}

// FromCodesRows tabulates only the given row indices of x and y.
func FromCodesRows(x, y []int32, rows []int, cardX, cardY int) (*Table2, error) {
	t, err := NewTable2(cardX, cardY)
	if err != nil {
		return nil, err
	}
	if err := t.TabulateRows(x, y, rows); err != nil {
		return nil, err
	}
	return t, nil
}

// Reset zeroes all cells and marginals, keeping the shape — so scratch
// tables can be re-tabulated without reallocation.
func (t *Table2) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
	for i := range t.rowTotals {
		t.rowTotals[i] = 0
	}
	for j := range t.colTotals {
		t.colTotals[j] = 0
	}
	t.total = 0
}

// TabulateRows resets t and re-tallies the given row indices of two
// parallel code vectors — FromCodesRows without the per-call allocation,
// for hot loops (the naive shuffle test re-tabulates every group on every
// permutation replicate).
func (t *Table2) TabulateRows(x, y []int32, rows []int) error {
	if len(x) != len(y) {
		return fmt.Errorf("contingency: code vectors of different length %d vs %d", len(x), len(y))
	}
	t.Reset()
	for _, i := range rows {
		if i < 0 || i >= len(x) {
			return fmt.Errorf("contingency: row index %d out of range", i)
		}
		xi, yi := x[i], y[i]
		if xi < 0 || int(xi) >= t.R || yi < 0 || int(yi) >= t.C {
			return fmt.Errorf("contingency: code out of range at row %d: (%d,%d)", i, xi, yi)
		}
		t.counts[int(xi)*t.C+int(yi)]++
		t.rowTotals[xi]++
		t.colTotals[yi]++
		t.total++
	}
	return nil
}

// Add adds n (possibly negative, e.g. when re-binning) to cell (i,j).
func (t *Table2) Add(i, j, n int) {
	t.counts[i*t.C+j] += n
	t.rowTotals[i] += n
	t.colTotals[j] += n
	t.total += n
}

// Set overwrites cell (i,j), maintaining marginals.
func (t *Table2) Set(i, j, n int) {
	old := t.counts[i*t.C+j]
	t.Add(i, j, n-old)
}

// At returns the count in cell (i,j).
func (t *Table2) At(i, j int) int { return t.counts[i*t.C+j] }

// Total returns the grand total n__.
func (t *Table2) Total() int { return t.total }

// RowTotals returns the row marginals n_i_. Callers must not mutate.
func (t *Table2) RowTotals() []int { return t.rowTotals }

// ColTotals returns the column marginals n__j. Callers must not mutate.
func (t *Table2) ColTotals() []int { return t.colTotals }

// Clone deep-copies the table.
func (t *Table2) Clone() *Table2 {
	out := &Table2{
		R: t.R, C: t.C, total: t.total,
		counts:    append([]int(nil), t.counts...),
		rowTotals: append([]int(nil), t.rowTotals...),
		colTotals: append([]int(nil), t.colTotals...),
	}
	return out
}

// MI estimates the mutual information (in nats) of the empirical joint
// distribution the table describes.
func (t *Table2) MI(est stats.Estimator) float64 {
	if t.total == 0 {
		return 0
	}
	hx := stats.EntropyCounts(t.rowTotals, t.total, est)
	hy := stats.EntropyCounts(t.colTotals, t.total, est)
	hxy := stats.EntropyCounts(t.counts, t.total, est)
	return hx + hy - hxy
}

// EntropyRows returns the entropy of the row variable's marginal.
func (t *Table2) EntropyRows(est stats.Estimator) float64 {
	return stats.EntropyCounts(t.rowTotals, t.total, est)
}

// EntropyCols returns the entropy of the column variable's marginal.
func (t *Table2) EntropyCols(est stats.Estimator) float64 {
	return stats.EntropyCounts(t.colTotals, t.total, est)
}

// DegreesOfFreedom returns (r'−1)(c'−1) where r' and c' count rows/columns
// with non-zero marginals — the degrees of freedom of an independence test
// on this table.
func (t *Table2) DegreesOfFreedom() int {
	r, c := 0, 0
	for _, v := range t.rowTotals {
		if v > 0 {
			r++
		}
	}
	for _, v := range t.colTotals {
		if v > 0 {
			c++
		}
	}
	if r < 2 || c < 2 {
		return 0
	}
	return (r - 1) * (c - 1)
}

// Sampler draws random tables with fixed marginals using Patefield's
// algorithm (Applied Statistics 30(1), 1981, algorithm AS 159), matching
// the distribution induced by randomly shuffling one column of the data.
type Sampler struct {
	rowTotals []int
	colTotals []int
	total     int
	logFact   []float64 // logFact[k] = ln(k!)
}

// NewSampler validates the marginals and precomputes log-factorials.
func NewSampler(rowTotals, colTotals []int) (*Sampler, error) {
	if len(rowTotals) == 0 || len(colTotals) == 0 {
		return nil, fmt.Errorf("contingency: sampler needs non-empty marginals")
	}
	sumR, sumC := 0, 0
	for _, v := range rowTotals {
		if v < 0 {
			return nil, fmt.Errorf("contingency: negative row total %d", v)
		}
		sumR += v
	}
	for _, v := range colTotals {
		if v < 0 {
			return nil, fmt.Errorf("contingency: negative column total %d", v)
		}
		sumC += v
	}
	if sumR != sumC {
		return nil, fmt.Errorf("contingency: marginal sums disagree (%d vs %d)", sumR, sumC)
	}
	if sumR == 0 {
		return nil, fmt.Errorf("contingency: empty table")
	}
	s := &Sampler{
		rowTotals: append([]int(nil), rowTotals...),
		colTotals: append([]int(nil), colTotals...),
		total:     sumR,
		logFact:   make([]float64, sumR+1),
	}
	for k := 2; k <= sumR; k++ {
		lg, _ := math.Lgamma(float64(k) + 1)
		s.logFact[k] = lg
	}
	return s, nil
}

// NewSamplerFromTable builds a sampler with the marginals of t.
func NewSamplerFromTable(t *Table2) (*Sampler, error) {
	return NewSampler(t.rowTotals, t.colTotals)
}

// Sample draws one random table with the sampler's marginals into dst,
// which must have matching shape. The draw consumes rng and is exact: the
// table's probability equals that of obtaining it by randomly permuting the
// column variable against the row variable.
func (s *Sampler) Sample(rng *rand.Rand, dst *Table2) error {
	nr, nc := len(s.rowTotals), len(s.colTotals)
	if dst.R != nr || dst.C != nc {
		return fmt.Errorf("contingency: destination shape %dx%d, want %dx%d", dst.R, dst.C, nr, nc)
	}
	// Reset dst.
	for i := range dst.counts {
		dst.counts[i] = 0
	}
	for i := range dst.rowTotals {
		dst.rowTotals[i] = 0
	}
	for j := range dst.colTotals {
		dst.colTotals[j] = 0
	}
	dst.total = 0

	lf := s.logFact
	jwork := append([]int(nil), s.colTotals[:nc-1]...)
	jc := s.total
	for l := 0; l < nr-1; l++ {
		ia := s.rowTotals[l] // remaining count in this row
		ic := jc             // remaining grand total
		jc -= ia
		for m := 0; m < nc-1; m++ {
			id := jwork[m] // remaining count in this column
			ie := ic
			ic -= id
			ib := ie - ia
			ii := ib - id
			if ie == 0 {
				// Nothing left to allocate: the rest of the row is zero.
				ia = 0
				break
			}
			nlm, err := s.sampleCell(rng, ia, ib, ic, id, ie, ii, lf)
			if err != nil {
				return err
			}
			if nlm > 0 {
				dst.Add(l, m, nlm)
			}
			ia -= nlm
			jwork[m] -= nlm
		}
		if ia > 0 {
			dst.Add(l, nc-1, ia) // last column takes the row remainder
		}
	}
	// Last row takes the column remainders.
	for m := 0; m < nc-1; m++ {
		if jwork[m] > 0 {
			dst.Add(nr-1, m, jwork[m])
		}
	}
	last := s.rowTotals[nr-1]
	for m := 0; m < nc-1; m++ {
		last -= jwork[m]
	}
	if last < 0 {
		return fmt.Errorf("contingency: internal error, negative remainder %d", last)
	}
	if last > 0 {
		dst.Add(nr-1, nc-1, last)
	}
	return nil
}

// sampleCell draws one cell value from the conditional (hypergeometric)
// distribution given the remaining marginals, per AS 159: start at the
// conditional mode and walk outward accumulating probability mass until the
// uniform draw is crossed.
func (s *Sampler) sampleCell(rng *rand.Rand, ia, ib, ic, id, ie, ii int, lf []float64) (int, error) {
	lo := ia + id - ie // max(0, lo) is the support minimum
	if lo < 0 {
		lo = 0
	}
	hi := ia
	if id < hi {
		hi = id
	}
	if lo == hi {
		return lo, nil // support is a single point
	}
	dummy := rng.Float64()
	for iter := 0; iter < 10000; iter++ {
		nlm := int(float64(ia)*float64(id)/float64(ie) + 0.5)
		if nlm < lo {
			nlm = lo
		}
		if nlm > hi {
			nlm = hi
		}
		x := math.Exp(lf[ia] + lf[ib] + lf[ic] + lf[id] -
			lf[ie] - lf[nlm] - lf[id-nlm] - lf[ia-nlm] - lf[ii+nlm])
		if x >= dummy {
			return nlm, nil
		}
		sumprb := x
		y := x
		nll := nlm
		lsp := false
		for !lsp {
			// Walk up from the mode.
			j := (id - nlm) * (ia - nlm)
			lsp = j == 0
			if !lsp {
				nlm++
				x = x * float64(j) / (float64(nlm) * float64(ii+nlm))
				sumprb += x
				if sumprb >= dummy {
					return nlm, nil
				}
			}
			// Walk down from the mode, alternating with the up-walk while
			// both directions remain.
			lsm := false
			for !lsm {
				j2 := nll * (ii + nll)
				lsm = j2 == 0
				if !lsm {
					nll--
					y = y * float64(j2) / (float64(id-nll) * float64(ia-nll))
					sumprb += y
					if sumprb >= dummy {
						return nll, nil
					}
					if !lsp {
						break // alternate back to the up-walk
					}
				}
			}
		}
		// Both walks exhausted without crossing (floating-point slack):
		// rescale the draw into the accumulated mass and retry.
		dummy = sumprb * rng.Float64()
	}
	return 0, fmt.Errorf("contingency: Patefield cell sampling failed to converge")
}
