package independence

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/dataset"
	"hypdb/internal/stats"
	"hypdb/source"
)

// MaterializedProvider implements the "materializing contingency tables"
// optimization of Sec 6: the joint counts over a fixed attribute superset
// are computed once (one group-by count query against the backend), and
// every entropy or distinct-count request over a subset is answered by
// marginalizing the materialized table, which is much smaller than the data
// because the attributes involved in one CD phase are few and correlated.
//
// When the superset's cell space fits the dense budget the table is held in
// the flat mixed-radix dataset.DenseCounts form and subsets are derived with
// its O(cells) projection kernel; wider supersets fall back to sparse
// (key-coded map) storage marginalized with dataset.ProjectKeys.
type MaterializedProvider struct {
	attrs   []string
	attrPos map[string]int
	n       int
	est     stats.Estimator

	// dense is the materialized joint in flat form (nil on the sparse
	// path); denseMarginals caches derived subset views by mask.
	dense          *dataset.DenseCounts
	denseMarginals map[uint64]*dataset.DenseCounts

	// counts/marginals are the sparse fallback.
	counts    map[dataset.GroupKey]int
	marginals map[uint64]map[dataset.GroupKey]int
}

// NewMaterializedProvider issues one count query over the superset attrs.
// budget bounds the dense cell space (≤ 0 meaning dataset.DefaultCellBudget);
// above it the provider stores the joint sparsely.
func NewMaterializedProvider(ctx context.Context, rel source.Relation, attrs []string, est stats.Estimator, budget int) (*MaterializedProvider, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("independence: materialization needs at least one attribute")
	}
	if len(attrs) > 62 {
		return nil, fmt.Errorf("independence: materialization over %d attributes", len(attrs))
	}
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	p := &MaterializedProvider{
		attrs:   append([]string(nil), attrs...),
		attrPos: make(map[string]int, len(attrs)),
		n:       n,
		est:     est,
	}
	for i, a := range attrs {
		if _, dup := p.attrPos[a]; dup {
			return nil, fmt.Errorf("independence: duplicate attribute %q", a)
		}
		p.attrPos[a] = i
	}
	dense, err := source.Dense(ctx, rel, attrs, nil, budget)
	if err != nil {
		return nil, err
	}
	if dense != nil {
		p.dense = dense
		p.denseMarginals = make(map[uint64]*dataset.DenseCounts)
		return p, nil
	}
	counts, err := rel.Counts(ctx, attrs, nil)
	if err != nil {
		return nil, err
	}
	p.counts = make(map[dataset.GroupKey]int, len(counts))
	for k, v := range counts {
		p.counts[k] = v
	}
	p.marginals = map[uint64]map[dataset.GroupKey]int{
		uint64(1)<<len(attrs) - 1: p.counts,
	}
	return p, nil
}

// Covers reports whether the provider can answer for the attribute set.
func (p *MaterializedProvider) Covers(attrs []string) bool {
	_, ok := p.mask(attrs)
	return ok
}

func (p *MaterializedProvider) mask(attrs []string) (uint64, bool) {
	var m uint64
	for _, a := range attrs {
		pos, ok := p.attrPos[a]
		if !ok {
			return 0, false
		}
		m |= 1 << pos
	}
	return m, true
}

// keptFields lists the attribute positions of mask in ascending order.
func (p *MaterializedProvider) keptFields(mask uint64) []int {
	keep := make([]int, 0, len(p.attrs))
	for i := range p.attrs {
		if mask&(1<<i) != 0 {
			keep = append(keep, i)
		}
	}
	return keep
}

// denseSubset derives (and caches) the dense marginal of the subset given
// by mask with one O(cells) projection.
func (p *MaterializedProvider) denseSubset(mask uint64) (*dataset.DenseCounts, error) {
	if v, ok := p.denseMarginals[mask]; ok {
		return v, nil
	}
	out, err := p.dense.Project(p.keptFields(mask))
	if err != nil {
		return nil, err
	}
	p.denseMarginals[mask] = out
	return out, nil
}

// subsetCounts derives (and caches) the sparse histogram of the subset
// given by mask by marginalizing the materialized keys.
func (p *MaterializedProvider) subsetCounts(mask uint64) map[dataset.GroupKey]int {
	if v, ok := p.marginals[mask]; ok {
		return v
	}
	out := dataset.ProjectKeys(p.counts, p.keptFields(mask))
	p.marginals[mask] = out
	return out
}

// JointEntropy implements EntropyProvider; the attribute set must be
// covered by the materialized superset.
func (p *MaterializedProvider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	m, ok := p.mask(attrs)
	if !ok {
		return 0, fmt.Errorf("independence: attributes %v not covered by materialization over %v",
			missing(attrs, p.attrPos), p.attrs)
	}
	if p.dense != nil {
		view, err := p.denseSubset(m)
		if err != nil {
			return 0, err
		}
		return stats.EntropyCountsStable(view.Cells, p.n, p.est), nil
	}
	return stats.EntropyCountsMap(p.subsetCounts(m), p.n, p.est), nil
}

// DistinctCount implements EntropyProvider.
func (p *MaterializedProvider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	m, ok := p.mask(attrs)
	if !ok {
		return 0, fmt.Errorf("independence: attributes %v not covered by materialization over %v",
			missing(attrs, p.attrPos), p.attrs)
	}
	if p.dense != nil {
		view, err := p.denseSubset(m)
		if err != nil {
			return 0, err
		}
		return view.NonZero(), nil
	}
	return len(p.subsetCounts(m)), nil
}

// NumRows implements EntropyProvider.
func (p *MaterializedProvider) NumRows() int { return p.n }

func missing(attrs []string, have map[string]int) []string {
	var out []string
	for _, a := range attrs {
		if _, ok := have[a]; !ok {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
