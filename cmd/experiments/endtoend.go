package main

import (
	"context"
	"fmt"

	"hypdb"
	"hypdb/internal/datagen"
	"hypdb/internal/dataset"
	"hypdb/internal/query"
	"hypdb/source"
	"hypdb/source/mem"
)

func init() {
	register("fig1", "Flight Simpson's paradox: biased query, explanations, refined answers", runFig1)
	register("table1", "runtime of detection / explanation / resolution per dataset", runTable1)
	register("fig3", "Adult gender→income and Staples income→price reports", runFig3)
	register("fig4", "Berkeley gender→admission and Cancer lung-cancer→accident reports", runFig4)
	register("listing3", "rewritten SQL of the Fig 1 query", runListing3)
}

func flightRowsFor(cfg runConfig) int {
	if cfg.quick {
		return 12000
	}
	return datagen.FlightRows
}

func runFig1(cfg runConfig) error {
	tab, err := datagen.Flight(flightRowsFor(cfg), cfg.seed)
	if err != nil {
		return err
	}
	q := datagen.FlightQuery()
	rep, err := hypdb.Open(tab).Analyze(context.Background(), q, analysisOpts(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println(rep)

	// Panels (a)-(c) of Fig 1: per-airport delay and the carrier/airport
	// distributions behind the reversal.
	section("(a) carrier delay by airport (UA better everywhere)")
	perAirport := q
	perAirport.Groupings = []string{"Airport"}
	ans, err := query.Run(context.Background(), mem.New(tab), perAirport)
	if err != nil {
		return err
	}
	for _, r := range ans.Rows {
		row("%-3s %-4s avg(Delayed)=%.3f (n=%d)", r.Context[0], r.Treatment, r.Avgs[0], r.Count)
	}

	section("(b) airport distribution by carrier")
	viewRel, err := q.View(context.Background(), mem.New(tab))
	if err != nil {
		return err
	}
	view, err := source.Materialize(context.Background(), viewRel)
	if err != nil {
		return err
	}
	if err := printConditional(view, "Carrier", "Airport"); err != nil {
		return err
	}
	section("(c) delay rate by airport")
	groups, enc, err := view.GroupBy("Airport")
	if err != nil {
		return err
	}
	delays, err := view.Float("Delayed")
	if err != nil {
		return err
	}
	for _, g := range groups {
		sum := 0.0
		for _, i := range g.Rows {
			sum += delays[i]
		}
		row("%s: %.3f", enc.Decode(g.Key)[0], sum/float64(len(g.Rows)))
	}
	return nil
}

// printConditional prints P(b | a) rows.
func printConditional(view *dataset.Table, a, b string) error {
	groups, enc, err := view.GroupBy(a, b)
	if err != nil {
		return err
	}
	totals := map[string]int{}
	type cell struct {
		a, b string
		n    int
	}
	var cells []cell
	for _, g := range groups {
		d := enc.Decode(g.Key)
		av, bv := d[0], d[1]
		totals[av] += len(g.Rows)
		cells = append(cells, cell{av, bv, len(g.Rows)})
	}
	for _, c := range cells {
		row("P(%s | %s) = %.3f", c.b, c.a, float64(c.n)/float64(totals[c.a]))
	}
	return nil
}

// analysisOpts is the shared experiment configuration in the public API's
// functional-option form.
func analysisOpts(cfg runConfig) []hypdb.Option {
	opts := []hypdb.Option{hypdb.WithSeed(cfg.seed), hypdb.WithParallel(true)}
	if cfg.quick {
		opts = append(opts, hypdb.WithPermutations(200))
	}
	return opts
}

func runTable1(cfg runConfig) error {
	type entry struct {
		name string
		gen  func() (*dataset.Table, error)
		q    query.Query
	}
	scale := func(n int) int {
		if cfg.quick {
			if n > 20000 {
				return 20000
			}
		}
		return n
	}
	entries := []entry{
		{"AdultData", func() (*dataset.Table, error) { return datagen.Adult(scale(datagen.AdultRows), cfg.seed) }, datagen.AdultQuery()},
		{"StaplesData", func() (*dataset.Table, error) { return datagen.Staples(scale(datagen.StaplesRows), cfg.seed) }, datagen.StaplesQuery()},
		{"BerkeleyData", func() (*dataset.Table, error) { return datagen.Berkeley(cfg.seed) }, datagen.BerkeleyQuery()},
		{"CancerData", func() (*dataset.Table, error) { return datagen.Cancer(datagen.CancerRows, cfg.seed) }, datagen.CancerQuery()},
		{"FlightData", func() (*dataset.Table, error) { return datagen.Flight(scale(datagen.FlightRows), cfg.seed) }, datagen.FlightQuery()},
	}
	row("%-14s %8s %8s %6s %6s %6s", "Dataset", "Cols", "Rows", "Det(s)", "Exp(s)", "Res(s)")
	for _, e := range entries {
		tab, err := e.gen()
		if err != nil {
			return err
		}
		rep, err := hypdb.Open(tab).Analyze(context.Background(), e.q, analysisOpts(cfg)...)
		if err != nil {
			return err
		}
		row("%-14s %8d %8d %6.2f %6.2f %6.2f",
			e.name, tab.NumCols(), tab.NumRows(),
			rep.Timing.Detect.Seconds(), rep.Timing.Explain.Seconds(), rep.Timing.Resolve.Seconds())
	}
	row("(paper, authors' testbed: Adult 65/<1/<1, Staples 5/<1/<1, Berkeley 2/<1/<1, Cancer <1/<1/<1, Flight 20/<1/<1)")
	return nil
}

func runFig3(cfg runConfig) error {
	section("AdultData: the effect of gender on income (paper Fig 3 top)")
	adultRows := datagen.AdultRows
	if cfg.quick {
		adultRows = 20000
	}
	adult, err := datagen.Adult(adultRows, cfg.seed)
	if err != nil {
		return err
	}
	rep, err := hypdb.Open(adult).Analyze(context.Background(), datagen.AdultQuery(), analysisOpts(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	row("(paper: SQL 0.11/0.30, total 0.23/0.25, direct 0.10/0.11; top resp. MaritalStatus 0.58, Education 0.13)")

	section("StaplesData: the effect of income on price (paper Fig 3 bottom)")
	staplesRows := datagen.StaplesRows
	if cfg.quick {
		staplesRows = 50000
	}
	staples, err := datagen.Staples(staplesRows, cfg.seed)
	if err != nil {
		return err
	}
	rep, err = hypdb.Open(staples).Analyze(context.Background(), datagen.StaplesQuery(), analysisOpts(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	row("(paper: SQL 0.06/0.05 diff p<0.001; direct diff 0 with p=1; Distance responsibility 1.0)")
	return nil
}

func runFig4(cfg runConfig) error {
	section("BerkeleyData: the effect of gender on admission (paper Fig 4 top)")
	berkeley, err := datagen.Berkeley(cfg.seed)
	if err != nil {
		return err
	}
	rep, err := hypdb.Open(berkeley).Analyze(context.Background(), datagen.BerkeleyQuery(), analysisOpts(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	row("(paper: SQL 0.30/0.46 diff 0.16 p<0.001; conditioned on Department the trend REVERSES, diff 0.05)")

	section("CancerData: the effect of lung cancer on car accidents (paper Fig 4 bottom)")
	cancer, err := datagen.Cancer(datagen.CancerRows, cfg.seed)
	if err != nil {
		return err
	}
	rep, err = hypdb.Open(cancer).Analyze(context.Background(), datagen.CancerQuery(), analysisOpts(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	row("(paper: SQL 0.60/0.77 diff 0.17; total 0.61/0.76 diff 0.14; direct diff 0.004 insignificant;")
	row(" mediator responsibilities Fatigue 0.91, Attention_Disorder 0.09 — ground truth: no direct edge)")
	return nil
}

func runListing3(cfg runConfig) error {
	q := datagen.FlightQuery()
	fmt.Println("Original (Listing 1):")
	fmt.Println(q.SQL())
	fmt.Println()
	fmt.Println("Rewritten (Listing 2/3):")
	fmt.Println(q.RewrittenSQL([]string{"Airport", "Year", "DayofMonth", "Month"}))
	return nil
}
