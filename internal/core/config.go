package core

import (
	"context"

	"hypdb/internal/cube"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source"
)

// TestMethod selects the conditional-independence test used throughout the
// pipeline — the knob varied across CD(χ²), CD(MIT) and CD(HyMIT) in the
// paper's experiments.
type TestMethod int

const (
	// HyMITMethod is the hybrid default (Sec 6): χ² when the sample is
	// large relative to the degrees of freedom, MIT with group sampling
	// otherwise.
	HyMITMethod TestMethod = iota
	// ChiSquaredMethod always uses the parametric G-test.
	ChiSquaredMethod
	// MITMethod always uses the full Monte-Carlo permutation test.
	MITMethod
	// MITSamplingMethod is MIT restricted to a weighted sample of
	// conditioning groups.
	MITSamplingMethod
)

// String implements fmt.Stringer.
func (m TestMethod) String() string {
	switch m {
	case ChiSquaredMethod:
		return "chi2"
	case MITMethod:
		return "mit"
	case MITSamplingMethod:
		return "mit-sampling"
	default:
		return "hymit"
	}
}

// Config parameterizes the HypDB pipeline. The zero value is the paper's
// default setup: HyMIT with α = 0.01, Miller-Madow entropies, 1000
// permutations, entropy caching and contingency-table materialization on.
type Config struct {
	// Method selects the independence test.
	Method TestMethod
	// Alpha is the significance level; zero means 0.01 (Sec 7.3).
	Alpha float64
	// Estimator selects the entropy estimator; MillerMadow (the zero value
	// is PlugIn, so DefaultEstimator applies when unset via defaulted()).
	Estimator stats.Estimator
	// EstimatorSet marks Estimator as explicitly chosen.
	EstimatorSet bool
	// Permutations for MIT-based tests; zero means 1000.
	Permutations int
	// SampleFactor for MIT group sampling; zero means the package default.
	SampleFactor float64
	// Beta for HyMIT; zero means 5.
	Beta float64
	// Seed drives all Monte-Carlo components.
	Seed int64
	// MaxCondSet caps conditioning-set sizes enumerated by the CD
	// algorithm; zero means no cap.
	MaxCondSet int
	// MaxBoundary caps Markov-boundary growth; zero means no cap.
	MaxBoundary int
	// DisableEntropyCache turns off the Sec 6 entropy cache.
	DisableEntropyCache bool
	// DisableMaterialization turns off the Sec 6 contingency-table
	// materialization used in the CD phases.
	DisableMaterialization bool
	// Cube optionally supplies a pre-computed OLAP data cube; when it
	// covers a test's attributes it answers entropies directly (Sec 6).
	Cube *cube.Cube
	// CellBudget bounds the cell space of the large dense tabulations the
	// analysis materializes (the CD phases' contingency-table
	// materialization, the session cache's closure priming); zero means
	// dataset.DefaultCellBudget. Above the budget those paths fall back to
	// sparse counting or skip priming.
	CellBudget int
	// Parallel fans permutation replicates out over cores.
	Parallel bool
	// SkipPrime disables the pipeline's own count-cache priming (the
	// one-closure-per-request fetches of DiscoverCovariates and Audit).
	// The session facade sets it after a batch planner has already primed
	// the cache with a cuboid frontier covering the request's demands —
	// per-request primes would either be redundant cache hits or, worse,
	// re-fetch closures the planner deliberately split to stay within the
	// cell budget. Purely a cost knob: counts are identical either way.
	SkipPrime bool
	// DisableFallback turns off the Sec 4 fallback (Z = MB(T) − outcomes)
	// when CD finds no parents. Used by the Fig 5 parent-recovery
	// experiments, which score the strict CD output.
	DisableFallback bool
	// Prepare configures logical-dependency dropping.
	Prepare PrepareConfig
}

func (c Config) alpha() float64 {
	if c.Alpha <= 0 {
		return independence.DefaultAlpha
	}
	return c.Alpha
}

func (c Config) estimator() stats.Estimator {
	if !c.EstimatorSet {
		return stats.MillerMadow
	}
	return c.Estimator
}

func (c Config) permutations() int {
	if c.Permutations <= 0 {
		return independence.DefaultPermutations
	}
	return c.Permutations
}

// provider builds the entropy provider for χ²-backed tests on view.
// attrsHint, when non-nil and materialization is enabled, requests a
// materialized joint over that superset.
func (c Config) provider(ctx context.Context, view source.Relation, attrsHint []string) (independence.EntropyProvider, error) {
	var p independence.EntropyProvider
	if c.Cube != nil && (attrsHint == nil || c.Cube.Covers(attrsHint)) {
		n, err := view.NumRows(ctx)
		if err != nil {
			return nil, err
		}
		if c.Cube.NumRows() == n {
			fallback, err := independence.NewRelationProvider(ctx, view, c.estimator())
			if err != nil {
				return nil, err
			}
			p = cube.NewProvider(c.Cube, fallback, c.estimator())
		}
	}
	if p == nil && !c.DisableMaterialization && len(attrsHint) > 0 && len(attrsHint) <= 62 {
		mp, err := independence.NewMaterializedProvider(ctx, view, attrsHint, c.estimator(), c.CellBudget)
		if err != nil {
			return nil, err
		}
		p = mp
	}
	if p == nil {
		rp, err := independence.NewRelationProvider(ctx, view, c.estimator())
		if err != nil {
			return nil, err
		}
		p = rp
	}
	if !c.DisableEntropyCache {
		p = independence.NewCachedProvider(p)
	}
	return p, nil
}

// tester builds the independence tester for view; attrsHint optionally
// bounds the attributes tests will touch (enabling materialization).
func (c Config) tester(ctx context.Context, view source.Relation, attrsHint []string) (independence.Tester, error) {
	switch c.Method {
	case ChiSquaredMethod:
		p, err := c.provider(ctx, view, attrsHint)
		if err != nil {
			return nil, err
		}
		return independence.ChiSquare{Provider: p, Est: c.estimator()}, nil
	case MITMethod:
		return independence.MIT{
			Permutations: c.permutations(),
			Est:          c.estimator(),
			Seed:         c.Seed,
			Parallel:     c.Parallel,
		}, nil
	case MITSamplingMethod:
		return independence.MIT{
			Permutations: c.permutations(),
			Est:          c.estimator(),
			Seed:         c.Seed,
			SampleGroups: true,
			SampleFactor: c.SampleFactor,
			Parallel:     c.Parallel,
		}, nil
	default:
		p, err := c.provider(ctx, view, attrsHint)
		if err != nil {
			return nil, err
		}
		return independence.HyMIT{
			Beta:         c.Beta,
			Permutations: c.permutations(),
			SampleFactor: c.SampleFactor,
			Seed:         c.Seed,
			Parallel:     c.Parallel,
			Est:          c.estimator(),
			Provider:     p,
		}, nil
	}
}
