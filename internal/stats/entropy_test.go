package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyCountsUniform(t *testing.T) {
	// Uniform over k values: H = ln k.
	for _, k := range []int{2, 4, 8, 16} {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 10
		}
		h := EntropyCounts(counts, 10*k, PlugIn)
		if !almostEqual(h, math.Log(float64(k)), 1e-12) {
			t.Errorf("k=%d: H = %v, want ln(k)=%v", k, h, math.Log(float64(k)))
		}
	}
}

func TestEntropyCountsDegenerate(t *testing.T) {
	if h := EntropyCounts([]int{10}, 10, PlugIn); h != 0 {
		t.Errorf("constant variable H = %v, want 0", h)
	}
	if h := EntropyCounts([]int{10}, 10, MillerMadow); h != 0 {
		t.Errorf("constant variable Miller-Madow H = %v, want 0 (m=1, no correction)", h)
	}
	if h := EntropyCounts(nil, 0, PlugIn); h != 0 {
		t.Errorf("empty H = %v, want 0", h)
	}
	if h := EntropyCounts([]int{0, 0, 5}, 5, PlugIn); h != 0 {
		t.Errorf("zero counts should be skipped; H = %v, want 0", h)
	}
}

func TestMillerMadowCorrection(t *testing.T) {
	counts := []int{3, 5, 2}
	n := 10
	plug := EntropyCounts(counts, n, PlugIn)
	mm := EntropyCounts(counts, n, MillerMadow)
	want := plug + float64(3-1)/(2*float64(n))
	if !almostEqual(mm, want, 1e-12) {
		t.Errorf("Miller-Madow = %v, want plug-in + (m-1)/2n = %v", mm, want)
	}
}

func TestMillerMadowReducesBias(t *testing.T) {
	// On small samples from a uniform distribution the plug-in estimator
	// underestimates H; Miller-Madow must be closer to the truth on average.
	rng := rand.New(rand.NewSource(42))
	k := 8
	truth := math.Log(float64(k))
	trials := 300
	sumPlug, sumMM := 0.0, 0.0
	for tr := 0; tr < trials; tr++ {
		counts := make([]int, k)
		for i := 0; i < 30; i++ {
			counts[rng.Intn(k)]++
		}
		sumPlug += EntropyCounts(counts, 30, PlugIn)
		sumMM += EntropyCounts(counts, 30, MillerMadow)
	}
	biasPlug := math.Abs(sumPlug/float64(trials) - truth)
	biasMM := math.Abs(sumMM/float64(trials) - truth)
	if biasMM >= biasPlug {
		t.Errorf("Miller-Madow bias %v not smaller than plug-in bias %v", biasMM, biasPlug)
	}
}

func TestEntropyCountsMapMatchesSlice(t *testing.T) {
	counts := map[string]int{"a": 3, "b": 5, "c": 2}
	slice := []int{3, 5, 2}
	for _, est := range []Estimator{PlugIn, MillerMadow} {
		hm := EntropyCountsMap(counts, 10, est)
		hs := EntropyCounts(slice, 10, est)
		if !almostEqual(hm, hs, 1e-15) {
			t.Errorf("%v: map %v != slice %v", est, hm, hs)
		}
	}
}

func TestEntropyProbs(t *testing.T) {
	h := EntropyProbs([]float64{0.5, 0.5})
	if !almostEqual(h, math.Log(2), 1e-12) {
		t.Errorf("H(fair coin) = %v, want ln 2", h)
	}
	if h := EntropyProbs([]float64{1, 0, 0}); h != 0 {
		t.Errorf("H(deterministic) = %v, want 0", h)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Perfectly balanced independent X,Y: plug-in MI must be exactly 0.
	var x, y []int32
	for i := int32(0); i < 2; i++ {
		for j := int32(0); j < 3; j++ {
			for r := 0; r < 10; r++ {
				x = append(x, i)
				y = append(y, j)
			}
		}
	}
	mi, err := MutualInformationCodes(x, y, 2, 3, PlugIn)
	if err != nil {
		t.Fatalf("MI: %v", err)
	}
	if !almostEqual(mi, 0, 1e-12) {
		t.Errorf("MI of independent data = %v, want 0", mi)
	}
}

func TestMutualInformationDeterministic(t *testing.T) {
	// Y = X: I(X;Y) = H(X).
	x := []int32{0, 0, 1, 1, 2, 2}
	mi, err := MutualInformationCodes(x, x, 3, 3, PlugIn)
	if err != nil {
		t.Fatalf("MI: %v", err)
	}
	hx := EntropyCodes(x, 3, PlugIn)
	if !almostEqual(mi, hx, 1e-12) {
		t.Errorf("I(X;X) = %v, want H(X) = %v", mi, hx)
	}
}

func TestJointEntropyLengthMismatch(t *testing.T) {
	if _, err := JointEntropyCodes([]int32{0, 1}, []int32{0}, PlugIn); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MutualInformationCodes([]int32{0, 1}, []int32{0}, 2, 2, PlugIn); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestConditionalMIIdentity(t *testing.T) {
	// Hand-built joint distribution over X,Y,Z (all binary); verify the
	// chain-rule identity against a direct computation.
	// P(z)=1/2; given z: X,Y dependent for z=0, independent for z=1.
	type cell struct{ x, y, z int32 }
	counts := map[cell]int{
		{0, 0, 0}: 40, {1, 1, 0}: 40, {0, 1, 0}: 10, {1, 0, 0}: 10,
		{0, 0, 1}: 25, {0, 1, 1}: 25, {1, 0, 1}: 25, {1, 1, 1}: 25,
	}
	var xs, ys, zs []int32
	for c, n := range counts {
		for i := 0; i < n; i++ {
			xs = append(xs, c.x)
			ys = append(ys, c.y)
			zs = append(zs, c.z)
		}
	}
	n := len(xs)
	hz := EntropyCodes(zs, 2, PlugIn)
	hxz, _ := JointEntropyCodes(xs, zs, PlugIn)
	hyz, _ := JointEntropyCodes(ys, zs, PlugIn)
	// Triple entropy via composite codes.
	triple := make([]int32, n)
	for i := range triple {
		triple[i] = xs[i]*4 + ys[i]*2 + zs[i]
	}
	hxyz := EntropyCodes(triple, 8, PlugIn)
	cmi := ConditionalMI(hxz, hyz, hxyz, hz)

	// Direct: I(X;Y|Z) = Σ_z P(z)·I(X;Y|Z=z).
	direct := 0.0
	for _, z := range []int32{0, 1} {
		var xz, yz []int32
		for i := range zs {
			if zs[i] == z {
				xz = append(xz, xs[i])
				yz = append(yz, ys[i])
			}
		}
		mi, _ := MutualInformationCodes(xz, yz, 2, 2, PlugIn)
		direct += float64(len(xz)) / float64(n) * mi
	}
	if !almostEqual(cmi, direct, 1e-12) {
		t.Errorf("chain-rule CMI %v != direct %v", cmi, direct)
	}
	if cmi <= 0 {
		t.Errorf("CMI = %v, want > 0 (X,Y dependent given Z=0)", cmi)
	}
}

// Property: plug-in entropy is within [0, ln m] and plug-in MI is
// non-negative and bounded by min(H(X), H(Y)) (within floating error).
func TestQuickEntropyAndMIBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(500)
		cx := 2 + r.Intn(6)
		cy := 2 + r.Intn(6)
		x := make([]int32, n)
		y := make([]int32, n)
		for i := range x {
			x[i] = int32(r.Intn(cx))
			// Correlate y with x half the time to explore both regimes.
			if r.Intn(2) == 0 {
				y[i] = x[i] % int32(cy)
			} else {
				y[i] = int32(r.Intn(cy))
			}
		}
		hx := EntropyCodes(x, cx, PlugIn)
		hy := EntropyCodes(y, cy, PlugIn)
		if hx < -1e-12 || hx > math.Log(float64(cx))+1e-12 {
			return false
		}
		mi, err := MutualInformationCodes(x, y, cx, cy, PlugIn)
		if err != nil {
			return false
		}
		if mi < -1e-9 {
			return false
		}
		bound := math.Min(hx, hy)
		return mi <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: submodularity-backed inequality used in footnote 1 of the paper:
// for Z in the conditioning scope, I(T;V) − I(T;V|Z) = I(T;Z) ≥ 0 when
// Z ⊆ V. We verify I(X;YZ) ≥ I(X;Y) (monotonicity of information in jointly
// measured variables) on random data with the plug-in estimator.
func TestQuickInformationMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(300)
		x := make([]int32, n)
		y := make([]int32, n)
		z := make([]int32, n)
		for i := range x {
			x[i] = int32(r.Intn(3))
			y[i] = int32(r.Intn(3))
			z[i] = int32(r.Intn(2))
		}
		// I(X;YZ) via composite YZ codes.
		yz := make([]int32, n)
		for i := range yz {
			yz[i] = y[i]*2 + z[i]
		}
		miXY, _ := MutualInformationCodes(x, y, 3, 3, PlugIn)
		miXYZ, _ := MutualInformationCodes(x, yz, 3, 6, PlugIn)
		return miXYZ >= miXY-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}
