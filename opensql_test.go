package hypdb_test

import (
	"context"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
	"hypdb/internal/memsql"
	"hypdb/source"
	"hypdb/source/mem"
)

// TestOpenSQLRunAndClose exercises the SQL-backed facade end to end: open,
// inspect the schema, execute a query, and release the handle (twice).
func TestOpenSQLRunAndClose(t *testing.T) {
	ctx := context.Background()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	memsql.Register("facade_berkeley", tab)
	defer memsql.Unregister("facade_berkeley")
	conn, err := memsql.Open("")
	if err != nil {
		t.Fatal(err)
	}
	db, err := hypdb.OpenSQL(ctx, conn, "facade_berkeley")
	if err != nil {
		t.Fatal(err)
	}

	if db.Table() != nil {
		t.Error("Table() should be nil for SQL-backed handles")
	}
	n, err := db.NumRows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != tab.NumRows() {
		t.Fatalf("NumRows = %d, want %d", n, tab.NumRows())
	}
	attrs, err := db.Attributes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != tab.NumCols() {
		t.Fatalf("Attributes = %v, want %d columns", attrs, tab.NumCols())
	}

	q := datagen.BerkeleyQuery()
	sqlAns, err := db.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	memAns, err := hypdb.Open(tab).Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlAns.Rows) != len(memAns.Rows) {
		t.Fatalf("answers differ in shape: %d vs %d rows", len(sqlAns.Rows), len(memAns.Rows))
	}
	for i := range memAns.Rows {
		sr, mr := sqlAns.Rows[i], memAns.Rows[i]
		if sr.Treatment != mr.Treatment || sr.Count != mr.Count {
			t.Fatalf("row %d: %+v vs %+v", i, sr, mr)
		}
		if diff := sr.Avgs[0] - mr.Avgs[0]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d avg: %v vs %v", i, sr.Avgs[0], mr.Avgs[0])
		}
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	// A query shape the per-handle count cache has not seen must hit the
	// closed database and fail. (Cached shapes keep answering — the memo
	// outlives the connection by design.)
	fresh := q
	fresh.Groupings = []string{"Department"}
	if _, err := db.Run(ctx, fresh); err == nil {
		t.Error("uncached Run succeeded after Close")
	}
}

// TestCloseIsNoOpForMemHandles pins the documented contract: in-memory
// handles close without error, repeatedly.
func TestCloseIsNoOpForMemHandles(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.Open(tab)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestAnalyzeCountsOnlyBackend proves the default pipeline is genuinely
// counts-only: a relation stripped of its Materializer capability still
// supports the full detect/explain/resolve run with identical conclusions.
func TestAnalyzeCountsOnlyBackend(t *testing.T) {
	ctx := context.Background()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	q := datagen.BerkeleyQuery()

	full, err := hypdb.Open(tab).Analyze(ctx, q, hypdb.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.OpenSource(source.CountsOnly(mem.New(tab)))
	co, err := db.Analyze(ctx, q, hypdb.WithSeed(1))
	if err != nil {
		t.Fatalf("Analyze on counts-only relation: %v", err)
	}
	if len(co.Mediators) != len(full.Mediators) {
		t.Fatalf("counts-only mediators %v, want %v", co.Mediators, full.Mediators)
	}
	for i := range full.Mediators {
		if co.Mediators[i] != full.Mediators[i] {
			t.Fatalf("counts-only mediators %v, want %v", co.Mediators, full.Mediators)
		}
	}
	if len(co.DirectComparisons) != len(full.DirectComparisons) {
		t.Fatalf("comparison shape differs: %d vs %d", len(co.DirectComparisons), len(full.DirectComparisons))
	}
}
