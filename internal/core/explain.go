package core

import (
	"fmt"
	"math"
	"sort"

	"hypdb/internal/dataset"
	"hypdb/internal/stats"
)

// Responsibility is a coarse-grained explanation entry (Def 3.3): one
// variable of V and its normalized share of the bias.
type Responsibility struct {
	Attr string
	// Rho is the degree of responsibility ρ_Z ∈ [0,1]; the V-members sum
	// to 1 when any bias exists.
	Rho float64
	// MI is the unnormalized numerator Î(T;Z|Γ).
	MI float64
}

// ExplainCoarse ranks the variables V by their degree of responsibility for
// the bias in the given context view. Per footnote 1 of the paper, the
// numerator I(T;V|Γ) − I(T;V|Z,Γ) collapses to I(T;Z|Γ) for Z ∈ V, which
// is how it is computed here. Estimates clamped at zero keep ρ within
// [0,1] under the Miller-Madow correction.
func ExplainCoarse(view *dataset.Table, treatment string, variables []string, cfg Config) ([]Responsibility, error) {
	if len(variables) == 0 {
		return nil, nil
	}
	tc, err := view.Column(treatment)
	if err != nil {
		return nil, err
	}
	out := make([]Responsibility, 0, len(variables))
	total := 0.0
	for _, v := range variables {
		vc, err := view.Column(v)
		if err != nil {
			return nil, err
		}
		mi, err := stats.MutualInformationCodes(tc.Codes(), vc.Codes(), tc.Card(), vc.Card(), cfg.estimator())
		if err != nil {
			return nil, err
		}
		if mi < 0 {
			mi = 0
		}
		total += mi
		out = append(out, Responsibility{Attr: v, MI: mi})
	}
	if total > 0 {
		for i := range out {
			out[i].Rho = out[i].MI / total
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rho > out[j].Rho })
	return out, nil
}

// FineExplanation is one fine-grained explanation (Def 3.4): a ground
// triple (t, y, z) with its contributions to Î(T;Z) and Î(Y;Z).
type FineExplanation struct {
	TreatmentValue string
	OutcomeValue   string
	CovariateValue string
	// KappaTZ is κ(t,z), the contribution of (t,z) to I(T;Z).
	KappaTZ float64
	// KappaYZ is κ(y,z), the contribution of (y,z) to I(Y;Z).
	KappaYZ float64
}

// ExplainFine implements the FGE procedure (Alg 3): it ranks the triples of
// Π_{T,Y,Z}(view) by their contribution to Î(T;Z) and to Î(Y;Z), aggregates
// the two rankings with Borda's method, and returns the top-k triples.
func ExplainFine(view *dataset.Table, treatment, outcome, covariate string, k int, cfg Config) ([]FineExplanation, error) {
	if k <= 0 {
		k = 2
	}
	tc, err := view.Column(treatment)
	if err != nil {
		return nil, err
	}
	yc, err := view.Column(outcome)
	if err != nil {
		return nil, err
	}
	zc, err := view.Column(covariate)
	if err != nil {
		return nil, err
	}
	n := view.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("core: empty context")
	}

	// Joint and marginal frequencies.
	type pair struct{ a, b int32 }
	type triple struct{ t, y, z int32 }
	tzCounts := make(map[pair]int)
	yzCounts := make(map[pair]int)
	tCounts := make(map[int32]int)
	yCounts := make(map[int32]int)
	zCounts := make(map[int32]int)
	triples := make(map[triple]int)
	for i := 0; i < n; i++ {
		tv, yv, zv := tc.Code(i), yc.Code(i), zc.Code(i)
		tzCounts[pair{tv, zv}]++
		yzCounts[pair{yv, zv}]++
		tCounts[tv]++
		yCounts[yv]++
		zCounts[zv]++
		triples[triple{tv, yv, zv}]++
	}
	kappa := func(joint, ma, mb int) float64 {
		if joint == 0 {
			return 0
		}
		pxy := float64(joint) / float64(n)
		px := float64(ma) / float64(n)
		py := float64(mb) / float64(n)
		return pxy * math.Log(pxy/(px*py))
	}

	// Materialize the distinct triples deterministically.
	keys := make([]triple, 0, len(triples))
	for k := range triples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.z < b.z
	})

	kTZ := make([]float64, len(keys))
	kYZ := make([]float64, len(keys))
	for i, tr := range keys {
		kTZ[i] = kappa(tzCounts[pair{tr.t, tr.z}], tCounts[tr.t], zCounts[tr.z])
		kYZ[i] = kappa(yzCounts[pair{tr.y, tr.z}], yCounts[tr.y], zCounts[tr.z])
	}
	consensus := stats.BordaAggregate(stats.RankDescending(kTZ), stats.RankDescending(kYZ))
	if consensus == nil {
		return nil, fmt.Errorf("core: rank aggregation failed over %d triples", len(keys))
	}
	if k > len(consensus) {
		k = len(consensus)
	}
	out := make([]FineExplanation, 0, k)
	for _, idx := range consensus[:k] {
		tr := keys[idx]
		out = append(out, FineExplanation{
			TreatmentValue: tc.Label(tr.t),
			OutcomeValue:   yc.Label(tr.y),
			CovariateValue: zc.Label(tr.z),
			KappaTZ:        kTZ[idx],
			KappaYZ:        kYZ[idx],
		})
	}
	return out, nil
}
