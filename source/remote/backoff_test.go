package remote

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSleepBackoffHugeRetryCountClamps is the regression test for the
// backoff-shift overflow: base << n with a caller-configured MaxRetries
// above ~36 went negative, skipped the 5s cap, and made the jitter's
// rand.Int64N panic on a late retry. The cancelled context makes the call
// return immediately once the delay is computed, so the test only exercises
// the arithmetic.
func TestSleepBackoffHugeRetryCountClamps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, n := range []int{0, 35, 36, 62, 63, 100} {
		if err := sleepBackoff(ctx, DefaultRetryBackoff, n); !errors.Is(err, context.Canceled) {
			t.Fatalf("sleepBackoff(n=%d) = %v, want context.Canceled", n, err)
		}
	}
	// A base already past the cap must clamp rather than double further.
	if err := sleepBackoff(ctx, time.Minute, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleepBackoff(base=1m) = %v, want context.Canceled", err)
	}
}
