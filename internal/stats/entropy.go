// Package stats implements the statistical machinery HypDB relies on:
// entropy estimation (plug-in and Miller-Madow, Sec 2 / Appendix 10.1 of the
// paper), mutual information and conditional mutual information, the
// chi-squared distribution used by the G-test, binomial proportion
// confidence intervals (Alg 2 line 13), and Borda rank aggregation used by
// fine-grained explanations (Alg 3).
//
// All entropies are in nats (natural logarithm).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Estimator selects the entropy estimator applied to empirical counts.
type Estimator int

const (
	// PlugIn is the maximum-likelihood estimator −Σ F(x)·ln F(x).
	PlugIn Estimator = iota
	// MillerMadow adds the first-order bias correction (m−1)/(2n), where m
	// is the number of observed distinct values. This is the estimator the
	// paper uses throughout (Miller 1955, cited as [32]).
	MillerMadow
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case PlugIn:
		return "plug-in"
	case MillerMadow:
		return "miller-madow"
	default:
		return fmt.Sprintf("Estimator(%d)", int(e))
	}
}

// EntropyCounts estimates H(X) from a histogram. counts holds the frequency
// of each observed value; total must equal the sum of counts. Zero counts
// are permitted and ignored (they do not contribute to m). A total of zero
// yields entropy zero.
func EntropyCounts(counts []int, total int, est Estimator) float64 {
	if total <= 0 {
		return 0
	}
	n := float64(total)
	h := 0.0
	m := 0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		m++
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	if est == MillerMadow && m > 1 {
		h += float64(m-1) / (2 * n)
	}
	return h
}

// EntropyCountsMap is EntropyCounts for map-shaped histograms. Entropy
// depends only on the multiset of counts, so the counts are extracted and
// sorted before summation: this makes the result independent of Go's
// randomized map iteration order (bit-for-bit reproducibility matters for
// deterministic analyses and caching).
func EntropyCountsMap[K comparable](counts map[K]int, total int, est Estimator) float64 {
	if total <= 0 {
		return 0
	}
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			vals = append(vals, c)
		}
	}
	sort.Ints(vals)
	return EntropyCounts(vals, total, est)
}

// EntropyCountsStable is EntropyCounts for histograms whose storage order
// is representation-dependent — dense OLAP-cube cells, marginalized views.
// Like EntropyCountsMap, the non-zero counts are copied and sorted before
// summation, so a dense view and the sparse map of the same distribution
// produce bit-for-bit identical entropies (which golden-reproducibility and
// cross-backend caching rely on).
func EntropyCountsStable(counts []int, total int, est Estimator) float64 {
	if total <= 0 {
		return 0
	}
	nz := 0
	for _, c := range counts {
		if c > 0 {
			nz++
		}
	}
	vals := make([]int, 0, nz)
	for _, c := range counts {
		if c > 0 {
			vals = append(vals, c)
		}
	}
	sort.Ints(vals)
	return EntropyCounts(vals, total, est)
}

// EntropyProbs computes exact entropy −Σ p·ln p of a probability vector.
// Probabilities that are zero (or negative, defensively) are skipped.
func EntropyProbs(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// JointKey packs up to two int32 codes into one comparable key, used by the
// pairwise entropy helpers below.
type JointKey uint64

// MakeJointKey packs a pair of codes.
func MakeJointKey(a, b int32) JointKey {
	return JointKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// EntropyCodes estimates H(X) directly from a code vector.
func EntropyCodes(codes []int32, card int, est Estimator) float64 {
	counts := make([]int, card)
	for _, c := range codes {
		counts[c]++
	}
	return EntropyCounts(counts, len(codes), est)
}

// JointEntropyCodes estimates H(X,Y) from two parallel code vectors.
func JointEntropyCodes(x, y []int32, est Estimator) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: joint entropy over vectors of different length %d vs %d", len(x), len(y))
	}
	counts := make(map[JointKey]int, 64)
	for i := range x {
		counts[MakeJointKey(x[i], y[i])]++
	}
	return EntropyCountsMap(counts, len(x), est), nil
}

// MutualInformationCodes estimates I(X;Y) = H(X)+H(Y)−H(XY) from parallel
// code vectors. With the plug-in estimator the result is non-negative; the
// Miller-Madow correction can make it slightly negative on independent data,
// which callers should treat as zero dependence.
func MutualInformationCodes(x, y []int32, cardX, cardY int, est Estimator) (float64, error) {
	hxy, err := JointEntropyCodes(x, y, est)
	if err != nil {
		return 0, err
	}
	hx := EntropyCodes(x, cardX, est)
	hy := EntropyCodes(y, cardY, est)
	return hx + hy - hxy, nil
}

// ConditionalEntropy returns H(Y|X) = H(XY) − H(X) given precomputed joint
// and marginal entropies.
func ConditionalEntropy(hXY, hX float64) float64 { return hXY - hX }

// ConditionalMI returns I(X;Y|Z) = H(XZ) + H(YZ) − H(XYZ) − H(Z) given the
// four precomputed entropies. (The paper's appendix misprints this identity;
// this is the standard chain-rule form.)
func ConditionalMI(hXZ, hYZ, hXYZ, hZ float64) float64 {
	return hXZ + hYZ - hXYZ - hZ
}
