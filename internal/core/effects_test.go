package core

import (
	"context"

	"testing"

	"hypdb/internal/query"
	"hypdb/source/mem"
)

func TestEffectAccessors(t *testing.T) {
	tab := simpsonData(t, 12000, 51)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 52, Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := rep.RawDifference(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 {
		t.Fatalf("raw effects = %d, want 1", len(raw))
	}
	if raw[0].Estimate <= 0 || !raw[0].Significant {
		t.Errorf("raw effect = %+v, want positive and significant", raw[0])
	}
	if raw[0].Outcome != "Y" || raw[0].T0 != "A" || raw[0].T1 != "B" {
		t.Errorf("effect labels = %+v", raw[0])
	}

	ate, err := rep.ATE(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ate[0].Estimate >= 0 {
		t.Errorf("ATE = %v, want negative (A better)", ate[0].Estimate)
	}

	reversed, err := rep.TrendReversed(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reversed {
		t.Error("Simpson reversal not reported by TrendReversed")
	}

	if _, err := rep.RawDifference(5, 0.01); err == nil {
		t.Error("out-of-range outcome index accepted")
	}
	if _, err := rep.NDE(0, 0.01); err == nil {
		t.Error("NDE should error when no direct rewriting happened")
	}
}

func TestEffectAccessorsNoCovariates(t *testing.T) {
	// Randomized data with no structure at all: no covariates, ATE errors.
	tab := independentTable(t, 3000, 53)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 54}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RewrittenTotal != nil {
		t.Skip("covariates discovered on noise (rare false positive); skip")
	}
	if _, err := rep.ATE(0, 0.01); err == nil {
		t.Error("ATE should error without a rewriting")
	}
	if _, err := rep.TrendReversed(0); err == nil {
		t.Error("TrendReversed should error without a rewriting")
	}
}
