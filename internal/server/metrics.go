package server

import (
	"bytes"
	"net/http"
	"sort"

	"hypdb/api"
	"hypdb/internal/promexport"
)

// metricsSnapshot assembles the service-wide counters. It is the single
// registry behind both metrics views: handleMetrics JSON-encodes the
// snapshot and handlePromMetrics renders the same snapshot through
// promexport, so the two endpoints cannot drift — a counter exists in both
// or in neither.
func (s *Server) metricsSnapshot() api.Metrics {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		entries = append(entries, e)
	}
	s.mu.RUnlock()

	out := api.Metrics{
		UptimeSeconds:       s.now().Sub(s.started).Seconds(),
		Datasets:            len(entries),
		RequestsTotal:       s.requests.Load(),
		RequestsInFlight:    s.inFlight.Load(),
		AnalysesTotal:       s.analyses.Load(),
		AuditsTotal:         s.audits.Load(),
		AuditsInFlight:      s.auditsInFlight.Load(),
		AppendsTotal:        s.appends.Load(),
		RowsAppended:        s.rowsAppended.Load(),
		CountsServed:        s.countsServed.Load(),
		RateLimited:         s.rateLimited.Load(),
		RateLimitedByClient: s.limiter.DeniedByClient(),
		Catalog: api.CatalogMetrics{
			RecoveredDatasets: s.recoveredDatasets.Load(),
			ReplayedAppends:   s.replayedAppends.Load(),
		},
	}
	if s.journal != nil {
		out.Catalog.JournalRecords = s.journal.Appended()
	}
	for _, e := range entries {
		st := e.db.Stats()
		out.Cache.CDComputes += st.CDComputes
		out.Cache.CDHits += st.CDHits
		planner := api.PlannerStats{
			Plans:             st.Planner.Plans,
			Cuboids:           st.Planner.Cuboids,
			CellsMaterialized: st.Planner.CellsMaterialized,
			DemandsPlanned:    st.Planner.DemandsPlanned,
			DemandsProjected:  st.Planner.DemandsProjected,
			RoundTripsSaved:   st.Planner.RoundTripsSaved,
		}
		out.Planner.Plans += planner.Plans
		out.Planner.Cuboids += planner.Cuboids
		out.Planner.CellsMaterialized += planner.CellsMaterialized
		out.Planner.DemandsPlanned += planner.DemandsPlanned
		out.Planner.DemandsProjected += planner.DemandsProjected
		out.Planner.RoundTripsSaved += planner.RoundTripsSaved
		qs := e.queue.Stats()
		adm := api.AdmissionMetrics{
			Admitted:      qs.Admitted,
			Queued:        qs.Queued,
			ShedQueueFull: qs.ShedFull,
			ShedDeadline:  qs.ShedDeadline,
			ShedDraining:  qs.ShedDraining,
			Cancelled:     qs.Cancelled,
		}
		out.Admission.Admitted += adm.Admitted
		out.Admission.Queued += adm.Queued
		out.Admission.ShedQueueFull += adm.ShedQueueFull
		out.Admission.ShedDeadline += adm.ShedDeadline
		out.Admission.ShedDraining += adm.ShedDraining
		out.Admission.Cancelled += adm.Cancelled
		dm := api.DatasetMetrics{
			Name:           e.name,
			Rows:           int(e.rows.Load()),
			Analyses:       e.analyses.Load(),
			Appends:        e.appends.Load(),
			RowsAppended:   e.rowsAppended.Load(),
			CountsServed:   e.countsServed.Load(),
			DegradedServes: e.db.DegradedServes(),
			Admission:      adm,
			Audit: api.AuditProgress{
				Audits:          e.audits.Load(),
				Running:         e.auditsRunning.Load(),
				CandidatesDone:  e.auditCandsDone.Load(),
				CandidatesTotal: e.auditCandsTotal.Load(),
			},
			Cache:   api.CacheStats{CDComputes: st.CDComputes, CDHits: st.CDHits},
			Planner: planner,
		}
		for _, p := range e.db.RemotePeers() {
			dm.Remote = append(dm.Remote, api.PeerMetrics{
				URL: p.URL, Version: p.Version, Healthy: p.Healthy,
				Requests: p.Requests, Retries: p.Retries, Errors: p.Errors,
				CountsServed:  p.CountsServed,
				LastRTTMillis: float64(p.LastRTT.Microseconds()) / 1000,
				AvgRTTMillis:  float64(p.AvgRTT.Microseconds()) / 1000,
			})
		}
		out.PerDataset = append(out.PerDataset, dm)
	}
	sort.Slice(out.PerDataset, func(i, j int) bool { return out.PerDataset[i].Name < out.PerDataset[j].Name })
	return out
}

// handleMetrics serves GET /v1/metrics: the snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handlePromMetrics serves GET /metrics: the same snapshot in the
// Prometheus text exposition format.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := promexport.Render(&buf, s.metricsSnapshot()); err != nil {
		s.writeError(w, r, &api.Error{
			Status: http.StatusInternalServerError, Code: api.CodeInternal,
			Message: "rendering metrics: " + err.Error(),
		})
		return
	}
	w.Header().Set("Content-Type", promexport.ContentType)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.log.Error("writing metrics exposition", "error", err)
	}
}
