package datagen

import (
	"math/rand"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
)

// berkeleyCounts are the published 1973 Berkeley graduate admissions
// figures for the six largest departments (Bickel, Hammel & O'Connell,
// Science 187, 1975 — the paper's [5]): per department, applicants and
// admits by gender. This is real data, not synthetic.
var berkeleyCounts = []struct {
	dept                          string
	maleApplied, maleAdmitted     int
	femaleApplied, femaleAdmitted int
}{
	{"A", 825, 512, 108, 89},
	{"B", 560, 353, 25, 17},
	{"C", 325, 120, 593, 202},
	{"D", 417, 138, 375, 131},
	{"E", 191, 53, 393, 94},
	{"F", 373, 22, 341, 24},
}

// BerkeleyRows is the total number of applications in the data.
func BerkeleyRows() int {
	total := 0
	for _, c := range berkeleyCounts {
		total += c.maleApplied + c.femaleApplied
	}
	return total
}

// Berkeley expands the published counts into one row per application:
// Gender, Department, Accepted. The row order is shuffled with the given
// seed (order never affects HypDB, but shuffling avoids accidental
// dependence on block layout in downstream consumers).
func Berkeley(seed int64) (*dataset.Table, error) {
	b := dataset.NewBuilder("Gender", "Department", "Accepted")
	type rec struct{ g, d, a string }
	var rows []rec
	for _, c := range berkeleyCounts {
		for i := 0; i < c.maleAdmitted; i++ {
			rows = append(rows, rec{"Male", c.dept, "1"})
		}
		for i := 0; i < c.maleApplied-c.maleAdmitted; i++ {
			rows = append(rows, rec{"Male", c.dept, "0"})
		}
		for i := 0; i < c.femaleAdmitted; i++ {
			rows = append(rows, rec{"Female", c.dept, "1"})
		}
		for i := 0; i < c.femaleApplied-c.femaleAdmitted; i++ {
			rows = append(rows, rec{"Female", c.dept, "0"})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	for _, r := range rows {
		b.MustAdd(r.g, r.d, r.a)
	}
	return b.Table()
}

// BerkeleyQuery is the Fig 4 (top) query: average acceptance by gender.
func BerkeleyQuery() query.Query {
	return query.Query{
		Table:     "BerkeleyData",
		Treatment: "Gender",
		Outcomes:  []string{"Accepted"},
	}
}
