package core

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the report as the kind of panel the paper's figures
// show: query answers, bias verdict, explanations, and refined answers.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("SQL Query:\n%s\n\n", indent(r.OriginalSQL, "  "))

	if r.Degraded {
		p("STALE: at least one remote shard was unreachable during this analysis; all statistics rest on partial counts.\n\n")
	}

	p("Query Answers:\n")
	for _, row := range r.Answer.Rows {
		p("  %s%s: %s  (n=%d)\n", row.Treatment, ctxSuffix(row.Context), fmtFloats(row.Avgs), row.Count)
	}
	for _, c := range r.OriginalComparisons {
		p("  diff%s = %s, p-values %s\n", ctxSuffix(c.Context), fmtFloats(c.Diffs), fmtPValues(c.PValues, c.PValueCIs))
	}

	if len(r.DroppedAttrs) > 0 {
		p("\nDropped attributes (logical dependencies):\n")
		for _, d := range r.DroppedAttrs {
			if d.Peer != "" {
				p("  %s — %s (%s)\n", d.Attr, d.Reason, d.Peer)
			} else {
				p("  %s — %s\n", d.Attr, d.Reason)
			}
		}
	}

	p("\nCovariates (Z): %s\n", strings.Join(r.Covariates, ", "))
	if r.CD != nil && r.CD.UsedFallback {
		p("  (CD fallback: Z = MB(T) − outcomes)\n")
	}
	if len(r.Mediators) > 0 {
		p("Mediators (M): %s\n", strings.Join(r.Mediators, ", "))
	}

	verdict := func(results []BiasResult, label string) {
		if len(results) == 0 {
			return
		}
		p("\nBias detection (%s):\n", label)
		for _, b := range results {
			tag := "UNBIASED"
			if b.Biased {
				tag = "BIASED"
			}
			p("  %s%s: I(T;V)=%.4f p=%s → %s\n", "context", ctxSuffix(b.Context), b.MI,
				fmtP(b.PValue, b.PValueCI), tag)
		}
	}
	verdict(r.BiasTotal, "w.r.t. covariates, total effect")
	verdict(r.BiasDirect, "w.r.t. covariates ∪ mediators, direct effect")

	if len(r.Coarse) > 0 {
		p("\nCoarse-grained explanations (responsibility):\n")
		for _, c := range r.Coarse {
			p("  %-24s %.2f\n", c.Attr, c.Rho)
		}
	}
	if len(r.Fine) > 0 {
		p("\nFine-grained explanations (top contributions):\n")
		for attr, fine := range r.Fine {
			p("  %s:\n", attr)
			for rank, f := range fine {
				p("    %d. T=%s Y=%s %s=%s  (κ_TZ=%.4f κ_YZ=%.4f)\n",
					rank+1, f.TreatmentValue, f.OutcomeValue, attr, f.CovariateValue, f.KappaTZ, f.KappaYZ)
			}
		}
	}

	if r.RewrittenTotal != nil {
		p("\nRefined answers (total effect), overlap kept %d/%d blocks (%.1f%% rows):\n",
			r.RewrittenTotal.BlocksKept, r.RewrittenTotal.BlocksTotal, 100*r.RewrittenTotal.RowsKeptFraction)
		for _, row := range r.RewrittenTotal.Rows {
			p("  %s%s: %s\n", row.Treatment, ctxSuffix(row.Context), fmtFloats(row.Avgs))
		}
		for _, c := range r.TotalComparisons {
			p("  diff%s = %s, p-values %s\n", ctxSuffix(c.Context), fmtFloats(c.Diffs), fmtPValues(c.PValues, c.PValueCIs))
		}
	}
	if r.RewrittenDirect != nil {
		p("\nRefined answers (direct effect, baseline %s):\n", r.RewrittenDirect.Baseline)
		for _, row := range r.RewrittenDirect.Rows {
			p("  %s%s: %s\n", row.Treatment, ctxSuffix(row.Context), fmtFloats(row.Avgs))
		}
		for _, c := range r.DirectComparisons {
			p("  diff%s = %s, p-values %s\n", ctxSuffix(c.Context), fmtFloats(c.Diffs), fmtPValues(c.PValues, c.PValueCIs))
		}
	}
	if r.RewrittenSQL != "" {
		p("\nRewritten SQL:\n%s\n", indent(r.RewrittenSQL, "  "))
	}
	p("\nTimings: detect %v, explain %v, resolve %v\n", r.Timing.Detect, r.Timing.Explain, r.Timing.Resolve)
	return nil
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

func ctxSuffix(ctx []string) string {
	if len(ctx) == 0 {
		return ""
	}
	return "[" + strings.Join(ctx, ",") + "]"
}

func fmtFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.4f", v)
	}
	return strings.Join(parts, ", ")
}

func fmtP(p, ci float64) string {
	if p < 0.001 && ci == 0 {
		return "<0.001"
	}
	if ci > 0 {
		return fmt.Sprintf("%.3f±%.3f", p, ci)
	}
	return fmt.Sprintf("%.3f", p)
}

func fmtPValues(ps, cis []float64) string {
	parts := make([]string, len(ps))
	for i := range ps {
		ci := 0.0
		if i < len(cis) {
			ci = cis[i]
		}
		parts[i] = fmtP(ps[i], ci)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
