package lint

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the repository's markdown documentation set: README.md
// plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	root := repoRoot(t)
	files := []string{filepath.Join(root, "README.md")}
	extra, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, extra...)
	if len(extra) == 0 {
		t.Error("docs/ has no markdown files — the documentation set is missing")
	}
	return files
}

// mdLink matches inline markdown links and captures the destination.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinksResolve checks every relative link in the
// documentation set points at a file (or directory) that exists, so the
// docs cannot silently rot as the tree moves.
func TestDocsRelativeLinksResolve(t *testing.T) {
	root := repoRoot(t)
	for _, f := range docFiles(t) {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Dir(f)
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			dest := m[1]
			if strings.Contains(dest, "://") || strings.HasPrefix(dest, "mailto:") || strings.HasPrefix(dest, "#") {
				continue // external or intra-document
			}
			dest, _, _ = strings.Cut(dest, "#") // strip anchors
			if dest == "" {
				continue
			}
			target := filepath.Join(base, dest)
			if _, err := os.Stat(target); err != nil {
				rel, _ := filepath.Rel(root, f)
				t.Errorf("%s: dead relative link %q (%v)", rel, m[1], err)
			}
		}
	}
}

// fencedGo matches ```go fenced code blocks.
var fencedGo = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestDocsGoExamplesFormatted gofmt-checks the documentation's Go examples.
// Blocks that are full files (starting with a package clause) must parse
// and be gofmt-clean; fragment blocks are checked wrapped in a scratch
// file, so statement examples keep honest indentation too.
func TestDocsGoExamplesFormatted(t *testing.T) {
	root := repoRoot(t)
	for _, f := range docFiles(t) {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, f)
		for i, m := range fencedGo.FindAllStringSubmatch(string(raw), -1) {
			block := m[1]
			src := block
			wrapped := false
			if !strings.HasPrefix(strings.TrimSpace(block), "package ") {
				// Wrap fragments in a function so they parse; indent one tab
				// to match the wrapping.
				var b strings.Builder
				b.WriteString("package p\n\nfunc _() {\n")
				for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
					if line != "" {
						b.WriteString("\t")
					}
					b.WriteString(line)
					b.WriteString("\n")
				}
				b.WriteString("}\n")
				src = b.String()
				wrapped = true
			}
			got, err := format.Source([]byte(src))
			if err != nil {
				t.Errorf("%s: go block %d does not parse: %v\n%s", rel, i+1, err, block)
				continue
			}
			if wrapped {
				// Fragments only need to parse and re-format to themselves.
				if string(got) != src {
					t.Errorf("%s: go block %d is not gofmt-clean:\n%s", rel, i+1, block)
				}
				continue
			}
			if string(got) != src {
				t.Errorf("%s: go block %d is not gofmt-clean:\n%s", rel, i+1, block)
			}
		}
	}
}
