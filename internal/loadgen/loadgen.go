package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypdb/api"
)

// Operation names, used as keys in Result.Latency.
const (
	OpAnalyze = "analyze"
	OpAudit   = "audit"
	OpAppend  = "append"
	OpMetrics = "metrics"
)

// Mix weights the operations a worker draws from; zero weights disable an
// operation. The zero Mix defaults to analyze-only.
type Mix struct {
	Analyze int
	Audit   int
	Append  int
	Metrics int
}

func (m Mix) total() int { return m.Analyze + m.Audit + m.Append + m.Metrics }

// pick draws an operation proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.IntN(m.total())
	if n < m.Analyze {
		return OpAnalyze
	}
	n -= m.Analyze
	if n < m.Audit {
		return OpAudit
	}
	n -= m.Audit
	if n < m.Append {
		return OpAppend
	}
	return OpMetrics
}

// Config parameterizes a load run.
type Config struct {
	// Client is the initial target; SwapClient can repoint a running load
	// at a restarted server.
	Client *api.Client
	// Dataset is the analyzed/appended dataset; it must already exist.
	Dataset string
	// Query is the analyze query; it should cover the whole dataset (no
	// WHERE) so the epoch check below sees every row.
	Query api.Query
	// Queries, when non-empty, is drawn from uniformly per analyze
	// instead of Query. Chaos runs use distinct WHERE predicates to
	// defeat count caches and force backend traffic. The epoch check is
	// disabled in this mode: filtered totals don't land on batch
	// boundaries.
	Queries []api.Query
	// AuditSpec shapes audit sweeps (only used when Mix.Audit > 0).
	AuditSpec api.AuditSpec
	// AppendRows is the batch appended per append operation. With
	// BaseRows set, successful analyses are checked for epoch purity:
	// every report's total row count must equal BaseRows plus a whole
	// number of batches — a fractional batch means the analysis mixed
	// two snapshot epochs.
	AppendRows [][]string
	BaseRows   int
	// Workers is the number of concurrent load goroutines (default 4).
	Workers int
	// Duration bounds the run (default 1s); the run also ends when ctx
	// does.
	Duration time.Duration
	// PerRequestTimeout is the hang detector: a request that produces
	// neither a response nor a transport error within it counts as Hung
	// (default 60s).
	PerRequestTimeout time.Duration
	// Mix weights the operations (zero value: analyze-only).
	Mix Mix
	// Seed makes worker schedules reproducible (default 1).
	Seed int64
}

// Counts classifies every request outcome of a run.
type Counts struct {
	// OK are successful requests.
	OK int64 `json:"ok"`
	// Shed are typed load-shed rejections: 429 rate_limited and 503
	// overloaded / shutting_down. These are the server working as
	// designed under overload.
	Shed int64 `json:"shed"`
	// MissingRetryAfter counts sheds that violated the contract by
	// carrying no Retry-After hint.
	MissingRetryAfter int64 `json:"missing_retry_after"`
	// TypedErrors are non-shed api.Errors (e.g. 502 from a killed peer):
	// failures, but loud, typed ones.
	TypedErrors int64 `json:"typed_errors"`
	// Transport are connection-level failures (refused, reset, EOF) —
	// expected while a server restarts or a peer dies.
	Transport int64 `json:"transport"`
	// Hung are requests that hit the per-request timeout with no reply:
	// the failure mode the admission layer exists to prevent.
	Hung int64 `json:"hung"`
	// MixedEpoch counts analyses whose row totals straddle append
	// batches — evidence a report blended two snapshot versions.
	MixedEpoch int64 `json:"mixed_epoch"`
}

// Result is a finished run: outcome counts, per-operation latency
// summaries, and a sample of unexpected errors for debugging.
type Result struct {
	Counts       Counts             `json:"counts"`
	Latency      map[string]Summary `json:"latency"`
	ErrorSamples []string           `json:"error_samples,omitempty"`
}

// Violations checks the robustness invariants and returns a description
// of each breach (empty means the run upheld the contract): no hung
// requests, no mixed-epoch reports, no shed without Retry-After, and —
// when p99Max > 0 — every operation's p99 within it.
func (r *Result) Violations(p99Max time.Duration) []string {
	var v []string
	if r.Counts.Hung > 0 {
		v = append(v, fmt.Sprintf("%d requests hung past the per-request timeout (shed-not-hung violated)", r.Counts.Hung))
	}
	if r.Counts.MixedEpoch > 0 {
		v = append(v, fmt.Sprintf("%d analyses observed mixed snapshot epochs", r.Counts.MixedEpoch))
	}
	if r.Counts.MissingRetryAfter > 0 {
		v = append(v, fmt.Sprintf("%d sheds carried no Retry-After hint", r.Counts.MissingRetryAfter))
	}
	if p99Max > 0 {
		for op, s := range r.Latency {
			if s.Count > 0 && s.P99MS > ms(p99Max) {
				v = append(v, fmt.Sprintf("%s p99 %.1fms exceeds bound %.1fms", op, s.P99MS, ms(p99Max)))
			}
		}
	}
	return v
}

// Runner drives one load run. Create with New, then Run.
type Runner struct {
	cfg    Config
	client atomic.Pointer[api.Client]
	hists  map[string]*Histogram

	ok, shed, noRetryAfter, typed, transport, hung, mixedEpoch atomic.Int64

	errMu      sync.Mutex
	errSamples []string
}

// New creates a Runner from cfg, applying defaults.
func New(cfg Config) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.PerRequestTimeout <= 0 {
		cfg.PerRequestTimeout = 60 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = Mix{Analyze: 1}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Runner{
		cfg: cfg,
		hists: map[string]*Histogram{
			OpAnalyze: {}, OpAudit: {}, OpAppend: {}, OpMetrics: {},
		},
	}
	r.client.Store(cfg.Client)
	return r
}

// SwapClient repoints the running load at a new server incarnation —
// the mid-flight-restart scenario, where the restarted server listens on
// a fresh address.
func (r *Runner) SwapClient(c *api.Client) { r.client.Store(c) }

// Run drives the configured mix until the duration elapses or ctx ends,
// then waits for in-flight requests (each bounded by the per-request
// timeout) and returns the classified result.
func (r *Runner) Run(ctx context.Context) *Result {
	deadline := time.Now().Add(r.cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(seed), 0))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				r.one(r.cfg.Mix.pick(rng), rng)
			}
		}(r.cfg.Seed + int64(i))
	}
	wg.Wait()

	res := &Result{
		Counts: Counts{
			OK:                r.ok.Load(),
			Shed:              r.shed.Load(),
			MissingRetryAfter: r.noRetryAfter.Load(),
			TypedErrors:       r.typed.Load(),
			Transport:         r.transport.Load(),
			Hung:              r.hung.Load(),
			MixedEpoch:        r.mixedEpoch.Load(),
		},
		Latency: make(map[string]Summary, len(r.hists)),
	}
	for op, h := range r.hists {
		if s := h.Summarize(); s.Count > 0 {
			res.Latency[op] = s
		}
	}
	r.errMu.Lock()
	res.ErrorSamples = append(res.ErrorSamples, r.errSamples...)
	r.errMu.Unlock()
	return res
}

// one executes a single operation and classifies its outcome. The request
// context is deliberately detached from the run deadline: the run ending
// must not masquerade as a server hang.
func (r *Runner) one(op string, rng *rand.Rand) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.PerRequestTimeout)
	defer cancel()
	c := r.client.Load()
	start := time.Now()
	var err error
	switch op {
	case OpAnalyze:
		q := r.cfg.Query
		if len(r.cfg.Queries) > 0 {
			q = r.cfg.Queries[rng.IntN(len(r.cfg.Queries))]
		}
		var rep *api.Report
		rep, err = c.Analyze(ctx, api.AnalyzeRequest{
			Dataset: r.cfg.Dataset,
			Query:   q,
			Options: api.Options{Seed: 1, SkipDirect: true},
		})
		if err == nil && len(r.cfg.Queries) == 0 {
			r.checkEpoch(rep)
		}
	case OpAudit:
		_, err = c.Audit(ctx, api.AuditRequest{
			Dataset: r.cfg.Dataset,
			Spec:    r.cfg.AuditSpec,
			Options: api.Options{Seed: 1},
		})
	case OpAppend:
		_, err = c.Append(ctx, r.cfg.Dataset, r.cfg.AppendRows)
	case OpMetrics:
		_, err = c.Metrics(ctx)
	}
	elapsed := time.Since(start)
	if err == nil {
		r.ok.Add(1)
		r.hists[op].Record(elapsed)
		return
	}

	var apiErr *api.Error
	switch {
	case errors.As(err, &apiErr):
		switch apiErr.Code {
		case api.CodeRateLimited, api.CodeOverloaded, api.CodeShuttingDown:
			r.shed.Add(1)
			if apiErr.RetryAfter() <= 0 {
				r.noRetryAfter.Add(1)
				r.sample(fmt.Sprintf("%s: shed without Retry-After: %v", op, err))
			}
		default:
			r.typed.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded):
		r.hung.Add(1)
		r.sample(fmt.Sprintf("%s: hung for %s: %v", op, elapsed.Round(time.Millisecond), err))
	default:
		// Connection-level failure: refused, reset, EOF — the restart and
		// peer-kill scenarios produce these on purpose.
		r.transport.Add(1)
		if !isTransport(err) {
			r.sample(fmt.Sprintf("%s: unclassified error: %v", op, err))
		}
	}
}

// checkEpoch verifies a report's row total lands exactly on an append
// batch boundary: BaseRows + k·len(AppendRows) for whole k.
func (r *Runner) checkEpoch(rep *api.Report) {
	if len(r.cfg.AppendRows) == 0 || r.cfg.BaseRows <= 0 {
		return
	}
	total := 0
	for _, row := range rep.Answer {
		total += row.Count
	}
	diff := total - r.cfg.BaseRows
	if diff < 0 || diff%len(r.cfg.AppendRows) != 0 {
		r.mixedEpoch.Add(1)
		r.sample(fmt.Sprintf("analyze: mixed-epoch total %d (base %d, batch %d)",
			total, r.cfg.BaseRows, len(r.cfg.AppendRows)))
	}
}

func isTransport(err error) bool {
	var netErr net.Error
	return errors.As(err, &netErr) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// sample retains the first few unexpected errors for the report.
func (r *Runner) sample(msg string) {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	if len(r.errSamples) < 8 {
		r.errSamples = append(r.errSamples, msg)
	}
}

// SlowLoris opens conns TCP connections to addr (host:port) and dribbles
// an unfinished HTTP request down each — one header byte per interval —
// until ctx ends. It returns after the connections are up. A server with
// sane read deadlines and admission control keeps serving real traffic
// alongside; pair it with a Runner and assert no hangs.
func SlowLoris(ctx context.Context, addr string, conns int, interval time.Duration) error {
	payload := "POST /v1/analyze HTTP/1.1\r\nHost: loris\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\nX-Dribble: "
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			for j := 0; ctx.Err() == nil; j++ {
				b := byte('a')
				if j < len(payload) {
					b = payload[j]
				}
				if _, err := c.Write([]byte{b}); err != nil {
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
			}
		}(conn)
	}
	return nil
}
