package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/memsql"
)

// startCatalogServer boots a Server with a persistent catalog rooted at
// dir, mirroring the production boot order: OpenCatalog, flag-driven
// registrations (none here), Recover, serve. The returned stop function
// shuts the incarnation down so a successor can reopen the same dir.
func startCatalogServer(t *testing.T, dir string, cfg Config) (*Server, *api.Client, func()) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(cfg)
	if err := srv.OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	if err := srv.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	var stopped bool
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		srv.Close()
	}
	t.Cleanup(stop)
	return srv, api.NewClient(ts.URL, ts.Client()), stop
}

// goldenReport renders an analysis as comparison-stable JSON: wall-clock
// timings are zeroed, everything else must reproduce byte-for-byte.
func goldenReport(t *testing.T, c *api.Client, dataset string) []byte {
	t.Helper()
	rep, err := c.Analyze(context.Background(), api.AnalyzeRequest{
		Dataset: dataset,
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1},
	})
	if err != nil {
		t.Fatalf("analyze %s: %v", dataset, err)
	}
	rep.Timing = api.Timing{}
	// The text panel embeds the same wall-clock timings in prose; scrub
	// its trailing Timings line too.
	if i := strings.LastIndex(rep.Text, "\nTimings:"); i >= 0 {
		rep.Text = rep.Text[:i]
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// auditElapsedRE matches the wall-clock prose the audit header embeds —
// a Go duration string such as "in 5ms." or "in 0s." — the one
// nondeterministic part of AuditReport.Text.
var auditElapsedRE = regexp.MustCompile(`in \d[^ ]*\.\n`)

// goldenAudit renders a lattice audit as comparison-stable JSON (elapsed
// wall-clock zeroed and scrubbed from the prose).
func goldenAudit(t *testing.T, c *api.Client, dataset string) []byte {
	t.Helper()
	rep, err := c.Audit(context.Background(), api.AuditRequest{
		Dataset: dataset,
		Spec:    api.AuditSpec{Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1},
	})
	if err != nil {
		t.Fatalf("audit %s: %v", dataset, err)
	}
	rep.ElapsedMS = 0
	rep.Text = auditElapsedRE.ReplaceAllString(rep.Text, "in ?.\n")
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRestartReplayGoldens: every catalog kind — spilled CSV (mem and
// sharded), SQL, remote — survives a full server restart via journal
// replay: registrations come back without re-upload, a replayed append
// re-pins the sharded snapshot version to 2, a deleted dataset stays
// gone, and seeded analyses reproduce byte-identical reports.
func TestRestartReplayGoldens(t *testing.T) {
	registerBerkeleySQL(t)

	// The remote peer outlives both coordinator incarnations, like a real
	// peer across a coordinator restart.
	peer, peerURL := newPeerServer(t, Config{Shards: 2})
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx := context.Background()
	cfg := Config{AllowSQLDrivers: []string{memsql.DriverName}}

	srv1, c1, stop1 := startCatalogServer(t, dir, cfg)
	if _, err := c1.CreateDataset(ctx, "mem_ds", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateShardedDataset(ctx, "sharded_ds", berkeleyCSV(t), 2); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Append(ctx, "sharded_ds", [][]string{
		{"Female", "A", "1"}, {"Male", "F", "0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("append version = %d, want 2", res.Version)
	}
	if _, err := c1.CreateSQLDataset(ctx, "sql_ds", memsql.DriverName, "", "berkeley_sql"); err != nil {
		t.Fatal(err)
	}
	if err := srv1.AddRemoteDataset(ctx, "berkeley", []string{peerURL}, false); err != nil {
		t.Fatal(err)
	}
	// A deleted dataset must stay deleted across the restart.
	if _, err := c1.CreateDataset(ctx, "gone", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	if err := c1.DeleteDataset(ctx, "gone"); err != nil {
		t.Fatal(err)
	}

	datasets := []string{"mem_ds", "sharded_ds", "sql_ds", "berkeley"}
	goldens := make(map[string][]byte, len(datasets))
	auditGoldens := make(map[string][]byte, len(datasets))
	for _, name := range datasets {
		goldens[name] = goldenReport(t, c1, name)
		auditGoldens[name] = goldenAudit(t, c1, name)
	}
	stop1()

	// Second incarnation: same data dir, no re-registration by hand.
	_, c2, _ := startCatalogServer(t, dir, cfg)
	list, err := c2.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]api.DatasetInfo, len(list))
	for _, info := range list {
		byName[info.Name] = info
	}
	if len(byName) != len(datasets) {
		t.Fatalf("recovered %d datasets (%v), want %d", len(byName), list, len(datasets))
	}
	if _, ok := byName["gone"]; ok {
		t.Fatal("deleted dataset resurrected by replay")
	}
	if got := byName["sharded_ds"]; got.Version != 2 || got.Rows != datagen.BerkeleyRows()+2 {
		t.Fatalf("sharded_ds after replay = %+v, want version 2 with the appended rows", got)
	}
	for _, name := range datasets {
		if got := goldenReport(t, c2, name); !bytes.Equal(got, goldens[name]) {
			t.Errorf("%s: report changed across restart:\n  before: %s\n  after:  %s",
				name, goldens[name], got)
		}
		if got := goldenAudit(t, c2, name); !bytes.Equal(got, auditGoldens[name]) {
			t.Errorf("%s: audit report changed across restart:\n  before: %s\n  after:  %s",
				name, auditGoldens[name], got)
		}
	}
}

// TestAuthScopes: with tokens configured, every endpoint except /healthz
// requires a bearer token; reader tokens may analyze and observe but not
// mutate; operator tokens may mutate and trigger shutdown.
func TestAuthScopes(t *testing.T) {
	shutdownCalled := make(chan struct{}, 1)
	cfg := Config{
		Tokens: []Token{
			{Secret: "op-secret", Name: "op", Scope: ScopeOperator},
			{Secret: "read-secret", Name: "analyst", Scope: ScopeReader},
		},
		OnShutdown: func() { shutdownCalled <- struct{}{} },
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	ctx := context.Background()
	anon := api.NewClient(ts.URL, ts.Client())
	bad := api.NewClient(ts.URL, ts.Client(), api.WithToken("wrong"))
	reader := api.NewClient(ts.URL, ts.Client(), api.WithToken("read-secret"))
	op := api.NewClient(ts.URL, ts.Client(), api.WithToken("op-secret"))

	// /healthz stays tokenless so probes work before credentials are wired.
	if _, err := anon.Health(ctx); err != nil {
		t.Fatalf("tokenless healthz: %v", err)
	}
	if _, err := anon.Datasets(ctx); !hasCode(err, api.CodeUnauthorized, http.StatusUnauthorized) {
		t.Fatalf("missing token: %v", err)
	}
	if _, err := bad.Datasets(ctx); !hasCode(err, api.CodeUnauthorized, http.StatusUnauthorized) {
		t.Fatalf("unknown token: %v", err)
	}

	csv := berkeleyCSV(t)
	if _, err := reader.CreateDataset(ctx, "berkeley", csv); !hasCode(err, api.CodeForbidden, http.StatusForbidden) {
		t.Fatalf("reader create: %v", err)
	}
	if _, err := op.CreateDataset(ctx, "berkeley", csv); err != nil {
		t.Fatalf("operator create: %v", err)
	}
	if _, err := reader.Datasets(ctx); err != nil {
		t.Fatalf("reader list: %v", err)
	}
	if _, err := reader.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	}); err != nil {
		t.Fatalf("reader analyze: %v", err)
	}
	if _, err := reader.Append(ctx, "berkeley", [][]string{{"Female", "A", "1"}}); !hasCode(err, api.CodeForbidden, http.StatusForbidden) {
		t.Fatalf("reader append: %v", err)
	}
	if err := reader.DeleteDataset(ctx, "berkeley"); !hasCode(err, api.CodeForbidden, http.StatusForbidden) {
		t.Fatalf("reader delete: %v", err)
	}
	if err := reader.Shutdown(ctx); !hasCode(err, api.CodeForbidden, http.StatusForbidden) {
		t.Fatalf("reader shutdown: %v", err)
	}

	if err := op.Shutdown(ctx); err != nil {
		t.Fatalf("operator shutdown: %v", err)
	}
	select {
	case <-shutdownCalled:
	case <-time.After(5 * time.Second):
		t.Fatal("OnShutdown hook never invoked")
	}

	// Without an OnShutdown hook the endpoint stays disabled even for
	// operators.
	_, gated := newTestServer(t, Config{})
	if err := gated.Shutdown(ctx); !hasCode(err, api.CodeForbidden, http.StatusForbidden) {
		t.Fatalf("shutdown without hook: %v", err)
	}
}

// waitQueued polls until the dataset's fair queue reports depth n.
func waitQueued(t *testing.T, srv *Server, dataset string, n int) {
	t.Helper()
	e, apiErr := srv.lookup(dataset)
	if apiErr != nil {
		t.Fatalf("lookup %s: %v", dataset, apiErr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.queue.Stats().Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", n, e.queue.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedsTyped: when the fair queue is full, excess requests are
// shed immediately with a typed 503 overloaded carrying a Retry-After
// header — never a silent hang — while the queued request completes once a
// slot frees, and /v1/metrics reconciles the sheds.
func TestOverloadShedsTyped(t *testing.T) {
	srv, baseURL := newPeerServer(t, Config{MaxConcurrentPerDataset: 1, MaxQueuedPerDataset: 1})
	c := api.NewClient(baseURL, nil)
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	e, apiErr := srv.lookup("berkeley")
	if apiErr != nil {
		t.Fatal(apiErr)
	}

	// Hog the single execution slot so the next request queues.
	hogRelease, err := e.queue.Acquire(ctx, "hog", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := c.Analyze(ctx, req)
		queuedErr <- err
	}()
	waitQueued(t, srv, "berkeley", 1)

	// The queue is at its depth bound: the next request sheds, typed.
	_, err = c.Analyze(ctx, req)
	if !hasCode(err, api.CodeOverloaded, http.StatusServiceUnavailable) {
		t.Fatalf("overflow request: %v, want 503 overloaded", err)
	}
	var shed *api.Error
	if !asAPIError(err, &shed) || shed.RetryAfter() <= 0 {
		t.Fatalf("overflow rejection carries no retry hint: %+v", shed)
	}

	// Raw round trip: the Retry-After header itself must be present.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("raw overflow: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Freeing the slot lets the queued request run to completion.
	hogRelease()
	select {
	case err := <-queuedErr:
		if err != nil {
			t.Fatalf("queued request failed after slot freed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never completed")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission.ShedQueueFull < 2 {
		t.Errorf("shed_queue_full = %d, want >= 2", m.Admission.ShedQueueFull)
	}
	if m.Admission.Queued != 0 {
		t.Errorf("queued = %d after drain, want 0", m.Admission.Queued)
	}
	if m.Admission.Admitted == 0 {
		t.Error("admitted = 0, want the completed analyze counted")
	}
}

// TestRateLimiterSheds429: a client over its per-identity rate is shed
// with 429 rate_limited + Retry-After, while /healthz and GET /v1/metrics
// stay exempt so operators can observe the overload; the metrics count
// the sheds.
func TestRateLimiterSheds429(t *testing.T) {
	_, c := newTestServer(t, Config{RatePerClient: 0.01, RateBurst: 1})
	ctx := context.Background()

	// The single burst token admits exactly one data-plane request.
	if _, err := c.Datasets(ctx); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	_, err := c.Datasets(ctx)
	if !hasCode(err, api.CodeRateLimited, http.StatusTooManyRequests) {
		t.Fatalf("second request: %v, want 429 rate_limited", err)
	}
	var shed *api.Error
	if !asAPIError(err, &shed) || shed.RetryAfter() <= 0 {
		t.Fatalf("429 carries no retry hint: %+v", shed)
	}

	// Observability stays reachable while the client is limited.
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("healthz while limited: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics while limited: %v", err)
	}
	if m.RateLimited < 1 {
		t.Errorf("rate_limited = %d, want >= 1", m.RateLimited)
	}
}

// TestGracefulDrainUnderLoad (the drain-under-load satellite): Drain with
// a non-empty fair queue sheds the queued requests with 503 shutting_down
// + Retry-After, rejects new work the same way, keeps /healthz and GET
// /v1/metrics answering, reconciles the metrics, and still accepts the
// releases of admitted work.
func TestGracefulDrainUnderLoad(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxConcurrentPerDataset: 1})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	e, apiErr := srv.lookup("berkeley")
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	req := api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	}
	// A pre-drain request completes normally (and seeds the queue's
	// hold-time history, so drain retry hints are informed).
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Admitted work: holds the only slot across the drain.
	hogRelease, err := e.queue.Acquire(ctx, "hog", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := c.Analyze(ctx, req)
		queuedErr <- err
	}()
	waitQueued(t, srv, "berkeley", 1)

	srv.Drain()

	// The queued request is shed, typed, with a retry hint — not hung.
	select {
	case err := <-queuedErr:
		if !hasCode(err, api.CodeShuttingDown, http.StatusServiceUnavailable) {
			t.Fatalf("queued request during drain: %v, want 503 shutting_down", err)
		}
		var shed *api.Error
		if !asAPIError(err, &shed) || shed.RetryAfter() <= 0 {
			t.Fatalf("drain rejection carries no retry hint: %+v", shed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request hung through Drain")
	}

	// Fresh work is rejected at the door.
	if _, err := c.Analyze(ctx, req); !hasCode(err, api.CodeShuttingDown, http.StatusServiceUnavailable) {
		t.Fatalf("fresh request during drain: %v, want 503 shutting_down", err)
	}

	// Probes and dashboards keep working; the metrics reconcile.
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics during drain: %v", err)
	}
	if m.Admission.ShedDraining < 1 {
		t.Errorf("shed_draining = %d, want >= 1", m.Admission.ShedDraining)
	}
	if m.Admission.Queued != 0 {
		t.Errorf("queued = %d during drain, want 0 (everything shed)", m.Admission.Queued)
	}

	// Admitted work finishes: its release is still accepted.
	hogRelease()
}

// TestDeadlineUnmeetableShedsTyped: a request whose deadline cannot be met
// given the queue's backlog estimate is shed immediately with a typed 503
// overloaded + Retry-After, instead of waiting out its deadline for a
// bare timeout.
func TestDeadlineUnmeetableShedsTyped(t *testing.T) {
	srv, c := newTestServer(t, Config{
		MaxConcurrentPerDataset: 1,
		RequestTimeout:          20 * time.Millisecond,
	})
	ctx := context.Background()
	if _, err := c.CreateDataset(ctx, "berkeley", berkeleyCSV(t)); err != nil {
		t.Fatal(err)
	}
	e, apiErr := srv.lookup("berkeley")
	if apiErr != nil {
		t.Fatal(apiErr)
	}

	// Teach the queue that work holds a slot for ~200ms.
	rel, err := e.queue.Acquire(ctx, "prime", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	rel()

	// Hog the slot: the next request would wait ~200ms, far past its 20ms
	// deadline.
	hogRelease, err := e.queue.Acquire(ctx, "hog", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hogRelease()

	start := time.Now()
	_, err = c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if !hasCode(err, api.CodeOverloaded, http.StatusServiceUnavailable) {
		t.Fatalf("unmeetable deadline: %v, want typed 503 overloaded", err)
	}
	var shed *api.Error
	if !asAPIError(err, &shed) || shed.RetryAfter() <= 0 {
		t.Fatalf("deadline shed carries no retry hint: %+v", shed)
	}
	// Shed on arrival, not after waiting out the deadline in the queue.
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("shed took %v, want immediate rejection", waited)
	}
	if got := e.queue.Stats().ShedDeadline; got < 1 {
		t.Errorf("shed_deadline = %d, want >= 1", got)
	}
}

// asAPIError unwraps err into an *api.Error.
func asAPIError(err error, target **api.Error) bool {
	return errors.As(err, target)
}
