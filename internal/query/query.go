// Package query implements HypDB's OLAP query model: the group-by-average
// queries of Listing 1, their naive execution, and the bias-removing
// rewriting of Listing 2 — the adjustment formula (Eq 2) with exact
// matching for the total effect, and the mediator formula (Eq 3) for the
// natural direct effect. It also renders both the original and the
// rewritten query as SQL text, as HypDB shows them to the analyst.
package query

import (
	"fmt"
	"sort"
	"strings"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
)

// Query is the OLAP query of Listing 1:
//
//	SELECT T, X, avg(Y1), ..., avg(Ye) FROM D WHERE C GROUP BY T, X
type Query struct {
	// Table is the display name of the relation (SQL rendering only).
	Table string
	// Treatment is the grouping attribute under causal scrutiny (T).
	Treatment string
	// Groupings are the additional group-by attributes (X); each distinct
	// combination of their values is a context Γi.
	Groupings []string
	// Outcomes are the averaged attributes (Y1..Ye); their values must be
	// numeric.
	Outcomes []string
	// Where is the selection condition C; nil selects everything.
	Where dataset.Predicate
}

// Validate checks the query against a table's schema.
func (q Query) Validate(t *dataset.Table) error {
	if q.Treatment == "" {
		return fmt.Errorf("query: empty treatment")
	}
	if !t.HasColumn(q.Treatment) {
		return fmt.Errorf("query: no treatment column %q: %w", q.Treatment, hyperr.ErrUnknownAttribute)
	}
	if len(q.Outcomes) == 0 {
		return fmt.Errorf("query: no outcome attributes")
	}
	seen := map[string]bool{q.Treatment: true}
	for _, y := range q.Outcomes {
		if !t.HasColumn(y) {
			return fmt.Errorf("query: no outcome column %q: %w", y, hyperr.ErrUnknownAttribute)
		}
		if seen[y] {
			return fmt.Errorf("query: attribute %q used twice", y)
		}
		seen[y] = true
		if _, err := t.Float(y); err != nil {
			return fmt.Errorf("query: outcome %q: %v", y, err)
		}
	}
	for _, x := range q.Groupings {
		if !t.HasColumn(x) {
			return fmt.Errorf("query: no grouping column %q: %w", x, hyperr.ErrUnknownAttribute)
		}
		if seen[x] {
			return fmt.Errorf("query: attribute %q used twice", x)
		}
		seen[x] = true
	}
	return nil
}

// SQL renders the query as Listing 1 text.
func (q Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	cols := append([]string{q.Treatment}, q.Groupings...)
	for _, y := range q.Outcomes {
		cols = append(cols, "avg("+y+")")
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString("\nFROM ")
	b.WriteString(q.tableName())
	if q.Where != nil {
		if w := q.Where.SQL(); w != "TRUE" {
			b.WriteString("\nWHERE ")
			b.WriteString(w)
		}
	}
	b.WriteString("\nGROUP BY ")
	b.WriteString(strings.Join(append([]string{q.Treatment}, q.Groupings...), ", "))
	return b.String()
}

func (q Query) tableName() string {
	if q.Table == "" {
		return "D"
	}
	return q.Table
}

// View applies the WHERE clause and returns the selected subpopulation.
func (q Query) View(t *dataset.Table) (*dataset.Table, error) {
	if err := q.Validate(t); err != nil {
		return nil, err
	}
	view, err := t.Select(q.Where)
	if err != nil {
		return nil, err
	}
	if view.NumRows() == 0 {
		return nil, fmt.Errorf("query: WHERE clause selects no rows: %w", hyperr.ErrEmptySelection)
	}
	return view, nil
}

// Row is one line of a (rewritten or original) query answer: a treatment
// value, a context (grouping values, in Groupings order), the per-outcome
// averages, and the supporting row count.
type Row struct {
	Treatment string
	Context   []string
	Avgs      []float64
	Count     int
}

// contextKey renders a context for map keys and sorting.
func contextKey(ctx []string) string { return strings.Join(ctx, "\x00") }

// Answer is the result of executing a query.
type Answer struct {
	Query Query
	Rows  []Row
}

// Run executes the query naively (Listing 1 semantics).
func Run(t *dataset.Table, q Query) (*Answer, error) {
	view, err := q.View(t)
	if err != nil {
		return nil, err
	}
	outcomes := make([][]float64, len(q.Outcomes))
	for i, y := range q.Outcomes {
		vals, err := view.Float(y)
		if err != nil {
			return nil, err
		}
		outcomes[i] = vals
	}
	attrs := append([]string{q.Treatment}, q.Groupings...)
	groups, enc, err := view.GroupBy(attrs...)
	if err != nil {
		return nil, err
	}
	tc, err := view.Column(q.Treatment)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, g := range groups {
		codes := enc.Codes(g.Key)
		row := Row{
			Treatment: tc.Label(codes[0]),
			Context:   make([]string, len(q.Groupings)),
			Avgs:      make([]float64, len(q.Outcomes)),
			Count:     len(g.Rows),
		}
		for i, x := range q.Groupings {
			xc, err := view.Column(x)
			if err != nil {
				return nil, err
			}
			row.Context[i] = xc.Label(codes[1+i])
		}
		for oi := range q.Outcomes {
			sum := 0.0
			for _, r := range g.Rows {
				sum += outcomes[oi][r]
			}
			row.Avgs[oi] = sum / float64(len(g.Rows))
		}
		rows = append(rows, row)
	}
	sortRows(rows)
	return &Answer{Query: q, Rows: rows}, nil
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		ci, cj := contextKey(rows[i].Context), contextKey(rows[j].Context)
		if ci != cj {
			return ci < cj
		}
		return rows[i].Treatment < rows[j].Treatment
	})
}

// Comparison pairs the answers of two treatment values within one context:
// the ∆i of Prop 3.2.
type Comparison struct {
	Context []string
	T0, T1  string
	Avg0    []float64
	Avg1    []float64
	// Diffs[i] = Avg1[i] − Avg0[i] per outcome.
	Diffs  []float64
	N0, N1 int
}

// Compare pairs rows across the two treatment values per context. The
// treatment values are ordered lexicographically (T0 < T1), matching the
// paper's convention of reporting avg(t1) − avg(t0) with a deterministic
// order. Contexts missing either value are skipped.
func (a *Answer) Compare() ([]Comparison, error) {
	vals := a.TreatmentValues()
	if len(vals) != 2 {
		return nil, fmt.Errorf("query: Compare needs exactly 2 treatment values, have %d (%v): %w", len(vals), vals, hyperr.ErrNonBinaryTreatment)
	}
	return a.CompareValues(vals[0], vals[1])
}

// CompareValues pairs rows for the two given treatment values.
func (a *Answer) CompareValues(t0, t1 string) ([]Comparison, error) {
	type cell struct {
		row Row
		ok  bool
	}
	byCtx := make(map[string]*[2]cell)
	order := []string{}
	for _, r := range a.Rows {
		k := contextKey(r.Context)
		slot, ok := byCtx[k]
		if !ok {
			slot = &[2]cell{}
			byCtx[k] = slot
			order = append(order, k)
		}
		switch r.Treatment {
		case t0:
			slot[0] = cell{row: r, ok: true}
		case t1:
			slot[1] = cell{row: r, ok: true}
		}
	}
	sort.Strings(order)
	var out []Comparison
	for _, k := range order {
		slot := byCtx[k]
		if !slot[0].ok || !slot[1].ok {
			continue
		}
		r0, r1 := slot[0].row, slot[1].row
		diffs := make([]float64, len(r0.Avgs))
		for i := range diffs {
			diffs[i] = r1.Avgs[i] - r0.Avgs[i]
		}
		out = append(out, Comparison{
			Context: r0.Context,
			T0:      t0, T1: t1,
			Avg0: r0.Avgs, Avg1: r1.Avgs,
			Diffs: diffs,
			N0:    r0.Count, N1: r1.Count,
		})
	}
	return out, nil
}

// TreatmentValues returns the distinct treatment values present in the
// answer, sorted.
func (a *Answer) TreatmentValues() []string {
	set := make(map[string]bool)
	for _, r := range a.Rows {
		set[r.Treatment] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
