package hypdb_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hypdb"
	"hypdb/internal/countcache"
	"hypdb/internal/datagen"
	"hypdb/internal/server"
	"hypdb/source"
	"hypdb/source/remote"
)

// splitContiguous cuts a table into n contiguous row-range sub-tables, the
// same partitioning the sharded backend applies locally. SelectRows
// compacts each child's dictionaries first-seen in row order, so peers
// admitted back in shard order reproduce the parent's coding exactly.
func splitContiguous(tb testing.TB, tab *hypdb.Table, n int) []*hypdb.Table {
	tb.Helper()
	rows := tab.NumRows()
	parts := make([]*hypdb.Table, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*rows/n, (i+1)*rows/n
		idx := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			idx = append(idx, r)
		}
		sub, err := tab.SelectRows(idx)
		if err != nil {
			tb.Fatal(err)
		}
		parts = append(parts, sub)
	}
	return parts
}

// startPeerCluster boots one hypdbd node per sub-table, each serving its
// slice under the same dataset name, and returns the peer base URLs plus
// the httptest servers (so tests can kill individual peers).
func startPeerCluster(tb testing.TB, name string, parts []*hypdb.Table) ([]string, []*httptest.Server) {
	tb.Helper()
	urls := make([]string, 0, len(parts))
	nodes := make([]*httptest.Server, 0, len(parts))
	for _, part := range parts {
		srv := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		if err := srv.AddDataset(name, part); err != nil {
			tb.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		tb.Cleanup(ts.Close)
		tb.Cleanup(srv.Close)
		urls = append(urls, ts.URL)
		nodes = append(nodes, ts)
	}
	return urls, nodes
}

// fastRemote keeps retry budgets tiny so peer-death tests fail (or degrade)
// in milliseconds instead of the production backoff schedule.
func fastRemote() remote.Options {
	return remote.Options{
		RequestTimeout: 5 * time.Second,
		MaxRetries:     1,
		RetryBackoff:   time.Millisecond,
		HealthInterval: -1, // no background probes; tests control liveness
	}
}

// openRemoteCluster splits the table across n loopback peers and opens a
// coordinator session over them.
func openRemoteCluster(tb testing.TB, name string, tab *hypdb.Table, n int, extra ...hypdb.OpenOption) (*hypdb.DB, []*httptest.Server) {
	tb.Helper()
	urls, nodes := startPeerCluster(tb, name, splitContiguous(tb, tab, n))
	opts := append([]hypdb.OpenOption{
		hypdb.WithRemoteShards(urls...),
		hypdb.WithRemoteOptions(fastRemote()),
	}, extra...)
	db, err := hypdb.OpenRemote(context.Background(), name, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	return db, nodes
}

// TestRemoteClusterReproBerkeley runs the Fig 4 (top) reproduction with the
// Berkeley table scattered over a 4-peer loopback cluster and requires the
// result to be byte-identical to the single-process golden file.
func TestRemoteClusterReproBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := openRemoteCluster(t, "BerkeleyData", tab, 4)
	s := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	checkGolden(t, "berkeley.golden.json", s)
}

// TestRemoteClusterReproStaples is the Fig 3 (bottom) reproduction over a
// 4-peer cluster, against the same golden as the local backends.
func TestRemoteClusterReproStaples(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row cluster repro in -short mode")
	}
	tab, err := datagen.Staples(50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := openRemoteCluster(t, "StaplesData", tab, 4)
	s := analyzeSummaryOn(t, "StaplesData", db, tab.NumRows(), datagen.StaplesQuery(), hypdb.WithSeed(1))
	checkGolden(t, "staples.golden.json", s)
}

// TestRemoteClusterReproFlight is the Fig 1 reproduction over a 4-peer
// cluster, against the same golden as the local backends.
func TestRemoteClusterReproFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("12k-row cluster repro in -short mode")
	}
	tab, err := datagen.Flight(12000, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := openRemoteCluster(t, "FlightData", tab, 4)
	s := analyzeSummaryOn(t, "FlightData", db, tab.NumRows(), datagen.FlightQuery(),
		hypdb.WithSeed(1), hypdb.WithPermutations(200))
	checkGolden(t, "flight.golden.json", s)
}

// TestRemotePeerDeathFailsClosed kills one of four peers and requires the
// default (non-degraded) coordinator to return the typed peer error —
// never a hang, never a silently partial answer.
func TestRemotePeerDeathFailsClosed(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db, nodes := openRemoteCluster(t, "BerkeleyData", tab, 4)
	ctx := context.Background()

	// Kill a peer before any traffic: with a warm counts cache the query
	// would legitimately be answered from the pinned snapshot without the
	// network, so the failure must be provoked on a cold coordinator.
	nodes[2].Close()
	start := time.Now()
	_, err = db.Analyze(ctx, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	if !errors.Is(err, hypdb.ErrPeerUnavailable) {
		t.Fatalf("analyze with a dead peer: err = %v, want ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("fail-closed took %s, want a bounded error", elapsed)
	}
}

// TestRemotePeerDeathDegrades kills one of four peers under
// WithDegradedReads and requires a clean answer over the survivors with
// the staleness marker set — on the report field and in the rendered text.
func TestRemotePeerDeathDegrades(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A healthy degraded-reads cluster is not stale-marked. This needs its
	// own coordinator: a warm counts cache on the shared one would let the
	// post-kill analysis below bypass the network entirely.
	healthy, _ := openRemoteCluster(t, "BerkeleyData", tab, 4, hypdb.WithDegradedReads())
	rep, err := healthy.Analyze(ctx, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	if err != nil {
		t.Fatalf("healthy cluster: %v", err)
	}
	if rep.Degraded {
		t.Error("healthy-cluster report marked degraded")
	}

	db, nodes := openRemoteCluster(t, "BerkeleyData", tab, 4, hypdb.WithDegradedReads())
	nodes[1].Close()
	rep, err = db.Analyze(ctx, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	if err != nil {
		t.Fatalf("degraded analyze: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report over a dead peer not marked degraded")
	}
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "STALE") {
		t.Errorf("degraded text report carries no STALE marker:\n%s", text.String())
	}

	// Three of four Berkeley shards still see both genders and all six
	// departments, so the degraded answer remains directionally sound.
	if len(rep.Mediators) != 1 || rep.Mediators[0] != "Department" {
		t.Errorf("degraded mediators = %v, want [Department]", rep.Mediators)
	}
}

// TestDegradedPartialCountsDieWithTheOutage is the regression test for the
// poisoned-cache bug: a degraded fan-out used to park partial counts in the
// session count cache under the coordinator's pinned snapshot version —
// which never changed for a remote session — so every later analysis was
// answered from the partial view without growing the degraded-serve
// counter: unmarked stale reports during the outage, and partial counts
// served forever after the peer recovered. A degraded serve now advances
// the snapshot version, so the partial entries die with their epoch.
func TestDegradedPartialCountsDieWithTheOutage(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	// One peer is wrapped in a toggle answering 502 while down — an outage
	// with a later recovery, which a killed listener cannot model.
	var down atomic.Bool
	parts := splitContiguous(t, tab, 4)
	urls := make([]string, 0, len(parts))
	for i, part := range parts {
		srv := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		if err := srv.AddDataset("BerkeleyData", part); err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if i == 1 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if down.Load() {
					w.WriteHeader(http.StatusBadGateway)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		t.Cleanup(srv.Close)
		urls = append(urls, ts.URL)
	}
	ctx := context.Background()
	db, err := hypdb.OpenRemote(ctx, "BerkeleyData",
		hypdb.WithRemoteShards(urls...), hypdb.WithRemoteOptions(fastRemote()), hypdb.WithDegradedReads())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// During the outage every analysis rests on partial counts and must be
	// stamped — including repeats of the query that primed the cache.
	down.Store(true)
	for i := 0; i < 2; i++ {
		rep, err := db.Analyze(ctx, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
		if err != nil {
			t.Fatalf("degraded analyze %d: %v", i, err)
		}
		if !rep.Degraded {
			t.Fatalf("analysis %d during the outage not marked degraded", i)
		}
	}

	// After recovery the partial counts must not be served again: the next
	// analysis re-fetches complete counts from all four peers, comes back
	// unmarked, and reproduces the healthy single-process golden
	// byte-for-byte.
	down.Store(false)
	rep, err := db.Analyze(ctx, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	if err != nil {
		t.Fatalf("post-recovery analyze: %v", err)
	}
	if rep.Degraded {
		t.Fatal("post-recovery analysis still marked degraded")
	}
	s := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	checkGolden(t, "berkeley.golden.json", s)
}

// TestRemoteAuditDegrades runs the lattice audit over a cluster with a
// dead peer under degraded reads: the sweep completes and is stamped.
func TestRemoteAuditDegrades(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	db, nodes := openRemoteCluster(t, "BerkeleyData", tab, 4, hypdb.WithDegradedReads())
	nodes[3].Close()
	rep, err := db.Audit(context.Background(), hypdb.AuditSpec{}, hypdb.WithSeed(1))
	if err != nil {
		t.Fatalf("degraded audit: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("audit over a dead peer not marked degraded")
	}
	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "STALE") {
		t.Errorf("degraded audit text carries no STALE marker:\n%s", text.String())
	}
}

// rawRelation unwraps the coordinator's counts cache so benchmarks measure
// the transport, not cache hits.
func rawRelation(tb testing.TB, db *hypdb.DB) source.Relation {
	tb.Helper()
	rel := db.Relation()
	if cc, ok := rel.(*countcache.Relation); ok {
		rel = cc.Inner()
	}
	return rel
}

// BenchmarkRemoteCounts measures one group-by-counts round trip: the local
// in-memory baseline against loopback clusters of 1, 2 and 4 peers. The
// remote path pays JSON + HTTP per call; this pins how much.
func BenchmarkRemoteCounts(b *testing.B) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	attrs := []string{"Gender", "Department"}

	b.Run("local", func(b *testing.B) {
		db := hypdb.Open(tab)
		defer db.Close()
		rel := rawRelation(b, db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rel.Counts(ctx, attrs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, peers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			db, _ := openRemoteCluster(b, "BerkeleyData", tab, peers)
			rel := rawRelation(b, db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rel.Counts(ctx, attrs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
