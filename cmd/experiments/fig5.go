package main

import (
	"context"

	"math/rand"
	"sort"

	"hypdb/internal/cdd"
	"hypdb/internal/core"
	"hypdb/internal/datagen"
	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/query"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

func init() {
	register("fig5a", "1000 random flight queries: SQL diff vs rewritten diff", runFig5a)
	register("fig5b", "parent-recovery F1 vs sample size, all methods", runFig5b)
	register("fig5c", "parent-recovery F1 vs sample size, nodes with ≥2 parents", runFig5c)
	register("fig5d", "parent-recovery F1 vs number of categories", runFig5d)
}

// ---------------------------------------------------------------------------
// Fig 5(a): avoiding false discoveries

func runFig5a(cfg runConfig) error {
	// The paper ran this sweep on 50M flight rows and adjusted for
	// {Airport, Day, Month, DayOfWeek}; per-cell support is what gives the
	// conditional tests their power. At laptop scale we use a few hundred
	// thousand rows and adjust for the generator's true confounders
	// {Airport, Year} — wider sets would fragment the blocks below one row
	// each and void every test, which is a sample-size artifact rather
	// than a property of the method.
	numQueries := 1000
	perms := 400
	rows := 300000
	if cfg.quick {
		numQueries = 150
		perms = 150
		rows = 100000
	}
	tab, err := datagen.Flight(rows, cfg.seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed ^ 0xf165a))

	airports := []string{"COS", "MFE", "MTJ", "ROC", "SEA", "ORD", "JFK", "DEN"}
	carriers := []string{"AA", "UA", "DL", "WN"}
	covariates := []string{"Airport", "Year"}

	var (
		analyzed   int
		origSig    int
		insigAfter int // significant → insignificant after rewriting
		reversed   int // both significant, sign flipped
		samples    [][2]float64
	)
	opts := core.Options{Config: core.Config{Seed: cfg.seed, Permutations: perms, Parallel: true}}
	for qi := 0; qi < numQueries; qi++ {
		// Random context: a pair of carriers, 2-5 airports, optionally a
		// month restriction — the "queries with random months, airports,
		// carriers" of Sec 7.2.
		cs := pick(rng, carriers, 2)
		as := pick(rng, airports, 2+rng.Intn(4))
		where := dataset.And{
			dataset.In{Attr: "Carrier", Values: cs},
			dataset.In{Attr: "Airport", Values: as},
		}
		if rng.Intn(2) == 0 {
			months := pick(rng, []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12"}, 3+rng.Intn(6))
			where = append(where, dataset.In{Attr: "Month", Values: months})
		}
		q := query.Query{Treatment: "Carrier", Outcomes: []string{"Delayed"}, Where: where}

		origDiff, origP, ok := diffAndP(tab, q, nil, opts)
		if !ok {
			continue
		}
		rwDiff, rwP, ok := diffAndP(tab, q, covariates, opts)
		if !ok {
			continue
		}
		analyzed++
		alpha := 0.05
		oSig := origP < alpha
		rSig := rwP < alpha
		if oSig {
			origSig++
			if !rSig {
				insigAfter++
			} else if origDiff*rwDiff < 0 {
				reversed++
			}
		}
		if len(samples) < 12 {
			samples = append(samples, [2]float64{origDiff, rwDiff})
		}
	}
	section("summary over %d random queries (α = 0.05)", analyzed)
	row("queries with significant SQL difference:        %d (%.1f%%)", origSig, pct(origSig, analyzed))
	row("… became insignificant after rewriting:         %d (%.1f%% of significant)", insigAfter, pct(insigAfter, origSig))
	row("… trend reversed after rewriting:               %d (%.1f%% of significant)", reversed, pct(reversed, origSig))
	row("(paper: >10%% became insignificant, 20%% reversed)")
	section("sample scatter points (SQL diff, rewritten diff)")
	for _, s := range samples {
		row("%+.4f  %+.4f", s[0], s[1])
	}
	return nil
}

// diffAndP executes the query (rewritten when covariates are given) and
// returns the first comparison's diff and p-value.
func diffAndP(tab *dataset.Table, q query.Query, covariates []string, opts core.Options) (float64, float64, bool) {
	rel := mem.New(tab)
	var comps []query.Comparison
	if len(covariates) == 0 {
		ans, err := query.Run(context.Background(), rel, q)
		if err != nil {
			return 0, 0, false
		}
		comps, err = ans.Compare()
		if err != nil || len(comps) == 0 {
			return 0, 0, false
		}
	} else {
		rw, err := query.RewriteTotal(context.Background(), rel, q, covariates)
		if err != nil {
			return 0, 0, false
		}
		comps, err = rw.Compare()
		if err != nil || len(comps) == 0 {
			return 0, 0, false
		}
	}
	view, err := q.View(context.Background(), rel)
	if err != nil {
		return 0, 0, false
	}
	res, err := opts.Config.TestBalance(context.Background(), view, q.Outcomes[0], []string{q.Treatment}, covariates)
	if err != nil {
		return 0, 0, false
	}
	return comps[0].Diffs[0], res.PValue, true
}

func pick(rng *rand.Rand, items []string, k int) []string {
	idx := rng.Perm(len(items))
	if k > len(items) {
		k = len(items)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = items[idx[i]]
	}
	sort.Strings(out)
	return out
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// ---------------------------------------------------------------------------
// Fig 5(b,c,d): quality comparison against the CDD baselines

// method is one parent-recovery contender.
type method struct {
	name string
	// parents returns the predicted parent set of each node.
	parents func(tab *dataset.Table, attrs []string, seed int64) (map[string][]string, error)
}

func cdMethod(name string, testMethod core.TestMethod) method {
	return method{name: name, parents: func(tab *dataset.Table, attrs []string, seed int64) (map[string][]string, error) {
		out := make(map[string][]string, len(attrs))
		cfg := core.Config{Method: testMethod, Seed: seed, DisableFallback: true, Permutations: 150, Parallel: true}
		for _, a := range attrs {
			res, err := core.DiscoverCovariates(context.Background(), mem.New(tab), a, exclude(attrs, a), nil, cfg)
			if err != nil {
				return nil, err
			}
			out[a] = res.Parents
		}
		return out, nil
	}}
}

func constraintMethod(name string, boundary cdd.BoundaryAlgorithm) method {
	return method{name: name, parents: func(tab *dataset.Table, attrs []string, seed int64) (map[string][]string, error) {
		p, err := cdd.LearnStructure(context.Background(), mem.New(tab), attrs, cdd.ConstraintConfig{
			Tester:   independence.ChiSquare{Est: stats.MillerMadow},
			Boundary: boundary,
		})
		if err != nil {
			return nil, err
		}
		out := make(map[string][]string, len(attrs))
		for _, a := range attrs {
			ps, err := p.Parents(a)
			if err != nil {
				return nil, err
			}
			out[a] = ps
		}
		return out, nil
	}}
}

func hcMethod(name string, score cdd.ScoreType) method {
	return method{name: name, parents: func(tab *dataset.Table, attrs []string, seed int64) (map[string][]string, error) {
		g, err := cdd.HillClimb(context.Background(), mem.New(tab), attrs, cdd.HillClimbConfig{Score: score})
		if err != nil {
			return nil, err
		}
		out := make(map[string][]string, len(attrs))
		for _, a := range attrs {
			ps, err := g.ParentNames(a)
			if err != nil {
				return nil, err
			}
			out[a] = ps
		}
		return out, nil
	}}
}

func allMethods() []method {
	return []method{
		cdMethod("CD(HyMIT)", core.HyMITMethod),
		cdMethod("CD(MIT)", core.MITSamplingMethod),
		cdMethod("CD(chi2)", core.ChiSquaredMethod),
		constraintMethod("IAMB(chi2)", cdd.IAMBBoundary),
		constraintMethod("FGS(chi2)", cdd.GrowShrinkBoundary),
		hcMethod("HC(BDe)", cdd.BDeu),
		hcMethod("HC(AIC)", cdd.AIC),
		hcMethod("HC(BIC)", cdd.BIC),
	}
}

// qualitySweep scores all methods on RandomData instances; filter selects
// which nodes count (nil = all nodes).
func qualitySweep(cfg runConfig, sizes []int, specOf func(rows int, instance int64) datagen.RandomSpec, filter func(bn map[string][]string, node string) bool) error {
	instances := int64(3)
	if cfg.quick {
		instances = 2
	}
	row("%-11s %10s %8s", "method", "rows", "F1")
	for _, rows := range sizes {
		scores := make(map[string][]float64)
		for inst := int64(0); inst < instances; inst++ {
			tab, bn, err := datagen.Random(specOf(rows, inst))
			if err != nil {
				return err
			}
			truth := make(map[string][]string)
			for _, a := range tab.Columns() {
				ps, err := bn.TrueParents(a)
				if err != nil {
					return err
				}
				truth[a] = ps
			}
			for _, m := range allMethods() {
				predicted, err := m.parents(tab, tab.Columns(), cfg.seed+inst)
				if err != nil {
					return err
				}
				for _, a := range tab.Columns() {
					if filter != nil && !filter(truth, a) {
						continue
					}
					_, _, f1 := cdd.F1Score(predicted[a], truth[a])
					scores[m.name] = append(scores[m.name], f1)
				}
			}
		}
		for _, m := range allMethods() {
			row("%-11s %10d %8.3f", m.name, rows, mean(scores[m.name]))
		}
	}
	return nil
}

func fig5Spec(nodes int) func(rows int, inst int64) datagen.RandomSpec {
	return func(rows int, inst int64) datagen.RandomSpec {
		return datagen.RandomSpec{
			Nodes: nodes, AvgDegree: 2.5, MinCard: 2, MaxCard: 4,
			Alpha: 0.35, Rows: rows, Seed: 1000*inst + 7,
		}
	}
}

func runFig5b(cfg runConfig) error {
	sizes := []int{10000, 50000, 200000}
	if cfg.quick {
		sizes = []int{5000, 20000}
	}
	section("F1 over all nodes (8-node ER DAGs, 2–4 categories)")
	return qualitySweep(cfg, sizes, fig5Spec(8), nil)
}

func runFig5c(cfg runConfig) error {
	sizes := []int{10000, 50000, 200000}
	if cfg.quick {
		sizes = []int{5000, 20000}
	}
	section("F1 over nodes with ≥2 parents (where orientation is identifiable)")
	return qualitySweep(cfg, sizes, fig5Spec(8), func(truth map[string][]string, node string) bool {
		return len(truth[node]) >= 2
	})
}

func runFig5d(cfg runConfig) error {
	rows := 50000
	cards := []int{4, 8, 12, 16, 20}
	if cfg.quick {
		rows = 15000
		cards = []int{4, 10, 16}
	}
	section("F1 vs number of categories (fixed %d rows): sparse data stresses parametric tests", rows)
	row("%-11s %10s %8s", "method", "categories", "F1")
	instances := int64(2)
	for _, card := range cards {
		scores := make(map[string][]float64)
		for inst := int64(0); inst < instances; inst++ {
			tab, bn, err := datagen.Random(datagen.RandomSpec{
				Nodes: 8, AvgDegree: 2.5, MinCard: card, MaxCard: card,
				Alpha: 0.35, Rows: rows, Seed: 500*inst + 11,
			})
			if err != nil {
				return err
			}
			for _, m := range allMethods() {
				predicted, err := m.parents(tab, tab.Columns(), cfg.seed+inst)
				if err != nil {
					return err
				}
				for _, a := range tab.Columns() {
					truthPs, err := bn.TrueParents(a)
					if err != nil {
						return err
					}
					_, _, f1 := cdd.F1Score(predicted[a], truthPs)
					scores[m.name] = append(scores[m.name], f1)
				}
			}
		}
		for _, m := range allMethods() {
			row("%-11s %10d %8.3f", m.name, card, mean(scores[m.name]))
		}
	}
	return nil
}

func exclude(items []string, drop string) []string {
	out := make([]string, 0, len(items))
	for _, x := range items {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
