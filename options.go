package hypdb

import (
	"hypdb/internal/core"
	"hypdb/internal/stats"
)

// Estimator selects the entropy estimator behind mutual-information
// computations.
type Estimator = stats.Estimator

// Entropy estimators for WithEstimator.
const (
	// PlugIn is the maximum-likelihood estimator.
	PlugIn = stats.PlugIn
	// MillerMadow adds the first-order bias correction (the default).
	MillerMadow = stats.MillerMadow
)

// Option configures one DB method call. Options apply in order, so later
// options win; WithOptions and WithConfig replace whole blocks and are
// therefore best placed first.
type Option func(*settings)

// settings is the resolved configuration of one call.
type settings struct {
	opts core.Options
	// workers bounds AnalyzeAll concurrency; zero means GOMAXPROCS.
	workers int
	// maxAdjust caps EffectBounds adjustment-set sizes; zero means all.
	maxAdjust int
	// auditWorkers bounds the Audit sweep pool; zero means GOMAXPROCS.
	auditWorkers int
	// minSupport is the Audit support threshold; zero means the spec's
	// value (or DefaultMinSupport).
	minSupport int
	// noPlanner disables the lattice-aware batch planner (WithPlanner).
	noPlanner bool
	// planCellBudget overrides the planner's per-cuboid cell budget; zero
	// means opts.CellBudget (then dataset.DefaultCellBudget).
	planCellBudget int
}

func newSettings(opts []Option) settings {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithOptions replaces the whole Options block — the migration escape hatch
// for callers that built a core-style Options value under the old API.
func WithOptions(o Options) Option { return func(s *settings) { s.opts = o } }

// WithConfig replaces the analysis Config wholesale, keeping the
// report-shaping knobs already set.
func WithConfig(c Config) Option { return func(s *settings) { s.opts.Config = c } }

// WithMethod selects the conditional-independence test (HyMIT, ChiSquared,
// MIT, MITSampling).
func WithMethod(m TestMethod) Option { return func(s *settings) { s.opts.Method = m } }

// WithAlpha sets the significance level (default 0.01).
func WithAlpha(alpha float64) Option { return func(s *settings) { s.opts.Alpha = alpha } }

// WithPermutations sets the Monte-Carlo replicate count for MIT-based tests
// (default 1000).
func WithPermutations(n int) Option { return func(s *settings) { s.opts.Permutations = n } }

// WithSeed fixes the seed of every Monte-Carlo component.
func WithSeed(seed int64) Option { return func(s *settings) { s.opts.Seed = seed } }

// WithBeta sets HyMIT's sample-per-degree-of-freedom threshold (default 5).
func WithBeta(beta float64) Option { return func(s *settings) { s.opts.Beta = beta } }

// WithSampleFactor scales MIT's conditioning-group sample size.
func WithSampleFactor(f float64) Option { return func(s *settings) { s.opts.SampleFactor = f } }

// WithParallel fans permutation replicates out over all cores.
func WithParallel(on bool) Option { return func(s *settings) { s.opts.Parallel = on } }

// WithEstimator selects the entropy estimator (default MillerMadow).
func WithEstimator(e Estimator) Option {
	return func(s *settings) {
		s.opts.Estimator = e
		s.opts.EstimatorSet = true
	}
}

// WithMaxCondSet caps conditioning-set sizes enumerated by the CD search.
func WithMaxCondSet(n int) Option { return func(s *settings) { s.opts.MaxCondSet = n } }

// WithMaxBoundary caps Markov-boundary growth.
func WithMaxBoundary(n int) Option { return func(s *settings) { s.opts.MaxBoundary = n } }

// WithoutEntropyCache disables the Sec 6 entropy cache.
func WithoutEntropyCache() Option { return func(s *settings) { s.opts.DisableEntropyCache = true } }

// WithoutMaterialization disables contingency-table materialization.
func WithoutMaterialization() Option {
	return func(s *settings) { s.opts.DisableMaterialization = true }
}

// WithoutFallback disables the Sec 4 fallback covariate set when the CD
// algorithm finds no parents.
func WithoutFallback() Option { return func(s *settings) { s.opts.DisableFallback = true } }

// WithExplanations shapes the report's explanation sections: attrs is how
// many top-responsibility attributes receive fine-grained explanations, and
// topK the number of triples each (both default to 2, the paper's figures).
func WithExplanations(attrs, topK int) Option {
	return func(s *settings) {
		s.opts.FineAttrs = attrs
		s.opts.FineTopK = topK
	}
}

// WithBaseline fixes the treatment value whose mediator distribution the
// direct-effect rewriting holds constant; empty selects the smallest.
func WithBaseline(value string) Option { return func(s *settings) { s.opts.Baseline = value } }

// WithoutDirectEffect disables mediator discovery and the direct-effect
// rewriting.
func WithoutDirectEffect() Option { return func(s *settings) { s.opts.SkipDirect = true } }

// WithCovariates overrides automatic covariate discovery with a fixed set.
func WithCovariates(covariates ...string) Option {
	return func(s *settings) { s.opts.Covariates = append([]string(nil), covariates...) }
}

// WithMediators overrides automatic mediator discovery with a fixed set.
func WithMediators(mediators ...string) Option {
	return func(s *settings) { s.opts.Mediators = append([]string(nil), mediators...) }
}

// WithCellBudget bounds the cell space (product of attribute
// cardinalities) of the large dense tabulations the analysis materializes:
// the contingency-table materialization of the CD phases and the closure
// priming of the session count cache fall back to sparse counting (or skip
// priming) above the budget. The default is dataset.DefaultCellBudget
// (2^22 cells); lowering it trades speed for memory on
// very-high-cardinality schemas. Per-test tabulations and the session
// cache's own views always use the package default, which their attribute
// sets stay far below.
func WithCellBudget(cells int) Option { return func(s *settings) { s.opts.CellBudget = cells } }

// WithWorkers bounds AnalyzeAll's worker pool (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *settings) { s.workers = n } }

// WithAuditWorkers bounds the Audit sweep's worker pool (default
// GOMAXPROCS). A non-zero AuditSpec.Workers wins over this option.
func WithAuditWorkers(n int) Option { return func(s *settings) { s.auditWorkers = n } }

// WithMinSupport sets the Audit support threshold: candidate queries whose
// smaller compared treatment group has fewer rows are pruned (and reported
// as pruned) before any statistical test runs. The default is
// DefaultMinSupport; a non-zero AuditSpec.MinSupport wins over this option.
func WithMinSupport(n int) Option { return func(s *settings) { s.minSupport = n } }

// WithMaxAdjustmentSize caps the adjustment-set sizes EffectBounds
// enumerates (default: every subset of the candidates).
func WithMaxAdjustmentSize(n int) Option { return func(s *settings) { s.maxAdjust = n } }

// WithPlanner enables or disables the lattice-aware multi-query planner
// (default on). When on, AnalyzeAll and Audit first solve a materialized-
// view selection over the batch's count demands and prime the session
// count cache with one shared cuboid frontier; concurrent calls on the
// handle coalesce their demands into the same plan. The planner is a cost
// optimization only — counts and reports are byte-identical either way —
// so WithPlanner(false) is purely a debugging/measurement switch.
func WithPlanner(on bool) Option { return func(s *settings) { s.noPlanner = !on } }

// WithPlanCellBudget bounds the estimated cell count of each cuboid the
// batch planner materializes, independently of WithCellBudget (which keeps
// governing the per-request tabulations). Demands whose closure exceeds it
// get a trimmed best-effort cuboid; the plan's total footprint is capped at
// a small multiple of this budget. Zero means the WithCellBudget value,
// then dataset.DefaultCellBudget.
func WithPlanCellBudget(cells int) Option { return func(s *settings) { s.planCellBudget = cells } }
