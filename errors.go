package hypdb

import "hypdb/internal/hyperr"

// Sentinel errors classifying the library's failure modes. Every layer
// wraps these with contextual detail, so they are matched with errors.Is:
//
//	_, err := db.Analyze(ctx, q)
//	if errors.Is(err, hypdb.ErrUnknownAttribute) { ... }
//
// Cancellation surfaces as the context's own error: errors.Is(err,
// context.Canceled) or context.DeadlineExceeded.
var (
	// ErrUnknownAttribute reports a reference to a column the table does
	// not have (bad treatment, outcome, grouping, covariate or candidate).
	ErrUnknownAttribute = hyperr.ErrUnknownAttribute

	// ErrNoOverlap reports that the bias-removing rewriting is impossible:
	// no covariate block contains every treatment value, so exact matching
	// (Listing 2) has nothing to adjust over.
	ErrNoOverlap = hyperr.ErrNoOverlap

	// ErrEmptySelection reports a WHERE clause that selects no rows.
	ErrEmptySelection = hyperr.ErrEmptySelection

	// ErrEmptyTable reports an independence test over zero rows.
	ErrEmptyTable = hyperr.ErrEmptyTable

	// ErrNonBinaryTreatment reports a comparison that needs exactly two
	// treatment values in the selected data.
	ErrNonBinaryTreatment = hyperr.ErrNonBinaryTreatment

	// ErrNonNumericOutcome reports an attribute used in the outcome role
	// (of a query or an audit spec) whose values do not all parse as
	// numbers, so avg() over it is undefined.
	ErrNonNumericOutcome = hyperr.ErrNonNumericOutcome

	// ErrMalformedCSV reports CSV input the loader cannot turn into a
	// table: unreadable records, ragged rows, or an unusable header.
	ErrMalformedCSV = hyperr.ErrMalformedCSV

	// ErrBadPredicate reports WHERE-clause text ParsePredicate rejects.
	ErrBadPredicate = hyperr.ErrBadPredicate

	// ErrNeedsMaterialization reports an analysis path that requires
	// row-level data (e.g. the naive shuffle permutation test) applied to
	// a counts-only storage backend. Use a backend implementing
	// source.Materializer, or a counts-based method.
	ErrNeedsMaterialization = hyperr.ErrNeedsMaterialization

	// ErrNotAppendable reports an Append against a backend that cannot
	// grow. Only relations implementing source.Appender — the sharded
	// backend behind WithShards, and custom backends opting in — accept
	// streamed rows; plain mem and SQL handles remain immutable.
	ErrNotAppendable = hyperr.ErrNotAppendable

	// ErrPeerUnavailable reports a remote shard (a hypdbd peer opened by
	// OpenRemote) that could not be reached: connection refused, timed out
	// past the retry budget, or 5xx until retries ran out. Without
	// WithDegradedReads the failure aborts the read; with it, the
	// surviving shards answer alone and the report is marked Degraded.
	ErrPeerUnavailable = hyperr.ErrPeerUnavailable

	// ErrVersionSkew reports a remote peer whose dataset moved to a
	// different snapshot version than the one pinned when the remote
	// relation was opened. Mixing epochs would silently corrupt
	// statistics, so the read fails — closed, never degraded — until the
	// remote dataset is re-opened at the new version.
	ErrVersionSkew = hyperr.ErrVersionSkew

	// ErrPeerAuth reports a remote peer that rejected this node's bearer
	// credentials with 401/403. A misconfigured token is not an outage:
	// the failure is never retried and never degraded away (even under
	// WithDegradedReads), so meshes fail loud instead of silently serving
	// partial counts. Attach the peer's token with the "url@token" peer
	// spec (WithRemoteShards, the -peer flag) and re-open.
	ErrPeerAuth = hyperr.ErrPeerAuth
)
