package query

import (
	"strconv"
	"strings"
)

// RewrittenSQL renders the Listing 2 rewriting of the query as SQL text,
// with the discovered covariates Z inlined (cf. Listing 3, the rewritten
// query of Example 1.1). It is display-only; execution goes through
// RewriteTotal/RewriteDirect.
func (q Query) RewrittenSQL(covariates []string) string {
	groupCols := append(append([]string{q.Treatment}, covariates...), q.Groupings...)
	weightCols := append(append([]string(nil), covariates...), q.Groupings...)

	var b strings.Builder
	b.WriteString("WITH Blocks AS (\n  SELECT ")
	cols := append([]string(nil), groupCols...)
	for i, y := range q.Outcomes {
		cols = append(cols, "avg("+y+") AS Avg"+strconv.Itoa(i+1))
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString("\n  FROM ")
	b.WriteString(q.tableName())
	q.writeWhere(&b, "  ")
	b.WriteString("\n  GROUP BY ")
	b.WriteString(strings.Join(groupCols, ", "))
	b.WriteString("\n),\nWeights AS (\n  SELECT ")
	b.WriteString(strings.Join(append(append([]string(nil), weightCols...), "count(*)/n AS W"), ", "))
	b.WriteString("\n  FROM ")
	b.WriteString(q.tableName())
	q.writeWhere(&b, "  ")
	b.WriteString("\n  GROUP BY ")
	b.WriteString(strings.Join(weightCols, ", "))
	b.WriteString("\n  HAVING count(DISTINCT ")
	b.WriteString(q.Treatment)
	b.WriteString(") = 2\n)\nSELECT ")
	sel := append([]string{"Blocks." + q.Treatment}, prefixAll("Blocks.", q.Groupings)...)
	for i := range q.Outcomes {
		sel = append(sel, "sum(Avg"+strconv.Itoa(i+1)+" * W)")
	}
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM Blocks, Weights\nWHERE ")
	var joins []string
	for _, c := range weightCols {
		joins = append(joins, "Blocks."+c+" = Weights."+c)
	}
	b.WriteString(strings.Join(joins, " AND\n      "))
	b.WriteString("\nGROUP BY ")
	b.WriteString(strings.Join(append([]string{"Blocks." + q.Treatment}, prefixAll("Blocks.", q.Groupings)...), ", "))
	return b.String()
}

func (q Query) writeWhere(b *strings.Builder, indent string) {
	if q.Where == nil {
		return
	}
	if w := q.Where.SQL(); w != "TRUE" {
		b.WriteString("\n")
		b.WriteString(indent)
		b.WriteString("WHERE ")
		b.WriteString(w)
	}
}

func prefixAll(prefix string, items []string) []string {
	out := make([]string, len(items))
	for i, s := range items {
		out[i] = prefix + s
	}
	return out
}
