package hypdb_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"hypdb"
	"hypdb/internal/datagen"
)

func berkeleyDB(t *testing.T) *hypdb.DB {
	t.Helper()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	return hypdb.Open(tab)
}

// TestAnalyzeMemoizesCovariateDiscovery is the cache contract: a second
// identical Analyze on one handle performs zero new covariate discoveries —
// every CD call is answered from the memo, observed via the Stats counters.
func TestAnalyzeMemoizesCovariateDiscovery(t *testing.T) {
	db := berkeleyDB(t)
	ctx := context.Background()
	q := datagen.BerkeleyQuery()
	opts := []hypdb.Option{hypdb.WithSeed(3), hypdb.WithMethod(hypdb.ChiSquared)}

	rep1, err := db.Analyze(ctx, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cold := db.Stats()
	if cold.CDComputes == 0 {
		t.Fatal("first Analyze reported zero covariate discoveries")
	}

	rep2, err := db.Analyze(ctx, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	warm := db.Stats()
	if warm.CDComputes != cold.CDComputes {
		t.Errorf("second identical Analyze ran %d new covariate discoveries, want 0",
			warm.CDComputes-cold.CDComputes)
	}
	if warm.CDHits <= cold.CDHits {
		t.Errorf("second Analyze recorded no cache hits (hits %d → %d)", cold.CDHits, warm.CDHits)
	}
	if !reflect.DeepEqual(rep1.Covariates, rep2.Covariates) {
		t.Errorf("cached covariates diverge: %v vs %v", rep1.Covariates, rep2.Covariates)
	}

	// A different configuration must not be answered from the cache.
	if _, err := db.Analyze(ctx, q, hypdb.WithSeed(99), hypdb.WithMethod(hypdb.ChiSquared)); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats(); after.CDComputes == warm.CDComputes {
		t.Error("changed config was served from the cache")
	}

	db.ResetCache()
	if s := db.Stats(); s.CDComputes != 0 || s.CDHits != 0 {
		t.Errorf("ResetCache left counters %+v", s)
	}
}

// TestDiscoverCovariatesMemoized covers the public discovery entry point's
// own memoization, including the cached result being a defensive copy.
func TestDiscoverCovariatesMemoized(t *testing.T) {
	db := berkeleyDB(t)
	ctx := context.Background()
	args := func() (string, []string, []string) {
		return "Gender", []string{"Department", "Accepted"}, []string{"Accepted"}
	}

	tr, cands, outs := args()
	cd1, err := db.DiscoverCovariates(ctx, tr, cands, outs, hypdb.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Stats(); got.CDComputes != 1 || got.CDHits != 0 {
		t.Fatalf("after first discovery: %+v", got)
	}
	// Mutating the returned result must not poison the cache.
	cd1.Parents = append(cd1.Parents, "Poison")

	cd2, err := db.DiscoverCovariates(ctx, tr, cands, outs, hypdb.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Stats(); got.CDComputes != 1 || got.CDHits != 1 {
		t.Fatalf("after second discovery: %+v", got)
	}
	for _, p := range cd2.Parents {
		if p == "Poison" {
			t.Fatal("cache returned the caller-mutated slice")
		}
	}
}

// TestAnalyzeCancellation: a context cancelled while the Monte-Carlo
// permutation loop is running aborts the analysis with the context's error,
// well before the uncancelled run would finish.
func TestAnalyzeCancellation(t *testing.T) {
	tab, err := datagen.Flight(12000, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := hypdb.Open(tab)
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		// Full MIT with an enormous replicate count: minutes of permutation
		// work if cancellation were ignored.
		_, err := db.Analyze(ctx, datagen.FlightQuery(),
			hypdb.WithMethod(hypdb.MIT), hypdb.WithPermutations(5_000_000), hypdb.WithSeed(1))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Analyze returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Analyze did not return within 30s of cancellation")
	}
}

// TestAnalyzePreCancelled: an already-dead context never starts work.
func TestAnalyzePreCancelled(t *testing.T) {
	db := berkeleyDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Analyze(ctx, datagen.BerkeleyQuery()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s := db.Stats(); s.CDComputes != 0 {
		t.Errorf("pre-cancelled Analyze still ran %d discoveries", s.CDComputes)
	}
}

// TestAnalyzeAllSharesCache runs one query many times over a ≥4-worker
// pool: the single-flight cache must collapse the covariate discoveries to
// one computation per distinct target. Run under -race this also guards the
// handle's concurrency claims.
func TestAnalyzeAllSharesCache(t *testing.T) {
	db := berkeleyDB(t)
	q := datagen.BerkeleyQuery()
	queries := make([]hypdb.Query, 8)
	for i := range queries {
		queries[i] = q
	}

	reports, err := db.AnalyzeAll(context.Background(), queries,
		hypdb.WithWorkers(4), hypdb.WithSeed(3), hypdb.WithMethod(hypdb.ChiSquared))
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("report %d missing", i)
		}
		if !reflect.DeepEqual(rep.Covariates, reports[0].Covariates) {
			t.Errorf("report %d covariates %v != %v", i, rep.Covariates, reports[0].Covariates)
		}
	}
	s := db.Stats()
	// One treatment CD plus one mediator CD per outcome; everything else
	// must be a hit.
	if s.CDComputes > 2 {
		t.Errorf("batch ran %d covariate discoveries, want ≤ 2", s.CDComputes)
	}
	if s.CDHits < len(queries) {
		t.Errorf("batch recorded only %d cache hits across %d identical queries", s.CDHits, len(queries))
	}
}

// TestAnalyzeAllPropagatesError: one bad query fails the batch with a
// classified error; the context machinery must not deadlock the pool.
func TestAnalyzeAllPropagatesError(t *testing.T) {
	db := berkeleyDB(t)
	good := datagen.BerkeleyQuery()
	bad := good
	bad.Treatment = "NoSuchColumn"
	_, err := db.AnalyzeAll(context.Background(), []hypdb.Query{good, bad, good, good},
		hypdb.WithWorkers(4), hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(1))
	if !errors.Is(err, hypdb.ErrUnknownAttribute) {
		t.Fatalf("got %v, want ErrUnknownAttribute", err)
	}
}

// TestSentinelErrors pins the errors.Is contract of the public API.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()

	t.Run("unknown attribute", func(t *testing.T) {
		db := berkeleyDB(t)
		q := datagen.BerkeleyQuery()
		q.Treatment = "Missing"
		if _, err := db.Analyze(ctx, q); !errors.Is(err, hypdb.ErrUnknownAttribute) {
			t.Errorf("Analyze: got %v", err)
		}
		if _, err := db.DiscoverCovariates(ctx, "Missing", []string{"Department"}, nil); !errors.Is(err, hypdb.ErrUnknownAttribute) {
			t.Errorf("DiscoverCovariates: got %v", err)
		}
	})

	t.Run("no overlap", func(t *testing.T) {
		// Z duplicates T exactly, so no Z-block contains both treatments.
		b := hypdb.NewBuilder("T", "Z", "Y")
		for i := 0; i < 40; i++ {
			v := "a"
			if i%2 == 0 {
				v = "b"
			}
			if err := b.Add(v, v, "1"); err != nil {
				t.Fatal(err)
			}
		}
		tab, err := b.Table()
		if err != nil {
			t.Fatal(err)
		}
		q := hypdb.Query{Treatment: "T", Outcomes: []string{"Y"}}
		_, err = hypdb.Open(tab).RewriteTotal(ctx, q, []string{"Z"})
		if !errors.Is(err, hypdb.ErrNoOverlap) {
			t.Errorf("got %v, want ErrNoOverlap", err)
		}
	})

	t.Run("empty selection", func(t *testing.T) {
		db := berkeleyDB(t)
		q := datagen.BerkeleyQuery()
		q.Where = hypdb.Eq{Attr: "Department", Value: "Nowhere"}
		if _, err := db.Run(ctx, q); !errors.Is(err, hypdb.ErrEmptySelection) {
			t.Errorf("got %v, want ErrEmptySelection", err)
		}
	})

	t.Run("non-binary treatment", func(t *testing.T) {
		b := hypdb.NewBuilder("T", "Z", "Y")
		for i, v := range []string{"a", "b", "c", "a", "b", "c", "a", "b"} {
			z := "0"
			if i%2 == 0 {
				z = "1"
			}
			if err := b.Add(v, z, "1"); err != nil {
				t.Fatal(err)
			}
		}
		tab, err := b.Table()
		if err != nil {
			t.Fatal(err)
		}
		q := hypdb.Query{Treatment: "T", Outcomes: []string{"Y"}}
		_, err = hypdb.Open(tab).EffectBounds(ctx, q, []string{"Z"})
		if !errors.Is(err, hypdb.ErrNonBinaryTreatment) {
			t.Errorf("got %v, want ErrNonBinaryTreatment", err)
		}
	})
}

// TestWhereClauseKeysCache: queries differing only in WHERE must not share
// CD results (their views differ), while re-running either query hits.
func TestWhereClauseKeysCache(t *testing.T) {
	db := berkeleyDB(t)
	ctx := context.Background()
	opts := []hypdb.Option{hypdb.WithSeed(3), hypdb.WithMethod(hypdb.ChiSquared)}

	full := datagen.BerkeleyQuery()
	narrowed := full
	narrowed.Where = hypdb.In{Attr: "Department", Values: []string{"A", "B", "C"}}

	if _, err := db.Analyze(ctx, full, opts...); err != nil {
		t.Fatal(err)
	}
	afterFull := db.Stats()
	if _, err := db.Analyze(ctx, narrowed, opts...); err != nil {
		t.Fatal(err)
	}
	afterNarrow := db.Stats()
	if afterNarrow.CDComputes == afterFull.CDComputes {
		t.Error("narrowed WHERE was served from the full-table cache entry")
	}
	if _, err := db.Analyze(ctx, narrowed, opts...); err != nil {
		t.Fatal(err)
	}
	if again := db.Stats(); again.CDComputes != afterNarrow.CDComputes {
		t.Error("repeated narrowed query missed the cache")
	}
}

// customPred is a user-defined Predicate outside the built-in combinators:
// such predicates have no canonical cache encoding, so Analyze must bypass
// the covariate-discovery memo rather than risk a wrong shared entry.
type customPred struct{}

func (customPred) Eval(t *hypdb.Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for i := range out {
		out[i] = true
	}
	return out, nil
}

func (customPred) SQL() string { return "TRUE" }

func TestCustomPredicateBypassesCache(t *testing.T) {
	db := berkeleyDB(t)
	ctx := context.Background()
	q := datagen.BerkeleyQuery()
	q.Where = customPred{}

	rep, err := db.Analyze(ctx, q, hypdb.WithSeed(3), hypdb.WithMethod(hypdb.ChiSquared))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Mediators) == 0 {
		t.Fatalf("custom-predicate analysis produced no mediators: %+v", rep)
	}
	if s := db.Stats(); s.CDComputes != 0 || s.CDHits != 0 {
		t.Errorf("custom predicate touched the cache: %+v", s)
	}
}
