package memsql

import (
	"database/sql"
	"testing"

	"hypdb/internal/dataset"
)

func registerFixture(t *testing.T, name string) *sql.DB {
	t.Helper()
	b := dataset.NewBuilder("Carrier", "Airport", "Delayed")
	for _, r := range [][3]string{
		{"AA", "COS", "1"}, {"AA", "COS", "0"}, {"UA", "COS", "0"},
		{"UA", "MFE", "1"}, {"AA", "MFE", "1"}, {"UA", "MFE", "0"},
		{"AA", "RO C", "0"}, // value with a space exercises quoting
	} {
		b.MustAdd(r[0], r[1], r[2])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	Register(name, tab)
	t.Cleanup(func() { Unregister(name) })
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSchemaProbe(t *testing.T) {
	db := registerFixture(t, "probe")
	rows, err := db.Query(`SELECT * FROM "probe" WHERE 1=0`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[0] != "Carrier" {
		t.Fatalf("columns = %v", cols)
	}
	if rows.Next() {
		t.Fatal("schema probe returned rows")
	}
}

func TestCountStar(t *testing.T) {
	db := registerFixture(t, "countstar")
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM "countstar"`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("COUNT(*) = %d, want 7", n)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM "countstar" WHERE Carrier = 'AA'`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("filtered COUNT(*) = %d, want 4", n)
	}
}

func TestDistinct(t *testing.T) {
	db := registerFixture(t, "distinct")
	rows, err := db.Query(`SELECT DISTINCT "Airport" FROM "distinct"`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	seen := map[string]bool{}
	for rows.Next() {
		var v string
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		seen[v] = true
	}
	if len(seen) != 3 || !seen["RO C"] {
		t.Fatalf("distinct airports = %v", seen)
	}
}

func TestGroupByCounts(t *testing.T) {
	db := registerFixture(t, "groupby")
	rows, err := db.Query(`SELECT "Carrier", "Delayed", COUNT(*) FROM "groupby" WHERE Airport IN ('COS','MFE') GROUP BY "Carrier", "Delayed"`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := map[string]int{}
	for rows.Next() {
		var c, d string
		var n int
		if err := rows.Scan(&c, &d, &n); err != nil {
			t.Fatal(err)
		}
		got[c+"/"+d] = n
	}
	want := map[string]int{"AA/1": 2, "AA/0": 1, "UA/0": 2, "UA/1": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %s = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}

func TestProjectionPreservesRowOrder(t *testing.T) {
	db := registerFixture(t, "projection")
	rows, err := db.Query(`SELECT "Carrier" FROM "projection" WHERE Delayed = '1'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var v string
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	want := []string{"AA", "UA", "AA"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
}

func TestRejectsUnsupportedSQL(t *testing.T) {
	db := registerFixture(t, "reject")
	for _, q := range []string{
		`DELETE FROM "reject"`,
		`SELECT * FROM "reject"`, // only valid as a schema probe
		`SELECT Carrier, COUNT(*) FROM "reject"`,
		`SELECT COUNT(*) FROM "missing_table"`,
	} {
		if rows, err := db.Query(q); err == nil {
			rows.Close()
			t.Errorf("query %q unexpectedly succeeded", q)
		}
	}
}

func TestWhitespaceInsideLiteralsPreserved(t *testing.T) {
	b := dataset.NewBuilder("city", "n")
	b.MustAdd("New  York", "1") // two spaces — must survive normalization
	b.MustAdd("New York", "2")
	b.MustAdd("New  York", "3")
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	Register("ws", tab)
	defer Unregister("ws")
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM "ws" WHERE "city" = 'New  York'`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("COUNT(*) with double-space literal = %d, want 2", n)
	}
}

func TestCountDistinct(t *testing.T) {
	db := registerFixture(t, "countdistinct")
	var n int
	if err := db.QueryRow(`SELECT COUNT(DISTINCT "Airport") FROM "countdistinct"`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("COUNT(DISTINCT Airport) = %d, want 3", n)
	}
	if err := db.QueryRow(`SELECT COUNT(DISTINCT "Airport") FROM "countdistinct" WHERE Carrier = 'UA'`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("filtered COUNT(DISTINCT Airport) = %d, want 2", n)
	}
}
