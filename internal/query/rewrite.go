package query

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/hyperr"
	"hypdb/source"
)

// EffectKind distinguishes the two rewritings HypDB performs (Sec 3.3).
type EffectKind int

const (
	// TotalEffect is the ATE rewriting: the adjustment formula (Eq 2) over
	// the covariates Z with exact matching.
	TotalEffect EffectKind = iota
	// DirectEffect is the NDE rewriting: the mediator formula (Eq 3) over
	// covariates Z and mediators M.
	DirectEffect
)

// String implements fmt.Stringer.
func (k EffectKind) String() string {
	if k == DirectEffect {
		return "direct"
	}
	return "total"
}

// Rewritten is the answer of a rewritten (bias-removing) query.
type Rewritten struct {
	Kind       EffectKind
	Covariates []string
	Mediators  []string // DirectEffect only
	// Baseline is the treatment value whose mediator distribution is held
	// fixed in the DirectEffect rewriting.
	Baseline string
	Rows     []Row
	// BlocksTotal and BlocksKept report the exact-matching (overlap)
	// pruning: how many homogeneous blocks existed and how many had every
	// treatment value present.
	BlocksTotal int
	BlocksKept  int
	// RowsKeptFraction is the fraction of data rows inside kept blocks.
	RowsKeptFraction float64
}

// Compare pairs rewritten rows across the two treatment values, as
// Answer.Compare does for the original query.
func (r *Rewritten) Compare() ([]Comparison, error) {
	return (&Answer{Rows: r.Rows}).Compare()
}

// blockStat accumulates the per-(treatment, block) row count and outcome
// sums.
type blockStat struct {
	count int
	sums  []float64
}

// cellAgg is one homogeneous block (x, z, m): its context codes, the
// rendered x- and z-key parts, and per-treatment statistics.
type cellAgg struct {
	ctxCodes []int32
	xKey     string
	zKey     string
	byT      map[string]blockStat
	total    int
}

// RewriteTotal executes the Listing 2 rewriting: it partitions the WHERE
// view into blocks homogeneous on (Z, X), discards blocks missing any
// treatment value (exact matching, enforcing Overlap), and returns the
// weighted averages of block averages with weights Pr(z | x) re-normalized
// over the kept blocks.
func RewriteTotal(ctx context.Context, rel source.Relation, q Query, covariates []string) (*Rewritten, error) {
	return rewrite(ctx, rel, q, covariates, nil, "", TotalEffect)
}

// RewriteDirect executes the mediator-formula rewriting (Eq 3): block
// averages over (T, Z, M, X) are combined with mediator weights
// Pr(m | baseline, z, x) and covariate weights Pr(z | x). The answer for
// treatment value t estimates E[Y(t, M(baseline))]; the difference between
// the two treatment rows estimates the natural direct effect. An empty
// baseline selects the lexicographically smallest treatment value.
func RewriteDirect(ctx context.Context, rel source.Relation, q Query, covariates, mediators []string, baseline string) (*Rewritten, error) {
	if len(mediators) == 0 {
		return nil, fmt.Errorf("query: direct-effect rewriting needs at least one mediator")
	}
	return rewrite(ctx, rel, q, covariates, mediators, baseline, DirectEffect)
}

func rewrite(ctx context.Context, rel source.Relation, q Query, covariates, mediators []string, baseline string, kind EffectKind) (*Rewritten, error) {
	view, err := q.View(ctx, rel)
	if err != nil {
		return nil, err
	}
	if err := checkAdjustmentAttrs(rel, q, covariates, "covariate"); err != nil {
		return nil, err
	}
	if err := checkAdjustmentAttrs(rel, q, mediators, "mediator"); err != nil {
		return nil, err
	}
	for _, m := range mediators {
		for _, z := range covariates {
			if m == z {
				return nil, fmt.Errorf("query: attribute %q is both covariate and mediator", m)
			}
		}
	}
	if kind == TotalEffect && len(covariates) == 0 {
		return nil, fmt.Errorf("query: total-effect rewriting needs at least one covariate")
	}

	tDict, err := view.Labels(ctx, q.Treatment)
	if err != nil {
		return nil, err
	}
	numT := len(tDict)
	if numT < 2 {
		return nil, fmt.Errorf("query: treatment %q has a single value in the selected data", q.Treatment)
	}
	tLabels := append([]string(nil), tDict...)
	sort.Strings(tLabels)
	if kind == DirectEffect {
		if baseline == "" {
			baseline = tLabels[0]
		}
		if indexOf(tLabels, baseline) < 0 {
			return nil, fmt.Errorf("query: baseline %q is not a treatment value (have %v)", baseline, tLabels)
		}
	}

	yvals := make([][]float64, len(q.Outcomes))
	for i, y := range q.Outcomes {
		yvals[i], err = FloatDict(ctx, view, y)
		if err != nil {
			return nil, fmt.Errorf("query: outcome %q: %w", y, err)
		}
	}

	// One pushed-down group-by over (T, X, Z, M, Y...): the composite key
	// layout gives direct access to the treatment field and the x-/z-parts;
	// outcome fields are folded into per-block sums.
	attrs := append([]string{q.Treatment}, q.Groupings...)
	attrs = append(attrs, covariates...)
	attrs = append(attrs, mediators...)
	nK := len(attrs) // block fields (everything but the outcomes)
	attrs = append(attrs, q.Outcomes...)
	counts, err := view.Counts(ctx, attrs, nil)
	if err != nil {
		return nil, err
	}
	nX := len(q.Groupings)
	nZ := len(covariates)

	cells := make(map[string]*cellAgg)
	var cellOrder []string
	viewRows := 0
	for k, c := range counts {
		viewRows += c
		tLabel := tDict[k.Field(0)]
		key := string(k.Slice(1, nK)) // everything except treatment and outcomes
		agg, ok := cells[key]
		if !ok {
			codes := k.Codes()
			agg = &cellAgg{
				ctxCodes: append([]int32(nil), codes[1:1+nX]...),
				xKey:     key[:4*nX],
				zKey:     key[4*nX : 4*(nX+nZ)],
				byT:      make(map[string]blockStat),
			}
			cells[key] = agg
			cellOrder = append(cellOrder, key)
		}
		st, ok := agg.byT[tLabel]
		if !ok {
			st = blockStat{sums: make([]float64, len(q.Outcomes))}
		}
		st.count += c
		for oi := range q.Outcomes {
			st.sums[oi] += yvals[oi][k.Field(nK+oi)] * float64(c)
		}
		agg.byT[tLabel] = st
		agg.total += c
	}
	sort.Strings(cellOrder)

	// Exact matching: keep only blocks where every treatment value occurs
	// (count(DISTINCT T) = |Dom(T)| in Listing 2).
	kept := make([]*cellAgg, 0, len(cells))
	keptRows := 0
	for _, key := range cellOrder {
		agg := cells[key]
		if len(agg.byT) == numT {
			kept = append(kept, agg)
			keptRows += agg.total
		}
	}
	result := &Rewritten{
		Kind:        kind,
		Covariates:  append([]string(nil), covariates...),
		Mediators:   append([]string(nil), mediators...),
		Baseline:    baseline,
		BlocksTotal: len(cells),
		BlocksKept:  len(kept),
	}
	if viewRows > 0 {
		result.RowsKeptFraction = float64(keptRows) / float64(viewRows)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("query: overlap fails everywhere — no block contains all %d treatment values: %w", numT, hyperr.ErrNoOverlap)
	}

	xDicts, err := labelDecoders(ctx, view, q.Groupings)
	if err != nil {
		return nil, err
	}
	decodeCtx := func(codes []int32) ([]string, error) {
		out := make([]string, nX)
		for j := range q.Groupings {
			out[j] = xDicts[j][codes[j]]
		}
		return out, nil
	}

	var rows []Row
	if kind == TotalEffect {
		rows, err = totalEffectRows(q, kept, tLabels, decodeCtx)
	} else {
		rows, err = directEffectRows(q, kept, tLabels, baseline, decodeCtx)
	}
	if err != nil {
		return nil, err
	}
	sortRows(rows)
	result.Rows = rows
	return result, nil
}

// totalEffectRows implements the adjustment formula Eq 2: per context x and
// treatment value t, Σ_z avg(Y | t, z, x) · Pr(z | x), with Pr(z | x)
// re-normalized over the kept blocks of that context.
func totalEffectRows(q Query, kept []*cellAgg, tLabels []string, decodeCtx func([]int32) ([]string, error)) ([]Row, error) {
	type ctxAgg struct {
		codes  []int32
		weight float64              // Σ kept block sizes (normalizer)
		acc    map[string][]float64 // treatment -> per-outcome weighted sums
		counts map[string]int       // treatment -> supporting rows
	}
	byX := make(map[string]*ctxAgg)
	var order []string
	for _, cell := range kept {
		cx, ok := byX[cell.xKey]
		if !ok {
			cx = &ctxAgg{
				codes:  cell.ctxCodes,
				acc:    make(map[string][]float64),
				counts: make(map[string]int),
			}
			byX[cell.xKey] = cx
			order = append(order, cell.xKey)
		}
		w := float64(cell.total)
		cx.weight += w
		for _, tl := range tLabels {
			st := cell.byT[tl]
			acc := cx.acc[tl]
			if acc == nil {
				acc = make([]float64, len(q.Outcomes))
				cx.acc[tl] = acc
			}
			for oi := range q.Outcomes {
				acc[oi] += st.sums[oi] / float64(st.count) * w
			}
			cx.counts[tl] += st.count
		}
	}
	sort.Strings(order)
	var rows []Row
	for _, k := range order {
		cx := byX[k]
		ctx, err := decodeCtx(cx.codes)
		if err != nil {
			return nil, err
		}
		for _, tl := range tLabels {
			avgs := make([]float64, len(q.Outcomes))
			for oi := range q.Outcomes {
				avgs[oi] = cx.acc[tl][oi] / cx.weight
			}
			rows = append(rows, Row{Treatment: tl, Context: ctx, Avgs: avgs, Count: cx.counts[tl]})
		}
	}
	return rows, nil
}

// directEffectRows implements the mediator formula Eq 3: per context x and
// treatment t, Σ_z Pr(z|x) Σ_m Pr(m | baseline, z, x) · avg(Y | t, z, m, x),
// with both weight distributions re-normalized over kept blocks.
func directEffectRows(q Query, kept []*cellAgg, tLabels []string, baseline string, decodeCtx func([]int32) ([]string, error)) ([]Row, error) {
	// Group kept cells by (x) and by (x,z).
	type zAgg struct {
		cells     []*cellAgg
		baseCount int // baseline rows across mediator cells (normalizer for Pr(m|t0,z,x))
		total     int // all rows (contributes to Pr(z|x))
	}
	type ctxAgg struct {
		codes []int32
		byZ   map[string]*zAgg
		zKeys []string
		total int
	}
	byX := make(map[string]*ctxAgg)
	var order []string
	for _, cell := range kept {
		cx, ok := byX[cell.xKey]
		if !ok {
			cx = &ctxAgg{codes: cell.ctxCodes, byZ: make(map[string]*zAgg)}
			byX[cell.xKey] = cx
			order = append(order, cell.xKey)
		}
		za, ok := cx.byZ[cell.zKey]
		if !ok {
			za = &zAgg{}
			cx.byZ[cell.zKey] = za
			cx.zKeys = append(cx.zKeys, cell.zKey)
		}
		za.cells = append(za.cells, cell)
		za.baseCount += cell.byT[baseline].count
		za.total += cell.total
		cx.total += cell.total
	}
	sort.Strings(order)

	var rows []Row
	for _, k := range order {
		cx := byX[k]
		ctx, err := decodeCtx(cx.codes)
		if err != nil {
			return nil, err
		}
		sort.Strings(cx.zKeys)
		acc := make(map[string][]float64, len(tLabels))
		counts := make(map[string]int, len(tLabels))
		for _, tl := range tLabels {
			acc[tl] = make([]float64, len(q.Outcomes))
		}
		for _, zk := range cx.zKeys {
			za := cx.byZ[zk]
			pz := float64(za.total) / float64(cx.total)
			for _, cell := range za.cells {
				pm := float64(cell.byT[baseline].count) / float64(za.baseCount)
				for _, tl := range tLabels {
					st := cell.byT[tl]
					for oi := range q.Outcomes {
						acc[tl][oi] += pz * pm * st.sums[oi] / float64(st.count)
					}
					counts[tl] += st.count
				}
			}
		}
		for _, tl := range tLabels {
			rows = append(rows, Row{Treatment: tl, Context: ctx, Avgs: acc[tl], Count: counts[tl]})
		}
	}
	return rows, nil
}

// checkAdjustmentAttrs validates covariate/mediator lists against the
// relation and the query's own attributes.
func checkAdjustmentAttrs(rel source.Relation, q Query, attrs []string, role string) error {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if !rel.HasAttribute(a) {
			return fmt.Errorf("query: no %s column %q: %w", role, a, hyperr.ErrUnknownAttribute)
		}
		if seen[a] {
			return fmt.Errorf("query: duplicate %s %q", role, a)
		}
		seen[a] = true
		if a == q.Treatment {
			return fmt.Errorf("query: treatment %q cannot be a %s", a, role)
		}
		for _, y := range q.Outcomes {
			if a == y {
				return fmt.Errorf("query: outcome %q cannot be a %s", a, role)
			}
		}
		for _, x := range q.Groupings {
			if a == x {
				return fmt.Errorf("query: grouping %q cannot be a %s", a, role)
			}
		}
	}
	return nil
}

func indexOf(items []string, x string) int {
	for i, v := range items {
		if v == x {
			return i
		}
	}
	return -1
}
