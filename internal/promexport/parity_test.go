package promexport_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/promexport"
	"hypdb/internal/server"
)

// numericPaths walks a wire struct collecting the dotted JSON paths of
// every numeric (or bool, or numeric-map) leaf — exactly the values the
// Prometheus view must also carry. Strings are labels, not samples, and
// are skipped; any kind the walker does not recognize fails the test so a
// new field shape forces an explicit decision here.
func numericPaths(t *testing.T, typ reflect.Type, prefix string, out map[string]bool) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "-" || tag == "" {
			t.Fatalf("field %s.%s has no usable json tag", typ.Name(), f.Name)
		}
		path := tag
		if prefix != "" {
			path = prefix + "." + tag
		}
		ft := f.Type
		switch ft.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.Bool:
			out[path] = true
		case reflect.String:
			// Label value (dataset name, peer URL) — identifies series, not
			// a sample of its own.
		case reflect.Struct:
			numericPaths(t, ft, path, out)
		case reflect.Slice:
			if ft.Elem().Kind() != reflect.Struct {
				t.Fatalf("field %s: slice of %s unsupported by the parity walker", path, ft.Elem().Kind())
			}
			numericPaths(t, ft.Elem(), path, out)
		case reflect.Map:
			if ft.Key().Kind() != reflect.String || ft.Elem().Kind() != reflect.Int64 {
				t.Fatalf("field %s: map %s unsupported by the parity walker", path, ft)
			}
			out[path] = true // one labeled family per map
		default:
			t.Fatalf("field %s: kind %s unsupported by the parity walker", path, ft.Kind())
		}
	}
}

// fullSnapshot populates every family class — service-wide, per-client,
// catalog, per-dataset, per-peer — so Collect emits the complete registry.
func fullSnapshot() api.Metrics {
	return api.Metrics{
		UptimeSeconds: 12.5, Datasets: 1, RequestsTotal: 9, RequestsInFlight: 1,
		AnalysesTotal: 3, AuditsTotal: 2, AuditsInFlight: 1, AppendsTotal: 4,
		RowsAppended: 40, CountsServed: 5, RateLimited: 6,
		RateLimitedByClient: map[string]int64{"alice": 4, "other": 2},
		Admission: api.AdmissionMetrics{
			Admitted: 7, Queued: 1, ShedQueueFull: 2, ShedDeadline: 3, ShedDraining: 4, Cancelled: 5,
		},
		Cache:   api.CacheStats{CDComputes: 2, CDHits: 8},
		Planner: api.PlannerStats{Plans: 1, Cuboids: 2, CellsMaterialized: 30, DemandsPlanned: 4, DemandsProjected: 5, RoundTripsSaved: 6},
		Catalog: api.CatalogMetrics{JournalRecords: 3, RecoveredDatasets: 2, ReplayedAppends: 1},
		PerDataset: []api.DatasetMetrics{{
			Name: "d", Rows: 100, Analyses: 3, Appends: 4, RowsAppended: 40,
			CountsServed: 5, DegradedServes: 1,
			Admission: api.AdmissionMetrics{Admitted: 7, Queued: 1, ShedQueueFull: 2, ShedDeadline: 3, ShedDraining: 4, Cancelled: 5},
			Audit:     api.AuditProgress{Audits: 2, Running: 1, CandidatesDone: 10, CandidatesTotal: 12},
			Cache:     api.CacheStats{CDComputes: 2, CDHits: 8},
			Planner:   api.PlannerStats{Plans: 1, Cuboids: 2, CellsMaterialized: 30, DemandsPlanned: 4, DemandsProjected: 5, RoundTripsSaved: 6},
			Remote: []api.PeerMetrics{{
				URL: "http://peer:1", Version: 7, Healthy: true,
				Requests: 11, Retries: 1, Errors: 2, CountsServed: 9,
				LastRTTMillis: 1.25, AvgRTTMillis: 2.5,
			}},
		}},
	}
}

// TestFieldFamilyBijection pins the JSON↔Prometheus mapping from both
// sides: every numeric api.Metrics field maps to a family, every mapped
// family is actually emitted, and nothing is emitted outside the map. A
// counter added to one view fails here naming the missing side.
func TestFieldFamilyBijection(t *testing.T) {
	want := make(map[string]bool)
	numericPaths(t, reflect.TypeOf(api.Metrics{}), "", want)

	mapping := promexport.FieldFamilies()
	for path := range want {
		if _, ok := mapping[path]; !ok {
			t.Errorf("api.Metrics field %q has no Prometheus family (JSON view only)", path)
		}
	}
	for path := range mapping {
		if !want[path] {
			t.Errorf("FieldFamilies maps %q, which is not a numeric api.Metrics field", path)
		}
	}

	mapped := make(map[string]bool)
	for _, fam := range mapping {
		mapped[fam] = true
	}
	emitted := make(map[string]bool)
	for _, f := range promexport.Collect(fullSnapshot()) {
		emitted[f.Name] = true
	}
	for fam := range mapped {
		if !emitted[fam] {
			t.Errorf("family %q is mapped but never emitted (Prometheus view missing it)", fam)
		}
	}
	for fam := range emitted {
		if !mapped[fam] {
			t.Errorf("family %q is emitted but absent from FieldFamilies (JSON view missing it)", fam)
		}
	}
}

// TestJSONAndPromValuesAgree holds the two live views to the same numbers:
// under a fixed clock and a quiesced server, rendering the decoded
// /v1/metrics JSON through promexport must reproduce the /metrics scrape
// byte for byte. The only delta is the scrape itself — one more request on
// the counter — which the test accounts for explicitly.
func TestJSONAndPromValuesAgree(t *testing.T) {
	t0 := time.Now()
	srv := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Shards: 2,
		Clock:  func() time.Time { return t0 },
	})
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := api.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	// Move every counter class, then quiesce.
	if _, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "berkeley", [][]string{{"Female", "A", "1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "berkeley",
		Spec:    api.AuditSpec{Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}, TopK: 3},
		Options: api.Options{Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The scrape arrived one request after the JSON view; everything else
	// is frozen (fixed clock, no in-flight work, both serves count
	// themselves in flight identically).
	m.RequestsTotal++
	var want bytes.Buffer
	if err := promexport.Render(&want, *m); err != nil {
		t.Fatal(err)
	}
	if want.String() != text {
		t.Fatalf("views disagree:\n%s", diffLines(want.String(), text))
	}
}

// diffLines renders a compact line diff for the parity failure message.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			sb.WriteString("json-derived: " + w + "\nscrape:       " + g + "\n")
		}
	}
	if sb.Len() == 0 {
		return "(no differing lines)"
	}
	return sb.String()
}

// TestFamilyRegistryOrderStable pins that Collect returns families in
// registry order with series sorted by label values — the determinism the
// byte-equality test above relies on.
func TestFamilyRegistryOrderStable(t *testing.T) {
	fams := promexport.Collect(fullSnapshot())
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
		vals := make([]string, len(f.Series))
		for j, s := range f.Series {
			vals[j] = labelValues(s.Labels)
		}
		if !sort.StringsAreSorted(vals) {
			t.Errorf("family %s series not sorted by label values: %v", f.Name, vals)
		}
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("family %s appears twice in Collect output", n)
		}
		seen[n] = true
	}
}

func labelValues(ls []promexport.Label) string {
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Value)
		sb.WriteByte(0)
	}
	return sb.String()
}
