package dataset

import (
	"errors"
	"reflect"
	"testing"

	"hypdb/internal/hyperr"
)

func TestParsePredicate(t *testing.T) {
	cases := []struct {
		in   string
		want Predicate
	}{
		{"Carrier = 'AA'", Eq{Attr: "Carrier", Value: "AA"}},
		{"Carrier = AA", Eq{Attr: "Carrier", Value: "AA"}},
		{`"Carrier" = 'AA'`, Eq{Attr: "Carrier", Value: "AA"}},
		{"Carrier != 'AA'", Not{Pred: Eq{Attr: "Carrier", Value: "AA"}}},
		{"Carrier <> 'AA'", Not{Pred: Eq{Attr: "Carrier", Value: "AA"}}},
		{"Carrier IN ('AA','UA')", In{Attr: "Carrier", Values: []string{"AA", "UA"}}},
		{"Carrier in ( 'AA' , 'UA' )", In{Attr: "Carrier", Values: []string{"AA", "UA"}}},
		{"Name = 'it''s'", Eq{Attr: "Name", Value: "it's"}},
		{"TRUE", All{}},
		{"false", Or{}},
		{"NOT (Carrier = 'AA')", Not{Pred: Eq{Attr: "Carrier", Value: "AA"}}},
		{
			"Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC')",
			And{
				In{Attr: "Carrier", Values: []string{"AA", "UA"}},
				In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
			},
		},
		{
			// OR binds looser than AND.
			"a = '1' OR b = '2' AND c = '3'",
			Or{
				Eq{Attr: "a", Value: "1"},
				And{Eq{Attr: "b", Value: "2"}, Eq{Attr: "c", Value: "3"}},
			},
		},
		{
			"(a = '1' OR b = '2') AND NOT c = '3'",
			And{
				Or{Eq{Attr: "a", Value: "1"}, Eq{Attr: "b", Value: "2"}},
				Not{Pred: Eq{Attr: "c", Value: "3"}},
			},
		},
	}
	for _, tc := range cases {
		got, err := ParsePredicate(tc.in)
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePredicate(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

// TestParsePredicateRoundTrip: the built-in combinators' SQL renderings
// parse back to an equivalent predicate.
func TestParsePredicateRoundTrip(t *testing.T) {
	preds := []Predicate{
		Eq{Attr: "Gender", Value: "Female"},
		In{Attr: "Carrier", Values: []string{"AA", "UA"}},
		And{
			In{Attr: "Carrier", Values: []string{"AA", "UA"}},
			In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
		},
		Or{Eq{Attr: "a", Value: "1"}, Eq{Attr: "b", Value: "2"}},
		Not{Pred: Eq{Attr: "a", Value: "1"}},
		All{},
		// The precedence trap: a disjunction inside a conjunction must
		// render with parentheses or the text means a OR (b AND a).
		And{
			Or{Eq{Attr: "a", Value: "1"}, Eq{Attr: "b", Value: "2"}},
			Eq{Attr: "a", Value: "2"},
		},
		// Values with embedded quotes and attribute names that are not
		// bare words must render in escaped, re-parseable form.
		Eq{Attr: "weird attr", Value: "it's"},
		In{Attr: "weird attr", Values: []string{"it's", `a"b`}},
		// Attribute names that collide with grammar keywords must render
		// quoted, and an empty IN list renders as its semantics (FALSE).
		Eq{Attr: "TRUE", Value: "x"},
		Eq{Attr: "Or", Value: "1"},
		In{Attr: "a"},
	}
	tab := MustNew(
		NewColumnFromStrings("Gender", []string{"Female", "Male", "Female"}),
		NewColumnFromStrings("Carrier", []string{"AA", "UA", "DL"}),
		NewColumnFromStrings("Airport", []string{"COS", "ROC", "SEA"}),
		NewColumnFromStrings("a", []string{"1", "2", "1"}),
		NewColumnFromStrings("b", []string{"2", "2", "3"}),
		NewColumnFromStrings("weird attr", []string{"it's", "x", "it's"}),
		NewColumnFromStrings("TRUE", []string{"x", "y", "x"}),
		NewColumnFromStrings("Or", []string{"1", "2", "1"}),
	)
	for _, p := range preds {
		back, err := ParsePredicate(p.SQL())
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", p.SQL(), err)
			continue
		}
		want, err := p.Eval(tab)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Eval(tab)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip of %q changed semantics: got %v, want %v", p.SQL(), got, want)
		}
	}
}

func TestParsePredicateErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"Carrier",
		"Carrier =",
		"Carrier IN",
		"Carrier IN (",
		"Carrier IN ()",
		"Carrier IN ('AA'",
		"= 'AA'",
		"(a = '1'",
		"a = '1' b = '2'",
		"a = 'unterminated",
		"a ~ '1'",
		"NOT",
		"a = '1' AND",
	}
	for _, in := range bad {
		p, err := ParsePredicate(in)
		if err == nil {
			t.Errorf("ParsePredicate(%q) = %#v, want error", in, p)
			continue
		}
		if !errors.Is(err, hyperr.ErrBadPredicate) {
			t.Errorf("ParsePredicate(%q) error %v does not wrap ErrBadPredicate", in, err)
		}
	}
}
