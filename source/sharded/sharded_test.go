package sharded_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hypdb/internal/datagen"
	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/mem"
	"hypdb/source/sharded"
)

// equalCounts asserts two counts maps are byte-identical: same keys (same
// dictionary codes), same counts.
func equalCounts(t *testing.T, label string, got, want map[source.Key]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("%s: key %v = %d, want %d", label, k.Codes(), got[k], w)
		}
	}
}

func equalDense(t *testing.T, label string, got, want *dataset.DenseCounts) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: dense nil mismatch: got %v, want %v", label, got == nil, want == nil)
	}
	if got == nil {
		return
	}
	if !reflect.DeepEqual(got.Attrs, want.Attrs) || !reflect.DeepEqual(got.Cards, want.Cards) {
		t.Fatalf("%s: layout (%v,%v), want (%v,%v)", label, got.Attrs, got.Cards, want.Attrs, want.Cards)
	}
	if got.Total != want.Total || !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("%s: cells differ (totals %d vs %d)", label, got.Total, want.Total)
	}
}

// TestShardedMergeMatchesMem is the merge-correctness property test: for
// random tables and shard counts, every sharded Counts/DenseCounts result —
// unpredicated, predicated, and over Restrict views — must be byte-identical
// to the mem backend over the unpartitioned table.
func TestShardedMergeMatchesMem(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 4; trial++ {
		tab, _, err := datagen.Random(datagen.RandomSpec{
			Nodes: 5, MinCard: 2, MaxCard: 5, Rows: 400, Seed: int64(100 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := mem.New(tab)
		attrs := tab.Columns()
		rng := rand.New(rand.NewSource(int64(trial)))
		for _, shards := range []int{1, 2, 3, 4, 7} {
			sh, err := sharded.Partition(tab, "D", shards)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("trial%d/shards%d", trial, shards)

			// Dictionaries must agree with the source table exactly.
			for _, a := range attrs {
				want, _ := ref.Labels(ctx, a)
				got, err := sh.Labels(ctx, a)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: dict(%s) = %v, want %v", name, a, got, want)
				}
			}

			// A handful of random attribute subsets, sparse and dense.
			for rep := 0; rep < 5; rep++ {
				k := 1 + rng.Intn(3)
				sel := append([]string(nil), attrs...)
				rng.Shuffle(len(sel), func(i, j int) { sel[i], sel[j] = sel[j], sel[i] })
				sel = sel[:k]

				want, err := ref.Counts(ctx, sel, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Counts(ctx, sel, nil)
				if err != nil {
					t.Fatal(err)
				}
				equalCounts(t, name+"/counts", got, want)

				wantD, err := ref.DenseCounts(ctx, sel, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				gotD, err := sh.DenseCounts(ctx, sel, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				equalDense(t, name+"/dense", gotD, wantD)

				// Predicated counts pass through to the shards and must
				// still merge to the reference.
				labels, _ := ref.Labels(ctx, attrs[0])
				pred := dataset.Eq{Attr: attrs[0], Value: labels[rng.Intn(len(labels))]}
				wantP, err := ref.Counts(ctx, sel, pred)
				if err != nil {
					t.Fatal(err)
				}
				gotP, err := sh.Counts(ctx, sel, pred)
				if err != nil {
					t.Fatal(err)
				}
				equalCounts(t, name+"/where", gotP, wantP)
			}

			// Restrict: compacted dictionaries and counts must match the mem
			// backend's restriction of the same predicate.
			labels, _ := ref.Labels(ctx, attrs[1])
			pred := dataset.Not{Pred: dataset.Eq{Attr: attrs[1], Value: labels[0]}}
			wantView, err := ref.Restrict(ctx, pred)
			if err != nil {
				t.Fatal(err)
			}
			gotView, err := sh.Restrict(ctx, pred)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range attrs {
				wl, _ := wantView.Labels(ctx, a)
				gl, err := gotView.Labels(ctx, a)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gl, wl) {
					t.Fatalf("%s: restricted dict(%s) = %v, want %v", name, a, gl, wl)
				}
			}
			sel := attrs[:2]
			wantR, err := wantView.Counts(ctx, sel, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotR, err := gotView.Counts(ctx, sel, nil)
			if err != nil {
				t.Fatal(err)
			}
			equalCounts(t, name+"/restrict", gotR, wantR)

			// Materialization must reproduce the original table row-for-row.
			mt, err := sh.Materialize(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if mt.NumRows() != tab.NumRows() {
				t.Fatalf("%s: materialized %d rows, want %d", name, mt.NumRows(), tab.NumRows())
			}
			for _, a := range attrs {
				wc := tab.MustColumn(a)
				gc := mt.MustColumn(a)
				if !reflect.DeepEqual(gc.Codes(), wc.Codes()) || !reflect.DeepEqual(gc.Labels(), wc.Labels()) {
					t.Fatalf("%s: materialized column %s differs from source", name, a)
				}
			}
		}
	}
}

// TestShardedAppendSnapshots exercises streaming ingestion: appends create
// new versions, snapshots pin old ones, deltas carry exactly the appended
// rows, and unseen labels extend the global dictionaries without disturbing
// existing codes.
func TestShardedAppendSnapshots(t *testing.T) {
	ctx := context.Background()
	b := dataset.NewBuilder("G", "O")
	for _, r := range [][2]string{{"a", "0"}, {"a", "1"}, {"b", "0"}, {"b", "1"}} {
		b.MustAdd(r[0], r[1])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sharded.Partition(tab, "D", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.SnapshotVersion(); got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}
	snap, ver := sh.Snapshot()
	if ver != 1 {
		t.Fatalf("snapshot version = %d, want 1", ver)
	}

	res, err := sh.Append(ctx, [][]string{{"c", "1"}, {"a", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 2 || res.NumRows != 6 || res.Version != 2 {
		t.Fatalf("append result = %+v, want 2 rows, 6 total, version 2", res)
	}
	if sh.SnapshotVersion() != 2 || sh.NumPartitions() != 3 {
		t.Fatalf("post-append version %d / partitions %d, want 2 / 3", sh.SnapshotVersion(), sh.NumPartitions())
	}

	// The pinned snapshot still sees the old epoch: 4 rows, 2 G labels.
	if n, _ := snap.NumRows(ctx); n != 4 {
		t.Errorf("pinned snapshot rows = %d, want 4", n)
	}
	if l, _ := snap.Labels(ctx, "G"); len(l) != 2 {
		t.Errorf("pinned snapshot dict = %v, want 2 labels", l)
	}
	// The live relation sees the new epoch, with "c" appended at code 2.
	if l, _ := sh.Labels(ctx, "G"); !reflect.DeepEqual(l, []string{"a", "b", "c"}) {
		t.Errorf("live dict = %v, want [a b c]", l)
	}
	live, err := sh.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLive := map[source.Key]int{
		dataset.EncodeKey(0): 3, // a
		dataset.EncodeKey(1): 2, // b
		dataset.EncodeKey(2): 1, // c
	}
	equalCounts(t, "live counts", live, wantLive)

	// The delta serves exactly the appended rows, in the global coding.
	dcounts, err := res.Delta.Counts(ctx, []string{"G", "O"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := map[source.Key]int{
		dataset.EncodeKey(2, 1): 1, // (c, 1)
		dataset.EncodeKey(0, 1): 1, // (a, 1)
	}
	equalCounts(t, "delta counts", dcounts, wantDelta)

	// Backend identities must separate epochs and the delta view.
	if snap.Backend() == sh.Backend() {
		t.Error("snapshot and live backend identities must differ across versions")
	}

	// Empty appends are version-preserving no-ops.
	res2, err := sh.Append(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Version != 2 || res2.Appended != 0 {
		t.Fatalf("empty append result = %+v, want version 2, 0 rows", res2)
	}

	// Ragged rows are rejected.
	if _, err := sh.Append(ctx, [][]string{{"only-one"}}); err == nil {
		t.Error("ragged append accepted")
	}
}

// TestShardedConcurrentAppendsAndReads drives appends and fan-out reads in
// parallel; run under -race this checks the snapshot isolation of the
// partition list and the append-only dictionaries. Every read must observe
// a consistent epoch: a total row count that is 4 plus a multiple of 2.
func TestShardedConcurrentAppendsAndReads(t *testing.T) {
	ctx := context.Background()
	b := dataset.NewBuilder("G", "O")
	for _, r := range [][2]string{{"a", "0"}, {"a", "1"}, {"b", "0"}, {"b", "1"}} {
		b.MustAdd(r[0], r[1])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sharded.Partition(tab, "D", 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := sh.Append(ctx, [][]string{
					{fmt.Sprintf("g%d", w), "0"}, {fmt.Sprintf("g%d", i%3), "1"},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				counts, err := sh.Counts(ctx, []string{"G", "O"}, nil)
				if err != nil {
					errs <- err
					return
				}
				total := 0
				for _, c := range counts {
					total += c
				}
				if total < 4 || (total-4)%2 != 0 {
					errs <- fmt.Errorf("torn read: total %d", total)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, _ := sh.NumRows(ctx); n != 4+4*8*2 {
		t.Fatalf("final rows = %d, want %d", n, 4+4*8*2)
	}
}

// flakyChild wraps a child relation and fails counts reads with
// ErrPeerUnavailable while down is set — the failure shape of a lost remote
// peer. It deliberately exposes no DenseCounter capability, so the fan-out
// reaches the overridden Counts on both the dense and sparse paths.
type flakyChild struct {
	source.Relation
	down atomic.Bool
}

func (f *flakyChild) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if f.down.Load() {
		return nil, fmt.Errorf("flaky child: %w", hyperr.ErrPeerUnavailable)
	}
	return f.Relation.Counts(ctx, attrs, where)
}

// TestDegradedSkipAdvancesSnapshotVersion pins the cache-poisoning defense:
// every degraded (partial) serve must advance the relation's snapshot
// version and backend identity, so version-keyed caches (and backend-keyed
// memos) can never answer a read that starts after the skip from the
// partial counts — including after the peer recovers.
func TestDegradedSkipAdvancesSnapshotVersion(t *testing.T) {
	ctx := context.Background()
	b := dataset.NewBuilder("G", "O")
	for _, r := range [][2]string{{"a", "0"}, {"a", "1"}, {"b", "0"}, {"b", "1"}} {
		b.MustAdd(r[0], r[1])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyChild{Relation: mem.NewNamed(tab, "D")}
	sh, err := sharded.New(ctx, "D", []source.Relation{mem.NewNamed(tab, "D"), flaky})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetDegradedReads(true)

	full, err := sh.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v0, b0 := sh.SnapshotVersion(), sh.Backend()

	flaky.down.Store(true)
	part, err := sh.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if sh.DegradedServes() == 0 {
		t.Fatal("degraded serve not counted")
	}
	partial, complete := 0, 0
	for _, c := range part {
		partial += c
	}
	for _, c := range full {
		complete += c
	}
	if partial*2 != complete {
		t.Fatalf("partial total = %d, want half of %d", partial, complete)
	}
	if v1 := sh.SnapshotVersion(); v1 <= v0 {
		t.Fatalf("snapshot version = %d after a degraded serve, want > %d", v1, v0)
	}
	if sh.Backend() == b0 {
		t.Fatal("backend identity unchanged after a degraded serve")
	}

	// Recovery: reads are complete again and no longer move the version.
	flaky.down.Store(false)
	again, err := sh.Counts(ctx, []string{"G"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalCounts(t, "recovered counts", again, full)
	vStable := sh.SnapshotVersion()
	if _, err := sh.Counts(ctx, []string{"G", "O"}, nil); err != nil {
		t.Fatal(err)
	}
	if sh.SnapshotVersion() != vStable {
		t.Error("healthy read moved the snapshot version")
	}
}
