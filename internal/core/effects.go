package core

import "fmt"

// Effect is a summarized causal-effect estimate for one context and one
// outcome, with its significance.
type Effect struct {
	Context []string
	Outcome string
	// T0, T1 are the compared treatment values (estimate = answer(T1) −
	// answer(T0)).
	T0, T1 string
	// Estimate is the effect size: the ATE for total effects, the NDE for
	// direct effects, or the raw difference for the original query.
	Estimate float64
	// PValue tests the hypothesis that the effect is zero.
	PValue float64
	// Significant applies the analysis significance level.
	Significant bool
}

// effectsFrom converts comparison reports for one outcome index.
func (r *Report) effectsFrom(comps []ComparisonReport, outcomeIdx int, alpha float64) ([]Effect, error) {
	if outcomeIdx < 0 || outcomeIdx >= len(r.Query.Outcomes) {
		return nil, fmt.Errorf("core: outcome index %d out of range (have %d outcomes)",
			outcomeIdx, len(r.Query.Outcomes))
	}
	out := make([]Effect, 0, len(comps))
	for _, c := range comps {
		e := Effect{
			Context:  c.Context,
			Outcome:  r.Query.Outcomes[outcomeIdx],
			T0:       c.T0,
			T1:       c.T1,
			Estimate: c.Diffs[outcomeIdx],
		}
		if outcomeIdx < len(c.PValues) {
			e.PValue = c.PValues[outcomeIdx]
			e.Significant = e.PValue < alpha
		}
		out = append(out, e)
	}
	return out, nil
}

// RawDifference returns the original (possibly biased) per-context
// differences for the outcome at the given index.
func (r *Report) RawDifference(outcomeIdx int, alpha float64) ([]Effect, error) {
	if alpha <= 0 {
		alpha = 0.01
	}
	return r.effectsFrom(r.OriginalComparisons, outcomeIdx, alpha)
}

// ATE returns the adjusted total-effect estimates (Eq 1 via Eq 2) per
// context, or an error when no total rewriting was performed.
func (r *Report) ATE(outcomeIdx int, alpha float64) ([]Effect, error) {
	if alpha <= 0 {
		alpha = 0.01
	}
	if r.RewrittenTotal == nil {
		return nil, fmt.Errorf("core: no total-effect rewriting in this report (no covariates found)")
	}
	return r.effectsFrom(r.TotalComparisons, outcomeIdx, alpha)
}

// NDE returns the natural-direct-effect estimates (Eq 7 via Eq 3) per
// context, or an error when no direct rewriting was performed.
func (r *Report) NDE(outcomeIdx int, alpha float64) ([]Effect, error) {
	if alpha <= 0 {
		alpha = 0.01
	}
	if r.RewrittenDirect == nil {
		return nil, fmt.Errorf("core: no direct-effect rewriting in this report (no mediators found)")
	}
	return r.effectsFrom(r.DirectComparisons, outcomeIdx, alpha)
}

// TrendReversed reports whether the rewritten total effect has the opposite
// sign of the original difference in any context — the Simpson's-paradox
// signature the Fig 5(a) experiment counts.
func (r *Report) TrendReversed(outcomeIdx int) (bool, error) {
	raw, err := r.RawDifference(outcomeIdx, 0)
	if err != nil {
		return false, err
	}
	adj, err := r.ATE(outcomeIdx, 0)
	if err != nil {
		return false, err
	}
	byCtx := make(map[string]float64, len(raw))
	for _, e := range raw {
		byCtx[ctxKeyOf(e.Context)] = e.Estimate
	}
	for _, e := range adj {
		if rawEst, ok := byCtx[ctxKeyOf(e.Context)]; ok && rawEst*e.Estimate < 0 {
			return true, nil
		}
	}
	return false, nil
}

func ctxKeyOf(ctx []string) string {
	out := ""
	for _, c := range ctx {
		out += c + "\x00"
	}
	return out
}
