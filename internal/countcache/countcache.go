// Package countcache implements HypDB's marginalization-serving count
// cache: a source.Relation wrapper that memoizes dense (mixed-radix)
// group-by views and answers any Counts request whose attribute set is
// covered by a cached view by marginalizing it in O(cells) — never going
// back to the backend. Sec 6 of the paper observes that "contingency tables
// with their marginals are essentially OLAP data-cubes"; this package is
// that observation promoted into the storage layer, shared by every
// consumer of counts (entropy providers, covariate-discovery scoring, the
// MIT group tables, query rewriting) instead of being rebuilt privately by
// each of them.
//
// Prime fetches the finest view over an attribute closure in one backend
// round trip (one GROUP BY query on SQL backends, one columnar scan in
// memory); after priming, the subset enumeration of a covariate-discovery
// hill climb runs entirely against the cache. Views are bounded by a cell
// budget per view and a total-cell bound per handle; requests above the
// budget pass through to the backend unchanged.
package countcache

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
)

// Stats reports one handle's cache traffic.
type Stats struct {
	// Fetches counts backend round trips for dense views; Hits counts
	// requests answered from a cached view of exactly the requested
	// attribute set (at the requested version); Derived counts requests
	// answered by marginalizing a cached superset view.
	Fetches int
	Hits    int
	Derived int
	// DeltaApplied counts cached views upgraded in place by an append's
	// delta counts (no backend re-fetch); DeltaDropped counts views an
	// append had to evict because the delta could not be tabulated.
	DeltaApplied int
	DeltaDropped int
}

// Relation wraps a source.Relation with the dense count cache. It preserves
// the wrapped backend's identity (Backend), forwards the Materializer,
// Closer and Cardinality capabilities, and keeps restriction views on
// separate caches, so cache keys and session semantics are unchanged.
type Relation struct {
	inner source.Relation
	// versioned is inner's snapshot capability, nil for immutable backends.
	// When set, every cache entry is tagged with the version it was
	// computed at and only serves requests pinned to that version.
	versioned source.Versioned
	budget    int

	// account is the cell ledger shared with every restricted-view cache
	// hanging off this handle (and their descendants): one bound covers the
	// whole tree, so a predicate-heavy sweep spawning many per-predicate
	// child caches cannot multiply the memory footprint past the budget.
	account *cellAccount

	mu         sync.Mutex
	n          int
	hasN       bool
	views      map[string]*entry             // canonical (sorted, joined) attrs -> dense view
	wide       []string                      // keys of the widest views: the derivation candidates
	maps       map[string]map[source.Key]int // request-order attrs -> sparse map form memo
	mapsVer    uint64                        // version the sparse memo belongs to
	totalCells int                           // this cache's own contribution to account
	restricts  map[string]*Relation
	// deltas remembers recent appends: version v maps to the delta relation
	// whose rows turned v-1 into v. Stale cached views — e.g. ones a
	// long-running pinned analysis tabulated at an old version while appends
	// landed — are upgraded lazily by replaying the chain of deltas instead
	// of re-fetching. Bounded to the last maxDeltas appends.
	deltas map[uint64]source.Relation
	stats  Stats
}

// entry is one cached dense view tagged with the snapshot version of the
// data it tabulates. Immutable backends use version 0 throughout.
type entry struct {
	dc  *dataset.DenseCounts
	ver uint64
}

// maxMapMemos bounds the sparse-form memo (maps are derived from views in
// one pass, so eviction only costs a rebuild).
const maxMapMemos = 128

// maxTotalCellsFactor bounds the handle's total cached cells as a multiple
// of the per-view budget; past it, arbitrary views are evicted (the cache
// is a pure memo).
const maxTotalCellsFactor = 4

// maxWide bounds the derivation-candidate list. Coverage search must stay
// O(1) per request — scanning every memoized view made the search itself
// quadratic in the number of distinct attribute sets an analysis touches —
// so only the widest views (the primed closures and the broadest joints,
// which cover almost everything worth deriving) are candidates; narrower
// requests that miss them fall through to the backend, which is never worse
// than the uncached path.
const maxWide = 32

// maxRestricts bounds the memoized restriction wrappers.
const maxRestricts = 256

// cellAccount is the shared dense-cell ledger of one cache tree: the root
// handle and every restricted-view cache below it charge their stored views
// here, and eviction decisions compare against one limit for the whole
// tree. It is a leaf lock — always acquired after any Relation.mu, never
// while holding it across another Relation call.
type cellAccount struct {
	mu    sync.Mutex
	cells int
	limit int
}

func (a *cellAccount) add(n int) {
	a.mu.Lock()
	a.cells += n
	a.mu.Unlock()
}

func (a *cellAccount) total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cells
}

// fits reports whether n more cells would stay within the tree limit.
func (a *cellAccount) fits(n int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cells+n <= a.limit
}

// maxDeltas bounds the remembered append deltas; views more than maxDeltas
// versions behind fall back to a re-fetch.
const maxDeltas = 8

// Wrap returns rel behind a count cache with the given per-view cell budget
// (≤ 0 meaning dataset.DefaultCellBudget). Wrapping an already-wrapped
// relation returns it unchanged.
func Wrap(rel source.Relation, budget int) *Relation {
	return wrap(rel, budget, nil)
}

// wrap builds the cache, charging stored views to acct — the parent's
// ledger for restriction children, a fresh one (sized off this handle's
// budget) for roots.
func wrap(rel source.Relation, budget int, acct *cellAccount) *Relation {
	if c, ok := rel.(*Relation); ok {
		return c
	}
	if budget <= 0 {
		budget = dataset.DefaultCellBudget
	}
	if acct == nil {
		acct = &cellAccount{limit: budget * maxTotalCellsFactor}
	}
	v, _ := rel.(source.Versioned)
	return &Relation{
		inner:     rel,
		versioned: v,
		budget:    budget,
		account:   acct,
		views:     make(map[string]*entry),
	}
}

// Inner returns the wrapped relation.
func (c *Relation) Inner() source.Relation { return c.inner }

// Stats returns a snapshot of the cache counters.
func (c *Relation) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TotalCachedCells returns the dense cells currently held across this
// cache tree — the handle itself plus every restricted-view cache charged
// to the shared ledger. It is bounded by budget × maxTotalCellsFactor no
// matter how many distinct predicates an analysis restricts by.
func (c *Relation) TotalCachedCells() int { return c.account.total() }

// Name implements source.Relation.
func (c *Relation) Name() string { return c.inner.Name() }

// Backend implements source.Relation, forwarding the wrapped identity so
// session caches keyed by it are unaffected by the wrapper.
func (c *Relation) Backend() string { return c.inner.Backend() }

// Attributes implements source.Relation.
func (c *Relation) Attributes() []string { return c.inner.Attributes() }

// HasAttribute implements source.Relation.
func (c *Relation) HasAttribute(name string) bool { return c.inner.HasAttribute(name) }

// NumRows implements source.Relation (memoized; versioned backends answer
// from the current snapshot, which is O(1), and the memo tracks appends).
func (c *Relation) NumRows(ctx context.Context) (int, error) {
	if c.versioned != nil {
		snap, _ := c.versioned.Snapshot()
		return snap.NumRows(ctx)
	}
	c.mu.Lock()
	if c.hasN {
		n := c.n
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	n, err := c.inner.NumRows(ctx)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.n, c.hasN = n, true
	c.mu.Unlock()
	return n, nil
}

// Labels implements source.Relation.
func (c *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	return c.inner.Labels(ctx, attr)
}

// Cardinality forwards the optional capability, falling back to the
// dictionary length.
func (c *Relation) Cardinality(ctx context.Context, attr string) (int, error) {
	return source.Card(ctx, c.inner, attr)
}

// Counts implements source.Relation. Unpredicated requests are served from
// the dense cache (marginalizing the smallest covering view), with the
// sparse map form memoized per request order so repeated identical calls
// return the cached map instead of re-walking the cells. Predicated
// requests pass through — they belong to query execution, whose predicates
// rarely repeat across an analysis. Callers must treat the returned map as
// read-only (the same contract the SQL backend's memo imposes).
func (c *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if where != nil {
		return c.inner.Counts(ctx, attrs, where)
	}
	src, ver := c.source()
	okey := strings.Join(attrs, "\x00")
	c.mu.Lock()
	if c.mapsVer == ver {
		if m, ok := c.maps[okey]; ok {
			c.stats.Hits++
			c.mu.Unlock()
			return m, nil
		}
	}
	c.mu.Unlock()

	dc, err := c.denseAt(ctx, src, ver, attrs, 0)
	if err != nil {
		return nil, err
	}
	if dc == nil {
		return src.Counts(ctx, attrs, nil)
	}
	m := dc.Map()
	c.mu.Lock()
	if c.mapsVer == ver {
		if c.maps == nil {
			c.maps = make(map[string]map[source.Key]int)
		}
		for k := range c.maps {
			if len(c.maps) < maxMapMemos {
				break
			}
			delete(c.maps, k)
		}
		c.maps[okey] = m
	}
	c.mu.Unlock()
	return m, nil
}

// source resolves the relation one read should tabulate from: the current
// snapshot (with its version) for versioned backends, the backend itself
// (version 0) otherwise. Fetching from a snapshot instead of the live
// relation is what makes version tags exact — the data a fetch sees is
// always precisely the version the entry is tagged with, even if an append
// lands mid-read.
func (c *Relation) source() (source.Relation, uint64) {
	if c.versioned != nil {
		return c.versioned.Snapshot()
	}
	return c.inner, 0
}

// DenseCounts implements source.DenseCounter. An explicit budget overrides
// the handle's own (in either direction — a caller may permit a larger
// tabulation than the cache default).
func (c *Relation) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	if where != nil {
		return source.Dense(ctx, c.inner, attrs, where, budget)
	}
	src, ver := c.source()
	return c.denseAt(ctx, src, ver, attrs, budget)
}

// Prime fetches the finest dense view over attrs — one backend round trip —
// so every subsequent Counts over a subset is answered by marginalization.
// budget overrides the handle's cell budget for this closure (≤ 0 meaning
// the handle budget); closures above the effective budget are skipped
// silently (requests then fall through to the backend, which may still
// derive shared marginals itself).
func (c *Relation) Prime(ctx context.Context, attrs []string, budget int) error {
	src, ver := c.source()
	_, err := c.denseAt(ctx, src, ver, attrs, budget)
	return err
}

// Restrict implements source.Relation: the restriction is delegated to the
// backend and the resulting view wrapped in its own cache. Wrappers are
// memoized per rendered predicate, so the several phases of one analysis
// that restrict by the same WHERE clause (context splitting, balance
// testing, per-context significance) share one restricted cache — and, for
// the mem backend, one row selection.
func (c *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return c, nil
	}
	key := where.SQL()
	c.mu.Lock()
	if child, ok := c.restricts[key]; ok {
		c.mu.Unlock()
		return child, nil
	}
	c.mu.Unlock()

	inner, err := c.inner.Restrict(ctx, where)
	if err != nil {
		return nil, err
	}
	if inner == c.inner {
		return c, nil
	}
	child := wrap(inner, c.budget, c.account)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.restricts == nil {
		c.restricts = make(map[string]*Relation)
	}
	if prev, ok := c.restricts[key]; ok {
		return prev, nil // racing restriction: keep one wrapper
	}
	for k := range c.restricts {
		if len(c.restricts) < maxRestricts {
			break
		}
		c.restricts[k].dropAllViews()
		delete(c.restricts, k)
	}
	c.restricts[key] = child
	return child, nil
}

// dropAllViews empties this cache and every restricted-view cache below
// it, returning their cells to the shared ledger. Called when a wrapper
// leaves its parent's restriction memo (eviction, append invalidation) —
// dropped wrappers may still be referenced by in-flight readers, which
// keep working but re-fetch on their next miss.
func (c *Relation) dropAllViews() {
	c.mu.Lock()
	c.views = make(map[string]*entry)
	c.wide = nil
	c.maps = nil
	c.account.add(-c.totalCells)
	c.totalCells = 0
	kids := c.restricts
	c.restricts = nil
	c.mu.Unlock()
	for _, k := range kids {
		k.dropAllViews()
	}
}

// Materialize forwards the row-level capability of the wrapped backend;
// counts-only backends keep failing with ErrNeedsMaterialization.
func (c *Relation) Materialize(ctx context.Context) (*dataset.Table, error) {
	return source.Materialize(ctx, c.inner)
}

// Table forwards the zero-cost in-memory table capability of backends that
// have one (source/mem), and returns nil otherwise — so capability probes
// like key detection's row sampler see through the cache wrapper.
func (c *Relation) Table() *dataset.Table {
	if t, ok := c.inner.(interface{ Table() *dataset.Table }); ok {
		return t.Table()
	}
	return nil
}

// Close implements source.Closer by forwarding (a no-op for resource-free
// backends).
func (c *Relation) Close() error {
	if cl, ok := c.inner.(source.Closer); ok {
		return cl.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Streaming ingestion: delta application and snapshot pinning

// Append implements source.Appender when the wrapped backend does: the rows
// are appended to the backend (creating a new snapshot version), and every
// cached dense view of the previous version is upgraded in place by adding
// the delta partition's counts — re-strided first when the append grew a
// dictionary — instead of being invalidated. One O(delta-rows) tabulation
// per cached view replaces a full backend re-fetch; the cache stays primed
// across ingestion.
func (c *Relation) Append(ctx context.Context, rows [][]string) (*source.AppendResult, error) {
	ap, ok := c.inner.(source.Appender)
	if !ok {
		return nil, fmt.Errorf("countcache: backend %s cannot grow: %w", c.inner.Backend(), hyperr.ErrNotAppendable)
	}
	res, err := ap.Append(ctx, rows)
	if err != nil {
		return nil, err
	}
	if res.Appended > 0 && res.Delta != nil {
		c.applyDelta(ctx, res)
	}
	return res, nil
}

// applyDelta patches the cache after one append. Views tagged with the
// immediately preceding version are upgraded (grown to the new
// cardinalities, delta cells added, re-tagged); views that cannot be
// patched are evicted and will re-fetch lazily. Sparse memos and
// restriction wrappers are dropped — their data moved — and the row-count
// memo is advanced.
func (c *Relation) applyDelta(ctx context.Context, res *source.AppendResult) {
	type pending struct {
		key string
		e   *entry
	}
	c.mu.Lock()
	todo := make([]pending, 0, len(c.views))
	for k, e := range c.views {
		if e.ver == res.Version-1 {
			todo = append(todo, pending{key: k, e: e})
		}
	}
	c.mu.Unlock()

	for _, p := range todo {
		upgraded, err := upgradeView(ctx, p.e.dc, res.Delta)
		c.mu.Lock()
		cur, ok := c.views[p.key]
		if !ok || cur != p.e {
			c.mu.Unlock()
			continue // evicted or replaced meanwhile: nothing to upgrade
		}
		if err != nil || upgraded == nil {
			c.totalCells -= len(cur.dc.Cells)
			c.account.add(-len(cur.dc.Cells))
			delete(c.views, p.key)
			c.stats.DeltaDropped++
			c.mu.Unlock()
			continue
		}
		c.totalCells += len(upgraded.Cells) - len(cur.dc.Cells)
		c.account.add(len(upgraded.Cells) - len(cur.dc.Cells))
		c.views[p.key] = &entry{dc: upgraded, ver: res.Version}
		c.stats.DeltaApplied++
		c.mu.Unlock()
	}

	c.mu.Lock()
	c.maps = nil
	c.mapsVer = res.Version
	c.n, c.hasN = res.NumRows, true
	kids := c.restricts
	c.restricts = nil
	for _, k := range kids {
		k.dropAllViews() // their data moved: return their cells to the ledger
	}
	if c.deltas == nil {
		c.deltas = make(map[uint64]source.Relation)
	}
	c.deltas[res.Version] = res.Delta
	for v := range c.deltas {
		if v+maxDeltas <= res.Version {
			delete(c.deltas, v)
		}
	}
	c.mu.Unlock()
}

// deltaChainLocked returns the deltas that turn version from into version
// to, oldest first, or nil when any link is missing. Callers hold c.mu.
func (c *Relation) deltaChainLocked(from, to uint64) []source.Relation {
	if from >= to {
		return nil
	}
	chain := make([]source.Relation, 0, to-from)
	for v := from + 1; v <= to; v++ {
		d, ok := c.deltas[v]
		if !ok {
			return nil
		}
		chain = append(chain, d)
	}
	return chain
}

// upgradeView produces the next-version copy of one cached view: the old
// cells re-strided to the delta's (possibly grown) cardinalities plus the
// delta tabulation. The cached view itself is never mutated — readers may
// hold references to it.
func upgradeView(ctx context.Context, old *dataset.DenseCounts, delta source.Relation) (*dataset.DenseCounts, error) {
	dd, err := source.Dense(ctx, delta, old.Attrs, nil, 0)
	if err != nil || dd == nil {
		return nil, err
	}
	grown, err := old.Grown(dd.Cards)
	if err != nil {
		return nil, err
	}
	if err := grown.AddCells(dd); err != nil {
		return nil, err
	}
	return grown, nil
}

// Pin returns the relation one analysis should read through: for versioned
// backends, a view pinned to the current snapshot version — every count it
// serves comes from that version (from version-matching cache entries, or
// from the pinned snapshot on a miss), so an in-flight analysis never mixes
// epochs no matter how many appends land meanwhile. Immutable backends pin
// to the cache itself.
func (c *Relation) Pin() source.Relation {
	if c.versioned == nil {
		return c
	}
	snap, ver := c.versioned.Snapshot()
	return &Pinned{c: c, snap: snap, ver: ver}
}

// Pinned is a snapshot-pinned read view over a shared count cache: the
// Backend identity, dictionaries, row count and every count are those of
// one version. Cache entries of the pinned version are shared with other
// readers; misses are fetched from the pinned snapshot and stored under the
// pin's version tag (never clobbering newer epochs).
type Pinned struct {
	c    *Relation
	snap source.Relation
	ver  uint64

	mu        sync.Mutex
	maps      map[string]map[source.Key]int
	restricts map[string]*Relation
}

// Version returns the pinned snapshot version.
func (p *Pinned) Version() uint64 { return p.ver }

// Name implements source.Relation.
func (p *Pinned) Name() string { return p.snap.Name() }

// Backend implements source.Relation: the snapshot's identity, which
// incorporates the version — statistics cached against it can never leak
// across epochs.
func (p *Pinned) Backend() string { return p.snap.Backend() }

// Attributes implements source.Relation.
func (p *Pinned) Attributes() []string { return p.snap.Attributes() }

// HasAttribute implements source.Relation.
func (p *Pinned) HasAttribute(name string) bool { return p.snap.HasAttribute(name) }

// NumRows implements source.Relation.
func (p *Pinned) NumRows(ctx context.Context) (int, error) { return p.snap.NumRows(ctx) }

// Labels implements source.Relation.
func (p *Pinned) Labels(ctx context.Context, attr string) ([]string, error) {
	return p.snap.Labels(ctx, attr)
}

// Cardinality forwards the optional capability of the snapshot.
func (p *Pinned) Cardinality(ctx context.Context, attr string) (int, error) {
	return source.Card(ctx, p.snap, attr)
}

// Counts implements source.Relation against the pinned version, sharing the
// cache's dense views where the versions match.
func (p *Pinned) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if where != nil {
		return p.snap.Counts(ctx, attrs, where)
	}
	okey := strings.Join(attrs, "\x00")
	p.mu.Lock()
	if m, ok := p.maps[okey]; ok {
		p.mu.Unlock()
		return m, nil
	}
	p.mu.Unlock()

	dc, err := p.c.denseAt(ctx, p.snap, p.ver, attrs, 0)
	if err != nil {
		return nil, err
	}
	if dc == nil {
		return p.snap.Counts(ctx, attrs, nil)
	}
	m := dc.Map()
	p.mu.Lock()
	if p.maps == nil {
		p.maps = make(map[string]map[source.Key]int)
	}
	for k := range p.maps {
		if len(p.maps) < maxMapMemos {
			break
		}
		delete(p.maps, k)
	}
	p.maps[okey] = m
	p.mu.Unlock()
	return m, nil
}

// DenseCounts implements source.DenseCounter against the pinned version.
func (p *Pinned) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	if where != nil {
		return source.Dense(ctx, p.snap, attrs, where, budget)
	}
	return p.c.denseAt(ctx, p.snap, p.ver, attrs, budget)
}

// Prime fetches the finest dense view over attrs at the pinned version —
// one backend round trip against the snapshot — so subsequent unpredicated
// counts through this handle (and any other reader of the shared root
// cache at this version) are answered by marginalization. Budget semantics
// match Relation.Prime: ≤ 0 means the handle budget, and closures above
// the effective budget are skipped silently.
func (p *Pinned) Prime(ctx context.Context, attrs []string, budget int) error {
	_, err := p.c.denseAt(ctx, p.snap, p.ver, attrs, budget)
	return err
}

// Restrict implements source.Relation: restrictions are taken against the
// pinned snapshot (so they cannot race an append) and wrapped in their own
// count caches, memoized per rendered predicate for the analysis phases
// that revisit one WHERE clause.
func (p *Pinned) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return p, nil
	}
	key := where.SQL()
	p.mu.Lock()
	if child, ok := p.restricts[key]; ok {
		p.mu.Unlock()
		return child, nil
	}
	p.mu.Unlock()

	inner, err := p.snap.Restrict(ctx, where)
	if err != nil {
		return nil, err
	}
	if inner == p.snap {
		return p, nil
	}
	// Pinned restriction children charge the root's ledger too: a
	// predicate-heavy audit over a pinned snapshot stays within the same
	// tree-wide cell bound as the live handle.
	child := wrap(inner, p.c.budget, p.c.account)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.restricts == nil {
		p.restricts = make(map[string]*Relation)
	}
	if prev, ok := p.restricts[key]; ok {
		return prev, nil
	}
	for k := range p.restricts {
		if len(p.restricts) < maxRestricts {
			break
		}
		p.restricts[k].dropAllViews()
		delete(p.restricts, k)
	}
	p.restricts[key] = child
	return child, nil
}

// Materialize forwards the snapshot's row-level capability.
func (p *Pinned) Materialize(ctx context.Context) (*dataset.Table, error) {
	return source.Materialize(ctx, p.snap)
}

// canonical returns the sorted attribute list and, for each requested
// position, its index in the sorted order.
func canonical(attrs []string) (sorted []string, pos []int) {
	sorted = append([]string(nil), attrs...)
	sort.Strings(sorted)
	pos = make([]int, len(attrs))
	for i, a := range attrs {
		for j, s := range sorted {
			if s == a {
				pos[i] = j
				// Duplicate attribute names cannot occur: source.Relation
				// schemas are duplicate-free and callers pass subsets.
				break
			}
		}
	}
	return sorted, pos
}

// denseAt returns the dense view over attrs in request order at the given
// snapshot version, or nil when the cell space exceeds the effective
// budget (budget ≤ 0 meaning the handle budget). src is the relation to
// tabulate from on a miss — the pinned snapshot whose data IS version ver,
// so entries are tagged exactly. The canonical (sorted) view is cached;
// request order is restored with one O(cells) projection. The O(cells)
// work — marginalizing a covering view, fetching from the backend — runs
// outside the handle lock (views are immutable once stored, and a racing
// duplicate computation is benign: last writer wins with identical data),
// so concurrent analyses sharing one handle only contend on map lookups.
func (c *Relation) denseAt(ctx context.Context, src source.Relation, ver uint64, attrs []string, budget int) (*dataset.DenseCounts, error) {
	effective := c.budget
	if budget > 0 {
		effective = budget
	}
	sorted, pos := canonical(attrs)
	key := strings.Join(sorted, "\x00")

	c.mu.Lock()
	var view *dataset.DenseCounts
	var stale *dataset.DenseCounts
	var chain []source.Relation
	if e, ok := c.views[key]; ok {
		if e.ver == ver {
			c.stats.Hits++
			view = e.dc
		} else if e.ver < ver {
			// An exact view a few appends behind: replay the delta chain
			// instead of re-fetching.
			if chain = c.deltaChainLocked(e.ver, ver); chain != nil {
				stale = e.dc
			}
		}
	}
	var cover *dataset.DenseCounts
	var coverKeep []int
	if view == nil && stale == nil {
		cover, coverKeep = c.findCoverLocked(sorted, ver)
	}
	c.mu.Unlock()

	if view == nil && stale != nil {
		up := stale
		for _, d := range chain {
			next, err := upgradeView(ctx, up, d)
			if err != nil || next == nil {
				up = nil
				break
			}
			up = next
		}
		if up != nil {
			c.mu.Lock()
			c.stats.DeltaApplied++
			c.storeLocked(key, up, ver)
			c.mu.Unlock()
			view = up
		} else {
			c.mu.Lock()
			c.stats.DeltaDropped++
			cover, coverKeep = c.findCoverLocked(sorted, ver)
			c.mu.Unlock()
		}
	}
	if view == nil && cover != nil {
		out, err := cover.Project(coverKeep)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.Derived++
		c.storeLocked(key, out, ver)
		c.mu.Unlock()
		view = out
	}
	if view == nil {
		dc, err := source.Dense(ctx, src, sorted, nil, effective)
		if err != nil || dc == nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.Fetches++
		c.storeLocked(key, dc, ver)
		c.mu.Unlock()
		view = dc
	}
	if budget > 0 && len(view.Cells) > budget {
		// An explicitly tighter budget than the view the cache holds: honor
		// the DenseCounter contract rather than returning an oversized view.
		return nil, nil
	}
	return reorder(view, attrs, pos)
}

// findCoverLocked returns the smallest covering view among the derivation
// candidates (the widest memoized views) together with the projection
// positions of the requested attributes, pruning stale candidates along
// the way. Only views of the requested version qualify — marginalizing
// across epochs would mix them. Callers hold c.mu.
func (c *Relation) findCoverLocked(sorted []string, ver uint64) (*dataset.DenseCounts, []int) {
	var (
		best     *dataset.DenseCounts
		bestKeep []int
	)
	kept := c.wide[:0]
	for _, wk := range c.wide {
		e, ok := c.views[wk]
		if !ok {
			continue // evicted; drop from the candidate list
		}
		kept = append(kept, wk)
		if e.ver != ver {
			continue
		}
		keep := coverPositions(e.dc.Attrs, sorted)
		if keep == nil {
			continue
		}
		if best == nil || len(e.dc.Cells) < len(best.Cells) {
			best, bestKeep = e.dc, keep
		}
	}
	c.wide = kept
	return best, bestKeep
}

// coverPositions returns, for each attribute of want, its position in have —
// or nil when have does not cover want.
func coverPositions(have, want []string) []int {
	if len(want) > len(have) {
		return nil
	}
	keep := make([]int, len(want))
	for i, w := range want {
		found := -1
		for j, h := range have {
			if h == w {
				found = j
				break
			}
		}
		if found < 0 {
			return nil
		}
		keep[i] = found
	}
	return keep
}

// storeLocked inserts a view tagged with its snapshot version, evicting
// arbitrary views past the tree-wide cell bound and maintaining the
// derivation-candidate list. A pinned reader re-fetching an old version
// never clobbers a newer entry for the same key: the newer epoch wins and
// the old result is simply served unstored. When even evicting this
// cache's own views and restriction children cannot make room — sibling
// caches of the tree hold the remaining ledger — the view is served
// unstored rather than blowing the bound. Callers hold c.mu.
func (c *Relation) storeLocked(key string, dc *dataset.DenseCounts, ver uint64) {
	if old, exists := c.views[key]; exists && old.ver > ver {
		return
	}
	need := len(dc.Cells)
	if old, exists := c.views[key]; exists {
		// Racing fetches of one key: replace, don't double-count.
		c.totalCells -= len(old.dc.Cells)
		c.account.add(-len(old.dc.Cells))
		delete(c.views, key)
	}
	for k, e := range c.views {
		if c.account.fits(need) {
			break
		}
		c.totalCells -= len(e.dc.Cells)
		c.account.add(-len(e.dc.Cells))
		delete(c.views, k)
	}
	for k := range c.restricts {
		if c.account.fits(need) {
			break
		}
		c.restricts[k].dropAllViews()
		delete(c.restricts, k)
	}
	if !c.account.fits(need) {
		return
	}
	c.noteWideLocked(key, dc)
	c.views[key] = &entry{dc: dc, ver: ver}
	c.totalCells += need
	c.account.add(need)
}

// noteWideLocked admits key into the derivation-candidate list, displacing
// a narrower candidate when full. Callers hold c.mu.
func (c *Relation) noteWideLocked(key string, dc *dataset.DenseCounts) {
	for _, wk := range c.wide {
		if wk == key {
			return // evicted and re-fetched: already a candidate
		}
	}
	if len(c.wide) < maxWide {
		c.wide = append(c.wide, key)
		return
	}
	// Replace the candidate with the fewest attributes if the new view is
	// wider — wider views cover more subsets.
	narrowest, nAttrs := -1, len(dc.Attrs)
	for i, wk := range c.wide {
		e, ok := c.views[wk]
		if !ok {
			narrowest, nAttrs = i, -1
			break
		}
		if len(e.dc.Attrs) < nAttrs {
			narrowest, nAttrs = i, len(e.dc.Attrs)
		}
	}
	if narrowest >= 0 {
		c.wide[narrowest] = key
	}
}

// reorder projects a canonical view back into the requested attribute
// order; a request already in canonical order returns the cached view
// itself (callers must treat it as read-only).
func reorder(view *dataset.DenseCounts, attrs []string, pos []int) (*dataset.DenseCounts, error) {
	inOrder := true
	for i, p := range pos {
		if p != i {
			inOrder = false
		}
	}
	if inOrder && len(attrs) == len(view.Attrs) {
		return view, nil
	}
	return view.Project(pos)
}

var (
	_ source.Relation     = (*Relation)(nil)
	_ source.DenseCounter = (*Relation)(nil)
	_ source.Closer       = (*Relation)(nil)
	_ source.Materializer = (*Relation)(nil)
	_ source.Appender     = (*Relation)(nil)
	_ source.Relation     = (*Pinned)(nil)
	_ source.DenseCounter = (*Pinned)(nil)
	_ source.Materializer = (*Pinned)(nil)
)
