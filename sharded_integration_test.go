package hypdb_test

// Integration coverage for the sharded partition-parallel backend: the
// paper-reproduction goldens must be byte-identical under WithShards (the
// shard merge is an implementation detail, not a statistical change), and
// streaming appends must neither perturb an in-flight audit (snapshot
// pinning) nor force the count cache to re-prime (delta application).

import (
	"context"
	"reflect"
	"testing"

	"hypdb"
	"hypdb/internal/countcache"
	"hypdb/internal/datagen"
)

// TestPaperReproShardedEquivalence re-runs the three headline paper
// reproductions over the sharded backend with four partitions and checks
// them against the SAME golden files as the unsharded runs: identical
// covariates, p-values, effects and explanations to the digit.
func TestPaperReproShardedEquivalence(t *testing.T) {
	t.Run("berkeley", func(t *testing.T) {
		tab, err := datagen.Berkeley(1)
		if err != nil {
			t.Fatal(err)
		}
		db := hypdb.Open(tab, hypdb.WithShards(4))
		s := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
		checkGolden(t, "berkeley.golden.json", s)
	})
	t.Run("staples", func(t *testing.T) {
		tab, err := datagen.Staples(50000, 1)
		if err != nil {
			t.Fatal(err)
		}
		db := hypdb.Open(tab, hypdb.WithShards(4))
		s := analyzeSummaryOn(t, "StaplesData", db, tab.NumRows(), datagen.StaplesQuery(), hypdb.WithSeed(1))
		checkGolden(t, "staples.golden.json", s)
	})
	t.Run("flight", func(t *testing.T) {
		tab, err := datagen.Flight(12000, 1)
		if err != nil {
			t.Fatal(err)
		}
		db := hypdb.Open(tab, hypdb.WithShards(4))
		s := analyzeSummaryOn(t, "FlightData", db, tab.NumRows(), datagen.FlightQuery(),
			hypdb.WithSeed(1), hypdb.WithPermutations(200))
		checkGolden(t, "flight.golden.json", s)
	})
}

// TestAuditUnperturbedByAppend pins the snapshot-isolation contract at the
// session level: an Append landing in the middle of an audit sweep must not
// change the sweep's report — the sweep analyzes the snapshot it started
// on. Afterwards, the next query must be served by delta-applied cache
// views (no re-prime) and must see the appended rows.
func TestAuditUnperturbedByAppend(t *testing.T) {
	ctx := context.Background()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	spec := hypdb.AuditSpec{Workers: 1}
	opts := []hypdb.Option{hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(7)}

	// Reference sweep: same data, no interference.
	want, err := hypdb.Open(tab, hypdb.WithShards(4)).Audit(ctx, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Interfered sweep: the first progress callback appends rows that
	// would flip counts if they leaked into the running sweep.
	db := hypdb.Open(tab, hypdb.WithShards(4))
	appended := false
	mid := spec
	mid.Progress = func(done, total int) {
		if appended {
			return
		}
		appended = true
		rows := make([][]string, 500)
		for i := range rows {
			rows[i] = []string{"Female", "A", "1"}
		}
		if _, err := db.Append(ctx, rows); err != nil {
			t.Errorf("mid-audit append: %v", err)
		}
	}
	got, err := db.Audit(ctx, mid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !appended {
		t.Fatal("the progress hook never fired — the interference is vacuous")
	}

	got.Elapsed, want.Elapsed = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mid-audit append changed the report:\n got: %+v\nwant: %+v", got, want)
	}

	// The appended rows are visible to the next call, served from
	// delta-applied views: DeltaApplied advanced and the fetch count did
	// not (no full re-prime).
	cc, ok := db.Relation().(*countcache.Relation)
	if !ok {
		t.Fatalf("session relation is %T, want *countcache.Relation", db.Relation())
	}
	stBefore := cc.Stats()
	if stBefore.DeltaApplied == 0 {
		t.Errorf("no cached view was delta-applied: %+v", stBefore)
	}
	n, err := db.NumRows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != tab.NumRows()+500 {
		t.Fatalf("post-append rows = %d, want %d", n, tab.NumRows()+500)
	}
	ans, err := db.Run(ctx, datagen.BerkeleyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) == 0 {
		t.Fatal("empty answer after append")
	}
	total := 0
	for _, r := range ans.Rows {
		total += r.Count
	}
	if total != tab.NumRows()+500 {
		t.Errorf("post-append answer covers %d rows, want %d", total, tab.NumRows()+500)
	}
	if st := cc.Stats(); st.Fetches != stBefore.Fetches {
		t.Errorf("post-append query re-fetched the backend (%d -> %d fetches); want delta-served",
			stBefore.Fetches, st.Fetches)
	}
}
