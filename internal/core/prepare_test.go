package core

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// prepTable builds a table with a treatment, a genuine covariate, a 1-1
// code for the treatment, a near-copy of the covariate, and a key column.
func prepTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	b := dataset.NewBuilder("carrier", "carrier_code", "airport", "airport_wac", "id", "delayed")
	carriers := []string{"AA", "UA"}
	codes := []string{"19805", "19977"}
	airports := []string{"COS", "MFE", "MTJ", "ROC"}
	wacs := []string{"82", "74", "82x", "74x"}
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		a := rng.Intn(4)
		d := "0"
		if rng.Float64() < 0.3 {
			d = "1"
		}
		b.MustAdd(carriers[c], codes[c], airports[a], wacs[a], strconv.Itoa(i), d)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPrepareCandidatesDropsFDWithTreatment(t *testing.T) {
	tab := prepTable(t, 2000)
	kept, dropped, err := PrepareCandidates(context.Background(), mem.New(tab), "carrier",
		[]string{"carrier_code", "airport", "airport_wac", "id"}, PrepareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(kept, "carrier_code") {
		t.Errorf("carrier_code (1-1 with treatment) kept: %v", kept)
	}
	if !droppedFor(dropped, "carrier_code", DropFDWithTreatment) {
		t.Errorf("carrier_code not dropped for FD-with-treatment: %+v", dropped)
	}
	if !containsStr(kept, "airport") {
		t.Errorf("airport wrongly dropped: %v (dropped %+v)", kept, dropped)
	}
}

func TestPrepareCandidatesDropsFDPeer(t *testing.T) {
	tab := prepTable(t, 2000)
	kept, dropped, err := PrepareCandidates(context.Background(), mem.New(tab), "carrier",
		[]string{"airport", "airport_wac"}, PrepareConfig{SkipKeyDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	// airport comes first, so airport_wac is the dropped peer.
	if !containsStr(kept, "airport") || containsStr(kept, "airport_wac") {
		t.Errorf("kept = %v, want airport only", kept)
	}
	if !droppedFor(dropped, "airport_wac", DropFDPeer) {
		t.Errorf("airport_wac not dropped as FD peer: %+v", dropped)
	}
}

func TestPrepareCandidatesDropsKeys(t *testing.T) {
	tab := prepTable(t, 2000)
	kept, dropped, err := PrepareCandidates(context.Background(), mem.New(tab), "carrier",
		[]string{"id", "airport"}, PrepareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(kept, "id") {
		t.Errorf("key column kept: %v", kept)
	}
	if !droppedFor(dropped, "id", DropKeyLike) {
		t.Errorf("id not dropped as key-like: %+v", dropped)
	}
	if !containsStr(kept, "airport") {
		t.Errorf("airport wrongly dropped: %+v", dropped)
	}
}

func TestPrepareCandidatesSkipsTreatmentAndValidates(t *testing.T) {
	tab := prepTable(t, 500)
	kept, _, err := PrepareCandidates(context.Background(), mem.New(tab), "carrier",
		[]string{"carrier", "airport"}, PrepareConfig{SkipKeyDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(kept, "carrier") {
		t.Error("treatment kept as its own candidate")
	}
	if _, _, err := PrepareCandidates(context.Background(), mem.New(tab), "missing", []string{"airport"}, PrepareConfig{}); err == nil {
		t.Error("missing treatment accepted")
	}
	if _, _, err := PrepareCandidates(context.Background(), mem.New(tab), "carrier", []string{"missing"}, PrepareConfig{SkipKeyDetection: true}); err == nil {
		t.Error("missing candidate accepted")
	}
}

func TestDetectKeyAttributesSmallTable(t *testing.T) {
	// Too small for subsampling: detector declines to flag anything.
	b := dataset.NewBuilder("x")
	for i := 0; i < 50; i++ {
		b.MustAdd(strconv.Itoa(i))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := detectKeyAttributes(context.Background(), mem.New(tab), []string{"x"}, PrepareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("tiny table flagged keys: %v", keys)
	}
}

func droppedFor(dropped []Dropped, attr string, reason DropReason) bool {
	for _, d := range dropped {
		if d.Attr == attr && d.Reason == reason {
			return true
		}
	}
	return false
}
