package dag

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomDAG draws an Erdős–Rényi DAG: nodes are placed in a random
// topological order and each of the C(n,2) forward pairs becomes an edge
// independently with probability p. Node names are X0..X{n−1}.
//
// This is the RandomData generator of Sec 7.1 ("we first generated a set of
// random DAGs using the Erdős–Rényi model").
func RandomDAG(rng *rand.Rand, n int, p float64) (*DAG, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: RandomDAG with %d nodes", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dag: RandomDAG with edge probability %v", p)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("X%d", i)
	}
	g := MustNew(names...)
	order := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				// order[i] precedes order[j], so this edge cannot cycle.
				if err := g.AddEdgeIdx(order[i], order[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomDAGAvgDegree draws an Erdős–Rényi DAG whose expected average degree
// (in+out) is avgDegree: p = avgDegree·n / (2·C(n,2)) = avgDegree/(n−1).
// The paper's RandomData uses DAGs whose expected parent-set sizes keep
// Markov boundaries small ("bounded fan-ins", Sec 4).
func RandomDAGAvgDegree(rng *rand.Rand, n int, avgDegree float64) (*DAG, error) {
	if n < 2 {
		return RandomDAG(rng, n, 0)
	}
	p := avgDegree / float64(n-1)
	if p > 1 {
		p = 1
	}
	return RandomDAG(rng, n, p)
}

// randGamma samples Gamma(alpha, 1) via Marsaglia–Tsang, with the boosting
// trick for alpha < 1. It backs the Dirichlet draws of RandomCPTs.
func randGamma(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return randGamma(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// randDirichlet fills dst with one draw from Dirichlet(alpha,...,alpha).
func randDirichlet(rng *rand.Rand, alpha float64, dst []float64) {
	sum := 0.0
	for i := range dst {
		g := randGamma(rng, alpha)
		dst[i] = g
		sum += g
	}
	if sum == 0 {
		// Vanishingly unlikely; fall back to uniform.
		for i := range dst {
			dst[i] = 1 / float64(len(dst))
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}
