package core

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/hyperr"
	"hypdb/internal/independence"
	"hypdb/internal/markov"
	"hypdb/source"
)

// CDResult reports automatic covariate discovery for one target attribute.
type CDResult struct {
	// Target is the attribute whose parents were sought (the treatment T,
	// or an outcome Y when discovering mediators).
	Target string
	// Boundary is the learned Markov boundary MB(Target).
	Boundary []string
	// Parents is the discovered parent set PA_Target — the covariates when
	// Target is the treatment (Prop 2.3).
	Parents []string
	// CandidateParents is the phase I output C (parents plus possibly
	// parents of children), before phase II pruning.
	CandidateParents []string
	// UsedFallback is set when CD found no parents and fell back to
	// Z = MB(T) − outcomes (the paper's single-parent fallback, Sec 4).
	UsedFallback bool
	// Boundaries holds MB(Z) for each Z in the target's boundary.
	Boundaries map[string][]string
	// Tests counts all independence tests performed (the CDD performance
	// measure of Fig 6a); TestsBoundary is the share spent learning Markov
	// boundaries with Grow-Shrink (work every boundary-based CDD method
	// shares), and TestsPhases the share spent in the CD-specific phase I
	// and phase II searches.
	Tests         int
	TestsBoundary int
	TestsPhases   int
}

// DiscoverCovariates runs the CD algorithm (Alg 1) for target over the
// candidate attributes: it learns MB(target) and the boundaries of its
// members with Grow-Shrink, then identifies the parents by the two-phase
// collider search of Prop 4.1. The outcomes list is used only by the
// fallback (excluded from the fallback covariate set).
func DiscoverCovariates(ctx context.Context, rel source.Relation, target string, candidates, outcomes []string, cfg Config) (*CDResult, error) {
	if !rel.HasAttribute(target) {
		return nil, fmt.Errorf("core: no target column %q: %w", target, hyperr.ErrUnknownAttribute)
	}
	res := &CDResult{Target: target, Boundaries: make(map[string][]string)}

	// One-query-per-closure pushdown (Sec 6 / multi-query optimization):
	// when the backend carries a marginalization-serving count cache, fetch
	// the finest group-by over the CD attribute closure once; every count
	// the boundary search and the phase I/II subset enumerations request is
	// then answered by marginalizing it client-side. Closures whose cell
	// space exceeds the budget are skipped inside Prime (per-subset counts
	// then reach the backend as before).
	if p, ok := rel.(interface {
		Prime(ctx context.Context, attrs []string, budget int) error
	}); ok && !cfg.SkipPrime {
		closure := unionAttrs([]string{target}, candidates, nil)
		if err := p.Prime(ctx, closure, cfg.CellBudget); err != nil {
			return nil, err
		}
	}

	// Markov boundaries are learned over all candidates; materialization
	// does not apply (the attribute set is unbounded), so the hint is nil.
	mbTester, err := cfg.tester(ctx, rel, nil)
	if err != nil {
		return nil, err
	}
	counter := &independence.Counter{Inner: mbTester}
	mcfg := markov.Config{Tester: counter, Alpha: cfg.alpha(), MaxBoundary: cfg.MaxBoundary}

	mbT, err := markov.GrowShrink(ctx, rel, target, candidates, mcfg)
	if err != nil {
		return nil, err
	}
	res.Boundary = mbT
	for _, z := range mbT {
		cands := excludeStr(candidates, z)
		if !containsStr(cands, target) {
			cands = append(cands, target)
		}
		mbZ, err := markov.GrowShrink(ctx, rel, z, cands, mcfg)
		if err != nil {
			return nil, err
		}
		res.Boundaries[z] = mbZ
	}
	res.TestsBoundary = counter.Calls()
	res.Tests = res.TestsBoundary

	if len(mbT) == 0 {
		return res, nil // no dependencies at all: no covariates
	}

	// Phase I (Alg 1 lines 3–7): collect Z ∈ MB(T) such that some
	// W ∈ MB(T) and S ⊆ MB(Z) − {W, T} witness T as a collider:
	// (Z ⊥⊥ W | S) ∧ (Z ⊥̸⊥ W | S ∪ {T}).
	inC := make(map[string]bool)
	for _, z := range mbT {
		if inC[z] {
			continue
		}
		witness, nTests, err := cfg.phaseIWitness(ctx, rel, target, z, mbT, res.Boundaries[z])
		res.Tests += nTests
		res.TestsPhases += nTests
		if err != nil {
			return nil, err
		}
		if witness != "" {
			inC[z] = true
			inC[witness] = true
		}
	}
	res.CandidateParents = sortedKeys(inC)

	// Phase II (Alg 1 lines 9–11): remove members separable from T by some
	// subset of MB(T) — those are parents of children, not parents.
	parents := make(map[string]bool, len(inC))
	for c := range inC {
		parents[c] = true
	}
	for _, c := range res.CandidateParents {
		separable, nTests, err := cfg.phaseIISeparable(ctx, rel, target, c, mbT)
		res.Tests += nTests
		res.TestsPhases += nTests
		if err != nil {
			return nil, err
		}
		if separable {
			delete(parents, c)
		}
	}
	res.Parents = sortedKeys(parents)

	// Fallback (Sec 4): when the assumption "T has two non-neighbor
	// parents" fails, CD finds nothing; use Z = MB(T) − outcomes.
	//
	// Refinement: if no outcome belongs to MB(T), then MB(T) screens the
	// target from every outcome (T ⊥⊥ Y | MB(T) by definition), so
	// adjusting for the fallback set would force the estimated effect to
	// zero — the boundary members are mediator-shaped, not
	// confounder-shaped (e.g. Income → Distance → Price in StaplesData).
	// In that case the fallback yields no covariates and the boundary
	// members surface through mediator discovery instead. The two cases
	// are Markov-equivalent in general, so this is a documented policy,
	// not an identification claim.
	if len(res.Parents) == 0 && !cfg.DisableFallback {
		res.UsedFallback = true
		outcomeInMB := len(outcomes) == 0
		for _, y := range outcomes {
			if containsStr(mbT, y) {
				outcomeInMB = true
				break
			}
		}
		if outcomeInMB {
			for _, z := range mbT {
				if !containsStr(outcomes, z) {
					res.Parents = append(res.Parents, z)
				}
			}
			sort.Strings(res.Parents)
		}
	}
	return res, nil
}

// phaseIWitness searches for a W certifying condition (a) of Prop 4.1 for
// z; it returns the witness name (or "") and the number of tests used.
func (c Config) phaseIWitness(ctx context.Context, rel source.Relation, target, z string, mbT, mbZ []string) (string, int, error) {
	base := excludeStr(mbZ, target)
	// All tests in this phase touch attributes within
	// {z, target} ∪ MB(z) ∪ MB(T): materialize their joint once (Sec 6).
	hint := unionAttrs([]string{z, target}, base, mbT)
	tester, err := c.tester(ctx, rel, hint)
	if err != nil {
		return "", 0, err
	}
	counter := &independence.Counter{Inner: tester}
	alpha := c.alpha()

	limit := len(base)
	if c.MaxCondSet > 0 && c.MaxCondSet < limit {
		limit = c.MaxCondSet
	}
	witness := ""
	for size := 0; size <= limit && witness == ""; size++ {
		err := forEachSubsetStr(base, size, func(s []string) (bool, error) {
			for _, w := range mbT {
				if w == z || containsStr(s, w) {
					continue
				}
				r1, err := counter.Test(ctx, rel, z, w, s)
				if err != nil {
					return false, err
				}
				if !independence.Decision(r1, alpha) {
					continue // Z ⊥̸ W | S: not separated
				}
				r2, err := counter.Test(ctx, rel, z, w, append(append([]string(nil), s...), target))
				if err != nil {
					return false, err
				}
				if !independence.Decision(r2, alpha) {
					witness = w
					return false, nil // found: stop enumeration
				}
			}
			return true, nil
		})
		if err != nil {
			return "", counter.Calls(), err
		}
	}
	return witness, counter.Calls(), nil
}

// phaseIISeparable reports whether some S ⊆ MB(T) − {c} renders T ⊥⊥ c | S.
func (c Config) phaseIISeparable(ctx context.Context, rel source.Relation, target, cand string, mbT []string) (bool, int, error) {
	base := excludeStr(mbT, cand)
	hint := unionAttrs([]string{cand, target}, base, nil)
	tester, err := c.tester(ctx, rel, hint)
	if err != nil {
		return false, 0, err
	}
	counter := &independence.Counter{Inner: tester}
	alpha := c.alpha()

	limit := len(base)
	if c.MaxCondSet > 0 && c.MaxCondSet < limit {
		limit = c.MaxCondSet
	}
	separable := false
	for size := 0; size <= limit && !separable; size++ {
		err := forEachSubsetStr(base, size, func(s []string) (bool, error) {
			r, err := counter.Test(ctx, rel, target, cand, s)
			if err != nil {
				return false, err
			}
			if independence.Decision(r, alpha) {
				separable = true
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return false, counter.Calls(), err
		}
	}
	return separable, counter.Calls(), nil
}

// forEachSubsetStr enumerates size-k subsets; the callback returns
// (continue, error).
func forEachSubsetStr(items []string, k int, f func([]string) (bool, error)) error {
	if k > len(items) {
		return nil
	}
	if k == 0 {
		_, err := f(nil)
		return err
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]string, k)
	for {
		for i, v := range idx {
			buf[i] = items[v]
		}
		cont, err := f(buf)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		i := k - 1
		for i >= 0 && idx[i] == len(items)-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func excludeStr(items []string, drop string) []string {
	out := make([]string, 0, len(items))
	for _, x := range items {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

func containsStr(items []string, x string) bool {
	for _, v := range items {
		if v == x {
			return true
		}
	}
	return false
}

func unionAttrs(lists ...[]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range lists {
		for _, x := range l {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
