// Package sqldb implements the SQL storage backend of HypDB: a
// source.Relation over any database/sql handle that pushes the engine's
// sufficient statistics down to the database as aggregate queries.
//
// Group-by counts — the single primitive everything in HypDB reduces to —
// are executed as
//
//	SELECT "a", "b", COUNT(*) FROM "t" [WHERE σ] GROUP BY "a", "b"
//
// so the data never leaves the database for counts-based analyses; only the
// (small) aggregate crosses the wire. Per-attribute dictionaries are loaded
// lazily with SELECT DISTINCT and sorted for determinism, and every count
// result is memoized in a per-handle cache keyed by (attributes, predicate)
// — the layer under the session's single-flight covariate-discovery cache
// that makes repeated independence tests over shared sub-aggregates cheap,
// in the spirit of multi-query optimization for analyze-style operators.
//
// Predicates are rendered through their SQL() form (ANSI quoting: double
// quotes for identifiers, single quotes with ” escaping for literals).
// Restrict composes predicates into the WHERE clause of every query and
// rebuilds dictionaries under the restriction, mirroring the dictionary
// compaction of the in-memory backend.
//
// The backend also implements source.Materializer — row-level paths (the
// naive shuffle test, subsample key detection) fetch the selected rows once
// and proceed in memory — and source.Closer, releasing the *sql.DB when the
// root handle is closed. Wrap with source.CountsOnly to forbid
// materialization.
package sqldb

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
)

// Stats counts the backend's query traffic for one handle.
type Stats struct {
	// CountQueries is the number of GROUP BY count queries actually sent to
	// the database; CacheHits the number answered from the per-handle cache.
	CountQueries int
	CacheHits    int
	// Derived is the number of count requests answered client-side by
	// marginalizing a cached superset result instead of querying — the
	// multi-query-optimization path that collapses the CD hill-climb's
	// N-queries pattern to roughly one round trip per attribute closure.
	Derived int
	// DictQueries counts SELECT DISTINCT dictionary loads.
	DictQueries int
}

// Relation is a source.Relation backed by one table of a database/sql
// database. Create the root handle with Open; Restrict derives restricted
// handles sharing the same *sql.DB.
type Relation struct {
	db      *sql.DB
	table   string
	where   source.Predicate // handle-level restriction; nil at the root
	attrs   []string
	attrSet map[string]bool
	backend string
	owned   bool // the root handle closes the *sql.DB

	closeOnce sync.Once
	closeErr  error

	mu        sync.Mutex
	nrows     int
	hasN      bool
	dicts     map[string]*dict
	counts    map[string]*countEntry
	wide      []*countEntry // widest memoized results: the derivation candidates
	dense     map[string]*dataset.DenseCounts
	cards     map[string]int
	restricts map[string]*Relation
	mat       *dataset.Table
	stats     Stats
}

// maxDenseMemos bounds the dense-form memo (entries rebuild from the
// sparse memo in one pass, so eviction only costs a re-fold).
const maxDenseMemos = 64

// maxWideEntries bounds the derivation-candidate list: coverage search must
// stay O(1) per request, so only the widest memoized results (the closure
// queries, which cover nearly every subset worth deriving) are scanned;
// requests they do not cover are simply queried.
const maxWideEntries = 16

// countEntry is one memoized count result, remembering the grouped
// attributes and rendered WHERE clause so later requests over an attribute
// subset under the same clause can be answered by client-side
// marginalization instead of another round trip.
type countEntry struct {
	attrs  []string
	clause string
	m      map[source.Key]int
}

type dict struct {
	labels []string
	index  map[string]int32
}

// maxCountCacheEntries bounds the per-handle count memo. Long-lived server
// handles would otherwise accumulate one contingency map per distinct
// (attrs, where) the CD subset enumeration ever touched; past the bound,
// arbitrary entries are evicted (the cache is a pure memo — eviction only
// costs a recomputation).
const maxCountCacheEntries = 1024

// Open probes the table's schema and returns the root relation handle. The
// handle takes ownership of db: closing the relation (directly or through
// hypdb's DB.Close) closes db. Close is safe to call more than once.
func Open(ctx context.Context, db *sql.DB, table string) (*Relation, error) {
	if table == "" {
		return nil, fmt.Errorf("sqldb: empty table name")
	}
	rows, err := db.QueryContext(ctx, "SELECT * FROM "+quoteIdent(table)+" WHERE 1=0")
	if err != nil {
		return nil, fmt.Errorf("sqldb: probing schema of %q: %w", table, err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, fmt.Errorf("sqldb: reading schema of %q: %w", table, err)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sqldb: probing schema of %q: %w", table, err)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %q has no columns", table)
	}
	r := &Relation{
		db:      db,
		table:   table,
		attrs:   cols,
		attrSet: make(map[string]bool, len(cols)),
		backend: fmt.Sprintf("sqldb:%p:%s", db, table),
		owned:   true,
		dicts:   make(map[string]*dict),
		counts:  make(map[string]*countEntry),
	}
	for _, c := range cols {
		if r.attrSet[c] {
			return nil, fmt.Errorf("sqldb: table %q has duplicate column %q", table, c)
		}
		r.attrSet[c] = true
	}
	return r, nil
}

// Name implements source.Relation.
func (r *Relation) Name() string { return r.table }

// Backend implements source.Relation: the database handle's address, the
// table name, and the restriction predicate — so two handles over different
// sources (or different WHERE views) can never collide in a shared cache.
func (r *Relation) Backend() string { return r.backend }

// Attributes implements source.Relation.
func (r *Relation) Attributes() []string { return append([]string(nil), r.attrs...) }

// HasAttribute implements source.Relation.
func (r *Relation) HasAttribute(name string) bool { return r.attrSet[name] }

// Stats returns a snapshot of the handle's query counters.
func (r *Relation) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close releases the underlying *sql.DB. Only the root handle owns the
// database; Close on a Restrict-derived handle is a no-op. Double-Close is
// safe.
func (r *Relation) Close() error {
	r.closeOnce.Do(func() {
		if r.owned {
			r.closeErr = r.db.Close()
		}
	})
	return r.closeErr
}

// NumRows implements source.Relation.
func (r *Relation) NumRows(ctx context.Context) (int, error) {
	r.mu.Lock()
	if r.hasN {
		n := r.nrows
		r.mu.Unlock()
		return n, nil
	}
	r.mu.Unlock()

	q := "SELECT COUNT(*) FROM " + quoteIdent(r.table) + r.whereClause(nil)
	var n int
	if err := r.db.QueryRowContext(ctx, q).Scan(&n); err != nil {
		return 0, fmt.Errorf("sqldb: counting rows of %q: %w", r.table, err)
	}
	r.mu.Lock()
	r.nrows, r.hasN = n, true
	r.mu.Unlock()
	return n, nil
}

// Labels implements source.Relation. Dictionaries are loaded once per
// handle with SELECT DISTINCT under the handle's restriction and sorted
// lexicographically, so codes are deterministic for a given database state.
func (r *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	d, err := r.dictOf(ctx, attr)
	if err != nil {
		return nil, err
	}
	return d.labels, nil
}

func (r *Relation) dictOf(ctx context.Context, attr string) (*dict, error) {
	if !r.attrSet[attr] {
		return nil, fmt.Errorf("sqldb: table %q has no column %q: %w", r.table, attr, hyperr.ErrUnknownAttribute)
	}
	r.mu.Lock()
	if d, ok := r.dicts[attr]; ok {
		r.mu.Unlock()
		return d, nil
	}
	r.mu.Unlock()

	q := "SELECT DISTINCT " + quoteIdent(attr) + " FROM " + quoteIdent(r.table) + r.whereClause(nil)
	rows, err := r.db.QueryContext(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("sqldb: loading dictionary of %q.%q: %w", r.table, attr, err)
	}
	defer rows.Close()
	var labels []string
	for rows.Next() {
		var v any
		if err := rows.Scan(&v); err != nil {
			return nil, fmt.Errorf("sqldb: scanning dictionary of %q.%q: %w", r.table, attr, err)
		}
		label, err := valueString(v)
		if err != nil {
			return nil, fmt.Errorf("sqldb: dictionary of %q.%q: %v", r.table, attr, err)
		}
		labels = append(labels, label)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sqldb: loading dictionary of %q.%q: %w", r.table, attr, err)
	}
	sort.Strings(labels)
	d := &dict{labels: labels, index: make(map[string]int32, len(labels))}
	for i, l := range labels {
		d.index[l] = int32(i)
	}
	r.mu.Lock()
	if prev, ok := r.dicts[attr]; ok {
		d = prev // another goroutine won the race; keep one dictionary
	} else {
		r.dicts[attr] = d
		r.stats.DictQueries++
	}
	r.mu.Unlock()
	return d, nil
}

// Counts implements source.Relation: one pushed-down GROUP BY count query,
// memoized per (attrs, where) on the handle. Before querying, the handle
// looks for a memoized result over a superset of attrs under the same WHERE
// clause and derives the requested marginal client-side — "contingency
// tables with their marginals are essentially OLAP data-cubes" (Sec 6) —
// so one finest group-by over an attribute closure serves every subset the
// covariate-discovery search enumerates, collapsing N queries to ~1.
func (r *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if err := source.CheckAttrs(r, attrs...); err != nil {
		return nil, err
	}
	clause := r.whereClause(where)
	cacheKey := strings.Join(attrs, "\x00") + "\x01" + clause

	r.mu.Lock()
	if e, ok := r.counts[cacheKey]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		return e.m, nil
	}
	if parent := r.findSupersetLocked(attrs, clause); parent != nil {
		fields := make([]int, len(attrs))
		for i, a := range attrs {
			for j, pa := range parent.attrs {
				if pa == a {
					fields[i] = j
					break
				}
			}
		}
		derived := dataset.ProjectKeys(parent.m, fields)
		r.storeCountsLocked(cacheKey, &countEntry{attrs: append([]string(nil), attrs...), clause: clause, m: derived})
		r.stats.Derived++
		r.mu.Unlock()
		return derived, nil
	}
	r.mu.Unlock()

	// Dictionaries for every grouped attribute, loaded before the count
	// query so result labels decode to stable codes.
	dicts := make([]*dict, len(attrs))
	for i, a := range attrs {
		d, err := r.dictOf(ctx, a)
		if err != nil {
			return nil, err
		}
		dicts[i] = d
	}

	var q strings.Builder
	q.WriteString("SELECT ")
	for _, a := range attrs {
		q.WriteString(quoteIdent(a))
		q.WriteString(", ")
	}
	q.WriteString("COUNT(*) FROM ")
	q.WriteString(quoteIdent(r.table))
	q.WriteString(clause)
	if len(attrs) > 0 {
		q.WriteString(" GROUP BY ")
		for i, a := range attrs {
			if i > 0 {
				q.WriteString(", ")
			}
			q.WriteString(quoteIdent(a))
		}
	}
	rows, err := r.db.QueryContext(ctx, q.String())
	if err != nil {
		return nil, fmt.Errorf("sqldb: count query on %q: %w", r.table, err)
	}
	defer rows.Close()

	out := make(map[source.Key]int)
	vals := make([]any, len(attrs)+1)
	ptrs := make([]any, len(attrs)+1)
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	codes := make([]int32, len(attrs))
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return nil, fmt.Errorf("sqldb: scanning counts of %q: %w", r.table, err)
		}
		for i := range attrs {
			label, err := valueString(vals[i])
			if err != nil {
				return nil, fmt.Errorf("sqldb: counts of %q.%q: %v", r.table, attrs[i], err)
			}
			code, ok := dicts[i].index[label]
			if !ok {
				return nil, fmt.Errorf("sqldb: value %q of %q.%q absent from its dictionary (database changed under the handle?)",
					label, r.table, attrs[i])
			}
			codes[i] = code
		}
		n, err := valueInt(vals[len(attrs)])
		if err != nil {
			return nil, fmt.Errorf("sqldb: count column of %q: %w", r.table, err)
		}
		out[dataset.EncodeKey(codes...)] += n
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sqldb: count query on %q: %w", r.table, err)
	}

	r.mu.Lock()
	r.storeCountsLocked(cacheKey, &countEntry{attrs: append([]string(nil), attrs...), clause: clause, m: out})
	r.stats.CountQueries++
	r.mu.Unlock()
	return out, nil
}

// storeCountsLocked inserts a memo entry, evicting arbitrary entries past
// the bound and maintaining the derivation-candidate list. Callers hold
// r.mu.
//
// This sparse-map derivation layer is the backend-side sibling of
// internal/countcache (which serves dense views above the facade): facade
// sessions are covered by countcache, while this keeps direct sqldb users
// — and the post-prime subset traffic countcache forwards — collapsing to
// the closure query. Behavioral changes to one candidate-list policy
// should be mirrored in the other.
func (r *Relation) storeCountsLocked(cacheKey string, e *countEntry) {
	for key := range r.counts {
		if len(r.counts) < maxCountCacheEntries {
			break
		}
		evicted := r.counts[key]
		delete(r.counts, key)
		for i, w := range r.wide {
			if w == evicted {
				r.wide[i] = r.wide[len(r.wide)-1]
				r.wide = r.wide[:len(r.wide)-1]
				break
			}
		}
	}
	if old, exists := r.counts[cacheKey]; exists {
		// Racing identical queries: drop the replaced entry's candidacy.
		for i, w := range r.wide {
			if w == old {
				r.wide[i] = r.wide[len(r.wide)-1]
				r.wide = r.wide[:len(r.wide)-1]
				break
			}
		}
	}
	r.counts[cacheKey] = e
	if len(r.wide) < maxWideEntries {
		r.wide = append(r.wide, e)
		return
	}
	// Displace the narrowest candidate if the new entry is wider.
	narrowest, nAttrs := -1, len(e.attrs)
	for i, w := range r.wide {
		if len(w.attrs) < nAttrs {
			narrowest, nAttrs = i, len(w.attrs)
		}
	}
	if narrowest >= 0 {
		r.wide[narrowest] = e
	}
}

// findSupersetLocked returns the smallest derivation candidate under the
// same WHERE clause whose grouped attributes cover attrs, or nil. Only the
// bounded candidate list is scanned — a full-memo scan would make the
// search quadratic in the number of distinct attribute sets an analysis
// touches. Callers hold r.mu.
func (r *Relation) findSupersetLocked(attrs []string, clause string) *countEntry {
	var best *countEntry
	for _, e := range r.wide {
		if e.clause != clause || len(e.attrs) < len(attrs) {
			continue
		}
		covers := true
		for _, a := range attrs {
			found := false
			for _, pa := range e.attrs {
				if pa == a {
					found = true
					break
				}
			}
			if !found {
				covers = false
				break
			}
		}
		if covers && (best == nil || len(e.m) < len(best.m)) {
			best = e
		}
	}
	return best
}

// DenseCounts implements source.DenseCounter: the (possibly derived) sparse
// count result is folded into the flat mixed-radix form using the handle's
// dictionaries, memoized per (attrs, where) so repeated entropy requests
// on one handle do not re-fold. Returns (nil, nil) above the cell budget.
// Callers must treat the returned view as read-only.
func (r *Relation) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	cards := make([]int, len(attrs))
	for i, a := range attrs {
		d, err := r.dictOf(ctx, a)
		if err != nil {
			return nil, err
		}
		cards[i] = len(d.labels)
	}
	rows, err := r.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	if _, ok := dataset.DenseSize(cards, dataset.EffectiveBudget(budget, rows)); !ok {
		return nil, nil
	}
	memoKey := strings.Join(attrs, "\x00") + "\x01" + r.whereClause(where)
	r.mu.Lock()
	if dc, ok := r.dense[memoKey]; ok {
		r.mu.Unlock()
		return dc, nil
	}
	r.mu.Unlock()

	counts, err := r.Counts(ctx, attrs, where)
	if err != nil {
		return nil, err
	}
	dc, err := dataset.NewDenseCounts(attrs, cards)
	if err != nil {
		return nil, err
	}
	for k, c := range counts {
		if err := dc.AddKey(k, c); err != nil {
			return nil, fmt.Errorf("sqldb: counts of %q: %v", r.table, err)
		}
	}
	r.mu.Lock()
	if r.dense == nil {
		r.dense = make(map[string]*dataset.DenseCounts)
	}
	for k := range r.dense {
		if len(r.dense) < maxDenseMemos {
			break
		}
		delete(r.dense, k)
	}
	r.dense[memoKey] = dc
	r.mu.Unlock()
	return dc, nil
}

// Restrict implements source.Relation: it derives a handle whose every
// query carries the composed WHERE clause and whose dictionaries are
// rebuilt (compacted) under the restriction. Derived handles share the
// *sql.DB and are memoized per rendered predicate on this handle, so the
// several phases of one analysis (view, run, rewrite) that restrict by the
// same WHERE clause share one set of dictionary and count caches instead
// of re-issuing identical queries.
func (r *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	composed := where
	if r.where != nil {
		composed = dataset.And{r.where, where}
	}
	key := renderPredicate(composed)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.restricts == nil {
		r.restricts = make(map[string]*Relation)
	}
	if child, ok := r.restricts[key]; ok {
		return child, nil
	}
	out := &Relation{
		db:      r.db,
		table:   r.table,
		where:   composed,
		attrs:   r.attrs,
		attrSet: r.attrSet,
		backend: fmt.Sprintf("sqldb:%p:%s|σ:%s", r.db, r.table, key),
		dicts:   make(map[string]*dict),
		counts:  make(map[string]*countEntry),
	}
	for k := range r.restricts {
		if len(r.restricts) < maxCountCacheEntries {
			break
		}
		delete(r.restricts, k)
	}
	r.restricts[key] = out
	return out, nil
}

// Cardinality returns the active-domain size of attr with one
// COUNT(DISTINCT) aggregate when the dictionary is not already loaded —
// callers that only need the number (schema listings) avoid pulling every
// distinct value over the wire.
func (r *Relation) Cardinality(ctx context.Context, attr string) (int, error) {
	if !r.attrSet[attr] {
		return 0, fmt.Errorf("sqldb: table %q has no column %q: %w", r.table, attr, hyperr.ErrUnknownAttribute)
	}
	r.mu.Lock()
	if d, ok := r.dicts[attr]; ok {
		n := len(d.labels)
		r.mu.Unlock()
		return n, nil
	}
	if n, ok := r.cards[attr]; ok {
		r.mu.Unlock()
		return n, nil
	}
	r.mu.Unlock()

	q := "SELECT COUNT(DISTINCT " + quoteIdent(attr) + ") FROM " + quoteIdent(r.table) + r.whereClause(nil)
	var n int
	if err := r.db.QueryRowContext(ctx, q).Scan(&n); err != nil {
		return 0, fmt.Errorf("sqldb: counting distinct %q.%q: %w", r.table, attr, err)
	}
	r.mu.Lock()
	if r.cards == nil {
		r.cards = make(map[string]int)
	}
	r.cards[attr] = n
	r.mu.Unlock()
	return n, nil
}

// Materialize implements source.Materializer: it fetches the restricted
// rows once and rebuilds them as an in-memory table whose dictionaries are
// the handle's own (sorted) dictionaries. The table is cached.
func (r *Relation) Materialize(ctx context.Context) (*dataset.Table, error) {
	r.mu.Lock()
	if r.mat != nil {
		t := r.mat
		r.mu.Unlock()
		return t, nil
	}
	r.mu.Unlock()

	dicts := make([]*dict, len(r.attrs))
	for i, a := range r.attrs {
		d, err := r.dictOf(ctx, a)
		if err != nil {
			return nil, err
		}
		dicts[i] = d
	}
	var q strings.Builder
	q.WriteString("SELECT ")
	for i, a := range r.attrs {
		if i > 0 {
			q.WriteString(", ")
		}
		q.WriteString(quoteIdent(a))
	}
	q.WriteString(" FROM ")
	q.WriteString(quoteIdent(r.table))
	q.WriteString(r.whereClause(nil))
	rows, err := r.db.QueryContext(ctx, q.String())
	if err != nil {
		return nil, fmt.Errorf("sqldb: materializing %q: %w", r.table, err)
	}
	defer rows.Close()

	codes := make([][]int32, len(r.attrs))
	vals := make([]any, len(r.attrs))
	ptrs := make([]any, len(r.attrs))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return nil, fmt.Errorf("sqldb: scanning rows of %q: %w", r.table, err)
		}
		for i := range r.attrs {
			label, err := valueString(vals[i])
			if err != nil {
				return nil, fmt.Errorf("sqldb: rows of %q.%q: %v", r.table, r.attrs[i], err)
			}
			code, ok := dicts[i].index[label]
			if !ok {
				return nil, fmt.Errorf("sqldb: value %q of %q.%q absent from its dictionary (database changed under the handle?)",
					label, r.table, r.attrs[i])
			}
			codes[i] = append(codes[i], code)
		}
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sqldb: materializing %q: %w", r.table, err)
	}

	cols := make([]*dataset.Column, len(r.attrs))
	for i, a := range r.attrs {
		col, err := dataset.NewColumnFromCodes(a, codes[i], dicts[i].labels)
		if err != nil {
			return nil, fmt.Errorf("sqldb: materializing %q: %v", r.table, err)
		}
		cols[i] = col
	}
	t, err := dataset.New(cols...)
	if err != nil {
		return nil, fmt.Errorf("sqldb: materializing %q: %v", r.table, err)
	}
	r.mu.Lock()
	r.mat = t
	r.mu.Unlock()
	return t, nil
}

// whereClause renders the handle restriction conjoined with extra as a
// " WHERE ..." clause, or "" when unrestricted.
func (r *Relation) whereClause(extra source.Predicate) string {
	pred := r.where
	switch {
	case pred == nil:
		pred = extra
	case extra != nil:
		pred = dataset.And{pred, extra}
	}
	if pred == nil {
		return ""
	}
	s := renderPredicate(pred)
	if s == "TRUE" {
		return ""
	}
	return " WHERE " + s
}

// renderPredicate renders the built-in combinators with ANSI-quoted
// identifiers — matching the quoting of the SELECT and GROUP BY lists, so
// case-folding databases resolve the same column everywhere. Unknown
// predicate implementations fall back to their own SQL() rendering.
func renderPredicate(p source.Predicate) string {
	switch v := p.(type) {
	case dataset.In:
		if len(v.Values) == 0 {
			return "FALSE"
		}
		quoted := make([]string, len(v.Values))
		for i, val := range v.Values {
			quoted[i] = quoteString(val)
		}
		return quoteIdent(v.Attr) + " IN (" + strings.Join(quoted, ",") + ")"
	case dataset.Eq:
		return quoteIdent(v.Attr) + " = " + quoteString(v.Value)
	case dataset.And:
		if len(v) == 0 {
			return "TRUE"
		}
		parts := make([]string, len(v))
		for i, child := range v {
			s := renderPredicate(child)
			if or, ok := child.(dataset.Or); ok && len(or) > 0 {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, " AND ")
	case dataset.Or:
		if len(v) == 0 {
			return "FALSE"
		}
		parts := make([]string, len(v))
		for i, child := range v {
			parts[i] = "(" + renderPredicate(child) + ")"
		}
		return strings.Join(parts, " OR ")
	case dataset.Not:
		return "NOT (" + renderPredicate(v.Pred) + ")"
	case dataset.All:
		return "TRUE"
	default:
		return p.SQL()
	}
}

// quoteString renders a value literal with ” escaping.
func quoteString(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// quoteIdent renders an identifier with ANSI double quotes.
func quoteIdent(name string) string {
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// valueString normalizes a driver value to its label string. SQL NULL is
// rejected rather than folded into the empty string: the engine's
// categorical model has no NULL, and a silent "" alias would both inflate
// dictionaries (NULL next to a real empty string) and break predicate
// round-trips (col = ” never re-selects NULL rows).
func valueString(v any) (string, error) {
	switch x := v.(type) {
	case nil:
		return "", fmt.Errorf("NULL value (coalesce NULLs in the table or view before opening it)")
	case string:
		return x, nil
	case []byte:
		return string(x), nil
	default:
		return fmt.Sprint(x), nil
	}
}

// valueInt normalizes a driver count value.
func valueInt(v any) (int, error) {
	switch x := v.(type) {
	case int64:
		return int(x), nil
	case int:
		return x, nil
	case []byte:
		var n int
		_, err := fmt.Sscanf(string(x), "%d", &n)
		return n, err
	case string:
		var n int
		_, err := fmt.Sscanf(x, "%d", &n)
		return n, err
	default:
		return 0, fmt.Errorf("unsupported count type %T", v)
	}
}

var (
	_ source.Relation     = (*Relation)(nil)
	_ source.Materializer = (*Relation)(nil)
	_ source.Closer       = (*Relation)(nil)
	_ source.DenseCounter = (*Relation)(nil)
)
