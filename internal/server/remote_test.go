package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/source/remote"
)

// newPeerServer starts a hypdbd node with its handler mounted on an
// httptest server and returns both plus the base URL — the shape a remote
// shard peer has in production.
func newPeerServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts.URL
}

// postCounts performs one raw counts-endpoint round trip.
func postCounts(t *testing.T, baseURL, dataset string, req remote.CountsRequest) (*remote.CountsResponse, *api.Error) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/datasets/"+dataset+"/counts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error *api.Error `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			t.Fatalf("HTTP %d with undecodable error body (%v)", resp.StatusCode, err)
		}
		env.Error.Status = resp.StatusCode
		return nil, env.Error
	}
	var out remote.CountsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, nil
}

func TestCountsEndpoint(t *testing.T) {
	srv, url := newPeerServer(t, Config{Shards: 4})
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}

	// Handshake: schema, dictionaries, rows, version.
	hs, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{IncludeSchema: true})
	if apiErr != nil {
		t.Fatalf("handshake: %v", apiErr)
	}
	if hs.Schema == nil || len(hs.Schema.Attrs) != 3 || hs.Schema.Rows != datagen.BerkeleyRows() {
		t.Fatalf("handshake schema = %+v", hs.Schema)
	}
	if hs.Version != 1 || hs.Schema.Version != 1 {
		t.Fatalf("handshake version = %d/%d, want 1 (sharded snapshot)", hs.Version, hs.Schema.Version)
	}

	// Counts by one attribute sum to the table size, and the codes index
	// the handshake dictionary.
	cs, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, ExpectVersion: 1,
	})
	if apiErr != nil {
		t.Fatalf("counts: %v", apiErr)
	}
	total := 0
	card := len(hs.Schema.Labels[0])
	for i, g := range cs.Groups {
		if len(g) != 1 || int(g[0]) >= card {
			t.Fatalf("group %d = %v out of range for card %d", i, g, card)
		}
		total += cs.Counts[i]
	}
	if total != datagen.BerkeleyRows() {
		t.Errorf("counts sum to %d, want %d", total, datagen.BerkeleyRows())
	}

	// A WHERE predicate restricts the counted rows.
	where, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, Where: "Gender = 'Male'",
	})
	if apiErr != nil {
		t.Fatalf("where counts: %v", apiErr)
	}
	if len(where.Groups) != 1 {
		t.Fatalf("where counts groups = %v, want one (Male)", where.Groups)
	}

	// Restrict is a server-side view: the restricted handshake compacts
	// dictionaries like a local backend would.
	rs, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Restrict: "Gender = 'Female'", IncludeSchema: true,
	})
	if apiErr != nil {
		t.Fatalf("restricted handshake: %v", apiErr)
	}
	if len(rs.Schema.Labels[0]) != 1 || rs.Schema.Rows >= datagen.BerkeleyRows() {
		t.Fatalf("restricted schema = %+v, want single Gender label over fewer rows", rs.Schema)
	}

	// Version skew fails closed with the typed code.
	if _, apiErr = postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, ExpectVersion: 99,
	}); apiErr == nil || apiErr.Code != api.CodeVersionSkew || apiErr.Status != http.StatusConflict {
		t.Fatalf("version skew error = %v, want 409 %s", apiErr, api.CodeVersionSkew)
	}

	// Bad predicates are a client error, not a 500.
	if _, apiErr = postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, Where: "Gender ==",
	}); apiErr == nil || apiErr.Code != api.CodeBadPredicate {
		t.Fatalf("bad predicate error = %v, want %s", apiErr, api.CodeBadPredicate)
	}
	if _, apiErr = postCounts(t, url, "nope", remote.CountsRequest{IncludeSchema: true}); apiErr == nil || apiErr.Code != api.CodeDatasetNotFound {
		t.Fatalf("missing dataset error = %v, want %s", apiErr, api.CodeDatasetNotFound)
	}

	// The transport counters moved.
	m := metricsOf(t, url)
	if m.CountsServed < 2 {
		t.Errorf("service CountsServed = %d, want >= 2", m.CountsServed)
	}
}

func metricsOf(t *testing.T, url string) *api.Metrics {
	t.Helper()
	m, err := api.NewClient(url, nil).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRemoteDatasetOverLoopbackPeer(t *testing.T) {
	peer, peerURL := newPeerServer(t, Config{Shards: 2})
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}

	coord, coordURL := newPeerServer(t, Config{})
	if err := coord.AddRemoteDataset(context.Background(), "berkeley", []string{peerURL}, false); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	c := api.NewClient(coordURL, nil)
	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Backend != "remote" || list[0].Rows != datagen.BerkeleyRows() {
		t.Fatalf("coordinator dataset = %+v", list)
	}
	if len(list[0].Peers) != 1 || list[0].Peers[0] != peerURL {
		t.Fatalf("coordinator peers = %v, want [%s]", list[0].Peers, peerURL)
	}

	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err != nil {
		t.Fatalf("analyze over remote shard: %v", err)
	}
	if rep.Degraded {
		t.Error("healthy-peer analysis marked degraded")
	}

	// Both sides of the transport surface counters: the coordinator its
	// per-peer stats, the peer its served counts.
	cm := metricsOf(t, coordURL)
	if len(cm.PerDataset) != 1 || len(cm.PerDataset[0].Remote) != 1 {
		t.Fatalf("coordinator metrics = %+v, want one remote peer", cm.PerDataset)
	}
	pm := cm.PerDataset[0].Remote[0]
	if pm.URL != peerURL || !pm.Healthy || pm.Requests == 0 {
		t.Errorf("peer metrics = %+v", pm)
	}
	if m := metricsOf(t, peerURL); m.CountsServed == 0 {
		t.Error("peer served no counts despite a completed analysis")
	}

	// Duplicate registration fails cleanly.
	if err := coord.AddRemoteDataset(ctx, "berkeley", []string{peerURL}, false); err == nil {
		t.Error("duplicate remote registration succeeded")
	}
	// A dataset the peer does not serve fails the handshake.
	if err := coord.AddRemoteDataset(ctx, "nope", []string{peerURL}, false); err == nil {
		t.Error("remote registration for a missing dataset succeeded")
	}
}

// TestUnversionedDatasetPinnedByRegistrationEpoch is the regression test
// for the skew hole on unversioned backends: a plain mem dataset used to
// hand out Version 0 in the handshake, so the client omitted expect_version
// (omitempty) and the server never ran the skew check — deleting and
// re-registering the dataset between calls was served silently from the new
// data. Every registration now issues a nonzero epoch as the pinned
// version.
func TestUnversionedDatasetPinnedByRegistrationEpoch(t *testing.T) {
	srv, url := newPeerServer(t, Config{}) // no shards: mem backend, no snapshot versions
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}

	hs, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{IncludeSchema: true})
	if apiErr != nil {
		t.Fatalf("handshake: %v", apiErr)
	}
	if hs.Version == 0 || hs.Schema.Version != hs.Version {
		t.Fatalf("handshake version = %d/%d, want a matching nonzero registration epoch",
			hs.Version, hs.Schema.Version)
	}

	// The pinned epoch round-trips; a wrong pin trips the skew check even
	// though the backend has no versions of its own.
	if _, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, ExpectVersion: hs.Version,
	}); apiErr != nil {
		t.Fatalf("counts at pinned epoch: %v", apiErr)
	}
	if _, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, ExpectVersion: hs.Version + 1,
	}); apiErr == nil || apiErr.Code != api.CodeVersionSkew {
		t.Fatalf("wrong pin error = %v, want %s", apiErr, api.CodeVersionSkew)
	}

	// Delete and re-register the name: the replacement gets a fresh epoch,
	// so a coordinator still pinned to the old registration fails closed
	// instead of silently mixing epochs.
	if err := api.NewClient(url, nil).DeleteDataset(context.Background(), "berkeley"); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}
	hs2, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{IncludeSchema: true})
	if apiErr != nil {
		t.Fatalf("re-registration handshake: %v", apiErr)
	}
	if hs2.Version == hs.Version {
		t.Fatalf("re-registered dataset reuses epoch %d", hs.Version)
	}
	if _, apiErr := postCounts(t, url, "berkeley", remote.CountsRequest{
		Attrs: []string{"Gender"}, ExpectVersion: hs.Version,
	}); apiErr == nil || apiErr.Code != api.CodeVersionSkew || apiErr.Status != http.StatusConflict {
		t.Fatalf("stale pin after re-registration = %v, want 409 %s", apiErr, api.CodeVersionSkew)
	}
}

// TestConcurrentAppendsKeepRowsGaugeFresh is the regression test for the
// rows-gauge race: handleAppend used to Store(res.NumRows), so two appends
// completing out of order could leave the gauge stale-low until the next
// append. The monotonic update keeps it exact. Run with -race.
func TestConcurrentAppendsKeepRowsGaugeFresh(t *testing.T) {
	_, c := newTestServer(t, Config{Shards: 2})
	ctx := context.Background()
	if _, err := c.CreateShardedDataset(ctx, "berkeley", berkeleyCSV(t), 2); err != nil {
		t.Fatal(err)
	}
	base := datagen.BerkeleyRows()

	const appenders = 8
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Append(ctx, "berkeley", [][]string{{"Female", "A", "1"}}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := base + appenders; list[0].Rows != want {
		t.Errorf("rows gauge = %d after %d concurrent appends, want %d", list[0].Rows, appenders, want)
	}
	if list[0].Version != appenders+1 {
		t.Errorf("version = %d, want %d", list[0].Version, appenders+1)
	}
	st, err := c.Stats(ctx, "berkeley")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != base+appenders {
		t.Errorf("stats rows = %d, want %d", st.Rows, base+appenders)
	}
}
