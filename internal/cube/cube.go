// Package cube implements a count-measure OLAP data cube: pre-computed
// group-by counts over every subset of a chosen attribute list. Sec 6 of
// the paper observes that "contingency tables with their marginals are
// essentially OLAP data-cubes", and Fig 6(d)/Fig 8(b) show that a
// pre-computed cube dramatically accelerates HypDB's entropy computations.
// This package is the stand-in for the PostgreSQL CUBE operator the paper
// used.
//
// Views are stored in the flat mixed-radix dataset.DenseCounts form and
// derived down the subset lattice with its O(cells) marginalization kernel;
// attribute lists whose cell space exceeds the dense budget fall back to
// sparse (key-coded map) views marginalized with dataset.ProjectKeys.
package cube

import (
	"context"
	"fmt"
	"math/bits"

	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
)

// MaxDimensions bounds the cube width; the paper notes database systems
// usually limit cubes to 12 attributes because the size is exponential.
const MaxDimensions = 20

// Cube holds count views for every subset of its dimension attributes.
// Exactly one of the two view families is populated: dense (the common
// case) or sparse (cell space over budget).
type Cube struct {
	attrs   []string
	attrPos map[string]int
	dense   map[uint64]*dataset.DenseCounts
	sparse  map[uint64]map[string]int // mask -> composite key -> count
	n       int
}

// Build scans the table once for the finest view and derives all coarser
// views by marginalizing down the subset lattice.
func Build(t *dataset.Table, attrs []string) (*Cube, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("cube: need at least one dimension")
	}
	if len(attrs) > MaxDimensions {
		return nil, fmt.Errorf("cube: %d dimensions exceed the maximum of %d", len(attrs), MaxDimensions)
	}
	c := &Cube{
		attrs:   append([]string(nil), attrs...),
		attrPos: make(map[string]int, len(attrs)),
		n:       t.NumRows(),
	}
	cards := make([]int, len(attrs))
	for i, a := range attrs {
		col, err := t.Column(a)
		if err != nil {
			return nil, fmt.Errorf("cube: no column %q", a)
		}
		if _, dup := c.attrPos[a]; dup {
			return nil, fmt.Errorf("cube: duplicate dimension %q", a)
		}
		c.attrPos[a] = i
		cards[i] = col.Card()
	}
	full := uint64(1)<<len(attrs) - 1
	if _, ok := dataset.DenseSize(cards, dataset.EffectiveBudget(0, t.NumRows())); ok {
		finest, err := t.DenseCounts(attrs...)
		if err != nil {
			return nil, err
		}
		c.dense = map[uint64]*dataset.DenseCounts{full: finest}
	} else {
		counts, _, err := t.Counts(attrs...)
		if err != nil {
			return nil, err
		}
		view := make(map[string]int, len(counts))
		for k, v := range counts {
			view[string(k)] = v
		}
		c.sparse = map[uint64]map[string]int{full: view}
	}

	// Derive coarser views in decreasing popcount order: each mask is
	// computed from a parent with exactly one more attribute, using the
	// shared marginalization kernels.
	for pc := len(attrs) - 1; pc >= 0; pc-- {
		for mask := uint64(0); mask <= full; mask++ {
			if bits.OnesCount64(mask) != pc {
				continue
			}
			// Parent: mask plus the lowest absent attribute.
			extra := -1
			for i := 0; i < len(attrs); i++ {
				if mask&(1<<i) == 0 {
					extra = i
					break
				}
			}
			parentMask := mask | 1<<extra
			keep := keptPositions(parentMask, mask)
			if c.dense != nil {
				child, err := c.dense[parentMask].Project(keep)
				if err != nil {
					return nil, err
				}
				c.dense[mask] = child
			} else {
				parent := c.sparse[parentMask]
				coded := make(map[dataset.GroupKey]int, len(parent))
				for k, v := range parent {
					coded[dataset.GroupKey(k)] = v
				}
				child := dataset.ProjectKeys(coded, keep)
				view := make(map[string]int, len(child))
				for k, v := range child {
					view[string(k)] = v
				}
				c.sparse[mask] = view
			}
		}
	}
	return c, nil
}

// keptPositions returns, for each set bit of childMask in ascending order,
// its field position within the parent's key layout (the set bits of
// parentMask in ascending order).
func keptPositions(parentMask, childMask uint64) []int {
	var keep []int
	field := 0
	for i := 0; i < 64 && parentMask>>i != 0; i++ {
		if parentMask&(1<<i) == 0 {
			continue
		}
		if childMask&(1<<i) != 0 {
			keep = append(keep, field)
		}
		field++
	}
	return keep
}

// mask computes the bitmask of an attribute subset; ok is false when some
// attribute is not a cube dimension.
func (c *Cube) mask(attrs []string) (uint64, bool) {
	var m uint64
	for _, a := range attrs {
		p, ok := c.attrPos[a]
		if !ok {
			return 0, false
		}
		m |= 1 << p
	}
	return m, true
}

// Covers reports whether every attribute is a cube dimension.
func (c *Cube) Covers(attrs []string) bool {
	_, ok := c.mask(attrs)
	return ok
}

// Dense returns the dense view of the attribute subset (dimensions in cube
// order, regardless of the order of attrs); ok is false when the subset is
// not covered or the cube was built sparse. Callers must treat the view as
// read-only.
func (c *Cube) Dense(attrs []string) (*dataset.DenseCounts, bool) {
	if c.dense == nil {
		return nil, false
	}
	m, ok := c.mask(attrs)
	if !ok {
		return nil, false
	}
	view, ok := c.dense[m]
	return view, ok
}

// Counts returns the count histogram of the attribute subset. The map keys
// are the cube's internal composite keys; only the count values are
// meaningful to callers (which is all entropy and distinct-count need).
// ok is false when the subset is not covered. Dense-built cubes synthesize
// the map form on demand; prefer Dense on hot paths.
func (c *Cube) Counts(attrs []string) (map[string]int, bool) {
	m, ok := c.mask(attrs)
	if !ok {
		return nil, false
	}
	if c.sparse != nil {
		view, ok := c.sparse[m]
		return view, ok
	}
	view, ok := c.dense[m]
	if !ok {
		return nil, false
	}
	out := make(map[string]int, view.NonZero())
	for k, v := range view.Map() {
		out[string(k)] = v
	}
	return out, true
}

// NumRows returns the row count of the cubed table.
func (c *Cube) NumRows() int { return c.n }

// NumViews returns the number of materialized views (2^dims).
func (c *Cube) NumViews() int {
	if c.dense != nil {
		return len(c.dense)
	}
	return len(c.sparse)
}

// Cells returns the total number of stored cells across all views, a
// memory-footprint proxy. Dense views count occupied cells, matching the
// historical sparse measure.
func (c *Cube) Cells() int {
	total := 0
	if c.dense != nil {
		for _, v := range c.dense {
			total += v.NonZero()
		}
		return total
	}
	for _, v := range c.sparse {
		total += len(v)
	}
	return total
}

// Provider adapts the cube to independence.EntropyProvider, falling back to
// scanning the table for subsets the cube does not cover.
type Provider struct {
	Cube     *Cube
	Fallback independence.EntropyProvider
	Est      stats.Estimator
}

// NewProvider builds a cube-backed provider; fallback answers attribute
// sets the cube does not cover (typically a RelationProvider over the
// backing store).
func NewProvider(c *Cube, fallback independence.EntropyProvider, est stats.Estimator) *Provider {
	return &Provider{Cube: c, Fallback: fallback, Est: est}
}

// JointEntropy implements independence.EntropyProvider.
func (p *Provider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	if view, ok := p.Cube.Dense(attrs); ok {
		return stats.EntropyCountsStable(view.Cells, p.Cube.NumRows(), p.Est), nil
	}
	if counts, ok := p.Cube.Counts(attrs); ok {
		return stats.EntropyCountsMap(counts, p.Cube.NumRows(), p.Est), nil
	}
	return p.Fallback.JointEntropy(ctx, attrs)
}

// DistinctCount implements independence.EntropyProvider.
func (p *Provider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	if view, ok := p.Cube.Dense(attrs); ok {
		return view.NonZero(), nil
	}
	if counts, ok := p.Cube.Counts(attrs); ok {
		return len(counts), nil
	}
	return p.Fallback.DistinctCount(ctx, attrs)
}

// NumRows implements independence.EntropyProvider.
func (p *Provider) NumRows() int { return p.Cube.NumRows() }
