// Command hypdbd serves the HypDB pipeline over HTTP: BI tools and scripts
// upload CSV datasets and run detect/explain/resolve analyses through a
// JSON API instead of linking the library.
//
// Usage:
//
//	hypdbd [-addr :8080] [-request-timeout 2m] [-max-concurrent N]
//	       [-max-upload-mb 64] [-max-datasets 64] [-shards N]
//	       [-preload name[:rows],...] [-sql name=driver,dsn,table]...
//	       [-peer name=url1[@token],url2[@token],...]... [-peer-degraded]
//	       [-data-dir DIR] [-token name:scope:secret[:weight]]...
//	       [-open-metrics] [-rate N] [-burst N] [-max-queued N]
//	       [-enable-shutdown] [-seed 1] [-log text|json] [-grace 15s]
//
// Endpoints (see the api package for the wire types):
//
//	POST   /v1/datasets              upload a CSV — or register a SQL table
//	                                 via {driver, dsn, sql_table} — as a
//	                                 named dataset
//	GET    /v1/datasets              list datasets
//	GET    /v1/datasets/{name}/stats schema, size, cache counters
//	POST   /v1/datasets/{name}/append
//	                                 stream rows into a sharded dataset
//	                                 (new snapshot version; in-flight
//	                                 analyses keep theirs)
//	POST   /v1/datasets/{name}/counts
//	                                 dictionary-coded group-by counts — the
//	                                 remote-shard transport another hypdbd
//	                                 node's -peer datasets speak
//	DELETE /v1/datasets/{name}       drop a dataset
//	POST   /v1/analyze               analyze one query
//	POST   /v1/analyze/batch         analyze a batch (shared CD cache)
//	POST   /v1/audit                 sweep the dataset's query lattice for
//	                                 bias (ranked findings; progress in
//	                                 /v1/metrics)
//	GET    /v1/metrics               service-wide counters (JSON)
//	GET    /metrics                  the same counters in the Prometheus
//	                                 text exposition format
//	GET    /healthz                  liveness
//
// -shards N serves uploaded and preloaded in-memory datasets through the
// partition-parallel sharded backend with N horizontal partitions: group-by
// counts fan out across the shards, and the datasets accept streaming
// appends. -preload registers generated datasets at startup (names from
// `hypdb datasets`, e.g. "berkeley,flight:12000"). -sql registers a dataset served
// directly by a SQL database with count pushdown; the driver must be
// compiled into the binary (the in-process "memsql" test driver is; add
// blank imports for others). -peer registers a dataset whose shards are
// other hypdbd nodes: "name=url1,url2" opens one remote-shard child per
// base URL — each must already serve a dataset called name — and this node
// coordinates them under one global dictionary, so a cluster serves one
// logical catalog. When a peer runs with -token, append that peer's secret
// to its URL as "url@token": the credential rides every handshake, counts
// call, and health probe to that peer (a rejected credential fails fast as
// a peer_auth error — never retried, never degraded away).
// -peer-degraded lets those datasets keep answering (with
// reports marked stale) when a peer dies instead of failing reads.
//
// -data-dir DIR persists the dataset catalog: HTTP registrations (CSV
// bodies spilled to DIR/csv/), streaming appends, deletions, and
// flag-driven SQL/remote registrations journal to DIR/journal.jsonl and
// replay at the next startup — no client re-registration after a restart.
// -token name:scope:secret (repeatable; scope operator or reader, with an
// optional :weight suffix scaling the client's fair share) enables bearer
// auth: operator tokens may mutate datasets and trigger shutdown, reader
// tokens may analyze and read. Both metrics views are token-gated like any
// read (reader scope suffices); -open-metrics re-exposes GET /metrics and
// GET /v1/metrics tokenless for scrapers that cannot carry credentials. -rate/-burst shed each client's requests
// beyond the per-second rate (with burst headroom) as 429 + Retry-After;
// -max-queued bounds each dataset's fair-queue depth, shedding the excess
// with 503 + Retry-After. -enable-shutdown exposes POST /v1/shutdown
// (operator scope), which triggers the same graceful drain as a signal.
//
// On SIGINT/SIGTERM the server
// sheds queued work with 503 + Retry-After, stops accepting new requests,
// and waits up to -grace for in-flight analyses;
// when the grace period expires their contexts are cancelled, which aborts
// permutation loops and discovery searches promptly. A second signal
// forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hypdb/internal/datagen"
	"hypdb/internal/memsql" // in-process SQL driver for -sql/-preload-sql datasets
	"hypdb/internal/server"
)

// sqlSpecs collects repeatable -sql flags of the form
// "name=driver,dsn,table" (dsn may be empty).
type sqlSpecs []string

func (s *sqlSpecs) String() string     { return strings.Join(*s, " ") }
func (s *sqlSpecs) Set(v string) error { *s = append(*s, v); return nil }

// peerSpecs collects repeatable -peer flags of the form
// "name=url1[@token],url2[@token],...".
type peerSpecs []string

func (s *peerSpecs) String() string     { return strings.Join(*s, " ") }
func (s *peerSpecs) Set(v string) error { *s = append(*s, v); return nil }

// tokenSpecs collects repeatable -token flags of the form
// "name:scope:secret" with an optional ":weight" suffix.
type tokenSpecs []string

func (s *tokenSpecs) String() string     { return strings.Join(*s, " ") }
func (s *tokenSpecs) Set(v string) error { *s = append(*s, v); return nil }

// parseTokens turns -token specs into server tokens.
func parseTokens(specs tokenSpecs) ([]server.Token, error) {
	var out []server.Token
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf(`-token %q: want "name:scope:secret[:weight]"`, spec)
		}
		t := server.Token{Name: parts[0], Scope: parts[1], Secret: parts[2], Weight: 1}
		if t.Name == "" || t.Secret == "" {
			return nil, fmt.Errorf("-token %q: name and secret must be non-empty", spec)
		}
		if t.Scope != server.ScopeOperator && t.Scope != server.ScopeReader {
			return nil, fmt.Errorf("-token %q: scope must be %q or %q", spec, server.ScopeOperator, server.ScopeReader)
		}
		if len(parts) == 4 {
			w, err := strconv.ParseFloat(parts[3], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("-token %q: bad weight %q", spec, parts[3])
			}
			t.Weight = w
		}
		out = append(out, t)
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hypdbd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request analysis timeout (0 disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent analyses per dataset (0 = 2×GOMAXPROCS)")
	maxUploadMB := flag.Int64("max-upload-mb", 64, "max CSV upload size in MiB")
	maxDatasets := flag.Int("max-datasets", 64, "max registered datasets")
	shards := flag.Int("shards", 0, "serve in-memory datasets with this many horizontal partitions (enables streaming appends; 0 or 1 = unsharded)")
	preload := flag.String("preload", "", `generated datasets to register at startup, "name[:rows],..." (see hypdb datasets)`)
	preloadSQL := flag.String("preload-sql", "", `generated datasets to serve through the SQL backend (in-process memsql driver), "name[:rows],..."`)
	var sqlDatasets sqlSpecs
	flag.Var(&sqlDatasets, "sql", `SQL-backed dataset to register at startup, "name=driver,dsn,table" (repeatable; dsn may contain commas)`)
	allowSQL := flag.String("allow-sql-drivers", "", `comma-separated driver names clients may use to register SQL datasets over HTTP (empty disables the endpoint's SQL form)`)
	var peerDatasets peerSpecs
	flag.Var(&peerDatasets, "peer", `remote-sharded dataset to register at startup, "name=url1[@token],url2[@token],..." (repeatable; each URL is a hypdbd peer already serving the dataset, with an optional bearer token after '@')`)
	peerDegraded := flag.Bool("peer-degraded", false, "serve -peer datasets from surviving shards (reports marked stale) when a peer is down, instead of failing reads")
	dataDir := flag.String("data-dir", "", "directory for the persistent dataset catalog (empty = in-memory only; registrations do not survive restarts)")
	var tokens tokenSpecs
	flag.Var(&tokens, "token", `bearer credential "name:scope:secret[:weight]" (repeatable; scope operator or reader; enables auth on every endpoint but /healthz)`)
	openMetrics := flag.Bool("open-metrics", false, "serve GET /metrics and GET /v1/metrics without a token even when -token auth is enabled")
	rate := flag.Float64("rate", 0, "per-client request rate limit in requests/second (0 disables; over-rate requests get 429 + Retry-After)")
	burst := flag.Int("burst", 0, "per-client rate-limit burst headroom (minimum 1)")
	maxQueued := flag.Int("max-queued", 0, "max requests queued per dataset for execution slots (0 = 4×max-concurrent, negative = unbounded; excess gets 503 + Retry-After)")
	enableShutdown := flag.Bool("enable-shutdown", false, "expose POST /v1/shutdown (operator scope) triggering the graceful drain")
	seed := flag.Int64("seed", 1, "seed for preloaded generators")
	logFormat := flag.String("log", "text", "log format: text or json")
	grace := flag.Duration("grace", 15*time.Second, "graceful-shutdown drain window before in-flight analyses are cancelled")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log format %q (want text or json)", *logFormat)
	}
	log := slog.New(handler)

	var allowed []string
	for _, d := range strings.Split(*allowSQL, ",") {
		if d = strings.TrimSpace(d); d != "" {
			allowed = append(allowed, d)
		}
	}
	parsedTokens, err := parseTokens(tokens)
	if err != nil {
		return err
	}

	// -enable-shutdown routes POST /v1/shutdown into the same graceful
	// path as a signal; the channel is closed at most once.
	shutdownCh := make(chan struct{})
	var shutdownOnce sync.Once
	var onShutdown func()
	if *enableShutdown {
		onShutdown = func() { shutdownOnce.Do(func() { close(shutdownCh) }) }
	}

	srv := server.New(server.Config{
		Logger:                  log,
		RequestTimeout:          *reqTimeout,
		MaxConcurrentPerDataset: *maxConcurrent,
		MaxUploadBytes:          *maxUploadMB << 20,
		MaxDatasets:             *maxDatasets,
		Shards:                  *shards,
		AllowSQLDrivers:         allowed,
		Tokens:                  parsedTokens,
		OpenMetrics:             *openMetrics,
		RatePerClient:           *rate,
		RateBurst:               *burst,
		MaxQueuedPerDataset:     *maxQueued,
		OnShutdown:              onShutdown,
	})
	if *dataDir != "" {
		if err := srv.OpenCatalog(*dataDir); err != nil {
			return fmt.Errorf("-data-dir %q: %w", *dataDir, err)
		}
		log.Info("catalog journal open", "dir", *dataDir)
	}
	// Flag-driven registrations run before Recover: replayed journal
	// records for names the flags re-established are skipped, and journaled
	// appends then apply to the flag-registered datasets.
	if err := preloadDatasets(srv, *preload, *seed, log); err != nil {
		return err
	}
	if err := preloadSQLDatasets(srv, *preloadSQL, *seed, log); err != nil {
		return err
	}
	for _, spec := range sqlDatasets {
		if err := registerSQLDataset(srv, spec, log); err != nil {
			return err
		}
	}
	for _, spec := range peerDatasets {
		if err := registerPeerDataset(srv, spec, *peerDegraded, log); err != nil {
			return err
		}
	}
	if *dataDir != "" {
		if err := srv.Recover(context.Background()); err != nil {
			return fmt.Errorf("recovering catalog from %q: %w", *dataDir, err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("hypdbd listening", "addr", *addr)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// Startup failure (e.g. the port is taken): exit nonzero at once.
		return err
	case <-ctx.Done():
	case <-shutdownCh:
		log.Info("shutdown requested via /v1/shutdown")
	}
	stop() // a second signal now kills the process outright
	log.Info("shutting down", "grace", grace.String())
	// Phase one: shed queued admission waiters (503 + Retry-After) and
	// reject new work, while requests already holding execution slots run
	// to completion inside the grace window.
	srv.Drain()
	// When the drain window expires, cancel in-flight analysis contexts;
	// the permutation loops abort and the handlers still get a few seconds
	// to flush their 503 responses before the hard close.
	drain := time.AfterFunc(*grace, func() {
		log.Info("drain window expired; cancelling in-flight analyses")
		srv.Close()
	})
	defer drain.Stop()
	shCtx, cancel := context.WithTimeout(context.Background(), *grace+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Warn("forced shutdown", "error", err)
		_ = httpSrv.Close()
	}
	// Idempotent: releases dataset handles and closes the catalog journal
	// whether or not the drain timer already fired.
	srv.Close()
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("bye")
	return nil
}

// preloadSQLDatasets generates datasets, registers their tables with the
// in-process memsql driver, and serves them through the sqldb backend —
// the zero-DBMS way to exercise SQL count pushdown end to end.
func preloadSQLDatasets(srv *server.Server, spec string, seed int64, log *slog.Logger) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rowsStr, hasRows := strings.Cut(part, ":")
		gen, err := datagen.Lookup(name)
		if err != nil {
			return fmt.Errorf("-preload-sql %q: %w", part, err)
		}
		rows := gen.DefaultRows
		if hasRows {
			rows, err = strconv.Atoi(rowsStr)
			if err != nil || rows <= 0 {
				return fmt.Errorf("-preload-sql %q: bad row count %q", part, rowsStr)
			}
		}
		tab, err := gen.Generate(rows, seed)
		if err != nil {
			return fmt.Errorf("-preload-sql %q: %w", part, err)
		}
		table := name + "_sql"
		memsql.Register(table, tab)
		if err := srv.AddSQLDataset(context.Background(), name, memsql.DriverName, "", table); err != nil {
			return fmt.Errorf("-preload-sql %q: %w", part, err)
		}
		log.Info("preloaded SQL-backed dataset", "name", name, "rows", tab.NumRows(), "cols", tab.NumCols())
	}
	return nil
}

// registerSQLDataset parses one -sql spec and registers the dataset.
func registerSQLDataset(srv *server.Server, spec string, log *slog.Logger) error {
	name, rest, ok := strings.Cut(spec, "=")
	// The DSN may itself contain commas (e.g. Postgres multi-host
	// "host=h1,h2"): the driver is everything before the FIRST comma and
	// the table everything after the LAST one; the DSN is the middle.
	first := strings.Index(rest, ",")
	last := strings.LastIndex(rest, ",")
	if !ok || name == "" || first < 0 || last == first {
		return fmt.Errorf(`-sql %q: want "name=driver,dsn,table" (dsn may contain commas)`, spec)
	}
	driver, dsn, table := rest[:first], rest[first+1:last], rest[last+1:]
	if driver == "" || table == "" {
		return fmt.Errorf(`-sql %q: want "name=driver,dsn,table"`, spec)
	}
	if err := srv.AddSQLDataset(context.Background(), name, driver, dsn, table); err != nil {
		return fmt.Errorf("-sql %q: %w", spec, err)
	}
	log.Info("registered SQL dataset", "name", name, "driver", driver, "table", table)
	return nil
}

// registerPeerDataset parses one -peer spec and registers the dataset over
// its remote shards.
func registerPeerDataset(srv *server.Server, spec string, degraded bool, log *slog.Logger) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf(`-peer %q: want "name=url1,url2,..."`, spec)
	}
	var peers []string
	for _, u := range strings.Split(rest, ",") {
		if u = strings.TrimSpace(u); u != "" {
			peers = append(peers, u)
		}
	}
	if len(peers) == 0 {
		return fmt.Errorf(`-peer %q: want "name=url1,url2,..."`, spec)
	}
	if err := srv.AddRemoteDataset(context.Background(), name, peers, degraded); err != nil {
		return fmt.Errorf("-peer %q: %w", spec, err)
	}
	log.Info("registered remote-sharded dataset", "name", name, "peers", len(peers), "degraded", degraded)
	return nil
}

// preloadDatasets registers generated datasets given as "name[:rows],...".
func preloadDatasets(srv *server.Server, spec string, seed int64, log *slog.Logger) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rowsStr, hasRows := strings.Cut(part, ":")
		gen, err := datagen.Lookup(name)
		if err != nil {
			return fmt.Errorf("-preload %q: %w", part, err)
		}
		rows := gen.DefaultRows
		if hasRows {
			rows, err = strconv.Atoi(rowsStr)
			if err != nil || rows <= 0 {
				return fmt.Errorf("-preload %q: bad row count %q", part, rowsStr)
			}
		}
		tab, err := gen.Generate(rows, seed)
		if err != nil {
			return fmt.Errorf("-preload %q: %w", part, err)
		}
		if err := srv.AddDataset(name, tab); err != nil {
			return fmt.Errorf("-preload %q: %w", part, err)
		}
		log.Info("preloaded dataset", "name", name, "rows", tab.NumRows(), "cols", tab.NumCols())
	}
	return nil
}
