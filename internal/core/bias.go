package core

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/source"
)

// BiasResult is the verdict of the balance test (Def 3.1) for one context
// Γi: the query is balanced w.r.t. V in Γi iff T ⊥⊥ V | Γi, i.e.
// I(T;V|Γi) = 0.
type BiasResult struct {
	// Context holds the grouping values defining Γi (empty when the query
	// has no group-by attributes beyond the treatment).
	Context []string
	// Variables is the set V tested: the covariates Z for total effect, or
	// Z ∪ M for direct effect (Sec 3.1).
	Variables []string
	// MI is Î(T;V|Γi).
	MI float64
	// PValue (and its Monte-Carlo half-width, when applicable) of the
	// independence test.
	PValue   float64
	PValueCI float64
	// Biased is true when independence is rejected at the configured α.
	Biased bool
	// Rows is the context's population size.
	Rows int
}

// compositeAttr is the synthetic attribute name used to test the treatment
// against the joint value of a variable set.
const compositeAttr = "__hypdb_composite"

// TestBalance tests whether treatment ⊥⊥ variables holds on view (one
// context), optionally conditioning on extra attributes (used for the
// rewritten-query significance test I(Y;T|Z)). Multi-attribute variable
// sets are tested against their joint value through a virtual composite
// attribute, so the test is computed entirely from counts on any backend.
func (c Config) TestBalance(ctx context.Context, view source.Relation, treatment string, variables, conditionOn []string) (independence.Result, error) {
	if len(variables) == 0 {
		return independence.Result{PValue: 1, Method: "trivial"}, nil
	}
	testAttr := variables[0]
	testView := view
	if len(variables) > 1 {
		var err error
		testView, err = source.WithComposite(view, compositeAttr, variables)
		if err != nil {
			return independence.Result{}, err
		}
		testAttr = compositeAttr
	}
	hint := unionAttrs([]string{treatment, testAttr}, conditionOn, nil)
	tester, err := c.tester(ctx, testView, hint)
	if err != nil {
		return independence.Result{}, err
	}
	return tester.Test(ctx, testView, treatment, testAttr, conditionOn)
}

// DetectBias runs the Def 3.1 balance test per context: for each
// combination of grouping values xi it selects Γi = C ∧ (X = xi) and tests
// T ⊥⊥ V | Γi. With no groupings there is a single context (the WHERE
// population).
func DetectBias(ctx context.Context, rel source.Relation, treatment string, groupings, variables []string, cfg Config) ([]BiasResult, error) {
	if len(variables) == 0 {
		return nil, fmt.Errorf("core: bias detection needs a non-empty variable set V")
	}
	contexts, err := splitContexts(ctx, rel, groupings)
	if err != nil {
		return nil, err
	}
	var out []BiasResult
	for _, c := range contexts {
		res, err := cfg.TestBalance(ctx, c.view, treatment, variables, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, BiasResult{
			Context:   c.values,
			Variables: append([]string(nil), variables...),
			MI:        res.MI,
			PValue:    res.PValue,
			PValueCI:  res.PValueCI,
			Biased:    !independence.Decision(res, cfg.alpha()),
			Rows:      c.rows,
		})
	}
	return out, nil
}

// contextView is one Γi: the grouping values and the restricted relation
// they select.
type contextView struct {
	values []string
	view   source.Relation
	rows   int
}

// splitContexts partitions the relation by the grouping attributes via one
// group-by count and per-group restriction. With no groupings the whole
// relation is the single context. Contexts come back in sorted group-key
// order, matching the deterministic group-by ordering of the in-memory
// pipeline.
func splitContexts(ctx context.Context, rel source.Relation, groupings []string) ([]contextView, error) {
	if len(groupings) == 0 {
		n, err := rel.NumRows(ctx)
		if err != nil {
			return nil, err
		}
		return []contextView{{view: rel, rows: n}}, nil
	}
	counts, err := rel.Counts(ctx, groupings, nil)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)

	dicts := make([][]string, len(groupings))
	for i, g := range groupings {
		dicts[i], err = rel.Labels(ctx, g)
		if err != nil {
			return nil, err
		}
	}
	out := make([]contextView, 0, len(keys))
	for _, ks := range keys {
		codes := source.Key(ks).Codes()
		values := make([]string, len(groupings))
		pred := make(dataset.And, len(groupings))
		for i, g := range groupings {
			values[i] = dicts[i][codes[i]]
			pred[i] = dataset.Eq{Attr: g, Value: values[i]}
		}
		view, err := rel.Restrict(ctx, pred)
		if err != nil {
			return nil, err
		}
		out = append(out, contextView{values: values, view: view, rows: counts[source.Key(ks)]})
	}
	return out, nil
}
