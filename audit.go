package hypdb

import (
	"context"

	"hypdb/internal/core"
	"hypdb/internal/planner"
)

// AuditSpec configures a lattice-wide bias sweep: which attributes may play
// the treatment and outcome roles, the population restriction, and the
// support/cardinality filters applied before any statistical testing.
// The zero value sweeps every eligible attribute pair of the whole
// relation with the package-default thresholds.
type AuditSpec = core.AuditSpec

// AuditReport is the result of a lattice-wide bias sweep: the biased
// candidate queries ranked by effect-reversal strength and significance,
// plus the full accounting of unbiased, pruned and excluded candidates.
type AuditReport = core.AuditReport

// AuditFinding is one biased candidate query of an audit sweep.
type AuditFinding = core.AuditFinding

// AuditPruned records a candidate excluded by the support filter.
type AuditPruned = core.AuditPruned

// AuditExcluded records an attribute kept out of a sweep role.
type AuditExcluded = core.AuditExcluded

// AuditUnbiased records an evaluated candidate that passed the balance
// test.
type AuditUnbiased = core.AuditUnbiased

// Audit default thresholds; zero AuditSpec fields fall back to these.
const (
	// DefaultMinSupport is the minimum per-group row count a candidate
	// query needs to be evaluated.
	DefaultMinSupport = core.DefaultMinSupport
	// DefaultMaxTreatmentCard bounds treatment-candidate cardinality.
	DefaultMaxTreatmentCard = core.DefaultMaxTreatmentCard
	// DefaultMaxOutcomeCard bounds outcome-candidate cardinality.
	DefaultMaxOutcomeCard = core.DefaultMaxOutcomeCard
)

// Audit proactively sweeps the relation's (treatment, outcome) query
// lattice for bias: it enumerates every ordered attribute pair passing the
// spec's role, cardinality and support filters, runs bias detection on
// each surviving candidate over a bounded worker pool (WithAuditWorkers),
// and returns the biased queries ranked by effect-reversal strength and
// significance, with responsible covariates and coarse explanations
// attached.
//
// The sweep shares work with the rest of the session: covariate-discovery
// results are memoized in the handle's single-flight cache (one discovery
// per treatment serves every candidate sharing it, and later Audit or
// Analyze calls reuse them), and the session count cache is primed with one
// finest group-by per discovery closure, so on SQL backends an entire sweep
// costs O(1) GROUP BY round trips rather than one per candidate.
// Candidates below the support threshold (WithMinSupport, or
// spec.MinSupport) are pruned before any permutation test runs and are
// listed in the report — nothing is dropped silently. Cancelling ctx
// aborts the sweep promptly.
func (db *DB) Audit(ctx context.Context, spec AuditSpec, opts ...Option) (*AuditReport, error) {
	st := newSettings(opts)
	o := st.opts
	if spec.MinSupport == 0 {
		spec.MinSupport = st.minSupport
	}
	if spec.Workers == 0 {
		spec.Workers = st.auditWorkers
	}
	// Staleness marking: if the storage layer's degraded-serve counter grew
	// during the sweep, at least one read was answered with a shard missing
	// and the whole report may rest on partial counts. The counter is
	// sampled before pinning — a concurrent degraded read landing between
	// the pin and the sample can poison the pinned version's cache, so it
	// must mark this report too. The check is conservative under concurrency
	// (another call's degraded read marks this report as well), which errs
	// on the side of flagging.
	before := db.degradedServes()
	// The whole sweep runs over one pinned snapshot: rows appended while an
	// audit is in flight are invisible to it and cannot perturb the report.
	rel := db.view()
	// Route the sweep's whole-schema count demand through the batch planner
	// so it shares one cuboid frontier with concurrent AnalyzeAll/Audit
	// traffic on this handle. When the plan covers it, core.Audit's own
	// priming is skipped; on any planner miss the unplanned path stands.
	if !st.noPlanner {
		if d, ok := auditDemand(ctx, rel, spec); ok {
			if p, off := db.planBatch(ctx, rel, []planner.Demand{d}, st); p != nil && p.Assign[off] >= 0 {
				o.SkipPrime = true
			}
		}
	}
	// The session memoizer serves the sweep's covariate discoveries, keyed
	// by the sweep's WHERE restriction — the same bypass rules as Analyze:
	// a caller-supplied hook wins, and predicates without a canonical
	// encoding run uncached.
	if o.Discover == nil {
		if whereKey, cacheable := whereKeyOf(Query{Where: spec.Where}); cacheable {
			o.Discover = db.discoverFunc(rel.Backend(), whereKey)
		}
	}
	rep, err := core.Audit(ctx, rel, spec, o)
	if err == nil && db.degradedServes() > before {
		rep.Degraded = true
	}
	return rep, err
}
