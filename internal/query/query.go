// Package query implements HypDB's OLAP query model: the group-by-average
// queries of Listing 1, their execution, and the bias-removing rewriting of
// Listing 2 — the adjustment formula (Eq 2) with exact matching for the
// total effect, and the mediator formula (Eq 3) for the natural direct
// effect. It also renders both the original and the rewritten query as SQL
// text, as HypDB shows them to the analyst.
//
// Execution consumes a source.Relation and is computed entirely from
// dictionary-coded group-by counts: avg(Y) over a group is Σ_v v·n_v / n
// because outcomes are categorical-coded numerics — which is what lets the
// same code run against the in-memory backend and against a SQL database
// with count pushdown.
package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
)

// Query is the OLAP query of Listing 1:
//
//	SELECT T, X, avg(Y1), ..., avg(Ye) FROM D WHERE C GROUP BY T, X
type Query struct {
	// Table is the display name of the relation (SQL rendering only).
	Table string
	// Treatment is the grouping attribute under causal scrutiny (T).
	Treatment string
	// Groupings are the additional group-by attributes (X); each distinct
	// combination of their values is a context Γi.
	Groupings []string
	// Outcomes are the averaged attributes (Y1..Ye); their values must be
	// numeric.
	Outcomes []string
	// Where is the selection condition C; nil selects everything.
	Where dataset.Predicate
}

// Validate checks the query against a relation's schema, including that
// every outcome decodes to numeric values.
func (q Query) Validate(ctx context.Context, rel source.Relation) error {
	if q.Treatment == "" {
		return fmt.Errorf("query: empty treatment")
	}
	if !rel.HasAttribute(q.Treatment) {
		return fmt.Errorf("query: no treatment column %q: %w", q.Treatment, hyperr.ErrUnknownAttribute)
	}
	if len(q.Outcomes) == 0 {
		return fmt.Errorf("query: no outcome attributes")
	}
	seen := map[string]bool{q.Treatment: true}
	for _, y := range q.Outcomes {
		if !rel.HasAttribute(y) {
			return fmt.Errorf("query: no outcome column %q: %w", y, hyperr.ErrUnknownAttribute)
		}
		if seen[y] {
			return fmt.Errorf("query: attribute %q used twice", y)
		}
		seen[y] = true
		if _, err := FloatDict(ctx, rel, y); err != nil {
			return fmt.Errorf("query: outcome %q: %w", y, err)
		}
	}
	for _, x := range q.Groupings {
		if !rel.HasAttribute(x) {
			return fmt.Errorf("query: no grouping column %q: %w", x, hyperr.ErrUnknownAttribute)
		}
		if seen[x] {
			return fmt.Errorf("query: attribute %q used twice", x)
		}
		seen[x] = true
	}
	return nil
}

// FloatDict decodes an attribute's dictionary into float64s by parsing its
// labels. Labels that do not parse cause an error naming the offending
// value.
func FloatDict(ctx context.Context, rel source.Relation, attr string) ([]float64, error) {
	labels, err := rel.Labels(ctx, attr)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(labels))
	for code, l := range labels {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: value %q is not numeric: %w", attr, l, hyperr.ErrNonNumericOutcome)
		}
		out[code] = v
	}
	return out, nil
}

// SQL renders the query as Listing 1 text.
func (q Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	cols := append([]string{q.Treatment}, q.Groupings...)
	for _, y := range q.Outcomes {
		cols = append(cols, "avg("+y+")")
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString("\nFROM ")
	b.WriteString(q.tableName())
	if q.Where != nil {
		if w := q.Where.SQL(); w != "TRUE" {
			b.WriteString("\nWHERE ")
			b.WriteString(w)
		}
	}
	b.WriteString("\nGROUP BY ")
	b.WriteString(strings.Join(append([]string{q.Treatment}, q.Groupings...), ", "))
	return b.String()
}

func (q Query) tableName() string {
	if q.Table == "" {
		return "D"
	}
	return q.Table
}

// View applies the WHERE clause and returns the selected subpopulation as a
// restricted relation.
func (q Query) View(ctx context.Context, rel source.Relation) (source.Relation, error) {
	if err := q.Validate(ctx, rel); err != nil {
		return nil, err
	}
	view, err := rel.Restrict(ctx, q.Where)
	if err != nil {
		return nil, err
	}
	n, err := view.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("query: WHERE clause selects no rows: %w", hyperr.ErrEmptySelection)
	}
	return view, nil
}

// Row is one line of a (rewritten or original) query answer: a treatment
// value, a context (grouping values, in Groupings order), the per-outcome
// averages, and the supporting row count.
type Row struct {
	Treatment string
	Context   []string
	Avgs      []float64
	Count     int
}

// contextKey renders a context for map keys and sorting.
func contextKey(ctx []string) string { return strings.Join(ctx, "\x00") }

// Answer is the result of executing a query.
type Answer struct {
	Query Query
	Rows  []Row
}

// Run executes the query (Listing 1 semantics) from one group-by count over
// (T, X..., Y...) pushed to the backend.
func Run(ctx context.Context, rel source.Relation, q Query) (*Answer, error) {
	view, err := q.View(ctx, rel)
	if err != nil {
		return nil, err
	}
	yvals := make([][]float64, len(q.Outcomes))
	for i, y := range q.Outcomes {
		yvals[i], err = FloatDict(ctx, view, y)
		if err != nil {
			return nil, fmt.Errorf("query: outcome %q: %w", y, err)
		}
	}
	groupAttrs := append([]string{q.Treatment}, q.Groupings...)
	attrs := append(append([]string(nil), groupAttrs...), q.Outcomes...)
	nG := len(groupAttrs)

	decoders, err := labelDecoders(ctx, view, groupAttrs)
	if err != nil {
		return nil, err
	}

	type agg struct {
		count int
		sums  []float64
	}
	rowOf := func(codes []int32, a *agg) Row {
		row := Row{
			Treatment: decoders[0][codes[0]],
			Context:   make([]string, len(q.Groupings)),
			Avgs:      make([]float64, len(q.Outcomes)),
			Count:     a.count,
		}
		for i := range q.Groupings {
			row.Context[i] = decoders[1+i][codes[1+i]]
		}
		for oi := range q.Outcomes {
			row.Avgs[oi] = a.sums[oi] / float64(a.count)
		}
		return row
	}

	var rows []Row
	if dc, err := source.Dense(ctx, view, attrs, nil, 0); err != nil {
		return nil, err
	} else if dc != nil {
		// Dense path: group cells occupy residue classes modulo the group
		// dims' radix product; outcome codes come off the high strides.
		prodG := 1
		for _, c := range dc.Cards[:nG] {
			prodG *= c
		}
		aggs := make([]agg, prodG)
		for cell, c := range dc.Cells {
			if c == 0 {
				continue
			}
			a := &aggs[cell%prodG]
			if a.sums == nil {
				a.sums = make([]float64, len(q.Outcomes))
			}
			a.count += c
			rest := cell / prodG
			for oi := range q.Outcomes {
				card := dc.Cards[nG+oi]
				a.sums[oi] += yvals[oi][rest%card] * float64(c)
				rest /= card
			}
		}
		gdims := dataset.DenseCounts{Cards: dc.Cards[:nG]}
		for gIdx := range aggs {
			if aggs[gIdx].count == 0 {
				continue
			}
			rows = append(rows, rowOf(gdims.Key(gIdx).Codes(), &aggs[gIdx]))
		}
	} else {
		counts, err := view.Counts(ctx, attrs, nil)
		if err != nil {
			return nil, err
		}
		groups := make(map[string]*agg)
		for k, c := range counts {
			gk := string(k.Slice(0, nG))
			a, ok := groups[gk]
			if !ok {
				a = &agg{sums: make([]float64, len(q.Outcomes))}
				groups[gk] = a
			}
			a.count += c
			for oi := range q.Outcomes {
				a.sums[oi] += yvals[oi][k.Field(nG+oi)] * float64(c)
			}
		}
		for gk, a := range groups {
			rows = append(rows, rowOf(source.Key(gk).Codes(), a))
		}
	}
	sortRows(rows)
	return &Answer{Query: q, Rows: rows}, nil
}

// labelDecoders loads the dictionaries of the given attributes.
func labelDecoders(ctx context.Context, rel source.Relation, attrs []string) ([][]string, error) {
	out := make([][]string, len(attrs))
	for i, a := range attrs {
		labels, err := rel.Labels(ctx, a)
		if err != nil {
			return nil, err
		}
		out[i] = labels
	}
	return out, nil
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		ci, cj := contextKey(rows[i].Context), contextKey(rows[j].Context)
		if ci != cj {
			return ci < cj
		}
		return rows[i].Treatment < rows[j].Treatment
	})
}

// Comparison pairs the answers of two treatment values within one context:
// the ∆i of Prop 3.2.
type Comparison struct {
	Context []string
	T0, T1  string
	Avg0    []float64
	Avg1    []float64
	// Diffs[i] = Avg1[i] − Avg0[i] per outcome.
	Diffs  []float64
	N0, N1 int
}

// Compare pairs rows across the two treatment values per context. The
// treatment values are ordered lexicographically (T0 < T1), matching the
// paper's convention of reporting avg(t1) − avg(t0) with a deterministic
// order. Contexts missing either value are skipped.
func (a *Answer) Compare() ([]Comparison, error) {
	vals := a.TreatmentValues()
	if len(vals) != 2 {
		return nil, fmt.Errorf("query: Compare needs exactly 2 treatment values, have %d (%v): %w", len(vals), vals, hyperr.ErrNonBinaryTreatment)
	}
	return a.CompareValues(vals[0], vals[1])
}

// CompareValues pairs rows for the two given treatment values.
func (a *Answer) CompareValues(t0, t1 string) ([]Comparison, error) {
	type cell struct {
		row Row
		ok  bool
	}
	byCtx := make(map[string]*[2]cell)
	order := []string{}
	for _, r := range a.Rows {
		k := contextKey(r.Context)
		slot, ok := byCtx[k]
		if !ok {
			slot = &[2]cell{}
			byCtx[k] = slot
			order = append(order, k)
		}
		switch r.Treatment {
		case t0:
			slot[0] = cell{row: r, ok: true}
		case t1:
			slot[1] = cell{row: r, ok: true}
		}
	}
	sort.Strings(order)
	var out []Comparison
	for _, k := range order {
		slot := byCtx[k]
		if !slot[0].ok || !slot[1].ok {
			continue
		}
		r0, r1 := slot[0].row, slot[1].row
		diffs := make([]float64, len(r0.Avgs))
		for i := range diffs {
			diffs[i] = r1.Avgs[i] - r0.Avgs[i]
		}
		out = append(out, Comparison{
			Context: r0.Context,
			T0:      t0, T1: t1,
			Avg0: r0.Avgs, Avg1: r1.Avgs,
			Diffs: diffs,
			N0:    r0.Count, N1: r1.Count,
		})
	}
	return out, nil
}

// TreatmentValues returns the distinct treatment values present in the
// answer, sorted.
func (a *Answer) TreatmentValues() []string {
	set := make(map[string]bool)
	for _, r := range a.Rows {
		set[r.Treatment] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
