package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source/mem"
)

// auditData extends the Simpson's-paradox table with the attribute shapes
// the sweep filters must handle: R has a rare second value (support
// pruning), W has three balanced-ish values (top-two restriction), and ID
// is quasi-unique (cardinality exclusion).
func auditData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("T", "Z", "Y", "R", "W", "ID")
	ids := []string{"i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10", "i11"}
	for i := 0; i < n; i++ {
		z := "l"
		if rng.Float64() < 0.5 {
			z = "s"
		}
		tv := "A"
		pB := 0.25
		if z == "s" {
			pB = 0.75
		}
		if rng.Float64() < pB {
			tv = "B"
		}
		var pY float64
		switch {
		case tv == "A" && z == "s":
			pY = 0.95
		case tv == "B" && z == "s":
			pY = 0.85
		case tv == "A" && z == "l":
			pY = 0.45
		default:
			pY = 0.35
		}
		y := "0"
		if rng.Float64() < pY {
			y = "1"
		}
		r := "a"
		if i < 10 {
			r = "b"
		}
		w := "u"
		switch {
		case rng.Float64() < 0.2:
			w = "w"
		case rng.Float64() < 0.5:
			w = "v"
		}
		if err := b.Add(tv, z, y, r, w, ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func auditOpts() Options {
	return Options{Config: Config{Method: ChiSquaredMethod, Seed: 1}}
}

// TestAuditAccountability checks the report's bookkeeping invariant —
// every enumerated candidate is evaluated, pruned or excluded with a
// reason — and the headline Simpson finding.
func TestAuditAccountability(t *testing.T) {
	tab := auditData(t, 4000, 7)
	rel := mem.New(tab)
	spec := AuditSpec{MaxTreatmentCard: 4}

	rep, err := Audit(context.Background(), rel, spec, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Evaluated + len(rep.Pruned); got != rep.Candidates {
		t.Errorf("accountability broken: evaluated %d + pruned %d != candidates %d",
			rep.Evaluated, len(rep.Pruned), rep.Candidates)
	}
	if got := len(rep.Findings) + len(rep.Unbiased); got != rep.Evaluated {
		t.Errorf("evaluated candidates unaccounted: findings %d + unbiased %d != evaluated %d",
			len(rep.Findings), len(rep.Unbiased), rep.Evaluated)
	}
	if rep.TotalFindings != len(rep.Findings) {
		t.Errorf("TotalFindings %d != len(Findings) %d without TopK", rep.TotalFindings, len(rep.Findings))
	}

	// Y is the only numeric attribute: the outcome role must be exactly {Y}.
	if len(rep.Outcomes) != 1 || rep.Outcomes[0] != "Y" {
		t.Fatalf("outcome roles = %v, want [Y]", rep.Outcomes)
	}
	// ID (12 values) must be excluded from the treatment role with a reason.
	foundID := false
	for _, e := range rep.Excluded {
		if e.Attr == "ID" && e.Role == "treatment" {
			foundID = true
			if e.Reason == "" {
				t.Error("ID excluded without a reason")
			}
		}
	}
	if !foundID {
		t.Errorf("ID not excluded from treatments (excluded: %+v)", rep.Excluded)
	}

	// The Simpson pair T→Y must surface as a reversal with Z responsible.
	var ty *AuditFinding
	for i := range rep.Findings {
		if rep.Findings[i].Treatment == "T" && rep.Findings[i].Outcome == "Y" {
			ty = &rep.Findings[i]
		}
	}
	if ty == nil {
		t.Fatalf("no T→Y finding; findings: %+v, unbiased: %+v", rep.Findings, rep.Unbiased)
	}
	if !containsStr(ty.Covariates, "Z") {
		t.Errorf("T→Y covariates = %v, want Z included", ty.Covariates)
	}
	if !ty.HasAdjusted || !ty.Reversed {
		t.Errorf("T→Y should reverse under adjustment: %+v", ty)
	}
	if ty.SQL == "" || ty.Query.Treatment != "T" {
		t.Errorf("finding query not self-contained: %+v", ty)
	}
}

// TestAuditSupportPruning: candidates under the support threshold are
// pruned with a recorded reason — and never pruned above it.
func TestAuditSupportPruning(t *testing.T) {
	tab := auditData(t, 4000, 7)
	rel := mem.New(tab)

	rep, err := Audit(context.Background(), rel, AuditSpec{MaxTreatmentCard: 4}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	// R's rare value has 10 rows < DefaultMinSupport: R→Y must be pruned.
	prunedRY := false
	for _, p := range rep.Pruned {
		if p.Treatment == "R" && p.Outcome == "Y" {
			prunedRY = true
			if p.Reason == "" {
				t.Error("R→Y pruned without a reason")
			}
			if p.Support >= DefaultMinSupport {
				t.Errorf("R→Y pruned with support %d ≥ threshold %d", p.Support, DefaultMinSupport)
			}
		}
		if p.Treatment == "T" || p.Treatment == "Z" || p.Treatment == "W" {
			t.Errorf("well-supported candidate %s→%s pruned: %q", p.Treatment, p.Outcome, p.Reason)
		}
	}
	if !prunedRY {
		t.Errorf("R→Y not pruned (pruned: %+v)", rep.Pruned)
	}

	// Raising the threshold above the dataset size prunes everything;
	// the report still accounts for every candidate.
	repAll, err := Audit(context.Background(), rel,
		AuditSpec{MaxTreatmentCard: 4, MinSupport: 1 << 20}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(repAll.Findings) != 0 || repAll.Evaluated != 0 {
		t.Errorf("nothing should survive MinSupport=2^20: %+v", repAll.Findings)
	}
	if len(repAll.Pruned) != repAll.Candidates {
		t.Errorf("pruned %d != candidates %d", len(repAll.Pruned), repAll.Candidates)
	}

	// Lowering the threshold under R's rare-group size admits R→Y.
	repLow, err := Audit(context.Background(), rel,
		AuditSpec{MaxTreatmentCard: 4, MinSupport: 5}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range repLow.Pruned {
		if p.Treatment == "R" && p.Outcome == "Y" {
			t.Errorf("R→Y still pruned with MinSupport=5: %q", p.Reason)
		}
	}
}

// TestAuditWideTreatment: a three-valued treatment is restricted to its two
// best-supported values, and the reported query carries that restriction.
func TestAuditWideTreatment(t *testing.T) {
	tab := auditData(t, 4000, 7)
	rel := mem.New(tab)

	rep, err := Audit(context.Background(), rel, AuditSpec{
		Treatments: []string{"W"}, Outcomes: []string{"Y"},
	}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 1 {
		t.Fatalf("candidates = %d, want 1", rep.Candidates)
	}
	check := func(tr, out, t0, t1 string, where dataset.Predicate, sql string) {
		if tr != "W" || out != "Y" {
			t.Fatalf("candidate %s→%s, want W→Y", tr, out)
		}
		// u (~50%) and v (~30%) are the two best-supported values.
		if t0 != "u" || t1 != "v" {
			t.Errorf("compared values %q/%q, want u/v", t0, t1)
		}
		if sql != "" && !strings.Contains(sql, "IN") {
			t.Errorf("restricted query SQL lacks the IN clause:\n%s", sql)
		}
		if where == nil {
			t.Error("restricted candidate query has no WHERE predicate")
		}
	}
	switch {
	case len(rep.Findings) == 1:
		f := rep.Findings[0]
		check(f.Treatment, f.Outcome, f.T0, f.T1, f.Query.Where, f.SQL)
	case len(rep.Unbiased) == 1:
		// W is independent noise; either verdict is legitimate, but the
		// candidate must have been evaluated, not dropped.
	default:
		t.Fatalf("W→Y neither evaluated nor reported: %+v", rep)
	}
}

// TestAuditExplicitBadOutcome: naming a non-numeric outcome is an error —
// classified by the sentinel, not a silent exclusion.
func TestAuditExplicitBadOutcome(t *testing.T) {
	tab := auditData(t, 500, 7)
	rel := mem.New(tab)
	_, err := Audit(context.Background(), rel, AuditSpec{Outcomes: []string{"Z"}}, auditOpts())
	if !errors.Is(err, hyperr.ErrNonNumericOutcome) {
		t.Fatalf("err = %v, want ErrNonNumericOutcome", err)
	}
}

// TestAuditDuplicateRoleNames: duplicates in explicit role lists must not
// double-count candidates or duplicate findings.
func TestAuditDuplicateRoleNames(t *testing.T) {
	tab := auditData(t, 2000, 7)
	rel := mem.New(tab)
	rep, err := Audit(context.Background(), rel, AuditSpec{
		Treatments: []string{"T", "T"}, Outcomes: []string{"Y", "Y"},
	}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 1 || len(rep.Treatments) != 1 || len(rep.Outcomes) != 1 {
		t.Errorf("duplicates double-counted: candidates=%d treatments=%v outcomes=%v",
			rep.Candidates, rep.Treatments, rep.Outcomes)
	}
}

// TestAuditTopK caps the ranked list but preserves the uncapped count.
func TestAuditTopK(t *testing.T) {
	tab := auditData(t, 4000, 7)
	rel := mem.New(tab)
	rep, err := Audit(context.Background(), rel,
		AuditSpec{MaxTreatmentCard: 4, TopK: 1}, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) > 1 {
		t.Errorf("TopK=1 kept %d findings", len(rep.Findings))
	}
	if rep.TotalFindings < len(rep.Findings) {
		t.Errorf("TotalFindings %d < shown %d", rep.TotalFindings, len(rep.Findings))
	}
}

// TestAuditCancellation: a cancelled context aborts the sweep with the
// context's error.
func TestAuditCancellation(t *testing.T) {
	tab := auditData(t, 4000, 7)
	rel := mem.New(tab)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Audit(ctx, rel, AuditSpec{MaxTreatmentCard: 4}, auditOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAuditProgress: the callback sees a 0-of-total prologue and a final
// done == total.
func TestAuditProgress(t *testing.T) {
	tab := auditData(t, 2000, 7)
	rel := mem.New(tab)
	var calls [][2]int
	spec := AuditSpec{MaxTreatmentCard: 4, Progress: func(done, total int) {
		calls = append(calls, [2]int{done, total})
	}}
	rep, err := Audit(context.Background(), rel, spec, auditOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("progress callback never invoked")
	}
	if first := calls[0]; first[0] != 0 || first[1] != rep.Evaluated {
		t.Errorf("first progress call = %v, want {0, %d}", first, rep.Evaluated)
	}
	last := calls[len(calls)-1]
	if last[0] != rep.Evaluated || last[1] != rep.Evaluated {
		t.Errorf("last progress call = %v, want {%d, %d}", last, rep.Evaluated, rep.Evaluated)
	}
}
