// Package hypdb detects, explains and removes bias in OLAP group-by
// queries, reproducing the system of "Bias in OLAP Queries: Detection,
// Explanation, and Removal" (Salimi, Gehrke, Suciu — SIGMOD 2018).
//
// The entry point is a session handle: Open (or OpenCSV) wraps a table in a
// concurrency-safe *DB whose methods accept a context.Context and share
// analysis state — covariate-discovery results are memoized across queries,
// so interactive workloads pay the dominant discovery cost once. Analyze is
// the headline method: given a group-by-average query over a treatment
// attribute, it
//
//  1. discovers the treatment's covariates (parents in the underlying
//     causal DAG) directly from the data with the CD algorithm,
//  2. tests whether the query is balanced with respect to them (a biased
//     query compares incomparable groups),
//  3. explains any bias by ranking attributes by responsibility and ground
//     values by contribution, and
//  4. rewrites the query to estimate the total causal effect (adjustment
//     formula with exact matching) and the natural direct effect (mediator
//     formula).
//
// A minimal session:
//
//	db, _ := hypdb.OpenCSV("flights.csv")
//	report, err := db.Analyze(ctx, hypdb.Query{
//	    Treatment: "Carrier",
//	    Outcomes:  []string{"Delayed"},
//	    Where: hypdb.And{
//	        hypdb.In{Attr: "Carrier", Values: []string{"AA", "UA"}},
//	        hypdb.In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
//	    },
//	}, hypdb.WithSeed(1), hypdb.WithParallel(true))
//	if err != nil { ... }
//	fmt.Println(report)
//
// Behavior is tuned with functional options (WithMethod, WithAlpha,
// WithPermutations, WithExplanations, ...); the zero configuration
// reproduces the paper's setup (HyMIT, α = 0.01, Miller-Madow estimation,
// 1000 permutations). Failures are classified by the package's sentinel
// errors (ErrUnknownAttribute, ErrNoOverlap, ...) via errors.Is, and
// cancelling the context aborts long-running discovery and permutation
// loops promptly with the context's error.
//
// Storage is pluggable: the engine consumes the narrow source.Relation
// contract (dictionary-coded group-by counts), with two shipped backends —
// source/mem over the in-memory columnar table, and source/sqldb over any
// database/sql driver with SELECT ... COUNT(*) ... GROUP BY pushdown. Open
// an in-memory session with Open/OpenCSV, a SQL-backed one with OpenSQL,
// or any custom backend with OpenSource; SQL-backed handles are released
// with Close. Analyses that genuinely need raw rows fail on counts-only
// backends with ErrNeedsMaterialization instead of degrading silently.
//
// The subsystems are exposed for advanced use: independence testing (MIT,
// HyMIT, χ²), Markov-boundary discovery, causal-DAG utilities, OLAP cubes,
// and the dataset generators behind the paper's evaluation.
package hypdb

import (
	"context"
	"io"

	"hypdb/internal/core"
	"hypdb/internal/dataset"
	"hypdb/internal/query"
	"hypdb/source"
	"hypdb/source/mem"
)

// Table is an in-memory columnar table of categorical attributes.
type Table = dataset.Table

// Column is a dictionary-encoded categorical attribute.
type Column = dataset.Column

// Builder assembles a Table row by row.
type Builder = dataset.Builder

// Predicate filters rows (the WHERE clause).
type Predicate = dataset.Predicate

// Predicate combinators.
type (
	// In matches rows whose attribute takes one of the listed values.
	In = dataset.In
	// Eq matches rows with an exact attribute value.
	Eq = dataset.Eq
	// And is a conjunction of predicates.
	And = dataset.And
	// Or is a disjunction of predicates.
	Or = dataset.Or
	// Not negates a predicate.
	Not = dataset.Not
	// All matches every row.
	All = dataset.All
)

// AppendResult summarizes one streaming ingestion into an appendable
// relation: rows admitted, new total, new snapshot version, and a
// relation view over just the appended delta.
type AppendResult = source.AppendResult

// Query is the group-by-average OLAP query of the paper's Listing 1.
type Query = query.Query

// Answer is the result of executing a Query.
type Answer = query.Answer

// Row is one line of a query answer.
type Row = query.Row

// Comparison pairs two treatment values' answers within one context.
type Comparison = query.Comparison

// Rewritten is the answer of a bias-removing rewritten query.
type Rewritten = query.Rewritten

// Report is the full output of Analyze.
type Report = core.Report

// ComparisonReport pairs a query comparison with per-outcome significance.
type ComparisonReport = core.ComparisonReport

// Dropped names an attribute excluded from analysis for a logical
// dependency, with the reason.
type Dropped = core.Dropped

// Options configures Analyze; the zero value reproduces the paper's setup
// (HyMIT, α = 0.01, Miller-Madow estimation, 1000 permutations).
//
// Deprecated: prefer the functional options (WithMethod, WithAlpha, ...)
// of the DB methods; WithOptions bridges existing Options values.
type Options = core.Options

// Config is the analysis configuration embedded in Options.
type Config = core.Config

// TestMethod selects the conditional-independence test.
type TestMethod = core.TestMethod

// Test-method selectors for WithMethod (and Config.Method).
const (
	HyMIT       = core.HyMITMethod
	ChiSquared  = core.ChiSquaredMethod
	MIT         = core.MITMethod
	MITSampling = core.MITSamplingMethod
)

// CDResult reports automatic covariate discovery.
type CDResult = core.CDResult

// BiasResult is a per-context balance verdict.
type BiasResult = core.BiasResult

// Responsibility is a coarse-grained explanation entry.
type Responsibility = core.Responsibility

// FineExplanation is a fine-grained explanation triple.
type FineExplanation = core.FineExplanation

// BoundsResult brackets a causal effect across candidate adjustment sets.
type BoundsResult = core.BoundsResult

// NewBuilder creates a table builder over the given schema.
func NewBuilder(columns ...string) *Builder { return dataset.NewBuilder(columns...) }

// ReadCSVFile loads a table from a CSV file (header row required; all
// values treated as categorical).
func ReadCSVFile(path string) (*Table, error) { return dataset.ReadCSVFile(path) }

// ReadCSV loads a table from CSV text on r (header row required; all
// values treated as categorical). Parse failures wrap ErrMalformedCSV.
func ReadCSV(r io.Reader) (*Table, error) { return dataset.ReadCSV(r) }

// ParsePredicate parses a SQL-style boolean expression — `Carrier IN
// ('AA','UA') AND NOT Airport = 'ROC'` — into a Predicate. It accepts
// everything the built-in combinators render via SQL(); syntax errors wrap
// ErrBadPredicate.
func ParsePredicate(s string) (Predicate, error) { return dataset.ParsePredicate(s) }

// ---------------------------------------------------------------------------
// Deprecated stateless facade
//
// The free functions below predate the session handle. They run without
// cancellation or cross-query caching: each call rediscovers covariates
// from scratch. They remain so existing code compiles; new code should
// Open a DB.

// Analyze runs the full HypDB pipeline — detect, explain, resolve — on a
// query.
//
// Deprecated: use Open(t).Analyze(ctx, q, opts...).
func Analyze(t *Table, q Query, opts Options) (*Report, error) {
	return core.Analyze(context.Background(), mem.New(t), q, opts)
}

// Run executes the (possibly biased) query as written.
//
// Deprecated: use Open(t).Run(ctx, q).
func Run(t *Table, q Query) (*Answer, error) { return query.Run(context.Background(), mem.New(t), q) }

// RewriteTotal executes the bias-removing rewriting for the total effect
// (adjustment formula, Eq 2 of the paper) over the given covariates.
//
// Deprecated: use Open(t).RewriteTotal(ctx, q, covariates).
func RewriteTotal(t *Table, q Query, covariates []string) (*Rewritten, error) {
	return query.RewriteTotal(context.Background(), mem.New(t), q, covariates)
}

// RewriteDirect executes the natural-direct-effect rewriting (mediator
// formula, Eq 3) over covariates and mediators; baseline fixes the
// treatment value whose mediator distribution is held constant ("" selects
// the smallest).
//
// Deprecated: use Open(t).RewriteDirect(ctx, q, covariates, mediators,
// WithBaseline(baseline)).
func RewriteDirect(t *Table, q Query, covariates, mediators []string, baseline string) (*Rewritten, error) {
	return query.RewriteDirect(context.Background(), mem.New(t), q, covariates, mediators, baseline)
}

// DiscoverCovariates runs the CD algorithm for a treatment over candidate
// attributes; outcomes are excluded from the fallback covariate set.
//
// Deprecated: use Open(t).DiscoverCovariates(ctx, treatment, candidates,
// outcomes, opts...), which memoizes results on the handle.
func DiscoverCovariates(t *Table, treatment string, candidates, outcomes []string, cfg Config) (*CDResult, error) {
	return core.DiscoverCovariates(context.Background(), mem.New(t), treatment, candidates, outcomes, cfg)
}

// DetectBias tests, per query context, whether the treatment groups are
// balanced with respect to the given variable set.
//
// Deprecated: use Open(t).DetectBias(ctx, treatment, groupings, variables,
// opts...).
func DetectBias(t *Table, treatment string, groupings, variables []string, cfg Config) ([]BiasResult, error) {
	return core.DetectBias(context.Background(), mem.New(t), treatment, groupings, variables, cfg)
}

// EffectBounds adjusts for every subset of the candidate covariates (up to
// maxSize) and reports the range of effect estimates — the Sec 4 extension
// for treatments whose parents cannot be identified from data.
//
// Deprecated: use Open(t).EffectBounds(ctx, q, candidates,
// WithMaxAdjustmentSize(maxSize)).
func EffectBounds(t *Table, q Query, candidates []string, maxSize int) (*BoundsResult, error) {
	return core.EffectBounds(context.Background(), mem.New(t), q, candidates, maxSize)
}
