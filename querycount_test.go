package hypdb_test

// Round-trip accounting for the SQL backend: the one-query-per-closure
// pushdown (countcache.Prime + sqldb's client-side superset marginals) must
// keep the number of GROUP BY queries per analysis O(1) in the number of
// independence tests, or the CD hill-climb degrades back to a query per
// scored subset. These tests pin the budget with the in-process memsql
// driver's statement counters.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"hypdb"
	"hypdb/internal/core"
	"hypdb/internal/countcache"
	"hypdb/internal/datagen"
	"hypdb/internal/dataset"
	"hypdb/internal/memsql"
	"hypdb/source"
	"hypdb/source/sharded"
	"hypdb/source/sqldb"
)

// openSQLBacked registers tab and opens a sqldb relation over it.
func openSQLBacked(t *testing.T, name string, tab *dataset.Table) *sqldb.Relation {
	t.Helper()
	memsql.Register(name, tab)
	t.Cleanup(func() { memsql.Unregister(name) })
	conn, err := memsql.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sqldb.Open(context.Background(), conn, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rel.Close() })
	return rel
}

// TestCDQueryCollapse: covariate discovery over a count-cached SQL relation
// issues a constant number of GROUP BY queries — one finest group-by over
// the attribute closure — regardless of how many subsets the boundary
// search and the phase I/II enumerations score.
func TestCDQueryCollapse(t *testing.T) {
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 6, AvgDegree: 2, MinCard: 2, MaxCard: 2, Alpha: 0.35, Rows: 4000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := openSQLBacked(t, "qc_random", tab)
	cached := countcache.Wrap(rel, 0)
	attrs := tab.Columns()
	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true}

	memsql.ResetStats()
	res, err := core.DiscoverCovariates(context.Background(), cached, attrs[0], attrs[1:], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests == 0 {
		t.Fatal("no independence tests ran — the assertion would be vacuous")
	}
	st := memsql.SnapshotStats()
	if st.GroupBys > 2 {
		t.Errorf("covariate discovery issued %d GROUP BY queries (%d tests), want ≤ 2 (one closure prime)",
			st.GroupBys, res.Tests)
	}
	if bs := rel.Stats(); bs.CountQueries > 2 {
		t.Errorf("sqldb handle reports %d count queries, want ≤ 2", bs.CountQueries)
	}
}

// TestShardedQueryCollapse: the partition-parallel fan-out preserves the
// one-query-per-closure pushdown per shard. Priming a count-cached sharded
// relation whose K shards are SQL backends issues exactly K finest
// group-bys (one per shard), and covariate discovery over the primed cache
// then marginalizes client-side without any further backend round trips.
func TestShardedQueryCollapse(t *testing.T) {
	const k = 3
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 6, AvgDegree: 2, MinCard: 2, MaxCard: 2, Alpha: 0.35, Rows: 4000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rows := tab.NumRows()
	shards := make([]source.Relation, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*rows/k, (i+1)*rows/k
		idx := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			idx = append(idx, r)
		}
		sub, err := tab.SelectRows(idx)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, openSQLBacked(t, fmt.Sprintf("qc_shard_%d", i), sub))
	}
	rel, err := sharded.New(ctx, "qc_sharded", shards)
	if err != nil {
		t.Fatal(err)
	}
	cached := countcache.Wrap(rel, 0)
	attrs := tab.Columns()

	memsql.ResetStats()
	if err := cached.Prime(ctx, attrs, 0); err != nil {
		t.Fatal(err)
	}
	if st := memsql.SnapshotStats(); st.GroupBys != k {
		t.Errorf("priming the %d-shard closure issued %d GROUP BY queries, want exactly %d (one per shard)",
			k, st.GroupBys, k)
	}

	cfg := core.Config{Method: core.ChiSquaredMethod, Seed: 7, DisableFallback: true}
	memsql.ResetStats()
	res, err := core.DiscoverCovariates(ctx, cached, attrs[0], attrs[1:], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests == 0 {
		t.Fatal("no independence tests ran — the assertion would be vacuous")
	}
	if st := memsql.SnapshotStats(); st.GroupBys != 0 {
		t.Errorf("covariate discovery over the primed sharded cache issued %d GROUP BY queries (%d tests), want 0",
			st.GroupBys, res.Tests)
	}
}

// TestAuditSweepQueryCollapse: a whole audit sweep — N candidate queries
// sharing one covariate-discovery closure (the full schema) — issues O(1)
// backend GROUP BY round trips, not O(N). One finest group-by primes the
// count cache; every candidate's discovery, balance test, explanation and
// rewriting marginalizes it client-side.
func TestAuditSweepQueryCollapse(t *testing.T) {
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 6, AvgDegree: 2, MinCard: 2, MaxCard: 2, Alpha: 0.35, Rows: 4000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := openSQLBacked(t, "qc_audit", tab)
	db := hypdb.OpenSource(rel)

	memsql.ResetStats()
	rep, err := db.Audit(context.Background(), hypdb.AuditSpec{MinSupport: 10},
		hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated < 10 {
		t.Fatalf("only %d candidates evaluated — the sweep assertion would be vacuous", rep.Evaluated)
	}
	st := memsql.SnapshotStats()
	const budget = 4
	if st.GroupBys > budget {
		t.Errorf("audit sweep over %d candidates issued %d GROUP BY queries, budget %d (stats %+v)",
			rep.Evaluated, st.GroupBys, budget, st)
	}
}

// TestAnalyzeQueryBudget: one cold end-to-end Analyze against the SQL
// backend stays within a small constant GROUP BY budget. Without the
// closure collapse the same analysis issues hundreds (one per entropy
// subset scored by the two CD runs).
func TestAnalyzeQueryBudget(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	rel := openSQLBacked(t, "qc_berkeley", tab)
	db := hypdb.OpenSource(rel)

	memsql.ResetStats()
	if _, err := db.Analyze(context.Background(), datagen.BerkeleyQuery(),
		hypdb.WithSeed(7), hypdb.WithPermutations(100)); err != nil {
		t.Fatal(err)
	}
	st := memsql.SnapshotStats()
	const budget = 32
	if st.GroupBys > budget {
		t.Errorf("cold Analyze issued %d GROUP BY queries, budget %d (stats %+v)", st.GroupBys, budget, st)
	}
}

// TestBatchPlanQueryBudget: a heterogeneous batch — a whole 30-candidate
// audit sweep plus an 8-query analyze batch racing on one session handle —
// stays within a single-digit GROUP BY budget, strictly below the sum of
// the per-request budgets above. The lattice planner coalesces the batch's
// count demands into one shared cuboid frontier (the audit's whole-schema
// closure subsumes every analyze demand), so the backend sees one finest
// group-by (plus fixed per-handle overhead) for the entire mixed workload.
func TestBatchPlanQueryBudget(t *testing.T) {
	tab, _, err := datagen.Random(datagen.RandomSpec{
		Nodes: 6, AvgDegree: 2, MinCard: 2, MaxCard: 2, Alpha: 0.35, Rows: 4000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := openSQLBacked(t, "qc_batchplan", tab)
	db := hypdb.OpenSource(rel)
	attrs := tab.Columns()

	// Eight distinct treatment/outcome pairs: eight covariate discoveries
	// over eight different targets, all of whose closures the audit's
	// whole-schema cuboid subsumes. (Grouped queries are excluded here:
	// their per-context balance tests count over restricted views, which
	// are predicated reads outside any unpredicated cuboid's reach.)
	queries := make([]hypdb.Query, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, hypdb.Query{
			Treatment: attrs[i%len(attrs)],
			Outcomes:  []string{attrs[(i+1)%len(attrs)]},
		})
	}

	ctx := context.Background()
	opts := []hypdb.Option{hypdb.WithMethod(hypdb.ChiSquared), hypdb.WithSeed(7)}
	memsql.ResetStats()
	var (
		wg       sync.WaitGroup
		auditRep *hypdb.AuditReport
		auditErr error
		reps     []*hypdb.Report
		batchErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		auditRep, auditErr = db.Audit(ctx, hypdb.AuditSpec{MinSupport: 10}, opts...)
	}()
	go func() {
		defer wg.Done()
		reps, batchErr = db.AnalyzeAll(ctx, queries, opts...)
	}()
	wg.Wait()
	if auditErr != nil {
		t.Fatal(auditErr)
	}
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if auditRep.Evaluated < 25 {
		t.Fatalf("only %d audit candidates evaluated — the sweep side would be vacuous", auditRep.Evaluated)
	}
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("analyze query %d returned no report", i)
		}
	}

	st := memsql.SnapshotStats()
	const budget = 6
	if st.GroupBys > budget {
		t.Errorf("mixed batch (30-candidate audit + %d analyses) issued %d GROUP BY queries, budget %d (stats %+v)",
			len(queries), st.GroupBys, budget, st)
	}
	// Every demand — the audit's plus one per analyze query — must have
	// been planned, and the whole mixed workload must share one cuboid
	// frontier per plan (identical closures here, so each plan's frontier
	// is a single whole-schema cuboid).
	ps := db.Stats().Planner
	if ps.Plans == 0 || ps.DemandsPlanned < len(queries)+1 {
		t.Errorf("planner did not serve the batch: %+v", ps)
	}
	if ps.Cuboids > ps.Plans {
		t.Errorf("mixed workload split into %d cuboids over %d plans, want one frontier cuboid per plan: %+v",
			ps.Cuboids, ps.Plans, ps)
	}
}
