package core

import (
	"context"

	"math"
	"math/rand"
	"strings"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
	"hypdb/source/mem"
)

// simpsonData generates an observational dataset with a confounder:
// Z ~ Bern(.5); treatment B is preferred when Z=s (easy cases); outcome
// rates favor A within every stratum but B in the aggregate.
func simpsonData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("T", "Z", "Y")
	for i := 0; i < n; i++ {
		z := "l"
		if rng.Float64() < 0.5 {
			z = "s"
		}
		tv := "A"
		pB := 0.25
		if z == "s" {
			pB = 0.75
		}
		if rng.Float64() < pB {
			tv = "B"
		}
		var pY float64
		switch {
		case tv == "A" && z == "s":
			pY = 0.93
		case tv == "B" && z == "s":
			pY = 0.87
		case tv == "A" && z == "l":
			pY = 0.73
		default:
			pY = 0.69
		}
		y := "0"
		if rng.Float64() < pY {
			y = "1"
		}
		b.MustAdd(tv, z, y)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// randomizedData generates the same outcome model but with a randomized
// treatment: the query on it is unbiased.
func randomizedData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("T", "Z", "Y")
	for i := 0; i < n; i++ {
		z := "l"
		if rng.Float64() < 0.5 {
			z = "s"
		}
		tv := "A"
		if rng.Float64() < 0.5 {
			tv = "B"
		}
		var pY float64
		switch {
		case tv == "A" && z == "s":
			pY = 0.93
		case tv == "B" && z == "s":
			pY = 0.87
		case tv == "A" && z == "l":
			pY = 0.73
		default:
			pY = 0.69
		}
		y := "0"
		if rng.Float64() < pY {
			y = "1"
		}
		b.MustAdd(tv, z, y)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDetectBiasConfounded(t *testing.T) {
	tab := simpsonData(t, 8000, 1)
	results, err := DetectBias(context.Background(), mem.New(tab), "T", nil, []string{"Z"}, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("contexts = %d, want 1", len(results))
	}
	if !results[0].Biased {
		t.Errorf("confounded query not flagged: p=%v MI=%v", results[0].PValue, results[0].MI)
	}
}

func TestDetectBiasRandomized(t *testing.T) {
	tab := randomizedData(t, 8000, 2)
	results, err := DetectBias(context.Background(), mem.New(tab), "T", nil, []string{"Z"}, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Biased {
		t.Errorf("randomized query flagged as biased: p=%v", results[0].PValue)
	}
}

func TestDetectBiasPerContext(t *testing.T) {
	// Grouping by a binary attribute G yields one verdict per context.
	rng := rand.New(rand.NewSource(3))
	b := dataset.NewBuilder("T", "Z", "G", "Y")
	for i := 0; i < 6000; i++ {
		g := itoa(rng.Intn(2))
		z := itoa(rng.Intn(2))
		tv := itoa(rng.Intn(2))
		if g == "0" && rng.Float64() < 0.6 {
			tv = z // confounded only inside context 0
		}
		b.MustAdd(tv, z, g, itoa(rng.Intn(2)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	results, err := DetectBias(context.Background(), mem.New(tab), "T", []string{"G"}, []string{"Z"}, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("contexts = %d, want 2", len(results))
	}
	byCtx := map[string]bool{}
	for _, r := range results {
		byCtx[r.Context[0]] = r.Biased
	}
	if !byCtx["0"] {
		t.Error("confounded context 0 not flagged")
	}
	if byCtx["1"] {
		t.Error("clean context 1 flagged")
	}
}

func TestDetectBiasMultiVariableComposite(t *testing.T) {
	// V with two attributes uses the composite-column path.
	tab := simpsonData(t, 5000, 4)
	// Add a pure-noise attribute.
	rng := rand.New(rand.NewSource(5))
	noise := make([]string, tab.NumRows())
	for i := range noise {
		noise[i] = itoa(rng.Intn(3))
	}
	ncol := dataset.NewColumnFromStrings("N", noise)
	cols := []*dataset.Column{}
	for _, name := range tab.Columns() {
		c, _ := tab.Column(name)
		cols = append(cols, c)
	}
	tab2, err := dataset.New(append(cols, ncol)...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DetectBias(context.Background(), mem.New(tab2), "T", nil, []string{"Z", "N"}, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Biased {
		t.Error("bias through Z not detected via composite test")
	}
	if _, err := DetectBias(context.Background(), mem.New(tab2), "T", nil, nil, Config{}); err == nil {
		t.Error("empty V accepted")
	}
}

func TestExplainCoarseRanksConfounders(t *testing.T) {
	// Z strongly tied to T, N weakly: ρ_Z must dominate and ρ sums to 1.
	rng := rand.New(rand.NewSource(7))
	b := dataset.NewBuilder("T", "Z", "N")
	for i := 0; i < 8000; i++ {
		z := rng.Intn(2)
		tv := z
		if rng.Float64() < 0.15 {
			tv = 1 - tv
		}
		nv := rng.Intn(2)
		if rng.Float64() < 0.1 {
			nv = tv
		}
		b.MustAdd(itoa(tv), itoa(z), itoa(nv))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ExplainCoarse(context.Background(), mem.New(tab), "T", []string{"Z", "N"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resp[0].Attr != "Z" {
		t.Errorf("top responsibility = %s, want Z", resp[0].Attr)
	}
	sum := 0.0
	for _, r := range resp {
		if r.Rho < 0 || r.Rho > 1 {
			t.Errorf("ρ(%s) = %v outside [0,1]", r.Attr, r.Rho)
		}
		sum += r.Rho
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("responsibilities sum to %v, want 1", sum)
	}
	if resp[0].Rho < 0.7 {
		t.Errorf("ρ(Z) = %v, want dominant", resp[0].Rho)
	}
}

func TestExplainCoarseNoVariables(t *testing.T) {
	tab := simpsonData(t, 100, 8)
	resp, err := ExplainCoarse(context.Background(), mem.New(tab), "T", nil, Config{})
	if err != nil || resp != nil {
		t.Errorf("empty V: (%v, %v), want (nil, nil)", resp, err)
	}
}

func TestExplainFineTopTriple(t *testing.T) {
	tab := simpsonData(t, 10000, 9)
	fine, err := ExplainFine(context.Background(), mem.New(tab), "T", "Y", "Z", 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) != 2 {
		t.Fatalf("explanations = %d, want 2", len(fine))
	}
	// The generator's strongest association: B concentrates in stratum s
	// (easy cases, Y=1); A concentrates in stratum l.
	top := fine[0]
	if !(top.TreatmentValue == "B" && top.CovariateValue == "s") &&
		!(top.TreatmentValue == "A" && top.CovariateValue == "l") {
		t.Errorf("top triple (T=%s,Y=%s,Z=%s) does not reflect the confounding pattern",
			top.TreatmentValue, top.OutcomeValue, top.CovariateValue)
	}
	if top.KappaTZ <= 0 {
		t.Errorf("top κ_TZ = %v, want positive contribution", top.KappaTZ)
	}
}

func TestExplainFineValidation(t *testing.T) {
	tab := simpsonData(t, 100, 10)
	if _, err := ExplainFine(context.Background(), mem.New(tab), "T", "Y", "missing", 2, Config{}); err == nil {
		t.Error("missing covariate accepted")
	}
	// k larger than the number of triples is clamped.
	fine, err := ExplainFine(context.Background(), mem.New(tab), "T", "Y", "Z", 999, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) > 8 {
		t.Errorf("got %d explanations from 8 possible triples", len(fine))
	}
}

func TestAnalyzeEndToEndSimpson(t *testing.T) {
	tab := simpsonData(t, 12000, 11)
	q := query.Query{Table: "SimpsonData", Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 12, Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Covariate discovery finds Z (via the single-parent fallback).
	if !containsStr(rep.Covariates, "Z") {
		t.Fatalf("covariates = %v, want Z", rep.Covariates)
	}
	// The query is flagged biased.
	if len(rep.BiasTotal) != 1 || !rep.BiasTotal[0].Biased {
		t.Errorf("bias verdict = %+v, want biased", rep.BiasTotal)
	}
	// Original: B looks better (diff = B − A > 0); rewritten: A better.
	if len(rep.OriginalComparisons) != 1 || len(rep.TotalComparisons) != 1 {
		t.Fatalf("comparisons missing: %d original, %d total",
			len(rep.OriginalComparisons), len(rep.TotalComparisons))
	}
	orig := rep.OriginalComparisons[0]
	rewr := rep.TotalComparisons[0]
	if orig.Diffs[0] <= 0 {
		t.Errorf("original diff = %v, want > 0 (the paradox)", orig.Diffs[0])
	}
	if rewr.Diffs[0] >= 0 {
		t.Errorf("rewritten diff = %v, want < 0 (trend reversal)", rewr.Diffs[0])
	}
	// Original difference significant.
	if orig.PValues[0] > 0.01 {
		t.Errorf("original diff p = %v, want significant", orig.PValues[0])
	}
	// Z tops the coarse explanation.
	if len(rep.Coarse) == 0 || rep.Coarse[0].Attr != "Z" {
		t.Errorf("coarse explanations = %+v, want Z on top", rep.Coarse)
	}
	// Fine explanations exist for Z.
	if len(rep.Fine["Z"]) == 0 {
		t.Error("no fine-grained explanations for Z")
	}
	// Timings are populated.
	if rep.Timing.Detect <= 0 || rep.Timing.Explain <= 0 || rep.Timing.Resolve <= 0 {
		t.Errorf("timings not recorded: %+v", rep.Timing)
	}
	// Report renders and mentions the key sections.
	text := rep.String()
	for _, want := range []string{"SQL Query:", "Covariates (Z): Z", "BIASED", "Refined answers (total effect)", "Rewritten SQL:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestAnalyzeUnbiasedQuery(t *testing.T) {
	tab := randomizedData(t, 12000, 13)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 14}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range rep.BiasTotal {
		if b.Biased {
			t.Errorf("randomized data flagged biased: %+v", b)
		}
	}
	// Rewriting (if any) must not change the answer much.
	if len(rep.TotalComparisons) == 1 && len(rep.OriginalComparisons) == 1 {
		if math.Abs(rep.TotalComparisons[0].Diffs[0]-rep.OriginalComparisons[0].Diffs[0]) > 0.03 {
			t.Errorf("rewriting moved an unbiased answer: %v vs %v",
				rep.TotalComparisons[0].Diffs[0], rep.OriginalComparisons[0].Diffs[0])
		}
	}
}

func TestAnalyzeWithExplicitCovariates(t *testing.T) {
	tab := simpsonData(t, 6000, 15)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{
		Config:     Config{Seed: 16},
		Covariates: []string{"Z"},
		SkipDirect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CD != nil {
		t.Error("CD ran despite explicit covariates")
	}
	if rep.RewrittenTotal == nil {
		t.Error("no rewriting with explicit covariates")
	}
	if rep.RewrittenDirect != nil {
		t.Error("direct rewriting ran despite SkipDirect")
	}
}

func TestAnalyzeMediation(t *testing.T) {
	// T → M → Y with no confounding: total effect exists, direct does not.
	rng := rand.New(rand.NewSource(17))
	b := dataset.NewBuilder("T", "M", "Y")
	for i := 0; i < 15000; i++ {
		tv := rng.Intn(2)
		m := tv
		if rng.Float64() < 0.2 {
			m = 1 - m
		}
		y := m
		if rng.Float64() < 0.2 {
			y = 1 - y
		}
		b.MustAdd(itoa(tv), itoa(m), itoa(y))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 18}})
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(rep.Mediators, "M") {
		t.Fatalf("mediators = %v, want M", rep.Mediators)
	}
	if rep.RewrittenDirect == nil {
		t.Fatal("no direct-effect rewriting despite a mediator")
	}
	if len(rep.DirectComparisons) != 1 {
		t.Fatalf("direct comparisons = %d, want 1", len(rep.DirectComparisons))
	}
	// Direct effect ≈ 0: p-value of I(T;Y|M) must be insignificant and the
	// NDE small; the original (total) diff is large.
	if rep.DirectComparisons[0].PValues[0] < 0.01 {
		t.Errorf("direct-effect p = %v, want insignificant (no direct edge)", rep.DirectComparisons[0].PValues[0])
	}
	if math.Abs(rep.DirectComparisons[0].Diffs[0]) > 0.05 {
		t.Errorf("NDE = %v, want ≈0", rep.DirectComparisons[0].Diffs[0])
	}
	if math.Abs(rep.OriginalComparisons[0].Diffs[0]) < 0.2 {
		t.Errorf("total diff = %v, want large", rep.OriginalComparisons[0].Diffs[0])
	}
}

func TestAnalyzeGroupedQuery(t *testing.T) {
	// Grouping splits contexts; each context gets its own comparison row.
	rng := rand.New(rand.NewSource(19))
	b := dataset.NewBuilder("T", "Z", "G", "Y")
	for i := 0; i < 8000; i++ {
		z := rng.Intn(2)
		tv := z
		if rng.Float64() < 0.3 {
			tv = 1 - tv
		}
		y := 0
		// Both a confounder effect (Z) and a direct treatment effect (T),
		// so that Y ∈ MB(T) and the covariate fallback engages.
		if rng.Float64() < 0.2+0.3*float64(z)+0.2*float64(tv) {
			y = 1
		}
		b.MustAdd(itoa(tv), itoa(z), itoa(rng.Intn(2)), itoa(y))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Treatment: "T", Groupings: []string{"G"}, Outcomes: []string{"Y"}}
	rep, err := Analyze(context.Background(), mem.New(tab), q, Options{Config: Config{Seed: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OriginalComparisons) != 2 {
		t.Errorf("comparisons = %d, want 2 (one per context)", len(rep.OriginalComparisons))
	}
	if len(rep.BiasTotal) != 2 {
		t.Errorf("bias verdicts = %d, want 2", len(rep.BiasTotal))
	}
}
