module hypdb

go 1.24
