package cube

import (
	"context"

	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

func randomTable(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("A", "B", "C", "D")
	for i := 0; i < n; i++ {
		a := rng.Intn(3)
		bb := (a + rng.Intn(2)) % 3
		b.MustAdd(strconv.Itoa(a), strconv.Itoa(bb), strconv.Itoa(rng.Intn(2)), strconv.Itoa(rng.Intn(4)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBuildValidation(t *testing.T) {
	tab := randomTable(t, 50, 1)
	if _, err := Build(tab, nil); err == nil {
		t.Error("empty dimensions accepted")
	}
	if _, err := Build(tab, []string{"missing"}); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Build(tab, []string{"A", "A"}); err == nil {
		t.Error("duplicate dimension accepted")
	}
	many := make([]string, MaxDimensions+1)
	for i := range many {
		many[i] = "X" + strconv.Itoa(i)
	}
	if _, err := Build(tab, many); err == nil {
		t.Error("too many dimensions accepted")
	}
}

func TestCubeViewsMatchScans(t *testing.T) {
	tab := randomTable(t, 500, 2)
	c, err := Build(tab, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumViews() != 8 {
		t.Errorf("NumViews = %d, want 8", c.NumViews())
	}
	subsets := [][]string{
		{}, {"A"}, {"B"}, {"C"}, {"A", "B"}, {"A", "C"}, {"B", "C"}, {"A", "B", "C"},
	}
	for _, sub := range subsets {
		counts, ok := c.Counts(sub)
		if !ok {
			t.Fatalf("subset %v not covered", sub)
		}
		total := 0
		for _, v := range counts {
			total += v
		}
		if total != tab.NumRows() {
			t.Errorf("subset %v: counts sum to %d, want %d", sub, total, tab.NumRows())
		}
		if len(sub) > 0 {
			want, _, err := tab.Counts(sub...)
			if err != nil {
				t.Fatal(err)
			}
			if len(counts) != len(want) {
				t.Errorf("subset %v: %d cells, scan gives %d", sub, len(counts), len(want))
			}
			// Entropy from the cube must equal entropy from the scan.
			hc := stats.EntropyCountsMap(counts, tab.NumRows(), stats.MillerMadow)
			hs := stats.EntropyCountsMap(want, tab.NumRows(), stats.MillerMadow)
			if math.Abs(hc-hs) > 1e-12 {
				t.Errorf("subset %v: cube entropy %v != scan entropy %v", sub, hc, hs)
			}
		}
	}
}

func TestCubeCoverage(t *testing.T) {
	tab := randomTable(t, 100, 3)
	c, err := Build(tab, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Covers([]string{"B", "A"}) {
		t.Error("covered subset rejected")
	}
	if c.Covers([]string{"A", "D"}) {
		t.Error("uncovered subset accepted")
	}
	if _, ok := c.Counts([]string{"D"}); ok {
		t.Error("Counts answered for uncovered subset")
	}
	if c.Cells() <= 0 {
		t.Error("Cells not positive")
	}
}

func TestProviderMatchesScanProvider(t *testing.T) {
	tab := randomTable(t, 800, 4)
	c, err := Build(tab, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := independence.NewRelationProvider(context.Background(), mem.New(tab), stats.MillerMadow)
	if err != nil {
		t.Fatal(err)
	}
	cp := NewProvider(c, sp, stats.MillerMadow)
	for _, sub := range [][]string{{"A"}, {"A", "B"}, {"C", "B", "A"}, {"D"}, {"A", "D"}} {
		hc, err := cp.JointEntropy(context.Background(), sub)
		if err != nil {
			t.Fatalf("cube entropy %v: %v", sub, err)
		}
		hs, err := sp.JointEntropy(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hc-hs) > 1e-12 {
			t.Errorf("subset %v: provider entropy %v != scan %v", sub, hc, hs)
		}
		dc, err := cp.DistinctCount(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sp.DistinctCount(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		if dc != ds {
			t.Errorf("subset %v: provider distinct %d != scan %d", sub, dc, ds)
		}
	}
	if cp.NumRows() != tab.NumRows() {
		t.Errorf("NumRows = %d", cp.NumRows())
	}
	if h, err := cp.JointEntropy(context.Background(), nil); err != nil || h != 0 {
		t.Errorf("empty entropy = (%v,%v)", h, err)
	}
	if d, err := cp.DistinctCount(context.Background(), nil); err != nil || d != 1 {
		t.Errorf("empty distinct = (%v,%v)", d, err)
	}
}

func TestChiSquareWithCubeProvider(t *testing.T) {
	// End to end: the χ² tester produces identical results through the cube.
	tab := randomTable(t, 1000, 5)
	c, err := Build(tab, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := independence.NewRelationProvider(context.Background(), mem.New(tab), stats.MillerMadow)
	if err != nil {
		t.Fatal(err)
	}
	viaCube := independence.ChiSquare{Provider: NewProvider(c, fallback, stats.MillerMadow), Est: stats.MillerMadow}
	viaScan := independence.ChiSquare{Est: stats.MillerMadow}
	r1, err := viaCube.Test(context.Background(), mem.New(tab), "A", "B", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := viaScan.Test(context.Background(), mem.New(tab), "A", "B", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MI != r2.MI || r1.PValue != r2.PValue || r1.DF != r2.DF {
		t.Errorf("cube-backed test differs: %+v vs %+v", r1, r2)
	}
}

// TestCubeDenseMatchesStringViews: the dense lattice walk must reproduce,
// key for key, the composite-key views the string-slicing marginalizer used
// to build — Cube.Counts keys are EncodeKey-coded tuples of the kept
// dimensions in cube order, and Cube.Dense agrees with tabulating the
// subset directly from the table.
func TestCubeDenseMatchesStringViews(t *testing.T) {
	tab := randomTable(t, 600, 8)
	dims := []string{"A", "B", "C", "D"}
	c, err := Build(tab, dims)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]string{
		{"A"}, {"B"}, {"C"}, {"D"},
		{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"},
		{"A", "B", "C"}, {"B", "C", "D"}, {"A", "B", "C", "D"},
	}
	for _, sub := range subsets {
		counts, ok := c.Counts(sub)
		if !ok {
			t.Fatalf("subset %v not covered", sub)
		}
		want, _, err := tab.Counts(sub...)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[dataset.GroupKey]int, len(counts))
		for k, v := range counts {
			got[dataset.GroupKey(k)] = v
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("subset %v: cube keys/counts differ from direct scan", sub)
		}
		view, ok := c.Dense(sub)
		if !ok {
			t.Fatalf("subset %v: no dense view", sub)
		}
		direct, err := tab.DenseCounts(sub...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(view.Cells, direct.Cells) {
			t.Errorf("subset %v: dense cells differ from direct tabulation", sub)
		}
		if view.Total != tab.NumRows() {
			t.Errorf("subset %v: total %d", sub, view.Total)
		}
	}
	// Reordered requests resolve to the same (cube-ordered) view.
	v1, _ := c.Dense([]string{"A", "C"})
	v2, _ := c.Dense([]string{"C", "A"})
	if v1 != v2 {
		t.Error("reordered subset resolved to a different view")
	}
}

// Property: every cube view's counts sum to n, and single-attribute views
// match the column's histogram exactly.
func TestQuickCubeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(300)
		b := dataset.NewBuilder("P", "Q", "R")
		for i := 0; i < n; i++ {
			b.MustAdd(strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(4)), strconv.Itoa(r.Intn(2)))
		}
		tab, err := b.Table()
		if err != nil {
			return false
		}
		c, err := Build(tab, []string{"P", "Q", "R"})
		if err != nil {
			return false
		}
		for _, sub := range [][]string{{}, {"P"}, {"Q"}, {"R"}, {"P", "Q"}, {"Q", "R"}, {"P", "Q", "R"}} {
			counts, ok := c.Counts(sub)
			if !ok {
				return false
			}
			total := 0
			for _, v := range counts {
				total += v
			}
			if total != n {
				return false
			}
			if len(sub) > 0 {
				scan, _, err := tab.Counts(sub...)
				if err != nil || len(scan) != len(counts) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
