package hypdb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hypdb/internal/planner"
	"hypdb/source"
)

// Plan is a solved batch plan of the lattice-aware multi-query planner: the
// cuboid frontier primed into the session count cache to serve a whole
// analyze/audit batch by marginalization, plus the per-demand assignment
// and round-trip accounting. Retrieve the latest one with LastPlan and
// render it with WriteText (the CLI's audit -explain-plan dump).
type Plan = planner.Plan

// PlannerStats aggregates the session's batch-planner activity, reported
// inside Stats and surfaced per dataset by the server's /v1/metrics.
type PlannerStats struct {
	// Plans counts executed batch plans; Cuboids the lattice nodes they
	// primed; CellsMaterialized their summed (estimated) cell counts.
	Plans             int
	Cuboids           int
	CellsMaterialized int
	// DemandsPlanned counts demands a plan covered; DemandsProjected the
	// subset of those served by marginalizing a strictly wider cuboid —
	// the cross-request sharing the planner bought.
	DemandsPlanned   int
	DemandsProjected int
	// RoundTripsSaved accumulates plans' backend fetches avoided versus
	// per-request priming (one fetch per distinct closure).
	RoundTripsSaved int
}

// DefaultPlanWindow is the demand-coalescing window the server installs on
// its dataset handles (SetPlanWindow): the first request of a batch epoch
// waits this long for concurrent requests to contribute their demands
// before the plan is solved and primed, so mixed analyze/audit traffic
// landing together shares one cuboid frontier. Direct library handles
// default to no window — an AnalyzeAll call already carries its whole
// batch, and delaying it buys nothing.
const DefaultPlanWindow = 10 * time.Millisecond

// SetPlanWindow sets the handle's demand-coalescing window. Zero (the
// default) plans each request's demands immediately; a positive window
// makes the first planning request of an epoch wait for concurrent
// requests' demands, which multi-tenant servers want (DefaultPlanWindow)
// and single-caller sessions do not. Safe to call concurrently with
// queries; an in-flight window keeps its old duration.
func (db *DB) SetPlanWindow(d time.Duration) {
	db.planMu.Lock()
	db.planWindow = d
	db.planMu.Unlock()
}

// planGate collects the demands of one coalescing window. The leader (the
// request that created the gate) closes it after the window, solves and
// executes the plan, then releases the waiting followers.
type planGate struct {
	done    chan struct{}
	demands []planner.Demand
	closed  bool
	plan    *planner.Plan
	err     error
}

// planBatch routes one request's demands through the per-epoch coalescing
// gate and returns the executed plan plus the offset of this request's
// demands within plan.Demands — or nil when planning failed or was skipped
// (callers then fall back to per-request priming; never an error, the
// planner is purely a cost optimization).
func (db *DB) planBatch(ctx context.Context, rel source.Relation, demands []planner.Demand, st settings) (*planner.Plan, int) {
	if len(demands) == 0 {
		return nil, 0
	}
	epoch := rel.Backend()
	db.planMu.Lock()
	if g, ok := db.planGates[epoch]; ok && !g.closed {
		// Follower: contribute demands to the open window, then wait for
		// the leader's plan.
		off := len(g.demands)
		g.demands = append(g.demands, demands...)
		db.planMu.Unlock()
		select {
		case <-g.done:
		case <-ctx.Done():
			return nil, 0
		}
		if g.err != nil || g.plan == nil {
			return nil, 0
		}
		return g.plan, off
	}
	g := &planGate{done: make(chan struct{}), demands: append([]planner.Demand(nil), demands...)}
	if db.planGates == nil {
		db.planGates = make(map[string]*planGate)
	}
	db.planGates[epoch] = g
	window := db.planWindow
	db.planMu.Unlock()

	if window > 0 {
		t := time.NewTimer(window)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	db.planMu.Lock()
	g.closed = true
	if db.planGates[epoch] == g {
		delete(db.planGates, epoch)
	}
	all := g.demands
	db.planMu.Unlock()

	g.plan, g.err = db.solvePlan(ctx, rel, all, st)
	close(g.done)
	if g.err != nil || g.plan == nil {
		return nil, 0
	}
	return g.plan, 0
}

// solvePlan builds, executes and records one plan.
func (db *DB) solvePlan(ctx context.Context, rel source.Relation, demands []planner.Demand, st settings) (*planner.Plan, error) {
	rows, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	budget := st.planCellBudget
	if budget <= 0 {
		budget = st.opts.CellBudget
	}
	cfg := planner.Config{
		CellBudget: budget,
		Rows:       rows,
		FetchCost:  rows * backendFetchWeight(rel.Backend()),
		Card: func(ctx context.Context, attr string) (int, error) {
			return source.Card(ctx, rel, attr)
		},
	}
	p, err := planner.New(ctx, cfg, demands)
	if err != nil {
		return nil, err
	}
	if err := p.Execute(ctx); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.planStats.Plans++
	db.planStats.Cuboids += len(p.Cuboids)
	db.planStats.CellsMaterialized += p.Cells
	db.planStats.RoundTripsSaved += p.Saved()
	db.planStats.DemandsProjected += p.Projected
	for _, a := range p.Assign {
		if a >= 0 {
			db.planStats.DemandsPlanned++
		}
	}
	db.lastPlan = p
	db.mu.Unlock()
	return p, nil
}

// backendFetchWeight estimates the relative cost of one backend round trip
// against tabulating the same rows from memory: SQL pays query planning,
// row decoding and the driver round trip; remote shards additionally pay
// the network. The weights only steer the merge heuristic — a wrong weight
// costs round trips, never correctness.
func backendFetchWeight(backend string) int {
	switch {
	case strings.HasPrefix(backend, "remote:"):
		return 100
	case strings.HasPrefix(backend, "sqldb:"), strings.HasPrefix(backend, "sharded:"):
		return 25
	default:
		return 1
	}
}

// analyzeDemands extracts the count demands of an AnalyzeAll batch: per
// query, the covariate-discovery closure (the schema minus the query's
// groupings — the superset DiscoverCovariates unions for it) and, for
// grouped queries, the run set (treatment, groupings and outcomes) the
// query execution itself counts over. demandQuery maps each demand back to
// its query index so callers can tell which queries the plan fully covers.
func analyzeDemands(ctx context.Context, rel source.Relation, queries []Query) (demands []planner.Demand, demandQuery []int) {
	attrs := rel.Attributes()
	for i, q := range queries {
		view := rel
		key := rel.Backend()
		if q.Where != nil {
			whereKey, cacheable := whereKeyOf(q)
			if !cacheable {
				continue // no canonical predicate encoding: leave unplanned
			}
			restricted, err := rel.Restrict(ctx, q.Where)
			if err != nil {
				continue
			}
			view, key = restricted, key+"|"+whereKey
		}
		closure := excludeAll(attrs, q.Groupings)
		demands = append(demands, planner.Demand{
			Source: fmt.Sprintf("analyze[%d] cd", i), Attrs: closure, View: view, Key: key,
		})
		demandQuery = append(demandQuery, i)
		if len(q.Groupings) > 0 {
			run := append([]string{q.Treatment}, q.Groupings...)
			run = append(run, q.Outcomes...)
			demands = append(demands, planner.Demand{
				Source: fmt.Sprintf("analyze[%d] run", i), Attrs: run, View: view, Key: key,
			})
			demandQuery = append(demandQuery, i)
		}
	}
	return demands, demandQuery
}

// auditDemand extracts an Audit sweep's count demand: every candidate's
// discovery closes over the audited view's full schema, so the sweep is
// one whole-schema demand on the (possibly restricted) view.
func auditDemand(ctx context.Context, rel source.Relation, spec AuditSpec) (planner.Demand, bool) {
	view := rel
	key := rel.Backend()
	if spec.Where != nil {
		whereKey, cacheable := whereKeyOf(Query{Where: spec.Where})
		if !cacheable {
			return planner.Demand{}, false
		}
		restricted, err := rel.Restrict(ctx, spec.Where)
		if err != nil {
			return planner.Demand{}, false
		}
		view, key = restricted, key+"|"+whereKey
	}
	return planner.Demand{Source: "audit", Attrs: view.Attributes(), View: view, Key: key}, true
}

// LastPlan returns the most recently executed batch plan of this handle —
// what AnalyzeAll or Audit primed the count cache with — or nil when no
// plan has run (planner disabled, empty batches, or no call yet). The
// returned plan is a shared snapshot; treat it as read-only.
func (db *DB) LastPlan() *Plan {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastPlan
}

// excludeAll returns attrs minus the given exclusions, preserving order.
func excludeAll(attrs, minus []string) []string {
	if len(minus) == 0 {
		return append([]string(nil), attrs...)
	}
	drop := make(map[string]bool, len(minus))
	for _, m := range minus {
		drop[m] = true
	}
	out := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if !drop[a] {
			out = append(out, a)
		}
	}
	return out
}

// plannedQueries marks the queries all of whose demands the plan covers:
// those run with the pipeline's own per-closure priming skipped (the plan's
// cuboids already serve them), the rest keep the unplanned path.
func plannedQueries(p *planner.Plan, off int, demandQuery []int, n int) []bool {
	planned := make([]bool, n)
	if p == nil {
		return planned
	}
	covered := make([]bool, n)
	for i := range covered {
		covered[i] = true
	}
	seen := make([]bool, n)
	for j, qi := range demandQuery {
		seen[qi] = true
		if p.Assign[off+j] < 0 {
			covered[qi] = false
		}
	}
	for i := 0; i < n; i++ {
		planned[i] = seen[i] && covered[i]
	}
	return planned
}
