// Package dataset provides the relational substrate of HypDB: an in-memory,
// columnar table of dictionary-encoded categorical attributes with
// selection, projection, grouping and CSV I/O.
//
// The paper (Sec 2) fixes a relational schema with discrete domains and
// restricts OLAP queries to group-by-average queries over such tables. The
// original implementation sat on top of pandas; this package is the
// equivalent substrate in pure Go.
//
// All values are categorical. A column stores one int32 code per row plus a
// dictionary mapping codes to string labels. Numeric outcome attributes
// (e.g. a 0/1 "Delayed" flag) are stored the same way; Table.Float decodes a
// column to float64 for aggregation.
package dataset

import (
	"hypdb/internal/hyperr"

	"fmt"
	"strconv"
)

// Column is a dictionary-encoded categorical attribute.
type Column struct {
	Name   string
	codes  []int32  // one entry per row; index into labels
	labels []string // dictionary: code -> label
	index  map[string]int32
}

// NewColumn creates an empty column with the given name.
func NewColumn(name string) *Column {
	return &Column{Name: name, index: make(map[string]int32)}
}

// NewColumnFromStrings builds a column by dictionary-encoding vals.
func NewColumnFromStrings(name string, vals []string) *Column {
	c := NewColumn(name)
	c.codes = make([]int32, 0, len(vals))
	for _, v := range vals {
		c.Append(v)
	}
	return c
}

// NewColumnFromCodes builds a column directly from codes and a dictionary.
// The caller must guarantee every code is a valid index into labels.
func NewColumnFromCodes(name string, codes []int32, labels []string) (*Column, error) {
	idx := make(map[string]int32, len(labels))
	for i, l := range labels {
		if _, dup := idx[l]; dup {
			return nil, fmt.Errorf("dataset: column %q: duplicate label %q", name, l)
		}
		idx[l] = int32(i)
	}
	for i, code := range codes {
		if code < 0 || int(code) >= len(labels) {
			return nil, fmt.Errorf("dataset: column %q: row %d has code %d outside dictionary of size %d",
				name, i, code, len(labels))
		}
	}
	return &Column{Name: name, codes: codes, labels: labels, index: idx}, nil
}

// Append adds one value to the column, extending the dictionary if needed,
// and returns the code assigned to it.
func (c *Column) Append(val string) int32 {
	if code, ok := c.index[val]; ok {
		c.codes = append(c.codes, code)
		return code
	}
	code := int32(len(c.labels))
	c.labels = append(c.labels, val)
	c.index[val] = code
	c.codes = append(c.codes, code)
	return code
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.codes) }

// Card returns the cardinality of the active domain (dictionary size).
func (c *Column) Card() int { return len(c.labels) }

// Code returns the dictionary code of row i.
func (c *Column) Code(i int) int32 { return c.codes[i] }

// Codes returns the backing code slice. Callers must not mutate it.
func (c *Column) Codes() []int32 { return c.codes }

// Label decodes a dictionary code back to its string label.
func (c *Column) Label(code int32) string { return c.labels[code] }

// Labels returns the dictionary. Callers must not mutate it.
func (c *Column) Labels() []string { return c.labels }

// Value returns the decoded value of row i.
func (c *Column) Value(i int) string { return c.labels[c.codes[i]] }

// CodeOf returns the code for label val, or -1 when val is not in the
// dictionary.
func (c *Column) CodeOf(val string) int32 {
	if code, ok := c.index[val]; ok {
		return code
	}
	return -1
}

// clone returns a deep copy of the column restricted to the given rows.
// The dictionary is compacted to the codes that actually occur.
func (c *Column) cloneRows(rows []int) *Column {
	out := NewColumn(c.Name)
	out.codes = make([]int32, 0, len(rows))
	remap := make(map[int32]int32, len(c.labels))
	for _, r := range rows {
		old := c.codes[r]
		code, ok := remap[old]
		if !ok {
			code = int32(len(out.labels))
			out.labels = append(out.labels, c.labels[old])
			out.index[c.labels[old]] = code
			remap[old] = code
		}
		out.codes = append(out.codes, code)
	}
	return out
}

// Table is a set of equal-length columns: the database instance D of the
// paper, a uniform sample of an unknown population distribution Pr(A).
type Table struct {
	cols    []*Column
	byName  map[string]int
	numRows int
}

// New creates a table from columns. All columns must have equal length and
// distinct names.
func New(cols ...*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: table needs at least one column")
	}
	t := &Table{byName: make(map[string]int, len(cols))}
	t.numRows = cols[0].Len()
	for i, c := range cols {
		if c.Len() != t.numRows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, c.Len(), t.numRows)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.Name)
		}
		t.byName[c.Name] = i
		t.cols = append(t.cols, c)
	}
	return t, nil
}

// MustNew is New that panics on error; for tests and generators with
// statically correct shapes.
func MustNew(cols ...*Column) *Table {
	t, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of rows (the paper's n).
func (t *Table) NumRows() int { return t.numRows }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the column names in schema order.
func (t *Table) Columns() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// HasColumn reports whether the attribute exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Column returns the named column or an error when absent.
func (t *Table) Column(name string) (*Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("dataset: no column %q: %w", name, hyperr.ErrUnknownAttribute)
	}
	return t.cols[i], nil
}

// MustColumn is Column that panics on missing attributes.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Float decodes a column into float64s by parsing its labels. Labels that do
// not parse cause an error naming the offending value.
func (t *Table) Float(name string) ([]float64, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	parsed := make([]float64, c.Card())
	for code, l := range c.labels {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: column %q: value %q is not numeric", name, l)
		}
		parsed[code] = v
	}
	out := make([]float64, t.numRows)
	for i, code := range c.codes {
		out[i] = parsed[code]
	}
	return out, nil
}

// Select returns a new table containing the rows matching pred, in order.
func (t *Table) Select(pred Predicate) (*Table, error) {
	if pred == nil {
		return t, nil
	}
	match, err := pred.Eval(t)
	if err != nil {
		return nil, err
	}
	var rows []int
	for i, m := range match {
		if m {
			rows = append(rows, i)
		}
	}
	return t.SelectRows(rows)
}

// SelectRows returns a new table with exactly the given rows (in the given
// order). Dictionaries are compacted.
func (t *Table) SelectRows(rows []int) (*Table, error) {
	for _, r := range rows {
		if r < 0 || r >= t.numRows {
			return nil, fmt.Errorf("dataset: row index %d out of range [0,%d)", r, t.numRows)
		}
	}
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.cloneRows(rows)
	}
	out := &Table{cols: cols, byName: make(map[string]int, len(cols)), numRows: len(rows)}
	for i, c := range cols {
		out.byName[c.Name] = i
	}
	return out, nil
}

// Project returns a new table with only the named columns (shared storage —
// cheap). The column order follows names.
func (t *Table) Project(names ...string) (*Table, error) {
	cols := make([]*Column, 0, len(names))
	for _, n := range names {
		c, err := t.Column(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return New(cols...)
}

// Drop returns a new table without the named columns (shared storage).
func (t *Table) Drop(names ...string) (*Table, error) {
	dropped := make(map[string]bool, len(names))
	for _, n := range names {
		if !t.HasColumn(n) {
			return nil, fmt.Errorf("dataset: no column %q: %w", n, hyperr.ErrUnknownAttribute)
		}
		dropped[n] = true
	}
	var keep []string
	for _, c := range t.cols {
		if !dropped[c.Name] {
			keep = append(keep, c.Name)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("dataset: dropping all columns")
	}
	return t.Project(keep...)
}

// GroupKey is a composite group-by key: the codes of the grouping attributes
// for some row, rendered into a compact comparable string.
type GroupKey string

// EncodeKey renders a tuple of dictionary codes into a GroupKey using the
// canonical layout (4 little-endian bytes per code). Every key produced by
// this package — and by source.Relation backends — uses this layout, so keys
// from different producers over the same dictionaries are interchangeable.
func EncodeKey(codes ...int32) GroupKey {
	buf := make([]byte, 0, 4*len(codes))
	for _, v := range codes {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return GroupKey(buf)
}

// Codes decodes the key back into its per-attribute dictionary codes.
func (k GroupKey) Codes() []int32 {
	b := []byte(k)
	out := make([]int32, len(b)/4)
	for i := range out {
		off := i * 4
		out[i] = int32(b[off]) | int32(b[off+1])<<8 | int32(b[off+2])<<16 | int32(b[off+3])<<24
	}
	return out
}

// Field returns the i-th code of the key without decoding the whole tuple.
func (k GroupKey) Field(i int) int32 {
	off := i * 4
	return int32(k[off]) | int32(k[off+1])<<8 | int32(k[off+2])<<16 | int32(k[off+3])<<24
}

// Fields returns the number of codes packed in the key.
func (k GroupKey) Fields() int { return len(k) / 4 }

// Slice returns the sub-key holding fields [from, to).
func (k GroupKey) Slice(from, to int) GroupKey { return k[4*from : 4*to] }

// KeyEncoder turns rows into composite group keys over a fixed attribute
// list. Encoding is length-prefixed so distinct code tuples never collide.
type KeyEncoder struct {
	cols []*Column
}

// NewKeyEncoder builds an encoder over the named attributes of t.
func NewKeyEncoder(t *Table, attrs []string) (*KeyEncoder, error) {
	e := &KeyEncoder{}
	for _, a := range attrs {
		c, err := t.Column(a)
		if err != nil {
			return nil, err
		}
		e.cols = append(e.cols, c)
	}
	return e, nil
}

// Key returns the composite key of row i.
func (e *KeyEncoder) Key(i int) GroupKey {
	if len(e.cols) == 0 {
		return ""
	}
	buf := make([]byte, 0, 4*len(e.cols))
	for _, c := range e.cols {
		v := c.codes[i]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return GroupKey(buf)
}

// Decode renders a key back into human-readable attribute=value pairs.
func (e *KeyEncoder) Decode(k GroupKey) []string {
	out := make([]string, 0, len(e.cols))
	for i, c := range e.cols {
		out = append(out, c.Name+"="+c.Label(k.Field(i)))
	}
	return out
}

// Codes decodes a key into the per-attribute dictionary codes.
func (e *KeyEncoder) Codes(k GroupKey) []int32 { return k.Codes() }

// Group is one group of a group-by: its key and member row indices.
type Group struct {
	Key  GroupKey
	Rows []int
}

// GroupBy partitions the table rows by the composite value of attrs.
// Groups are returned in a deterministic order (sorted by key).
func (t *Table) GroupBy(attrs ...string) ([]Group, *KeyEncoder, error) {
	enc, err := NewKeyEncoder(t, attrs)
	if err != nil {
		return nil, nil, err
	}
	if groups, ok, err := t.denseGroupBy(enc); err != nil {
		return nil, nil, err
	} else if ok {
		return groups, enc, nil
	}
	m := make(map[GroupKey][]int)
	for i := 0; i < t.numRows; i++ {
		k := enc.Key(i)
		m[k] = append(m[k], i)
	}
	groups := make([]Group, 0, len(m))
	for k, rows := range m {
		groups = append(groups, Group{Key: k, Rows: rows})
	}
	sortGroups(groups)
	return groups, enc, nil
}

// denseGroupBy partitions rows via the mixed-radix kernel when the cell
// space fits the budget: two passes over a per-row cell-index vector replace
// the per-row key hashing and slice growth of the map path.
func (t *Table) denseGroupBy(enc *KeyEncoder) ([]Group, bool, error) {
	cards := make([]int, len(enc.cols))
	for i, c := range enc.cols {
		cards[i] = c.Card()
		if cards[i] == 0 && t.numRows > 0 {
			return nil, false, fmt.Errorf("dataset: column %q has empty dictionary but %d rows", c.Name, t.numRows)
		}
	}
	if t.numRows == 0 {
		return nil, true, nil
	}
	size, ok := DenseSize(cards, EffectiveBudget(0, t.numRows))
	if !ok {
		return nil, false, nil
	}
	// Pass 1: the cell index of every row, and the cell occupancy.
	strides := make([]int32, len(enc.cols))
	s := int32(1)
	for i, card := range cards {
		strides[i] = s
		s *= int32(card)
	}
	rowCell := make([]int32, t.numRows)
	if len(enc.cols) > 0 {
		copy(rowCell, enc.cols[0].codes)
		for j := 1; j < len(enc.cols); j++ {
			stride := strides[j]
			for i, code := range enc.cols[j].codes {
				rowCell[i] += stride * code
			}
		}
	}
	counts := make([]int, size)
	for _, c := range rowCell {
		counts[c]++
	}
	// Pass 2: exact-size row slices, filled in row order.
	groupOf := make([]int32, size)
	dc := DenseCounts{Cards: cards}
	var groups []Group
	for cell, c := range counts {
		if c == 0 {
			groupOf[cell] = -1
			continue
		}
		groupOf[cell] = int32(len(groups))
		groups = append(groups, Group{Key: dc.Key(cell), Rows: make([]int, 0, c)})
	}
	for i, c := range rowCell {
		g := groupOf[c]
		groups[g].Rows = append(groups[g].Rows, i)
	}
	sortGroups(groups)
	return groups, true, nil
}

// Counts returns the frequency of each composite value of attrs.
func (t *Table) Counts(attrs ...string) (map[GroupKey]int, *KeyEncoder, error) {
	enc, err := NewKeyEncoder(t, attrs)
	if err != nil {
		return nil, nil, err
	}
	if dc, ok, err := t.denseWithin(enc.cols, attrs, nil, DefaultCellBudget); err != nil {
		return nil, nil, err
	} else if ok {
		return dc.Map(), enc, nil
	}
	m := make(map[GroupKey]int)
	for i := 0; i < t.numRows; i++ {
		m[enc.Key(i)]++
	}
	return m, enc, nil
}

// CountsMatching returns the frequency of each composite value of attrs over
// the rows matching pred (all rows when pred is nil). Unlike Select followed
// by Counts, the codes in the returned keys refer to this table's
// dictionaries — no compaction happens — which is what keeps counts from
// different predicates over one handle mutually comparable.
func (t *Table) CountsMatching(pred Predicate, attrs ...string) (map[GroupKey]int, error) {
	if pred == nil {
		m, _, err := t.Counts(attrs...)
		return m, err
	}
	match, err := pred.Eval(t)
	if err != nil {
		return nil, err
	}
	enc, err := NewKeyEncoder(t, attrs)
	if err != nil {
		return nil, err
	}
	if dc, ok, err := t.denseWithin(enc.cols, attrs, match, DefaultCellBudget); err != nil {
		return nil, err
	} else if ok {
		return dc.Map(), nil
	}
	m := make(map[GroupKey]int)
	for i := 0; i < t.numRows; i++ {
		if match[i] {
			m[enc.Key(i)]++
		}
	}
	return m, nil
}

// DistinctCount returns the number of distinct composite values of attrs
// (the paper's |Π_X(D)|).
func (t *Table) DistinctCount(attrs ...string) (int, error) {
	m, _, err := t.Counts(attrs...)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}

// AppendRow appends one row given as attribute label values in schema order.
func (t *Table) AppendRow(vals ...string) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("dataset: AppendRow got %d values, want %d", len(vals), len(t.cols))
	}
	for i, v := range vals {
		t.cols[i].Append(v)
	}
	t.numRows++
	return nil
}

// Builder incrementally assembles a table row by row.
type Builder struct {
	cols []*Column
}

// NewBuilder creates a builder over the given schema.
func NewBuilder(names ...string) *Builder {
	b := &Builder{}
	for _, n := range names {
		b.cols = append(b.cols, NewColumn(n))
	}
	return b
}

// Add appends a row of label values in schema order.
func (b *Builder) Add(vals ...string) error {
	if len(vals) != len(b.cols) {
		return fmt.Errorf("dataset: Builder.Add got %d values, want %d", len(vals), len(b.cols))
	}
	for i, v := range vals {
		b.cols[i].Append(v)
	}
	return nil
}

// MustAdd is Add that panics; for generators with static shapes.
func (b *Builder) MustAdd(vals ...string) {
	if err := b.Add(vals...); err != nil {
		panic(err)
	}
}

// Table finalizes the builder.
func (b *Builder) Table() (*Table, error) { return New(b.cols...) }
