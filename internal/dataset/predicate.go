package dataset

import (
	"fmt"
	"strings"
)

// Predicate is a row filter: the WHERE condition C of the paper's queries.
// Eval returns one bool per row of t.
type Predicate interface {
	Eval(t *Table) ([]bool, error)
	// SQL renders the predicate as a SQL boolean expression, used when the
	// system prints the original and rewritten queries.
	SQL() string
}

// In matches rows whose Attr value is one of Values (SQL: Attr IN (...)).
type In struct {
	Attr   string
	Values []string
}

// Eval implements Predicate.
func (p In) Eval(t *Table) ([]bool, error) {
	c, err := t.Column(p.Attr)
	if err != nil {
		return nil, err
	}
	want := make(map[int32]bool, len(p.Values))
	for _, v := range p.Values {
		if code := c.CodeOf(v); code >= 0 {
			want[code] = true
		}
	}
	out := make([]bool, t.NumRows())
	for i, code := range c.Codes() {
		out[i] = want[code]
	}
	return out, nil
}

// SQL implements Predicate.
func (p In) SQL() string {
	quoted := make([]string, len(p.Values))
	for i, v := range p.Values {
		quoted[i] = "'" + v + "'"
	}
	return fmt.Sprintf("%s IN (%s)", p.Attr, strings.Join(quoted, ","))
}

// Eq matches rows with Attr = Value.
type Eq struct {
	Attr  string
	Value string
}

// Eval implements Predicate.
func (p Eq) Eval(t *Table) ([]bool, error) {
	c, err := t.Column(p.Attr)
	if err != nil {
		return nil, err
	}
	code := c.CodeOf(p.Value)
	out := make([]bool, t.NumRows())
	if code < 0 {
		return out, nil
	}
	for i, v := range c.Codes() {
		out[i] = v == code
	}
	return out, nil
}

// SQL implements Predicate.
func (p Eq) SQL() string { return fmt.Sprintf("%s = '%s'", p.Attr, p.Value) }

// And is the conjunction of its children. An empty And matches everything
// (SQL: TRUE).
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for i := range out {
		out[i] = true
	}
	for _, child := range p {
		m, err := child.Eval(t)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = out[i] && m[i]
		}
	}
	return out, nil
}

// SQL implements Predicate.
func (p And) SQL() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, child := range p {
		parts[i] = child.SQL()
	}
	return strings.Join(parts, " AND ")
}

// Or is the disjunction of its children. An empty Or matches nothing.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for _, child := range p {
		m, err := child.Eval(t)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = out[i] || m[i]
		}
	}
	return out, nil
}

// SQL implements Predicate.
func (p Or) SQL() string {
	if len(p) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(p))
	for i, child := range p {
		parts[i] = "(" + child.SQL() + ")"
	}
	return strings.Join(parts, " OR ")
}

// Not negates its child.
type Not struct{ Pred Predicate }

// Eval implements Predicate.
func (p Not) Eval(t *Table) ([]bool, error) {
	m, err := p.Pred.Eval(t)
	if err != nil {
		return nil, err
	}
	for i := range m {
		m[i] = !m[i]
	}
	return m, nil
}

// SQL implements Predicate.
func (p Not) SQL() string { return "NOT (" + p.Pred.SQL() + ")" }

// All matches every row (no WHERE clause).
type All struct{}

// Eval implements Predicate.
func (All) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for i := range out {
		out[i] = true
	}
	return out, nil
}

// SQL implements Predicate.
func (All) SQL() string { return "TRUE" }
