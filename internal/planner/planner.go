// Package planner implements HypDB's lattice-aware multi-query planner:
// given the count demands of a whole heterogeneous analyze/audit batch —
// each demand an attribute closure over one (possibly restricted) view —
// it solves a small materialized-view-selection problem over the attribute
// lattice and picks a frontier of cuboids to prime the count cache with,
// instead of one finest group-by per request.
//
// The cost model is the one the paper's cube optimization (Sec 6) implies:
// a cuboid's materialization cost is its estimated cell count (the product
// of the dictionary cardinalities of its attributes), bounded by the cell
// budget, while every cuboid fetched is one backend round trip — and on
// SQL or remote backends a round trip costs 10–100x what tabulating the
// same cells from memory does. Merging two demands into one covering
// cuboid therefore pays whenever the extra cells it materializes are
// cheaper than the round trip it saves; the planner merges greedily in
// that order until nothing profitable is left, then primes each surviving
// cuboid once. Demands whose closures exceed the budget get a trimmed
// best-effort cuboid (the widest prefix of their attributes, by ascending
// cardinality, that fits) so their cheapest marginals are still served
// from the cache.
//
// The planner is deliberately storage-agnostic: it sees demands, a
// cardinality oracle and a Primer per view, and it never fetches counts
// itself. The facade extracts demands from AnalyzeAll batches and Audit
// sweeps (and, through the session handle the server shares, from mixed
// batches crossing sessions) and executes the plan against the session
// count cache.
package planner

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"hypdb/internal/dataset"
	"hypdb/source"
)

// Primer is the count-cache capability a plan executes against: one
// backend round trip fetching the finest group-by over attrs, bounded by
// the cell budget. internal/countcache.Relation implements it.
type Primer interface {
	Prime(ctx context.Context, attrs []string, budget int) error
}

// Demand is one count demand of a batch: the attribute closure some
// request's counts range over, on the view they must be read from.
type Demand struct {
	// Source labels the demand's origin for the EXPLAIN dump, e.g.
	// "analyze[3] cd" or "audit".
	Source string
	// Attrs is the attribute closure: every count the request needs is
	// over a subset of it.
	Attrs []string
	// View is the relation the cuboid must be primed on — the session
	// relation, or a restricted child for predicated demands. Views that
	// do not implement Primer make the demand unplannable.
	View source.Relation
	// Key groups demands that may share cuboids: demands over the same
	// view under the same predicate. Callers build it from the backend
	// identity plus the rendered predicate.
	Key string
}

// Config tunes one planning run.
type Config struct {
	// CellBudget bounds each cuboid's cell space (product of attribute
	// cardinalities); <= 0 means dataset.DefaultCellBudget. The effective
	// per-cuboid bound is additionally row-capped like every dense
	// tabulation (dataset.EffectiveBudget).
	CellBudget int
	// TotalBudget bounds the plan's summed cells; <= 0 means four times
	// the per-cuboid budget (the count cache's own total-cell factor).
	TotalBudget int
	// FetchCost is the estimated cost of one backend round trip, in cell
	// units — the break-even number of extra cells worth materializing to
	// save one fetch. <= 0 means rows (a mem tabulation scans the rows
	// once); SQL and remote callers pass 10–100x that.
	FetchCost int
	// Rows is the relation's row count, used for the row cap and the
	// default FetchCost.
	Rows int
	// Card is the cardinality oracle: dictionary sizes of the session
	// relation. Required.
	Card func(ctx context.Context, attr string) (int, error)
}

// Cuboid is one selected lattice node: a view to prime and the demands it
// serves by marginalization.
type Cuboid struct {
	// Attrs is the cuboid's attribute set, sorted.
	Attrs []string
	// Key is the demand group the cuboid belongs to.
	Key string
	// Cells is the estimated cell count (exact when the dictionary is).
	Cells int
	// Partial marks a trimmed best-effort cuboid for a demand whose full
	// closure exceeded the cell budget: its marginals serve the demand's
	// cheapest subsets, but not all of them.
	Partial bool

	view source.Relation
}

// Plan is a solved batch: the cuboid frontier plus the bookkeeping the
// stats surfaces and the EXPLAIN dump report.
type Plan struct {
	// Demands echoes the input batch.
	Demands []Demand
	// Cuboids is the selected frontier, in priming order.
	Cuboids []Cuboid
	// Assign maps each demand to the index of the cuboid serving it, or
	// -1 for demands no cuboid fully covers (their counts fall through to
	// the backend per subset, exactly the unplanned path).
	Assign []int
	// Cells is the plan's total estimated cells materialized.
	Cells int
	// RoundTrips is the number of backend fetches the plan issues (one
	// per cuboid); NaiveTrips is what per-request priming would issue
	// (one per distinct closure). RoundTrips <= NaiveTrips always.
	RoundTrips int
	NaiveTrips int
	// Projected counts demands served by marginalizing a strictly wider
	// cuboid — the multi-query sharing the plan bought.
	Projected int
}

// node is one in-progress cuboid during the greedy merge.
type node struct {
	attrs   []string
	cells   int
	demands []int // demand indices
	partial bool
}

// New solves the materialized-view-selection problem for one batch of
// demands. Only context errors are returned: a demand whose view cannot
// be planned (no Primer, unknown cardinalities) is left unassigned rather
// than failing the batch.
func New(ctx context.Context, cfg Config, demands []Demand) (*Plan, error) {
	if cfg.Card == nil {
		return nil, fmt.Errorf("planner: Config.Card is required")
	}
	budget := cfg.CellBudget
	if budget <= 0 {
		budget = dataset.DefaultCellBudget
	}
	budget = dataset.EffectiveBudget(budget, cfg.Rows)
	total := cfg.TotalBudget
	if total <= 0 {
		total = budget * 4
	}
	fetchCost := cfg.FetchCost
	if fetchCost <= 0 {
		fetchCost = cfg.Rows
	}

	p := &Plan{Demands: demands, Assign: make([]int, len(demands))}
	for i := range p.Assign {
		p.Assign[i] = -1
	}

	// Group demands by key: cuboids never span views (a cuboid over a
	// restricted view answers only counts under that predicate).
	groups := make(map[string][]int)
	var order []string
	for i, d := range demands {
		if _, ok := d.View.(Primer); !ok || len(d.Attrs) == 0 {
			continue
		}
		if _, seen := groups[d.Key]; !seen {
			order = append(order, d.Key)
		}
		groups[d.Key] = append(groups[d.Key], i)
	}
	sort.Strings(order)

	cards := make(map[string]int)
	card := func(attr string) (int, error) {
		if c, ok := cards[attr]; ok {
			return c, nil
		}
		c, err := cfg.Card(ctx, attr)
		if err != nil || c <= 0 {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			return 0, err
		}
		cards[attr] = c
		return c, nil
	}

	for _, key := range order {
		if err := p.planGroup(groups[key], key, budget, fetchCost, card); err != nil {
			return nil, err
		}
	}

	// Enforce the plan-wide budget: drop the largest cuboids until the
	// total fits, unassigning their demands (they fall through to the
	// unplanned path, never to a wrong answer).
	for {
		sum := 0
		largest, li := -1, -1
		for i, c := range p.Cuboids {
			sum += c.Cells
			if c.Cells > largest {
				largest, li = c.Cells, i
			}
		}
		if sum <= total || li < 0 {
			p.Cells = sum
			break
		}
		for d, a := range p.Assign {
			if a == li {
				p.Assign[d] = -1
			} else if a > li {
				p.Assign[d] = a - 1
			}
		}
		p.Cuboids = append(p.Cuboids[:li], p.Cuboids[li+1:]...)
	}
	p.RoundTrips = len(p.Cuboids)
	for i, a := range p.Assign {
		if a >= 0 && len(p.Demands[i].Attrs) < len(p.Cuboids[a].Attrs) {
			p.Projected++
		}
	}
	return p, nil
}

// planGroup runs the greedy selection for one demand group (one view, one
// predicate) and appends the chosen cuboids to the plan.
func (p *Plan) planGroup(idxs []int, key string, budget, fetchCost int, card func(string) (int, error)) error {
	// Distinct closures, canonicalized. NaiveTrips counts them: the
	// per-request path primes each distinct closure once.
	type closure struct {
		attrs   []string
		demands []int
	}
	distinct := make(map[string]*closure)
	var corder []string
	for _, di := range idxs {
		attrs := append([]string(nil), p.Demands[di].Attrs...)
		sort.Strings(attrs)
		attrs = dedup(attrs)
		k := strings.Join(attrs, "\x00")
		if c, ok := distinct[k]; ok {
			c.demands = append(c.demands, di)
			continue
		}
		distinct[k] = &closure{attrs: attrs, demands: []int{di}}
		corder = append(corder, k)
	}
	p.NaiveTrips += len(distinct)
	sort.Strings(corder)

	// Initial lattice nodes: one per distinct closure, costed by the
	// dictionary. Closures over budget get a trimmed best-effort node.
	var nodes []*node
	for _, k := range corder {
		c := distinct[k]
		cells, err := cellsOf(c.attrs, budget, card)
		if err != nil {
			return err
		}
		if cells > 0 {
			nodes = append(nodes, &node{attrs: c.attrs, cells: cells, demands: c.demands})
			continue
		}
		trimmed, tcells, err := trim(c.attrs, budget, card)
		if err != nil {
			return err
		}
		if trimmed != nil {
			nodes = append(nodes, &node{attrs: trimmed, cells: tcells, demands: c.demands, partial: true})
		}
	}

	// Subsumption: a closure contained in another is served by projection
	// for free — fold it in before any merging.
	nodes = foldSubsets(nodes)

	// Greedy agglomerative merge: repeatedly take the pair whose union
	// fits the budget and maximizes gain = fetch saved - extra cells
	// materialized, until no merge is profitable. Partial nodes never
	// merge (their closure is already over budget).
	for {
		bestGain, bi, bj := 0, -1, -1
		var bestAttrs []string
		var bestCells int
		for i := 0; i < len(nodes); i++ {
			if nodes[i].partial {
				continue
			}
			for j := i + 1; j < len(nodes); j++ {
				if nodes[j].partial {
					continue
				}
				u := unionSorted(nodes[i].attrs, nodes[j].attrs)
				ucells, err := cellsOf(u, budget, card)
				if err != nil {
					return err
				}
				if ucells <= 0 {
					continue
				}
				gain := fetchCost - (ucells - nodes[i].cells - nodes[j].cells)
				if gain > bestGain {
					bestGain, bi, bj = gain, i, j
					bestAttrs, bestCells = u, ucells
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := &node{
			attrs:   bestAttrs,
			cells:   bestCells,
			demands: append(append([]int(nil), nodes[bi].demands...), nodes[bj].demands...),
		}
		nodes = append(nodes[:bj], nodes[bj+1:]...)
		nodes[bi] = merged
		nodes = foldSubsets(nodes)
	}

	for _, n := range nodes {
		ci := len(p.Cuboids)
		p.Cuboids = append(p.Cuboids, Cuboid{
			Attrs:   n.attrs,
			Key:     key,
			Cells:   n.cells,
			Partial: n.partial,
			view:    p.Demands[n.demands[0]].View,
		})
		if !n.partial {
			for _, di := range n.demands {
				p.Assign[di] = ci
			}
		}
	}
	return nil
}

// Execute primes each cuboid's view — one backend round trip per cuboid.
// The budget passed to Prime is the cuboid's own cell count, so the cache
// stores exactly what the plan costed.
func (p *Plan) Execute(ctx context.Context) error {
	for _, c := range p.Cuboids {
		pr, ok := c.view.(Primer)
		if !ok {
			continue
		}
		if err := pr.Prime(ctx, c.Attrs, c.Cells); err != nil {
			return err
		}
	}
	return nil
}

// Saved is the round trips the plan avoids versus per-request priming.
func (p *Plan) Saved() int {
	if s := p.NaiveTrips - p.RoundTrips; s > 0 {
		return s
	}
	return 0
}

// WriteText renders the EXPLAIN-style plan dump.
func (p *Plan) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "plan: %d demands -> %d cuboids, %d cells, %d round trips (naive %d, saved %d)\n",
		len(p.Demands), len(p.Cuboids), p.Cells, p.RoundTrips, p.NaiveTrips, p.Saved()); err != nil {
		return err
	}
	for i, c := range p.Cuboids {
		note := ""
		if c.Partial {
			note = " (trimmed: closure over budget)"
		}
		served := 0
		for _, a := range p.Assign {
			if a == i {
				served++
			}
		}
		if _, err := fmt.Fprintf(w, "  cuboid %d: {%s} cells=%d serves %d demand(s)%s\n",
			i, strings.Join(c.Attrs, ", "), c.Cells, served, note); err != nil {
			return err
		}
	}
	for i, d := range p.Demands {
		how := "unplanned (backend per subset)"
		if a := p.Assign[i]; a >= 0 {
			if len(d.Attrs) < len(p.Cuboids[a].Attrs) {
				how = fmt.Sprintf("projection of cuboid %d", a)
			} else {
				how = fmt.Sprintf("cuboid %d", a)
			}
		}
		if _, err := fmt.Fprintf(w, "  demand %s {%s}: %s\n", d.Source, strings.Join(d.Attrs, ", "), how); err != nil {
			return err
		}
	}
	return nil
}

// cellsOf estimates a cuboid's cells, or 0 when it exceeds the budget or a
// cardinality is unknown. Context errors from the oracle propagate.
func cellsOf(attrs []string, budget int, card func(string) (int, error)) (int, error) {
	cards := make([]int, 0, len(attrs))
	for _, a := range attrs {
		c, err := card(a)
		if err != nil {
			return 0, err
		}
		if c <= 0 {
			return 0, nil
		}
		cards = append(cards, c)
	}
	size, ok := dataset.DenseSize(cards, budget)
	if !ok {
		return 0, nil
	}
	return size, nil
}

// trim returns the widest prefix of attrs — taken in ascending cardinality
// order, ties by name — whose cells fit the budget, for best-effort
// coverage of an over-budget closure. nil when not even one attribute fits.
func trim(attrs []string, budget int, card func(string) (int, error)) ([]string, int, error) {
	type ac struct {
		attr string
		card int
	}
	byCard := make([]ac, 0, len(attrs))
	for _, a := range attrs {
		c, err := card(a)
		if err != nil {
			return nil, 0, err
		}
		if c <= 0 {
			return nil, 0, nil
		}
		byCard = append(byCard, ac{a, c})
	}
	sort.Slice(byCard, func(i, j int) bool {
		if byCard[i].card != byCard[j].card {
			return byCard[i].card < byCard[j].card
		}
		return byCard[i].attr < byCard[j].attr
	})
	kept, cells := []string(nil), 1
	for _, x := range byCard {
		if cells > budget/x.card {
			break
		}
		cells *= x.card
		kept = append(kept, x.attr)
	}
	if len(kept) == 0 {
		return nil, 0, nil
	}
	sort.Strings(kept)
	return kept, cells, nil
}

// foldSubsets removes nodes whose attribute set is contained in another
// node's, reassigning their demands to the smallest-cells surviving
// superset — those demands are served by projection for free. Equal sets
// (possible after a merge) keep the earlier node.
func foldSubsets(nodes []*node) []*node {
	survives := make([]bool, len(nodes))
	for i, n := range nodes {
		survives[i] = true
		if n.partial {
			continue
		}
		for j, m := range nodes {
			if i == j || m.partial || len(m.attrs) < len(n.attrs) {
				continue
			}
			if len(m.attrs) == len(n.attrs) && j > i {
				continue
			}
			if isSubset(n.attrs, m.attrs) {
				survives[i] = false
				break
			}
		}
	}
	out := make([]*node, 0, len(nodes))
	for i, n := range nodes {
		if survives[i] {
			out = append(out, n)
			continue
		}
		var host *node
		for j, m := range nodes {
			if !survives[j] || m.partial {
				continue
			}
			if isSubset(n.attrs, m.attrs) && (host == nil || m.cells < host.cells) {
				host = m
			}
		}
		// A surviving superset always exists (subset containment is
		// transitive and chains end at a maximal survivor).
		host.demands = append(host.demands, n.demands...)
	}
	return out
}

// isSubset reports whether sorted set a is contained in sorted set b.
func isSubset(a, b []string) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// unionSorted merges two sorted, deduplicated attribute sets.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// dedup removes adjacent duplicates from a sorted slice, in place.
func dedup(sorted []string) []string {
	out := sorted[:0]
	for _, s := range sorted {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}
