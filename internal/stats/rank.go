package stats

import "sort"

// RankDescending returns the indices of scores ordered from the highest
// score to the lowest. Ties break on the lower index, making the ranking
// deterministic.
func RankDescending(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// BordaAggregate combines several rankings of the same n items into a single
// consensus ranking using Borda's method (the rank-aggregation method the
// paper cites for fine-grained explanations, [26]): in each input ranking an
// item at position p (0-based, best first) receives n−p points; items are
// returned ordered by total points, best first. Ties break on the lower item
// index.
//
// Each ranking must be a permutation of 0..n−1; rankings of differing length
// are rejected by returning nil.
func BordaAggregate(rankings ...[]int) []int {
	if len(rankings) == 0 {
		return nil
	}
	n := len(rankings[0])
	points := make([]int, n)
	for _, r := range rankings {
		if len(r) != n {
			return nil
		}
		seen := make([]bool, n)
		for pos, item := range r {
			if item < 0 || item >= n || seen[item] {
				return nil
			}
			seen[item] = true
			points[item] += n - pos
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return points[idx[a]] > points[idx[b]] })
	return idx
}
