// Package cube implements a count-measure OLAP data cube: pre-computed
// group-by counts over every subset of a chosen attribute list. Sec 6 of
// the paper observes that "contingency tables with their marginals are
// essentially OLAP data-cubes", and Fig 6(d)/Fig 8(b) show that a
// pre-computed cube dramatically accelerates HypDB's entropy computations.
// This package is the stand-in for the PostgreSQL CUBE operator the paper
// used.
package cube

import (
	"context"
	"fmt"
	"math/bits"

	"hypdb/internal/dataset"
	"hypdb/internal/independence"
	"hypdb/internal/stats"
)

// MaxDimensions bounds the cube width; the paper notes database systems
// usually limit cubes to 12 attributes because the size is exponential.
const MaxDimensions = 20

// Cube holds count views for every subset of its dimension attributes.
type Cube struct {
	attrs   []string
	attrPos map[string]int
	views   map[uint64]map[string]int // mask -> composite key -> count
	n       int
}

// Build scans the table once for the finest view and derives all coarser
// views by marginalizing down the subset lattice.
func Build(t *dataset.Table, attrs []string) (*Cube, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("cube: need at least one dimension")
	}
	if len(attrs) > MaxDimensions {
		return nil, fmt.Errorf("cube: %d dimensions exceed the maximum of %d", len(attrs), MaxDimensions)
	}
	c := &Cube{
		attrs:   append([]string(nil), attrs...),
		attrPos: make(map[string]int, len(attrs)),
		views:   make(map[uint64]map[string]int),
		n:       t.NumRows(),
	}
	for i, a := range attrs {
		if !t.HasColumn(a) {
			return nil, fmt.Errorf("cube: no column %q", a)
		}
		if _, dup := c.attrPos[a]; dup {
			return nil, fmt.Errorf("cube: duplicate dimension %q", a)
		}
		c.attrPos[a] = i
	}

	// Finest view: one scan.
	counts, _, err := t.Counts(attrs...)
	if err != nil {
		return nil, err
	}
	full := uint64(1)<<len(attrs) - 1
	fullView := make(map[string]int, len(counts))
	for k, v := range counts {
		fullView[string(k)] = v
	}
	c.views[full] = fullView

	// Derive coarser views in decreasing popcount order: each mask is
	// computed from a parent with exactly one more attribute.
	for pc := len(attrs) - 1; pc >= 0; pc-- {
		for mask := uint64(0); mask <= full; mask++ {
			if bits.OnesCount64(mask) != pc {
				continue
			}
			// Parent: mask plus the lowest absent attribute.
			extra := -1
			for i := 0; i < len(attrs); i++ {
				if mask&(1<<i) == 0 {
					extra = i
					break
				}
			}
			parentMask := mask | 1<<extra
			parent := c.views[parentMask]
			c.views[mask] = marginalize(parent, parentMask, extra)
		}
	}
	return c, nil
}

// marginalize sums out the attribute at bit position drop from a view whose
// keys are composed of 4-byte fields for each set bit of parentMask, in
// ascending bit order.
func marginalize(parent map[string]int, parentMask uint64, drop int) map[string]int {
	// Field offset of drop within the parent's key layout.
	field := 0
	for i := 0; i < drop; i++ {
		if parentMask&(1<<i) != 0 {
			field++
		}
	}
	off := field * 4
	out := make(map[string]int, len(parent)/2+1)
	for k, v := range parent {
		child := k[:off] + k[off+4:]
		out[child] += v
	}
	return out
}

// mask computes the bitmask of an attribute subset; ok is false when some
// attribute is not a cube dimension.
func (c *Cube) mask(attrs []string) (uint64, bool) {
	var m uint64
	for _, a := range attrs {
		p, ok := c.attrPos[a]
		if !ok {
			return 0, false
		}
		m |= 1 << p
	}
	return m, true
}

// Covers reports whether every attribute is a cube dimension.
func (c *Cube) Covers(attrs []string) bool {
	_, ok := c.mask(attrs)
	return ok
}

// Counts returns the count histogram of the attribute subset. The map keys
// are the cube's internal composite keys; only the count values are
// meaningful to callers (which is all entropy and distinct-count need).
// ok is false when the subset is not covered.
func (c *Cube) Counts(attrs []string) (map[string]int, bool) {
	m, ok := c.mask(attrs)
	if !ok {
		return nil, false
	}
	view, ok := c.views[m]
	return view, ok
}

// NumRows returns the row count of the cubed table.
func (c *Cube) NumRows() int { return c.n }

// NumViews returns the number of materialized views (2^dims).
func (c *Cube) NumViews() int { return len(c.views) }

// Cells returns the total number of stored cells across all views, a
// memory-footprint proxy.
func (c *Cube) Cells() int {
	total := 0
	for _, v := range c.views {
		total += len(v)
	}
	return total
}

// Provider adapts the cube to independence.EntropyProvider, falling back to
// scanning the table for subsets the cube does not cover.
type Provider struct {
	Cube     *Cube
	Fallback independence.EntropyProvider
	Est      stats.Estimator
}

// NewProvider builds a cube-backed provider; fallback answers attribute
// sets the cube does not cover (typically a RelationProvider over the
// backing store).
func NewProvider(c *Cube, fallback independence.EntropyProvider, est stats.Estimator) *Provider {
	return &Provider{Cube: c, Fallback: fallback, Est: est}
}

// JointEntropy implements independence.EntropyProvider.
func (p *Provider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	if counts, ok := p.Cube.Counts(attrs); ok {
		return stats.EntropyCountsMap(counts, p.Cube.NumRows(), p.Est), nil
	}
	return p.Fallback.JointEntropy(ctx, attrs)
}

// DistinctCount implements independence.EntropyProvider.
func (p *Provider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	if counts, ok := p.Cube.Counts(attrs); ok {
		return len(counts), nil
	}
	return p.Fallback.DistinctCount(ctx, attrs)
}

// NumRows implements independence.EntropyProvider.
func (p *Provider) NumRows() int { return p.Cube.NumRows() }
