package independence

import (
	"context"

	"math"
	"strconv"
	"sync"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

// TestMITSkipsUninformativeGroups: groups where X or Y is constant carry no
// permutation information and must not dilute the statistic.
func TestMITSkipsUninformativeGroups(t *testing.T) {
	b := dataset.NewBuilder("X", "Y", "Z")
	// Group z=0: strong dependence, both variables vary.
	pattern := [][2]string{{"0", "0"}, {"0", "0"}, {"1", "1"}, {"1", "1"}, {"0", "1"}}
	for i := 0; i < 40; i++ {
		p := pattern[i%len(pattern)]
		b.MustAdd(p[0], p[1], "0")
	}
	// Group z=1: X constant — uninformative under any permutation.
	for i := 0; i < 200; i++ {
		b.MustAdd("0", strconv.Itoa(i%2), "1")
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MIT{Permutations: 400, Seed: 5, Est: stats.PlugIn}.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 1 {
		t.Errorf("informative groups = %d, want 1 (constant-X group skipped)", res.Groups)
	}
	if res.PValue > 0.05 {
		t.Errorf("dependence in the informative group missed: p = %v", res.PValue)
	}
}

// TestMITSingleGroupConditioning: a conditioning attribute with one value
// degenerates to the unconditional test.
func TestMITSingleGroupConditioning(t *testing.T) {
	tab := chainData(t, 500, 30)
	// Add a constant column.
	constCol := make([]string, tab.NumRows())
	for i := range constCol {
		constCol[i] = "c"
	}
	cols := []*dataset.Column{dataset.NewColumnFromStrings("C", constCol)}
	for _, name := range tab.Columns() {
		c, err := tab.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c)
	}
	tab2, err := dataset.New(cols...)
	if err != nil {
		t.Fatal(err)
	}
	unconditional, err := MIT{Permutations: 300, Seed: 6, Est: stats.PlugIn}.Test(context.Background(), mem.New(tab2), "X", "Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	conditional, err := MIT{Permutations: 300, Seed: 6, Est: stats.PlugIn}.Test(context.Background(), mem.New(tab2), "X", "Y", []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(unconditional.MI-conditional.MI) > 1e-12 {
		t.Errorf("MI differs: %v vs %v", unconditional.MI, conditional.MI)
	}
	if unconditional.PValue != conditional.PValue {
		t.Errorf("p-values differ: %v vs %v", unconditional.PValue, conditional.PValue)
	}
}

// TestCachedProviderConcurrentAccess exercises the cache under parallel
// use (the Parallel analysis path shares providers across goroutines).
func TestCachedProviderConcurrentAccess(t *testing.T) {
	tab := chainData(t, 400, 31)
	p := NewCachedProvider(relProv(t, tab, stats.MillerMadow))
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := p.JointEntropy(context.Background(), []string{"X", "Y", "Z"})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = h
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if results[i] != results[0] {
			t.Fatalf("concurrent entropy values differ: %v vs %v", results[i], results[0])
		}
	}
}

// TestHyMITWithProviderConsistency: supplying a cached provider must not
// change the chi2-branch verdict.
func TestHyMITWithProviderConsistency(t *testing.T) {
	tab := chainData(t, 3000, 32)
	bare := HyMIT{Permutations: 100, Seed: 7, Est: stats.MillerMadow}
	cached := HyMIT{Permutations: 100, Seed: 7, Est: stats.MillerMadow,
		Provider: NewCachedProvider(relProv(t, tab, stats.MillerMadow))}
	r1, err := bare.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cached.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Method != r2.Method || r1.PValue != r2.PValue {
		t.Errorf("provider changed the verdict: %+v vs %+v", r1, r2)
	}
}

// TestShuffleMatchesChiSquareVerdicts: on comfortable sample sizes the
// nonparametric and parametric tests agree on clear-cut cases.
func TestShuffleMatchesChiSquareVerdicts(t *testing.T) {
	dep := chainData(t, 600, 33)
	s := Shuffle{Permutations: 300, Seed: 8, Est: stats.PlugIn}
	c := ChiSquare{Est: stats.MillerMadow}
	rs, err := s.Test(context.Background(), mem.New(dep), "X", "Z", nil) // X directly caused by Z
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Test(context.Background(), mem.New(dep), "X", "Z", nil)
	if err != nil {
		t.Fatal(err)
	}
	if Decision(rs, 0.01) != Decision(rc, 0.01) {
		t.Errorf("verdicts disagree: shuffle p=%v, chi2 p=%v", rs.PValue, rc.PValue)
	}
}
