package hypdb_test

// Backend-equivalence regression suite: the paper-fidelity scenarios of
// paperrepro_test.go run a second time through the source/sqldb backend —
// served by the in-process memsql database/sql driver — and their
// qualitative conclusions must be identical to the in-memory backend's:
// bias verdicts, discovered covariates and mediators, explanation rankings
// and responsibilities, effect directions and magnitudes (4 decimals), and
// significance verdicts.
//
// Monte-Carlo p-values from the MIT branch are excluded from the byte
// comparison: the SQL backend sorts dictionaries (DISTINCT has no stable
// order) while the in-memory backend codes by first occurrence, so the
// Patefield draws consume the RNG in a different category order. The
// statistic and every χ²-branch p-value are order-insensitive and compare
// exactly.

import (
	"context"
	"encoding/json"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
	"hypdb/internal/memsql"
)

// sqlBackedDB registers tab with the in-process SQL driver and opens a
// hypdb session over it through the sqldb backend.
func sqlBackedDB(t *testing.T, name string, tab *hypdb.Table) *hypdb.DB {
	t.Helper()
	memsql.Register(name, tab)
	t.Cleanup(func() { memsql.Unregister(name) })
	conn, err := memsql.Open("")
	if err != nil {
		t.Fatal(err)
	}
	db, err := hypdb.OpenSQL(context.Background(), conn, name)
	if err != nil {
		conn.Close()
		t.Fatalf("OpenSQL(%s): %v", name, err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close(%s): %v", name, err)
		}
	})
	return db
}

// qualitative strips the Monte-Carlo-sensitive fields, leaving the
// conclusions the golden files pin. Deterministic (χ²-branch) effects keep
// their significance verdict; Monte-Carlo effects (MIT branch, where the
// sampled group subset is backend-dependent) keep only direction and
// magnitude.
func qualitative(s *reproSummary) *reproSummary {
	cp := *s
	mask := func(e *effectSummary) *effectSummary {
		if e == nil {
			return nil
		}
		m := *e
		m.PValue = 0
		if m.MC {
			m.Significant = false
		}
		return &m
	}
	cp.Original = mask(s.Original)
	cp.RewrittenTotal = mask(s.RewrittenTotal)
	cp.RewrittenDirect = mask(s.RewrittenDirect)
	return &cp
}

func assertBackendEquivalent(t *testing.T, memSummary, sqlSummary *reproSummary) {
	t.Helper()
	want, err := json.MarshalIndent(qualitative(memSummary), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(qualitative(sqlSummary), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("sqldb backend diverged from mem backend\n sqldb: %s\n   mem: %s", got, want)
	}
}

func TestPaperReproSQLBerkeley(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	memS := analyzeSummary(t, "BerkeleyData", tab, datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	db := sqlBackedDB(t, "BerkeleyData", tab)
	sqlS := analyzeSummaryOn(t, "BerkeleyData", db, tab.NumRows(), datagen.BerkeleyQuery(), hypdb.WithSeed(1))
	assertBackendEquivalent(t, memS, sqlS)
	if !sqlS.Biased || len(sqlS.Mediators) != 1 || sqlS.Mediators[0] != "Department" {
		t.Errorf("sqldb Berkeley conclusions drifted: biased=%v mediators=%v", sqlS.Biased, sqlS.Mediators)
	}
}

func TestPaperReproSQLStaples(t *testing.T) {
	const rows = 50000
	tab, err := datagen.Staples(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	memS := analyzeSummary(t, "StaplesData", tab, datagen.StaplesQuery(), hypdb.WithSeed(1))
	db := sqlBackedDB(t, "StaplesData", tab)
	sqlS := analyzeSummaryOn(t, "StaplesData", db, rows, datagen.StaplesQuery(), hypdb.WithSeed(1))
	assertBackendEquivalent(t, memS, sqlS)
	if !sqlS.Biased || len(sqlS.Mediators) != 1 || sqlS.Mediators[0] != "Distance" {
		t.Errorf("sqldb Staples conclusions drifted: biased=%v mediators=%v", sqlS.Biased, sqlS.Mediators)
	}
}

func TestPaperReproSQLFlight(t *testing.T) {
	const rows = 12000
	tab, err := datagen.Flight(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := []hypdb.Option{hypdb.WithSeed(1), hypdb.WithPermutations(200)}
	memS := analyzeSummary(t, "FlightData", tab, datagen.FlightQuery(), opts...)
	db := sqlBackedDB(t, "FlightData", tab)
	sqlS := analyzeSummaryOn(t, "FlightData", db, rows, datagen.FlightQuery(), opts...)
	assertBackendEquivalent(t, memS, sqlS)
	// The Fig 1 reversal must hold on the SQL backend too.
	if sqlS.Original == nil || sqlS.Original.Diff <= 0 || sqlS.RewrittenDirect == nil || sqlS.RewrittenDirect.Diff >= 0 {
		t.Errorf("sqldb Flight reversal drifted: original=%+v direct=%+v", sqlS.Original, sqlS.RewrittenDirect)
	}
}

func TestPaperReproSQLFlightFixedCovariates(t *testing.T) {
	const rows = 12000
	tab, err := datagen.Flight(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := []hypdb.Option{
		hypdb.WithSeed(1), hypdb.WithPermutations(200),
		hypdb.WithCovariates(datagen.FlightCovariates()...), hypdb.WithoutDirectEffect(),
	}
	memS := analyzeSummary(t, "FlightData-fixed-covariates", tab, datagen.FlightQuery(), opts...)
	db := sqlBackedDB(t, "FlightDataFixed", tab)
	sqlS := analyzeSummaryOn(t, "FlightData-fixed-covariates", db, rows, datagen.FlightQuery(), opts...)
	assertBackendEquivalent(t, memS, sqlS)
	// The Fig 5a rewrite must reverse on the SQL backend too.
	if sqlS.RewrittenTotal == nil || sqlS.RewrittenTotal.Diff >= 0 {
		t.Errorf("sqldb adjusted total effect = %+v, want reversed", sqlS.RewrittenTotal)
	}
}
