package source

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hypdb/internal/dataset"
)

// composite exposes a base relation plus one virtual attribute holding the
// joint (composite) value of a set of base attributes. The engine's balance
// test (Def 3.1) tests the treatment against the joint value of a variable
// set V; this wrapper lets that test run through the ordinary Tester
// machinery on any backend, entirely from counts.
type composite struct {
	base  Relation
	name  string
	parts []string

	mu     sync.Mutex
	labels []string          // composite dictionary: code -> synthetic label
	codeOf map[Key]int32     // parts-key (in parts order) -> composite code
	parent map[int32][]int32 // composite code -> constituent part codes
}

// WithComposite returns rel extended with a virtual attribute named name
// whose value is the joint value of parts. The composite dictionary is
// built lazily from one group-by over parts and assigns codes in sorted
// constituent-key order, so it is deterministic per handle. The wrapper is
// counts-only (it does not forward Materializer).
func WithComposite(rel Relation, name string, parts []string) (Relation, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("source: composite attribute %q needs at least one constituent", name)
	}
	if rel.HasAttribute(name) {
		return nil, fmt.Errorf("source: relation %q already has an attribute %q", rel.Name(), name)
	}
	if err := CheckAttrs(rel, parts...); err != nil {
		return nil, err
	}
	return &composite{base: rel, name: name, parts: append([]string(nil), parts...)}, nil
}

func (c *composite) Name() string { return c.base.Name() }

func (c *composite) Backend() string {
	return c.base.Backend() + "|composite:" + c.name + "(" + strings.Join(c.parts, ",") + ")"
}

func (c *composite) Attributes() []string { return append(c.base.Attributes(), c.name) }

func (c *composite) HasAttribute(name string) bool {
	return name == c.name || c.base.HasAttribute(name)
}

func (c *composite) NumRows(ctx context.Context) (int, error) { return c.base.NumRows(ctx) }

// build materializes the composite dictionary from one group-by on parts.
func (c *composite) build(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.codeOf != nil {
		return nil
	}
	counts, err := c.base.Counts(ctx, c.parts, nil)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	c.codeOf = make(map[Key]int32, len(keys))
	c.parent = make(map[int32][]int32, len(keys))
	c.labels = make([]string, len(keys))
	for i, k := range keys {
		code := int32(i)
		c.codeOf[Key(k)] = code
		c.parent[code] = Key(k).Codes()
		c.labels[i] = "v" + strconv.Itoa(i)
	}
	return nil
}

func (c *composite) Labels(ctx context.Context, attr string) ([]string, error) {
	if attr != c.name {
		return c.base.Labels(ctx, attr)
	}
	if err := c.build(ctx); err != nil {
		return nil, err
	}
	return c.labels, nil
}

func (c *composite) Counts(ctx context.Context, attrs []string, where Predicate) (map[Key]int, error) {
	pos := -1
	for i, a := range attrs {
		if a == c.name {
			if pos >= 0 {
				return nil, fmt.Errorf("source: composite attribute %q requested twice", c.name)
			}
			pos = i
		}
	}
	if pos < 0 {
		return c.base.Counts(ctx, attrs, where)
	}
	if err := c.build(ctx); err != nil {
		return nil, err
	}
	// Expand the composite into its constituents, query the base, then fold
	// each constituent tuple back into one composite code.
	expanded := make([]string, 0, len(attrs)-1+len(c.parts))
	expanded = append(expanded, attrs[:pos]...)
	expanded = append(expanded, c.parts...)
	expanded = append(expanded, attrs[pos+1:]...)
	raw, err := c.base.Counts(ctx, expanded, where)
	if err != nil {
		return nil, err
	}
	np := len(c.parts)
	out := make(map[Key]int, len(raw))
	for k, n := range raw {
		code, ok := c.codeOf[k.Slice(pos, pos+np)]
		if !ok {
			// A constituent combination absent from the dictionary-building
			// pass: impossible for a consistent backend (the dictionary was
			// built over the unrestricted relation).
			return nil, fmt.Errorf("source: composite %q: unseen constituent combination in counts", c.name)
		}
		folded := string(k.Slice(0, pos)) + string(dataset.EncodeKey(code)) + string(k.Slice(pos+np, k.Fields()))
		out[Key(folded)] += n
	}
	return out, nil
}

func (c *composite) Restrict(ctx context.Context, where Predicate) (Relation, error) {
	if where == nil {
		return c, nil
	}
	base, err := c.base.Restrict(ctx, where)
	if err != nil {
		return nil, err
	}
	return WithComposite(base, c.name, c.parts)
}
