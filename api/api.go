// Package api defines the JSON wire types of the hypdbd analysis service
// and a thin typed client for it.
//
// The service exposes the full HypDB pipeline over HTTP:
//
//	POST   /v1/datasets              upload a CSV, creating a named dataset
//	GET    /v1/datasets              list datasets
//	GET    /v1/datasets/{name}/stats schema, size and cache counters
//	POST   /v1/datasets/{name}/append  stream rows into a sharded dataset
//	POST   /v1/datasets/{name}/counts  dictionary-coded group-by counts
//	                                   (the remote-shard transport; wire
//	                                   types live in hypdb/source/remote)
//	DELETE /v1/datasets/{name}       drop a dataset
//	POST   /v1/analyze               analyze one query
//	POST   /v1/analyze/batch         analyze a batch over a shared worker pool
//	POST   /v1/audit                 sweep the dataset's query lattice for bias
//	GET    /v1/metrics               service-wide counters
//	GET    /healthz                  liveness
//
// Every response body is JSON. Failures carry an Error envelope
// {"error":{"code":...,"message":...}}; the typed Client surfaces them as
// *Error values, so callers switch on Code (or the HTTP Status) rather than
// parsing message text. Request WHERE clauses are SQL-style predicate text,
// parsed server-side by hypdb.ParsePredicate.
package api

import (
	"fmt"
	"time"

	"hypdb"
)

// Error is the service's error envelope. It implements error on the client
// side; Status is the HTTP status code the server responded with.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds, when positive, is the server's backoff hint for
	// 429 rate_limited / 503 overloaded responses: how long to wait before
	// a retry has a chance of being admitted. The server sends it both in
	// this envelope and as the standard Retry-After header; the typed
	// client fills the field from either.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("hypdbd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// RetryAfter returns the server's backoff hint as a duration, zero when
// the response carried none.
func (e *Error) RetryAfter() time.Duration {
	if e.RetryAfterSeconds <= 0 {
		return 0
	}
	return time.Duration(e.RetryAfterSeconds * float64(time.Second))
}

// Error codes returned by the service.
const (
	CodeBadRequest         = "bad_request"           // malformed JSON, bad names, bad parameters
	CodeMalformedCSV       = "malformed_csv"         // upload body is not loadable CSV
	CodeBadPredicate       = "bad_predicate"         // WHERE clause failed to parse
	CodeUnknownAttribute   = "unknown_attribute"     // query references a missing column
	CodeEmptySelection     = "empty_selection"       // WHERE clause selects no rows
	CodeEmptyTable         = "empty_table"           // independence test over zero rows
	CodeNonBinaryTreatment = "non_binary_treatment"  // comparison needs exactly two treatment values
	CodeNonNumericOutcome  = "non_numeric_outcome"   // outcome attribute has values avg() cannot parse
	CodeNoOverlap          = "no_overlap"            // rewriting impossible: no block has every treatment value
	CodeNeedsMaterialize   = "needs_materialization" // row-level analysis on a counts-only storage backend
	CodeNotAppendable      = "not_appendable"        // append to a dataset whose backend cannot grow
	CodePeerUnavailable    = "peer_unavailable"      // a remote shard peer is down past its retry budget
	CodePeerAuth           = "peer_auth"             // a remote shard peer rejected this node's credentials
	CodeVersionSkew        = "version_skew"          // peer snapshot version differs from the one pinned
	CodeDatasetNotFound    = "dataset_not_found"
	CodeDatasetExists      = "dataset_exists"
	CodeTooManyDatasets    = "too_many_datasets"
	CodeBodyTooLarge       = "body_too_large" // request body exceeds the server's limit
	CodeTimeout            = "timeout"        // request exceeded the server's analysis timeout
	CodeShuttingDown       = "shutting_down"  // server is draining; request was cancelled
	CodeUnauthorized       = "unauthorized"   // missing or unknown bearer token (HTTP 401)
	CodeForbidden          = "forbidden"      // token scope does not allow the operation (HTTP 403)
	CodeRateLimited        = "rate_limited"   // client token bucket empty (HTTP 429 + Retry-After)
	CodeOverloaded         = "overloaded"     // admission queue full or deadline unmeetable (HTTP 503 + Retry-After)
	CodeInternal           = "internal"
)

// errorEnvelope is the wire shape of a failure response.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

// ---------------------------------------------------------------------------
// Datasets

// CreateDatasetRequest registers a named dataset. Exactly one storage form
// is used:
//
//   - CSV: an inline CSV body (header row required); the dataset is loaded
//     into the in-memory backend. Alternatively the endpoint accepts a raw
//     text/csv body with the name in the `name` query parameter.
//   - Driver/DSN/SQLTable: the dataset is served by the SQL backend — the
//     server opens the database/sql driver with the DSN and pushes group-by
//     count aggregation down to it. The driver must be compiled into the
//     server binary.
type CreateDatasetRequest struct {
	Name string `json:"name"`
	CSV  string `json:"csv,omitempty"`

	// Driver is the database/sql driver name (e.g. "postgres", "memsql").
	Driver string `json:"driver,omitempty"`
	// DSN is the driver-specific data source name.
	DSN string `json:"dsn,omitempty"`
	// SQLTable is the table within the database to analyze.
	SQLTable string `json:"sql_table,omitempty"`

	// Shards, when > 1, serves an uploaded CSV through the sharded
	// partition-parallel backend with that many horizontal partitions —
	// group-by counts fan out to the shards concurrently, and the dataset
	// accepts streaming appends (POST /v1/datasets/{name}/append). Ignored
	// for SQL-backed datasets. Zero uses the server's default (-shards).
	Shards int `json:"shards,omitempty"`
}

// DatasetInfo summarizes one dataset.
type DatasetInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Backend names the storage backend serving the dataset: "mem" for
	// uploaded CSV, "sharded" for partition-parallel uploads, "sqldb" for
	// DSN-registered SQL tables.
	Backend   string    `json:"backend,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// Shards is the number of horizontal partitions of a sharded dataset
	// (it grows as appends admit delta partitions); zero for unsharded
	// backends.
	Shards int `json:"shards,omitempty"`
	// Version is a sharded dataset's snapshot version: 1 at registration,
	// incremented by every non-empty append. Zero for unsharded backends.
	Version uint64 `json:"version,omitempty"`
	// Peers lists the base URLs of the hypdbd peers serving a
	// remote-sharded dataset (backend "remote"); empty otherwise.
	Peers []string `json:"peers,omitempty"`
}

// AppendRequest is the POST /v1/datasets/{name}/append body: rows to
// ingest, each with one string value per attribute in schema order.
type AppendRequest struct {
	Rows [][]string `json:"rows"`
}

// AppendResponse reports one streaming ingestion: rows admitted, the
// dataset's new total, and the new snapshot version. In-flight analyses
// keep the snapshot they started on; the appended rows are visible to
// requests arriving after the response.
type AppendResponse struct {
	Appended int    `json:"appended"`
	Rows     int    `json:"rows"`
	Version  uint64 `json:"version"`
}

// DatasetList is the GET /v1/datasets response.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// AttributeInfo describes one column of a dataset.
type AttributeInfo struct {
	Name     string `json:"name"`
	Distinct int    `json:"distinct"`
}

// CacheStats reports a dataset session's covariate-discovery cache
// activity: Computes counts discoveries actually executed, Hits counts
// calls answered from the memoized result (including waits on an in-flight
// computation).
type CacheStats struct {
	CDComputes int `json:"cd_computes"`
	CDHits     int `json:"cd_hits"`
}

// DatasetStats is the GET /v1/datasets/{name}/stats response.
type DatasetStats struct {
	DatasetInfo
	Attributes []AttributeInfo `json:"attributes"`
	Cache      CacheStats      `json:"cache"`
	// Analyses counts analyze requests (batch items included) served over
	// this dataset.
	Analyses int64 `json:"analyses"`
}

// ---------------------------------------------------------------------------
// Analysis requests

// Query is the wire form of the group-by-average OLAP query: SELECT
// treatment, groupings, avg(outcomes...) FROM dataset WHERE where GROUP BY
// treatment, groupings.
type Query struct {
	Treatment string   `json:"treatment"`
	Groupings []string `json:"groupings,omitempty"`
	Outcomes  []string `json:"outcomes"`
	// Where is a SQL-style predicate, e.g. `Carrier IN ('AA','UA') AND
	// Airport = 'ROC'`; empty selects every row.
	Where string `json:"where,omitempty"`
}

// ToQuery converts the wire query into the library's form, parsing the
// WHERE clause.
func (q Query) ToQuery(dataset string) (hypdb.Query, error) {
	out := hypdb.Query{
		Table:     dataset,
		Treatment: q.Treatment,
		Groupings: q.Groupings,
		Outcomes:  q.Outcomes,
	}
	if q.Where != "" {
		pred, err := hypdb.ParsePredicate(q.Where)
		if err != nil {
			return hypdb.Query{}, err
		}
		out.Where = pred
	}
	return out, nil
}

// Options tunes an analysis. The zero value reproduces the paper's setup
// (HyMIT, α = 0.01, 1000 permutations, serial replicates).
type Options struct {
	// Method selects the conditional-independence test: "hymit" (default),
	// "chi2", "mit" or "mit-sampling".
	Method string `json:"method,omitempty"`
	// Alpha is the significance level; zero means 0.01.
	Alpha float64 `json:"alpha,omitempty"`
	// Permutations is the Monte-Carlo replicate count; zero means 1000.
	Permutations int `json:"permutations,omitempty"`
	// Seed fixes every Monte-Carlo component; results for one seed are
	// deterministic regardless of Parallel.
	Seed int64 `json:"seed,omitempty"`
	// Parallel fans permutation replicates over the server's cores. Leave
	// it off for throughput under concurrent load.
	Parallel bool `json:"parallel,omitempty"`
	// SkipDirect disables mediator discovery and the direct-effect
	// rewriting.
	SkipDirect bool `json:"skip_direct,omitempty"`
	// Covariates overrides automatic covariate discovery.
	Covariates []string `json:"covariates,omitempty"`
	// Mediators overrides automatic mediator discovery.
	Mediators []string `json:"mediators,omitempty"`
	// Baseline fixes the treatment value whose mediator distribution the
	// direct-effect rewriting holds constant; empty selects the smallest.
	Baseline string `json:"baseline,omitempty"`
	// FineAttrs / FineTopK shape the explanation sections (both default 2).
	FineAttrs int `json:"fine_attrs,omitempty"`
	FineTopK  int `json:"fine_top_k,omitempty"`
	// MaxCondSet caps conditioning-set sizes in the CD search.
	MaxCondSet int `json:"max_cond_set,omitempty"`
	// MaxBoundary caps Markov-boundary growth.
	MaxBoundary int `json:"max_boundary,omitempty"`
	// Workers bounds the batch worker pool (batch requests only). The
	// server reads it directly — clamped to the dataset's concurrency
	// limit — so ToOptions does not convert it.
	Workers int `json:"workers,omitempty"`
}

// ToOptions converts the wire options into the library's functional
// options. Unknown methods are rejected.
func (o Options) ToOptions() ([]hypdb.Option, error) {
	var opts []hypdb.Option
	switch o.Method {
	case "", "hymit":
		opts = append(opts, hypdb.WithMethod(hypdb.HyMIT))
	case "chi2":
		opts = append(opts, hypdb.WithMethod(hypdb.ChiSquared))
	case "mit":
		opts = append(opts, hypdb.WithMethod(hypdb.MIT))
	case "mit-sampling":
		opts = append(opts, hypdb.WithMethod(hypdb.MITSampling))
	default:
		return nil, fmt.Errorf("unknown method %q (want hymit, chi2, mit or mit-sampling)", o.Method)
	}
	if o.Alpha != 0 {
		opts = append(opts, hypdb.WithAlpha(o.Alpha))
	}
	if o.Permutations != 0 {
		opts = append(opts, hypdb.WithPermutations(o.Permutations))
	}
	if o.Seed != 0 {
		opts = append(opts, hypdb.WithSeed(o.Seed))
	}
	if o.Parallel {
		opts = append(opts, hypdb.WithParallel(true))
	}
	if o.SkipDirect {
		opts = append(opts, hypdb.WithoutDirectEffect())
	}
	if len(o.Covariates) > 0 {
		opts = append(opts, hypdb.WithCovariates(o.Covariates...))
	}
	if len(o.Mediators) > 0 {
		opts = append(opts, hypdb.WithMediators(o.Mediators...))
	}
	if o.Baseline != "" {
		opts = append(opts, hypdb.WithBaseline(o.Baseline))
	}
	if o.FineAttrs != 0 || o.FineTopK != 0 {
		opts = append(opts, hypdb.WithExplanations(o.FineAttrs, o.FineTopK))
	}
	if o.MaxCondSet != 0 {
		opts = append(opts, hypdb.WithMaxCondSet(o.MaxCondSet))
	}
	if o.MaxBoundary != 0 {
		opts = append(opts, hypdb.WithMaxBoundary(o.MaxBoundary))
	}
	return opts, nil
}

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	Dataset string  `json:"dataset"`
	Query   Query   `json:"query"`
	Options Options `json:"options,omitempty"`
}

// AuditSpec is the wire form of a lattice-sweep configuration: which
// attributes may play the treatment and outcome roles, the population
// restriction, and the support/cardinality filters. The zero value sweeps
// every eligible attribute pair with the server defaults.
type AuditSpec struct {
	// Treatments / Outcomes restrict the sweep roles; empty sweeps every
	// eligible attribute (treatments of cardinality 2..max_treatment_card;
	// numeric outcomes of cardinality 2..max_outcome_card).
	Treatments []string `json:"treatments,omitempty"`
	Outcomes   []string `json:"outcomes,omitempty"`
	// Where is a SQL-style predicate restricting the audited population.
	Where string `json:"where,omitempty"`
	// MinSupport prunes candidates whose smaller compared treatment group
	// has fewer rows (default 50); pruned candidates are listed in the
	// report.
	MinSupport int `json:"min_support,omitempty"`
	// MaxTreatmentCard / MaxOutcomeCard bound candidate cardinalities
	// (defaults 10 and 24).
	MaxTreatmentCard int `json:"max_treatment_card,omitempty"`
	MaxOutcomeCard   int `json:"max_outcome_card,omitempty"`
	// TopK caps the ranked findings list; zero keeps all.
	TopK int `json:"top_k,omitempty"`
	// Workers bounds the sweep's worker pool, clamped to the dataset's
	// concurrency limit.
	Workers int `json:"workers,omitempty"`
}

// AuditRequest is the POST /v1/audit body.
type AuditRequest struct {
	Dataset string    `json:"dataset"`
	Spec    AuditSpec `json:"spec,omitempty"`
	Options Options   `json:"options,omitempty"`
}

// AuditFinding is one biased candidate query of an audit sweep.
type AuditFinding struct {
	Treatment string `json:"treatment"`
	Outcome   string `json:"outcome"`
	// T0 and T1 are the compared treatment values (diffs are
	// avg(T1) − avg(T0)).
	T0 string `json:"t0"`
	T1 string `json:"t1"`
	// SQL is the audited query's Listing 1 rendering, self-contained
	// (including the sweep's WHERE and any treatment-value restriction).
	SQL string `json:"sql"`
	// Support is the smaller compared group's row count.
	Support int `json:"support"`
	// Covariates (Z) and Mediators (M) are the discovered adjustment sets.
	Covariates []string `json:"covariates,omitempty"`
	Mediators  []string `json:"mediators,omitempty"`
	// MI / PValue report the strongest rejecting balance test.
	MI       float64 `json:"mi"`
	PValue   float64 `json:"p_value"`
	PValueCI float64 `json:"p_value_ci,omitempty"`
	// OriginalDiff is the naive effect; AdjustedDiff the bias-removing
	// estimate (absent when no rewriting was possible) and AdjustedKind
	// names the rewriting used ("total" or "direct").
	OriginalDiff float64  `json:"original_diff"`
	AdjustedDiff *float64 `json:"adjusted_diff,omitempty"`
	AdjustedKind string   `json:"adjusted_kind,omitempty"`
	// Reversed marks an effect reversal (the Simpson's-paradox signature);
	// Score is the ranking key.
	Reversed bool    `json:"reversed"`
	Score    float64 `json:"score"`
	// Responsible ranks the adjustment-set members by their share of the
	// bias.
	Responsible []Responsibility `json:"responsible,omitempty"`
	Note        string           `json:"note,omitempty"`
}

// AuditUnbiased records an evaluated candidate that passed the balance
// test.
type AuditUnbiased struct {
	Treatment string  `json:"treatment"`
	Outcome   string  `json:"outcome"`
	PValue    float64 `json:"p_value"`
	Note      string  `json:"note,omitempty"`
}

// AuditPruned records a candidate excluded by the support filter.
type AuditPruned struct {
	Treatment string `json:"treatment"`
	Outcome   string `json:"outcome"`
	Reason    string `json:"reason"`
	Support   int    `json:"support"`
}

// AuditExcluded records an attribute kept out of a sweep role.
type AuditExcluded struct {
	Attr   string `json:"attr"`
	Role   string `json:"role"`
	Reason string `json:"reason"`
}

// AuditReport is the POST /v1/audit response. Every enumerated candidate
// is accounted for: candidates == evaluated + len(pruned), and evaluated
// == total_findings + len(unbiased).
type AuditReport struct {
	Treatments []string        `json:"treatments"`
	Outcomes   []string        `json:"outcomes"`
	Excluded   []AuditExcluded `json:"excluded,omitempty"`
	Candidates int             `json:"candidates"`
	Evaluated  int             `json:"evaluated"`
	// Findings are the biased queries ranked by effect-reversal strength
	// and significance (capped at the spec's top_k; TotalFindings is the
	// uncapped count).
	Findings      []AuditFinding  `json:"findings"`
	TotalFindings int             `json:"total_findings"`
	Unbiased      []AuditUnbiased `json:"unbiased,omitempty"`
	Pruned        []AuditPruned   `json:"pruned,omitempty"`
	ElapsedMS     float64         `json:"elapsed_ms"`
	// Degraded is true when the sweep was answered with at least one remote
	// shard missing (degraded reads): every statistic may rest on partial
	// counts and the report must be treated as stale.
	Degraded bool `json:"degraded,omitempty"`
	// Text is the human-readable ranked table, as the CLI prints it.
	Text string `json:"text,omitempty"`
}

// AuditReportFromCore converts a library audit report into its wire form.
func AuditReportFromCore(r *hypdb.AuditReport) *AuditReport {
	if r == nil {
		return nil
	}
	out := &AuditReport{
		Treatments:    r.Treatments,
		Outcomes:      r.Outcomes,
		Candidates:    r.Candidates,
		Evaluated:     r.Evaluated,
		TotalFindings: r.TotalFindings,
		ElapsedMS:     float64(r.Elapsed.Microseconds()) / 1000,
		Degraded:      r.Degraded,
		Text:          r.String(),
	}
	for _, e := range r.Excluded {
		out.Excluded = append(out.Excluded, AuditExcluded{Attr: e.Attr, Role: e.Role, Reason: e.Reason})
	}
	out.Findings = make([]AuditFinding, 0, len(r.Findings))
	for _, f := range r.Findings {
		wf := AuditFinding{
			Treatment: f.Treatment, Outcome: f.Outcome,
			T0: f.T0, T1: f.T1,
			SQL:        f.SQL,
			Support:    f.Support,
			Covariates: f.Covariates, Mediators: f.Mediators,
			MI: f.MI, PValue: f.PValue, PValueCI: f.PValueCI,
			OriginalDiff: f.OriginalDiff,
			AdjustedKind: f.AdjustedKind,
			Reversed:     f.Reversed,
			Score:        f.Score,
			Note:         f.Note,
		}
		if f.HasAdjusted {
			adj := f.AdjustedDiff
			wf.AdjustedDiff = &adj
		}
		for _, resp := range f.Responsible {
			wf.Responsible = append(wf.Responsible, Responsibility{Attr: resp.Attr, Rho: resp.Rho, MI: resp.MI})
		}
		out.Findings = append(out.Findings, wf)
	}
	for _, u := range r.Unbiased {
		out.Unbiased = append(out.Unbiased, AuditUnbiased{
			Treatment: u.Treatment, Outcome: u.Outcome, PValue: u.PValue, Note: u.Note,
		})
	}
	for _, p := range r.Pruned {
		out.Pruned = append(out.Pruned, AuditPruned{
			Treatment: p.Treatment, Outcome: p.Outcome, Reason: p.Reason, Support: p.Support,
		})
	}
	return out
}

// ToSpec converts the wire spec into the library's form, parsing the WHERE
// clause. Workers is read by the server (clamped to the dataset's limit),
// not converted here.
func (s AuditSpec) ToSpec() (hypdb.AuditSpec, error) {
	out := hypdb.AuditSpec{
		Treatments:       s.Treatments,
		Outcomes:         s.Outcomes,
		MinSupport:       s.MinSupport,
		MaxTreatmentCard: s.MaxTreatmentCard,
		MaxOutcomeCard:   s.MaxOutcomeCard,
		TopK:             s.TopK,
	}
	if s.Where != "" {
		pred, err := hypdb.ParsePredicate(s.Where)
		if err != nil {
			return hypdb.AuditSpec{}, err
		}
		out.Where = pred
	}
	return out, nil
}

// BatchRequest is the POST /v1/analyze/batch body: the queries run over the
// dataset session's worker pool and share its covariate-discovery cache.
type BatchRequest struct {
	Dataset string  `json:"dataset"`
	Queries []Query `json:"queries"`
	Options Options `json:"options,omitempty"`
}

// BatchResponse aligns with the request's query order: exactly one of
// Reports[i] / Errors[i] is set per query. A malformed or failing query
// yields its own error entry instead of failing the whole batch, so mixed
// batches return every answer they can. Errors is omitted entirely when
// every query succeeded (older servers never set it — clients must treat a
// missing array as all-success).
type BatchResponse struct {
	Reports []*Report `json:"reports"`
	Errors  []*Error  `json:"errors,omitempty"`
}

// ---------------------------------------------------------------------------
// Analysis responses

// Row is one line of a query answer.
type Row struct {
	Treatment string    `json:"treatment"`
	Context   []string  `json:"context,omitempty"`
	Avgs      []float64 `json:"avgs"`
	Count     int       `json:"count,omitempty"`
}

// Comparison pairs two treatment values' answers within one context, with
// per-outcome significance.
type Comparison struct {
	Context   []string  `json:"context,omitempty"`
	T0        string    `json:"t0"`
	T1        string    `json:"t1"`
	Avg0      []float64 `json:"avg0"`
	Avg1      []float64 `json:"avg1"`
	Diffs     []float64 `json:"diffs"`
	N0        int       `json:"n0"`
	N1        int       `json:"n1"`
	PValues   []float64 `json:"p_values,omitempty"`
	PValueCIs []float64 `json:"p_value_cis,omitempty"`
	Methods   []string  `json:"methods,omitempty"`
}

// BiasVerdict is a per-context balance verdict.
type BiasVerdict struct {
	Context   []string `json:"context,omitempty"`
	Variables []string `json:"variables"`
	MI        float64  `json:"mi"`
	PValue    float64  `json:"p_value"`
	PValueCI  float64  `json:"p_value_ci,omitempty"`
	Biased    bool     `json:"biased"`
}

// Responsibility is a coarse-grained explanation entry.
type Responsibility struct {
	Attr string  `json:"attr"`
	Rho  float64 `json:"rho"`
	MI   float64 `json:"mi"`
}

// FineExplanation is a fine-grained explanation triple.
type FineExplanation struct {
	TreatmentValue string  `json:"treatment_value"`
	OutcomeValue   string  `json:"outcome_value"`
	CovariateValue string  `json:"covariate_value"`
	KappaTZ        float64 `json:"kappa_tz"`
	KappaYZ        float64 `json:"kappa_yz"`
}

// DroppedAttr names an attribute excluded for a logical dependency.
type DroppedAttr struct {
	Attr   string `json:"attr"`
	Reason string `json:"reason"`
	Peer   string `json:"peer,omitempty"`
}

// CDSummary compresses the treatment's covariate-discovery result.
type CDSummary struct {
	Parents      []string `json:"parents,omitempty"`
	Boundary     []string `json:"boundary,omitempty"`
	UsedFallback bool     `json:"used_fallback,omitempty"`
	Tests        int      `json:"tests"`
}

// RewrittenAnswer is the answer of a bias-removing rewritten query.
type RewrittenAnswer struct {
	Rows       []Row    `json:"rows"`
	Covariates []string `json:"covariates,omitempty"`
	Mediators  []string `json:"mediators,omitempty"`
	Baseline   string   `json:"baseline,omitempty"`
	// BlocksKept / BlocksTotal report the exact-matching overlap pruning;
	// RowsKeptFraction is the share of rows inside kept blocks.
	BlocksTotal      int     `json:"blocks_total"`
	BlocksKept       int     `json:"blocks_kept"`
	RowsKeptFraction float64 `json:"rows_kept_fraction"`
}

// Timing is the per-phase wall-clock cost in milliseconds.
type Timing struct {
	DetectMS  float64 `json:"detect_ms"`
	ExplainMS float64 `json:"explain_ms"`
	ResolveMS float64 `json:"resolve_ms"`
}

// Report is the wire form of a full analysis: detection, explanation and
// resolution.
type Report struct {
	OriginalSQL  string `json:"original_sql"`
	RewrittenSQL string `json:"rewritten_sql,omitempty"`

	Answer              []Row        `json:"answer"`
	OriginalComparisons []Comparison `json:"original_comparisons,omitempty"`

	// Biased is the headline verdict: true when any context is unbalanced
	// w.r.t. the covariates (total effect) or the covariates ∪ mediators
	// (direct effect).
	Biased     bool       `json:"biased"`
	Covariates []string   `json:"covariates,omitempty"`
	Mediators  []string   `json:"mediators,omitempty"`
	CD         *CDSummary `json:"cd,omitempty"`

	DroppedAttrs []DroppedAttr `json:"dropped_attrs,omitempty"`
	BiasTotal    []BiasVerdict `json:"bias_total,omitempty"`
	BiasDirect   []BiasVerdict `json:"bias_direct,omitempty"`

	Coarse []Responsibility             `json:"coarse,omitempty"`
	Fine   map[string][]FineExplanation `json:"fine,omitempty"`

	RewrittenTotal    *RewrittenAnswer `json:"rewritten_total,omitempty"`
	TotalComparisons  []Comparison     `json:"total_comparisons,omitempty"`
	RewrittenDirect   *RewrittenAnswer `json:"rewritten_direct,omitempty"`
	DirectComparisons []Comparison     `json:"direct_comparisons,omitempty"`

	Timing Timing `json:"timing"`
	// Degraded is true when the analysis was answered with at least one
	// remote shard missing (degraded reads): the statistics may rest on
	// partial counts and the report must be treated as stale.
	Degraded bool `json:"degraded,omitempty"`
	// Text is the human-readable report panel, as the CLI prints it.
	Text string `json:"text,omitempty"`
}

// ReportFromCore converts a library report into its wire form.
func ReportFromCore(r *hypdb.Report) *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		OriginalSQL:  r.OriginalSQL,
		RewrittenSQL: r.RewrittenSQL,
		Covariates:   r.Covariates,
		Mediators:    r.Mediators,
		Timing: Timing{
			DetectMS:  float64(r.Timing.Detect.Microseconds()) / 1000,
			ExplainMS: float64(r.Timing.Explain.Microseconds()) / 1000,
			ResolveMS: float64(r.Timing.Resolve.Microseconds()) / 1000,
		},
		Degraded: r.Degraded,
		Text:     r.String(),
	}
	if r.Answer != nil {
		out.Answer = rowsFromCore(r.Answer.Rows)
	}
	out.OriginalComparisons = comparisonsFromCore(r.OriginalComparisons)
	if r.CD != nil {
		out.CD = &CDSummary{
			Parents:      r.CD.Parents,
			Boundary:     r.CD.Boundary,
			UsedFallback: r.CD.UsedFallback,
			Tests:        r.CD.Tests,
		}
	}
	for _, d := range r.DroppedAttrs {
		out.DroppedAttrs = append(out.DroppedAttrs, DroppedAttr{
			Attr: d.Attr, Reason: string(d.Reason), Peer: d.Peer,
		})
	}
	for _, b := range r.BiasTotal {
		v := biasFromCore(b)
		out.BiasTotal = append(out.BiasTotal, v)
		if v.Biased {
			out.Biased = true
		}
	}
	for _, b := range r.BiasDirect {
		v := biasFromCore(b)
		out.BiasDirect = append(out.BiasDirect, v)
		if v.Biased {
			out.Biased = true
		}
	}
	for _, c := range r.Coarse {
		out.Coarse = append(out.Coarse, Responsibility{Attr: c.Attr, Rho: c.Rho, MI: c.MI})
	}
	if len(r.Fine) > 0 {
		out.Fine = make(map[string][]FineExplanation, len(r.Fine))
		for attr, fines := range r.Fine {
			conv := make([]FineExplanation, 0, len(fines))
			for _, f := range fines {
				conv = append(conv, FineExplanation{
					TreatmentValue: f.TreatmentValue,
					OutcomeValue:   f.OutcomeValue,
					CovariateValue: f.CovariateValue,
					KappaTZ:        f.KappaTZ,
					KappaYZ:        f.KappaYZ,
				})
			}
			out.Fine[attr] = conv
		}
	}
	if r.RewrittenTotal != nil {
		out.RewrittenTotal = &RewrittenAnswer{
			Rows:             rowsFromCore(r.RewrittenTotal.Rows),
			Covariates:       r.RewrittenTotal.Covariates,
			BlocksTotal:      r.RewrittenTotal.BlocksTotal,
			BlocksKept:       r.RewrittenTotal.BlocksKept,
			RowsKeptFraction: r.RewrittenTotal.RowsKeptFraction,
		}
	}
	out.TotalComparisons = comparisonsFromCore(r.TotalComparisons)
	if r.RewrittenDirect != nil {
		out.RewrittenDirect = &RewrittenAnswer{
			Rows:             rowsFromCore(r.RewrittenDirect.Rows),
			Covariates:       r.RewrittenDirect.Covariates,
			Mediators:        r.RewrittenDirect.Mediators,
			Baseline:         r.RewrittenDirect.Baseline,
			BlocksTotal:      r.RewrittenDirect.BlocksTotal,
			BlocksKept:       r.RewrittenDirect.BlocksKept,
			RowsKeptFraction: r.RewrittenDirect.RowsKeptFraction,
		}
	}
	out.DirectComparisons = comparisonsFromCore(r.DirectComparisons)
	return out
}

func rowsFromCore(rows []hypdb.Row) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{Treatment: r.Treatment, Context: r.Context, Avgs: r.Avgs, Count: r.Count})
	}
	return out
}

func comparisonsFromCore(comps []hypdb.ComparisonReport) []Comparison {
	out := make([]Comparison, 0, len(comps))
	for _, c := range comps {
		out = append(out, Comparison{
			Context: c.Context,
			T0:      c.T0, T1: c.T1,
			Avg0: c.Avg0, Avg1: c.Avg1, Diffs: c.Diffs,
			N0: c.N0, N1: c.N1,
			PValues: c.PValues, PValueCIs: c.PValueCIs, Methods: c.Methods,
		})
	}
	return out
}

func biasFromCore(b hypdb.BiasResult) BiasVerdict {
	return BiasVerdict{
		Context:   b.Context,
		Variables: b.Variables,
		MI:        b.MI,
		PValue:    b.PValue,
		PValueCI:  b.PValueCI,
		Biased:    b.Biased,
	}
}

// ---------------------------------------------------------------------------
// Service health and metrics

// Health is the GET /healthz response.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// AuditProgress reports a dataset's audit-sweep activity: completed sweeps
// plus cumulative candidate progress, so a poller watching /v1/metrics sees
// long sweeps advance candidate by candidate.
type AuditProgress struct {
	// Audits counts completed sweeps; Running counts sweeps in flight.
	Audits  int64 `json:"audits"`
	Running int64 `json:"running"`
	// CandidatesDone / CandidatesTotal accumulate across the dataset's
	// sweeps: total equals done once no sweep is running.
	CandidatesDone  int64 `json:"candidates_done"`
	CandidatesTotal int64 `json:"candidates_total"`
}

// PlannerStats reports a dataset session's batch-planner activity: how
// many lattice plans ran, the cuboids they primed and their estimated cell
// footprint, how many count demands the plans covered (and the subset
// served by marginalizing a strictly wider cuboid), and the backend round
// trips saved versus per-request priming.
type PlannerStats struct {
	Plans             int `json:"plans"`
	Cuboids           int `json:"cuboids"`
	CellsMaterialized int `json:"cells_materialized"`
	DemandsPlanned    int `json:"demands_planned"`
	DemandsProjected  int `json:"demands_projected"`
	RoundTripsSaved   int `json:"round_trips_saved"`
}

// DatasetMetrics is one dataset's slice of the service metrics.
type DatasetMetrics struct {
	Name     string        `json:"name"`
	Rows     int           `json:"rows"`
	Analyses int64         `json:"analyses"`
	Audit    AuditProgress `json:"audit"`
	Cache    CacheStats    `json:"cache"`
	Planner  PlannerStats  `json:"planner"`
	// Appends counts completed append requests; RowsAppended their
	// cumulative admitted rows. Both stay zero for unsharded datasets.
	Appends      int64 `json:"appends,omitempty"`
	RowsAppended int64 `json:"rows_appended,omitempty"`
	// CountsServed counts group-by counts requests this dataset answered on
	// the remote-shard transport (POST /v1/datasets/{name}/counts) — the
	// server side of a cluster. Zero when no coordinator queries this node.
	CountsServed int64 `json:"counts_served,omitempty"`
	// DegradedServes counts reads this dataset served degraded — answered
	// by the surviving shards after skipping an unavailable peer under
	// degraded reads. Zero for backends without degraded reads.
	DegradedServes uint64 `json:"degraded_serves,omitempty"`
	// Remote holds per-peer transport counters when this dataset is the
	// coordinator of remote shards (backend "remote") — the client side.
	Remote []PeerMetrics `json:"remote,omitempty"`
	// Admission reports the dataset's fair-queue activity.
	Admission AdmissionMetrics `json:"admission"`
}

// PeerMetrics is one remote shard peer's transport counters, as seen by
// the coordinating dataset.
type PeerMetrics struct {
	// URL is the peer's base URL; Version the snapshot version pinned when
	// the peer was opened.
	URL     string `json:"url"`
	Version uint64 `json:"version,omitempty"`
	// Healthy is the health-check loop's latest verdict.
	Healthy bool `json:"healthy"`
	// Requests counts counts calls issued to the peer, Retries the extra
	// attempts after failures, Errors the calls that failed for good, and
	// CountsServed the calls that returned counts.
	Requests     int64 `json:"requests"`
	Retries      int64 `json:"retries,omitempty"`
	Errors       int64 `json:"errors,omitempty"`
	CountsServed int64 `json:"counts_served,omitempty"`
	// LastRTTMillis and AvgRTTMillis measure successful round trips.
	LastRTTMillis float64 `json:"last_rtt_ms,omitempty"`
	AvgRTTMillis  float64 `json:"avg_rtt_ms,omitempty"`
}

// Metrics is the GET /v1/metrics response: service-wide counters backed by
// each dataset session's Stats.
type Metrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Datasets         int     `json:"datasets"`
	RequestsTotal    int64   `json:"requests_total"`
	RequestsInFlight int64   `json:"requests_in_flight"`
	AnalysesTotal    int64   `json:"analyses_total"`
	AuditsTotal      int64   `json:"audits_total"`
	AuditsInFlight   int64   `json:"audits_in_flight"`
	AppendsTotal     int64   `json:"appends_total"`
	RowsAppended     int64   `json:"rows_appended"`
	// CountsServed counts group-by counts requests answered on the
	// remote-shard transport across all datasets.
	CountsServed int64 `json:"counts_served,omitempty"`
	// RateLimited counts requests shed with 429 rate_limited by the
	// per-client admission rate limiter.
	RateLimited int64 `json:"rate_limited,omitempty"`
	// RateLimitedByClient breaks RateLimited down by client identity
	// (token name, or remote host in open mode). Identities beyond the
	// limiter's bucket cap aggregate under "other".
	RateLimitedByClient map[string]int64 `json:"rate_limited_by_client,omitempty"`
	// Admission aggregates the per-dataset fair-queue counters.
	Admission AdmissionMetrics `json:"admission"`
	Cache     CacheStats       `json:"cache"`
	Planner   PlannerStats     `json:"planner"`
	// Catalog reports the persistent catalog's restart/journal activity;
	// all zero when the server runs without -data-dir.
	Catalog    CatalogMetrics   `json:"catalog"`
	PerDataset []DatasetMetrics `json:"per_dataset,omitempty"`
}

// CatalogMetrics reports the persistent dataset catalog's activity: journal
// records fsync'd by this process, and what the boot-time replay recovered.
type CatalogMetrics struct {
	// JournalRecords counts catalog records (creates, appends, deletes)
	// this process appended to the journal.
	JournalRecords int64 `json:"journal_records"`
	// RecoveredDatasets counts datasets re-registered by Recover's journal
	// replay at boot; ReplayedAppends counts the append records re-applied.
	// Both are fixed after boot.
	RecoveredDatasets int64 `json:"recovered_datasets"`
	ReplayedAppends   int64 `json:"replayed_appends"`
}

// AdmissionMetrics reports a fair queue's admission activity: requests
// granted execution slots, requests currently waiting, and load sheds by
// reason. Once the server is idle, Queued returns to zero and the shed
// counters reconcile with the 429/503 responses clients observed.
type AdmissionMetrics struct {
	// Admitted counts requests granted their slots; Queued is the number
	// waiting right now.
	Admitted int64 `json:"admitted"`
	Queued   int   `json:"queued"`
	// ShedQueueFull / ShedDeadline / ShedDraining count typed rejections:
	// bounded queue depth exceeded, a request deadline that expired (or
	// could not be met) while queued, and shutdown draining.
	ShedQueueFull int64 `json:"shed_queue_full,omitempty"`
	ShedDeadline  int64 `json:"shed_deadline,omitempty"`
	ShedDraining  int64 `json:"shed_draining,omitempty"`
	// Cancelled counts waiters whose client went away while queued.
	Cancelled int64 `json:"cancelled,omitempty"`
}
