package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"hypdb/internal/dag"
	"hypdb/internal/dataset"
	"hypdb/internal/query"
)

// CancerRows is the default row count, matching Table 1 (2,000 rows).
const CancerRows = 2000

// CancerNet builds the ground-truth Bayesian network of Fig 7 (Guyon's
// lung-cancer simulator, the paper's [17]):
//
//	Anxiety → Smoking ← Peer_Pressure
//	Smoking → Lung_Cancer ← Genetics → Attention_Disorder
//	Lung_Cancer → Coughing ← Allergy
//	Lung_Cancer → Fatigue ← Coughing
//	Attention_Disorder → Car_Accident ← Fatigue
//	Born_an_Even_Day (isolated)
//
// There is no Lung_Cancer → Car_Accident edge, so the ground-truth direct
// effect is zero while the total effect (mediated by Fatigue and confounded
// by Genetics through Attention_Disorder) is positive. The CPTs are
// calibrated so the Fig 4 (bottom) query answers ≈ 0.60 / 0.77 and the
// adjusted total answers ≈ 0.60 / 0.75.
func CancerNet() (*dag.BayesNet, error) {
	g := dag.MustNew(
		"Anxiety", "Peer_Pressure", "Smoking", "Genetics", "Lung_Cancer",
		"Attention_Disorder", "Allergy", "Coughing", "Fatigue",
		"Car_Accident", "Born_an_Even_Day",
	)
	for _, e := range [][2]string{
		{"Anxiety", "Smoking"}, {"Peer_Pressure", "Smoking"},
		{"Smoking", "Lung_Cancer"}, {"Genetics", "Lung_Cancer"},
		{"Genetics", "Attention_Disorder"},
		{"Lung_Cancer", "Coughing"}, {"Allergy", "Coughing"},
		{"Lung_Cancer", "Fatigue"}, {"Coughing", "Fatigue"},
		{"Attention_Disorder", "Car_Accident"}, {"Fatigue", "Car_Accident"},
	} {
		g.MustAddEdge(e[0], e[1])
	}
	cards := make([]int, g.NumNodes())
	for i := range cards {
		cards[i] = 2
	}
	bin := func(p float64) []float64 { return []float64{1 - p, p} }
	rows := func(ps ...float64) []float64 {
		var out []float64
		for _, p := range ps {
			out = append(out, 1-p, p)
		}
		return out
	}
	cpts := make([][]float64, g.NumNodes())
	cpts[g.Index("Anxiety")] = bin(0.65)
	cpts[g.Index("Peer_Pressure")] = bin(0.33)
	// Smoking | (Anxiety, Peer_Pressure) rows 00,01,10,11.
	cpts[g.Index("Smoking")] = rows(0.30, 0.60, 0.70, 0.90)
	cpts[g.Index("Genetics")] = bin(0.15)
	// Lung_Cancer | (Smoking, Genetics).
	cpts[g.Index("Lung_Cancer")] = rows(0.10, 0.55, 0.40, 0.85)
	// Attention_Disorder | Genetics.
	cpts[g.Index("Attention_Disorder")] = rows(0.25, 0.70)
	cpts[g.Index("Allergy")] = bin(0.33)
	// Coughing | (Lung_Cancer, Allergy).
	cpts[g.Index("Coughing")] = rows(0.15, 0.60, 0.80, 0.90)
	// Fatigue | (Lung_Cancer, Coughing).
	cpts[g.Index("Fatigue")] = rows(0.35, 0.75, 0.70, 0.90)
	// Car_Accident | (Attention_Disorder, Fatigue).
	cpts[g.Index("Car_Accident")] = rows(0.30, 0.75, 0.70, 0.92)
	cpts[g.Index("Born_an_Even_Day")] = bin(0.5)
	return dag.NewBayesNet(g, cards, cpts)
}

// Cancer samples n rows from the Fig 7 network and appends a key-like
// SubjectID column, giving the 12 columns of Table 1.
func Cancer(n int, seed int64) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: Cancer with %d rows", n)
	}
	bn, err := CancerNet()
	if err != nil {
		return nil, err
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(seed)), n)
	if err != nil {
		return nil, err
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "S" + strconv.Itoa(100000+i)
	}
	cols := make([]*dataset.Column, 0, tab.NumCols()+1)
	cols = append(cols, dataset.NewColumnFromStrings("SubjectID", ids))
	for _, name := range tab.Columns() {
		c, err := tab.Column(name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return dataset.New(cols...)
}

// CancerQuery is the Fig 4 (bottom) query: average car-accident rate by
// lung-cancer status.
func CancerQuery() query.Query {
	return query.Query{
		Table:     "CancerData",
		Treatment: "Lung_Cancer",
		Outcomes:  []string{"Car_Accident"},
	}
}
