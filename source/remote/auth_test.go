package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hypdb/internal/hyperr"
	"hypdb/source/remote"
)

// TestTokenRidesEveryPath opens a peer with a credential and checks the
// bearer header lands on all three call classes: the registration
// handshake, counts calls, and background health probes.
func TestTokenRidesEveryPath(t *testing.T) {
	var mu sync.Mutex
	auth := make(map[string][]string) // path -> Authorization headers seen
	record := func(r *http.Request) {
		mu.Lock()
		auth[r.URL.Path] = append(auth[r.URL.Path], r.Header.Get("Authorization"))
		mu.Unlock()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		var req remote.CountsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		resp := remote.CountsResponse{Version: 7, Groups: [][]int32{{0}, {1}}, Counts: []int{3, 1}}
		if req.IncludeSchema {
			resp = schemaResponse()
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			t.Errorf("encoding response: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	opts := fastOpts()
	opts.Token = "sekrit"
	opts.HealthInterval = 5 * time.Millisecond // probes on, so ping() runs
	rel, err := remote.Open(context.Background(), srv.URL, "D", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { rel.Close() })
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); err != nil {
		t.Fatalf("Counts: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		probes := len(auth["/healthz"])
		mu.Unlock()
		if probes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no health probe arrived")
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	if n := len(auth["/v1/datasets/D/counts"]); n < 2 {
		t.Fatalf("counts endpoint saw %d requests, want handshake + counts", n)
	}
	for path, headers := range auth {
		for i, h := range headers {
			if h != "Bearer sekrit" {
				t.Errorf("%s request %d: Authorization = %q, want Bearer sekrit", path, i, h)
			}
		}
	}
}

// TestPeerAuthRejectionNotRetried answers counts calls with the service's
// 401 envelope: the transport must classify the typed ErrPeerAuth on the
// first attempt — a deterministic fault, so no retry, no backoff, no
// ErrPeerUnavailable wrapping that would let degraded reads absorb it —
// and keep returning it on later calls instead of latching unhealthy.
func TestPeerAuthRejectionNotRetried(t *testing.T) {
	for _, tc := range []struct {
		name string
		fail func(w http.ResponseWriter)
	}{
		{"401 envelope", func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			_, _ = w.Write([]byte(`{"error":{"code":"unauthorized","message":"missing or unknown bearer token"}}`))
		}},
		{"403 envelope", func(w http.ResponseWriter) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusForbidden)
			_, _ = w.Write([]byte(`{"error":{"code":"forbidden","message":"scope too narrow"}}`))
		}},
		{"bare 401", func(w http.ResponseWriter) {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, hits := fakePeer(t, 1<<30, tc.fail)
			rel := openFake(t, srv, fastOpts()) // handshake succeeds: IncludeSchema path answers before the fault gate

			_, err := rel.Counts(context.Background(), []string{"a"}, nil)
			if !errors.Is(err, hyperr.ErrPeerAuth) {
				t.Fatalf("Counts err = %v, want ErrPeerAuth", err)
			}
			if errors.Is(err, hyperr.ErrPeerUnavailable) {
				t.Error("auth rejection also wrapped as ErrPeerUnavailable — degradable")
			}
			if n := hits.Load(); n != 1 {
				t.Errorf("peer saw %d attempts, want 1 (no retries on auth faults)", n)
			}

			// The rejection must not latch the peer unhealthy: the next
			// call goes back to the network and reports the same typed
			// fault, so a rotated credential recovers without a restart.
			if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerAuth) {
				t.Fatalf("second Counts err = %v, want ErrPeerAuth", err)
			}
			if n := hits.Load(); n != 2 {
				t.Errorf("peer saw %d attempts after two calls, want 2", n)
			}
		})
	}
}
