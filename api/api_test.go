package api

import (
	"errors"
	"testing"

	"hypdb"
)

func TestQueryToQuery(t *testing.T) {
	q, err := Query{
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
		Where:     "Carrier IN ('AA','UA')",
	}.ToQuery("flights")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "flights" || q.Treatment != "Carrier" || q.Where == nil {
		t.Errorf("converted query = %+v", q)
	}
	if got := q.Where.SQL(); got != "Carrier IN ('AA','UA')" {
		t.Errorf("where round trip = %q", got)
	}

	_, err = Query{Treatment: "T", Outcomes: []string{"Y"}, Where: "T ="}.ToQuery("d")
	if !errors.Is(err, hypdb.ErrBadPredicate) {
		t.Errorf("bad where error = %v, want ErrBadPredicate", err)
	}
}

func TestOptionsToOptions(t *testing.T) {
	for _, m := range []string{"", "hymit", "chi2", "mit", "mit-sampling"} {
		if _, err := (Options{Method: m}).ToOptions(); err != nil {
			t.Errorf("method %q rejected: %v", m, err)
		}
	}
	if _, err := (Options{Method: "magic"}).ToOptions(); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestErrorFormat(t *testing.T) {
	e := &Error{Status: 404, Code: CodeDatasetNotFound, Message: `no dataset "x"`}
	want := `hypdbd: no dataset "x" (dataset_not_found, HTTP 404)`
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}
