package sqldb_test

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/internal/memsql"
	"hypdb/source"
	"hypdb/source/mem"
	"hypdb/source/sqldb"
)

// testTable builds a small table with a known joint distribution.
func testTable(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("T", "Z", "Y")
	rows := [][3]string{
		{"a", "x", "1"}, {"a", "x", "1"}, {"a", "y", "0"},
		{"b", "x", "0"}, {"b", "y", "1"}, {"b", "y", "1"},
		{"a", "y", "0"}, {"b", "x", "0"}, {"a", "x", "1"}, {"b", "y", "0"},
	}
	for _, r := range rows {
		b.MustAdd(r[0], r[1], r[2])
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// openBoth registers the table under name and returns matching sqldb and
// mem relations.
func openBoth(t *testing.T, name string, tab *dataset.Table) (*sqldb.Relation, *mem.Relation) {
	t.Helper()
	memsql.Register(name, tab)
	t.Cleanup(func() { memsql.Unregister(name) })
	db, err := memsql.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sqldb.Open(context.Background(), db, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rel.Close() })
	return rel, mem.New(tab)
}

// decodedCounts renders a counts map into label-space so results from
// backends with different dictionary orders compare equal.
func decodedCounts(t *testing.T, rel source.Relation, attrs []string, where source.Predicate) map[string]int {
	t.Helper()
	ctx := context.Background()
	counts, err := rel.Counts(ctx, attrs, where)
	if err != nil {
		t.Fatalf("Counts(%v): %v", attrs, err)
	}
	dicts := make([][]string, len(attrs))
	for i, a := range attrs {
		dicts[i], err = rel.Labels(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	out := make(map[string]int, len(counts))
	for k, c := range counts {
		codes := k.Codes()
		key := ""
		for i, code := range codes {
			key += dicts[i][code] + "|"
		}
		out[key] += c
	}
	return out
}

func TestSQLDBMatchesMemCounts(t *testing.T) {
	tab := testTable(t)
	sq, mm := openBoth(t, "counts_eq", tab)
	ctx := context.Background()

	if got, want := sq.Attributes(), mm.Attributes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("attributes = %v, want %v", got, want)
	}
	n1, err := sq.NumRows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != tab.NumRows() {
		t.Fatalf("NumRows = %d, want %d", n1, tab.NumRows())
	}

	where := dataset.Eq{Attr: "T", Value: "a"}
	for _, attrs := range [][]string{nil, {"T"}, {"T", "Z"}, {"T", "Z", "Y"}, {"Y", "T"}} {
		for _, pred := range []source.Predicate{nil, where} {
			got := decodedCounts(t, sq, attrs, pred)
			want := decodedCounts(t, mm, attrs, pred)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("counts over %v (pred %v): %v, want %v", attrs, pred, got, want)
			}
		}
	}

	// Labels are the sorted active domain.
	labels, err := sq.Labels(ctx, "Z")
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(labels) || len(labels) != 2 {
		t.Errorf("Z labels = %v, want 2 sorted labels", labels)
	}
}

func TestSQLDBRestrictCompactsDictionaries(t *testing.T) {
	tab := testTable(t)
	sq, mm := openBoth(t, "restrict_eq", tab)
	ctx := context.Background()
	where := dataset.Eq{Attr: "T", Value: "a"}

	sv, err := sq.Restrict(ctx, where)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := mm.Restrict(ctx, where)
	if err != nil {
		t.Fatal(err)
	}
	// The treatment dictionary compacts to the single selected value, as
	// the in-memory backend's Select does.
	sl, err := sv.Labels(ctx, "T")
	if err != nil {
		t.Fatal(err)
	}
	ml, err := mv.Labels(ctx, "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(sl) != 1 || len(ml) != 1 || sl[0] != ml[0] {
		t.Fatalf("restricted T dictionaries: sqldb %v, mem %v, want one shared value", sl, ml)
	}
	got := decodedCounts(t, sv, []string{"Z", "Y"}, nil)
	want := decodedCounts(t, mv, []string{"Z", "Y"}, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restricted counts: %v, want %v", got, want)
	}
}

func TestSQLDBMaterializeRoundTrips(t *testing.T) {
	tab := testTable(t)
	sq, _ := openBoth(t, "materialize_eq", tab)
	mt, err := sq.Materialize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mt.NumRows() != tab.NumRows() || mt.NumCols() != tab.NumCols() {
		t.Fatalf("materialized %dx%d, want %dx%d", mt.NumRows(), mt.NumCols(), tab.NumRows(), tab.NumCols())
	}
	// Row multiset must match (order preserved by the driver).
	for i := 0; i < tab.NumRows(); i++ {
		for _, col := range tab.Columns() {
			want := tab.MustColumn(col).Value(i)
			got := mt.MustColumn(col).Value(i)
			if got != want {
				t.Fatalf("row %d col %s = %q, want %q", i, col, got, want)
			}
		}
	}
}

func TestSQLDBCountCacheAndStats(t *testing.T) {
	tab := testTable(t)
	sq, _ := openBoth(t, "cache_stats", tab)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sq.Counts(ctx, []string{"T", "Z"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := sq.Stats()
	if st.CountQueries != 1 {
		t.Errorf("CountQueries = %d, want 1 (cache should absorb repeats)", st.CountQueries)
	}
	if st.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2", st.CacheHits)
	}
}

func TestSQLDBCloseIsIdempotent(t *testing.T) {
	tab := testTable(t)
	memsql.Register("close_me", tab)
	defer memsql.Unregister("close_me")
	db, err := memsql.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sqldb.Open(context.Background(), db, "close_me")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := rel.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The *sql.DB is really closed.
	if _, err := rel.Counts(context.Background(), []string{"T"}, nil); err == nil {
		t.Error("Counts succeeded after Close")
	}
}

func TestCountsOnlyRefusesMaterialization(t *testing.T) {
	tab := testTable(t)
	sq, _ := openBoth(t, "counts_only", tab)
	rel := source.CountsOnly(sq)
	if _, err := source.Materialize(context.Background(), rel); !errors.Is(err, hyperr.ErrNeedsMaterialization) {
		t.Fatalf("Materialize on counts-only = %v, want ErrNeedsMaterialization", err)
	}
	// Restriction keeps the guarantee.
	rv, err := rel.Restrict(context.Background(), dataset.Eq{Attr: "T", Value: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := source.Materialize(context.Background(), rv); !errors.Is(err, hyperr.ErrNeedsMaterialization) {
		t.Fatalf("Materialize on restricted counts-only = %v, want ErrNeedsMaterialization", err)
	}
}
