package query

import (
	"context"
	"math"
	"strings"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// simpsonTable builds the classic kidney-stone Simpson's paradox data:
// treatment A beats B within each stratum of Z but loses in the aggregate.
//
//	Z=s: A 81/87 success, B 234/270
//	Z=l: A 192/263 success, B 55/80
func simpsonTable(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("T", "Z", "Y")
	add := func(tv, zv string, success, total int) {
		for i := 0; i < success; i++ {
			b.MustAdd(tv, zv, "1")
		}
		for i := 0; i < total-success; i++ {
			b.MustAdd(tv, zv, "0")
		}
	}
	add("A", "s", 81, 87)
	add("B", "s", 234, 270)
	add("A", "l", 192, 263)
	add("B", "l", 55, 80)
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestValidate(t *testing.T) {
	tab := simpsonTable(t)
	good := Query{Treatment: "T", Outcomes: []string{"Y"}}
	if err := good.Validate(context.Background(), mem.New(tab)); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	cases := []Query{
		{Outcomes: []string{"Y"}},                                                 // empty treatment
		{Treatment: "missing", Outcomes: []string{"Y"}},                           // missing T
		{Treatment: "T"},                                                          // no outcomes
		{Treatment: "T", Outcomes: []string{"missing"}},                           // missing Y
		{Treatment: "T", Outcomes: []string{"Z"}},                                 // non-numeric Y
		{Treatment: "T", Outcomes: []string{"Y", "Y"}},                            // dup outcome
		{Treatment: "T", Outcomes: []string{"Y"}, Groupings: []string{"missing"}}, // missing X
		{Treatment: "T", Outcomes: []string{"Y"}, Groupings: []string{"T"}},       // reused attr
	}
	for i, q := range cases {
		if err := q.Validate(context.Background(), mem.New(tab)); err == nil {
			t.Errorf("case %d: invalid query accepted: %+v", i, q)
		}
	}
}

func TestRunAggregate(t *testing.T) {
	tab := simpsonTable(t)
	ans, err := Run(context.Background(), mem.New(tab), Query{Treatment: "T", Outcomes: []string{"Y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(ans.Rows))
	}
	comps, err := ans.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Fatalf("comparisons = %d, want 1", len(comps))
	}
	c := comps[0]
	if c.T0 != "A" || c.T1 != "B" {
		t.Errorf("treatment order = (%s,%s), want (A,B)", c.T0, c.T1)
	}
	if math.Abs(c.Avg0[0]-0.78) > 1e-12 {
		t.Errorf("avg(A) = %v, want 0.78", c.Avg0[0])
	}
	if math.Abs(c.Avg1[0]-289.0/350) > 1e-12 {
		t.Errorf("avg(B) = %v, want %v", c.Avg1[0], 289.0/350)
	}
	// Aggregate: B looks better (the paradox).
	if c.Diffs[0] <= 0 {
		t.Errorf("aggregate diff = %v, want > 0 (B better)", c.Diffs[0])
	}
}

func TestRunWithGroupings(t *testing.T) {
	tab := simpsonTable(t)
	ans, err := Run(context.Background(), mem.New(tab), Query{Treatment: "T", Groupings: []string{"Z"}, Outcomes: []string{"Y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(ans.Rows))
	}
	comps, err := ans.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d, want 2 (one per stratum)", len(comps))
	}
	// Within each stratum A is better: diff = avg(B) − avg(A) < 0.
	for _, c := range comps {
		if c.Diffs[0] >= 0 {
			t.Errorf("stratum %v: diff = %v, want < 0 (A better)", c.Context, c.Diffs[0])
		}
	}
}

func TestRunWhere(t *testing.T) {
	tab := simpsonTable(t)
	q := Query{
		Treatment: "T",
		Outcomes:  []string{"Y"},
		Where:     dataset.Eq{Attr: "Z", Value: "s"},
	}
	ans, err := Run(context.Background(), mem.New(tab), q)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := ans.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comps[0].Avg0[0]-81.0/87) > 1e-12 {
		t.Errorf("avg(A|Z=s) = %v, want %v", comps[0].Avg0[0], 81.0/87)
	}
	// WHERE selecting nothing errors cleanly.
	q.Where = dataset.Eq{Attr: "Z", Value: "nope"}
	if _, err := Run(context.Background(), mem.New(tab), q); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestRewriteTotalRemovesSimpson(t *testing.T) {
	tab := simpsonTable(t)
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	rw, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	c := comps[0]
	// Exact adjustment-formula values (Pr(s)=0.51, Pr(l)=0.49).
	if math.Abs(c.Avg0[0]-0.8325462173856037) > 1e-12 {
		t.Errorf("adjusted avg(A) = %v, want 0.8325462173856037", c.Avg0[0])
	}
	if math.Abs(c.Avg1[0]-0.778875) > 1e-12 {
		t.Errorf("adjusted avg(B) = %v, want 0.778875", c.Avg1[0])
	}
	// Trend reversed: A now better.
	if c.Diffs[0] >= 0 {
		t.Errorf("adjusted diff = %v, want < 0", c.Diffs[0])
	}
	if rw.BlocksTotal != 2 || rw.BlocksKept != 2 {
		t.Errorf("blocks = %d/%d, want 2/2", rw.BlocksKept, rw.BlocksTotal)
	}
	if rw.RowsKeptFraction != 1 {
		t.Errorf("RowsKeptFraction = %v, want 1", rw.RowsKeptFraction)
	}
}

func TestRewriteTotalOverlapPruning(t *testing.T) {
	tab := simpsonTable(t)
	// Add a stratum that only treatment A visits: it must be pruned and the
	// weights renormalized over s and l.
	for i := 0; i < 50; i++ {
		if err := tab.AppendRow("A", "only-a", "1"); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	rw, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if rw.BlocksTotal != 3 || rw.BlocksKept != 2 {
		t.Fatalf("blocks = %d/%d, want kept 2 of 3", rw.BlocksKept, rw.BlocksTotal)
	}
	if rw.RowsKeptFraction >= 1 {
		t.Errorf("RowsKeptFraction = %v, want < 1", rw.RowsKeptFraction)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	// Same adjusted values as without the degenerate stratum.
	if math.Abs(comps[0].Avg0[0]-0.8325462173856037) > 1e-12 {
		t.Errorf("adjusted avg(A) = %v after pruning", comps[0].Avg0[0])
	}
}

func TestRewriteTotalNoOverlapAnywhere(t *testing.T) {
	b := dataset.NewBuilder("T", "Z", "Y")
	b.MustAdd("A", "z1", "1")
	b.MustAdd("B", "z2", "0")
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	_, err = RewriteTotal(context.Background(), mem.New(tab), Query{Treatment: "T", Outcomes: []string{"Y"}}, []string{"Z"})
	if err == nil {
		t.Error("total overlap failure accepted")
	}
}

func TestRewriteValidation(t *testing.T) {
	tab := simpsonTable(t)
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), q, nil); err == nil {
		t.Error("empty covariates accepted")
	}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"missing"}); err == nil {
		t.Error("missing covariate accepted")
	}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"T"}); err == nil {
		t.Error("treatment as covariate accepted")
	}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Y"}); err == nil {
		t.Error("outcome as covariate accepted")
	}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Z", "Z"}); err == nil {
		t.Error("duplicate covariate accepted")
	}
	if _, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, nil, ""); err == nil {
		t.Error("empty mediators accepted")
	}
	if _, err := RewriteDirect(context.Background(), mem.New(tab), q, []string{"Z"}, []string{"Z"}, ""); err == nil {
		t.Error("attribute in both roles accepted")
	}
	if _, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, []string{"Z"}, "nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
	qg := Query{Treatment: "T", Outcomes: []string{"Y"}, Groupings: []string{"Z"}}
	if _, err := RewriteTotal(context.Background(), mem.New(tab), qg, []string{"Z"}); err == nil {
		t.Error("grouping attribute as covariate accepted")
	}
}

// mediationTable builds a hand-computed mediation example:
//
//	(t=0,m=0): 40 rows, avg Y = 0.2   (t=0,m=1): 10 rows, avg 0.6
//	(t=1,m=0): 20 rows, avg 0.3       (t=1,m=1): 30 rows, avg 0.7
//
// With baseline t=0: Pr(m=0|t0)=0.8, Pr(m=1|t0)=0.2, so
// answer(0) = 0.28, answer(1) = 0.38, NDE = 0.10.
func mediationTable(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("T", "M", "Y")
	add := func(tv, mv string, ones, total int) {
		for i := 0; i < ones; i++ {
			b.MustAdd(tv, mv, "1")
		}
		for i := 0; i < total-ones; i++ {
			b.MustAdd(tv, mv, "0")
		}
	}
	add("0", "0", 8, 40)
	add("0", "1", 6, 10)
	add("1", "0", 6, 20)
	add("1", "1", 21, 30)
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRewriteDirectMediatorFormula(t *testing.T) {
	tab := mediationTable(t)
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	rw, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, []string{"M"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rw.Baseline != "0" {
		t.Errorf("default baseline = %q, want 0", rw.Baseline)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	c := comps[0]
	if math.Abs(c.Avg0[0]-0.28) > 1e-12 {
		t.Errorf("answer(t=0) = %v, want 0.28", c.Avg0[0])
	}
	if math.Abs(c.Avg1[0]-0.38) > 1e-12 {
		t.Errorf("answer(t=1) = %v, want 0.38", c.Avg1[0])
	}
	if math.Abs(c.Diffs[0]-0.10) > 1e-12 {
		t.Errorf("NDE = %v, want 0.10", c.Diffs[0])
	}
}

func TestRewriteDirectExplicitBaseline(t *testing.T) {
	tab := mediationTable(t)
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	rw, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, []string{"M"}, "1")
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	c := comps[0]
	// Baseline t=1: Pr(m=0|t1)=0.4, Pr(m=1|t1)=0.6.
	// answer(0) = 0.4·0.2 + 0.6·0.6 = 0.44; answer(1) = 0.4·0.3+0.6·0.7 = 0.54.
	if math.Abs(c.Avg0[0]-0.44) > 1e-12 || math.Abs(c.Avg1[0]-0.54) > 1e-12 {
		t.Errorf("answers = (%v,%v), want (0.44,0.54)", c.Avg0[0], c.Avg1[0])
	}
}

func TestRewriteDirectConsistencyWithObserved(t *testing.T) {
	// The baseline row of the direct rewriting must equal the observed
	// E[Y | T=baseline] (the consistency property of the mediator formula).
	tab := mediationTable(t)
	q := Query{Treatment: "T", Outcomes: []string{"Y"}}
	ans, err := Run(context.Background(), mem.New(tab), q)
	if err != nil {
		t.Fatal(err)
	}
	var observed float64
	for _, r := range ans.Rows {
		if r.Treatment == "0" {
			observed = r.Avgs[0]
		}
	}
	rw, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, []string{"M"}, "0")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rw.Rows {
		if r.Treatment == "0" {
			if math.Abs(r.Avgs[0]-observed) > 1e-12 {
				t.Errorf("baseline answer %v != observed %v", r.Avgs[0], observed)
			}
		}
	}
}

func TestSQLRendering(t *testing.T) {
	q := Query{
		Table:     "FlightData",
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
		Where: dataset.And{
			dataset.In{Attr: "Carrier", Values: []string{"AA", "UA"}},
			dataset.In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
		},
	}
	sql := q.SQL()
	for _, want := range []string{
		"SELECT Carrier, avg(Delayed)",
		"FROM FlightData",
		"WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC')",
		"GROUP BY Carrier",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	rsql := q.RewrittenSQL([]string{"Airport", "Year"})
	for _, want := range []string{
		"WITH Blocks AS (",
		"Weights AS (",
		"GROUP BY Carrier, Airport, Year",
		"HAVING count(DISTINCT Carrier) = 2",
		"sum(Avg1 * W)",
		"Blocks.Airport = Weights.Airport",
	} {
		if !strings.Contains(rsql, want) {
			t.Errorf("rewritten SQL missing %q:\n%s", want, rsql)
		}
	}
	// Default table name.
	if !strings.Contains(Query{Treatment: "T", Outcomes: []string{"Y"}}.SQL(), "FROM D") {
		t.Error("default table name not rendered")
	}
}

func TestCompareRequiresTwoValues(t *testing.T) {
	b := dataset.NewBuilder("T", "Y")
	b.MustAdd("A", "1")
	b.MustAdd("B", "0")
	b.MustAdd("C", "1")
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Run(context.Background(), mem.New(tab), Query{Treatment: "T", Outcomes: []string{"Y"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ans.Compare(); err == nil {
		t.Error("3-valued treatment accepted by Compare")
	}
	// Explicit pair selection still works.
	comps, err := ans.CompareValues("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Errorf("comparisons = %d, want 1", len(comps))
	}
}

func TestRewriteMultipleOutcomes(t *testing.T) {
	b := dataset.NewBuilder("T", "Z", "Y1", "Y2")
	rows := [][]string{
		{"A", "z1", "1", "0"}, {"A", "z1", "0", "0"}, {"B", "z1", "1", "1"},
		{"A", "z2", "1", "1"}, {"B", "z2", "0", "1"}, {"B", "z2", "0", "0"},
	}
	for _, r := range rows {
		b.MustAdd(r...)
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RewriteTotal(context.Background(), mem.New(tab), Query{Treatment: "T", Outcomes: []string{"Y1", "Y2"}}, []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps[0].Diffs) != 2 {
		t.Fatalf("diffs per outcome = %d, want 2", len(comps[0].Diffs))
	}
	// Hand-check Y1: Pr(z1)=0.5, Pr(z2)=0.5.
	// avg(Y1|A,z1)=0.5, avg(Y1|A,z2)=1 → adjusted A = 0.75.
	// avg(Y1|B,z1)=1, avg(Y1|B,z2)=0 → adjusted B = 0.5.
	if math.Abs(comps[0].Avg0[0]-0.75) > 1e-12 || math.Abs(comps[0].Avg1[0]-0.5) > 1e-12 {
		t.Errorf("adjusted Y1 = (%v,%v), want (0.75,0.5)", comps[0].Avg0[0], comps[0].Avg1[0])
	}
}
