// Flight delays: the paper's running example (Ex 1.1, Fig 1). A company
// compares two carriers with a group-by query and picks the wrong one;
// HypDB explains the Simpson reversal and rewrites the query.
//
//	go run ./examples/flightdelays [-rows N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"hypdb"
	"hypdb/internal/datagen"
)

func main() {
	rows := flag.Int("rows", datagen.FlightRows, "rows of FlightData to generate")
	flag.Parse()

	fmt.Printf("generating FlightData (%d rows × %d columns)...\n", *rows, datagen.FlightColumns)
	tab, err := datagen.Flight(*rows, 1)
	if err != nil {
		log.Fatal(err)
	}

	db := hypdb.Open(tab)
	ctx := context.Background()

	// "Which carrier should our business-travel program use at COS, MFE,
	// MTJ and ROC?" — the analyst's group-by query.
	q := datagen.FlightQuery()
	fmt.Println("\nThe analyst's query:")
	fmt.Println(q.SQL())

	ans, err := db.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNaive answer (pick the lower delay rate):")
	for _, r := range ans.Rows {
		fmt.Printf("  %-3s avg(Delayed) = %.4f (n=%d)\n", r.Treatment, r.Avgs[0], r.Count)
	}

	// Per-airport answers reveal the reversal.
	perAirport := q
	perAirport.Groupings = []string{"Airport"}
	byAirport, err := db.Run(ctx, perAirport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe same comparison at each airport (Simpson's paradox):")
	for _, r := range byAirport.Rows {
		fmt.Printf("  %-4s %-3s avg(Delayed) = %.4f\n", r.Context[0], r.Treatment, r.Avgs[0])
	}

	// Full HypDB analysis: detection, explanation, rewriting.
	fmt.Println("\nRunning HypDB...")
	report, err := db.Analyze(ctx, q, hypdb.WithSeed(7), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
}
