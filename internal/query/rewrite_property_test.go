package query

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// randomObservational builds a random table with binary treatment/outcome
// and a categorical covariate, dense enough that overlap usually holds.
func randomObservational(r *rand.Rand, n int) *dataset.Table {
	b := dataset.NewBuilder("T", "Z", "Y")
	for i := 0; i < n; i++ {
		z := r.Intn(3)
		tv := 0
		if r.Float64() < 0.2+0.2*float64(z) {
			tv = 1
		}
		y := 0
		if r.Float64() < 0.1+0.15*float64(z)+0.2*float64(tv) {
			y = 1
		}
		b.MustAdd(strconv.Itoa(tv), strconv.Itoa(z), strconv.Itoa(y))
	}
	tab, err := b.Table()
	if err != nil {
		panic(err)
	}
	return tab
}

// Property: adjusted answers are convex combinations of block averages, so
// for a 0/1 outcome they stay within [0,1]; and the per-treatment adjusted
// answer lies between the minimum and maximum of that treatment's block
// averages.
func TestQuickRewriteTotalConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomObservational(r, 200+r.Intn(800))
		q := Query{Treatment: "T", Outcomes: []string{"Y"}}
		rw, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Z"})
		if err != nil {
			return true // overlap can fail on tiny samples; not a violation
		}
		for _, row := range rw.Rows {
			if row.Avgs[0] < -1e-12 || row.Avgs[0] > 1+1e-12 {
				return false
			}
		}
		// Cross-check against a direct computation of the adjustment
		// formula from raw counts.
		want, ok := directAdjustment(tab)
		if !ok {
			return true
		}
		for _, row := range rw.Rows {
			if w, exists := want[row.Treatment]; exists {
				if math.Abs(row.Avgs[0]-w) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// directAdjustment computes Σ_z avg(Y|t,z)·Pr(z) from scratch over kept
// blocks, independently of the rewrite implementation.
func directAdjustment(tab *dataset.Table) (map[string]float64, bool) {
	tc, _ := tab.Column("T")
	zc, _ := tab.Column("Z")
	yvals, _ := tab.Float("Y")
	type cell struct{ sum, n float64 }
	blocks := map[[2]string]*cell{}
	zTotals := map[string]float64{}
	for i := 0; i < tab.NumRows(); i++ {
		k := [2]string{tc.Value(i), zc.Value(i)}
		c := blocks[k]
		if c == nil {
			c = &cell{}
			blocks[k] = c
		}
		c.sum += yvals[i]
		c.n++
	}
	// Keep z-strata with both treatments.
	kept := map[string]bool{}
	for _, z := range zc.Labels() {
		if blocks[[2]string{"0", z}] != nil && blocks[[2]string{"1", z}] != nil {
			kept[z] = true
		}
	}
	if len(kept) == 0 {
		return nil, false
	}
	total := 0.0
	for z := range kept {
		zTotals[z] = blocks[[2]string{"0", z}].n + blocks[[2]string{"1", z}].n
		total += zTotals[z]
	}
	out := map[string]float64{}
	for _, tv := range []string{"0", "1"} {
		acc := 0.0
		for z := range kept {
			c := blocks[[2]string{tv, z}]
			acc += c.sum / c.n * zTotals[z] / total
		}
		out[tv] = acc
	}
	return out, true
}

// Property: with a single covariate stratum the rewritten answer equals the
// plain group-by answer (adjustment over a constant covariate is a no-op).
func TestQuickRewriteConstantCovariateIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := dataset.NewBuilder("T", "Z", "Y")
		n := 50 + r.Intn(200)
		for i := 0; i < n; i++ {
			b.MustAdd(strconv.Itoa(r.Intn(2)), "only", strconv.Itoa(r.Intn(2)))
		}
		tab, err := b.Table()
		if err != nil {
			return false
		}
		q := Query{Treatment: "T", Outcomes: []string{"Y"}}
		plain, err := Run(context.Background(), mem.New(tab), q)
		if err != nil {
			return true
		}
		rw, err := RewriteTotal(context.Background(), mem.New(tab), q, []string{"Z"})
		if err != nil {
			return true // single treatment value possible on tiny n
		}
		want := map[string]float64{}
		for _, row := range plain.Rows {
			want[row.Treatment] = row.Avgs[0]
		}
		for _, row := range rw.Rows {
			if math.Abs(row.Avgs[0]-want[row.Treatment]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the direct-effect baseline row always reproduces the observed
// E[Y | T = baseline] over the kept blocks (consistency), and all direct
// answers stay within [0,1] for 0/1 outcomes.
func TestQuickRewriteDirectConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := dataset.NewBuilder("T", "M", "Y")
		n := 300 + r.Intn(500)
		for i := 0; i < n; i++ {
			tv := r.Intn(2)
			m := r.Intn(2)
			if r.Float64() < 0.5 {
				m = tv
			}
			y := 0
			if r.Float64() < 0.2+0.4*float64(m) {
				y = 1
			}
			b.MustAdd(strconv.Itoa(tv), strconv.Itoa(m), strconv.Itoa(y))
		}
		tab, err := b.Table()
		if err != nil {
			return false
		}
		q := Query{Treatment: "T", Outcomes: []string{"Y"}}
		rw, err := RewriteDirect(context.Background(), mem.New(tab), q, nil, []string{"M"}, "0")
		if err != nil {
			return true
		}
		for _, row := range rw.Rows {
			if row.Avgs[0] < -1e-12 || row.Avgs[0] > 1+1e-12 {
				return false
			}
		}
		// Consistency only holds exactly when no blocks were pruned.
		if rw.BlocksKept != rw.BlocksTotal {
			return true
		}
		plain, err := Run(context.Background(), mem.New(tab), q)
		if err != nil {
			return false
		}
		var observed float64
		for _, row := range plain.Rows {
			if row.Treatment == "0" {
				observed = row.Avgs[0]
			}
		}
		for _, row := range rw.Rows {
			if row.Treatment == "0" && math.Abs(row.Avgs[0]-observed) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}
