package promexport_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/promexport"
	"hypdb/internal/server"
)

// The exposition-format grammars, straight from the Prometheus data-model
// spec: metric names may carry colons (recording rules), label names may
// not.
var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// expoFamily is one parsed metric family: its TYPE and every series keyed
// by the canonical label-set string.
type expoFamily struct {
	typ    string
	series map[string]float64
}

// parseExposition is the strict conformance parser: it accepts exactly the
// subset of the text exposition format the service promises to emit and
// fails the test on any deviation — bad name or label grammar, a family
// without HELP/TYPE, more than one TYPE per family, interleaved family
// blocks, duplicate series, or an unparsable sample value.
func parseExposition(t *testing.T, text string) map[string]*expoFamily {
	t.Helper()
	if text == "" {
		t.Fatal("empty exposition")
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition does not end with a newline")
	}
	fams := make(map[string]*expoFamily)
	var cur string    // family opened by the current block's HELP line
	var curTyped bool // TYPE seen for the current block
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if !metricNameRE.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", lineNo, name)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: family %s declared twice (interleaved or duplicated block)", lineNo, name)
			}
			if cur != "" && !curTyped {
				t.Fatalf("line %d: family %s had no TYPE line", lineNo, cur)
			}
			if cur != "" && len(fams[cur].series) == 0 {
				t.Fatalf("line %d: family %s declared but has no samples", lineNo, cur)
			}
			fams[name] = &expoFamily{series: make(map[string]float64)}
			cur, curTyped = name, false
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if name != cur {
				t.Fatalf("line %d: TYPE for %s inside block of %q", lineNo, name, cur)
			}
			if curTyped {
				t.Fatalf("line %d: second TYPE for family %s", lineNo, name)
			}
			if typ != "counter" && typ != "gauge" {
				t.Fatalf("line %d: unsupported type %q", lineNo, typ)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %s does not end in _total", lineNo, name)
			}
			if typ == "gauge" && strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: gauge %s ends in _total", lineNo, name)
			}
			fams[name].typ = typ
			curTyped = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment: %q", lineNo, line)
		default:
			name, labels, value := parseSample(t, lineNo, line)
			if name != cur {
				t.Fatalf("line %d: sample of %s inside block of %q", lineNo, name, cur)
			}
			if !curTyped {
				t.Fatalf("line %d: sample of %s before its TYPE line", lineNo, name)
			}
			f := fams[name]
			if _, dup := f.series[labels]; dup {
				t.Fatalf("line %d: duplicate series %s{%s}", lineNo, name, labels)
			}
			f.series[labels] = value
		}
	}
	if cur == "" {
		t.Fatal("exposition carries no families")
	}
	if !curTyped {
		t.Fatalf("family %s had no TYPE line", cur)
	}
	if len(fams[cur].series) == 0 {
		t.Fatalf("family %s declared but has no samples", cur)
	}
	return fams
}

// parseSample splits one sample line into metric name, canonical label-set
// string, and value, enforcing the name/label grammars, label-value
// escaping, and label uniqueness.
func parseSample(t *testing.T, lineNo int, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: sample without value: %q", lineNo, line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !metricNameRE.MatchString(name) {
		t.Fatalf("line %d: bad metric name %q", lineNo, name)
	}
	if strings.HasPrefix(rest, "{") {
		body, after, ok := cutLabelBlock(rest[1:])
		if !ok {
			t.Fatalf("line %d: unterminated label block: %q", lineNo, line)
		}
		labels = canonLabels(t, lineNo, body)
		rest = after
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: no space before value: %q", lineNo, line)
	}
	v, err := strconv.ParseFloat(rest[1:], 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, rest[1:], err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("line %d: non-finite sample value %q", lineNo, rest[1:])
	}
	return name, labels, v
}

// cutLabelBlock scans to the closing brace of a label block, honoring
// backslash escapes inside quoted values.
func cutLabelBlock(s string) (body, after string, ok bool) {
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// canonLabels validates a label block body and returns a canonical
// rendering with values unescaped.
func canonLabels(t *testing.T, lineNo int, body string) string {
	t.Helper()
	s := body
	seen := make(map[string]bool)
	var parts []string
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			t.Fatalf("line %d: label without '=': %q", lineNo, s)
		}
		name := s[:eq]
		if !labelNameRE.MatchString(name) {
			t.Fatalf("line %d: bad label name %q", lineNo, name)
		}
		if seen[name] {
			t.Fatalf("line %d: duplicate label %q", lineNo, name)
		}
		seen[name] = true
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			t.Fatalf("line %d: unquoted label value after %q", lineNo, name)
		}
		val, rest, ok := cutLabelValue(s[1:])
		if !ok {
			t.Fatalf("line %d: unterminated label value for %q", lineNo, name)
		}
		parts = append(parts, name+"="+val)
		s = rest
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			if s == "" {
				t.Fatalf("line %d: trailing comma in label block", lineNo)
			}
		} else if s != "" {
			t.Fatalf("line %d: junk after label value: %q", lineNo, s)
		}
	}
	return strings.Join(parts, ",")
}

// cutLabelValue consumes a quoted label value (after the opening quote),
// unescaping \\, \" and \n; anything else escaped is a conformance error.
func cutLabelValue(s string) (val, rest string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '"':
			return b.String(), s[i+1:], true
		case '\n':
			return "", "", false
		default:
			b.WriteByte(c)
		}
	}
	return "", "", false
}

// startMeshedServer boots a coordinator with a sharded local dataset plus a
// remote-mounted dataset backed by a loopback peer, so a scrape exercises
// every family class: service-wide, per-dataset, per-peer, and admission.
func startMeshedServer(t *testing.T) (coordURL string, client *api.Client) {
	t.Helper()
	quiet := func() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}

	peer := server.New(server.Config{Logger: quiet(), Shards: 2})
	if err := peer.AddDataset("remoteberk", tab); err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(peer.Handler())
	t.Cleanup(pts.Close)
	t.Cleanup(peer.Close)

	coord := server.New(server.Config{Logger: quiet(), Shards: 2})
	if err := coord.AddDataset("local", tab); err != nil {
		t.Fatal(err)
	}
	if err := coord.AddRemoteDataset(context.Background(), "remoteberk", []string{pts.URL}, false); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	t.Cleanup(coord.Close)
	return cts.URL, api.NewClient(cts.URL, cts.Client())
}

// scrapeMetrics fetches GET /metrics and checks the content type.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promexport.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promexport.ContentType)
	}
	return string(body)
}

// TestExpositionConformance drives real traffic through a meshed server and
// holds the scrape to the strict grammar: every family well-formed, every
// expected family class present with its labels.
func TestExpositionConformance(t *testing.T) {
	url, c := startMeshedServer(t)
	ctx := context.Background()

	for _, ds := range []string{"local", "remoteberk"} {
		if _, err := c.Analyze(ctx, api.AnalyzeRequest{
			Dataset: ds,
			Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
			Options: api.Options{Seed: 1, SkipDirect: true},
		}); err != nil {
			t.Fatalf("analyze %s: %v", ds, err)
		}
	}
	if _, err := c.Append(ctx, "local", [][]string{{"Female", "A", "1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Audit(ctx, api.AuditRequest{
		Dataset: "local",
		Spec:    api.AuditSpec{Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}, TopK: 3},
		Options: api.Options{Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}

	fams := parseExposition(t, scrapeMetrics(t, url))

	// Every family the renderer can emit is known to the parity map; a
	// scrape must never surface an undeclared name.
	declared := make(map[string]bool)
	for _, fam := range promexport.FieldFamilies() {
		declared[fam] = true
	}
	for name := range fams {
		if !declared[name] {
			t.Errorf("scrape carries family %s not declared in FieldFamilies", name)
		}
	}

	wantSeries := []struct{ fam, labels string }{
		{"hypdb_requests_total", ""},
		{"hypdb_datasets", ""},
		{"hypdb_analyses_total", ""},
		{"hypdb_admission_sheds_total", "reason=queue_full"},
		{"hypdb_admission_sheds_total", "reason=deadline"},
		{"hypdb_admission_sheds_total", "reason=draining"},
		{"hypdb_dataset_analyses_total", "dataset=local"},
		{"hypdb_dataset_analyses_total", "dataset=remoteberk"},
		{"hypdb_dataset_rows_appended_total", "dataset=local"},
		{"hypdb_dataset_audits_total", "dataset=local"},
		{"hypdb_dataset_admission_sheds_total", "dataset=local,reason=queue_full"},
	}
	for _, w := range wantSeries {
		f := fams[w.fam]
		if f == nil {
			t.Errorf("family %s missing from scrape", w.fam)
			continue
		}
		if _, ok := f.series[w.labels]; !ok {
			t.Errorf("series %s{%s} missing; have %v", w.fam, w.labels, keysOf(f.series))
		}
	}

	// The peer families carry both dataset and peer labels.
	ph := fams["hypdb_peer_healthy"]
	if ph == nil {
		t.Fatal("hypdb_peer_healthy missing from scrape")
	}
	for labels, v := range ph.series {
		if !strings.Contains(labels, "dataset=remoteberk") || !strings.Contains(labels, "peer=http://") {
			t.Errorf("peer series labels = %q, want dataset and peer", labels)
		}
		if v != 1 {
			t.Errorf("hypdb_peer_healthy{%s} = %v, want 1", labels, v)
		}
	}
	if f := fams["hypdb_dataset_analyses_total"]; f != nil {
		if v := f.series["dataset=local"]; v != 1 {
			t.Errorf("hypdb_dataset_analyses_total{dataset=local} = %v, want 1", v)
		}
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCountersNeverDecreaseAcrossScrapes brackets a concurrent
// analyze/audit/append burst with scrapes — plus scrapes racing the burst
// itself — and requires every counter series to be monotonic and every
// mid-burst scrape to stay grammar-clean. Run under -race this also pins
// the snapshot path's thread safety.
func TestCountersNeverDecreaseAcrossScrapes(t *testing.T) {
	url, c := startMeshedServer(t)
	ctx := context.Background()

	before := parseExposition(t, scrapeMetrics(t, url))

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				ds := "local"
				if (w+i)%2 == 1 {
					ds = "remoteberk"
				}
				if _, err := c.Analyze(ctx, api.AnalyzeRequest{
					Dataset: ds,
					Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
					Options: api.Options{Seed: 1, SkipDirect: true},
				}); err != nil {
					errs <- fmt.Errorf("worker %d analyze %s: %w", w, ds, err)
					return
				}
				if _, err := c.Append(ctx, "local", [][]string{{"Male", "B", "0"}}); err != nil {
					errs <- fmt.Errorf("worker %d append: %w", w, err)
					return
				}
				if w == 0 && i == 0 {
					if _, err := c.Audit(ctx, api.AuditRequest{
						Dataset: "local",
						Spec:    api.AuditSpec{Treatments: []string{"Gender"}, Outcomes: []string{"Accepted"}, TopK: 3},
						Options: api.Options{Seed: 1},
					}); err != nil {
						errs <- fmt.Errorf("audit: %w", err)
						return
					}
				}
			}
		}(w)
	}
	// Scrapes race the burst: each one must parse cleanly even mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			parseExposition(t, scrapeMetrics(t, url))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	after := parseExposition(t, scrapeMetrics(t, url))
	for name, f := range before {
		if f.typ != "counter" {
			continue
		}
		g := after[name]
		if g == nil {
			t.Errorf("counter family %s vanished between scrapes", name)
			continue
		}
		for labels, v := range f.series {
			nv, ok := g.series[labels]
			if !ok {
				t.Errorf("counter series %s{%s} vanished between scrapes", name, labels)
				continue
			}
			if nv < v {
				t.Errorf("counter %s{%s} decreased: %v -> %v", name, labels, v, nv)
			}
		}
	}
	// The burst demonstrably moved the counters.
	if a, b := before["hypdb_requests_total"].series[""], after["hypdb_requests_total"].series[""]; b <= a {
		t.Errorf("hypdb_requests_total did not advance across the burst: %v -> %v", a, b)
	}
}
