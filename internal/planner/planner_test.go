package planner

import (
	"context"
	"strings"
	"sync"
	"testing"

	"hypdb/source"
)

// fakeView records the primes a plan executes. Only the Primer capability
// is exercised by the planner; the embedded nil Relation satisfies the
// interface for methods the planner never calls.
type fakeView struct {
	source.Relation
	mu     sync.Mutex
	primes [][]string
}

func (f *fakeView) Prime(_ context.Context, attrs []string, _ int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primes = append(f.primes, append([]string(nil), attrs...))
	return nil
}

// unplannable has no Primer: its demands must stay unassigned.
type unplannable struct{ source.Relation }

func cardsOracle(cards map[string]int) func(context.Context, string) (int, error) {
	return func(_ context.Context, attr string) (int, error) { return cards[attr], nil }
}

func TestMergeOverlappingDemands(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 2, "B": 2, "C": 2}
	demands := []Demand{
		{Source: "d0", Attrs: []string{"A", "B"}, View: v, Key: "k"},
		{Source: "d1", Attrs: []string{"B", "C"}, View: v, Key: "k"},
		{Source: "d2", Attrs: []string{"C", "A"}, View: v, Key: "k"},
	}
	p, err := New(context.Background(), Config{Rows: 1000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 1 {
		t.Fatalf("want 1 merged cuboid, got %d: %+v", len(p.Cuboids), p.Cuboids)
	}
	if got := strings.Join(p.Cuboids[0].Attrs, ","); got != "A,B,C" {
		t.Errorf("merged cuboid = {%s}, want {A,B,C}", got)
	}
	if p.Cuboids[0].Cells != 8 {
		t.Errorf("cells = %d, want 8", p.Cuboids[0].Cells)
	}
	if p.NaiveTrips != 3 || p.RoundTrips != 1 || p.Saved() != 2 {
		t.Errorf("trips naive=%d round=%d saved=%d, want 3/1/2", p.NaiveTrips, p.RoundTrips, p.Saved())
	}
	if p.Projected != 3 {
		t.Errorf("projected = %d, want 3 (every demand is a strict subset)", p.Projected)
	}
	for i, a := range p.Assign {
		if a != 0 {
			t.Errorf("demand %d assigned to %d, want 0", i, a)
		}
	}
	if err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(v.primes) != 1 || strings.Join(v.primes[0], ",") != "A,B,C" {
		t.Errorf("execute primed %v, want one prime of {A,B,C}", v.primes)
	}
}

func TestSubsumptionServedByProjection(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 2, "B": 3, "C": 4}
	demands := []Demand{
		{Source: "wide", Attrs: []string{"A", "B", "C"}, View: v, Key: "k"},
		{Source: "narrow", Attrs: []string{"B", "A"}, View: v, Key: "k"},
		{Source: "dup", Attrs: []string{"A", "B", "C"}, View: v, Key: "k"},
	}
	p, err := New(context.Background(), Config{Rows: 1000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 1 {
		t.Fatalf("want 1 cuboid, got %d", len(p.Cuboids))
	}
	// Two distinct closures, one fetch.
	if p.NaiveTrips != 2 || p.Saved() != 1 {
		t.Errorf("naive=%d saved=%d, want 2/1", p.NaiveTrips, p.Saved())
	}
	if p.Projected != 1 {
		t.Errorf("projected = %d, want 1 (only the narrow demand)", p.Projected)
	}
}

func TestBudgetKeepsDemandsSeparate(t *testing.T) {
	v := &fakeView{}
	// Two disjoint closures of 2500 cells each; their union (6.25M cells)
	// blows the 4096 budget, so no merge may happen.
	cards := map[string]int{"A": 50, "B": 50, "C": 50, "D": 50}
	demands := []Demand{
		{Source: "d0", Attrs: []string{"A", "B"}, View: v, Key: "k"},
		{Source: "d1", Attrs: []string{"C", "D"}, View: v, Key: "k"},
	}
	p, err := New(context.Background(), Config{CellBudget: 4096, Rows: 1 << 20, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 2 {
		t.Fatalf("want 2 cuboids (union over budget), got %d", len(p.Cuboids))
	}
	if p.Saved() != 0 {
		t.Errorf("saved = %d, want 0", p.Saved())
	}
	if p.Assign[0] < 0 || p.Assign[1] < 0 || p.Assign[0] == p.Assign[1] {
		t.Errorf("assignment = %v, want two distinct cuboids", p.Assign)
	}
}

func TestFetchCostGatesMerging(t *testing.T) {
	v := &fakeView{}
	// Union fits the budget (10k cells) but materializes ~9.9k extra
	// cells; with a fetch costing only 10 cell units the merge must not
	// happen, with an expensive (SQL-like) fetch it must.
	cards := map[string]int{"A": 10, "B": 10, "C": 100}
	demands := []Demand{
		{Source: "d0", Attrs: []string{"A", "B"}, View: v, Key: "k"},
		{Source: "d1", Attrs: []string{"C"}, View: v, Key: "k"},
	}
	cheap, err := New(context.Background(),
		Config{CellBudget: 1 << 20, Rows: 1 << 20, FetchCost: 10, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(cheap.Cuboids) != 2 {
		t.Errorf("cheap fetches: want 2 cuboids (merge unprofitable), got %d", len(cheap.Cuboids))
	}
	costly, err := New(context.Background(),
		Config{CellBudget: 1 << 20, Rows: 1 << 20, FetchCost: 100_000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(costly.Cuboids) != 1 {
		t.Errorf("costly fetches: want 1 merged cuboid, got %d", len(costly.Cuboids))
	}
}

func TestOverBudgetClosureGetsTrimmedCuboid(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 2, "B": 4, "C": 10_000}
	demands := []Demand{
		{Source: "big", Attrs: []string{"A", "B", "C"}, View: v, Key: "k"},
	}
	p, err := New(context.Background(), Config{CellBudget: 64, Rows: 1 << 20, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 1 || !p.Cuboids[0].Partial {
		t.Fatalf("want one trimmed cuboid, got %+v", p.Cuboids)
	}
	if got := strings.Join(p.Cuboids[0].Attrs, ","); got != "A,B" {
		t.Errorf("trimmed cuboid = {%s}, want {A,B} (ascending cardinality within budget)", got)
	}
	if p.Assign[0] != -1 {
		t.Errorf("over-budget demand assigned to %d, want -1 (partial coverage only)", p.Assign[0])
	}
}

func TestDistinctKeysNeverShareCuboids(t *testing.T) {
	v1, v2 := &fakeView{}, &fakeView{}
	cards := map[string]int{"A": 2, "B": 2}
	demands := []Demand{
		{Source: "plain", Attrs: []string{"A", "B"}, View: v1, Key: "k1"},
		{Source: "restricted", Attrs: []string{"A", "B"}, View: v2, Key: "k2"},
	}
	p, err := New(context.Background(), Config{Rows: 1000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 2 {
		t.Fatalf("want 2 cuboids (distinct keys), got %d", len(p.Cuboids))
	}
	if err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(v1.primes) != 1 || len(v2.primes) != 1 {
		t.Errorf("each view must be primed once, got %d and %d", len(v1.primes), len(v2.primes))
	}
}

func TestUnplannableDemandStaysUnassigned(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 2, "B": 2}
	demands := []Demand{
		{Source: "ok", Attrs: []string{"A"}, View: v, Key: "k"},
		{Source: "noprimer", Attrs: []string{"B"}, View: &unplannable{}, Key: "k2"},
	}
	p, err := New(context.Background(), Config{Rows: 1000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assign[1] != -1 {
		t.Errorf("unplannable demand assigned to %d, want -1", p.Assign[1])
	}
	if len(p.Cuboids) != 1 {
		t.Errorf("want 1 cuboid for the plannable demand, got %d", len(p.Cuboids))
	}
}

func TestTotalBudgetDropsLargestCuboid(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 60, "B": 60, "C": 2}
	demands := []Demand{
		{Source: "big", Attrs: []string{"A", "B"}, View: v, Key: "k"}, // 3600 cells
		{Source: "small", Attrs: []string{"C"}, View: v, Key: "k"},    // 2 cells
	}
	p, err := New(context.Background(),
		Config{CellBudget: 4000, TotalBudget: 100, FetchCost: 1, Rows: 1 << 20, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 1 || p.Cuboids[0].Cells != 2 {
		t.Fatalf("want only the 2-cell cuboid kept, got %+v", p.Cuboids)
	}
	if p.Assign[0] != -1 || p.Assign[1] != 0 {
		t.Errorf("assignment = %v, want [-1 0]", p.Assign)
	}
	if p.Cells != 2 {
		t.Errorf("plan cells = %d, want 2", p.Cells)
	}
}

func TestWriteTextMentionsEveryDemand(t *testing.T) {
	v := &fakeView{}
	cards := map[string]int{"A": 2, "B": 2}
	demands := []Demand{
		{Source: "analyze[0]", Attrs: []string{"A"}, View: v, Key: "k"},
		{Source: "audit", Attrs: []string{"A", "B"}, View: v, Key: "k"},
	}
	p, err := New(context.Background(), Config{Rows: 1000, Card: cardsOracle(cards)}, demands)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"analyze[0]", "audit", "cuboid 0", "round trips"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan dump missing %q:\n%s", want, out)
		}
	}
}
