package datagen

import (
	"fmt"
	"math/rand"

	"hypdb/internal/dag"
	"hypdb/internal/dataset"
)

// RandomSpec describes one RandomData instance (Sec 7.1): an Erdős–Rényi
// DAG with CPT-parameterized categorical nodes.
type RandomSpec struct {
	// Nodes is the DAG size; the paper uses 8, 16 and 32.
	Nodes int
	// AvgDegree is the expected node degree (in+out); the paper's DAGs
	// keep fan-ins bounded.
	AvgDegree float64
	// MinCard and MaxCard bound the per-node category counts; the paper
	// varies them in 2–20.
	MinCard, MaxCard int
	// Alpha is the Dirichlet concentration for CPT rows; small values give
	// sharp, learnable dependencies. Zero means 0.5.
	Alpha float64
	// Rows is the sample size (the paper sweeps 10K–1M+).
	Rows int
	// Seed makes the instance reproducible.
	Seed int64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.AvgDegree <= 0 {
		s.AvgDegree = 3
	}
	if s.MinCard < 2 {
		s.MinCard = 2
	}
	if s.MaxCard < s.MinCard {
		s.MaxCard = s.MinCard
	}
	if s.Alpha <= 0 {
		s.Alpha = 0.5
	}
	if s.Rows <= 0 {
		s.Rows = 10000
	}
	return s
}

// Random generates one RandomData table together with its ground-truth
// network (for scoring parent recovery in the Fig 5 experiments).
func Random(spec RandomSpec) (*dataset.Table, *dag.BayesNet, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	g, err := dag.RandomDAGAvgDegree(rng, spec.Nodes, spec.AvgDegree)
	if err != nil {
		return nil, nil, err
	}
	bn, err := dag.RandomBayesNet(rng, g, spec.MinCard, spec.MaxCard, spec.Alpha)
	if err != nil {
		return nil, nil, err
	}
	tab, err := bn.Sample(rng, spec.Rows)
	if err != nil {
		return nil, nil, err
	}
	return tab, bn, nil
}

// Generator is a named dataset factory for the CLI and the experiment
// harness.
type Generator struct {
	Name        string
	Description string
	DefaultRows int
	// Generate builds the table with the given size and seed. Generators
	// over fixed data (Berkeley) ignore n.
	Generate func(n int, seed int64) (*dataset.Table, error)
}

// Generators lists the named dataset factories.
func Generators() []Generator {
	return []Generator{
		{"flight", "FlightData substitute (101 cols, Simpson's paradox, FDs, keys)", FlightRows, Flight},
		{"adult", "AdultData substitute (15 cols, gender/income mediation)", AdultRows, Adult},
		{"berkeley", "BerkeleyData (real 1973 admissions counts)", BerkeleyRows(),
			func(_ int, seed int64) (*dataset.Table, error) { return Berkeley(seed) }},
		{"staples", "StaplesData substitute (6 cols, indirect pricing effect)", StaplesRows, Staples},
		{"cancer", "CancerData (Fig 7 DAG, 12 cols)", CancerRows, Cancer},
	}
}

// Lookup finds a generator by name.
func Lookup(name string) (Generator, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("datagen: unknown dataset %q", name)
}
