package dag

import (
	"fmt"
	"math/rand"
	"strconv"

	"hypdb/internal/dataset"
)

// BayesNet parameterizes a DAG with conditional probability tables, giving
// the factorized distribution Pr(A) = Π Pr(X | PA_X). It replaces the R
// catnet package the paper used to draw RandomData samples: "causal DAGs
// admit the same factorized distribution as Bayesian networks" (Sec 7.1).
type BayesNet struct {
	G     *DAG
	Cards []int // number of categories per node
	// CPTs[i] is the conditional distribution of node i: a row-major table
	// of size Π(parent cards) × Cards[i]; row r holds Pr(X_i | parent
	// configuration r), where r enumerates parent configurations with the
	// first parent varying slowest.
	CPTs [][]float64
}

// NewBayesNet validates shapes and returns the network.
func NewBayesNet(g *DAG, cards []int, cpts [][]float64) (*BayesNet, error) {
	if len(cards) != g.NumNodes() || len(cpts) != g.NumNodes() {
		return nil, fmt.Errorf("dag: BayesNet needs %d cards and CPTs, got %d and %d",
			g.NumNodes(), len(cards), len(cpts))
	}
	for i, card := range cards {
		if card < 2 {
			return nil, fmt.Errorf("dag: node %q has %d categories, need ≥2", g.Name(i), card)
		}
		rows := 1
		for _, p := range g.Parents(i) {
			rows *= cards[p]
		}
		if len(cpts[i]) != rows*card {
			return nil, fmt.Errorf("dag: node %q CPT has %d entries, want %d",
				g.Name(i), len(cpts[i]), rows*card)
		}
		for r := 0; r < rows; r++ {
			sum := 0.0
			for c := 0; c < card; c++ {
				v := cpts[i][r*card+c]
				if v < 0 {
					return nil, fmt.Errorf("dag: node %q CPT row %d has negative probability", g.Name(i), r)
				}
				sum += v
			}
			if sum < 0.999 || sum > 1.001 {
				return nil, fmt.Errorf("dag: node %q CPT row %d sums to %v", g.Name(i), r, sum)
			}
		}
	}
	return &BayesNet{G: g, Cards: cards, CPTs: cpts}, nil
}

// RandomBayesNet equips g with random CPTs. Each node's category count is
// drawn uniformly from [minCard, maxCard], and each CPT row is a
// Dirichlet(alpha) draw; small alpha (e.g. 0.5) yields sharp, learnable
// dependencies, large alpha approaches uniform noise.
func RandomBayesNet(rng *rand.Rand, g *DAG, minCard, maxCard int, alpha float64) (*BayesNet, error) {
	if minCard < 2 || maxCard < minCard {
		return nil, fmt.Errorf("dag: invalid category range [%d,%d]", minCard, maxCard)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("dag: Dirichlet alpha must be positive, got %v", alpha)
	}
	n := g.NumNodes()
	cards := make([]int, n)
	for i := range cards {
		cards[i] = minCard + rng.Intn(maxCard-minCard+1)
	}
	cpts := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows := 1
		for _, p := range g.Parents(i) {
			rows *= cards[p]
		}
		cpt := make([]float64, rows*cards[i])
		for r := 0; r < rows; r++ {
			randDirichlet(rng, alpha, cpt[r*cards[i]:(r+1)*cards[i]])
		}
		cpts[i] = cpt
	}
	return NewBayesNet(g, cards, cpts)
}

// parentRow computes the CPT row index of node i for the given current
// assignment (first parent varies slowest).
func (bn *BayesNet) parentRow(i int, assignment []int) int {
	row := 0
	for _, p := range bn.G.Parents(i) {
		row = row*bn.Cards[p] + assignment[p]
	}
	return row
}

// SampleRow draws one joint assignment into dst (length NumNodes), visiting
// nodes in the given topological order.
func (bn *BayesNet) sampleRow(rng *rand.Rand, topo []int, dst []int) {
	for _, i := range topo {
		card := bn.Cards[i]
		row := bn.parentRow(i, dst)
		u := rng.Float64()
		acc := 0.0
		v := card - 1 // fallback to the last category on rounding slack
		for c := 0; c < card; c++ {
			acc += bn.CPTs[i][row*card+c]
			if u < acc {
				v = c
				break
			}
		}
		dst[i] = v
	}
}

// Sample forward-samples n rows into a dataset whose columns are the node
// names and whose values are category indices rendered as decimal strings.
func (bn *BayesNet) Sample(rng *rand.Rand, n int) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: sampling %d rows", n)
	}
	topo := bn.G.TopoOrder()
	numNodes := bn.G.NumNodes()

	// Pre-render category labels once.
	labels := make([][]string, numNodes)
	for i := 0; i < numNodes; i++ {
		labels[i] = make([]string, bn.Cards[i])
		for c := 0; c < bn.Cards[i]; c++ {
			labels[i][c] = strconv.Itoa(c)
		}
	}

	cols := make([][]int32, numNodes)
	for i := range cols {
		cols[i] = make([]int32, n)
	}
	assignment := make([]int, numNodes)
	for r := 0; r < n; r++ {
		bn.sampleRow(rng, topo, assignment)
		for i, v := range assignment {
			cols[i][r] = int32(v)
		}
	}
	dcols := make([]*dataset.Column, numNodes)
	for i := 0; i < numNodes; i++ {
		c, err := dataset.NewColumnFromCodes(bn.G.Name(i), cols[i], labels[i])
		if err != nil {
			return nil, err
		}
		dcols[i] = c
	}
	return dataset.New(dcols...)
}

// TrueParents returns the ground-truth parent names of a node, the target
// the CD algorithm and the baseline CDD methods are scored against in the
// Fig 5 experiments.
func (bn *BayesNet) TrueParents(name string) ([]string, error) {
	return bn.G.ParentNames(name)
}
