package independence

import (
	"context"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

// relProv builds a RelationProvider over an in-memory table, failing the
// test on error — the test-side replacement for the old table-scanning
// provider constructor.
func relProv(tb testing.TB, tab *dataset.Table, est stats.Estimator) *RelationProvider {
	tb.Helper()
	p, err := NewRelationProvider(context.Background(), mem.New(tab), est)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}
