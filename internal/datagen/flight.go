// Package datagen generates the synthetic stand-ins for every dataset in
// the paper's evaluation (Sec 7.1): FlightData, AdultData, BerkeleyData
// (real published counts), StaplesData, CancerData (the Fig 7 DAG) and
// RandomData (Erdős–Rényi DAGs with random CPTs). Each generator encodes
// the *structural* properties the paper's findings rest on — confounding
// patterns, functional dependencies, key-like attributes, mediator chains —
// so every HypDB code path exercised by the original data is exercised
// here. See DESIGN.md for the substitution rationale.
package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"hypdb/internal/dataset"
	"hypdb/internal/query"
)

// FlightColumns is the generated FlightData width, matching the paper's
// "101 attributes".
const FlightColumns = 101

// FlightRows is the default row count, matching Table 1 (43,853 rows).
const FlightRows = 43853

// flightAirports are the study airports of Ex 1.1 plus background traffic.
var flightAirports = []struct {
	code string
	wac  string // world-area-code-like attribute, 1-1 with the airport (FD)
	// baseDelay is the airport's intrinsic delay rate: ROC is the
	// high-delay airport of the example, COS and MFE the low-delay ones.
	baseDelay float64
	// traffic is the airport's share of flights.
	traffic float64
}{
	{"COS", "W82", 0.10, 0.13},
	{"MFE", "W74", 0.12, 0.12},
	{"MTJ", "W81", 0.25, 0.10},
	{"ROC", "W22", 0.40, 0.15},
	{"SEA", "W93", 0.18, 0.13},
	{"ORD", "W41", 0.30, 0.14},
	{"JFK", "W21", 0.28, 0.12},
	{"DEN", "W84", 0.22, 0.11},
}

// flightCarriers and their 1-1 codes (an FD with the treatment attribute).
var flightCarriers = []struct {
	code    string
	carrier string
	// delayShift is the carrier's intrinsic delay contribution: UA is
	// slightly *better* than AA everywhere, yet looks worse in aggregate
	// because of where it flies (the Fig 1 reversal).
	delayShift float64
}{
	{"19805", "AA", +0.030},
	{"19977", "UA", -0.030},
	{"19790", "DL", +0.000},
	{"19393", "WN", +0.010},
}

// carrierMix[airport][carrier] is P(carrier | airport): AA dominates the
// low-delay airports (COS, MFE), UA dominates high-delay ROC.
var carrierMix = map[string][]float64{
	"COS": {0.62, 0.10, 0.14, 0.14},
	"MFE": {0.58, 0.12, 0.15, 0.15},
	"MTJ": {0.38, 0.26, 0.18, 0.18},
	"ROC": {0.08, 0.64, 0.14, 0.14},
	"SEA": {0.25, 0.25, 0.25, 0.25},
	"ORD": {0.28, 0.30, 0.21, 0.21},
	"JFK": {0.30, 0.28, 0.21, 0.21},
	"DEN": {0.25, 0.27, 0.24, 0.24},
}

// yearCarrierBoost shifts the carrier mix by year: UA was over-represented
// in the high-delay year, making Year the second-ranked explanation as in
// Fig 1(d).
func yearCarrierBoost(year int, mix []float64) []float64 {
	out := append([]float64(nil), mix...)
	if year == 2015 {
		out[1] *= 1.5 // more UA flights in the bad year
	}
	if year == 2017 {
		out[0] *= 1.3 // more AA flights in the good year
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// yearDelayShift is the year's intrinsic delay contribution.
func yearDelayShift(year int) float64 {
	switch year {
	case 2015:
		return +0.06
	case 2016:
		return 0
	default:
		return -0.04
	}
}

// Flight generates the FlightData substitute: n rows over 101 attributes
// whose causal core is
//
//	Airport → Carrier, Airport → Delayed, Year → Carrier, Year → Delayed,
//	Month/DayOfWeek → Delayed, (Airport, Carrier) → Dest → Delayed,
//	Delayed → ArrDelayed,
//
// with the functional dependencies AirportWAC ⇔ Airport and
// CarrierCode ⇔ Carrier, key-like attributes (FlightID, FlightNum,
// TailNum), and filler attributes padding the schema to 101 columns. The
// carrier/airport mix is calibrated so that AA has the lower aggregate
// delay while UA is better at every individual airport — the Simpson
// reversal of Fig 1.
func Flight(n int, seed int64) (*dataset.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: Flight with %d rows", n)
	}
	rng := rand.New(rand.NewSource(seed))

	names := []string{
		"FlightID", "Year", "Quarter", "Month", "DayofMonth", "DayOfWeek",
		"FlightNum", "TailNum", "Carrier", "CarrierCode", "Airport",
		"AirportWAC", "AirportCity", "Dest", "DepTimeBlk", "Delayed",
		"ArrDelayed", "LateAircraft", "Cancelled", "Distance",
	}
	for len(names) < FlightColumns {
		names = append(names, fmt.Sprintf("Feature%02d", len(names)-19))
	}
	b := dataset.NewBuilder(names...)

	airportCum := make([]float64, len(flightAirports))
	acc := 0.0
	for i, a := range flightAirports {
		acc += a.traffic
		airportCum[i] = acc
	}

	dests := []string{"LAX", "SFO", "ATL", "DFW", "BOS", "MSP"}
	row := make([]string, len(names))
	for i := 0; i < n; i++ {
		// Airport.
		u := rng.Float64() * acc
		ai := 0
		for airportCum[ai] < u {
			ai++
		}
		airport := flightAirports[ai]

		// Calendar attributes.
		year := 2015 + rng.Intn(3)
		month := 1 + rng.Intn(12)
		quarter := (month-1)/3 + 1 // FD: Month ⇒ Quarter
		day := 1 + rng.Intn(28)
		dow := 1 + rng.Intn(7)

		// Carrier | Airport, Year.
		mix := yearCarrierBoost(year, carrierMix[airport.code])
		ci := sampleIndex(rng, mix)
		carrier := flightCarriers[ci]

		// Dest | Airport, Carrier (a mediator: it also shifts delay).
		di := (ai + ci + rng.Intn(3)) % len(dests)
		destShift := 0.0
		if di == 0 || di == 2 {
			destShift = 0.02
		}

		// DepTimeBlk | DayOfWeek.
		dep := "morning"
		switch {
		case rng.Float64() < 0.3:
			dep = "evening"
		case rng.Float64() < 0.4:
			dep = "afternoon"
		}
		depShift := 0.0
		if dep == "evening" {
			depShift = 0.03
		}

		// Delayed | Airport, Year, Month, DayOfWeek, Carrier, Dest, Dep.
		p := airport.baseDelay + yearDelayShift(year) + carrier.delayShift + destShift + depShift
		if month == 12 || month == 1 {
			p += 0.03 // winter
		}
		if dow >= 6 {
			p -= 0.02 // weekends lighter
		}
		delayed := bernoulli(rng, p)

		// ArrDelayed | Delayed; LateAircraft | ArrDelayed.
		arr := delayed
		if rng.Float64() < 0.15 {
			arr = 1 - arr
		}
		late := 0
		if arr == 1 && rng.Float64() < 0.4 {
			late = 1
		}
		cancelled := bernoulli(rng, 0.015)

		row[0] = strconv.Itoa(1000000 + i) // FlightID: unique key
		row[1] = strconv.Itoa(year)
		row[2] = "Q" + strconv.Itoa(quarter)
		row[3] = strconv.Itoa(month)
		row[4] = strconv.Itoa(day)
		row[5] = strconv.Itoa(dow)
		row[6] = strconv.Itoa(100 + rng.Intn(1500)) // FlightNum: key-like
		row[7] = "N" + strconv.Itoa(10000+rng.Intn(800))
		row[8] = carrier.carrier
		row[9] = carrier.code // FD with Carrier
		row[10] = airport.code
		row[11] = airport.wac // FD with Airport
		row[12] = airport.code + "-City"
		row[13] = dests[di]
		row[14] = dep
		row[15] = strconv.Itoa(delayed)
		row[16] = strconv.Itoa(arr)
		row[17] = strconv.Itoa(late)
		row[18] = strconv.Itoa(cancelled)
		row[19] = distanceBucket(ai, di)
		for j := 20; j < len(names); j++ {
			row[j] = fillerValue(rng, j)
		}
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Table()
}

// FlightQuery is the biased query of Fig 1: average delay by carrier at the
// four study airports.
func FlightQuery() query.Query {
	return query.Query{
		Table:     "FlightData",
		Treatment: "Carrier",
		Outcomes:  []string{"Delayed"},
		Where: dataset.And{
			dataset.In{Attr: "Carrier", Values: []string{"AA", "UA"}},
			dataset.In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
		},
	}
}

// FlightCovariates is the fixed covariate set of the Fig 5(a) experiment
// ("rewrite the queries w.r.t. the potential covariates Airport, Day,
// Month, DayOfWeek").
func FlightCovariates() []string {
	return []string{"Airport", "DayofMonth", "Month", "DayOfWeek"}
}

func distanceBucket(ai, di int) string {
	switch (ai + di) % 3 {
	case 0:
		return "short"
	case 1:
		return "medium"
	default:
		return "long"
	}
}

// fillerValue produces an independent categorical value whose cardinality
// varies with the column index (2–10 categories).
func fillerValue(rng *rand.Rand, col int) string {
	card := 2 + col%9
	return "v" + strconv.Itoa(rng.Intn(card))
}

func bernoulli(rng *rand.Rand, p float64) int {
	if p < 0.01 {
		p = 0.01
	}
	if p > 0.99 {
		p = 0.99
	}
	if rng.Float64() < p {
		return 1
	}
	return 0
}

// sampleIndex draws an index proportional to the (normalized) weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
