// Package lint holds the repository's self-enforced documentation checks,
// run as ordinary tests (and by the CI docs job): the exported-comment rule
// over every public package (the revive `exported` rule, implemented with
// go/ast so it needs no external tooling), a dead-link check over the
// markdown documentation set, and a gofmt check over the documentation's
// Go examples.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// publicPackages are the package directories (repo-relative) whose exported
// API must be fully documented.
var publicPackages = []string{".", "api", "source", "source/mem", "source/remote", "source/sqldb"}

// repoRoot locates the repository root from this file's path.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestExportedDocComments enforces the `exported` documentation rule over
// the public packages: every package has a package comment, and every
// exported top-level identifier has a doc comment that starts with (or
// early mentions) the identifier. Grouped const/var specs may share the
// group's doc comment.
func TestExportedDocComments(t *testing.T) {
	root := repoRoot(t)
	var violations []string
	for _, dir := range publicPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					hasPkgDoc = true
				}
			}
			if !hasPkgDoc {
				violations = append(violations, dir+": package "+pkg.Name+" has no package comment")
			}
			for path, f := range pkg.Files {
				rel, _ := filepath.Rel(root, path)
				for _, d := range f.Decls {
					violations = append(violations, checkDecl(fset, rel, d)...)
				}
			}
		}
	}
	if len(violations) > 0 {
		t.Errorf("exported identifiers missing doc comments (%d):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
}

// checkDecl returns the exported-comment violations of one top-level
// declaration.
func checkDecl(fset *token.FileSet, file string, decl ast.Decl) []string {
	var out []string
	bad := func(pos token.Pos, name, why string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d %s: %s", file, p.Line, name, why))
	}
	named := func(doc *ast.CommentGroup, name string) bool {
		text := strings.TrimSpace(doc.Text())
		// The standard rule: the comment starts with the identifier (an
		// article prefix and the deprecation marker are conventional).
		for _, prefix := range []string{name, "A " + name, "An " + name, "The " + name, "Deprecated:"} {
			if strings.HasPrefix(text, prefix) {
				return true
			}
		}
		return false
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
			bad(d.Pos(), d.Name.Name, "exported function/method has no doc comment")
		} else if !named(d.Doc, d.Name.Name) {
			bad(d.Pos(), d.Name.Name, "doc comment should start with the identifier")
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				doc := s.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				if doc == nil || strings.TrimSpace(doc.Text()) == "" {
					bad(s.Pos(), s.Name.Name, "exported type has no doc comment")
				} else if !named(doc, s.Name.Name) {
					bad(s.Pos(), s.Name.Name, "doc comment should start with the identifier")
				}
			case *ast.ValueSpec:
				specDoc := (s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
					(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "")
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					// A const/var is documented by its own comment or by
					// its group's doc comment.
					if !specDoc && !groupDoc {
						bad(n.Pos(), n.Name, "exported value has neither its own nor a group doc comment")
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver's base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
