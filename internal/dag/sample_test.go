package dag

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"hypdb/internal/independence"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

func TestNewBayesNetValidation(t *testing.T) {
	g := MustNew("A", "B")
	g.MustAddEdge("A", "B")
	// Wrong CPT length.
	if _, err := NewBayesNet(g, []int{2, 2}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err == nil {
		t.Error("short CPT accepted (B needs 2 rows × 2 cols)")
	}
	// Row not summing to 1.
	if _, err := NewBayesNet(g, []int{2, 2}, [][]float64{{0.5, 0.5}, {0.9, 0.9, 0.1, 0.1}}); err == nil {
		t.Error("non-normalized CPT row accepted")
	}
	// Negative probability.
	if _, err := NewBayesNet(g, []int{2, 2}, [][]float64{{1.5, -0.5}, {0.5, 0.5, 0.5, 0.5}}); err == nil {
		t.Error("negative probability accepted")
	}
	// Card < 2.
	if _, err := NewBayesNet(g, []int{1, 2}, [][]float64{{1}, {0.5, 0.5}}); err == nil {
		t.Error("unary variable accepted")
	}
	// Valid.
	bn, err := NewBayesNet(g, []int{2, 2}, [][]float64{{0.3, 0.7}, {0.9, 0.1, 0.2, 0.8}})
	if err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}
	if bn.G != g {
		t.Error("graph not retained")
	}
}

func TestSampleMarginals(t *testing.T) {
	// A → B with known CPTs; sampled marginals must match.
	g := MustNew("A", "B")
	g.MustAddEdge("A", "B")
	bn, err := NewBayesNet(g, []int{2, 2}, [][]float64{
		{0.3, 0.7},           // P(A)
		{0.9, 0.1, 0.2, 0.8}, // P(B|A=0), P(B|A=1)
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(1)), 20000)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tab.Float("A")
	b, _ := tab.Float("B")
	meanA, _ := stats.MeanVariance(a)
	if math.Abs(meanA-0.7) > 0.02 {
		t.Errorf("P(A=1) ≈ %v, want 0.7", meanA)
	}
	// P(B=1) = 0.3·0.1 + 0.7·0.8 = 0.59.
	meanB, _ := stats.MeanVariance(b)
	if math.Abs(meanB-0.59) > 0.02 {
		t.Errorf("P(B=1) ≈ %v, want 0.59", meanB)
	}
	// P(B=1|A=1) ≈ 0.8.
	n11, n1 := 0, 0
	for i := range a {
		if a[i] == 1 {
			n1++
			if b[i] == 1 {
				n11++
			}
		}
	}
	if got := float64(n11) / float64(n1); math.Abs(got-0.8) > 0.03 {
		t.Errorf("P(B=1|A=1) ≈ %v, want 0.8", got)
	}
}

func TestSampleValidatesN(t *testing.T) {
	g := MustNew("A")
	bn, err := NewBayesNet(g, []int{2}, [][]float64{{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bn.Sample(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRandomBayesNetShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomDAG(rng, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := RandomBayesNet(rng, g, 2, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, card := range bn.Cards {
		if card < 2 || card > 5 {
			t.Errorf("node %d card = %d outside [2,5]", i, card)
		}
	}
	tab, err := bn.Sample(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 500 || tab.NumCols() != 8 {
		t.Errorf("sample shape %dx%d, want 500x8", tab.NumRows(), tab.NumCols())
	}
	if _, err := RandomBayesNet(rng, g, 1, 5, 0.5); err == nil {
		t.Error("minCard=1 accepted")
	}
	if _, err := RandomBayesNet(rng, g, 2, 5, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
}

// Sampling respects the DAG's independence structure: in a collider
// A → B ← C, A and C are independent in the data but dependent given B.
func TestSampleColliderFaithfulness(t *testing.T) {
	g := MustNew("A", "B", "C")
	g.MustAddEdge("A", "B")
	g.MustAddEdge("C", "B")
	// XOR-ish CPT to make the collider dependence strong.
	bn, err := NewBayesNet(g, []int{2, 2, 2}, [][]float64{
		{0.5, 0.5},
		{0.9, 0.1, 0.1, 0.9, 0.1, 0.9, 0.9, 0.1}, // B ≈ A XOR C
		{0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rand.New(rand.NewSource(3)), 5000)
	if err != nil {
		t.Fatal(err)
	}
	chi := independence.ChiSquare{Est: stats.MillerMadow}
	marg, err := chi.Test(context.Background(), mem.New(tab), "A", "C", nil)
	if err != nil {
		t.Fatal(err)
	}
	if marg.PValue < 0.01 {
		t.Errorf("A ⊥ C should hold marginally: p = %v", marg.PValue)
	}
	cond, err := chi.Test(context.Background(), mem.New(tab), "A", "C", []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if cond.PValue > 0.01 {
		t.Errorf("A ⊥̸ C | B should hold (Berkson): p = %v", cond.PValue)
	}
}

// Ground-truth agreement at scale: for a random net, every pairwise
// d-separation statement should be matched by the chi-square verdict on a
// large sample (modulo rare statistical errors, so we demand ≥80%
// agreement).
func TestSampleAgreesWithDSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := RandomDAG(rng, 6, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := RandomBayesNet(rng, g, 2, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bn.Sample(rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	chi := independence.ChiSquare{Est: stats.MillerMadow}
	agree, total := 0, 0
	for x := 0; x < 6; x++ {
		for y := x + 1; y < 6; y++ {
			total++
			sep := g.DSeparated([]int{x}, []int{y}, nil)
			res, err := chi.Test(context.Background(), mem.New(tab), g.Name(x), g.Name(y), nil)
			if err != nil {
				t.Fatal(err)
			}
			if independence.Decision(res, 0.01) == sep {
				agree++
			}
		}
	}
	if float64(agree) < 0.8*float64(total) {
		t.Errorf("only %d/%d pairwise verdicts agree with d-separation", agree, total)
	}
}

func TestTrueParents(t *testing.T) {
	g := MustNew("A", "B", "C")
	g.MustAddEdge("A", "C")
	g.MustAddEdge("B", "C")
	bn, err := RandomBayesNet(rand.New(rand.NewSource(5)), g, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parents, err := bn.TrueParents("C")
	if err != nil {
		t.Fatal(err)
	}
	if !sameStringSet(parents, []string{"A", "B"}) {
		t.Errorf("TrueParents(C) = %v", parents)
	}
}
