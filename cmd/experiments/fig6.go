package main

import (
	"context"

	"time"

	"hypdb/internal/cdd"
	"hypdb/internal/core"
	"hypdb/internal/cube"
	"hypdb/internal/datagen"
	"hypdb/internal/independence"
	"hypdb/internal/markov"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

func init() {
	register("fig6a", "number of independence tests: FGS vs CD", runFig6a)
	register("fig6b", "runtime of one test: MIT, MIT(sampling), HyMIT, chi2 (+naive shuffle)", runFig6b)
	register("fig6c", "CD runtime: caching and materialization ablation", runFig6c)
	register("fig6d", "CD runtime with vs without a pre-computed data cube", runFig6d)
	register("fig8a", "accuracy of the independence tests vs ground truth", runFig8a)
	register("fig8b", "cube benefit vs number of attributes", runFig8b)
}

func fig6Spec(rows int, nodes int) datagen.RandomSpec {
	return datagen.RandomSpec{
		Nodes: nodes, AvgDegree: 2.5, MinCard: 2, MaxCard: 4,
		Alpha: 0.35, Rows: rows, Seed: 21,
	}
}

// ---------------------------------------------------------------------------
// Fig 6(a): number of independence tests

func runFig6a(cfg runConfig) error {
	sizes := []int{10000, 30000, 50000, 100000}
	nodes := 16 // FGS's pairwise searches grow with the DAG; CD stays local
	if cfg.quick {
		sizes = []int{5000, 20000}
		nodes = 12
	}
	// Both FGS and CD learn Markov boundaries with the same Grow-Shrink
	// subroutine; the comparison (as in the paper, which reports tests per
	// node) is about the structure-resolution work on top of the
	// boundaries: FGS's skeleton + orientation searches for the whole DAG
	// versus CD's two phases for one node.
	row("%-10s %12s %14s %16s %12s %18s", "rows", "FGS(total)", "FGS(per node)", "FGS(post,/node)", "CD(per node)", "CD(+boundaries)")
	for _, rows := range sizes {
		tab, _, err := datagen.Random(fig6Spec(rows, nodes))
		if err != nil {
			return err
		}
		attrs := tab.Columns()

		counter := &independence.Counter{Inner: independence.ChiSquare{Est: stats.MillerMadow}}
		if _, err := cdd.LearnStructure(context.Background(), mem.New(tab), attrs, cdd.ConstraintConfig{Tester: counter}); err != nil {
			return err
		}
		fgsTotal := counter.Calls()

		// FGS's boundary-learning share, for the apples-to-apples
		// post-boundary comparison.
		counter.Reset()
		mcfg := markov.Config{Tester: counter}
		for _, a := range attrs {
			if _, err := markov.GrowShrink(context.Background(), mem.New(tab), a, exclude(attrs, a), mcfg); err != nil {
				return err
			}
		}
		fgsBoundary := counter.Calls()
		fgsPost := fgsTotal - fgsBoundary
		if fgsPost < 0 {
			fgsPost = 0
		}

		cdPhases, cdAll := 0, 0
		cfgCD := core.Config{Method: core.ChiSquaredMethod, Seed: cfg.seed, DisableFallback: true, MaxCondSet: 3}
		for _, a := range attrs {
			res, err := core.DiscoverCovariates(context.Background(), mem.New(tab), a, exclude(attrs, a), nil, cfgCD)
			if err != nil {
				return err
			}
			cdPhases += res.TestsPhases
			cdAll += res.Tests
		}
		n := len(attrs)
		row("%-10d %12d %14.1f %16.1f %12.1f %18.1f", rows, fgsTotal,
			float64(fgsTotal)/float64(n), float64(fgsPost)/float64(n),
			float64(cdPhases)/float64(n), float64(cdAll)/float64(n))
	}
	row("(the deployment-relevant comparison is FGS(total) — the whole DAG, which a query never needs —")
	row(" against CD(+boundaries) — everything one query's treatment requires; CD stays a fraction of")
	row(" the full-DAG cost and, unlike FGS, does not grow with the schema beyond the local boundaries)")
	return nil
}

// ---------------------------------------------------------------------------
// Fig 6(b): runtime of a single conditional independence test

func runFig6b(cfg runConfig) error {
	sizes := []int{10000, 20000, 40000}
	perms := 1000
	shuffleCap := 10000 // the naive baseline is quadratic-ish in practice
	if cfg.quick {
		sizes = []int{5000, 15000}
		perms = 300
		shuffleCap = 5000
	}
	row("%-10s %14s %14s %14s %14s %14s", "rows", "MIT", "MIT(sampling)", "HyMIT", "chi2", "shuffle")
	for _, rows := range sizes {
		// A wide, high-cardinality conditioning set creates the many-group
		// regime (large |Π_Z(D)|) where the paper's group-sampling and
		// hybrid optimizations pay off.
		spec := datagen.RandomSpec{Nodes: 8, AvgDegree: 2.5, MinCard: 3, MaxCard: 6, Alpha: 0.35, Rows: rows, Seed: 21}
		tab, _, err := datagen.Random(spec)
		if err != nil {
			return err
		}
		attrs := tab.Columns()
		x, y := attrs[0], attrs[1]
		z := attrs[2:6]

		timeTest := func(t independence.Tester) time.Duration {
			best := time.Duration(-1)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, err := t.Test(context.Background(), mem.New(tab), x, y, z); err != nil {
					return -1
				}
				if d := time.Since(start); best < 0 || d < best {
					best = d
				}
			}
			return best
		}
		mit := timeTest(independence.MIT{Permutations: perms, Seed: 1, Est: stats.PlugIn, Parallel: true})
		mitS := timeTest(independence.MIT{Permutations: perms, Seed: 1, Est: stats.PlugIn, SampleGroups: true, Parallel: true})
		hymit := timeTest(independence.HyMIT{Permutations: perms, Seed: 1, Est: stats.MillerMadow, Parallel: true})
		chi := timeTest(independence.ChiSquare{Est: stats.MillerMadow})
		shuffle := time.Duration(-1)
		if rows <= shuffleCap {
			shuffle = timeTest(independence.Shuffle{Permutations: perms, Seed: 1, Est: stats.PlugIn})
		}
		row("%-10d %14s %14s %14s %14s %14s", rows, fmtDur(mit), fmtDur(mitS), fmtDur(hymit), fmtDur(chi), fmtDur(shuffle))
	}
	row("(paper: MIT(sampling) and HyMIT ≪ MIT; data shuffling is orders of magnitude slower than all)")
	return nil
}

func fmtDur(d time.Duration) string {
	if d < 0 {
		return "skipped"
	}
	return d.Round(10 * time.Microsecond).String()
}

// ---------------------------------------------------------------------------
// Fig 6(c): caching / materialization ablation

func runFig6c(cfg runConfig) error {
	sizes := []int{20000, 100000, 400000}
	if cfg.quick {
		sizes = []int{10000, 50000}
	}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"none", func(c *core.Config) { c.DisableEntropyCache = true; c.DisableMaterialization = true }},
		{"+materialization", func(c *core.Config) { c.DisableEntropyCache = true }},
		{"+caching", func(c *core.Config) { c.DisableMaterialization = true }},
		{"+both", func(c *core.Config) {}},
		{"precomputed(cube)", func(c *core.Config) {}}, // cube attached below
	}
	row("%-10s %18s %12s", "rows", "variant", "CD time")
	for _, rows := range sizes {
		tab, _, err := datagen.Random(fig6Spec(rows, 8))
		if err != nil {
			return err
		}
		attrs := tab.Columns()
		target := attrs[0]
		var fullCube *cube.Cube
		for _, v := range variants {
			c := core.Config{Method: core.ChiSquaredMethod, Seed: cfg.seed, DisableFallback: true}
			v.mut(&c)
			if v.name == "precomputed(cube)" {
				if fullCube == nil {
					fullCube, err = cube.Build(tab, attrs)
					if err != nil {
						return err
					}
				}
				c.Cube = fullCube
			}
			start := time.Now()
			if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), target, exclude(attrs, target), nil, c); err != nil {
				return err
			}
			row("%-10d %18s %12s", rows, v.name, time.Since(start).Round(10*time.Microsecond))
		}
	}
	row("(paper: both optimizations help; entropy computation dominates CD; precomputed entropies are fastest)")
	return nil
}

// ---------------------------------------------------------------------------
// Fig 6(d) / Fig 8(b): data-cube benefit

func cubeBenefit(cfg runConfig, rowsList []int, nodesList []int) error {
	row("%-8s %-8s %12s %12s %14s", "attrs", "rows", "no cube", "with cube", "cube build")
	for _, nodes := range nodesList {
		for _, rows := range rowsList {
			spec := fig6Spec(rows, nodes)
			spec.MaxCard = 2 // the paper restricts the cube experiments to binary data
			tab, _, err := datagen.Random(spec)
			if err != nil {
				return err
			}
			attrs := tab.Columns()
			target := attrs[0]

			noCube := core.Config{Method: core.ChiSquaredMethod, Seed: cfg.seed, DisableFallback: true}
			start := time.Now()
			if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), target, exclude(attrs, target), nil, noCube); err != nil {
				return err
			}
			dNo := time.Since(start)

			buildStart := time.Now()
			cb, err := cube.Build(tab, attrs)
			if err != nil {
				return err
			}
			dBuild := time.Since(buildStart)

			withCube := noCube
			withCube.Cube = cb
			start = time.Now()
			if _, err := core.DiscoverCovariates(context.Background(), mem.New(tab), target, exclude(attrs, target), nil, withCube); err != nil {
				return err
			}
			dWith := time.Since(start)
			row("%-8d %-8d %12s %12s %14s", nodes, rows,
				dNo.Round(10*time.Microsecond), dWith.Round(10*time.Microsecond), dBuild.Round(10*time.Microsecond))
		}
	}
	return nil
}

func runFig6d(cfg runConfig) error {
	sizes := []int{50000, 200000, 800000}
	if cfg.quick {
		sizes = []int{20000, 80000}
	}
	section("CD with vs without a pre-computed cube (8 binary attributes, varying input size)")
	if err := cubeBenefit(cfg, sizes, []int{8}); err != nil {
		return err
	}
	row("(paper: the advantage of using the data cube is dramatic and grows with input size)")
	return nil
}

func runFig8b(cfg runConfig) error {
	rows := 100000
	nodes := []int{8, 10, 12}
	if cfg.quick {
		rows = 30000
		nodes = []int{8, 10}
	}
	section("CD with vs without a cube, varying the number of attributes (%d rows)", rows)
	if err := cubeBenefit(cfg, []int{rows}, nodes); err != nil {
		return err
	}
	row("(paper: cube advantage persists from 8 to 12 attributes; PostgreSQL limits CUBE to 12)")
	return nil
}

// ---------------------------------------------------------------------------
// Fig 8(a): test accuracy vs ground truth

func runFig8a(cfg runConfig) error {
	sizes := []int{5000, 15000, 40000}
	perms := 400
	if cfg.quick {
		sizes = []int{3000, 10000}
		perms = 150
	}
	row("%-10s %14s %14s %14s %14s", "rows", "MIT", "MIT(sampling)", "HyMIT", "chi2")
	for _, rows := range sizes {
		// Sparser regime: more categories per node, as in the paper's
		// sparse-data stress test.
		spec := datagen.RandomSpec{Nodes: 6, AvgDegree: 2.5, MinCard: 3, MaxCard: 6, Alpha: 0.35, Rows: rows, Seed: 31}
		tab, bn, err := datagen.Random(spec)
		if err != nil {
			return err
		}
		attrs := tab.Columns()
		g := bn.G

		testers := []struct {
			name string
			t    independence.Tester
		}{
			{"MIT", independence.MIT{Permutations: perms, Seed: 1, Est: stats.PlugIn, Parallel: true}},
			{"MIT(sampling)", independence.MIT{Permutations: perms, Seed: 1, Est: stats.PlugIn, SampleGroups: true, Parallel: true}},
			{"HyMIT", independence.HyMIT{Permutations: perms, Seed: 1, Est: stats.MillerMadow, Parallel: true}},
			{"chi2", independence.ChiSquare{Est: stats.MillerMadow}},
		}
		f1s := make([]float64, len(testers))
		for ti, tester := range testers {
			tp, fp, fn := 0, 0, 0
			// Enumerate CI statements: every pair, conditioning on each
			// subset of the remaining attributes up to size 2.
			for i := 0; i < len(attrs); i++ {
				for j := i + 1; j < len(attrs); j++ {
					rest := []string{}
					for k := 0; k < len(attrs); k++ {
						if k != i && k != j {
							rest = append(rest, attrs[k])
						}
					}
					conds := [][]string{nil}
					for _, r := range rest {
						conds = append(conds, []string{r})
					}
					conds = append(conds, rest[:2])
					for _, z := range conds {
						truthDep := !dsepNames(g, attrs[i], attrs[j], z)
						res, err := tester.t.Test(context.Background(), mem.New(tab), attrs[i], attrs[j], z)
						if err != nil {
							return err
						}
						gotDep := !independence.Decision(res, 0.01)
						switch {
						case truthDep && gotDep:
							tp++
						case !truthDep && gotDep:
							fp++
						case truthDep && !gotDep:
							fn++
						}
					}
				}
			}
			if tp > 0 {
				prec := float64(tp) / float64(tp+fp)
				rec := float64(tp) / float64(tp+fn)
				f1s[ti] = 2 * prec * rec / (prec + rec)
			}
		}
		row("%-10d %14.3f %14.3f %14.3f %14.3f", rows, f1s[0], f1s[1], f1s[2], f1s[3])
	}
	row("(paper: the permutation-based tests stay accurate on sparse data where chi2 degrades)")
	return nil
}

func dsepNames(g interface {
	DSeparatedNames(xs, ys, zs []string) (bool, error)
}, x, y string, z []string) bool {
	sep, err := g.DSeparatedNames([]string{x}, []string{y}, z)
	if err != nil {
		return false
	}
	return sep
}
