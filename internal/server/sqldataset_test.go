package server

// Tests for DSN-registered datasets: the server speaks to a SQL database
// through the sqldb backend (served here by the in-process memsql driver),
// analyses produce the same conclusions as the CSV path, and deleting the
// dataset tears down the database handle.

import (
	"context"
	"errors"
	"testing"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/memsql"
)

func registerBerkeleySQL(t *testing.T) {
	t.Helper()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	memsql.Register("berkeley_sql", tab)
	t.Cleanup(func() { memsql.Unregister("berkeley_sql") })
}

func TestSQLDatasetLifecycle(t *testing.T) {
	registerBerkeleySQL(t)
	_, c := newTestServer(t, Config{AllowSQLDrivers: []string{memsql.DriverName}})
	ctx := context.Background()

	info, err := c.CreateSQLDataset(ctx, "berkeley", memsql.DriverName, "", "berkeley_sql")
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "sqldb" || info.Rows != datagen.BerkeleyRows() || info.Cols != 3 {
		t.Fatalf("created %+v, want sqldb backend with Berkeley shape", info)
	}

	st, err := c.Stats(ctx, "berkeley")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Attributes) != 3 {
		t.Fatalf("stats attributes = %+v", st.Attributes)
	}

	// Analyze through the SQL backend: the Fig 4 conclusions hold.
	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mediators) != 1 || rep.Mediators[0] != "Department" {
		t.Fatalf("mediators = %v, want [Department]", rep.Mediators)
	}

	// Deleting the dataset closes the SQL handle.
	if err := c.DeleteDataset(ctx, "berkeley"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(ctx, "berkeley"); err == nil {
		t.Fatal("stats succeeded after delete")
	}
}

func TestSQLDatasetRegistrationDisabledByDefault(t *testing.T) {
	registerBerkeleySQL(t)
	_, c := newTestServer(t, Config{}) // no AllowSQLDrivers
	if _, err := c.CreateSQLDataset(context.Background(), "nope", memsql.DriverName, "", "berkeley_sql"); err == nil {
		t.Fatal("HTTP SQL registration succeeded without an allowlist")
	}
}

func TestSQLDatasetBadRegistrations(t *testing.T) {
	registerBerkeleySQL(t)
	_, c := newTestServer(t, Config{AllowSQLDrivers: []string{memsql.DriverName, "definitely-not-registered"}})
	ctx := context.Background()

	cases := []struct {
		name               string
		driver, dsn, table string
		wantCode           string
	}{
		{"missing table", memsql.DriverName, "", "", api.CodeBadRequest},
		{"unknown table", memsql.DriverName, "", "no_such_table", api.CodeBadRequest},
		{"unknown driver", "definitely-not-registered", "", "t", api.CodeBadRequest},
	}
	for _, tc := range cases {
		_, err := c.CreateSQLDataset(ctx, "ds_"+tc.name[:4], tc.driver, tc.dsn, tc.table)
		if err == nil {
			t.Errorf("%s: registration unexpectedly succeeded", tc.name)
			continue
		}
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != tc.wantCode {
			t.Errorf("%s: err = %v, want code %s", tc.name, err, tc.wantCode)
		}
	}

	// A well-formed registration on the same server still works after the
	// failures above.
	if _, err := c.CreateSQLDataset(ctx, "control", memsql.DriverName, "", "berkeley_sql"); err != nil {
		t.Fatalf("control registration failed: %v", err)
	}
}
