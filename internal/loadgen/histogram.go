// Package loadgen is hypdbd's load and chaos harness: it drives
// concurrent analyze/audit/append/metrics mixes against a server through
// the public API client, classifies every outcome (success, typed shed,
// typed error, transport failure, hang), tracks per-operation latency
// histograms, and checks the robustness invariants the server promises —
// overload sheds with Retry-After instead of hanging, and analyses never
// observe a mix of snapshot epochs even while appends race them. The
// cmd/hypdbload binary and the chaos tests (peer kill, slow-loris,
// mid-flight restart) are built on it.
package loadgen

import (
	"math"
	"sync"
	"time"
)

// Exponential latency buckets: bucket i covers
// [bucketBase·growthⁱ, bucketBase·growthⁱ⁺¹), spanning ~50µs to ~1h.
const (
	bucketBase   = 50 * time.Microsecond
	bucketGrowth = 1.3
	numBuckets   = 88
)

// Histogram is a concurrency-safe latency histogram with exponential
// buckets — coarse enough to be tiny, fine enough (30% resolution) for
// p99 assertions.
type Histogram struct {
	mu     sync.Mutex
	counts [numBuckets]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

func bucketFor(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	i := int(math.Log(float64(d)/float64(bucketBase)) / math.Log(bucketGrowth))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound reported for bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(float64(bucketBase) * math.Pow(bucketGrowth, float64(i+1)))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Quantile returns an upper bound for the p-quantile (p in [0,1]); zero
// when the histogram is empty. The bound is the upper edge of the bucket
// holding the p-th observation, so assertions against it are
// conservative.
func (h *Histogram) Quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Summary is a histogram snapshot in JSON-friendly form (milliseconds).
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize snapshots the histogram.
func (h *Histogram) Summarize() Summary {
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Summary{Count: h.total, P50MS: ms(p50), P95MS: ms(p95), P99MS: ms(p99), MaxMS: ms(h.max)}
	if h.total > 0 {
		s.MeanMS = ms(h.sum / time.Duration(h.total))
	}
	return s
}
