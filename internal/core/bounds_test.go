package core

import (
	"context"

	"testing"

	"hypdb/internal/query"
	"hypdb/source/mem"
)

func TestEffectBoundsBracketsTruth(t *testing.T) {
	tab := simpsonData(t, 12000, 71)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	res, err := EffectBounds(context.Background(), mem.New(tab), q, []string{"Z"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two sets evaluated: {} (raw, positive diff) and {Z} (adjusted,
	// negative diff). The bounds must bracket zero — the signature of the
	// Simpson ambiguity.
	if res.Sets != 2 {
		t.Fatalf("sets = %d, want 2", res.Sets)
	}
	if !(res.Lower < 0 && res.Upper > 0) {
		t.Errorf("bounds [%v, %v] do not bracket 0", res.Lower, res.Upper)
	}
	if len(res.LowerSet) != 1 || res.LowerSet[0] != "Z" {
		t.Errorf("LowerSet = %v, want [Z] (adjustment flips the sign)", res.LowerSet)
	}
	if len(res.UpperSet) != 0 {
		t.Errorf("UpperSet = %v, want the raw difference", res.UpperSet)
	}
}

func TestEffectBoundsMaxSize(t *testing.T) {
	tab := simpsonData(t, 4000, 72)
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	// With maxSize 0 over two candidates we get 1 + 2 + 1 = 4 sets; with
	// maxSize 1 only 1 + 2 = 3.
	tab2 := tab // Z plus a noise attribute would be better; reuse Z only
	res, err := EffectBounds(context.Background(), mem.New(tab2), q, []string{"Z"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sets != 2 {
		t.Errorf("sets = %d, want 2 (empty + {Z})", res.Sets)
	}
}

func TestEffectBoundsValidation(t *testing.T) {
	tab := simpsonData(t, 1000, 73)
	bad := query.Query{Treatment: "missing", Outcomes: []string{"Y"}}
	if _, err := EffectBounds(context.Background(), mem.New(tab), bad, nil, 0); err == nil {
		t.Error("invalid query accepted")
	}
	many := make([]string, 21)
	for i := range many {
		many[i] = "Z"
	}
	q := query.Query{Treatment: "T", Outcomes: []string{"Y"}}
	if _, err := EffectBounds(context.Background(), mem.New(tab), q, many, 0); err == nil {
		t.Error("21 candidates accepted without a cap")
	}
}
