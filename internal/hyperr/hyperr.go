// Package hyperr defines the sentinel errors shared across HypDB's layers.
// Internal packages wrap these with fmt.Errorf("...: %w", ...) so callers —
// and the public facade, which re-exports them — can classify failures with
// errors.Is without parsing message text.
package hyperr

import "errors"

var (
	// ErrUnknownAttribute marks a reference to a column the table does not
	// have (bad treatment, outcome, grouping, covariate, or candidate name).
	ErrUnknownAttribute = errors.New("unknown attribute")

	// ErrNoOverlap marks an adjustment that is impossible because no
	// covariate block contains every treatment value (the exact-matching
	// overlap requirement of the rewritten query, Listing 2).
	ErrNoOverlap = errors.New("no overlap between treatment groups")

	// ErrEmptySelection marks a WHERE clause that selects no rows.
	ErrEmptySelection = errors.New("selection is empty")

	// ErrEmptyTable marks an independence test over zero rows.
	ErrEmptyTable = errors.New("empty table")

	// ErrNonBinaryTreatment marks a comparison that needs exactly two
	// treatment values.
	ErrNonBinaryTreatment = errors.New("treatment is not two-valued")

	// ErrNonNumericOutcome marks an attribute used in the outcome role
	// whose values do not all parse as numbers — avg() over it is
	// undefined.
	ErrNonNumericOutcome = errors.New("outcome is not numeric")

	// ErrMalformedCSV marks CSV input the loader cannot turn into a table:
	// unreadable records, ragged rows, or an unusable header (duplicate or
	// empty schema).
	ErrMalformedCSV = errors.New("malformed CSV")

	// ErrBadPredicate marks WHERE-clause text the predicate parser rejects.
	ErrBadPredicate = errors.New("invalid predicate")

	// ErrNeedsMaterialization marks an operation that requires row-level
	// access (e.g. the naive shuffle permutation test) applied to a
	// counts-only relation — a storage backend that can answer aggregate
	// group-by counts but cannot produce raw rows. Callers either switch to
	// a counts-based method or supply a source.Materializer-capable backend.
	ErrNeedsMaterialization = errors.New("operation needs row-level materialization")

	// ErrNotAppendable marks a streaming-ingestion request against a
	// relation that cannot grow: only backends implementing source.Appender
	// (the sharded backend, and anything wrapping one) accept appended rows.
	ErrNotAppendable = errors.New("relation does not support appends")

	// ErrPeerUnavailable marks a remote shard that could not be reached:
	// the peer refused connections, timed out past the retry budget, or
	// answered 5xx until retries ran out. Coordinators either fail the
	// sweep or degrade to the surviving shards (marking the result stale).
	ErrPeerUnavailable = errors.New("remote peer unavailable")

	// ErrVersionSkew marks a remote counts answer computed at a different
	// snapshot version than the coordinator pinned at registration — the
	// peer's dataset was appended to or replaced underneath the handle.
	// Mixing epochs would silently corrupt statistics, so the call fails
	// instead; re-open the remote dataset to adopt the new version.
	ErrVersionSkew = errors.New("remote peer snapshot version skew")

	// ErrPeerAuth marks a remote peer that rejected this node's credentials
	// (401/403): the peer requires a bearer token the transport did not
	// send, sent wrong, or sent with insufficient scope. Unlike a transient
	// outage this is a configuration fault — it is never retried and never
	// degraded away; fix the peer token and re-open the remote dataset.
	ErrPeerAuth = errors.New("remote peer rejected credentials")
)
