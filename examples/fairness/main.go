// Fairness post factum: using HypDB to audit two algorithmic-fairness cases
// from the paper (Fig 3) — gender vs income on census data, and the Staples
// online-pricing investigation. The point (Sec 8): proving discrimination
// needs evidence about *direct* effects, not mere association; HypDB
// separates the two where association-based tools (FairTest) cannot.
//
//	go run ./examples/fairness [-rows N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"hypdb"
	"hypdb/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 48842, "rows per dataset")
	flag.Parse()

	fmt.Println("==== Case 1: gender and income (AdultData) ====")
	adult, err := datagen.Adult(*rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rep, err := hypdb.Open(adult).Analyze(ctx, datagen.AdultQuery(),
		hypdb.WithSeed(7), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println("Association-based tools stop at the raw gap. HypDB shows most of it")
	fmt.Println("is carried by MaritalStatus — and the census 'income' field records")
	fmt.Println("household-adjusted gross income, so the dataset itself is unfit for")
	fmt.Println("measuring individual gender discrimination (the paper's Sec 7.3 insight).")

	fmt.Println("\n==== Case 2: online pricing (StaplesData) ====")
	staplesRows := *rows
	if staplesRows < 100000 {
		staplesRows = 100000 // price effects are small; keep the sample large
	}
	staples, err := datagen.Staples(staplesRows, 2)
	if err != nil {
		log.Fatal(err)
	}
	rep, err = hypdb.Open(staples).Analyze(ctx, datagen.StaplesQuery(),
		hypdb.WithSeed(7), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println("Income is associated with price, but has NO direct effect: the price")
	fmt.Println("difference is entirely mediated by distance to a competitor's store.")
	fmt.Println("The discrimination is real but unintended — the question FairTest-style")
	fmt.Println("association reports cannot answer.")
}
