// Quickstart: build a small confounded dataset in memory, run a group-by
// query on it, and let HypDB detect, explain, and remove the bias.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"hypdb"
)

func main() {
	// An observational "clinical" dataset with a classic confounder:
	// severity drives both the choice of drug and the outcome. Drug B is
	// given mostly to mild cases, so it looks better in the aggregate even
	// though drug A wins within every severity stratum.
	rng := rand.New(rand.NewSource(1))
	b := hypdb.NewBuilder("Drug", "Severity", "Recovered")
	for i := 0; i < 20000; i++ {
		severe := rng.Float64() < 0.5
		drug := "A"
		pB := 0.75 // mild cases mostly get B
		if severe {
			pB = 0.25
		}
		if rng.Float64() < pB {
			drug = "B"
		}
		var pRecover float64
		switch {
		case drug == "A" && !severe:
			pRecover = 0.93
		case drug == "B" && !severe:
			pRecover = 0.87
		case drug == "A" && severe:
			pRecover = 0.73
		default:
			pRecover = 0.69
		}
		recovered := "0"
		if rng.Float64() < pRecover {
			recovered = "1"
		}
		if err := b.Add(drug, boolStr(severe), recovered); err != nil {
			log.Fatal(err)
		}
	}
	tab, err := b.Table()
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's naive query: which drug has the better recovery rate?
	q := hypdb.Query{
		Table:     "Trials",
		Treatment: "Drug",
		Outcomes:  []string{"Recovered"},
	}

	db := hypdb.Open(tab)
	report, err := db.Analyze(context.Background(), q,
		hypdb.WithSeed(7), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	fmt.Println("What just happened:")
	fmt.Println(" * the SQL answer says", verdict(report, true), "— the rewritten answer says", verdict(report, false))
	fmt.Println(" * HypDB discovered the confounder automatically, flagged the query as biased,")
	fmt.Println("   and rewrote it with the adjustment formula to estimate the causal effect.")
}

func boolStr(b bool) string {
	return strconv.FormatBool(b)
}

func verdict(rep *hypdb.Report, original bool) string {
	comps := rep.TotalComparisons
	if original {
		comps = rep.OriginalComparisons
	}
	if len(comps) == 0 {
		return "n/a"
	}
	if comps[0].Diffs[0] > 0 {
		return "B looks better"
	}
	return "A looks better"
}
