package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer answers the first fail requests with the given shed status
// (emitting Retry-After the way hypdbd does), then succeeds.
func shedServer(t *testing.T, status int, code string, retryAfter int, fail int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= fail {
			if retryAfter > 0 {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]*Error{"error": { //nolint:errcheck
				Code: code, Message: "shed", RetryAfterSeconds: float64(retryAfter),
			}})
			return
		}
		json.NewEncoder(w).Encode(Health{Status: "ok"}) //nolint:errcheck
	}))
	return srv, &calls
}

// TestErrorSurfacesRetryAfter pins the typed-error contract: a 429/503
// response's Retry-After reaches the caller through *Error whether it
// came in the envelope or only in the header.
func TestErrorSurfacesRetryAfter(t *testing.T) {
	t.Run("envelope", func(t *testing.T) {
		srv, _ := shedServer(t, http.StatusTooManyRequests, CodeRateLimited, 7, 1)
		defer srv.Close()
		_, err := NewClient(srv.URL, nil).Health(context.Background())
		var apiErr *Error
		if !errors.As(err, &apiErr) || apiErr.Code != CodeRateLimited {
			t.Fatalf("err = %v, want rate_limited *Error", err)
		}
		if apiErr.RetryAfter() != 7*time.Second {
			t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter())
		}
	})
	t.Run("header-only", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "busy", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		_, err := NewClient(srv.URL, nil).Health(context.Background())
		var apiErr *Error
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("err = %v, want 503 *Error", err)
		}
		if apiErr.RetryAfter() != 3*time.Second {
			t.Fatalf("RetryAfter = %v, want 3s from the header", apiErr.RetryAfter())
		}
	})
}

// TestWithRetryHonorsRetryAfter: the opt-in retry loop waits out the
// server's hint (observed via a stubbed sleeper) and succeeds once the
// shed clears.
func TestWithRetryHonorsRetryAfter(t *testing.T) {
	srv, calls := shedServer(t, http.StatusTooManyRequests, CodeRateLimited, 1, 2)
	defer srv.Close()

	var waits []time.Duration
	c := NewClient(srv.URL, nil, WithRetry(3))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 sheds + success)", calls.Load())
	}
	for i, d := range waits {
		// Hint 1s, ±50% jitter: every wait lands in [500ms, 2s].
		if d < 500*time.Millisecond || d > 2*time.Second {
			t.Fatalf("wait %d = %v, want within jittered 1s hint", i, d)
		}
	}
}

// TestWithRetryBoundedAndCappedDoubling: with no server hint the waits
// double from the base with a cap, and the attempt budget is enforced.
func TestWithRetryBoundedAndCappedDoubling(t *testing.T) {
	srv, calls := shedServer(t, http.StatusServiceUnavailable, CodeOverloaded, 0, 1<<40)
	defer srv.Close()

	var waits []time.Duration
	c := NewClient(srv.URL, nil, WithRetry(4))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	_, err := c.Health(context.Background())
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeOverloaded {
		t.Fatalf("err = %v, want overloaded after retry budget", err)
	}
	if calls.Load() != 5 {
		t.Fatalf("server saw %d calls, want 5 (1 + 4 retries)", calls.Load())
	}
	base := 100 * time.Millisecond
	for i, d := range waits {
		exp := base << i
		if d < exp/2 || d > 2*exp {
			t.Fatalf("wait %d = %v, want jittered around %v (capped doubling)", i, d, exp)
		}
	}
}

// TestRetryDelayNeverOverflows guards the capped-doubling shape against
// the shift-overflow bug the remote transport once had.
func TestRetryDelayNeverOverflows(t *testing.T) {
	for _, attempt := range []int{0, 1, 10, 63, 1000} {
		d := retryDelay(100*time.Millisecond, attempt, 0)
		if d <= 0 || d > 8*time.Second {
			t.Fatalf("retryDelay(attempt=%d) = %v, want within (0, ~7.5s]", attempt, d)
		}
	}
	// An absurd server hint is capped too.
	if d := retryDelay(100*time.Millisecond, 0, time.Hour); d > 8*time.Second {
		t.Fatalf("hinted retryDelay = %v, want capped", d)
	}
}

// TestRetryDisabledByDefault: without WithRetry a shed response surfaces
// immediately.
func TestRetryDisabledByDefault(t *testing.T) {
	srv, calls := shedServer(t, http.StatusTooManyRequests, CodeRateLimited, 1, 1)
	defer srv.Close()
	_, err := NewClient(srv.URL, nil).Health(context.Background())
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeRateLimited {
		t.Fatalf("err = %v, want immediate rate_limited", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1", calls.Load())
	}
}

// TestRetryDoesNotTouchNonShedErrors: 4xx verdicts other than 429 are
// final — no retry, even with the option on.
func TestRetryDoesNotTouchNonShedErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]*Error{"error": { //nolint:errcheck
			Code: CodeDatasetNotFound, Message: "no dataset",
		}})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil, WithRetry(5))
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err := c.Stats(context.Background(), "nope")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeDatasetNotFound {
		t.Fatalf("err = %v, want dataset_not_found", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (404 must not be retried)", calls.Load())
	}
}

// TestWithTokenSendsBearer: the token option attaches the Authorization
// header to every request.
func TestWithTokenSendsBearer(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		json.NewEncoder(w).Encode(Health{Status: "ok"}) //nolint:errcheck
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil, WithToken("s3cret"))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer s3cret" {
		t.Fatalf("Authorization = %q, want Bearer s3cret", got.Load())
	}
}
