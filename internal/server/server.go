// Package server implements hypdbd: the HTTP analysis service exposing the
// HypDB pipeline (upload → append → analyze → batch → stats) over JSON.
//
// One Server owns a registry of named datasets, each wrapped in a
// long-lived *hypdb.DB session handle. Datasets opened on the sharded
// backend (Config.Shards or the request's shards field) additionally
// accept streaming appends: rows land in a new snapshot version, in-flight
// analyses keep the version they started on, and the session's count cache
// absorbs the delta without re-scanning. All analyze traffic for a dataset
// flows through that one handle, so concurrent and repeated requests share
// its single-flight covariate-discovery cache — the multi-query sharing of
// the paper's Sec 6, lifted to the service boundary. Batch requests fan
// into DB.AnalyzeAll's worker pool.
//
// Operational behavior: admission control in front of each dataset —
// requests pass an optional per-client token-bucket rate limiter (429
// rate_limited) and then a weighted fair queue over the dataset's
// execution slots, so one tenant's burst queues behind other tenants
// instead of starving them; overload sheds with typed 503 overloaded
// responses carrying Retry-After, and a request whose deadline cannot be
// met never occupies a queue slot. Optional bearer-token auth gates
// mutating endpoints behind operator scope. With OpenCatalog, dataset
// registrations and appends journal to a data directory and Recover
// replays them after a restart (CSV bodies reload from spill files, SQL
// DSNs re-open, remote peers re-handshake, snapshot versions re-pin).
// Graceful shutdown is two-phase: Drain sheds queued work with 503 +
// Retry-After while admitted requests finish; Close cancels a
// server-wide context that every in-flight request context is joined to,
// which aborts running permutation loops and discovery searches promptly.
package server

import (
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypdb"
	"hypdb/api"
	"hypdb/internal/admission"
	"hypdb/internal/catalog"
	"hypdb/internal/countcache"
	"hypdb/source"
	"hypdb/source/remote"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Logger receives structured request and lifecycle logs; nil uses
	// slog.Default().
	Logger *slog.Logger
	// RequestTimeout bounds each analyze/batch request's analysis time;
	// zero means no timeout.
	RequestTimeout time.Duration
	// MaxConcurrentPerDataset bounds concurrently executing analyses per
	// dataset; excess requests queue. Zero means 2×GOMAXPROCS.
	MaxConcurrentPerDataset int
	// MaxUploadBytes bounds the CSV upload body; zero means 64 MiB.
	MaxUploadBytes int64
	// MaxDatasets bounds the registry size; zero means 64.
	MaxDatasets int
	// Shards, when > 1, serves uploaded and preloaded in-memory datasets
	// through the sharded partition-parallel backend with that many
	// horizontal partitions, making them appendable. A request's shards
	// field overrides it per dataset. Zero or one keeps the plain mem
	// backend.
	Shards int
	// AllowSQLDrivers lists the database/sql driver names clients may use
	// to register SQL-backed datasets over HTTP (POST /v1/datasets with
	// driver/dsn/sql_table). Empty disables HTTP SQL registration — an
	// unauthenticated endpoint that opens operator-side network
	// connections must be opted into. Operator-initiated registration
	// (AddSQLDataset, the -sql flag) is not gated.
	AllowSQLDrivers []string
	// Tokens grants bearer credentials. Empty serves unauthenticated
	// ("open mode"): every client is treated as an operator identified by
	// its remote host. Non-empty requires Authorization: Bearer on every
	// endpoint except /healthz, with each token's scope gating what it may
	// do (see Token).
	Tokens []Token
	// RatePerClient admits at most this many requests per second per
	// client identity (token name, or remote host in open mode), with
	// RateBurst extra requests of burst headroom (minimum 1). Requests
	// over the rate are shed with 429 rate_limited and a Retry-After
	// hint. Zero disables rate limiting. /healthz and /v1/metrics are
	// exempt so probes and dashboards keep working during overload.
	RatePerClient float64
	// RateBurst is the per-client token-bucket burst size; see
	// RatePerClient.
	RateBurst int
	// MaxQueuedPerDataset bounds how many requests may wait in a
	// dataset's fair queue for an execution slot; requests beyond it are
	// shed with 503 overloaded. Zero means 4× the concurrency limit;
	// negative means unbounded.
	MaxQueuedPerDataset int
	// OpenMetrics exempts GET /metrics and GET /v1/metrics from bearer
	// auth. By default (false) the metrics endpoints require a token like
	// every other endpoint when Tokens is non-empty — reader scope
	// suffices — because the counters leak dataset names and traffic
	// shapes. Set it when an unauthenticated scraper must reach the
	// server directly. No effect in open mode.
	OpenMetrics bool
	// OnShutdown, when non-nil, enables POST /v1/shutdown (operator
	// scope): the handler acknowledges with 202 and then calls OnShutdown
	// on its own goroutine — typically wired to the binary's graceful
	// drain path. Nil keeps the endpoint disabled (403).
	OnShutdown func()
	// Clock overrides time.Now for tests; nil uses time.Now.
	Clock func() time.Time
}

// Scopes a Token may grant.
const (
	// ScopeOperator may mutate the catalog (dataset create/append/delete)
	// and trigger shutdown, plus everything a reader may do.
	ScopeOperator = "operator"
	// ScopeReader may analyze, audit, and read stats/metrics, but not
	// mutate. Any unrecognized scope is treated as reader.
	ScopeReader = "reader"
)

// Token is one bearer credential in Config.Tokens.
type Token struct {
	// Secret is the credential presented as "Authorization: Bearer <Secret>".
	Secret string
	// Name identifies the client in logs, rate limiting and fair
	// queueing; empty defaults to the scope name.
	Name string
	// Scope is ScopeOperator or ScopeReader.
	Scope string
	// Weight scales the client's share of a dataset's fair queue
	// (default 1; a weight-2 client is served twice as often under
	// contention).
	Weight float64
}

func (c Config) logger() *slog.Logger {
	if c.Logger == nil {
		return slog.Default()
	}
	return c.Logger
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrentPerDataset > 0 {
		return c.MaxConcurrentPerDataset
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c Config) maxUploadBytes() int64 {
	if c.MaxUploadBytes > 0 {
		return c.MaxUploadBytes
	}
	return 64 << 20
}

func (c Config) maxDatasets() int {
	if c.MaxDatasets > 0 {
		return c.MaxDatasets
	}
	return 64
}

// Server is the hypdbd service. Create with New, mount Handler on an
// http.Server, and call Close on shutdown to cancel in-flight analyses.
type Server struct {
	cfg     Config
	log     *slog.Logger
	now     func() time.Time
	started time.Time

	// closing is cancelled by Close; every request context joins it, so
	// shutdown propagates into in-flight permutation loops.
	closing        context.Context
	cancelAll      context.CancelFunc
	inFlight       atomic.Int64
	requests       atomic.Int64
	analyses       atomic.Int64
	audits         atomic.Int64
	auditsInFlight atomic.Int64
	appends        atomic.Int64
	rowsAppended   atomic.Int64
	countsServed   atomic.Int64

	// regSeq issues per-registration epochs (seeded from the start time, one
	// increment per register call): every dataset gets a nonzero epoch that
	// changes when a name is deleted and re-registered, so the counts
	// endpoint can pin unversioned backends too.
	regSeq atomic.Uint64

	// limiter is the per-client admission rate limiter (nil when
	// disabled); rateLimited counts the 429s it caused. tokens maps
	// bearer secrets to identities; empty means open mode. draining is
	// set by Drain: new work is rejected with 503 + Retry-After while
	// admitted requests finish.
	limiter     *admission.Limiter
	rateLimited atomic.Int64
	tokens      map[string]identity
	draining    atomic.Bool

	// journal persists catalog mutations when OpenCatalog was called;
	// catMu guards catalogNames, the set of dataset names with a live
	// create record (so flag-driven registrations journal only once
	// across restarts). recoveredDatasets / replayedAppends count what
	// Recover's boot-time replay rebuilt, for the catalog metrics.
	journal           *catalog.Journal
	catMu             sync.Mutex
	catalogNames      map[string]bool
	recoveredDatasets atomic.Int64
	replayedAppends   atomic.Int64

	mu       sync.RWMutex
	datasets map[string]*entry
}

// identity is an authenticated client: its admission-control name, its
// scope, and its fair-queue weight.
type identity struct {
	name   string
	scope  string
	weight float64
}

// ctxKey keys context values owned by this package.
type ctxKey int

const identityKey ctxKey = iota

// identityFrom returns the request identity stashed by instrument. The
// fallback (an anonymous operator) only triggers for handlers invoked
// outside the middleware stack, i.e. in tests.
func identityFrom(ctx context.Context) identity {
	if id, ok := ctx.Value(identityKey).(identity); ok {
		return id
	}
	return identity{name: "anon", scope: ScopeOperator, weight: 1}
}

// entry is one registered dataset: the shared session handle plus the
// per-dataset concurrency limiter and counters. rows/cols/backend are
// captured at registration so list/metrics endpoints never block on the
// storage backend; appends keep rows current.
type entry struct {
	name    string
	db      *hypdb.DB
	rows    atomic.Int64
	cols    int
	backend string
	// queue is the dataset's weighted fair admission queue: every
	// analyze/batch/audit/append/counts request acquires execution slots
	// through it, so one tenant's burst queues behind other tenants'
	// requests instead of starving them.
	queue   *admission.Queue
	created time.Time
	// epoch is the nonzero registration epoch: the pinned version the counts
	// endpoint hands to remote-shard coordinators when the backend has no
	// snapshot versions of its own. Re-registering a name issues a new
	// epoch, so a coordinator pinned to the deleted dataset trips the 409
	// version_skew path instead of silently reading the new data.
	epoch uint64
	// Streaming-ingestion counters: completed append requests and their
	// cumulative admitted rows.
	appends      atomic.Int64
	rowsAppended atomic.Int64
	// countsServed counts group-by counts requests answered on the
	// remote-shard transport (this node acting as someone's shard).
	countsServed atomic.Int64
	// appendMu serializes the apply+journal pair of an append so the
	// journal's record order matches the backend's version order — replay
	// then reproduces the same snapshot versions.
	appendMu sync.Mutex
	analyses atomic.Int64
	// Audit-sweep progress: completed sweeps, sweeps in flight, and
	// cumulative candidate counts — surfaced in /v1/metrics so pollers see
	// long sweeps advance.
	audits          atomic.Int64
	auditsRunning   atomic.Int64
	auditCandsDone  atomic.Int64
	auditCandsTotal atomic.Int64
}

// New creates a Server.
func New(cfg Config) *Server {
	closing, cancel := context.WithCancel(context.Background())
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:          cfg,
		log:          cfg.logger(),
		now:          now,
		started:      now(),
		closing:      closing,
		cancelAll:    cancel,
		datasets:     make(map[string]*entry),
		catalogNames: make(map[string]bool),
	}
	if cfg.RatePerClient > 0 {
		s.limiter = admission.NewLimiter(cfg.RatePerClient, cfg.RateBurst, now)
	}
	if len(cfg.Tokens) > 0 {
		s.tokens = make(map[string]identity, len(cfg.Tokens))
		for _, t := range cfg.Tokens {
			scope := ScopeReader
			if t.Scope == ScopeOperator {
				scope = ScopeOperator
			}
			name := t.Name
			if name == "" {
				name = scope
			}
			weight := t.Weight
			if weight <= 0 {
				weight = 1
			}
			s.tokens[t.Secret] = identity{name: name, scope: scope, weight: weight}
		}
	}
	// Seed the registration-epoch sequence from the start time so epochs
	// (very likely) differ across server restarts as well, not only across
	// re-registrations within one process.
	s.regSeq.Store(uint64(s.started.UnixNano()))
	return s
}

// Close begins shutdown: every subsequent request is rejected with 503
// shutting_down, the contexts of in-flight analyses are cancelled —
// aborting permutation loops and discovery searches promptly — and every
// dataset's session handle is released (SQL-backed handles close their
// database connections). Safe to call more than once.
func (s *Server) Close() {
	s.cancelAll()
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.queue.Close()
		if err := e.db.Close(); err != nil {
			s.log.Error("closing dataset handle", "name", e.name, "error", err)
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.log.Error("closing catalog journal", "error", err)
		}
	}
}

// Drain begins load shedding for shutdown: every request queued in a
// dataset's fair queue is rejected with 503 + Retry-After, new analysis
// work is rejected the same way, and requests already holding execution
// slots run to completion. /healthz and /v1/metrics keep answering so
// probes and dashboards can watch the drain. Call Close once the HTTP
// server has finished draining connections. Safe to call more than once.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	for _, e := range entries {
		e.queue.Close()
	}
	s.log.Info("draining: queued requests shed, admitted requests finishing")
}

// OpenCatalog attaches a persistent dataset catalog rooted at dir: from
// now on, HTTP dataset creations (CSV bodies spilled to dir/csv/),
// streaming appends, deletions, and flag-driven SQL/remote registrations
// are journaled, and Recover replays them after a restart. Call before
// serving and before Recover.
func (s *Server) OpenCatalog(dir string) error {
	j, err := catalog.Open(dir)
	if err != nil {
		return err
	}
	live, err := j.Replay()
	if err != nil {
		j.Close()
		return err
	}
	s.journal = j
	s.catMu.Lock()
	for _, rec := range live {
		if rec.Op == catalog.OpCreate {
			s.catalogNames[rec.Name] = true
		}
	}
	s.catMu.Unlock()
	return nil
}

// Recover replays the catalog journal: live creates re-register (CSV
// datasets reload their spilled bodies, SQL datasets re-open their DSNs,
// remote datasets re-handshake their peers) and appends re-apply in
// order, so sharded snapshot versions re-pin exactly where they were. A
// create whose name is already registered (an operator flag re-established
// it this boot) is skipped, as is one whose backing source cannot be
// re-opened — both are logged, and the journal record survives for the
// next restart. Call after flag-driven registrations, before serving.
// Ends with a journal compaction.
func (s *Server) Recover(ctx context.Context) error {
	if s.journal == nil {
		return nil
	}
	recs, err := s.journal.Replay()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		switch rec.Op {
		case catalog.OpCreate:
			if _, ok := s.DB(rec.Name); ok {
				s.log.Info("recover: dataset already registered this boot; journal create skipped",
					"name", rec.Name, "kind", rec.Kind)
				continue
			}
			if err := s.recoverCreate(ctx, rec); err != nil {
				s.log.Warn("recover: dataset not recovered (record kept for next restart)",
					"name", rec.Name, "kind", rec.Kind, "error", err)
			}
		case catalog.OpAppend:
			e, apiErr := s.lookup(rec.Name)
			if apiErr != nil {
				s.log.Warn("recover: append skipped, dataset missing", "name", rec.Name)
				continue
			}
			res, err := e.db.Append(ctx, rec.Rows)
			if err != nil {
				return fmt.Errorf("recover: replaying append to %q: %w", rec.Name, err)
			}
			e.rows.Store(int64(res.NumRows))
			s.replayedAppends.Add(1)
		}
	}
	if err := s.journal.Compact(); err != nil {
		// Compaction is an optimization; a failure costs disk, not data.
		s.log.Warn("recover: journal compaction failed", "error", err)
	}
	return nil
}

// recoverCreate re-registers one journaled dataset.
func (s *Server) recoverCreate(ctx context.Context, rec catalog.Record) error {
	switch rec.Kind {
	case catalog.KindCSV:
		body, err := s.journal.ReadCSV(rec.CSVFile)
		if err != nil {
			return err
		}
		tab, err := hypdb.ReadCSV(strings.NewReader(body))
		if err != nil {
			return err
		}
		db, backend := s.openMem(tab, rec.Shards)
		if _, apiErr := s.register(rec.Name, db, tab.NumRows(), tab.NumCols(), backend); apiErr != nil {
			db.Close()
			return errors.New(apiErr.Message)
		}
	case catalog.KindSQL:
		db, apiErr := s.openSQL(ctx, rec.Driver, rec.DSN, rec.SQLTable)
		if apiErr != nil {
			return errors.New(apiErr.Message)
		}
		rows, cols, err := sizeOf(ctx, db)
		if err != nil {
			db.Close()
			return err
		}
		if _, apiErr := s.register(rec.Name, db, rows, cols, "sqldb"); apiErr != nil {
			db.Close()
			return errors.New(apiErr.Message)
		}
	case catalog.KindRemote:
		if err := s.addRemote(ctx, rec.Name, rec.Peers, rec.Degraded); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown catalog kind %q", rec.Kind)
	}
	s.recoveredDatasets.Add(1)
	s.log.Info("recovered dataset", "name", rec.Name, "kind", rec.Kind)
	return nil
}

// journalCreate persists a dataset registration; no-op without a catalog.
// The bool in catalogNames keeps flag-driven registrations from appending
// a duplicate create every boot.
func (s *Server) journalCreate(rec catalog.Record) error {
	if s.journal == nil {
		return nil
	}
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if s.catalogNames[rec.Name] {
		return nil
	}
	if err := s.journal.Append(rec); err != nil {
		return err
	}
	s.catalogNames[rec.Name] = true
	return nil
}

// journalDelete persists a dataset deletion; no-op without a catalog.
func (s *Server) journalDelete(name string) error {
	if s.journal == nil {
		return nil
	}
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if err := s.journal.Append(catalog.Record{Op: catalog.OpDelete, Name: name}); err != nil {
		return err
	}
	delete(s.catalogNames, name)
	return nil
}

// AddDataset registers an in-memory table under name — used by the binary
// to preload generated datasets and by tests. The table must not be
// mutated afterwards. Config.Shards > 1 serves it through the sharded
// backend, making it appendable. Preloaded datasets are not journaled:
// they are regenerated from the seed at every boot.
func (s *Server) AddDataset(name string, t *hypdb.Table) error {
	db, backend := s.openMem(t, 0)
	if _, apiErr := s.register(name, db, t.NumRows(), t.NumCols(), backend); apiErr != nil {
		db.Close()
		return errors.New(apiErr.Message)
	}
	return nil
}

// openMem opens an in-memory table on the mem or sharded backend. shards
// overrides the server default when positive; any value below 2 keeps the
// plain mem backend.
func (s *Server) openMem(t *hypdb.Table, shards int) (*hypdb.DB, string) {
	if shards <= 0 {
		shards = s.cfg.Shards
	}
	if shards > 1 {
		return hypdb.Open(t, hypdb.WithShards(shards)), "sharded"
	}
	return hypdb.Open(t), "mem"
}

// AddSQLDataset registers a dataset served by the SQL backend: driver and
// dsn are opened with database/sql and table's group-by counts are pushed
// down to the database. The session handle owns the connection; deleting
// the dataset (or shutting the server down) closes it.
func (s *Server) AddSQLDataset(ctx context.Context, name, driver, dsn, table string) error {
	db, apiErr := s.openSQL(ctx, driver, dsn, table)
	if apiErr != nil {
		return errors.New(apiErr.Message)
	}
	rows, cols, err := sizeOf(ctx, db)
	if err != nil {
		db.Close()
		return err
	}
	if _, apiErr := s.register(name, db, rows, cols, "sqldb"); apiErr != nil {
		db.Close()
		return errors.New(apiErr.Message)
	}
	return s.journalCreate(catalog.Record{
		Op: catalog.OpCreate, Name: name, Kind: catalog.KindSQL,
		Driver: driver, DSN: dsn, SQLTable: table,
	})
}

// AddRemoteDataset registers a dataset served by remote hypdbd peers: one
// remote-shard child is opened per peer spec — "url" or "url@token", the
// token a per-peer bearer credential attached to the handshake, counts
// calls and health probes, journaled with the spec like SQL DSNs are —
// each pinned to that peer's current snapshot version by the
// counts-endpoint handshake, and the
// sharded coordinator merges them under one global dictionary, so this
// node serves the cluster's logical catalog. With degraded true, a peer
// that dies later is skipped and reports are marked stale; otherwise a
// lost peer fails reads with peer_unavailable. Registration is an operator
// action (the -peer flag) and is deliberately not exposed over HTTP — a
// request-crafted peer URL would let clients make this server dial
// arbitrary hosts, the same reasoning that keeps SQL DSN registration
// behind Config.AllowSQLDrivers.
func (s *Server) AddRemoteDataset(ctx context.Context, name string, peers []string, degraded bool) error {
	if err := s.addRemote(ctx, name, peers, degraded); err != nil {
		return err
	}
	return s.journalCreate(catalog.Record{
		Op: catalog.OpCreate, Name: name, Kind: catalog.KindRemote,
		Peers: peers, Degraded: degraded,
	})
}

// addRemote opens and registers a remote-sharded dataset without touching
// the journal — shared by AddRemoteDataset and catalog replay.
func (s *Server) addRemote(ctx context.Context, name string, peers []string, degraded bool) error {
	opts := []hypdb.OpenOption{hypdb.WithRemoteShards(peers...)}
	if degraded {
		opts = append(opts, hypdb.WithDegradedReads())
	}
	db, err := hypdb.OpenRemote(ctx, name, opts...)
	if err != nil {
		return err
	}
	rows, cols, err := sizeOf(ctx, db)
	if err != nil {
		db.Close()
		return err
	}
	if _, apiErr := s.register(name, db, rows, cols, "remote"); apiErr != nil {
		db.Close()
		return errors.New(apiErr.Message)
	}
	return nil
}

// sqlDriverAllowed reports whether HTTP clients may register datasets
// through the named driver.
func (s *Server) sqlDriverAllowed(driver string) bool {
	for _, d := range s.cfg.AllowSQLDrivers {
		if d == driver {
			return true
		}
	}
	return false
}

// openSQL opens a DSN-backed session handle, classifying failures.
func (s *Server) openSQL(ctx context.Context, driver, dsn, table string) (*hypdb.DB, *api.Error) {
	if driver == "" || table == "" {
		return nil, badRequest("SQL datasets need driver and sql_table")
	}
	conn, err := sql.Open(driver, dsn)
	if err != nil {
		return nil, badRequest(fmt.Sprintf("opening driver %q: %v", driver, err))
	}
	db, err := hypdb.OpenSQL(ctx, conn, table)
	if err != nil {
		conn.Close()
		return nil, badRequest(fmt.Sprintf("probing table %q: %v", table, err))
	}
	return db, nil
}

// sizeOf probes a handle's row and column counts.
func sizeOf(ctx context.Context, db *hypdb.DB) (rows, cols int, err error) {
	rows, err = db.NumRows(ctx)
	if err != nil {
		return 0, 0, err
	}
	return rows, len(db.Relation().Attributes()), nil
}

// register is the single registration path shared by uploads, AddDataset
// and AddSQLDataset: name validation, duplicate rejection, the registry
// cap, and entry construction live only here. On a registration error the
// caller keeps ownership of db (and must close it).
func (s *Server) register(name string, db *hypdb.DB, rows, cols int, backend string) (*entry, *api.Error) {
	if err := validateDatasetName(name); err != nil {
		return nil, badRequest(err.Error())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return nil, &api.Error{
			Status: http.StatusConflict, Code: api.CodeDatasetExists,
			Message: fmt.Sprintf("dataset %q already exists (delete it first)", name),
		}
	}
	if len(s.datasets) >= s.cfg.maxDatasets() {
		return nil, &api.Error{
			Status: http.StatusInsufficientStorage, Code: api.CodeTooManyDatasets,
			Message: fmt.Sprintf("dataset limit (%d) reached", s.cfg.maxDatasets()),
		}
	}
	// Server handles are multi-tenant: concurrent analyze/audit requests
	// on one dataset should coalesce their count demands into one batch
	// plan, so the coalescing window is raised from the library default of
	// zero (plan immediately).
	db.SetPlanWindow(hypdb.DefaultPlanWindow)
	e := &entry{
		name:    name,
		db:      db,
		cols:    cols,
		backend: backend,
		queue: admission.NewQueue(admission.QueueConfig{
			Capacity:  s.cfg.maxConcurrent(),
			MaxQueued: s.cfg.MaxQueuedPerDataset,
			Clock:     s.now,
		}),
		created: s.now(),
		epoch:   s.nextEpoch(),
	}
	e.rows.Store(int64(rows))
	s.datasets[name] = e
	return e, nil
}

// nextEpoch issues the next registration epoch. Never zero: a zero version
// on the wire means "nothing pinned" (expect_version is omitted) and would
// disable the skew check for the dataset.
func (s *Server) nextEpoch() uint64 {
	for {
		if ep := s.regSeq.Add(1); ep != 0 {
			return ep
		}
	}
}

// DB returns the session handle of a registered dataset (tests use this to
// reach Stats directly). The bool reports existence.
func (s *Server) DB(name string) (*hypdb.DB, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[name]
	if !ok {
		return nil, false
	}
	return e.db, true
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.operator(s.handleCreateDataset))
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/datasets/{name}/append", s.operator(s.handleAppend))
	mux.HandleFunc("POST /v1/datasets/{name}/counts", s.handleCounts)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.operator(s.handleDeleteDataset))
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("POST /v1/shutdown", s.operator(s.handleShutdown))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.instrument(mux)
}

// operator gates a handler on operator scope.
func (s *Server) operator(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if id := identityFrom(r.Context()); id.scope != ScopeOperator {
			s.writeError(w, r, &api.Error{
				Status: http.StatusForbidden, Code: api.CodeForbidden,
				Message: fmt.Sprintf("%s %s requires an operator-scoped token", r.Method, r.URL.Path),
			})
			return
		}
		next(w, r)
	}
}

// authenticate resolves the request's identity. With no tokens configured
// the server runs open: every client is an operator named after its
// remote host (which still scopes rate limiting and fair queueing).
// /healthz is always open so liveness probes need no credentials; the
// metrics endpoints are open only under Config.OpenMetrics — by default
// they require a token (reader scope suffices) because counters leak
// dataset names and traffic shapes.
func (s *Server) authenticate(r *http.Request) (identity, *api.Error) {
	if r.URL.Path == "/healthz" {
		return identity{name: "health", scope: ScopeReader, weight: 1}, nil
	}
	if s.cfg.OpenMetrics && metricsPath(r) {
		return identity{name: "metrics", scope: ScopeReader, weight: 1}, nil
	}
	if len(s.tokens) == 0 {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		return identity{name: host, scope: ScopeOperator, weight: 1}, nil
	}
	secret, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return identity{}, &api.Error{
			Status: http.StatusUnauthorized, Code: api.CodeUnauthorized,
			Message: "missing bearer token (Authorization: Bearer <token>)",
		}
	}
	id, ok := s.tokens[secret]
	if !ok {
		return identity{}, &api.Error{
			Status: http.StatusUnauthorized, Code: api.CodeUnauthorized,
			Message: "unknown bearer token",
		}
	}
	return id, nil
}

// metricsPath reports whether a request reads one of the metrics views:
// the JSON counters or the Prometheus exposition.
func metricsPath(r *http.Request) bool {
	return r.Method == http.MethodGet && (r.URL.Path == "/v1/metrics" || r.URL.Path == "/metrics")
}

// observability reports whether a request may bypass rate limiting and
// drain shedding: health probes and metrics scrapes are most valuable
// exactly when the server is overloaded or draining.
func observability(r *http.Request) bool {
	return r.URL.Path == "/healthz" || metricsPath(r)
}

// instrument wraps the mux with request counting, logging and panic
// recovery.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					// The stdlib's sanctioned abort: let net/http handle it.
					panic(rec)
				}
				s.log.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
				if !sw.wrote {
					s.writeError(sw, r, &api.Error{
						Status:  http.StatusInternalServerError,
						Code:    api.CodeInternal,
						Message: "internal error",
					})
				}
			}
			s.log.Info("request",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "duration", s.now().Sub(start).String())
		}()
		if s.closing.Err() != nil {
			s.writeError(sw, r, &api.Error{
				Status: http.StatusServiceUnavailable, Code: api.CodeShuttingDown,
				Message: "server is shutting down", RetryAfterSeconds: 10,
			})
			return
		}
		if s.draining.Load() && !observability(r) {
			s.writeError(sw, r, &api.Error{
				Status: http.StatusServiceUnavailable, Code: api.CodeShuttingDown,
				Message: "server is draining; retry against a healthy replica", RetryAfterSeconds: 10,
			})
			return
		}
		id, apiErr := s.authenticate(r)
		if apiErr != nil {
			s.writeError(sw, r, apiErr)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), identityKey, id))
		if !observability(r) {
			if ok, retryAfter := s.limiter.Allow(id.name); !ok {
				s.rateLimited.Add(1)
				s.writeError(sw, r, &api.Error{
					Status: http.StatusTooManyRequests, Code: api.CodeRateLimited,
					Message:           fmt.Sprintf("client %q is over its request rate", id.name),
					RetryAfterSeconds: retryAfter.Seconds(),
				})
				return
			}
		}
		next.ServeHTTP(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// ---------------------------------------------------------------------------
// Dataset lifecycle

func validateDatasetName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("dataset name must be 1-64 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("dataset name %q: only letters, digits, '-', '_' and '.' allowed", name)
		}
	}
	return nil
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req api.CreateDatasetRequest
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"), ct == "":
		if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
			s.writeError(w, r, apiErr)
			return
		}
	case strings.HasPrefix(ct, "text/csv"):
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxUploadBytes()))
		if err != nil {
			s.writeError(w, r, bodyError(err, s.cfg.maxUploadBytes()))
			return
		}
		req.Name, req.CSV = r.URL.Query().Get("name"), string(raw)
		// Raw CSV uploads carry their options in the query string; a
		// silently ignored ?shards= would strand the dataset on the
		// non-appendable mem backend.
		if v := r.URL.Query().Get("shards"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				s.writeError(w, r, badRequest(fmt.Sprintf("bad shards value %q (want a non-negative integer)", v)))
				return
			}
			req.Shards = n
		}
	default:
		s.writeError(w, r, badRequest(fmt.Sprintf("unsupported Content-Type %q (want application/json or text/csv)", ct)))
		return
	}

	// SQL-backed registration: driver + DSN + table instead of a CSV body.
	if req.Driver != "" || req.DSN != "" || req.SQLTable != "" {
		if req.CSV != "" {
			s.writeError(w, r, badRequest("a dataset is either CSV or SQL-backed, not both"))
			return
		}
		if !s.sqlDriverAllowed(req.Driver) {
			s.writeError(w, r, &api.Error{
				Status: http.StatusForbidden, Code: api.CodeBadRequest,
				Message: fmt.Sprintf("SQL dataset registration for driver %q is not enabled on this server (AllowSQLDrivers)", req.Driver),
			})
			return
		}
		db, apiErr := s.openSQL(r.Context(), req.Driver, req.DSN, req.SQLTable)
		if apiErr != nil {
			s.writeError(w, r, apiErr)
			return
		}
		rows, cols, err := sizeOf(r.Context(), db)
		if err != nil {
			db.Close()
			s.writeError(w, r, mapError(err))
			return
		}
		e, apiErr := s.register(req.Name, db, rows, cols, "sqldb")
		if apiErr != nil {
			db.Close()
			s.writeError(w, r, apiErr)
			return
		}
		if apiErr := s.persistCreate(e, catalog.Record{
			Op: catalog.OpCreate, Name: req.Name, Kind: catalog.KindSQL,
			Driver: req.Driver, DSN: req.DSN, SQLTable: req.SQLTable,
		}); apiErr != nil {
			s.writeError(w, r, apiErr)
			return
		}
		s.log.Info("dataset created", "name", req.Name, "backend", "sqldb",
			"driver", req.Driver, "table", req.SQLTable, "rows", rows, "cols", cols)
		s.writeJSON(w, http.StatusCreated, s.infoOf(e))
		return
	}

	tab, err := hypdb.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	db, backend := s.openMem(tab, req.Shards)
	e, apiErr := s.register(req.Name, db, tab.NumRows(), tab.NumCols(), backend)
	if apiErr != nil {
		db.Close()
		s.writeError(w, r, apiErr)
		return
	}
	// Journal the registration: the raw CSV spills to its own file, and
	// the record carries the backend decision actually taken (explicit 1
	// for the mem backend) so replay is immune to a changed -shards
	// default.
	rec := catalog.Record{Op: catalog.OpCreate, Name: req.Name, Kind: catalog.KindCSV, Shards: 1}
	if si, ok := e.db.ShardInfo(); ok {
		rec.Shards = si.Shards
	}
	if s.journal != nil {
		file, err := s.journal.SpillCSV(req.Name, req.CSV)
		if err != nil {
			s.rollbackCreate(e)
			s.log.Error("spilling dataset CSV", "name", req.Name, "error", err)
			s.writeError(w, r, persistenceFailed())
			return
		}
		rec.CSVFile = file
	}
	if apiErr := s.persistCreate(e, rec); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}

	s.log.Info("dataset created", "name", req.Name, "backend", backend,
		"rows", tab.NumRows(), "cols", tab.NumCols())
	s.writeJSON(w, http.StatusCreated, s.infoOf(e))
}

// persistCreate journals a registration record, rolling the in-memory
// registration back on failure so a client retry starts clean.
func (s *Server) persistCreate(e *entry, rec catalog.Record) *api.Error {
	if err := s.journalCreate(rec); err != nil {
		s.rollbackCreate(e)
		s.log.Error("journaling dataset create", "name", e.name, "error", err)
		return persistenceFailed()
	}
	return nil
}

// rollbackCreate undoes a registration whose journaling failed.
func (s *Server) rollbackCreate(e *entry) {
	s.mu.Lock()
	delete(s.datasets, e.name)
	s.mu.Unlock()
	e.queue.Close()
	e.db.Close()
}

func persistenceFailed() *api.Error {
	return &api.Error{
		Status: http.StatusInternalServerError, Code: api.CodeInternal,
		Message: "persisting the registration failed; dataset not created",
	}
}

// handleShutdown triggers the binary's graceful drain (Config.OnShutdown)
// from the API — an operator action. The 202 goes out before the hook
// runs so the caller gets its acknowledgement even though the server is
// about to start shedding.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if s.cfg.OnShutdown == nil {
		s.writeError(w, r, &api.Error{
			Status: http.StatusForbidden, Code: api.CodeForbidden,
			Message: "shutdown over HTTP is not enabled on this server",
		})
		return
	}
	s.log.Info("shutdown requested via API", "client", identityFrom(r.Context()).name)
	s.writeJSON(w, http.StatusAccepted, api.Health{Status: "shutting down"})
	go s.cfg.OnShutdown()
}

// handleAppend streams rows into a sharded dataset. The append reserves
// one concurrency slot (it contends with analyses for the backend), admits
// the rows as a new delta partition under a new snapshot version, and
// returns the dataset's new size. Analyses in flight during the append
// keep the snapshot they pinned at entry.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	e, apiErr := s.lookup(r.PathValue("name"))
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	var req api.AppendRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	if len(req.Rows) == 0 {
		s.writeError(w, r, badRequest("append has no rows"))
		return
	}
	for i, row := range req.Rows {
		if len(row) != e.cols {
			s.writeError(w, r, badRequest(fmt.Sprintf(
				"row %d has %d values; dataset %q has %d attributes", i, len(row), e.name, e.cols)))
			return
		}
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx, r, e, 1)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	defer release()

	start := s.now()
	// Apply and journal under one lock so the journal's record order
	// matches the backend's version assignment; replay then reproduces the
	// same snapshot version sequence.
	e.appendMu.Lock()
	res, err := e.db.Append(ctx, req.Rows)
	if err == nil && s.journal != nil {
		if jerr := s.journal.Append(catalog.Record{Op: catalog.OpAppend, Name: e.name, Rows: req.Rows}); jerr != nil {
			// The rows are in memory but not durable: surface the failure so
			// the operator repairs the data dir; a retry would double-append.
			e.appendMu.Unlock()
			s.log.Error("journaling append", "name", e.name, "error", jerr)
			s.writeError(w, r, &api.Error{
				Status: http.StatusInternalServerError, Code: api.CodeInternal,
				Message: "append applied but not persisted; check the server's data dir before retrying",
			})
			return
		}
	}
	e.appendMu.Unlock()
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	// Monotonic update: concurrent appends can reach this line out of order
	// (the one that appended last may store first), and a plain Store would
	// leave the gauge stale-low until the next append. NumRows only grows,
	// so the larger value is always the newer one.
	for {
		cur := e.rows.Load()
		if int64(res.NumRows) <= cur || e.rows.CompareAndSwap(cur, int64(res.NumRows)) {
			break
		}
	}
	e.appends.Add(1)
	e.rowsAppended.Add(int64(res.Appended))
	s.appends.Add(1)
	s.rowsAppended.Add(int64(res.Appended))
	s.log.Info("append", "dataset", e.name, "rows", res.Appended,
		"version", res.Version, "duration", s.now().Sub(start).String())
	s.writeJSON(w, http.StatusOK, api.AppendResponse{
		Appended: res.Appended, Rows: res.NumRows, Version: res.Version,
	})
}

// handleCounts serves dictionary-coded group-by counts to remote-shard
// coordinators — the server side of the cluster transport (wire types in
// hypdb/source/remote). The request is evaluated against a pinned snapshot
// of the dataset: when the coordinator sends the version it pinned at
// registration and this node's dataset has since moved on, the answer is
// 409 version_skew rather than counts from a different epoch. A request
// with include_schema true additionally returns the (optionally
// restricted) view's schema and dictionaries — the registration handshake.
func (s *Server) handleCounts(w http.ResponseWriter, r *http.Request) {
	e, apiErr := s.lookup(r.PathValue("name"))
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	var req remote.CountsRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx, r, e, 1)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	defer release()

	// Pin one snapshot for the whole request: the version check, the counts
	// and the schema all describe the same epoch even if an append lands
	// mid-request. Backends without snapshot versions are pinned by the
	// dataset's registration epoch instead — a nonzero version, so the
	// caller always sends expect_version back and a delete/re-register
	// between calls trips the skew check rather than silently serving
	// counts from the replacement data.
	serving := e.db.Relation()
	ver := e.epoch
	if cc, ok := serving.(*countcache.Relation); ok {
		pinned := cc.Pin()
		serving = pinned
		if p, ok := pinned.(*countcache.Pinned); ok {
			ver = p.Version()
		}
	}
	if req.ExpectVersion != 0 && req.ExpectVersion != ver {
		s.writeError(w, r, &api.Error{
			Status: http.StatusConflict, Code: api.CodeVersionSkew,
			Message: fmt.Sprintf("dataset %q is at snapshot version %d, caller pinned %d (re-open the remote dataset)",
				e.name, ver, req.ExpectVersion),
		})
		return
	}
	if req.Restrict != "" {
		pred, err := hypdb.ParsePredicate(req.Restrict)
		if err != nil {
			s.writeError(w, r, mapError(err))
			return
		}
		serving, err = serving.Restrict(ctx, pred)
		if err != nil {
			s.writeError(w, r, mapError(err))
			return
		}
	}

	resp := remote.CountsResponse{Version: ver}
	if req.IncludeSchema {
		attrs := serving.Attributes()
		labels := make([][]string, len(attrs))
		for i, a := range attrs {
			l, err := serving.Labels(ctx, a)
			if err != nil {
				s.writeError(w, r, mapError(err))
				return
			}
			labels[i] = l
		}
		rows, err := serving.NumRows(ctx)
		if err != nil {
			s.writeError(w, r, mapError(err))
			return
		}
		resp.Schema = &remote.Schema{
			Attrs: attrs, Labels: labels, Rows: rows,
			Version: ver, Backend: serving.Backend(),
		}
	} else {
		var where source.Predicate
		if req.Where != "" {
			where, err = hypdb.ParsePredicate(req.Where)
			if err != nil {
				s.writeError(w, r, mapError(err))
				return
			}
		}
		counts, err := serving.Counts(ctx, req.Attrs, where)
		if err != nil {
			s.writeError(w, r, mapError(err))
			return
		}
		resp.Groups = make([][]int32, 0, len(counts))
		resp.Counts = make([]int, 0, len(counts))
		for k, c := range counts {
			g := make([]int32, len(req.Attrs))
			for i := range req.Attrs {
				g[i] = k.Field(i)
			}
			resp.Groups = append(resp.Groups, g)
			resp.Counts = append(resp.Counts, c)
		}
		e.countsServed.Add(1)
		s.countsServed.Add(1)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	list := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		list = append(list, e)
	}
	s.mu.RUnlock()
	out := api.DatasetList{Datasets: make([]api.DatasetInfo, 0, len(list))}
	for _, e := range list {
		out.Datasets = append(out.Datasets, s.infoOf(e))
	}
	sort.Slice(out.Datasets, func(i, j int) bool { return out.Datasets[i].Name < out.Datasets[j].Name })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	_, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		s.writeError(w, r, notFound(name))
		return
	}
	// Journal before unregistering: if persistence fails, nothing changed
	// and the client may retry; once the record is durable the in-memory
	// removal cannot be lost to a crash.
	if err := s.journalDelete(name); err != nil {
		s.log.Error("journaling dataset delete", "name", name, "error", err)
		s.writeError(w, r, &api.Error{
			Status: http.StatusInternalServerError, Code: api.CodeInternal,
			Message: "persisting the deletion failed; dataset not deleted",
		})
		return
	}
	s.mu.Lock()
	e, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if !ok {
		// A racing delete won between our check and now; its journal record
		// and ours are both harmless no-ops on replay.
		s.writeError(w, r, notFound(name))
		return
	}
	// Teardown: the dataset is already out of the registry, so no new work
	// can reach it; drain the fair queue's full capacity (waiting for
	// in-flight analyses, which hold slots for their whole run) before
	// releasing the backend — sql.DB.Close only waits for queries that have
	// started, not for an analysis between queries. The drain happens
	// off-request so DELETE returns immediately.
	go func() {
		if release, err := e.queue.Drain(s.closing); err == nil {
			defer release()
		}
		if err := e.db.Close(); err != nil {
			s.log.Error("closing dataset handle", "name", name, "error", err)
		}
	}()
	s.log.Info("dataset deleted", "name", name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, apiErr := s.lookup(r.PathValue("name"))
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	st := e.db.Stats()
	out := api.DatasetStats{
		DatasetInfo: s.infoOf(e),
		Cache:       api.CacheStats{CDComputes: st.CDComputes, CDHits: st.CDHits},
		Analyses:    e.analyses.Load(),
	}
	attrs, err := e.db.Attributes(r.Context())
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	for _, a := range attrs {
		out.Attributes = append(out.Attributes, api.AttributeInfo{Name: a.Name, Distinct: a.Distinct})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) infoOf(e *entry) api.DatasetInfo {
	info := api.DatasetInfo{
		Name: e.name, Rows: int(e.rows.Load()), Cols: e.cols,
		Backend: e.backend, CreatedAt: e.created,
	}
	if si, ok := e.db.ShardInfo(); ok {
		info.Shards, info.Version = si.Shards, si.Version
	}
	for _, p := range e.db.RemotePeers() {
		info.Peers = append(info.Peers, p.URL)
	}
	return info
}

func (s *Server) lookup(name string) (*entry, *api.Error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[name]
	if !ok {
		return nil, notFound(name)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Analysis

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	e, apiErr := s.lookup(req.Dataset)
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		s.writeError(w, r, badRequest(err.Error()))
		return
	}
	q, err := req.Query.ToQuery(req.Dataset)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx, r, e, 1)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	defer release()

	start := s.now()
	rep, err := e.db.Analyze(ctx, q, opts...)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	e.analyses.Add(1)
	s.analyses.Add(1)
	s.log.Info("analyze", "dataset", req.Dataset, "treatment", q.Treatment,
		"duration", s.now().Sub(start).String())
	s.writeJSON(w, http.StatusOK, api.ReportFromCore(rep))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, r, badRequest("batch has no queries"))
		return
	}
	e, apiErr := s.lookup(req.Dataset)
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		s.writeError(w, r, badRequest(err.Error()))
		return
	}
	// Per-item error isolation: a malformed query gets its error entry and
	// the rest of the batch still runs. Valid queries are compacted for the
	// session call and their results scattered back to request positions.
	itemErrs := make([]*api.Error, len(req.Queries))
	queries := make([]hypdb.Query, 0, len(req.Queries))
	queryPos := make([]int, 0, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.ToQuery(req.Dataset)
		if err != nil {
			apiErr := mapError(err)
			apiErr.Message = fmt.Sprintf("query %d: %s", i, apiErr.Message)
			itemErrs[i] = apiErr
			continue
		}
		queries = append(queries, q)
		queryPos = append(queryPos, i)
	}
	if len(queries) == 0 {
		out := api.BatchResponse{Reports: make([]*api.Report, len(req.Queries)), Errors: itemErrs}
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	// The batch reserves one concurrency slot per worker it will run, so
	// the per-dataset limit genuinely bounds concurrent analyses even when
	// several batches race single requests. The queue capacity is the limit the
	// dataset was registered with — the single source of truth.
	workers := req.Options.Workers
	if limit := e.queue.Capacity(); workers <= 0 || workers > limit {
		workers = limit
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	opts = append(opts, hypdb.WithWorkers(workers))

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx, r, e, workers)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	defer release()

	start := s.now()
	reps, errs := e.db.AnalyzeAllSettled(ctx, queries, opts...)
	e.analyses.Add(int64(len(queries)))
	s.analyses.Add(int64(len(queries)))
	s.log.Info("analyze batch", "dataset", req.Dataset, "queries", len(queries),
		"duration", s.now().Sub(start).String())
	out := api.BatchResponse{Reports: make([]*api.Report, len(req.Queries))}
	failed := 0
	for j, rep := range reps {
		i := queryPos[j]
		if errs[j] != nil {
			apiErr := mapError(errs[j])
			apiErr.Message = fmt.Sprintf("query %d: %s", i, apiErr.Message)
			itemErrs[i] = apiErr
			continue
		}
		out.Reports[i] = api.ReportFromCore(rep)
	}
	for _, apiErr := range itemErrs {
		if apiErr != nil {
			failed++
		}
	}
	if failed > 0 {
		out.Errors = itemErrs
		s.log.Info("analyze batch errors", "dataset", req.Dataset, "failed", failed)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleAudit runs a lattice-wide bias sweep over one dataset. Sweeps are
// long-running, so the handler is built to be polled from outside: it
// reserves worker slots on the dataset's concurrency limiter like a batch
// (bounding how much of the dataset's capacity one sweep may take), and it
// streams candidate progress into the dataset's audit counters, which
// GET /v1/metrics exposes while the sweep is still running.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req api.AuditRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	e, apiErr := s.lookup(req.Dataset)
	if apiErr != nil {
		s.writeError(w, r, apiErr)
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		s.writeError(w, r, badRequest(err.Error()))
		return
	}
	spec, err := req.Spec.ToSpec()
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	// Like batches, a sweep reserves one limiter slot per worker it may
	// run, keeping the per-dataset concurrency bound honest when sweeps
	// race single analyses.
	workers := req.Spec.Workers
	if limit := e.queue.Capacity(); workers <= 0 || workers > limit {
		workers = limit
	}
	spec.Workers = workers

	// Progress callbacks arrive serialized, with cumulative done counts;
	// publish the deltas into the dataset's cumulative counters.
	var prevDone, prevTotal int
	spec.Progress = func(done, total int) {
		e.auditCandsDone.Add(int64(done - prevDone))
		e.auditCandsTotal.Add(int64(total - prevTotal))
		prevDone, prevTotal = done, total
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx, r, e, workers)
	if err != nil {
		s.writeError(w, r, mapError(err))
		return
	}
	defer release()

	s.auditsInFlight.Add(1)
	e.auditsRunning.Add(1)
	start := s.now()
	rep, err := e.db.Audit(ctx, spec, opts...)
	e.auditsRunning.Add(-1)
	s.auditsInFlight.Add(-1)
	if err != nil {
		// Reconcile the progress counters: a failed or cancelled sweep
		// never finishes its candidates, so deduct the unfinished
		// remainder from the cumulative total — keeping the documented
		// invariant that total equals done once nothing is running.
		if remainder := prevTotal - prevDone; remainder > 0 {
			e.auditCandsTotal.Add(int64(-remainder))
		}
		s.writeError(w, r, mapError(err))
		return
	}
	e.audits.Add(1)
	s.audits.Add(1)
	s.log.Info("audit", "dataset", req.Dataset,
		"candidates", rep.Candidates, "findings", rep.TotalFindings,
		"duration", s.now().Sub(start).String())
	s.writeJSON(w, http.StatusOK, api.AuditReportFromCore(rep))
}

// requestContext derives the analysis context: the request's own context,
// joined to the server's closing context (shutdown cancels in-flight work)
// and bounded by the configured timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.closing, cancel)
	if s.cfg.RequestTimeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
		return tctx, func() { tcancel(); cancel(); stop() }
	}
	return ctx, func() { cancel(); stop() }
}

// acquire takes n execution slots from the dataset's fair queue on behalf
// of the request's authenticated identity: requests queue in weighted
// fair order (one tenant's burst cannot starve another), multi-slot
// reservations (batches, audits) are FIFO against racing singles, and
// overload or an unmeetable deadline sheds with a typed *admission.Rejection
// that mapError turns into 429/503 + Retry-After.
func (s *Server) acquire(ctx context.Context, r *http.Request, e *entry, n int) (release func(), err error) {
	id := identityFrom(r.Context())
	return e.queue.Acquire(ctx, id.name, id.weight, n)
}

// ---------------------------------------------------------------------------
// Health and metrics

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, api.Health{
		Status:        "ok",
		UptimeSeconds: s.now().Sub(s.started).Seconds(),
	})
}

// handleMetrics and the shared metricsSnapshot live in metrics.go.

// ---------------------------------------------------------------------------
// Encoding and error classification

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encoding response", "error", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, e *api.Error) {
	if e.Status >= 500 && e.Code != api.CodeShuttingDown && e.Code != api.CodeOverloaded {
		s.log.Error("request failed", "method", r.Method, "path", r.URL.Path,
			"code", e.Code, "error", e.Message)
	}
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterSeconds > 0 {
		// The standard header carries whole seconds; round up so a client
		// honoring only the header never retries early.
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(e.RetryAfterSeconds))))
	}
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(map[string]*api.Error{"error": e})
}

func badRequest(msg string) *api.Error {
	return &api.Error{Status: http.StatusBadRequest, Code: api.CodeBadRequest, Message: msg}
}

// decodeBody decodes a JSON request body under the server's byte limit,
// distinguishing oversized bodies (413) from malformed ones (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *api.Error {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxUploadBytes())).Decode(v)
	if err == nil {
		return nil
	}
	return bodyError(err, s.cfg.maxUploadBytes())
}

// bodyError classifies a body-read failure.
func bodyError(err error, limit int64) *api.Error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return &api.Error{
			Status: http.StatusRequestEntityTooLarge, Code: api.CodeBodyTooLarge,
			Message: fmt.Sprintf("request body exceeds the %d-byte limit", limit),
		}
	}
	return badRequest("reading request body: " + err.Error())
}

func notFound(name string) *api.Error {
	return &api.Error{
		Status: http.StatusNotFound, Code: api.CodeDatasetNotFound,
		Message: fmt.Sprintf("no dataset %q", name),
	}
}

// mapError classifies a pipeline error into the service's error envelope
// via the library's sentinel errors.
func mapError(err error) *api.Error {
	var rej *admission.Rejection
	if errors.As(err, &rej) {
		e := &api.Error{Message: rej.Error(), RetryAfterSeconds: rej.RetryAfter.Seconds()}
		switch rej.Reason {
		case admission.RateLimited:
			e.Status, e.Code = http.StatusTooManyRequests, api.CodeRateLimited
		case admission.Draining:
			e.Status, e.Code = http.StatusServiceUnavailable, api.CodeShuttingDown
		default: // QueueFull, DeadlineUnmeetable: the dataset is saturated.
			e.Status, e.Code = http.StatusServiceUnavailable, api.CodeOverloaded
		}
		return e
	}
	msg := err.Error()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &api.Error{Status: http.StatusGatewayTimeout, Code: api.CodeTimeout,
			Message: "analysis exceeded the server's request timeout"}
	case errors.Is(err, context.Canceled):
		return &api.Error{Status: http.StatusServiceUnavailable, Code: api.CodeShuttingDown,
			Message: "request cancelled (client went away or server is draining)"}
	case errors.Is(err, hypdb.ErrMalformedCSV):
		return &api.Error{Status: http.StatusBadRequest, Code: api.CodeMalformedCSV, Message: msg}
	case errors.Is(err, hypdb.ErrBadPredicate):
		return &api.Error{Status: http.StatusBadRequest, Code: api.CodeBadPredicate, Message: msg}
	case errors.Is(err, hypdb.ErrUnknownAttribute):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeUnknownAttribute, Message: msg}
	case errors.Is(err, hypdb.ErrEmptySelection):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeEmptySelection, Message: msg}
	case errors.Is(err, hypdb.ErrEmptyTable):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeEmptyTable, Message: msg}
	case errors.Is(err, hypdb.ErrNonBinaryTreatment):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeNonBinaryTreatment, Message: msg}
	case errors.Is(err, hypdb.ErrNonNumericOutcome):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeNonNumericOutcome, Message: msg}
	case errors.Is(err, hypdb.ErrNoOverlap):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeNoOverlap, Message: msg}
	case errors.Is(err, hypdb.ErrNeedsMaterialization):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeNeedsMaterialize, Message: msg}
	case errors.Is(err, hypdb.ErrNotAppendable):
		return &api.Error{Status: http.StatusUnprocessableEntity, Code: api.CodeNotAppendable, Message: msg}
	case errors.Is(err, hypdb.ErrVersionSkew):
		return &api.Error{Status: http.StatusConflict, Code: api.CodeVersionSkew, Message: msg}
	case errors.Is(err, hypdb.ErrPeerAuth):
		return &api.Error{Status: http.StatusBadGateway, Code: api.CodePeerAuth, Message: msg}
	case errors.Is(err, hypdb.ErrPeerUnavailable):
		return &api.Error{Status: http.StatusBadGateway, Code: api.CodePeerUnavailable, Message: msg}
	default:
		return &api.Error{Status: http.StatusInternalServerError, Code: api.CodeInternal, Message: msg}
	}
}
