// Package countcache implements HypDB's marginalization-serving count
// cache: a source.Relation wrapper that memoizes dense (mixed-radix)
// group-by views and answers any Counts request whose attribute set is
// covered by a cached view by marginalizing it in O(cells) — never going
// back to the backend. Sec 6 of the paper observes that "contingency tables
// with their marginals are essentially OLAP data-cubes"; this package is
// that observation promoted into the storage layer, shared by every
// consumer of counts (entropy providers, covariate-discovery scoring, the
// MIT group tables, query rewriting) instead of being rebuilt privately by
// each of them.
//
// Prime fetches the finest view over an attribute closure in one backend
// round trip (one GROUP BY query on SQL backends, one columnar scan in
// memory); after priming, the subset enumeration of a covariate-discovery
// hill climb runs entirely against the cache. Views are bounded by a cell
// budget per view and a total-cell bound per handle; requests above the
// budget pass through to the backend unchanged.
package countcache

import (
	"context"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/dataset"
	"hypdb/source"
)

// Stats reports one handle's cache traffic.
type Stats struct {
	// Fetches counts backend round trips for dense views; Hits counts
	// requests answered from a cached view of exactly the requested
	// attribute set; Derived counts requests answered by marginalizing a
	// cached superset view.
	Fetches int
	Hits    int
	Derived int
}

// Relation wraps a source.Relation with the dense count cache. It preserves
// the wrapped backend's identity (Backend), forwards the Materializer,
// Closer and Cardinality capabilities, and keeps restriction views on
// separate caches, so cache keys and session semantics are unchanged.
type Relation struct {
	inner  source.Relation
	budget int

	mu         sync.Mutex
	n          int
	hasN       bool
	views      map[string]*dataset.DenseCounts // canonical (sorted, joined) attrs -> dense view
	wide       []string                        // keys of the widest views: the derivation candidates
	maps       map[string]map[source.Key]int   // request-order attrs -> sparse map form memo
	totalCells int
	restricts  map[string]*Relation
	stats      Stats
}

// maxMapMemos bounds the sparse-form memo (maps are derived from views in
// one pass, so eviction only costs a rebuild).
const maxMapMemos = 128

// maxTotalCellsFactor bounds the handle's total cached cells as a multiple
// of the per-view budget; past it, arbitrary views are evicted (the cache
// is a pure memo).
const maxTotalCellsFactor = 4

// maxWide bounds the derivation-candidate list. Coverage search must stay
// O(1) per request — scanning every memoized view made the search itself
// quadratic in the number of distinct attribute sets an analysis touches —
// so only the widest views (the primed closures and the broadest joints,
// which cover almost everything worth deriving) are candidates; narrower
// requests that miss them fall through to the backend, which is never worse
// than the uncached path.
const maxWide = 32

// maxRestricts bounds the memoized restriction wrappers.
const maxRestricts = 256

// Wrap returns rel behind a count cache with the given per-view cell budget
// (≤ 0 meaning dataset.DefaultCellBudget). Wrapping an already-wrapped
// relation returns it unchanged.
func Wrap(rel source.Relation, budget int) *Relation {
	if c, ok := rel.(*Relation); ok {
		return c
	}
	if budget <= 0 {
		budget = dataset.DefaultCellBudget
	}
	return &Relation{
		inner:  rel,
		budget: budget,
		views:  make(map[string]*dataset.DenseCounts),
	}
}

// Inner returns the wrapped relation.
func (c *Relation) Inner() source.Relation { return c.inner }

// Stats returns a snapshot of the cache counters.
func (c *Relation) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Name implements source.Relation.
func (c *Relation) Name() string { return c.inner.Name() }

// Backend implements source.Relation, forwarding the wrapped identity so
// session caches keyed by it are unaffected by the wrapper.
func (c *Relation) Backend() string { return c.inner.Backend() }

// Attributes implements source.Relation.
func (c *Relation) Attributes() []string { return c.inner.Attributes() }

// HasAttribute implements source.Relation.
func (c *Relation) HasAttribute(name string) bool { return c.inner.HasAttribute(name) }

// NumRows implements source.Relation (memoized).
func (c *Relation) NumRows(ctx context.Context) (int, error) {
	c.mu.Lock()
	if c.hasN {
		n := c.n
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	n, err := c.inner.NumRows(ctx)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.n, c.hasN = n, true
	c.mu.Unlock()
	return n, nil
}

// Labels implements source.Relation.
func (c *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	return c.inner.Labels(ctx, attr)
}

// Cardinality forwards the optional capability, falling back to the
// dictionary length.
func (c *Relation) Cardinality(ctx context.Context, attr string) (int, error) {
	return source.Card(ctx, c.inner, attr)
}

// Counts implements source.Relation. Unpredicated requests are served from
// the dense cache (marginalizing the smallest covering view), with the
// sparse map form memoized per request order so repeated identical calls
// return the cached map instead of re-walking the cells. Predicated
// requests pass through — they belong to query execution, whose predicates
// rarely repeat across an analysis. Callers must treat the returned map as
// read-only (the same contract the SQL backend's memo imposes).
func (c *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if where != nil {
		return c.inner.Counts(ctx, attrs, where)
	}
	okey := strings.Join(attrs, "\x00")
	c.mu.Lock()
	if m, ok := c.maps[okey]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	dc, err := c.dense(ctx, attrs, 0)
	if err != nil {
		return nil, err
	}
	if dc == nil {
		return c.inner.Counts(ctx, attrs, nil)
	}
	m := dc.Map()
	c.mu.Lock()
	if c.maps == nil {
		c.maps = make(map[string]map[source.Key]int)
	}
	for k := range c.maps {
		if len(c.maps) < maxMapMemos {
			break
		}
		delete(c.maps, k)
	}
	c.maps[okey] = m
	c.mu.Unlock()
	return m, nil
}

// DenseCounts implements source.DenseCounter. An explicit budget overrides
// the handle's own (in either direction — a caller may permit a larger
// tabulation than the cache default).
func (c *Relation) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	if where != nil {
		return source.Dense(ctx, c.inner, attrs, where, budget)
	}
	return c.dense(ctx, attrs, budget)
}

// Prime fetches the finest dense view over attrs — one backend round trip —
// so every subsequent Counts over a subset is answered by marginalization.
// budget overrides the handle's cell budget for this closure (≤ 0 meaning
// the handle budget); closures above the effective budget are skipped
// silently (requests then fall through to the backend, which may still
// derive shared marginals itself).
func (c *Relation) Prime(ctx context.Context, attrs []string, budget int) error {
	_, err := c.dense(ctx, attrs, budget)
	return err
}

// Restrict implements source.Relation: the restriction is delegated to the
// backend and the resulting view wrapped in its own cache. Wrappers are
// memoized per rendered predicate, so the several phases of one analysis
// that restrict by the same WHERE clause (context splitting, balance
// testing, per-context significance) share one restricted cache — and, for
// the mem backend, one row selection.
func (c *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return c, nil
	}
	key := where.SQL()
	c.mu.Lock()
	if child, ok := c.restricts[key]; ok {
		c.mu.Unlock()
		return child, nil
	}
	c.mu.Unlock()

	inner, err := c.inner.Restrict(ctx, where)
	if err != nil {
		return nil, err
	}
	if inner == c.inner {
		return c, nil
	}
	child := Wrap(inner, c.budget)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.restricts == nil {
		c.restricts = make(map[string]*Relation)
	}
	if prev, ok := c.restricts[key]; ok {
		return prev, nil // racing restriction: keep one wrapper
	}
	for k := range c.restricts {
		if len(c.restricts) < maxRestricts {
			break
		}
		delete(c.restricts, k)
	}
	c.restricts[key] = child
	return child, nil
}

// Materialize forwards the row-level capability of the wrapped backend;
// counts-only backends keep failing with ErrNeedsMaterialization.
func (c *Relation) Materialize(ctx context.Context) (*dataset.Table, error) {
	return source.Materialize(ctx, c.inner)
}

// Table forwards the zero-cost in-memory table capability of backends that
// have one (source/mem), and returns nil otherwise — so capability probes
// like key detection's row sampler see through the cache wrapper.
func (c *Relation) Table() *dataset.Table {
	if t, ok := c.inner.(interface{ Table() *dataset.Table }); ok {
		return t.Table()
	}
	return nil
}

// Close implements source.Closer by forwarding (a no-op for resource-free
// backends).
func (c *Relation) Close() error {
	if cl, ok := c.inner.(source.Closer); ok {
		return cl.Close()
	}
	return nil
}

// canonical returns the sorted attribute list and, for each requested
// position, its index in the sorted order.
func canonical(attrs []string) (sorted []string, pos []int) {
	sorted = append([]string(nil), attrs...)
	sort.Strings(sorted)
	pos = make([]int, len(attrs))
	for i, a := range attrs {
		for j, s := range sorted {
			if s == a {
				pos[i] = j
				// Duplicate attribute names cannot occur: source.Relation
				// schemas are duplicate-free and callers pass subsets.
				break
			}
		}
	}
	return sorted, pos
}

// dense returns the dense view over attrs in request order, or nil when
// the cell space exceeds the effective budget (budget ≤ 0 meaning the
// handle budget). The canonical (sorted) view is cached; request order is
// restored with one O(cells) projection. The O(cells) work — marginalizing
// a covering view, fetching from the backend — runs outside the handle
// lock (views are immutable once stored, and a racing duplicate
// computation is benign: last writer wins with identical data), so
// concurrent analyses sharing one handle only contend on map lookups.
func (c *Relation) dense(ctx context.Context, attrs []string, budget int) (*dataset.DenseCounts, error) {
	effective := c.budget
	if budget > 0 {
		effective = budget
	}
	sorted, pos := canonical(attrs)
	key := strings.Join(sorted, "\x00")

	c.mu.Lock()
	view, ok := c.views[key]
	var src *dataset.DenseCounts
	var srcKeep []int
	if ok {
		c.stats.Hits++
	} else {
		src, srcKeep = c.findCoverLocked(sorted)
	}
	c.mu.Unlock()

	if view == nil && src != nil {
		out, err := src.Project(srcKeep)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.Derived++
		c.storeLocked(key, out)
		c.mu.Unlock()
		view = out
	}
	if view == nil {
		dc, err := source.Dense(ctx, c.inner, sorted, nil, effective)
		if err != nil || dc == nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.Fetches++
		c.storeLocked(key, dc)
		c.mu.Unlock()
		view = dc
	}
	if budget > 0 && len(view.Cells) > budget {
		// An explicitly tighter budget than the view the cache holds: honor
		// the DenseCounter contract rather than returning an oversized view.
		return nil, nil
	}
	return reorder(view, attrs, pos)
}

// findCoverLocked returns the smallest covering view among the derivation
// candidates (the widest memoized views) together with the projection
// positions of the requested attributes, pruning stale candidates along
// the way. Callers hold c.mu.
func (c *Relation) findCoverLocked(sorted []string) (*dataset.DenseCounts, []int) {
	var (
		best     *dataset.DenseCounts
		bestKeep []int
	)
	kept := c.wide[:0]
	for _, wk := range c.wide {
		v, ok := c.views[wk]
		if !ok {
			continue // evicted; drop from the candidate list
		}
		kept = append(kept, wk)
		keep := coverPositions(v.Attrs, sorted)
		if keep == nil {
			continue
		}
		if best == nil || len(v.Cells) < len(best.Cells) {
			best, bestKeep = v, keep
		}
	}
	c.wide = kept
	return best, bestKeep
}

// coverPositions returns, for each attribute of want, its position in have —
// or nil when have does not cover want.
func coverPositions(have, want []string) []int {
	if len(want) > len(have) {
		return nil
	}
	keep := make([]int, len(want))
	for i, w := range want {
		found := -1
		for j, h := range have {
			if h == w {
				found = j
				break
			}
		}
		if found < 0 {
			return nil
		}
		keep[i] = found
	}
	return keep
}

// storeLocked inserts a view, evicting arbitrary views past the total-cell
// bound and maintaining the derivation-candidate list. Callers hold c.mu.
func (c *Relation) storeLocked(key string, dc *dataset.DenseCounts) {
	maxTotal := c.budget * maxTotalCellsFactor
	for k, v := range c.views {
		if c.totalCells+len(dc.Cells) <= maxTotal {
			break
		}
		c.totalCells -= len(v.Cells)
		delete(c.views, k)
	}
	if old, exists := c.views[key]; exists {
		// Racing fetches of one key: replace, don't double-count.
		c.totalCells -= len(old.Cells)
	} else {
		c.noteWideLocked(key, dc)
	}
	c.views[key] = dc
	c.totalCells += len(dc.Cells)
}

// noteWideLocked admits key into the derivation-candidate list, displacing
// a narrower candidate when full. Callers hold c.mu.
func (c *Relation) noteWideLocked(key string, dc *dataset.DenseCounts) {
	for _, wk := range c.wide {
		if wk == key {
			return // evicted and re-fetched: already a candidate
		}
	}
	if len(c.wide) < maxWide {
		c.wide = append(c.wide, key)
		return
	}
	// Replace the candidate with the fewest attributes if the new view is
	// wider — wider views cover more subsets.
	narrowest, nAttrs := -1, len(dc.Attrs)
	for i, wk := range c.wide {
		v, ok := c.views[wk]
		if !ok {
			narrowest, nAttrs = i, -1
			break
		}
		if len(v.Attrs) < nAttrs {
			narrowest, nAttrs = i, len(v.Attrs)
		}
	}
	if narrowest >= 0 {
		c.wide[narrowest] = key
	}
}

// reorder projects a canonical view back into the requested attribute
// order; a request already in canonical order returns the cached view
// itself (callers must treat it as read-only).
func reorder(view *dataset.DenseCounts, attrs []string, pos []int) (*dataset.DenseCounts, error) {
	inOrder := true
	for i, p := range pos {
		if p != i {
			inOrder = false
		}
	}
	if inOrder && len(attrs) == len(view.Attrs) {
		return view, nil
	}
	return view.Project(pos)
}

var (
	_ source.Relation     = (*Relation)(nil)
	_ source.DenseCounter = (*Relation)(nil)
	_ source.Closer       = (*Relation)(nil)
	_ source.Materializer = (*Relation)(nil)
)
