// Package catalog persists hypdbd's dataset registrations so a restart
// can rebuild the serving state without re-registration. The design is a
// plain append-only journal:
//
//   - every mutating catalog operation (dataset create, sharded append,
//     dataset delete) is one JSON record appended to journal.jsonl and
//     fsynced before the server acknowledges the request;
//   - uploaded CSV bodies are spilled to their own files under csv/ so
//     the journal stays small and a dataset's raw bytes survive verbatim;
//   - on startup the server replays the journal in order — deletes cancel
//     every earlier record for their dataset — and re-registers what is
//     left: CSV datasets re-load from the spill files, SQL datasets
//     re-open their DSNs, remote datasets re-handshake their peers, and
//     sharded appends re-apply so snapshot versions re-pin exactly.
//
// Compaction rewrites the journal with only live records (atomic
// tmp+rename) and garbage-collects orphaned spill files; the server runs
// it after replay so a churn-heavy history does not grow the directory
// without bound.
package catalog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Ops recorded in the journal.
const (
	// OpCreate registers a dataset; Kind says which backend family.
	OpCreate = "create"
	// OpAppend records rows streamed into a sharded dataset. Replaying
	// appends in order reproduces the dataset's snapshot version.
	OpAppend = "append"
	// OpDelete unregisters a dataset, cancelling all earlier records for
	// the same name on replay.
	OpDelete = "delete"
)

// Kinds of dataset a create record can describe.
const (
	// KindCSV is an uploaded CSV served by the mem backend (Shards <= 1)
	// or the sharded backend (Shards > 1); the body lives in CSVFile.
	KindCSV = "csv"
	// KindSQL is a DSN-registered SQL table.
	KindSQL = "sql"
	// KindRemote is a dataset served by remote hypdbd peers.
	KindRemote = "remote"
)

// Record is one journaled catalog operation.
type Record struct {
	// Op is OpCreate, OpAppend, or OpDelete.
	Op string `json:"op"`
	// Name is the dataset name the operation applies to.
	Name string `json:"name"`

	// Kind (create only) is KindCSV, KindSQL, or KindRemote.
	Kind string `json:"kind,omitempty"`
	// Shards (KindCSV) is the registration-time shard count; <= 1 means
	// the unsharded mem backend.
	Shards int `json:"shards,omitempty"`
	// CSVFile (KindCSV) names the spilled CSV body, relative to the
	// journal directory (e.g. "csv/flights-123.csv").
	CSVFile string `json:"csv_file,omitempty"`

	// Driver, DSN, and SQLTable (KindSQL) re-open the SQL source.
	Driver   string `json:"driver,omitempty"`
	DSN      string `json:"dsn,omitempty"`
	SQLTable string `json:"sql_table,omitempty"`

	// Peers and Degraded (KindRemote) re-handshake the remote shards.
	Peers    []string `json:"peers,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`

	// Rows (append only) are the ingested rows, one string per attribute.
	Rows [][]string `json:"rows,omitempty"`
}

// Journal is an append-only catalog journal rooted at a data directory.
// Append and SpillCSV are safe for concurrent use; Replay and Compact
// must not race with writers (the server serializes them at startup).
type Journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
	// appended counts records durably written by this process, for the
	// service's catalog metrics.
	appended atomic.Int64
}

const journalFile = "journal.jsonl"

// Open creates the data directory if needed and opens the journal for
// appending.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("catalog: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "csv"), 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return &Journal{dir: dir, f: f}, nil
}

// Dir returns the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Close closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Append durably writes one record: the line is flushed and fsynced
// before Append returns, so an acknowledged registration survives a
// crash immediately after.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("catalog: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	j.appended.Add(1)
	return nil
}

// Appended reports how many records this process has durably written —
// a monotonic counter for the service's catalog metrics (replayed history
// from earlier processes is not counted).
func (j *Journal) Appended() int64 { return j.appended.Load() }

// SpillCSV writes a CSV body to a fresh file under csv/ and returns its
// journal-relative path for the create record. The file is fsynced; call
// SpillCSV before Append so the record never references missing bytes.
func (j *Journal) SpillCSV(name, body string) (string, error) {
	f, err := os.CreateTemp(filepath.Join(j.dir, "csv"), sanitize(name)+"-*.csv")
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	if _, err := io.WriteString(f, body); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("catalog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("catalog: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", fmt.Errorf("catalog: %w", err)
	}
	return filepath.Join("csv", filepath.Base(f.Name())), nil
}

// ReadCSV loads a spilled CSV body by its journal-relative path.
func (j *Journal) ReadCSV(file string) (string, error) {
	b, err := os.ReadFile(filepath.Join(j.dir, file))
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	return string(b), nil
}

// Replay reads the journal and returns the live records in original
// order: an OpDelete drops itself and every earlier record for its name,
// so what remains is exactly the sequence of creates and appends that
// rebuilds the current catalog. A trailing partial line (torn write from
// a crash mid-append) is ignored; a corrupt line elsewhere is an error.
func (j *Journal) Replay() ([]Record, error) {
	f, err := os.Open(filepath.Join(j.dir, journalFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()

	var live []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Only a torn final line is forgivable: it means the process
			// died mid-write before acknowledging, so the operation never
			// happened as far as any client knows.
			if atEOF(sc) {
				break
			}
			return nil, fmt.Errorf("catalog: journal line %d: %w", lineNo, err)
		}
		if rec.Op == OpDelete {
			kept := live[:0]
			for _, r := range live {
				if r.Name != rec.Name {
					kept = append(kept, r)
				}
			}
			live = kept
			continue
		}
		live = append(live, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return live, nil
}

// atEOF reports whether the scanner has no further lines — used to decide
// whether an unparsable line is a torn tail or mid-journal corruption.
func atEOF(sc *bufio.Scanner) bool { return !sc.Scan() }

// Compact rewrites the journal to contain only the live records (as
// Replay would return) and deletes spill files no live record references.
// The rewrite is atomic: a crash mid-compaction leaves either the old or
// the new journal, never a mix. The journal stays open for appends.
func (j *Journal) Compact() error {
	live, err := j.Replay()
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("catalog: journal closed")
	}

	tmp, err := os.CreateTemp(j.dir, journalFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	for _, rec := range live {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("catalog: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	path := filepath.Join(j.dir, journalFile)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Re-point the append handle at the new file; the old inode is gone.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	j.f.Close()
	j.f = f

	// Garbage-collect spill files nothing references anymore.
	used := make(map[string]bool, len(live))
	for _, rec := range live {
		if rec.CSVFile != "" {
			used[filepath.Base(rec.CSVFile)] = true
		}
	}
	entries, err := os.ReadDir(filepath.Join(j.dir, "csv"))
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() && !used[ent.Name()] {
			os.Remove(filepath.Join(j.dir, "csv", ent.Name()))
		}
	}
	return nil
}

// sanitize maps a dataset name to a safe spill-file prefix. Dataset names
// are already restricted to [a-zA-Z0-9._-], but defend anyway.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}
