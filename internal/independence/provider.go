// Package independence implements HypDB's conditional-independence testing
// engine (Sec 5 and Sec 6 of the paper): the Monte-Carlo permutation test
// over contingency tables (MIT, Alg 2), its group-sampling variant, the
// parametric chi-squared G-test, the hybrid HyMIT rule, and — as the
// baseline the paper's optimization replaces — the naive permutation test
// that reshuffles the data itself.
//
// All tests share the Tester interface so that higher layers (Markov
// boundary discovery, the CD algorithm, bias detection) are parameterized
// by the testing strategy, exactly as in the paper's experiments. Tests
// consume a source.Relation — the storage contract — so any backend that
// answers dictionary-coded group-by counts (in-memory columnar, SQL with
// count pushdown, ...) can drive them; only the naive shuffle test needs
// row-level access and requires a source.Materializer-capable backend.
package independence

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hypdb/internal/hyperr"
	"hypdb/internal/stats"
	"hypdb/source"
)

// EntropyProvider supplies joint entropies and distinct counts over
// attribute sets of one fixed relation. Implementations differ in how
// counts are obtained: querying the backend per call, marginalizing a
// materialized contingency table, or probing a pre-computed OLAP cube
// (Sec 6).
type EntropyProvider interface {
	// JointEntropy returns the estimated H(attrs) in nats.
	JointEntropy(ctx context.Context, attrs []string) (float64, error)
	// DistinctCount returns |Π_attrs(D)|, the number of distinct
	// combinations present in the data.
	DistinctCount(ctx context.Context, attrs []string) (int, error)
	// NumRows returns the number of rows of the underlying relation.
	NumRows() int
}

// RelationProvider computes entropies with one backend Counts call per
// request — the baseline strategy with no materialization.
type RelationProvider struct {
	Rel source.Relation
	Est stats.Estimator
	n   int
}

// NewRelationProvider returns a provider over rel using the given
// estimator. The row count is fetched eagerly (one aggregate query).
func NewRelationProvider(ctx context.Context, rel source.Relation, est stats.Estimator) (*RelationProvider, error) {
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	return &RelationProvider{Rel: rel, Est: est, n: n}, nil
}

// JointEntropy implements EntropyProvider. Backends within the dense cell
// budget answer through the flat mixed-radix tabulation (no per-group key
// material); wider attribute sets fall back to the sparse count map. Both
// paths sort the non-zero counts before summation, so they are bit-for-bit
// interchangeable.
func (p *RelationProvider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	if dc, err := source.Dense(ctx, p.Rel, attrs, nil, 0); err != nil {
		return 0, err
	} else if dc != nil {
		return stats.EntropyCountsStable(dc.Cells, p.n, p.Est), nil
	}
	counts, err := p.Rel.Counts(ctx, attrs, nil)
	if err != nil {
		return 0, err
	}
	return stats.EntropyCountsMap(counts, p.n, p.Est), nil
}

// DistinctCount implements EntropyProvider.
func (p *RelationProvider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	if len(attrs) == 0 {
		return 1, nil
	}
	if dc, err := source.Dense(ctx, p.Rel, attrs, nil, 0); err != nil {
		return 0, err
	} else if dc != nil {
		return dc.NonZero(), nil
	}
	counts, err := p.Rel.Counts(ctx, attrs, nil)
	if err != nil {
		return 0, err
	}
	return len(counts), nil
}

// NumRows implements EntropyProvider.
func (p *RelationProvider) NumRows() int { return p.n }

// SharedProvider binds the χ² branch of a tester to one cached
// relation-backed entropy provider over rel, so the entropy cache
// accumulates across the many Test calls of a search loop (Grow-Shrink,
// IAMB, the FGS edge-removal sweeps) instead of being rebuilt per call.
// Testers that already carry a provider — or have no provider slot (MIT,
// Shuffle, wrappers) — are returned unchanged.
func SharedProvider(ctx context.Context, t Tester, rel source.Relation) (Tester, error) {
	switch v := t.(type) {
	case ChiSquare:
		if v.Provider != nil {
			return t, nil
		}
		rp, err := NewRelationProvider(ctx, rel, v.Est)
		if err != nil {
			return nil, err
		}
		v.Provider = NewCachedProvider(rp)
		return v, nil
	case HyMIT:
		if v.Provider != nil {
			return t, nil
		}
		rp, err := NewRelationProvider(ctx, rel, v.Est)
		if err != nil {
			return nil, err
		}
		v.Provider = NewCachedProvider(rp)
		return v, nil
	}
	return t, nil
}

// CachedProvider memoizes another provider. This is the paper's "caching
// entropy" optimization (Sec 6): H(T), H(TZ), ... are shared among many
// conditional mutual-information statements and are computed once.
// It is safe for concurrent use.
type CachedProvider struct {
	inner EntropyProvider

	mu        sync.Mutex
	entropies map[string]float64
	distinct  map[string]int
	hits      int
	misses    int
}

// NewCachedProvider wraps inner with memoization.
func NewCachedProvider(inner EntropyProvider) *CachedProvider {
	return &CachedProvider{
		inner:     inner,
		entropies: make(map[string]float64),
		distinct:  make(map[string]int),
	}
}

func cacheKey(attrs []string) string {
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// JointEntropy implements EntropyProvider.
func (p *CachedProvider) JointEntropy(ctx context.Context, attrs []string) (float64, error) {
	k := cacheKey(attrs)
	p.mu.Lock()
	if h, ok := p.entropies[k]; ok {
		p.hits++
		p.mu.Unlock()
		return h, nil
	}
	p.misses++
	p.mu.Unlock()
	h, err := p.inner.JointEntropy(ctx, attrs)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.entropies[k] = h
	p.mu.Unlock()
	return h, nil
}

// DistinctCount implements EntropyProvider.
func (p *CachedProvider) DistinctCount(ctx context.Context, attrs []string) (int, error) {
	k := cacheKey(attrs)
	p.mu.Lock()
	if d, ok := p.distinct[k]; ok {
		p.hits++
		p.mu.Unlock()
		return d, nil
	}
	p.misses++
	p.mu.Unlock()
	d, err := p.inner.DistinctCount(ctx, attrs)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.distinct[k] = d
	p.mu.Unlock()
	return d, nil
}

// NumRows implements EntropyProvider.
func (p *CachedProvider) NumRows() int { return p.inner.NumRows() }

// Stats returns cache hit/miss counts, for the Fig 6(c) ablation.
func (p *CachedProvider) Stats() (hits, misses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// ConditionalMI estimates I(x;y|z) on the provider's relation using the
// chain-rule identity over four joint entropies.
func ConditionalMI(ctx context.Context, p EntropyProvider, x, y string, z []string) (float64, error) {
	xz := append(append([]string(nil), z...), x)
	yz := append(append([]string(nil), z...), y)
	xyz := append(append([]string(nil), z...), x, y)
	hXZ, err := p.JointEntropy(ctx, xz)
	if err != nil {
		return 0, err
	}
	hYZ, err := p.JointEntropy(ctx, yz)
	if err != nil {
		return 0, err
	}
	hXYZ, err := p.JointEntropy(ctx, xyz)
	if err != nil {
		return 0, err
	}
	hZ, err := p.JointEntropy(ctx, z)
	if err != nil {
		return 0, err
	}
	return stats.ConditionalMI(hXZ, hYZ, hXYZ, hZ), nil
}

// DegreesOfFreedom returns (|Π_x|−1)(|Π_y|−1)·|Π_z| as used by the
// parametric test (Sec 6).
func DegreesOfFreedom(ctx context.Context, p EntropyProvider, x, y string, z []string) (int, error) {
	dx, err := p.DistinctCount(ctx, []string{x})
	if err != nil {
		return 0, err
	}
	dy, err := p.DistinctCount(ctx, []string{y})
	if err != nil {
		return 0, err
	}
	dz, err := p.DistinctCount(ctx, z)
	if err != nil {
		return 0, err
	}
	if dx < 2 || dy < 2 {
		return 0, nil
	}
	return (dx - 1) * (dy - 1) * dz, nil
}

// ensureAttrs verifies the named attributes exist and are distinct between
// the tested pair and the conditioning set.
func ensureAttrs(rel source.Relation, x, y string, z []string) error {
	if x == y {
		return fmt.Errorf("independence: testing %q against itself", x)
	}
	if !rel.HasAttribute(x) {
		return fmt.Errorf("independence: no column %q: %w", x, hyperr.ErrUnknownAttribute)
	}
	if !rel.HasAttribute(y) {
		return fmt.Errorf("independence: no column %q: %w", y, hyperr.ErrUnknownAttribute)
	}
	for _, a := range z {
		if a == x || a == y {
			return fmt.Errorf("independence: conditioning set contains tested attribute %q", a)
		}
		if !rel.HasAttribute(a) {
			return fmt.Errorf("independence: no column %q: %w", a, hyperr.ErrUnknownAttribute)
		}
	}
	return nil
}
