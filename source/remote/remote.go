// Package remote implements the client half of HypDB's remote-shard
// transport: a source.Relation backed by a dataset served on a remote
// hypdbd peer, speaking the counts-serving endpoint
// (POST /v1/datasets/{name}/counts).
//
// A remote relation is a pinned snapshot of the peer's dataset: Open
// performs a schema/dictionary handshake that captures the peer's
// attributes, per-attribute dictionaries, row count and snapshot version,
// and every subsequent counts call carries that version — the peer answers
// 409 version_skew if its dataset has moved on, which surfaces as
// hyperr.ErrVersionSkew instead of silently mixing epochs. Restrict is a
// second handshake: the predicate is rendered to SQL, the peer restricts
// the relation server-side (with the backend's own dictionary compaction)
// and returns the restricted schema, so a coordinator's restricted child
// codes exactly like a local backend would.
//
// The transport is hardened for a hot path that runs once per
// covariate-discovery closure: per-attempt request deadlines, bounded
// retry with exponential backoff and jitter (counts requests are
// idempotent reads), and a background health-check loop per peer that
// fails calls fast — wrapping hyperr.ErrPeerUnavailable — while the peer
// is down, so a degrading coordinator can re-fan-out to the surviving
// shards without waiting out a retry budget per request.
//
// The relation is counts-only: it deliberately implements no
// source.Materializer, so row-level analysis paths fail with
// ErrNeedsMaterialization rather than shipping raw rows over the network.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
)

// Default transport parameters; zero Options fields fall back to these.
const (
	// DefaultRequestTimeout bounds each counts attempt (not the whole
	// retried call).
	DefaultRequestTimeout = 15 * time.Second
	// DefaultMaxRetries is how many times a failed idempotent request is
	// retried after the first attempt.
	DefaultMaxRetries = 3
	// DefaultRetryBackoff is the first retry's delay; it doubles per
	// attempt, with ±50% jitter.
	DefaultRetryBackoff = 100 * time.Millisecond
	// DefaultHealthInterval is the health-check loop's probe period.
	DefaultHealthInterval = 5 * time.Second
)

// Options tunes one peer's transport. The zero value uses the package
// defaults.
type Options struct {
	// Client is the HTTP client; nil builds one with dial/TLS timeouts
	// and keep-alive pooling. Per-attempt deadlines come from
	// RequestTimeout regardless.
	Client *http.Client
	// RequestTimeout bounds each individual attempt; the whole call takes
	// at most (1+MaxRetries)×(RequestTimeout+backoff). Zero means
	// DefaultRequestTimeout; negative disables the per-attempt deadline.
	RequestTimeout time.Duration
	// MaxRetries bounds retries after the first attempt, applied only to
	// retry-safe failures (network errors, timeouts, 5xx). Zero means
	// DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per attempt with
	// ±50% jitter. Zero means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// HealthInterval is the background health-probe period. Zero means
	// DefaultHealthInterval; negative disables the loop (calls then always
	// go to the network).
	HealthInterval time.Duration
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>" on
	// every request to the peer — the registration handshake, counts calls,
	// and health probes — so token-protected peers can be mounted. A peer
	// answering 401/403 anyway surfaces hyperr.ErrPeerAuth: a credential
	// fault is final, never retried and never degraded away.
	Token string
}

func (o Options) requestTimeout() time.Duration {
	switch {
	case o.RequestTimeout > 0:
		return o.RequestTimeout
	case o.RequestTimeout < 0:
		return 0
	default:
		return DefaultRequestTimeout
	}
}

func (o Options) maxRetries() int {
	switch {
	case o.MaxRetries > 0:
		return o.MaxRetries
	case o.MaxRetries < 0:
		return 0
	default:
		return DefaultMaxRetries
	}
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return DefaultRetryBackoff
}

func (o Options) healthInterval() time.Duration {
	switch {
	case o.HealthInterval > 0:
		return o.HealthInterval
	case o.HealthInterval < 0:
		return 0
	default:
		return DefaultHealthInterval
	}
}

func (o Options) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{
		Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			DialContext:         (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			TLSHandshakeTimeout: 10 * time.Second,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// PeerStats is a snapshot of one peer's transport counters, surfaced
// through DB.RemotePeers and /v1/metrics.
type PeerStats struct {
	// URL is the peer's base URL; Dataset the served dataset name.
	URL     string
	Dataset string
	// Version is the snapshot version pinned at the handshake.
	Version uint64
	// Healthy is the health loop's latest verdict (true when the loop is
	// disabled and no call has failed).
	Healthy bool
	// Requests counts counts calls issued (first attempts); Retries counts
	// extra attempts; Errors counts calls that failed after the retry
	// budget; CountsServed counts calls that returned group counts.
	Requests     int64
	Retries      int64
	Errors       int64
	CountsServed int64
	// LastRTT and AvgRTT measure successful request round trips.
	LastRTT time.Duration
	AvgRTT  time.Duration
}

// peer is the shared per-node transport state: one peer serves the root
// relation and every restricted view derived from it.
type peer struct {
	base    string // URL with trailing slash trimmed
	dataset string
	hc      *http.Client
	opts    Options

	healthy  atomic.Bool
	requests atomic.Int64
	retries  atomic.Int64
	errs     atomic.Int64
	served   atomic.Int64
	lastRTT  atomic.Int64 // nanoseconds
	rttSum   atomic.Int64
	rttN     atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
}

// Relation is a source.Relation served by a remote hypdbd peer: a pinned,
// immutable, counts-only snapshot of one dataset (or a server-side
// restriction of it). Create with Open; the root relation owns the peer's
// health loop and must be released with Close.
type Relation struct {
	p        *peer
	root     bool
	backend  string
	attrs    []string
	byName   map[string]int
	labels   [][]string
	rows     int
	ver      uint64
	restrict dataset.Predicate // nil on the root relation
}

// Open dials a hypdbd peer and performs the registration handshake for the
// named dataset: the peer's schema, per-attribute dictionaries, row count
// and snapshot version are captured, pinning the relation to that version.
// The returned relation is safe for concurrent use and must be released
// with Close (which stops the peer's health-check loop).
func Open(ctx context.Context, baseURL, dataset string, opts Options) (*Relation, error) {
	p := &peer{
		base:    strings.TrimRight(baseURL, "/"),
		dataset: dataset,
		hc:      opts.client(),
		opts:    opts,
		stop:    make(chan struct{}),
	}
	p.healthy.Store(true)
	resp, err := p.counts(ctx, CountsRequest{IncludeSchema: true})
	if err != nil {
		close(p.stop)
		return nil, err
	}
	r, err := fromSchema(p, resp, nil, true)
	if err != nil {
		close(p.stop)
		return nil, err
	}
	if iv := opts.healthInterval(); iv > 0 {
		go p.healthLoop(iv)
	}
	return r, nil
}

// fromSchema builds a Relation from a handshake response.
func fromSchema(p *peer, resp *CountsResponse, restrict dataset.Predicate, root bool) (*Relation, error) {
	s := resp.Schema
	if s == nil {
		return nil, fmt.Errorf("remote: peer %s: handshake response has no schema: %w", p.base, hyperr.ErrPeerUnavailable)
	}
	if len(s.Labels) != len(s.Attrs) {
		return nil, fmt.Errorf("remote: peer %s: schema has %d attrs but %d dictionaries: %w",
			p.base, len(s.Attrs), len(s.Labels), hyperr.ErrPeerUnavailable)
	}
	byName := make(map[string]int, len(s.Attrs))
	for i, a := range s.Attrs {
		byName[a] = i
	}
	backend := fmt.Sprintf("remote:%s/%s@v%d", p.base, p.dataset, resp.Version)
	if restrict != nil {
		backend += "|σ:" + restrict.SQL()
	}
	return &Relation{
		p:        p,
		root:     root,
		backend:  backend,
		attrs:    append([]string(nil), s.Attrs...),
		byName:   byName,
		labels:   s.Labels,
		rows:     s.Rows,
		ver:      resp.Version,
		restrict: restrict,
	}, nil
}

// Name implements source.Relation: the dataset's name on the peer.
func (r *Relation) Name() string { return r.p.dataset }

// Backend implements source.Relation. The identity names the peer, the
// dataset and the pinned snapshot version (plus the restriction, for
// restricted views), so cached statistics never cross peers or epochs.
func (r *Relation) Backend() string { return r.backend }

// Attributes implements source.Relation.
func (r *Relation) Attributes() []string { return r.attrs }

// HasAttribute implements source.Relation.
func (r *Relation) HasAttribute(name string) bool { _, ok := r.byName[name]; return ok }

// NumRows implements source.Relation from the handshake snapshot — no
// network round trip.
func (r *Relation) NumRows(ctx context.Context) (int, error) { return r.rows, ctx.Err() }

// Labels implements source.Relation from the handshake snapshot — no
// network round trip. Callers must not mutate the returned slice.
func (r *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	i, ok := r.byName[attr]
	if !ok {
		return nil, fmt.Errorf("remote: relation %q has no attribute %q: %w", r.Name(), attr, hyperr.ErrUnknownAttribute)
	}
	return r.labels[i], ctx.Err()
}

// Cardinality implements the optional distinct-count capability from the
// handshake dictionaries.
func (r *Relation) Cardinality(ctx context.Context, attr string) (int, error) {
	labels, err := r.Labels(ctx, attr)
	if err != nil {
		return 0, err
	}
	return len(labels), nil
}

// Version returns the peer snapshot version the relation is pinned to.
func (r *Relation) Version() uint64 { return r.ver }

// URL returns the peer's base URL.
func (r *Relation) URL() string { return r.p.base }

// Stats snapshots the peer's transport counters.
func (r *Relation) Stats() PeerStats {
	n := r.p.rttN.Load()
	var avg time.Duration
	if n > 0 {
		avg = time.Duration(r.p.rttSum.Load() / n)
	}
	return PeerStats{
		URL:          r.p.base,
		Dataset:      r.p.dataset,
		Version:      r.ver,
		Healthy:      r.p.healthy.Load(),
		Requests:     r.p.requests.Load(),
		Retries:      r.p.retries.Load(),
		Errors:       r.p.errs.Load(),
		CountsServed: r.p.served.Load(),
		LastRTT:      time.Duration(r.p.lastRTT.Load()),
		AvgRTT:       avg,
	}
}

// Counts implements source.Relation: one POST to the peer's counts
// endpoint, carrying the pinned snapshot version (the peer refuses with
// version_skew if its dataset moved on) and the relation's restriction.
func (r *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if err := source.CheckAttrs(r, attrs...); err != nil {
		return nil, err
	}
	// A request without IncludeSchema is always a counts request, even with
	// zero attributes (the peer then answers the single total-count group),
	// so an empty attrs set needs no special marker on the wire.
	req := CountsRequest{Attrs: attrs, ExpectVersion: r.ver}
	if r.restrict != nil {
		req.Restrict = r.restrict.SQL()
	}
	if where != nil {
		req.Where = where.SQL()
	}
	resp, err := r.p.counts(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(resp.Groups) != len(resp.Counts) {
		return nil, fmt.Errorf("remote: peer %s: %d groups but %d counts: %w",
			r.p.base, len(resp.Groups), len(resp.Counts), hyperr.ErrPeerUnavailable)
	}
	out := make(map[source.Key]int, len(resp.Counts))
	for i, g := range resp.Groups {
		if len(g) != len(attrs) {
			return nil, fmt.Errorf("remote: peer %s: group %d has %d codes, want %d: %w",
				r.p.base, i, len(g), len(attrs), hyperr.ErrPeerUnavailable)
		}
		for j, c := range g {
			if card := len(r.labels[r.byName[attrs[j]]]); c < 0 || int(c) >= card {
				return nil, fmt.Errorf("remote: peer %s: group %d code %d out of range for %q (card %d): %w",
					r.p.base, i, c, attrs[j], card, hyperr.ErrPeerUnavailable)
			}
		}
		out[dataset.EncodeKey(g...)] += resp.Counts[i]
	}
	return out, nil
}

// Restrict implements source.Relation with a server-side handshake: the
// predicate is rendered to SQL and the peer restricts the dataset itself —
// compacting dictionaries exactly as its local backend does — then returns
// the restricted schema. The returned relation shares this one's peer (and
// its pinned version) and conjoins further restrictions.
func (r *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return r, nil
	}
	pred := where
	if r.restrict != nil {
		pred = dataset.And{r.restrict, where}
	}
	resp, err := r.p.counts(ctx, CountsRequest{
		Restrict:      pred.SQL(),
		ExpectVersion: r.ver,
		IncludeSchema: true,
	})
	if err != nil {
		return nil, err
	}
	return fromSchema(r.p, resp, pred, false)
}

// Close implements source.Closer: the root relation stops the peer's
// health-check loop. Restricted views share the root's peer and close
// nothing. Safe to call more than once.
func (r *Relation) Close() error {
	if r.root {
		r.p.stopOnce.Do(func() { close(r.p.stop) })
	}
	return nil
}

var (
	_ source.Relation = (*Relation)(nil)
	_ source.Closer   = (*Relation)(nil)
)

// ---------------------------------------------------------------------------
// Peer transport

// counts performs one retried counts call against the peer.
func (p *peer) counts(ctx context.Context, req CountsRequest) (*CountsResponse, error) {
	if !p.healthy.Load() {
		// Fail fast while the health loop says the peer is down: a
		// degrading coordinator re-fans-out immediately instead of paying
		// the retry budget on every counts call of a sweep.
		p.errs.Add(1)
		return nil, fmt.Errorf("remote: peer %s is unhealthy: %w", p.base, hyperr.ErrPeerUnavailable)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("remote: encoding counts request: %w", err)
	}
	p.requests.Add(1)
	endpoint := p.base + "/v1/datasets/" + url.PathEscape(p.dataset) + "/counts"

	var lastErr error
	retries := p.opts.maxRetries()
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if err := sleepBackoff(ctx, p.opts.retryBackoff(), attempt-1); err != nil {
				return nil, err
			}
		}
		resp, retryable, err := p.attempt(ctx, endpoint, body)
		if err == nil {
			p.healthy.Store(true)
			return resp, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller's context ended — report that, not a peer fault:
			// cancellation must never be degraded away as a lost shard.
			return nil, ctxErr
		}
		if !retryable {
			p.errs.Add(1)
			return nil, err
		}
		lastErr = err
	}
	p.errs.Add(1)
	if p.opts.healthInterval() > 0 {
		// Latch unhealthy so concurrent calls fail fast; the health loop
		// restores the flag once the peer answers probes again. Without a
		// loop nothing would restore it, so the latch is skipped.
		p.healthy.Store(false)
	}
	return nil, fmt.Errorf("remote: peer %s: %d attempts failed, last: %v: %w",
		p.base, retries+1, lastErr, hyperr.ErrPeerUnavailable)
}

// attempt performs one HTTP round trip. retryable reports whether the
// failure is safe and worthwhile to retry (network errors, timeouts, 5xx,
// undecodable success bodies — never 4xx, whose verdict is final).
func (p *peer) attempt(ctx context.Context, endpoint string, body []byte) (_ *CountsResponse, retryable bool, err error) {
	actx := ctx
	if t := p.opts.requestTimeout(); t > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("remote: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	start := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("remote: %s: %w", endpoint, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("remote: %s: HTTP %d", endpoint, resp.StatusCode)
	case resp.StatusCode >= 300:
		return nil, false, decodeWireError(p, resp)
	}
	var out CountsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&out); err != nil {
		return nil, true, fmt.Errorf("remote: %s: undecodable response: %w", endpoint, err)
	}
	rtt := time.Since(start)
	p.lastRTT.Store(int64(rtt))
	p.rttSum.Add(int64(rtt))
	p.rttN.Add(1)
	p.served.Add(1)
	return &out, false, nil
}

// decodeWireError classifies a non-2xx peer response: version_skew maps to
// hyperr.ErrVersionSkew and 401/403 (by status or error code) to
// hyperr.ErrPeerAuth — both final verdicts, never retried and never
// degraded away — everything else is a plain error carrying the peer's
// message.
func decodeWireError(p *peer, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil {
		switch {
		case env.Error.Code == codeVersionSkew:
			return fmt.Errorf("remote: peer %s: %s: %w", p.base, env.Error.Message, hyperr.ErrVersionSkew)
		case env.Error.Code == codeUnauthorized, env.Error.Code == codeForbidden,
			resp.StatusCode == http.StatusUnauthorized, resp.StatusCode == http.StatusForbidden:
			return fmt.Errorf("remote: peer %s: HTTP %d %s: %s: %w",
				p.base, resp.StatusCode, env.Error.Code, env.Error.Message, hyperr.ErrPeerAuth)
		}
		return fmt.Errorf("remote: peer %s: HTTP %d %s: %s", p.base, resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		return fmt.Errorf("remote: peer %s: HTTP %d: %w", p.base, resp.StatusCode, hyperr.ErrPeerAuth)
	}
	return fmt.Errorf("remote: peer %s: HTTP %d", p.base, resp.StatusCode)
}

// sleepBackoff waits out the exponential backoff for retry n (0-based),
// capped at 5s, with ±50% jitter, honoring cancellation.
func sleepBackoff(ctx context.Context, base time.Duration, n int) error {
	const maxDelay = 5 * time.Second
	// Double per retry instead of shifting blindly: base << n overflows to
	// a negative duration for caller-configured retry budgets past ~36,
	// which would dodge the cap and feed rand.Int64N a non-positive span.
	d := base
	for i := 0; i < n && d < maxDelay; i++ {
		d <<= 1
	}
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// healthLoop probes GET /healthz every interval, updating the peer's
// healthy flag: a down peer makes counts calls fail fast until a probe
// succeeds again.
func (p *peer) healthLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.healthy.Store(p.ping())
		}
	}
}

// ping is one health probe.
func (p *peer) ping() bool {
	timeout := p.opts.requestTimeout()
	if timeout <= 0 || timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		return false
	}
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode < 300
}
