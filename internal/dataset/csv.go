package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"hypdb/internal/hyperr"
)

// ReadCSV loads a table from CSV. The first record is the header; every
// field is treated as a categorical label. All parse failures wrap
// hyperr.ErrMalformedCSV so callers can classify them with errors.Is.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w: %w", err, hyperr.ErrMalformedCSV)
	}
	cols := make([]*Column, len(header))
	for i, h := range header {
		cols[i] = NewColumn(h)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w: %w", err, hyperr.ErrMalformedCSV)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("dataset: CSV row has %d fields, want %d: %w", len(rec), len(cols), hyperr.ErrMalformedCSV)
		}
		for i, v := range rec {
			cols[i].Append(v)
		}
	}
	t, err := New(cols...)
	if err != nil {
		// Duplicate or empty headers surface here; they are input defects,
		// not caller bugs.
		return nil, fmt.Errorf("%w: %w", err, hyperr.ErrMalformedCSV)
	}
	return t, nil
}

// ReadCSVFile loads a table from the CSV file at path.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns()); err != nil {
		return err
	}
	rec := make([]string, len(t.cols))
	for i := 0; i < t.numRows; i++ {
		for j, c := range t.cols {
			rec[j] = c.Value(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the file at path, creating or truncating.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
