// Package mem implements the in-memory storage backend of HypDB: a
// source.Relation over the columnar, dictionary-encoded dataset.Table.
//
// It is the zero-behavior-change backend: counts are tabulated from the
// table's code vectors with the exact semantics the engine used when it was
// bound to *dataset.Table directly, Restrict compacts dictionaries the same
// way Table.Select always did, and Materialize returns the backing table
// itself — so row-level analysis paths (shuffle tests, subsample key
// detection) run at full fidelity.
package mem

import (
	"context"
	"fmt"

	"hypdb/internal/dataset"
	"hypdb/source"
)

// Relation adapts a *dataset.Table to the source.Relation contract.
type Relation struct {
	t       *dataset.Table
	name    string
	backend string
}

// New wraps a table under the default display name "D". The table must not
// be mutated afterwards.
func New(t *dataset.Table) *Relation { return NewNamed(t, "D") }

// NewNamed wraps a table under an explicit display name.
func NewNamed(t *dataset.Table, name string) *Relation {
	return &Relation{t: t, name: name, backend: fmt.Sprintf("mem:%p", t)}
}

// Table returns the backing table. Treat it as read-only.
func (r *Relation) Table() *dataset.Table { return r.t }

// Name implements source.Relation.
func (r *Relation) Name() string { return r.name }

// Backend implements source.Relation. The identity is the backing table's
// address: distinct tables (including restrictions, which copy) never
// collide, while two handles over one table interchangeably share it.
func (r *Relation) Backend() string { return r.backend }

// Attributes implements source.Relation.
func (r *Relation) Attributes() []string { return r.t.Columns() }

// HasAttribute implements source.Relation.
func (r *Relation) HasAttribute(name string) bool { return r.t.HasColumn(name) }

// NumRows implements source.Relation.
func (r *Relation) NumRows(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return r.t.NumRows(), nil
}

// Labels implements source.Relation.
func (r *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, err := r.t.Column(attr)
	if err != nil {
		return nil, err
	}
	return c.Labels(), nil
}

// Counts implements source.Relation.
func (r *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.t.CountsMatching(where, attrs...)
}

// DenseCounts implements source.DenseCounter: the counts are tabulated
// straight into the flat mixed-radix form by the dataset kernel — zero
// per-row allocations, parallel chunked scan on large tables.
func (r *Relation) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cards := make([]int, len(attrs))
	for i, a := range attrs {
		c, err := r.t.Column(a)
		if err != nil {
			return nil, err
		}
		cards[i] = c.Card()
	}
	if _, ok := dataset.DenseSize(cards, dataset.EffectiveBudget(budget, r.t.NumRows())); !ok {
		return nil, nil
	}
	return r.t.DenseCountsMatching(where, attrs...)
}

// Restrict implements source.Relation: it eagerly selects the matching rows
// into a fresh table with compacted dictionaries.
func (r *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	view, err := r.t.Select(where)
	if err != nil {
		return nil, err
	}
	return NewNamed(view, r.name), nil
}

// Materialize implements source.Materializer.
func (r *Relation) Materialize(ctx context.Context) (*dataset.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.t, nil
}

var (
	_ source.Relation     = (*Relation)(nil)
	_ source.Materializer = (*Relation)(nil)
	_ source.DenseCounter = (*Relation)(nil)
)
