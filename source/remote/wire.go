package remote

// Wire types of the counts-serving endpoint
// (POST /v1/datasets/{name}/counts). They live here — not in the api
// package — because the api package imports the hypdb facade, which in turn
// links this package for OpenRemote; keeping the DTOs with the client
// avoids the cycle, and internal/server imports them for the handler so
// both sides share one definition.

// CountsRequest is the POST /v1/datasets/{name}/counts body: a
// dictionary-coded group-by counts request for one attribute set under an
// optional predicate, evaluated against an optional server-side restricted
// view of the dataset.
type CountsRequest struct {
	// Attrs is the group-by attribute set, in call order; empty requests
	// no counts (a schema-only handshake).
	Attrs []string `json:"attrs,omitempty"`
	// Where is a SQL-style predicate filtering the counted rows; empty
	// counts every row of the (possibly restricted) view.
	Where string `json:"where,omitempty"`
	// Restrict, when non-empty, evaluates the request against
	// σ_restrict(dataset): the peer restricts the relation server-side —
	// with the backend's own dictionary compaction — before counting, so a
	// coordinator's restricted child sees exactly the coding a local
	// backend would produce.
	Restrict string `json:"restrict,omitempty"`
	// ExpectVersion, when non-zero, makes the peer answer 409 version_skew
	// unless its current snapshot version matches — the guard that keeps a
	// pinned analysis from silently mixing epochs across nodes.
	ExpectVersion uint64 `json:"expect_version,omitempty"`
	// IncludeSchema asks for the (restricted) view's full schema and
	// dictionaries in the response — the registration handshake that lets
	// the coordinator's global dictionary admit the peer's labels.
	IncludeSchema bool `json:"include_schema,omitempty"`
}

// Schema is the dictionary/schema handshake payload: everything a
// coordinator needs to admit the peer as a shard.
type Schema struct {
	// Attrs is the schema, in order.
	Attrs []string `json:"attrs"`
	// Labels holds, per attribute, the code→label dictionary of the served
	// view.
	Labels [][]string `json:"labels"`
	// Rows is the served view's row count.
	Rows int `json:"rows"`
	// Version is the peer's snapshot version (zero for immutable
	// backends).
	Version uint64 `json:"version"`
	// Backend is the peer-side backend identity, for diagnostics.
	Backend string `json:"backend,omitempty"`
}

// CountsResponse is the counts endpoint's reply.
type CountsResponse struct {
	// Version is the snapshot version the answer was computed at.
	Version uint64 `json:"version"`
	// Groups holds one row of dictionary codes per distinct group, in the
	// request's attribute order; Counts aligns with it.
	Groups [][]int32 `json:"groups,omitempty"`
	Counts []int     `json:"counts,omitempty"`
	// Schema is present when the request set IncludeSchema.
	Schema *Schema `json:"schema,omitempty"`
}

// wireError mirrors the service's error envelope closely enough to
// classify failures without importing the api package.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error *wireError `json:"error"`
}

// Service error codes this package classifies. The literals are duplicated
// from the api package (CodeVersionSkew, CodeUnauthorized, CodeForbidden) —
// the two packages cannot share a constant without an import cycle, and the
// wire contract is the string itself.
const (
	// codeVersionSkew is the code for a snapshot-version mismatch.
	codeVersionSkew = "version_skew"
	// codeUnauthorized / codeForbidden are the peer's auth rejections:
	// missing/unknown bearer token and insufficient token scope.
	codeUnauthorized = "unauthorized"
	codeForbidden    = "forbidden"
)
