package independence

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/mem"
)

// TestCountsOnlyRelationPaths pins the storage contract: every counts-based
// tester works on a counts-only relation, and the row-level shuffle test
// fails with ErrNeedsMaterialization instead of a wrong answer.
func TestCountsOnlyRelationPaths(t *testing.T) {
	b := dataset.NewBuilder("X", "Y", "Z")
	for i := 0; i < 400; i++ {
		x := i % 2
		y := (i / 2) % 2
		z := (i / 4) % 3
		b.MustAdd(strconv.Itoa(x), strconv.Itoa(y), strconv.Itoa(z))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	rel := source.CountsOnly(mem.New(tab))
	ctx := context.Background()

	countsBased := []struct {
		name string
		ts   Tester
	}{
		{"chi2", ChiSquare{}},
		{"mit", MIT{Permutations: 50, Seed: 1}},
		{"mit-sampling", MIT{Permutations: 50, Seed: 1, SampleGroups: true}},
		{"hymit", HyMIT{Permutations: 50, Seed: 1}},
	}
	for _, tc := range countsBased {
		if _, err := tc.ts.Test(ctx, rel, "X", "Y", []string{"Z"}); err != nil {
			t.Errorf("%s on counts-only relation: %v", tc.name, err)
		}
	}

	if _, err := (Shuffle{Permutations: 10, Seed: 1}).Test(ctx, rel, "X", "Y", []string{"Z"}); !errors.Is(err, hyperr.ErrNeedsMaterialization) {
		t.Errorf("shuffle on counts-only relation: err = %v, want ErrNeedsMaterialization", err)
	}
}

// TestMITIdenticalAcrossCountsOnly verifies the counts-only wrapper changes
// nothing about the statistic: the MIT p-value is a pure function of the
// counts.
func TestMITIdenticalAcrossCountsOnly(t *testing.T) {
	b := dataset.NewBuilder("X", "Y", "Z")
	for i := 0; i < 300; i++ {
		b.MustAdd(strconv.Itoa(i%3), strconv.Itoa((i*7)%2), strconv.Itoa(i%4))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	base := mem.New(tab)
	ts := MIT{Permutations: 200, Seed: 9}
	r1, err := ts.Test(context.Background(), base, "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ts.Test(context.Background(), source.CountsOnly(base), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MI != r2.MI || r1.PValue != r2.PValue {
		t.Errorf("counts-only wrapper changed the result: %+v vs %+v", r1, r2)
	}
}
