package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hypdb/internal/independence"
	"hypdb/internal/query"
	"hypdb/source"
)

// Options extends Config with report-shaping knobs.
type Options struct {
	Config
	// FineAttrs is how many top-responsibility attributes receive
	// fine-grained explanations; zero means 2 (the paper's figures show
	// the top two).
	FineAttrs int
	// FineTopK is the number of triples per fine-grained explanation; zero
	// means 2 ("top-two" in Fig 1d).
	FineTopK int
	// Baseline fixes the treatment value whose mediator distribution the
	// direct-effect rewriting holds constant; empty selects the smallest.
	Baseline string
	// SkipDirect disables mediator discovery and the direct-effect
	// rewriting.
	SkipDirect bool
	// Covariates overrides automatic covariate discovery (used by the
	// Fig 5a experiment, where the covariate set is fixed).
	Covariates []string
	// Mediators overrides automatic mediator discovery.
	Mediators []string
	// Discover, when non-nil, replaces DiscoverCovariates for every
	// covariate- and mediator-discovery call of the pipeline. Session
	// handles install a memoizing wrapper here so repeated queries share
	// CD results (the multi-query sharing of Sec 6).
	Discover func(ctx context.Context, view source.Relation, target string, candidates, outcomes []string, cfg Config) (*CDResult, error)
}

// discover resolves the CD entry point, defaulting to DiscoverCovariates.
func (o Options) discover(ctx context.Context, view source.Relation, target string, candidates, outcomes []string, cfg Config) (*CDResult, error) {
	if o.Discover != nil {
		return o.Discover(ctx, view, target, candidates, outcomes, cfg)
	}
	return DiscoverCovariates(ctx, view, target, candidates, outcomes, cfg)
}

func (o Options) fineAttrs() int {
	if o.FineAttrs <= 0 {
		return 2
	}
	return o.FineAttrs
}

func (o Options) fineTopK() int {
	if o.FineTopK <= 0 {
		return 2
	}
	return o.FineTopK
}

// ComparisonReport pairs a query comparison with per-outcome significance.
type ComparisonReport struct {
	query.Comparison
	// PValues[i] is the p-value of the hypothesis "the i-th outcome's
	// difference is zero" (I(T;Y|…) = 0, tested with the configured
	// method); PValueCIs carries the Monte-Carlo half-width when
	// applicable, and Methods names the procedure that produced each
	// p-value (e.g. "hymit(chi2)" — deterministic — vs "hymit(mit)" —
	// Monte-Carlo).
	PValues   []float64
	PValueCIs []float64
	Methods   []string
}

// Timing records the per-phase wall-clock cost (the columns of Table 1).
type Timing struct {
	Detect  time.Duration
	Explain time.Duration
	Resolve time.Duration
}

// Report is the complete output of Analyze: everything HypDB shows the
// analyst in Figs 1, 3 and 4.
type Report struct {
	Query        query.Query
	OriginalSQL  string
	RewrittenSQL string

	// Answer and OriginalComparisons reproduce the biased query's output.
	Answer              *query.Answer
	OriginalComparisons []ComparisonReport

	// CD is the covariate discovery result for the treatment; MediatorCD
	// maps each outcome to its parent discovery.
	CD         *CDResult
	MediatorCD map[string]*CDResult

	// Covariates and Mediators are the final adjustment sets.
	Covariates []string
	Mediators  []string

	// DroppedAttrs lists attributes excluded for logical dependencies.
	DroppedAttrs []Dropped

	// BiasTotal and BiasDirect are the per-context balance verdicts w.r.t.
	// Z and Z ∪ M respectively.
	BiasTotal  []BiasResult
	BiasDirect []BiasResult

	// Coarse and Fine are the explanations (Sec 3.2). Fine maps a
	// top-responsibility attribute to its top-k triples.
	Coarse []Responsibility
	Fine   map[string][]FineExplanation

	// RewrittenTotal / RewrittenDirect are the bias-removing answers with
	// their significance.
	RewrittenTotal    *query.Rewritten
	TotalComparisons  []ComparisonReport
	RewrittenDirect   *query.Rewritten
	DirectComparisons []ComparisonReport

	Timing Timing

	// Degraded is true when the analysis read counts with at least one
	// remote shard missing (degraded reads over a remote-sharded
	// relation): the statistics may rest on partial data and the report
	// must be treated as stale. Set by the facade, which watches the
	// storage layer's degraded-serve counter across the run.
	Degraded bool
}

// Analyze runs the full HypDB pipeline on a query: detect bias, explain it,
// and resolve it by rewriting (Sec 3). The three phases are timed
// separately, reproducing the Table 1 measurements.
func Analyze(ctx context.Context, rel source.Relation, q query.Query, opts Options) (*Report, error) {
	view, err := q.View(ctx, rel)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Query:       q,
		OriginalSQL: q.SQL(),
		MediatorCD:  make(map[string]*CDResult),
		Fine:        make(map[string][]FineExplanation),
	}

	// Original (biased) answers and their significance.
	rep.Answer, err = query.Run(ctx, rel, q)
	if err != nil {
		return nil, err
	}
	rep.OriginalComparisons, err = opts.compareWithSignificance(ctx, view, q, rep.Answer.Compare, nil)
	if err != nil {
		return nil, err
	}

	// ---- Detection -------------------------------------------------------
	detectStart := time.Now()
	candidates := candidateAttrs(rel, q)
	kept, dropped, err := PrepareCandidates(ctx, view, q.Treatment, candidates, opts.Prepare)
	if err != nil {
		return nil, err
	}
	rep.DroppedAttrs = dropped

	if len(opts.Covariates) > 0 {
		rep.Covariates = append([]string(nil), opts.Covariates...)
	} else {
		// The outcomes participate in boundary discovery (Y is a child of T
		// and belongs to MB(T)); the CD algorithm and its fallback keep
		// them out of the parent set.
		cdCands := append(append([]string(nil), kept...), q.Outcomes...)
		rep.CD, err = opts.discover(ctx, view, q.Treatment, cdCands, q.Outcomes, opts.Config)
		if err != nil {
			return nil, err
		}
		for _, p := range rep.CD.Parents {
			if !containsStr(q.Outcomes, p) {
				rep.Covariates = append(rep.Covariates, p)
			}
		}
	}

	if !opts.SkipDirect {
		if len(opts.Mediators) > 0 {
			rep.Mediators = append([]string(nil), opts.Mediators...)
		} else {
			mediatorSet := map[string]bool{}
			for _, y := range q.Outcomes {
				cands := append(append([]string(nil), kept...), q.Treatment)
				cd, err := opts.discover(ctx, view, y, cands, nil, opts.Config)
				if err != nil {
					return nil, err
				}
				rep.MediatorCD[y] = cd
				for _, p := range cd.Parents {
					if p != q.Treatment && !containsStr(rep.Covariates, p) && !containsStr(q.Outcomes, p) {
						mediatorSet[p] = true
					}
				}
			}
			rep.Mediators = sortedKeys(mediatorSet)
		}
	}

	if len(rep.Covariates) > 0 {
		rep.BiasTotal, err = DetectBias(ctx, view, q.Treatment, q.Groupings, rep.Covariates, opts.Config)
		if err != nil {
			return nil, err
		}
	}
	if vd := unionAttrs(rep.Covariates, rep.Mediators, nil); len(vd) > 0 && len(rep.Mediators) > 0 {
		rep.BiasDirect, err = DetectBias(ctx, view, q.Treatment, q.Groupings, vd, opts.Config)
		if err != nil {
			return nil, err
		}
	}
	rep.Timing.Detect = time.Since(detectStart)

	// ---- Explanation -----------------------------------------------------
	explainStart := time.Now()
	variables := unionAttrs(rep.Covariates, rep.Mediators, nil)
	if len(variables) > 0 {
		rep.Coarse, err = ExplainCoarse(ctx, view, q.Treatment, variables, opts.Config)
		if err != nil {
			return nil, err
		}
		top := opts.fineAttrs()
		if top > len(rep.Coarse) {
			top = len(rep.Coarse)
		}
		for i := 0; i < top; i++ {
			attr := rep.Coarse[i].Attr
			fine, err := ExplainFine(ctx, view, q.Treatment, q.Outcomes[0], attr, opts.fineTopK(), opts.Config)
			if err != nil {
				return nil, err
			}
			rep.Fine[attr] = fine
		}
	}
	rep.Timing.Explain = time.Since(explainStart)

	// ---- Resolution ------------------------------------------------------
	resolveStart := time.Now()
	if len(rep.Covariates) > 0 {
		rep.RewrittenSQL = q.RewrittenSQL(rep.Covariates)
		rep.RewrittenTotal, err = query.RewriteTotal(ctx, rel, q, rep.Covariates)
		if err != nil {
			return nil, fmt.Errorf("core: total-effect rewriting: %w", err)
		}
		rep.TotalComparisons, err = opts.compareWithSignificance(ctx, view, q, rep.RewrittenTotal.Compare, rep.Covariates)
		if err != nil {
			return nil, err
		}
	}
	if len(rep.Mediators) > 0 {
		rep.RewrittenDirect, err = query.RewriteDirect(ctx, rel, q, rep.Covariates, rep.Mediators, opts.Baseline)
		if err != nil {
			return nil, fmt.Errorf("core: direct-effect rewriting: %w", err)
		}
		rep.DirectComparisons, err = opts.compareWithSignificance(
			ctx, view, q, rep.RewrittenDirect.Compare, unionAttrs(rep.Covariates, rep.Mediators, nil))
		if err != nil {
			return nil, err
		}
	}
	rep.Timing.Resolve = time.Since(resolveStart)
	return rep, nil
}

// compareWithSignificance pairs comparisons from compare() with per-outcome
// p-values: the difference for outcome Y in context Γi is zero iff
// I(T;Y|cond,Γi) = 0 (Sec 7.1), tested with the configured method.
func (o Options) compareWithSignificance(ctx context.Context, view source.Relation, q query.Query, compare func() ([]query.Comparison, error), cond []string) ([]ComparisonReport, error) {
	comps, err := compare()
	if err != nil {
		// Non-binary treatments have answers but no single comparison; the
		// report simply omits the diff rows.
		return nil, nil
	}
	contexts, err := splitContexts(ctx, view, q.Groupings)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]source.Relation, len(contexts))
	for _, c := range contexts {
		byKey[strings.Join(c.values, "\x00")] = c.view
	}
	out := make([]ComparisonReport, 0, len(comps))
	for _, comp := range comps {
		ctxView, ok := byKey[strings.Join(comp.Context, "\x00")]
		if !ok {
			continue
		}
		cr := ComparisonReport{Comparison: comp}
		for _, y := range q.Outcomes {
			res, err := o.significance(ctx, ctxView, q.Treatment, y, cond)
			if err != nil {
				return nil, err
			}
			cr.PValues = append(cr.PValues, res.PValue)
			cr.PValueCIs = append(cr.PValueCIs, res.PValueCI)
			cr.Methods = append(cr.Methods, res.Method)
		}
		out = append(out, cr)
	}
	return out, nil
}

// significance tests I(T;Y|cond) on the context view.
func (o Options) significance(ctx context.Context, ctxView source.Relation, treatment, outcome string, cond []string) (independence.Result, error) {
	hint := unionAttrs([]string{treatment, outcome}, cond, nil)
	tester, err := o.tester(ctx, ctxView, hint)
	if err != nil {
		return independence.Result{}, err
	}
	return tester.Test(ctx, ctxView, treatment, outcome, cond)
}

// candidateAttrs returns the default covariate candidates: every attribute
// except the treatment, outcomes and groupings.
func candidateAttrs(rel source.Relation, q query.Query) []string {
	skip := map[string]bool{q.Treatment: true}
	for _, y := range q.Outcomes {
		skip[y] = true
	}
	for _, x := range q.Groupings {
		skip[x] = true
	}
	var out []string
	for _, a := range rel.Attributes() {
		if !skip[a] {
			out = append(out, a)
		}
	}
	return out
}
