// Package promexport renders the service's metrics snapshot (api.Metrics,
// the GET /v1/metrics payload) in the Prometheus text exposition format for
// GET /metrics. Both endpoints derive from the same snapshot struct — the
// JSON encoder serializes it, Render flattens it into families — so the two
// views cannot drift: a counter exists in both or in neither, which the
// parity test in this package pins by reflecting over api.Metrics.
//
// Family naming: service-wide counters are unlabeled (hypdb_requests_total),
// per-dataset counters carry a dataset label (hypdb_dataset_analyses_total),
// per-peer transport counters carry dataset and peer labels
// (hypdb_peer_requests_total), admission sheds fold into one family with a
// reason label, and per-client rate-limit sheds carry a token label. Counter
// families end in _total and are monotonic within one server process;
// catalog replay at boot re-applies journaled appends directly against the
// storage backend without touching the request counters, so a restarted
// server starts its counters at zero instead of replaying history into them.
package promexport

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hypdb/api"
)

// ContentType is the /metrics response content type (the Prometheus text
// exposition format, version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter and gauge are the two metric types this registry renders.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
)

// Label is one name="value" pair of a series.
type Label struct {
	Name, Value string
}

// Series is one sample line of a family: its ordered label set and value.
type Series struct {
	Labels []Label
	Value  float64
}

// Family is one metric family: every series sharing a name, HELP and TYPE.
type Family struct {
	Name, Type, Help string
	Series           []Series
}

// famDef statically declares one family; the declaration order is the
// rendering order.
type famDef struct {
	name, typ, help string
}

// famDefs is the full registry, in rendering order. Every family derives
// from an api.Metrics field — FieldFamilies maps the JSON field paths here.
var famDefs = []famDef{
	{"hypdb_uptime_seconds", TypeGauge, "Seconds since the server process started."},
	{"hypdb_datasets", TypeGauge, "Registered datasets."},
	{"hypdb_requests_total", TypeCounter, "HTTP requests received."},
	{"hypdb_requests_in_flight", TypeGauge, "HTTP requests currently being served."},
	{"hypdb_analyses_total", TypeCounter, "Analyze requests served, batch items included."},
	{"hypdb_audits_total", TypeCounter, "Completed audit sweeps."},
	{"hypdb_audits_in_flight", TypeGauge, "Audit sweeps currently running."},
	{"hypdb_appends_total", TypeCounter, "Completed append requests."},
	{"hypdb_rows_appended_total", TypeCounter, "Rows admitted by append requests."},
	{"hypdb_counts_served_total", TypeCounter, "Group-by counts requests answered on the remote-shard transport."},
	{"hypdb_rate_limited_total", TypeCounter, "Requests shed with 429 by the per-client rate limiter."},
	{"hypdb_client_rate_limited_total", TypeCounter, "Requests shed with 429 by the per-client rate limiter, by client identity."},
	{"hypdb_admission_admitted_total", TypeCounter, "Requests granted execution slots by the fair queues."},
	{"hypdb_admission_queued", TypeGauge, "Requests waiting in the fair queues right now."},
	{"hypdb_admission_sheds_total", TypeCounter, "Typed admission rejections, by reason."},
	{"hypdb_admission_cancelled_total", TypeCounter, "Queued requests whose client went away while waiting."},
	{"hypdb_cd_computes_total", TypeCounter, "Covariate discoveries actually executed."},
	{"hypdb_cd_hits_total", TypeCounter, "Covariate discoveries answered from the memoized cache."},
	{"hypdb_planner_plans_total", TypeCounter, "Lattice batch plans executed."},
	{"hypdb_planner_cuboids_total", TypeCounter, "Cuboids materialized by batch plans."},
	{"hypdb_planner_cells_materialized_total", TypeCounter, "Estimated cells materialized by batch plans."},
	{"hypdb_planner_demands_planned_total", TypeCounter, "Count demands covered by batch plans."},
	{"hypdb_planner_demands_projected_total", TypeCounter, "Count demands served by marginalizing a wider cuboid."},
	{"hypdb_planner_round_trips_saved_total", TypeCounter, "Backend round trips saved versus per-request priming."},
	{"hypdb_catalog_journal_records_total", TypeCounter, "Catalog journal records fsync'd by this process."},
	{"hypdb_catalog_recovered_datasets", TypeGauge, "Datasets re-registered by the boot-time journal replay."},
	{"hypdb_catalog_replayed_appends", TypeGauge, "Append records re-applied by the boot-time journal replay."},
	{"hypdb_dataset_rows", TypeGauge, "Current rows of the dataset."},
	{"hypdb_dataset_analyses_total", TypeCounter, "Analyze requests served over the dataset."},
	{"hypdb_dataset_audits_total", TypeCounter, "Completed audit sweeps over the dataset."},
	{"hypdb_dataset_audits_running", TypeGauge, "Audit sweeps over the dataset running right now."},
	{"hypdb_dataset_audit_candidates_done_total", TypeCounter, "Audit candidates tested across the dataset's sweeps."},
	{"hypdb_dataset_audit_candidates_planned", TypeGauge, "Audit candidates planned across the dataset's sweeps; a failed sweep's unfinished remainder is deducted."},
	{"hypdb_dataset_cd_computes_total", TypeCounter, "Covariate discoveries executed for the dataset."},
	{"hypdb_dataset_cd_hits_total", TypeCounter, "Covariate discoveries served from the dataset's cache."},
	{"hypdb_dataset_planner_plans_total", TypeCounter, "Lattice batch plans executed for the dataset."},
	{"hypdb_dataset_planner_cuboids_total", TypeCounter, "Cuboids materialized for the dataset."},
	{"hypdb_dataset_planner_cells_materialized_total", TypeCounter, "Estimated cells materialized for the dataset."},
	{"hypdb_dataset_planner_demands_planned_total", TypeCounter, "Count demands covered by the dataset's batch plans."},
	{"hypdb_dataset_planner_demands_projected_total", TypeCounter, "Count demands served by marginalization for the dataset."},
	{"hypdb_dataset_planner_round_trips_saved_total", TypeCounter, "Backend round trips saved for the dataset."},
	{"hypdb_dataset_appends_total", TypeCounter, "Completed append requests for the dataset."},
	{"hypdb_dataset_rows_appended_total", TypeCounter, "Rows admitted by the dataset's appends."},
	{"hypdb_dataset_counts_served_total", TypeCounter, "Counts requests the dataset answered on the remote-shard transport."},
	{"hypdb_dataset_degraded_serves_total", TypeCounter, "Reads served degraded: surviving shards answered after a peer was skipped."},
	{"hypdb_dataset_admission_admitted_total", TypeCounter, "Requests granted execution slots on the dataset's fair queue."},
	{"hypdb_dataset_admission_queued", TypeGauge, "Requests waiting in the dataset's fair queue right now."},
	{"hypdb_dataset_admission_sheds_total", TypeCounter, "Typed admission rejections on the dataset's fair queue, by reason."},
	{"hypdb_dataset_admission_cancelled_total", TypeCounter, "Queued requests on the dataset whose client went away."},
	{"hypdb_peer_healthy", TypeGauge, "Health-check verdict for the remote peer: 1 healthy, 0 down."},
	{"hypdb_peer_pinned_version", TypeGauge, "Snapshot version pinned at the peer's registration handshake."},
	{"hypdb_peer_requests_total", TypeCounter, "Counts calls issued to the remote peer."},
	{"hypdb_peer_retries_total", TypeCounter, "Extra attempts after failed calls to the remote peer."},
	{"hypdb_peer_errors_total", TypeCounter, "Calls to the remote peer that failed past the retry budget."},
	{"hypdb_peer_counts_served_total", TypeCounter, "Calls to the remote peer that returned counts."},
	{"hypdb_peer_last_rtt_seconds", TypeGauge, "Round-trip time of the last successful call to the peer."},
	{"hypdb_peer_avg_rtt_seconds", TypeGauge, "Mean round-trip time of successful calls to the peer."},
}

// fieldFamilies maps every numeric api.Metrics field — by its JSON path,
// struct nesting joined with dots — to the family rendering it. The parity
// test walks api.Metrics by reflection and fails naming any field missing
// here (or any family here that Collect never emits), so a counter added to
// one view cannot silently skip the other.
var fieldFamilies = map[string]string{
	"uptime_seconds":                         "hypdb_uptime_seconds",
	"datasets":                               "hypdb_datasets",
	"requests_total":                         "hypdb_requests_total",
	"requests_in_flight":                     "hypdb_requests_in_flight",
	"analyses_total":                         "hypdb_analyses_total",
	"audits_total":                           "hypdb_audits_total",
	"audits_in_flight":                       "hypdb_audits_in_flight",
	"appends_total":                          "hypdb_appends_total",
	"rows_appended":                          "hypdb_rows_appended_total",
	"counts_served":                          "hypdb_counts_served_total",
	"rate_limited":                           "hypdb_rate_limited_total",
	"rate_limited_by_client":                 "hypdb_client_rate_limited_total",
	"admission.admitted":                     "hypdb_admission_admitted_total",
	"admission.queued":                       "hypdb_admission_queued",
	"admission.shed_queue_full":              "hypdb_admission_sheds_total",
	"admission.shed_deadline":                "hypdb_admission_sheds_total",
	"admission.shed_draining":                "hypdb_admission_sheds_total",
	"admission.cancelled":                    "hypdb_admission_cancelled_total",
	"cache.cd_computes":                      "hypdb_cd_computes_total",
	"cache.cd_hits":                          "hypdb_cd_hits_total",
	"planner.plans":                          "hypdb_planner_plans_total",
	"planner.cuboids":                        "hypdb_planner_cuboids_total",
	"planner.cells_materialized":             "hypdb_planner_cells_materialized_total",
	"planner.demands_planned":                "hypdb_planner_demands_planned_total",
	"planner.demands_projected":              "hypdb_planner_demands_projected_total",
	"planner.round_trips_saved":              "hypdb_planner_round_trips_saved_total",
	"catalog.journal_records":                "hypdb_catalog_journal_records_total",
	"catalog.recovered_datasets":             "hypdb_catalog_recovered_datasets",
	"catalog.replayed_appends":               "hypdb_catalog_replayed_appends",
	"per_dataset.rows":                       "hypdb_dataset_rows",
	"per_dataset.analyses":                   "hypdb_dataset_analyses_total",
	"per_dataset.audit.audits":               "hypdb_dataset_audits_total",
	"per_dataset.audit.running":              "hypdb_dataset_audits_running",
	"per_dataset.audit.candidates_done":      "hypdb_dataset_audit_candidates_done_total",
	"per_dataset.audit.candidates_total":     "hypdb_dataset_audit_candidates_planned",
	"per_dataset.cache.cd_computes":          "hypdb_dataset_cd_computes_total",
	"per_dataset.cache.cd_hits":              "hypdb_dataset_cd_hits_total",
	"per_dataset.planner.plans":              "hypdb_dataset_planner_plans_total",
	"per_dataset.planner.cuboids":            "hypdb_dataset_planner_cuboids_total",
	"per_dataset.planner.cells_materialized": "hypdb_dataset_planner_cells_materialized_total",
	"per_dataset.planner.demands_planned":    "hypdb_dataset_planner_demands_planned_total",
	"per_dataset.planner.demands_projected":  "hypdb_dataset_planner_demands_projected_total",
	"per_dataset.planner.round_trips_saved":  "hypdb_dataset_planner_round_trips_saved_total",
	"per_dataset.appends":                    "hypdb_dataset_appends_total",
	"per_dataset.rows_appended":              "hypdb_dataset_rows_appended_total",
	"per_dataset.counts_served":              "hypdb_dataset_counts_served_total",
	"per_dataset.degraded_serves":            "hypdb_dataset_degraded_serves_total",
	"per_dataset.admission.admitted":         "hypdb_dataset_admission_admitted_total",
	"per_dataset.admission.queued":           "hypdb_dataset_admission_queued",
	"per_dataset.admission.shed_queue_full":  "hypdb_dataset_admission_sheds_total",
	"per_dataset.admission.shed_deadline":    "hypdb_dataset_admission_sheds_total",
	"per_dataset.admission.shed_draining":    "hypdb_dataset_admission_sheds_total",
	"per_dataset.admission.cancelled":        "hypdb_dataset_admission_cancelled_total",
	"per_dataset.remote.version":             "hypdb_peer_pinned_version",
	"per_dataset.remote.healthy":             "hypdb_peer_healthy",
	"per_dataset.remote.requests":            "hypdb_peer_requests_total",
	"per_dataset.remote.retries":             "hypdb_peer_retries_total",
	"per_dataset.remote.errors":              "hypdb_peer_errors_total",
	"per_dataset.remote.counts_served":       "hypdb_peer_counts_served_total",
	"per_dataset.remote.last_rtt_ms":         "hypdb_peer_last_rtt_seconds",
	"per_dataset.remote.avg_rtt_ms":          "hypdb_peer_avg_rtt_seconds",
}

// FieldFamilies returns a copy of the api.Metrics JSON-field-path →
// family-name mapping, for the parity test's coverage check.
func FieldFamilies() map[string]string {
	out := make(map[string]string, len(fieldFamilies))
	for k, v := range fieldFamilies {
		out[k] = v
	}
	return out
}

// builder accumulates series under the static family registry.
type builder struct {
	byName map[string]*Family
	// seen indexes series by family + label set so a pathological
	// duplicate (the same peer URL mounted twice, say) merges instead of
	// emitting duplicate series: counters add, gauges keep the last value.
	seen map[string]int
}

func newBuilder() *builder {
	return &builder{byName: make(map[string]*Family, len(famDefs)), seen: make(map[string]int)}
}

// add appends one series; labels alternate name, value.
func (b *builder) add(fam string, value float64, labels ...string) {
	f := b.byName[fam]
	if f == nil {
		def, ok := lookupDef(fam)
		if !ok {
			panic("promexport: series for undeclared family " + fam)
		}
		f = &Family{Name: def.name, Type: def.typ, Help: def.help}
		b.byName[fam] = f
	}
	ls := make([]Label, 0, len(labels)/2)
	key := fam
	for i := 0; i+1 < len(labels); i += 2 {
		ls = append(ls, Label{Name: labels[i], Value: labels[i+1]})
		key += "\x00" + labels[i] + "\x00" + labels[i+1]
	}
	if i, ok := b.seen[key]; ok {
		if f.Type == TypeCounter {
			f.Series[i].Value += value
		} else {
			f.Series[i].Value = value
		}
		return
	}
	b.seen[key] = len(f.Series)
	f.Series = append(f.Series, Series{Labels: ls, Value: value})
}

func lookupDef(name string) (famDef, bool) {
	for _, d := range famDefs {
		if d.name == name {
			return d, true
		}
	}
	return famDef{}, false
}

// families returns the populated families in registry order, each family's
// series sorted by label values.
func (b *builder) families() []Family {
	out := make([]Family, 0, len(b.byName))
	for _, def := range famDefs {
		f, ok := b.byName[def.name]
		if !ok {
			continue
		}
		sort.SliceStable(f.Series, func(i, j int) bool {
			return labelKey(f.Series[i].Labels) < labelKey(f.Series[j].Labels)
		})
		out = append(out, *f)
	}
	return out
}

func labelKey(ls []Label) string {
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Value)
		sb.WriteByte(0)
	}
	return sb.String()
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Collect flattens a metrics snapshot into its Prometheus families, in
// rendering order. Families with no series (per-dataset families on an
// empty registry, say) are omitted.
func Collect(m api.Metrics) []Family {
	b := newBuilder()
	b.add("hypdb_uptime_seconds", m.UptimeSeconds)
	b.add("hypdb_datasets", float64(m.Datasets))
	b.add("hypdb_requests_total", float64(m.RequestsTotal))
	b.add("hypdb_requests_in_flight", float64(m.RequestsInFlight))
	b.add("hypdb_analyses_total", float64(m.AnalysesTotal))
	b.add("hypdb_audits_total", float64(m.AuditsTotal))
	b.add("hypdb_audits_in_flight", float64(m.AuditsInFlight))
	b.add("hypdb_appends_total", float64(m.AppendsTotal))
	b.add("hypdb_rows_appended_total", float64(m.RowsAppended))
	b.add("hypdb_counts_served_total", float64(m.CountsServed))
	b.add("hypdb_rate_limited_total", float64(m.RateLimited))
	for _, token := range sortedKeys(m.RateLimitedByClient) {
		b.add("hypdb_client_rate_limited_total", float64(m.RateLimitedByClient[token]), "token", token)
	}
	b.add("hypdb_admission_admitted_total", float64(m.Admission.Admitted))
	b.add("hypdb_admission_queued", float64(m.Admission.Queued))
	b.add("hypdb_admission_sheds_total", float64(m.Admission.ShedQueueFull), "reason", "queue_full")
	b.add("hypdb_admission_sheds_total", float64(m.Admission.ShedDeadline), "reason", "deadline")
	b.add("hypdb_admission_sheds_total", float64(m.Admission.ShedDraining), "reason", "draining")
	b.add("hypdb_admission_cancelled_total", float64(m.Admission.Cancelled))
	b.add("hypdb_cd_computes_total", float64(m.Cache.CDComputes))
	b.add("hypdb_cd_hits_total", float64(m.Cache.CDHits))
	b.add("hypdb_planner_plans_total", float64(m.Planner.Plans))
	b.add("hypdb_planner_cuboids_total", float64(m.Planner.Cuboids))
	b.add("hypdb_planner_cells_materialized_total", float64(m.Planner.CellsMaterialized))
	b.add("hypdb_planner_demands_planned_total", float64(m.Planner.DemandsPlanned))
	b.add("hypdb_planner_demands_projected_total", float64(m.Planner.DemandsProjected))
	b.add("hypdb_planner_round_trips_saved_total", float64(m.Planner.RoundTripsSaved))
	b.add("hypdb_catalog_journal_records_total", float64(m.Catalog.JournalRecords))
	b.add("hypdb_catalog_recovered_datasets", float64(m.Catalog.RecoveredDatasets))
	b.add("hypdb_catalog_replayed_appends", float64(m.Catalog.ReplayedAppends))
	for _, d := range m.PerDataset {
		ds := []string{"dataset", d.Name}
		b.add("hypdb_dataset_rows", float64(d.Rows), ds...)
		b.add("hypdb_dataset_analyses_total", float64(d.Analyses), ds...)
		b.add("hypdb_dataset_audits_total", float64(d.Audit.Audits), ds...)
		b.add("hypdb_dataset_audits_running", float64(d.Audit.Running), ds...)
		b.add("hypdb_dataset_audit_candidates_done_total", float64(d.Audit.CandidatesDone), ds...)
		b.add("hypdb_dataset_audit_candidates_planned", float64(d.Audit.CandidatesTotal), ds...)
		b.add("hypdb_dataset_cd_computes_total", float64(d.Cache.CDComputes), ds...)
		b.add("hypdb_dataset_cd_hits_total", float64(d.Cache.CDHits), ds...)
		b.add("hypdb_dataset_planner_plans_total", float64(d.Planner.Plans), ds...)
		b.add("hypdb_dataset_planner_cuboids_total", float64(d.Planner.Cuboids), ds...)
		b.add("hypdb_dataset_planner_cells_materialized_total", float64(d.Planner.CellsMaterialized), ds...)
		b.add("hypdb_dataset_planner_demands_planned_total", float64(d.Planner.DemandsPlanned), ds...)
		b.add("hypdb_dataset_planner_demands_projected_total", float64(d.Planner.DemandsProjected), ds...)
		b.add("hypdb_dataset_planner_round_trips_saved_total", float64(d.Planner.RoundTripsSaved), ds...)
		b.add("hypdb_dataset_appends_total", float64(d.Appends), ds...)
		b.add("hypdb_dataset_rows_appended_total", float64(d.RowsAppended), ds...)
		b.add("hypdb_dataset_counts_served_total", float64(d.CountsServed), ds...)
		b.add("hypdb_dataset_degraded_serves_total", float64(d.DegradedServes), ds...)
		b.add("hypdb_dataset_admission_admitted_total", float64(d.Admission.Admitted), ds...)
		b.add("hypdb_dataset_admission_queued", float64(d.Admission.Queued), ds...)
		b.add("hypdb_dataset_admission_sheds_total", float64(d.Admission.ShedQueueFull), "dataset", d.Name, "reason", "queue_full")
		b.add("hypdb_dataset_admission_sheds_total", float64(d.Admission.ShedDeadline), "dataset", d.Name, "reason", "deadline")
		b.add("hypdb_dataset_admission_sheds_total", float64(d.Admission.ShedDraining), "dataset", d.Name, "reason", "draining")
		b.add("hypdb_dataset_admission_cancelled_total", float64(d.Admission.Cancelled), ds...)
		for _, p := range d.Remote {
			ps := []string{"dataset", d.Name, "peer", p.URL}
			b.add("hypdb_peer_healthy", b2f(p.Healthy), ps...)
			b.add("hypdb_peer_pinned_version", float64(p.Version), ps...)
			b.add("hypdb_peer_requests_total", float64(p.Requests), ps...)
			b.add("hypdb_peer_retries_total", float64(p.Retries), ps...)
			b.add("hypdb_peer_errors_total", float64(p.Errors), ps...)
			b.add("hypdb_peer_counts_served_total", float64(p.CountsServed), ps...)
			b.add("hypdb_peer_last_rtt_seconds", p.LastRTTMillis/1000, ps...)
			b.add("hypdb_peer_avg_rtt_seconds", p.AvgRTTMillis/1000, ps...)
		}
	}
	return b.families()
}

// Render writes the snapshot's families in the Prometheus text exposition
// format. The output is deterministic for a given snapshot: families render
// in registry order, series sorted by label values.
func Render(w io.Writer, m api.Metrics) error {
	for _, f := range Collect(m) {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := renderSeries(w, f.Name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderSeries(w io.Writer, name string, s Series) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(s.Labels) > 0 {
		sb.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(s.Value))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value: integral values without a decimal
// point or exponent, everything else in Go's shortest 'f' form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func sortedKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
