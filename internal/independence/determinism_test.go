package independence

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// dependentTable builds a table where X and Y are correlated inside every
// Z-group, so the MIT statistic and p-value are nontrivial.
func dependentTable(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("X", "Y", "Z")
	for i := 0; i < n; i++ {
		z := rng.Intn(3)
		x := rng.Intn(3)
		y := x
		// Dependence weak enough that some permutation replicates beat the
		// observed statistic: the p-value lands strictly inside (0,1), so an
		// equality assertion on it is meaningful.
		if rng.Float64() < 0.97 {
			y = rng.Intn(3)
		}
		b.MustAdd(string(rune('a'+x)), string(rune('a'+y)), string(rune('a'+z)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestMITDeterminism: for one seed, MIT must return bit-identical results
// with Parallel on or off, at any GOMAXPROCS. The p-value of a Monte-Carlo
// test is part of the session's cacheable state, so it must be a pure
// function of (data, Seed, Permutations).
func TestMITDeterminism(t *testing.T) {
	tab := dependentTable(t, 400, 7)
	ctx := context.Background()

	for _, sampling := range []bool{false, true} {
		name := "mit"
		if sampling {
			name = "mit-sampling"
		}
		t.Run(name, func(t *testing.T) {
			base := MIT{Permutations: 300, Seed: 42, SampleGroups: sampling, Parallel: false}
			serial, err := base.Test(ctx, mem.New(tab), "X", "Y", []string{"Z"})
			if err != nil {
				t.Fatal(err)
			}
			if serial.PValue <= 0 || serial.PValue >= 1 {
				t.Logf("degenerate p-value %v weakens this test; adjust the data generator", serial.PValue)
			}

			orig := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(orig)
			for _, procs := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(procs)
				par := base
				par.Parallel = true
				got, err := par.Test(ctx, mem.New(tab), "X", "Y", []string{"Z"})
				if err != nil {
					t.Fatal(err)
				}
				if got.PValue != serial.PValue {
					t.Errorf("GOMAXPROCS=%d: parallel p=%v, serial p=%v — seeding scheme diverged",
						procs, got.PValue, serial.PValue)
				}
				if got.MI != serial.MI {
					t.Errorf("GOMAXPROCS=%d: parallel MI=%v, serial MI=%v", procs, got.MI, serial.MI)
				}

				// Serial runs must be identical at every GOMAXPROCS too.
				again, err := base.Test(ctx, mem.New(tab), "X", "Y", []string{"Z"})
				if err != nil {
					t.Fatal(err)
				}
				if again.PValue != serial.PValue {
					t.Errorf("GOMAXPROCS=%d: serial rerun p=%v, want %v", procs, again.PValue, serial.PValue)
				}
			}
		})
	}
}

// TestMITSeedSensitivity guards against the determinism fix accidentally
// collapsing all seeds onto one replicate stream.
func TestMITSeedSensitivity(t *testing.T) {
	tab := dependentTable(t, 400, 7)
	ctx := context.Background()
	pvals := map[float64]bool{}
	var mi float64
	for seed := int64(1); seed <= 5; seed++ {
		r, err := MIT{Permutations: 300, Seed: seed}.Test(ctx, mem.New(tab), "X", "Y", []string{"Z"})
		if err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			mi = r.MI
		} else if r.MI != mi {
			t.Errorf("observed statistic depends on seed: %v vs %v", r.MI, mi)
		}
		pvals[r.PValue] = true
	}
	// Individual pairs may tie (the p-value granularity is 1/permutations),
	// but five seeds collapsing onto one value means the seed is ignored.
	if len(pvals) < 2 {
		t.Errorf("all five seeds produced the same p-value %v — seed is not reaching the replicate streams", pvals)
	}
}
