// Package admission implements hypdbd's overload protection: per-client
// token-bucket rate limiting and a weighted fair queue in front of each
// dataset's bounded execution capacity.
//
// The two primitives compose into an admission pipeline:
//
//   - Limiter answers "may this client submit another request at all?" —
//     a token bucket per client identity, refilled at a configured rate.
//     A refusal is instantaneous and cheap (429 rate_limited upstream).
//   - Queue answers "when may this admitted request start executing?" —
//     a weighted fair scheduler over a fixed slot capacity with a bounded
//     wait queue. One tenant's 30-slot audit cannot starve another
//     tenant's single analyze: grants are ordered by per-client virtual
//     finish time, so a heavy client's backlog queues behind light
//     clients' sparse requests no matter the arrival order.
//
// Every refusal is typed (*Rejection) and carries a RetryAfter estimate,
// so the HTTP layer can answer 429/503 with a Retry-After header instead
// of letting callers time out silently. Request deadlines propagate into
// queue waits twice over: a request whose context deadline cannot be met
// given the current backlog is rejected at enqueue time (it never
// occupies a queue slot), and a request whose deadline expires while
// queued is shed with a Rejection, not a bare DeadlineExceeded.
//
// Multi-slot reservations (batches, audits) are starvation-free: once a
// reservation is the scheduler's minimum virtual finish time, freed slots
// accumulate for it and no later request overtakes it — the FIFO fix for
// the bare-channel semaphore this package replaces, where racing singles
// could barge past a batch indefinitely.
package admission

import (
	"fmt"
	"time"
)

// Reason classifies a Rejection.
type Reason string

// Rejection reasons, in rough order of the admission pipeline.
const (
	// RateLimited: the client's token bucket is empty (HTTP 429).
	RateLimited Reason = "rate_limited"
	// QueueFull: the dataset's wait queue is at its depth bound (HTTP 503).
	QueueFull Reason = "queue_full"
	// DeadlineUnmeetable: the request's context deadline cannot be met
	// given the current backlog, or expired while it was queued (HTTP 503).
	DeadlineUnmeetable Reason = "deadline_unmeetable"
	// Draining: the queue is shutting down and shed its waiters (HTTP 503).
	Draining Reason = "draining"
)

// Rejection is a typed admission refusal: why, and when a retry has a
// chance. It implements error; callers unwrap it with errors.As.
type Rejection struct {
	// Reason classifies the refusal.
	Reason Reason
	// RetryAfter estimates how long the caller should back off before a
	// retry can plausibly be admitted. Always positive.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (r *Rejection) Error() string {
	return fmt.Sprintf("admission: %s (retry after %s)", r.Reason, r.RetryAfter)
}
