// Package core implements HypDB itself — the paper's primary contribution:
// automatic covariate discovery (the CD algorithm, Alg 1), detection of
// biased OLAP queries (Def 3.1), coarse- and fine-grained explanations
// (Defs 3.3/3.4, Alg 3), logical-dependency dropping (Sec 4), and the
// end-to-end Analyze pipeline that detects, explains and resolves bias at
// query time.
//
// The pipeline consumes a source.Relation — the storage contract — and
// computes its sufficient statistics from dictionary-coded group-by counts,
// so it runs unchanged over the in-memory backend and over SQL databases
// with count pushdown. The only row-level dependency is the subsampling key
// detector, which uses the backend's Materializer capability when present
// and falls back to histogram resampling on counts-only relations.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/internal/stats"
	"hypdb/source"
)

// DropReason explains why an attribute was excluded from causal analysis.
type DropReason string

const (
	// DropFDWithTreatment marks attributes in an (approximate) 1-1
	// functional dependency with the treatment: H(T|X) ≈ 0 and H(X|T) ≈ 0.
	// Conditioning on such attributes isolates the treatment from the rest
	// of the DAG (Sec 4).
	DropFDWithTreatment DropReason = "functional dependency with treatment"
	// DropFDPeer marks attributes (approximately) 1-1 with another kept
	// candidate, e.g. AirportWAC vs Airport; only one of the pair is kept.
	DropFDPeer DropReason = "functional dependency with another attribute"
	// DropKeyLike marks high-entropy attributes whose entropy is determined
	// by the sample size (IDs, flight numbers, tail numbers): detected by
	// regressing subsample entropy on log sample size (Sec 4).
	DropKeyLike DropReason = "key-like attribute (entropy grows with sample size)"
)

// Dropped records one excluded attribute.
type Dropped struct {
	Attr   string
	Reason DropReason
	// Peer names the attribute the FD relates to (FD drops only).
	Peer string
}

// PrepareConfig controls logical-dependency dropping.
type PrepareConfig struct {
	// FDEpsilon is the conditional-entropy threshold (in nats) below which
	// a dependency counts as functional; zero means DefaultFDEpsilon.
	FDEpsilon float64
	// KeySampleSizes are the subsample sizes used by the key detector;
	// empty means a geometric ladder up to the table size.
	KeySampleSizes []int
	// KeySlope is the minimum entropy-vs-ln(size) slope marking a key-like
	// attribute; zero means DefaultKeySlope.
	KeySlope float64
	// KeyR2 is the minimum fit quality for the slope test; zero means
	// DefaultKeyR2.
	KeyR2 float64
	// Seed drives subsampling.
	Seed int64
	// SkipKeyDetection disables the (sampling-based) key detector.
	SkipKeyDetection bool
}

// Defaults for PrepareConfig. A perfect key has slope 1 with R² = 1;
// high-cardinality key-like attributes (flight numbers, tail numbers) have
// finite domains, so their entropy-vs-ln(n) curve flattens near saturation —
// the slope threshold is the discriminator (ordinary attributes saturate at
// tiny samples and sit near slope 0) and the R² gate only rejects noise.
const (
	DefaultFDEpsilon = 0.01
	DefaultKeySlope  = 0.25
	DefaultKeyR2     = 0.85
)

func (c PrepareConfig) fdEpsilon() float64 {
	if c.FDEpsilon <= 0 {
		return DefaultFDEpsilon
	}
	return c.FDEpsilon
}

// PrepareCandidates filters covariate candidates for a treatment attribute:
// it removes key-like attributes and attributes functionally tied to the
// treatment or to an earlier-kept candidate. The returned candidate order
// follows the input order. All functional-dependency tests are computed
// from pairwise counts.
func PrepareCandidates(ctx context.Context, rel source.Relation, treatment string, candidates []string, cfg PrepareConfig) (kept []string, dropped []Dropped, err error) {
	if !rel.HasAttribute(treatment) {
		return nil, nil, fmt.Errorf("core: no treatment column %q: %w", treatment, hyperr.ErrUnknownAttribute)
	}
	eps := cfg.fdEpsilon()
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, nil, err
	}

	var keyLike map[string]bool
	if !cfg.SkipKeyDetection {
		keyLike, err = detectKeyAttributes(ctx, rel, candidates, cfg)
		if err != nil {
			return nil, nil, err
		}
	}

	entCache := make(map[string]float64)
	joint := func(a, b string) (float64, error) {
		k := a + "\x00" + b
		if a > b {
			k = b + "\x00" + a
		}
		if v, ok := entCache[k]; ok {
			return v, nil
		}
		var v float64
		if dc, err := source.Dense(ctx, rel, []string{a, b}, nil, 0); err != nil {
			return 0, err
		} else if dc != nil {
			v = stats.EntropyCountsStable(dc.Cells, n, stats.PlugIn)
		} else {
			counts, err := rel.Counts(ctx, []string{a, b}, nil)
			if err != nil {
				return 0, err
			}
			v = stats.EntropyCountsMap(counts, n, stats.PlugIn)
		}
		entCache[k] = v
		return v, nil
	}
	single := func(a string) (float64, error) {
		if v, ok := entCache[a]; ok {
			return v, nil
		}
		card, err := source.Card(ctx, rel, a)
		if err != nil {
			return 0, err
		}
		// Dense, code-ordered histogram: matches the code-vector estimator
		// of the in-memory pipeline bit for bit.
		dense := make([]int, card)
		if dc, err := source.Dense(ctx, rel, []string{a}, nil, 0); err != nil {
			return 0, err
		} else if dc != nil {
			copy(dense, dc.Cells)
		} else {
			counts, err := rel.Counts(ctx, []string{a}, nil)
			if err != nil {
				return 0, err
			}
			for k, c := range counts {
				dense[k.Field(0)] += c
			}
		}
		v := stats.EntropyCounts(dense, n, stats.PlugIn)
		entCache[a] = v
		return v, nil
	}
	// equivalent reports whether H(a|b) ≤ eps and H(b|a) ≤ eps.
	equivalent := func(a, b string) (bool, error) {
		hab, err := joint(a, b)
		if err != nil {
			return false, err
		}
		ha, err := single(a)
		if err != nil {
			return false, err
		}
		hb, err := single(b)
		if err != nil {
			return false, err
		}
		return hab-ha <= eps && hab-hb <= eps, nil
	}

	for _, x := range candidates {
		if x == treatment {
			continue
		}
		if !rel.HasAttribute(x) {
			return nil, nil, fmt.Errorf("core: no candidate column %q: %w", x, hyperr.ErrUnknownAttribute)
		}
		if keyLike[x] {
			dropped = append(dropped, Dropped{Attr: x, Reason: DropKeyLike})
			continue
		}
		eqT, err := equivalent(x, treatment)
		if err != nil {
			return nil, nil, err
		}
		if eqT {
			dropped = append(dropped, Dropped{Attr: x, Reason: DropFDWithTreatment, Peer: treatment})
			continue
		}
		peer := ""
		for _, k := range kept {
			eq, err := equivalent(x, k)
			if err != nil {
				return nil, nil, err
			}
			if eq {
				peer = k
				break
			}
		}
		if peer != "" {
			dropped = append(dropped, Dropped{Attr: x, Reason: DropFDPeer, Peer: peer})
			continue
		}
		kept = append(kept, x)
	}
	return kept, dropped, nil
}

// detectKeyAttributes implements the paper's key test: draw random
// subsamples of increasing size, compute each attribute's entropy per
// subsample, and flag attributes whose entropy tracks ln(sample size) — for
// a true key H = ln(n) exactly, so the regression slope is 1 with R² = 1;
// ordinary attributes converge to a constant H with slope ≈ 0.
//
// On a materializable backend the subsamples are drawn from the rows
// themselves (the original procedure); on a counts-only backend they are
// drawn from the per-attribute histogram, which samples the same empirical
// distribution with the same seed discipline.
func detectKeyAttributes(ctx context.Context, rel source.Relation, attrs []string, cfg PrepareConfig) (map[string]bool, error) {
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	sizes := cfg.KeySampleSizes
	if len(sizes) == 0 {
		sizes = defaultKeySizes(n)
	}
	if len(sizes) < 2 {
		return map[string]bool{}, nil // not enough scale range to decide
	}
	slopeThr := cfg.KeySlope
	if slopeThr <= 0 {
		slopeThr = DefaultKeySlope
	}
	r2Thr := cfg.KeyR2
	if r2Thr <= 0 {
		r2Thr = DefaultKeyR2
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6b657973))

	// Row-level sampling when the rows are already in memory (the exact
	// original procedure); histogram sampling otherwise. The gate is the
	// zero-cost Table() capability, not Materializer: a remote SQL backend
	// CAN materialize, but pulling every selected row per query would
	// defeat count pushdown, and the histogram sampler draws the same
	// empirical distribution from one single-attribute count each.
	var tab *dataset.Table
	if m, ok := rel.(interface{ Table() *dataset.Table }); ok {
		tab = m.Table()
	}

	out := make(map[string]bool)
	logSizes := make([]float64, len(sizes))
	for i, s := range sizes {
		logSizes[i] = math.Log(float64(s))
	}
	for _, a := range attrs {
		if a == "" || !rel.HasAttribute(a) {
			continue // existence is validated by the caller
		}
		sampleCode, err := codeSampler(ctx, rel, tab, a, n)
		if err != nil {
			return nil, err
		}
		entropies := make([]float64, len(sizes))
		for i, s := range sizes {
			counts := make(map[int32]int)
			for j := 0; j < s; j++ {
				counts[sampleCode(rng.Intn(n))]++
			}
			entropies[i] = stats.EntropyCountsMap(counts, s, stats.PlugIn)
		}
		_, slope, r2, err := stats.LinearRegression(logSizes, entropies)
		if err != nil {
			continue // constant entropies: definitely not a key
		}
		if slope >= slopeThr && r2 >= r2Thr {
			out[a] = true
		}
	}
	return out, nil
}

// codeSampler returns a function mapping a uniform row draw in [0,n) to an
// attribute code: by row lookup when a materialized table is available, by
// cumulative-histogram bucket otherwise (same empirical distribution).
func codeSampler(ctx context.Context, rel source.Relation, tab *dataset.Table, attr string, n int) (func(int) int32, error) {
	if tab != nil {
		col, err := tab.Column(attr)
		if err != nil {
			return nil, err
		}
		return col.Code, nil
	}
	counts, err := rel.Counts(ctx, []string{attr}, nil)
	if err != nil {
		return nil, err
	}
	card, err := source.Card(ctx, rel, attr)
	if err != nil {
		return nil, err
	}
	// Canonical layout: code 0 occupies rows [0, n_0), code 1 the next
	// n_1 rows, and so on — a uniform row index maps to a code with
	// probability proportional to its count.
	cum := make([]int, 0, card)
	running := 0
	for code := 0; code < card; code++ {
		running += counts[dataset.EncodeKey(int32(code))]
		cum = append(cum, running)
	}
	return func(i int) int32 {
		return int32(sort.SearchInts(cum, i+1))
	}, nil
}

// defaultKeySizes builds a geometric ladder of subsample sizes.
func defaultKeySizes(n int) []int {
	if n < 64 {
		return nil
	}
	var sizes []int
	for s := n; s >= 64 && len(sizes) < 5; s /= 4 {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}
