package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientReusesConnections is the regression test for the keep-alive
// bug: do() used to return without draining resp.Body when the caller
// passed no output value (DeleteDataset, and any response with trailing
// bytes past the decoder), which tears the connection down instead of
// returning it to the pool — every subsequent call then pays a fresh TCP
// handshake. A client that drains properly performs many calls over one
// connection.
func TestClientReusesConnections(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodDelete:
			w.WriteHeader(http.StatusNoContent)
		case r.URL.Path == "/healthz":
			json.NewEncoder(w).Encode(Health{Status: "ok"}) //nolint:errcheck
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	var newConns atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if !info.Reused {
				newConns.Add(1)
			}
		},
	}
	ctx := httptrace.WithClientTrace(context.Background(), trace)
	c := NewClient(srv.URL, nil)

	for i := 0; i < 5; i++ {
		// DeleteDataset decodes nothing (out == nil) — the path that used
		// to leak the unread body.
		if err := c.DeleteDataset(ctx, "d"); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if _, err := c.Health(ctx); err != nil {
			t.Fatalf("health %d: %v", i, err)
		}
	}
	if got := newConns.Load(); got != 1 {
		t.Errorf("10 requests dialed %d connections, want 1 (bodies not drained?)", got)
	}
}

// TestClientDrainsPastDecodedValue covers the second leak: a success body
// with bytes after the decoded JSON value (e.g. a trailing newline plus
// padding) must still be drained for the connection to be reused.
func TestClientDrainsPastDecodedValue(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Health{Status: "ok"}) //nolint:errcheck
		w.Write([]byte(strings.Repeat(" ", 4096)))      //nolint:errcheck
	}))
	defer srv.Close()

	var newConns atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if !info.Reused {
				newConns.Add(1)
			}
		},
	}
	ctx := httptrace.WithClientTrace(context.Background(), trace)
	c := NewClient(srv.URL, nil)
	for i := 0; i < 4; i++ {
		if _, err := c.Health(ctx); err != nil {
			t.Fatalf("health %d: %v", i, err)
		}
	}
	if got := newConns.Load(); got != 1 {
		t.Errorf("4 requests dialed %d connections, want 1", got)
	}
}

// TestDefaultHTTPClientHasTimeouts guards the NewClient(nil) fallback: it
// must never be http.DefaultClient, whose zero timeout lets a hung server
// block a caller forever.
func TestDefaultHTTPClientHasTimeouts(t *testing.T) {
	hc := DefaultHTTPClient()
	if hc == http.DefaultClient {
		t.Fatal("DefaultHTTPClient returned http.DefaultClient")
	}
	if hc.Timeout <= 0 {
		t.Errorf("DefaultHTTPClient Timeout = %v, want > 0", hc.Timeout)
	}
	tr, ok := hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("DefaultHTTPClient transport is %T, want *http.Transport", hc.Transport)
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Errorf("ResponseHeaderTimeout = %v, want > 0", tr.ResponseHeaderTimeout)
	}
	if tr.MaxIdleConnsPerHost <= 0 {
		t.Errorf("MaxIdleConnsPerHost = %d, want > 0 (keep-alive pooling)", tr.MaxIdleConnsPerHost)
	}
	// Each call builds a fresh client, so callers mutating one cannot
	// affect another.
	if DefaultHTTPClient() == hc {
		t.Error("DefaultHTTPClient returns a shared instance")
	}
}

// TestDefaultClientTimeoutBounds documents that http.Client.Timeout is an
// upper bound a longer context does not extend: requests against a wedged
// server fail by the client's own deadline.
func TestDefaultClientTimeoutBounds(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedge until the test ends
	}))
	defer func() { close(release); srv.Close() }()

	hc := DefaultHTTPClient()
	hc.Timeout = 50 * time.Millisecond
	c := NewClient(srv.URL, hc)
	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("request against a wedged server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request took %s, want the client timeout to cut it off", elapsed)
	}
}
