// Cancer: validating every HypDB component against ground truth (paper
// Fig 4 bottom). CancerData is sampled from the known causal DAG of Fig 7,
// so the right answers are checkable: lung cancer has NO direct effect on
// car accidents (no edge), a positive total effect (mediated by fatigue),
// and its true covariates are {Smoking, Genetics}.
//
//	go run ./examples/cancer [-rows N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"hypdb"
	"hypdb/internal/datagen"
)

func main() {
	rows := flag.Int("rows", datagen.CancerRows, "rows to sample from the Fig 7 network")
	flag.Parse()

	net, err := datagen.CancerNet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ground-truth causal DAG (Fig 7):")
	for _, e := range net.G.Edges() {
		fmt.Printf("  %s → %s\n", net.G.Name(e[0]), net.G.Name(e[1]))
	}

	tab, err := datagen.Cancer(*rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSampled %d patients. Query: does lung cancer cause car accidents?\n\n", tab.NumRows())

	report, err := hypdb.Open(tab).Analyze(context.Background(), datagen.CancerQuery(),
		hypdb.WithSeed(7), hypdb.WithParallel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	fmt.Println("Scoring against the ground truth:")
	check("covariates = {Genetics, Smoking}",
		strings.Join(report.Covariates, ",") == "Genetics,Smoking")
	check("mediators = {Attention_Disorder, Fatigue}",
		strings.Join(report.Mediators, ",") == "Attention_Disorder,Fatigue")
	check("query flagged as biased",
		len(report.BiasTotal) > 0 && report.BiasTotal[0].Biased)
	if len(report.DirectComparisons) > 0 {
		d := report.DirectComparisons[0]
		// No LC→CA edge exists, so the direct effect must be statistically
		// indistinguishable from zero (the paper's own Fig 4 p-value at
		// n=2000 is the borderline interval (0.07, 0.1); the point estimate
		// is noisy at this size and tightens with -rows 20000).
		check(fmt.Sprintf("direct effect insignificant (NDE %.4f, p=%.3f)", d.Diffs[0], d.PValues[0]),
			d.PValues[0] >= 0.01)
	}
	if len(report.OriginalComparisons) > 0 {
		check("total (observed) difference is significant",
			report.OriginalComparisons[0].PValues[0] < 0.01)
	}
}

func check(what string, ok bool) {
	mark := "✗"
	if ok {
		mark = "✓"
	}
	fmt.Printf("  %s %s\n", mark, what)
}
