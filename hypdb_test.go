package hypdb_test

import (
	"strings"
	"testing"

	"hypdb"
	"hypdb/internal/datagen"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	b := hypdb.NewBuilder("T", "Z", "Y")
	// A small confounded dataset: Z drives both T and Y; T also has a
	// direct effect.
	patterns := []struct {
		t, z, y string
		n       int
	}{
		{"a", "0", "0", 300}, {"a", "0", "1", 100},
		{"a", "1", "0", 40}, {"a", "1", "1", 60},
		{"b", "0", "0", 60}, {"b", "0", "1", 40},
		{"b", "1", "0", 120}, {"b", "1", "1", 280},
	}
	for _, p := range patterns {
		for i := 0; i < p.n; i++ {
			if err := b.Add(p.t, p.z, p.y); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hypdb.Analyze(tab, hypdb.Query{Treatment: "T", Outcomes: []string{"Y"}},
		hypdb.Options{Config: hypdb.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BiasTotal) == 0 || !rep.BiasTotal[0].Biased {
		t.Error("confounded quickstart data not flagged as biased")
	}
	if !strings.Contains(rep.String(), "BIASED") {
		t.Error("report text missing bias verdict")
	}
}

func TestPublicAPIPieces(t *testing.T) {
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	q := datagen.BerkeleyQuery()
	ans, err := hypdb.Run(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows = %d", len(ans.Rows))
	}
	rw, err := hypdb.RewriteTotal(tab, q, []string{"Department"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Diffs[0] >= 0 {
		t.Error("Berkeley reversal not reproduced through the facade")
	}
	bias, err := hypdb.DetectBias(tab, "Gender", nil, []string{"Department"}, hypdb.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bias[0].Biased {
		t.Error("Berkeley query not flagged biased w.r.t. Department")
	}
	cd, err := hypdb.DiscoverCovariates(tab, "Gender", []string{"Department", "Accepted"},
		[]string{"Accepted"}, hypdb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Target != "Gender" {
		t.Errorf("CD target = %s", cd.Target)
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	tab, err := datagen.Cancer(500, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cancer.csv"
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := hypdb.ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Errorf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
}
