// Package sharded implements HypDB's partition-parallel storage backend: a
// source.Relation that owns N child relations (horizontal partitions) and
// serves group-by counts by fanning the same dictionary-coded request to
// every shard concurrently, then merging the additive dense cell vectors.
//
// The merge is sound because the dense sufficient statistic is additive
// across row partitions (internal/dataset): counts over a union of disjoint
// row sets are the element-wise sum of the per-partition tabulations —
// provided every partition is coded in one global dictionary. Each child
// keeps its own compact per-shard dictionaries; the shard coordinator
// reconciles them into a single global coding at admission time (a
// local-code → global-code remap table per shard), so merged cells index
// consistently no matter how labels are distributed across shards.
//
// On top of the fan-out the package adds streaming ingestion with versioned
// snapshots. Partitions are immutable: Append never mutates an existing
// child, it admits the appended rows as one new delta partition and bumps
// the relation's version. A snapshot is therefore nothing more than a
// pinned partition list plus pinned dictionary lengths — readers holding
// one are completely isolated from concurrent appends, and caching layers
// (internal/countcache) tag entries with the version so no analysis mixes
// epochs. The AppendResult hands back a counts view over just the delta
// partition, which is exactly the additive patch a primed cache needs to
// upgrade its views without a full re-tabulation.
//
// Children are plain source.Relations: the local goroutine shards used here
// wrap source/mem tables, but any conforming relation — including
// source/remote's client relation, which speaks the counts endpoint of a
// hypdbd peer — slots into New without changes to the fan-out or the
// coordinator. For remote children the coordinator can additionally enable
// degraded reads (SetDegradedReads): a child failing as an unreachable peer
// is then skipped instead of failing the read, and DegradedServes exposes
// how often that happened so results can be marked stale.
package sharded

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/mem"
)

// Relation is the live, appendable root of a sharded dataset. All reads go
// through an immutable snapshot (View) of the current version, so they are
// safe to run concurrently with Append.
type Relation struct {
	name   string
	base   string // backend identity prefix, version-independent
	attrs  []string
	byName map[string]int

	mu   sync.RWMutex
	dict *dict
	cur  *View // snapshot of the current version, rebuilt on Append

	deg *degradeState // shared with every View derived from this relation
}

// degradeState is the degraded-reads switch shared by a relation and all
// its views: when allow is set, a child failing with
// hyperr.ErrPeerUnavailable is skipped instead of failing the fan-out, and
// serves counts how many reads were answered with at least one child
// missing — the coordinator's staleness signal.
type degradeState struct {
	allow  atomic.Bool
	serves atomic.Int64
	// bump advances the owning relation's snapshot version (set at
	// construction). Every skip calls it, so counts tabulated while a child
	// was missing are tagged with an epoch no later read resolves to:
	// caching layers keyed by version (internal/countcache) can never serve
	// a partial view to an analysis that starts after the skip — or keep
	// serving it once the peer has recovered.
	bump func()
}

// View is one immutable version of a sharded relation: a pinned partition
// list with pinned global dictionary lengths. Snapshots and restrictions
// are Views; the root Relation delegates every read to its current one.
type View struct {
	name    string
	backend string
	attrs   []string
	byName  map[string]int
	labels  [][]string // global dictionary per attribute, frozen length
	parts   []*partition
	rows    int
	ver     uint64
	deg     *degradeState // shared with the root Relation; may be nil
}

// partition is one immutable horizontal slice: a child relation plus the
// remap tables translating its local dictionary codes into global codes.
type partition struct {
	rel   source.Relation
	remap [][]int32 // schema-order attribute -> local code -> global code
	rows  int
}

// dict is the shard coordinator's mutable state: the global dictionaries
// (append-only — admitting a shard or a delta may extend them, never
// reorder them, so codes captured by older snapshots stay valid).
type dict struct {
	labels [][]string
	index  []map[string]int32
}

func newDict(attrs []string) *dict {
	d := &dict{
		labels: make([][]string, len(attrs)),
		index:  make([]map[string]int32, len(attrs)),
	}
	for i := range attrs {
		d.index[i] = make(map[string]int32)
	}
	return d
}

// seed pre-populates attribute i's global dictionary, fixing the code of
// every listed label before any shard is admitted.
func (d *dict) seed(i int, labels []string) {
	for _, l := range labels {
		if _, ok := d.index[i][l]; !ok {
			d.index[i][l] = int32(len(d.labels[i]))
			d.labels[i] = append(d.labels[i], l)
		}
	}
}

// admit registers one child relation: unseen labels extend the global
// dictionaries (first-seen in shard order), and the child's remap tables
// are built so its counts can be recoded into the global space.
func (d *dict) admit(ctx context.Context, rel source.Relation, attrs []string) (*partition, error) {
	p := &partition{rel: rel, remap: make([][]int32, len(attrs))}
	n, err := rel.NumRows(ctx)
	if err != nil {
		return nil, err
	}
	p.rows = n
	for i, a := range attrs {
		local, err := rel.Labels(ctx, a)
		if err != nil {
			return nil, err
		}
		rm := make([]int32, len(local))
		for c, l := range local {
			g, ok := d.index[i][l]
			if !ok {
				g = int32(len(d.labels[i]))
				d.index[i][l] = g
				d.labels[i] = append(d.labels[i], l)
			}
			rm[c] = g
		}
		p.remap[i] = rm
	}
	return p, nil
}

// New builds a sharded relation over the given children, which must all
// expose the same attributes in the same order. The global dictionaries are
// built by admitting the shards in order (first-seen label wins the lower
// code), so the coding is deterministic for a fixed shard list.
func New(ctx context.Context, name string, shards []source.Relation) (*Relation, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sharded: relation %q needs at least one shard", name)
	}
	attrs := append([]string(nil), shards[0].Attributes()...)
	for _, s := range shards[1:] {
		got := s.Attributes()
		if len(got) != len(attrs) {
			return nil, fmt.Errorf("sharded: shard %q has %d attributes, shard %q has %d",
				s.Name(), len(got), shards[0].Name(), len(attrs))
		}
		for i := range attrs {
			if got[i] != attrs[i] {
				return nil, fmt.Errorf("sharded: shard schemas disagree at position %d: %q vs %q",
					i, got[i], attrs[i])
			}
		}
	}
	r := &Relation{name: name, attrs: attrs, byName: indexAttrs(attrs), dict: newDict(attrs), deg: &degradeState{}}
	r.base = fmt.Sprintf("sharded:%p", r)
	r.deg.bump = r.bumpVersion
	parts := make([]*partition, 0, len(shards))
	for _, s := range shards {
		p, err := r.dict.admit(ctx, s, attrs)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	r.cur = r.buildViewLocked(parts, 1)
	return r, nil
}

// Partition splits an in-memory table into n contiguous row-range shards
// and returns the sharded relation over them. The global dictionaries are
// seeded from the table's own, so the relation's coding — and therefore
// every Counts result — is identical to the mem backend's over the same
// table. n is clamped to [1, rows].
func Partition(t *dataset.Table, name string, n int) (*Relation, error) {
	rows := t.NumRows()
	if n < 1 {
		n = 1
	}
	if rows > 0 && n > rows {
		n = rows
	}
	attrs := t.Columns()
	r := &Relation{name: name, attrs: attrs, byName: indexAttrs(attrs), dict: newDict(attrs), deg: &degradeState{}}
	r.base = fmt.Sprintf("sharded:%p", r)
	r.deg.bump = r.bumpVersion
	for i, a := range attrs {
		c, err := t.Column(a)
		if err != nil {
			return nil, err
		}
		r.dict.seed(i, c.Labels())
	}
	parts := make([]*partition, 0, n)
	ctx := context.Background()
	for s := 0; s < n; s++ {
		lo, hi := rows*s/n, rows*(s+1)/n
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		sub, err := t.SelectRows(idx)
		if err != nil {
			return nil, err
		}
		p, err := r.dict.admit(ctx, mem.NewNamed(sub, name), attrs)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	r.cur = r.buildViewLocked(parts, 1)
	return r, nil
}

func indexAttrs(attrs []string) map[string]int {
	m := make(map[string]int, len(attrs))
	for i, a := range attrs {
		m[a] = i
	}
	return m
}

// buildViewLocked captures the current dictionary lengths and the given
// partition list as one immutable View. Callers hold r.mu (or have
// exclusive access during construction).
func (r *Relation) buildViewLocked(parts []*partition, ver uint64) *View {
	labels := make([][]string, len(r.attrs))
	rows := 0
	for i := range r.attrs {
		labels[i] = r.dict.labels[i] // header copy: length frozen here
	}
	for _, p := range parts {
		rows += p.rows
	}
	return &View{
		name:    r.name,
		backend: fmt.Sprintf("%s@v%d", r.base, ver),
		attrs:   r.attrs,
		byName:  r.byName,
		labels:  labels,
		parts:   parts,
		rows:    rows,
		ver:     ver,
		deg:     r.deg,
	}
}

// Snapshot implements source.Versioned: the returned View is immune to
// concurrent appends.
func (r *Relation) Snapshot() (source.Relation, uint64) {
	v := r.snap()
	return v, v.ver
}

// snap returns the current version's View.
func (r *Relation) snap() *View {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur
}

// SnapshotVersion implements source.Versioned.
func (r *Relation) SnapshotVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur.ver
}

// SetDegradedReads switches degraded reads on or off for this relation and
// every view derived from it (including already-pinned snapshots). With
// degraded reads on, a child that fails with hyperr.ErrPeerUnavailable —
// a remote shard that is down — is skipped and the surviving shards answer
// alone; DegradedServes counts such reads so callers can mark the results
// stale. Off (the default) the first unreachable child fails the whole
// read. Version-skew failures (hyperr.ErrVersionSkew) are never degraded
// away: a peer serving a different epoch must fail the read regardless.
func (r *Relation) SetDegradedReads(on bool) { r.deg.allow.Store(on) }

// DegradedReads reports whether degraded reads are enabled.
func (r *Relation) DegradedReads() bool { return r.deg.allow.Load() }

// DegradedServes returns how many times a child has been skipped by a
// degraded read (counts calls, restrictions) since the relation was built.
// A caller comparing the counter before and after an analysis knows
// whether that analysis may rest on partial counts.
func (r *Relation) DegradedServes() uint64 { return uint64(r.deg.serves.Load()) }

// bumpVersion advances the relation's snapshot version without changing its
// data: the current partition list is re-captured as a new View one version
// up (with the backend identity string moving along). Degraded serves call
// it on every skip, so any count tabulated with a child missing carries a
// version tag strictly older than every snapshot pinned afterwards —
// version-keyed caches treat the partial results as a dead epoch instead of
// answering later analyses from them (which would dodge the staleness
// marking, and would outlive the peer's recovery).
func (r *Relation) bumpVersion() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur = r.buildViewLocked(r.cur.parts, r.cur.ver+1)
}

// Children returns the current snapshot's child relations in shard order
// (initial shards first, then one delta per Append). Callers must not
// mutate the children; the slice itself is fresh.
func (r *Relation) Children() []source.Relation {
	parts := r.snap().parts
	out := make([]source.Relation, len(parts))
	for i, p := range parts {
		out[i] = p.rel
	}
	return out
}

// NumPartitions returns the current partition count: the initial shards
// plus one delta partition per Append so far.
func (r *Relation) NumPartitions() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cur.parts)
}

// Append implements source.Appender: the rows (label values in schema
// order) become one new immutable delta partition, unseen labels extend the
// global dictionaries, and the version is bumped. Readers holding an older
// snapshot are unaffected. The result's Delta relation serves counts over
// exactly the appended rows in the global coding, for cache patching. An
// empty batch is a no-op that keeps the current version.
func (r *Relation) Append(ctx context.Context, rows [][]string) (*source.AppendResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) != len(r.attrs) {
			return nil, fmt.Errorf("sharded: append row %d has %d values, schema has %d attributes",
				i, len(row), len(r.attrs))
		}
	}
	if len(rows) == 0 {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return &source.AppendResult{NumRows: r.cur.rows, Version: r.cur.ver}, nil
	}
	b := dataset.NewBuilder(r.attrs...)
	for _, row := range rows {
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	tab, err := b.Table()
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	p, err := r.dict.admit(ctx, mem.NewNamed(tab, r.name), r.attrs)
	if err != nil {
		return nil, err
	}
	// Copy-on-append: snapshots hold the old slice, which must never be
	// extended in place underneath them.
	parts := make([]*partition, 0, len(r.cur.parts)+1)
	parts = append(parts, r.cur.parts...)
	parts = append(parts, p)
	ver := r.cur.ver + 1
	r.cur = r.buildViewLocked(parts, ver)

	delta := r.buildViewLocked([]*partition{p}, ver)
	delta.backend += "|delta"
	return &source.AppendResult{
		Appended: len(rows),
		NumRows:  r.cur.rows,
		Version:  ver,
		Delta:    delta,
	}, nil
}

// Close releases every child shard that holds external resources.
func (r *Relation) Close() error {
	parts := r.snap().parts
	var first error
	for _, p := range parts {
		if cl, ok := p.rel.(source.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// The root delegates every read to the current snapshot.

// Name implements source.Relation.
func (r *Relation) Name() string { return r.name }

// Backend implements source.Relation. The identity incorporates the current
// version, so statistics cached against it are never shared across epochs.
func (r *Relation) Backend() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur.backend
}

// Attributes implements source.Relation.
func (r *Relation) Attributes() []string { return r.attrs }

// HasAttribute implements source.Relation.
func (r *Relation) HasAttribute(name string) bool { _, ok := r.byName[name]; return ok }

// NumRows implements source.Relation.
func (r *Relation) NumRows(ctx context.Context) (int, error) {
	return r.snap().NumRows(ctx)
}

// Labels implements source.Relation.
func (r *Relation) Labels(ctx context.Context, attr string) ([]string, error) {
	return r.snap().Labels(ctx, attr)
}

// Cardinality implements the optional distinct-count capability.
func (r *Relation) Cardinality(ctx context.Context, attr string) (int, error) {
	return r.snap().Cardinality(ctx, attr)
}

// Counts implements source.Relation by fanning out over the current
// snapshot's partitions.
func (r *Relation) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	return r.snap().Counts(ctx, attrs, where)
}

// DenseCounts implements source.DenseCounter.
func (r *Relation) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	return r.snap().DenseCounts(ctx, attrs, where, budget)
}

// Restrict implements source.Relation.
func (r *Relation) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return r, nil
	}
	return r.snap().Restrict(ctx, where)
}

// Materialize implements source.Materializer when every child does.
func (r *Relation) Materialize(ctx context.Context) (*dataset.Table, error) {
	return r.snap().Materialize(ctx)
}

// ---------------------------------------------------------------------------
// View: the immutable read path

// Name implements source.Relation.
func (v *View) Name() string { return v.name }

// Backend implements source.Relation.
func (v *View) Backend() string { return v.backend }

// Attributes implements source.Relation.
func (v *View) Attributes() []string { return v.attrs }

// HasAttribute implements source.Relation.
func (v *View) HasAttribute(name string) bool { _, ok := v.byName[name]; return ok }

// Version returns the snapshot version this view was pinned at.
func (v *View) Version() uint64 { return v.ver }

// NumRows implements source.Relation.
func (v *View) NumRows(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return v.rows, nil
}

// Labels implements source.Relation: the global dictionary of attr, frozen
// at this view's version.
func (v *View) Labels(ctx context.Context, attr string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	i, ok := v.byName[attr]
	if !ok {
		return nil, fmt.Errorf("sharded: relation %q has no attribute %q: %w", v.name, attr, hyperr.ErrUnknownAttribute)
	}
	return v.labels[i], nil
}

// Cardinality implements the optional distinct-count capability.
func (v *View) Cardinality(ctx context.Context, attr string) (int, error) {
	l, err := v.Labels(ctx, attr)
	if err != nil {
		return 0, err
	}
	return len(l), nil
}

// Counts implements source.Relation: dense fan-out and merge when the
// global cell space fits the default budget, sparse per-shard maps merged
// key-by-key otherwise.
func (v *View) Counts(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	dc, err := v.DenseCounts(ctx, attrs, where, 0)
	if err != nil {
		return nil, err
	}
	if dc != nil {
		return dc.Map(), nil
	}
	return v.fanSparse(ctx, attrs, where)
}

// DenseCounts implements source.DenseCounter: every shard tabulates its
// partition concurrently (dense when the child supports it, recoded sparse
// otherwise) and the additive cell vectors are merged into one global view.
func (v *View) DenseCounts(ctx context.Context, attrs []string, where source.Predicate, budget int) (*dataset.DenseCounts, error) {
	if err := source.CheckAttrs(v, attrs...); err != nil {
		return nil, err
	}
	cards := make([]int, len(attrs))
	for i, a := range attrs {
		cards[i] = len(v.labels[v.byName[a]])
	}
	if _, ok := dataset.DenseSize(cards, dataset.EffectiveBudget(budget, v.rows)); !ok {
		return nil, nil
	}
	out, err := dataset.NewDenseCounts(attrs, cards)
	if err != nil {
		return nil, err
	}
	strides := make([]int, len(attrs))
	s := 1
	for i, c := range cards {
		strides[i] = s
		s *= c
	}
	var merge sync.Mutex
	err = v.fanParts(ctx, func(ctx context.Context, p *partition) error {
		rm := v.remapFor(p, attrs)
		local, err := source.Dense(ctx, p.rel, attrs, where, budget)
		if err != nil {
			return err
		}
		if local != nil {
			merge.Lock()
			defer merge.Unlock()
			return scatterDense(out, strides, rm, local)
		}
		counts, err := p.rel.Counts(ctx, attrs, where)
		if err != nil {
			return err
		}
		merge.Lock()
		defer merge.Unlock()
		return scatterSparse(out, strides, rm, counts)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fanSparse merges per-shard sparse maps under the global coding — the path
// for cell spaces above the dense budget.
func (v *View) fanSparse(ctx context.Context, attrs []string, where source.Predicate) (map[source.Key]int, error) {
	if err := source.CheckAttrs(v, attrs...); err != nil {
		return nil, err
	}
	out := make(map[source.Key]int)
	var merge sync.Mutex
	err := v.fanParts(ctx, func(ctx context.Context, p *partition) error {
		rm := v.remapFor(p, attrs)
		counts, err := p.rel.Counts(ctx, attrs, where)
		if err != nil {
			return err
		}
		merge.Lock()
		defer merge.Unlock()
		codes := make([]int32, len(attrs))
		for k, c := range counts {
			for i := range codes {
				codes[i] = rm[i][k.Field(i)]
			}
			out[dataset.EncodeKey(codes...)] += c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// remapFor selects the partition's remap tables for the requested
// attributes, in request order.
func (v *View) remapFor(p *partition, attrs []string) [][]int32 {
	rm := make([][]int32, len(attrs))
	for i, a := range attrs {
		rm[i] = p.remap[v.byName[a]]
	}
	return rm
}

// scatterDense adds a shard's local dense tabulation into the global view:
// each non-zero local cell is decoded to local codes, remapped, and added
// at its global index.
func scatterDense(out *dataset.DenseCounts, strides []int, rm [][]int32, local *dataset.DenseCounts) error {
	odo := make([]int32, len(local.Cards))
	for _, cnt := range local.Cells {
		if cnt != 0 {
			idx := 0
			for i, c := range odo {
				g := rm[i][c]
				idx += strides[i] * int(g)
			}
			out.Cells[idx] += cnt
			out.Total += cnt
		}
		for i := range odo {
			odo[i]++
			if int(odo[i]) < local.Cards[i] {
				break
			}
			odo[i] = 0
		}
	}
	return nil
}

// scatterSparse adds a shard's sparse counts into the global dense view.
func scatterSparse(out *dataset.DenseCounts, strides []int, rm [][]int32, counts map[source.Key]int) error {
	for k, cnt := range counts {
		idx := 0
		for i := range rm {
			idx += strides[i] * int(rm[i][k.Field(i)])
		}
		out.Cells[idx] += cnt
		out.Total += cnt
	}
	return nil
}

// skipChild reports whether a child's failure should be absorbed by
// degraded reads: the switch is on, the error is a lost peer (never a
// version skew — that wraps a different sentinel — and never a
// cancellation), and the read's context is still live. A true return has
// already recorded the degraded serve and advanced the relation's snapshot
// version, so the partial result being assembled is tagged with a version
// (captured before the fan-out) that no read starting after the skip
// resolves to — partial counts die with their epoch rather than being
// cached as complete.
func (v *View) skipChild(ctx context.Context, err error) bool {
	if v.deg == nil || !v.deg.allow.Load() {
		return false
	}
	if ctx.Err() != nil || !errors.Is(err, hyperr.ErrPeerUnavailable) {
		return false
	}
	v.deg.serves.Add(1)
	if v.deg.bump != nil {
		v.deg.bump()
	}
	return true
}

// fanParts runs f over every partition on a bounded worker pool, cancelling
// the remaining work on the first error. With degraded reads enabled, a
// partition failing as an unreachable peer is skipped — its contribution is
// simply missing from the merge — instead of cancelling the fan-out.
func (v *View) fanParts(ctx context.Context, f func(ctx context.Context, p *partition) error) error {
	if len(v.parts) == 0 {
		return ctx.Err()
	}
	if len(v.parts) == 1 {
		if err := f(ctx, v.parts[0]); err != nil && !v.skipChild(ctx, err) {
			return err
		}
		return ctx.Err()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(v.parts) {
		workers = len(v.parts)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	work := make(chan *partition)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				if ctx.Err() != nil {
					continue // drain
				}
				if err := f(ctx, p); err != nil && !v.skipChild(ctx, err) {
					errOnce.Do(func() { firstErr = err })
					cancel()
				}
			}
		}()
	}
	for _, p := range v.parts {
		work <- p
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// Restrict implements source.Relation: every child is restricted (with its
// own compacted dictionaries) and the surviving labels are reconciled into
// a fresh global coding, admitted in shard order. For contiguous row-range
// partitions that makes the restricted coding identical to the mem
// backend's first-seen compaction over the same selection.
func (v *View) Restrict(ctx context.Context, where source.Predicate) (source.Relation, error) {
	if where == nil {
		return v, nil
	}
	d := newDict(v.attrs)
	parts := make([]*partition, 0, len(v.parts))
	rows := 0
	for _, p := range v.parts {
		child, err := p.rel.Restrict(ctx, where)
		if err != nil {
			if v.skipChild(ctx, err) {
				continue // degraded: the lost peer's rows drop out of the view
			}
			return nil, err
		}
		np, err := d.admit(ctx, child, v.attrs)
		if err != nil {
			if v.skipChild(ctx, err) {
				continue
			}
			return nil, err
		}
		parts = append(parts, np)
		rows += np.rows
	}
	labels := make([][]string, len(v.attrs))
	copy(labels, d.labels)
	return &View{
		name:    v.name,
		backend: fmt.Sprintf("%s|σ:%s", v.backend, where.SQL()),
		attrs:   v.attrs,
		byName:  v.byName,
		labels:  labels,
		parts:   parts,
		rows:    rows,
		ver:     v.ver,
		deg:     v.deg,
	}, nil
}

// Materialize implements source.Materializer when every child does: the
// partitions' rows are concatenated in shard order under the global
// dictionaries. For a relation built by Partition, that reproduces the
// original table's row order and coding exactly.
func (v *View) Materialize(ctx context.Context) (*dataset.Table, error) {
	cols := make([]*dataset.Column, len(v.attrs))
	codes := make([][]int32, len(v.attrs))
	for i := range v.attrs {
		codes[i] = make([]int32, 0, v.rows)
	}
	for _, p := range v.parts {
		tab, err := source.Materialize(ctx, p.rel)
		if err != nil {
			return nil, err
		}
		for i, a := range v.attrs {
			c, err := tab.Column(a)
			if err != nil {
				return nil, err
			}
			rm := p.remap[i]
			for _, lc := range c.Codes() {
				codes[i] = append(codes[i], rm[lc])
			}
		}
	}
	for i, a := range v.attrs {
		c, err := dataset.NewColumnFromCodes(a, codes[i], v.labels[i])
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	return dataset.New(cols...)
}

var (
	_ source.Relation     = (*Relation)(nil)
	_ source.DenseCounter = (*Relation)(nil)
	_ source.Materializer = (*Relation)(nil)
	_ source.Appender     = (*Relation)(nil)
	_ source.Versioned    = (*Relation)(nil)
	_ source.Closer       = (*Relation)(nil)
	_ source.Relation     = (*View)(nil)
	_ source.DenseCounter = (*View)(nil)
	_ source.Materializer = (*View)(nil)
)
