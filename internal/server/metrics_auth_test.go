package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypdb/api"
)

// rawGet fetches a path with optional bearer token and returns status and
// body — for asserting on endpoints the typed client wraps.
func rawGet(t *testing.T, baseURL, path, token string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsTokenGatedByDefault is the regression test for the metrics
// auth gap: with bearer auth enabled, both GET /v1/metrics and GET /metrics
// must demand a token — counters leak dataset names and traffic shapes —
// with reader scope sufficient.
func TestMetricsTokenGatedByDefault(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		Tokens: []Token{
			{Secret: "op-secret", Name: "op", Scope: ScopeOperator},
			{Secret: "read-secret", Name: "analyst", Scope: ScopeReader},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/v1/metrics", "/metrics"} {
		if code, body := rawGet(t, ts.URL, path, ""); code != http.StatusUnauthorized {
			t.Errorf("tokenless GET %s = %d (%s), want 401", path, code, body)
		}
		if code, body := rawGet(t, ts.URL, path, "wrong"); code != http.StatusUnauthorized {
			t.Errorf("bad-token GET %s = %d (%s), want 401", path, code, body)
		}
		for _, token := range []string{"read-secret", "op-secret"} {
			if code, body := rawGet(t, ts.URL, path, token); code != http.StatusOK {
				t.Errorf("GET %s with %s = %d (%s), want 200", path, token, code, body)
			}
		}
	}

	// The typed client paths agree with the raw ones.
	ctx := context.Background()
	reader := api.NewClient(ts.URL, ts.Client(), api.WithToken("read-secret"))
	if _, err := reader.Metrics(ctx); err != nil {
		t.Errorf("reader JSON metrics: %v", err)
	}
	if text, err := reader.MetricsText(ctx); err != nil || !strings.Contains(text, "hypdb_requests_total") {
		t.Errorf("reader text metrics: %v (len %d)", err, len(text))
	}
}

// TestOpenMetricsEscapeHatch: Config.OpenMetrics re-exposes exactly the two
// metrics views tokenless — for scrapers that cannot carry credentials —
// while every data-plane endpoint keeps demanding a token.
func TestOpenMetricsEscapeHatch(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		OpenMetrics: true,
		Tokens:      []Token{{Secret: "op-secret", Name: "op", Scope: ScopeOperator}},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code, body := rawGet(t, ts.URL, "/v1/metrics", ""); code != http.StatusOK {
		t.Errorf("open-metrics GET /v1/metrics = %d (%s), want 200", code, body)
	}
	code, body := rawGet(t, ts.URL, "/metrics", "")
	if code != http.StatusOK {
		t.Errorf("open-metrics GET /metrics = %d (%s), want 200", code, body)
	}
	if !strings.Contains(body, "# TYPE hypdb_requests_total counter") {
		t.Errorf("open scrape missing requests family:\n%.200s", body)
	}

	// The hatch opens only GET: the method-routed mux must not let the
	// anonymous identity reach anything else under those paths.
	anon := api.NewClient(ts.URL, ts.Client())
	if _, err := anon.Datasets(context.Background()); !hasCode(err, api.CodeUnauthorized, http.StatusUnauthorized) {
		t.Errorf("open-metrics anonymous dataset list: %v, want 401", err)
	}
}

// TestMetricsExemptFromRateLimitAndDrain pins the admission exemption: a
// rate-limited client and a draining server must both keep answering the
// two metrics views — observability matters most exactly when the server
// is shedding — while data-plane requests shed with their typed errors.
func TestMetricsExemptFromRateLimitAndDrain(t *testing.T) {
	srv, c := newTestServer(t, Config{RatePerClient: 0.01, RateBurst: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	// Exhaust the single burst token, then confirm the limiter is biting.
	if _, err := c.Datasets(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Datasets(ctx); !hasCode(err, api.CodeRateLimited, http.StatusTooManyRequests) {
		t.Fatalf("limited request: %v, want 429", err)
	}

	// Both views answer while the client is limited. All httptest clients
	// share the 127.0.0.1 identity, so these scrapes ride the same
	// exhausted bucket — only the exemption lets them through.
	for _, path := range []string{"/v1/metrics", "/metrics"} {
		if code, body := rawGet(t, ts.URL, path, ""); code != http.StatusOK {
			t.Errorf("GET %s while rate-limited = %d (%s), want 200", path, code, body)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.RateLimited < 1 {
		t.Errorf("RateLimited = %d, want >= 1", m.RateLimited)
	}

	srv.Drain()
	for _, path := range []string{"/v1/metrics", "/metrics"} {
		if code, body := rawGet(t, ts.URL, path, ""); code != http.StatusOK {
			t.Errorf("GET %s while draining = %d (%s), want 200", path, code, body)
		}
	}
	if _, err := c.Datasets(ctx); !hasCode(err, api.CodeShuttingDown, http.StatusServiceUnavailable) {
		t.Errorf("data-plane request while draining: %v, want 503 shutting_down", err)
	}
	// The draining scrape carries the shed it observed, down to the
	// per-client identity label.
	_, body := rawGet(t, ts.URL, "/metrics", "")
	if !strings.Contains(body, "hypdb_rate_limited_total 1") {
		t.Errorf("draining scrape missing rate-limit counter:\n%.200s", body)
	}
	if !strings.Contains(body, `hypdb_client_rate_limited_total{token="127.0.0.1"} 1`) {
		t.Errorf("draining scrape missing per-client rate-limit series")
	}
}
