package core

import (
	"context"
	"runtime"
	"sync"
)

// RunPool runs n indexed tasks over a bounded worker pool: the first
// failure cancels the context handed to the remaining tasks and is
// returned after every started task finishes. workers ≤ 0 means
// GOMAXPROCS. When the caller's own context is cancelled, its error is
// returned (unless a task failed first). This is the one pool shared by
// AnalyzeAll batches and Audit sweeps, so cancel-on-first-error and
// error-precedence semantics cannot drift between them.
func RunPool(ctx context.Context, n, workers int, run func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := run(pctx, i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-pctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
