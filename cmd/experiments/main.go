// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec 7). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Usage:
//
//	experiments [-quick] [-seed N] <experiment>...
//	experiments -list
//	experiments all
//
// Experiments: fig1 table1 fig3 fig4 fig5a fig5b fig5c fig5d fig6a fig6b
// fig6c fig6d fig8a fig8b listing3.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// experiment is one registered reproduction target.
type experiment struct {
	name  string
	about string
	run   func(cfg runConfig) error
}

// runConfig is shared experiment configuration.
type runConfig struct {
	quick bool
	seed  int64
}

var registry []experiment

func register(name, about string, run func(runConfig) error) {
	registry = append(registry, experiment{name: name, about: about, run: run})
}

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (smaller data, fewer repetitions)")
	seed := flag.Int64("seed", 1, "base random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	sort.Slice(registry, func(i, j int) bool { return registry[i].name < registry[j].name })
	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.name, e.about)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-seed N] <experiment>... | all | -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range registry {
			args = append(args, e.name)
		}
	}
	cfg := runConfig{quick: *quick, seed: *seed}
	for _, name := range args {
		e, ok := lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		fmt.Printf("==== %s — %s ====\n", e.name, e.about)
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

func lookup(name string) (experiment, bool) {
	for _, e := range registry {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// section prints a sub-heading.
func section(format string, args ...any) {
	fmt.Printf("\n-- %s --\n", fmt.Sprintf(format, args...))
}

// row prints one aligned output row.
func row(format string, args ...any) {
	fmt.Printf("  "+format+"\n", args...)
}
