package dataset

import (
	"fmt"
	"strings"
	"unicode"

	"hypdb/internal/hyperr"
)

// ParsePredicate parses a SQL-style boolean expression into a Predicate.
// The grammar covers everything the built-in combinators render via SQL():
//
//	expr       := and ( OR and )*
//	and        := unary ( AND unary )*
//	unary      := NOT unary | '(' expr ')' | TRUE | FALSE | comparison
//	comparison := ident ( '=' value | '!=' value | '<>' value
//	                    | IN '(' value ( ',' value )* ')' )
//	ident      := bare word  |  "double quoted"
//	value      := 'single quoted' ('' escapes a quote)  |  bare word
//
// Keywords are case-insensitive; NOT binds tighter than AND, AND tighter
// than OR. TRUE parses to All and FALSE to an empty Or (matches nothing).
// Every syntax failure wraps hyperr.ErrBadPredicate for errors.Is.
func ParsePredicate(s string) (Predicate, error) {
	p := &predParser{input: s}
	p.next()
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok)
	}
	return pred, nil
}

type tokenKind int

const (
	tokEOF         tokenKind = iota
	tokWord                  // bare identifier or unquoted value
	tokString                // single-quoted value
	tokQuotedIdent           // double-quoted identifier
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokNeq
	tokErr
)

type token struct {
	kind tokenKind
	text string // decoded text for words/strings, raw for punctuation
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string '%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type predParser struct {
	input string
	pos   int
	tok   token
}

func (p *predParser) errorf(format string, args ...any) error {
	return fmt.Errorf("dataset: parsing predicate at offset %d: %s: %w",
		p.tok.pos, fmt.Sprintf(format, args...), hyperr.ErrBadPredicate)
}

// next scans one token into p.tok.
func (p *predParser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ",", pos: start}
	case c == '=':
		p.pos++
		p.tok = token{kind: tokEq, text: "=", pos: start}
	case c == '!' && p.pos+1 < len(p.input) && p.input[p.pos+1] == '=':
		p.pos += 2
		p.tok = token{kind: tokNeq, text: "!=", pos: start}
	case c == '<' && p.pos+1 < len(p.input) && p.input[p.pos+1] == '>':
		p.pos += 2
		p.tok = token{kind: tokNeq, text: "<>", pos: start}
	case c == '\'':
		p.scanQuoted('\'', tokString, start)
	case c == '"':
		p.scanQuoted('"', tokQuotedIdent, start)
	case isWordChar(rune(c)):
		end := p.pos
		for end < len(p.input) && isWordChar(rune(p.input[end])) {
			end++
		}
		p.tok = token{kind: tokWord, text: p.input[p.pos:end], pos: start}
		p.pos = end
	default:
		p.tok = token{kind: tokErr, text: string(c), pos: start}
	}
}

// scanQuoted consumes a quote-delimited token; a doubled quote inside the
// token escapes itself ('it”s' → it's).
func (p *predParser) scanQuoted(q byte, kind tokenKind, start int) {
	var b strings.Builder
	i := p.pos + 1
	for i < len(p.input) {
		if p.input[i] == q {
			if i+1 < len(p.input) && p.input[i+1] == q {
				b.WriteByte(q)
				i += 2
				continue
			}
			p.pos = i + 1
			p.tok = token{kind: kind, text: b.String(), pos: start}
			return
		}
		b.WriteByte(p.input[i])
		i++
	}
	p.pos = len(p.input)
	p.tok = token{kind: tokErr, text: "unterminated quote", pos: start}
}

func isWordChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-' || r == '+'
}

// isKeyword reports whether the current token is the given bare keyword
// (case-insensitive); quoted identifiers are never keywords.
func (p *predParser) isKeyword(kw string) bool {
	return p.tok.kind == tokWord && strings.EqualFold(p.tok.text, kw)
}

func (p *predParser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("OR") {
		return left, nil
	}
	or := Or{left}
	for p.isKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		or = append(or, right)
	}
	return or, nil
}

func (p *predParser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("AND") {
		return left, nil
	}
	and := And{left}
	for p.isKeyword("AND") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		and = append(and, right)
	}
	return and, nil
}

func (p *predParser) parseUnary() (Predicate, error) {
	switch {
	case p.isKeyword("NOT"):
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{Pred: inner}, nil
	case p.tok.kind == tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', found %s", p.tok)
		}
		p.next()
		return inner, nil
	case p.isKeyword("TRUE"):
		p.next()
		return All{}, nil
	case p.isKeyword("FALSE"):
		p.next()
		return Or{}, nil
	case p.tok.kind == tokWord || p.tok.kind == tokQuotedIdent:
		return p.parseComparison()
	default:
		return nil, p.errorf("expected an attribute, NOT, or '(', found %s", p.tok)
	}
}

func (p *predParser) parseComparison() (Predicate, error) {
	attr := p.tok.text
	p.next()
	switch {
	case p.tok.kind == tokEq:
		p.next()
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return Eq{Attr: attr, Value: val}, nil
	case p.tok.kind == tokNeq:
		p.next()
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return Not{Pred: Eq{Attr: attr, Value: val}}, nil
	case p.isKeyword("IN"):
		p.next()
		if p.tok.kind != tokLParen {
			return nil, p.errorf("expected '(' after IN, found %s", p.tok)
		}
		p.next()
		var vals []string
		for {
			val, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, val)
			if p.tok.kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')' closing IN list, found %s", p.tok)
		}
		p.next()
		return In{Attr: attr, Values: vals}, nil
	default:
		return nil, p.errorf("expected '=', '!=', '<>' or IN after attribute %q, found %s", attr, p.tok)
	}
}

func (p *predParser) parseValue() (string, error) {
	if p.tok.kind != tokString && p.tok.kind != tokWord {
		return "", p.errorf("expected a value, found %s", p.tok)
	}
	v := p.tok.text
	p.next()
	return v, nil
}
