package datagen

import (
	"math"
	"testing"

	"context"
	"hypdb/internal/query"
	"hypdb/source/mem"
)

func TestFlightShape(t *testing.T) {
	tab, err := Flight(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != FlightColumns {
		t.Errorf("columns = %d, want %d", tab.NumCols(), FlightColumns)
	}
	if tab.NumRows() != 5000 {
		t.Errorf("rows = %d, want 5000", tab.NumRows())
	}
	// FDs hold exactly.
	for _, pair := range [][2]string{{"Airport", "AirportWAC"}, {"Carrier", "CarrierCode"}, {"Month", "Quarter"}} {
		n1, err := tab.DistinctCount(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		n2, err := tab.DistinctCount(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Errorf("FD %s ⇒ %s violated: %d vs %d joint values", pair[0], pair[1], n1, n2)
		}
	}
	// FlightID is a key.
	ids, err := tab.DistinctCount("FlightID")
	if err != nil {
		t.Fatal(err)
	}
	if ids != tab.NumRows() {
		t.Errorf("FlightID distinct = %d, want %d", ids, tab.NumRows())
	}
	if _, err := Flight(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFlightSimpsonParadox(t *testing.T) {
	tab, err := Flight(FlightRows, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := FlightQuery()
	ans, err := query.Run(context.Background(), mem.New(tab), q)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := ans.Compare()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate: AA strictly lower average delay than UA.
	agg := comps[0]
	if agg.T0 != "AA" || agg.T1 != "UA" {
		t.Fatalf("treatment order = %s,%s", agg.T0, agg.T1)
	}
	if agg.Diffs[0] <= 0.03 {
		t.Errorf("aggregate UA−AA delay = %v, want clearly positive (AA looks better)", agg.Diffs[0])
	}
	// Per airport: UA strictly better at every one of the four airports.
	perAirport := q
	perAirport.Groupings = []string{"Airport"}
	ans2, err := query.Run(context.Background(), mem.New(tab), perAirport)
	if err != nil {
		t.Fatal(err)
	}
	comps2, err := ans2.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps2) != 4 {
		t.Fatalf("per-airport comparisons = %d, want 4", len(comps2))
	}
	for _, c := range comps2 {
		if c.Diffs[0] >= 0 {
			t.Errorf("airport %v: UA−AA = %v, want negative (UA better everywhere)", c.Context, c.Diffs[0])
		}
	}
	// The adjusted answer must agree with the per-airport trend.
	rw, err := query.RewriteTotal(context.Background(), mem.New(tab), q, FlightCovariates())
	if err != nil {
		t.Fatal(err)
	}
	rcomps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if rcomps[0].Diffs[0] >= 0 {
		t.Errorf("adjusted UA−AA = %v, want negative (reversal resolved)", rcomps[0].Diffs[0])
	}
}

func TestAdultCalibration(t *testing.T) {
	tab, err := Adult(AdultRows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 15 {
		t.Errorf("columns = %d, want 15", tab.NumCols())
	}
	ans, err := query.Run(context.Background(), mem.New(tab), AdultQuery())
	if err != nil {
		t.Fatal(err)
	}
	byGender := map[string]float64{}
	for _, r := range ans.Rows {
		byGender[r.Treatment] = r.Avgs[0]
	}
	// Paper: ≈11% of women vs ≈30% of men above 50K.
	if math.Abs(byGender["Female"]-0.11) > 0.04 {
		t.Errorf("P(income|female) = %v, want ≈0.11", byGender["Female"])
	}
	if math.Abs(byGender["Male"]-0.30) > 0.05 {
		t.Errorf("P(income|male) = %v, want ≈0.30", byGender["Male"])
	}
	// Adjusting for MaritalStatus and Education shrinks the gap sharply.
	rw, err := query.RewriteTotal(context.Background(), mem.New(tab), AdultQuery(), []string{"MaritalStatus", "Education"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	rawGap := byGender["Male"] - byGender["Female"]
	adjGap := comps[0].Avg1[0] - comps[0].Avg0[0]
	if adjGap > rawGap/2 {
		t.Errorf("adjusted gap %v not well below raw gap %v", adjGap, rawGap)
	}
	// FD: Education ⇒ EducationNum.
	n1, _ := tab.DistinctCount("Education")
	n2, _ := tab.DistinctCount("Education", "EducationNum")
	if n1 != n2 {
		t.Error("Education ⇒ EducationNum FD violated")
	}
}

func TestBerkeleyMatchesPublishedFigures(t *testing.T) {
	tab, err := Berkeley(4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != BerkeleyRows() {
		t.Errorf("rows = %d, want %d", tab.NumRows(), BerkeleyRows())
	}
	ans, err := query.Run(context.Background(), mem.New(tab), BerkeleyQuery())
	if err != nil {
		t.Fatal(err)
	}
	byGender := map[string]float64{}
	for _, r := range ans.Rows {
		byGender[r.Treatment] = r.Avgs[0]
	}
	// Published aggregates: men 44.5%, women 30.4%.
	if math.Abs(byGender["Male"]-0.445) > 0.005 {
		t.Errorf("male acceptance = %v, want 0.445", byGender["Male"])
	}
	if math.Abs(byGender["Female"]-0.304) > 0.005 {
		t.Errorf("female acceptance = %v, want 0.304", byGender["Female"])
	}
	// Conditioning on Department reverses the trend (Fig 4 top: 0.32 vs
	// 0.27 after rewriting).
	rw, err := query.RewriteTotal(context.Background(), mem.New(tab), BerkeleyQuery(), []string{"Department"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	female, male := comps[0].Avg0[0], comps[0].Avg1[0]
	if !(female > male) {
		t.Errorf("adjusted acceptance female=%v male=%v, want reversal (female higher)", female, male)
	}
	// The paper reports (0.32, 0.27) on its 4,428-row variant of the data;
	// on the published 4,526-application counts the department-weighted
	// answers are (0.430, 0.387). Same reversal, same ≈0.04–0.05 gap.
	if gap := female - male; gap < 0.01 || gap > 0.10 {
		t.Errorf("adjusted gap = %v, want within (0.01, 0.10) as reported", gap)
	}
}

func TestStaplesCalibration(t *testing.T) {
	tab, err := Staples(120000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 6 {
		t.Errorf("columns = %d, want 6", tab.NumCols())
	}
	ans, err := query.Run(context.Background(), mem.New(tab), StaplesQuery())
	if err != nil {
		t.Fatal(err)
	}
	byIncome := map[string]float64{}
	for _, r := range ans.Rows {
		byIncome[r.Treatment] = r.Avgs[0]
	}
	// Paper SQL answers: 0.06 (low) vs 0.05 (high).
	if math.Abs(byIncome["0"]-0.06) > 0.01 {
		t.Errorf("avg price | low income = %v, want ≈0.06", byIncome["0"])
	}
	if math.Abs(byIncome["1"]-0.05) > 0.01 {
		t.Errorf("avg price | high income = %v, want ≈0.05", byIncome["1"])
	}
	// Direct effect through the mediator formula is zero: income has no
	// effect within distance strata.
	rw, err := query.RewriteDirect(context.Background(), mem.New(tab), StaplesQuery(), nil, []string{"Distance"}, "")
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comps[0].Diffs[0]) > 0.004 {
		t.Errorf("direct effect = %v, want ≈0", comps[0].Diffs[0])
	}
}

func TestCancerCalibration(t *testing.T) {
	tab, err := Cancer(60000, 6) // large n for tight calibration checks
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 12 {
		t.Errorf("columns = %d, want 12", tab.NumCols())
	}
	ans, err := query.Run(context.Background(), mem.New(tab), CancerQuery())
	if err != nil {
		t.Fatal(err)
	}
	byLC := map[string]float64{}
	for _, r := range ans.Rows {
		byLC[r.Treatment] = r.Avgs[0]
	}
	// Paper: 0.60 / 0.77.
	if math.Abs(byLC["0"]-0.60) > 0.02 {
		t.Errorf("avg(CA | LC=0) = %v, want ≈0.60", byLC["0"])
	}
	if math.Abs(byLC["1"]-0.77) > 0.02 {
		t.Errorf("avg(CA | LC=1) = %v, want ≈0.77", byLC["1"])
	}
	// Total effect via adjustment on the true parents {Smoking, Genetics}:
	// paper reports 0.61 / 0.76.
	rw, err := query.RewriteTotal(context.Background(), mem.New(tab), CancerQuery(), []string{"Smoking", "Genetics"})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := rw.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comps[0].Avg0[0]-0.604) > 0.02 || math.Abs(comps[0].Avg1[0]-0.754) > 0.02 {
		t.Errorf("adjusted answers (%v,%v), want ≈(0.60,0.75)", comps[0].Avg0[0], comps[0].Avg1[0])
	}
	// Direct effect via mediators {Attention_Disorder, Fatigue} is ≈ 0
	// (no Lung_Cancer → Car_Accident edge in Fig 7).
	rwd, err := query.RewriteDirect(context.Background(), mem.New(tab), CancerQuery(),
		[]string{"Smoking", "Genetics"}, []string{"Attention_Disorder", "Fatigue"}, "")
	if err != nil {
		t.Fatal(err)
	}
	dcomps, err := rwd.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dcomps[0].Diffs[0]) > 0.02 {
		t.Errorf("direct effect = %v, want ≈0", dcomps[0].Diffs[0])
	}
}

func TestCancerGroundTruthNet(t *testing.T) {
	bn, err := CancerNet()
	if err != nil {
		t.Fatal(err)
	}
	parents, err := bn.TrueParents("Lung_Cancer")
	if err != nil {
		t.Fatal(err)
	}
	if len(parents) != 2 {
		t.Errorf("PA(Lung_Cancer) = %v, want {Smoking, Genetics}", parents)
	}
	parents, err = bn.TrueParents("Car_Accident")
	if err != nil {
		t.Fatal(err)
	}
	if len(parents) != 2 {
		t.Errorf("PA(Car_Accident) = %v, want {Attention_Disorder, Fatigue}", parents)
	}
}

func TestRandomSpecDefaults(t *testing.T) {
	tab, bn, err := Random(RandomSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 10000 || tab.NumCols() != 8 {
		t.Errorf("default shape %dx%d, want 10000x8", tab.NumRows(), tab.NumCols())
	}
	if bn.G.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", bn.G.NumNodes())
	}
	for _, card := range bn.Cards {
		if card < 2 {
			t.Errorf("card %d below 2", card)
		}
	}
}

func TestRandomReproducible(t *testing.T) {
	t1, _, err := Random(RandomSpec{Nodes: 8, Rows: 500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Random(RandomSpec{Nodes: 8, Rows: 500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range t1.Columns() {
		c1, _ := t1.Column(name)
		c2, _ := t2.Column(name)
		for i := 0; i < t1.NumRows(); i++ {
			if c1.Value(i) != c2.Value(i) {
				t.Fatalf("column %s row %d differs across same-seed runs", name, i)
			}
		}
	}
}

func TestGeneratorsRegistry(t *testing.T) {
	gens := Generators()
	if len(gens) != 5 {
		t.Fatalf("generators = %d, want 5", len(gens))
	}
	for _, g := range gens {
		rows := g.DefaultRows
		if rows > 3000 {
			rows = 3000
		}
		tab, err := g.Generate(rows, 9)
		if err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		if tab.NumRows() == 0 {
			t.Errorf("%s: empty table", g.Name)
		}
	}
	if _, err := Lookup("flight"); err != nil {
		t.Errorf("Lookup(flight): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}
