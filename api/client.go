package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a typed HTTP client for a hypdbd server.
//
//	c := api.NewClient("http://localhost:8080", nil,
//		api.WithToken(token), api.WithRetry(3))
//	info, err := c.CreateDataset(ctx, "flights", csvText)
//	report, err := c.Analyze(ctx, api.AnalyzeRequest{Dataset: "flights", ...})
//
// Failures coming from the service are returned as *Error values carrying
// the HTTP status and the service's error code; 429/503 errors also carry
// the server's Retry-After hint (Error.RetryAfter).
type Client struct {
	baseURL string
	hc      *http.Client
	token   string
	// retries > 0 enables the opt-in shed-retry loop (WithRetry).
	retries   int
	retryBase time.Duration
	// sleep is swapped out by tests to observe backoff without waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithToken makes every request carry the bearer token in its
// Authorization header — required against servers running with -token.
func WithToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithRetry makes the client retry requests the server shed with 429
// rate_limited or 503 overloaded/shutting-down responses, up to max extra
// attempts. The wait before each retry honors the server's Retry-After
// hint when one is present, and otherwise doubles from 100ms up to a 5s
// cap, always with ±50% jitter — the same capped-doubling shape as the
// remote-shard transport's backoff. Waits respect the request context.
// Only shed responses are retried: the request never executed, so the
// retry is safe for every endpoint including appends.
func WithRetry(max int) ClientOption {
	return func(c *Client) { c.retries = max }
}

// NewClient creates a client for the server at baseURL (scheme and host,
// e.g. "http://localhost:8080"). A nil httpClient uses DefaultHTTPClient —
// an http.Client with connection and overall request timeouts, unlike
// http.DefaultClient, so a hung peer cannot block a caller forever even
// when the context carries no deadline. Context deadlines still apply and
// win whenever they are stricter than the client's own timeout.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = DefaultHTTPClient()
	}
	c := &Client{
		baseURL:   strings.TrimRight(baseURL, "/"),
		hc:        httpClient,
		retryBase: 100 * time.Millisecond,
		sleep:     sleepCtx,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// DefaultHTTPClient returns the http.Client NewClient falls back to when
// given nil: 10s dial and TLS handshake timeouts, a 30s
// response-header timeout, and a 15-minute overall request timeout — long
// enough for a heavyweight audit over a large dataset, short enough that a
// wedged server eventually surfaces as an error. Note http.Client.Timeout
// is an upper bound: a context with a LONGER deadline does not extend it,
// so callers running longer-than-15-minute requests should pass their own
// client.
func DefaultHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 15 * time.Minute,
		Transport: &http.Transport{
			Proxy:                 http.ProxyFromEnvironment,
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConns:          100,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// CreateDataset uploads CSV text as a new named dataset.
func (c *Client) CreateDataset(ctx context.Context, name, csv string) (*DatasetInfo, error) {
	var out DatasetInfo
	err := c.do(ctx, http.MethodPost, "/v1/datasets", CreateDatasetRequest{Name: name, CSV: csv}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateShardedDataset uploads CSV text as a new dataset served by the
// partition-parallel sharded backend with the given number of horizontal
// partitions; the dataset accepts Append. shards <= 1 falls back to the
// server's default (-shards) or the plain in-memory backend.
func (c *Client) CreateShardedDataset(ctx context.Context, name, csv string, shards int) (*DatasetInfo, error) {
	var out DatasetInfo
	err := c.do(ctx, http.MethodPost, "/v1/datasets",
		CreateDatasetRequest{Name: name, CSV: csv, Shards: shards}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateSQLDataset registers a dataset served directly by a SQL database:
// the server opens the database/sql driver with the DSN and pushes the
// engine's group-by count queries down to table. The driver must be
// compiled into the server binary.
func (c *Client) CreateSQLDataset(ctx context.Context, name, driver, dsn, table string) (*DatasetInfo, error) {
	var out DatasetInfo
	err := c.do(ctx, http.MethodPost, "/v1/datasets",
		CreateDatasetRequest{Name: name, Driver: driver, DSN: dsn, SQLTable: table}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists the server's datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var out DatasetList
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// DeleteDataset drops a dataset and its analysis caches.
func (c *Client) DeleteDataset(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/datasets/"+url.PathEscape(name), nil, nil)
}

// Stats fetches a dataset's schema, size and cache counters.
func (c *Client) Stats(ctx context.Context, name string) (*DatasetStats, error) {
	var out DatasetStats
	err := c.do(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(name)+"/stats", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Append streams rows into a sharded dataset (one string per attribute,
// schema order). Unsharded datasets answer with CodeNotAppendable.
func (c *Client) Append(ctx context.Context, name string, rows [][]string) (*AppendResponse, error) {
	var out AppendResponse
	err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(name)+"/append",
		AppendRequest{Rows: rows}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze runs the full pipeline on one query.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*Report, error) {
	var out Report
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyzeBatch runs a batch of queries over the dataset session's worker
// pool; reports align with the request's query order. The server isolates
// per-query failures; this method keeps the all-or-nothing contract by
// returning the first query's error when any item failed — use
// AnalyzeBatchSettled to get the partial results alongside the errors.
func (c *Client) AnalyzeBatch(ctx context.Context, req BatchRequest) ([]*Report, error) {
	reports, errs, err := c.AnalyzeBatchSettled(ctx, req)
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return reports, nil
}

// AnalyzeBatchSettled runs a batch of queries with per-item error
// isolation: reports and errs both align with the request's query order,
// and exactly one of reports[i] / errs[i] is set per query. The returned
// error covers transport and whole-request failures only.
func (c *Client) AnalyzeBatchSettled(ctx context.Context, req BatchRequest) (reports []*Report, errs []*Error, err error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/analyze/batch", req, &out); err != nil {
		return nil, nil, err
	}
	if out.Errors == nil {
		out.Errors = make([]*Error, len(out.Reports))
	}
	return out.Reports, out.Errors, nil
}

// Audit sweeps a dataset's (treatment, outcome) query lattice for bias and
// returns the biased queries ranked by effect-reversal strength and
// significance, with the full pruning accountability.
func (c *Client) Audit(ctx context.Context, req AuditRequest) (*AuditReport, error) {
	var out AuditReport
	if err := c.do(ctx, http.MethodPost, "/v1/audit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shutdown asks the server to begin a graceful shutdown (drain, then
// exit). Requires operator scope on servers running with auth tokens, and
// the endpoint must be enabled server-side.
func (c *Client) Shutdown(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/shutdown", nil, nil)
}

// Health probes liveness.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the service-wide counters.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var out Metrics
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches GET /metrics: the same counters as Metrics rendered
// in the Prometheus text exposition format, returned verbatim. Failures
// decode into *Error like every other endpoint.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("api: building request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("api: GET /metrics: %w", err)
	}
	defer func() {
		drain(resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return "", decodeError(resp)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", fmt.Errorf("api: reading /metrics response: %w", err)
	}
	return string(raw), nil
}

// do performs one JSON round trip, retrying shed (429/503) responses when
// WithRetry enabled it. Non-2xx responses decode the error envelope into
// *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var buf []byte
	if in != nil {
		var err error
		if buf, err = json.Marshal(in); err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.doOnce(ctx, method, path, buf, in != nil, out)
		if lastErr == nil || attempt >= c.retries || !shedErr(lastErr) {
			return lastErr
		}
		var apiErr *Error
		errors.As(lastErr, &apiErr)
		if err := c.sleep(ctx, retryDelay(c.retryBase, attempt, apiErr.RetryAfter())); err != nil {
			return lastErr
		}
	}
}

// doOnce performs a single attempt of one JSON round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, buf []byte, hasBody bool, out any) error {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	// Always drain the body before closing: a connection with unread bytes
	// is torn down instead of returned to the keep-alive pool, which would
	// turn every hot-path counts call into a fresh TCP (and TLS) handshake.
	defer func() {
		drain(resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// shedErr reports whether an error is a shed response worth retrying: the
// server refused admission (429 rate limit, 503 overload or drain), so
// the request never executed and a retry is safe.
func shedErr(err error) bool {
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == http.StatusTooManyRequests ||
		apiErr.Status == http.StatusServiceUnavailable
}

// retryDelay computes the wait before retry attempt (0-based): the
// server's Retry-After hint when present, otherwise doubling from base
// with a 5s cap — never a blind shift, which overflows for large attempt
// counts — and ±50% jitter either way so synchronized clients do not
// re-stampede the server on the same tick.
func retryDelay(base time.Duration, attempt int, hint time.Duration) time.Duration {
	const maxDelay = 5 * time.Second
	d := hint
	if d <= 0 {
		d = base
		for i := 0; i < attempt && d < maxDelay; i++ {
			d *= 2
		}
	}
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// sleepCtx waits out d, honoring cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain discards what remains of a response body, capped so a hostile or
// broken server cannot make us read unbounded garbage just to save a
// connection. Past the cap the connection is sacrificed (Close discards it).
func drain(body io.Reader) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20)) //nolint:errcheck
}

// decodeError turns a failure response into an *Error, synthesizing one
// when the body is not the service's envelope (e.g. a proxy page). The
// Retry-After header (whole seconds) fills RetryAfterSeconds when the
// envelope itself did not carry the hint, so shed responses surface their
// backoff hint no matter which channel delivered it.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	apiErr := &Error{Status: resp.StatusCode, Code: CodeInternal}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		apiErr = env.Error
		apiErr.Status = resp.StatusCode
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
		if apiErr.Message == "" {
			apiErr.Message = resp.Status
		}
	}
	if apiErr.RetryAfterSeconds <= 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				apiErr.RetryAfterSeconds = float64(secs)
			}
		}
	}
	return apiErr
}
