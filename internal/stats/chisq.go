package stats

import (
	"fmt"
	"math"
)

// The chi-squared machinery below supports the parametric G-test the paper
// uses when sample sizes are large enough (Sec 6, "Hybrid independent
// test"): the statistic G = 2·n·Î(X;Y|Z) is asymptotically χ² with
// df = (|Π_X|−1)(|Π_Y|−1)·|Π_Z| degrees of freedom.

// ChiSquareSurvival returns P(χ²_df ≥ x), the p-value of a chi-squared test
// with statistic x and df degrees of freedom.
func ChiSquareSurvival(x float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square with df = %v", df)
	}
	if x <= 0 {
		return 1, nil
	}
	return regIncGammaQ(df/2, x/2)
}

// ChiSquareCDF returns P(χ²_df ≤ x).
func ChiSquareCDF(x float64, df float64) (float64, error) {
	s, err := ChiSquareSurvival(x, df)
	if err != nil {
		return 0, err
	}
	return 1 - s, nil
}

// GTestPValue returns the G-test p-value for an estimated (conditional)
// mutual information mi measured on n samples with the given degrees of
// freedom. A negative mi (possible under Miller-Madow) is clamped to zero.
func GTestPValue(mi float64, n int, df int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: G-test on %d samples", n)
	}
	if df <= 0 {
		// A degenerate table (some attribute is constant) carries no
		// evidence of dependence.
		return 1, nil
	}
	g := 2 * float64(n) * mi
	if g < 0 {
		g = 0
	}
	return ChiSquareSurvival(g, float64(df))
}

const (
	// gammaMaxIter must accommodate large shape parameters: the series for
	// P(a,x) with x ≈ a (huge-df chi-squared tests on high-cardinality
	// attributes) needs O(√a) terms to converge.
	gammaMaxIter = 100000
	gammaEps     = 3e-14
	gammaFPMin   = 1e-300
)

// regIncGammaP computes the regularized lower incomplete gamma P(a,x).
func regIncGammaP(a, x float64) (float64, error) {
	if x < 0 || a <= 0 {
		return 0, fmt.Errorf("stats: incomplete gamma with a=%v x=%v", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// regIncGammaQ computes the regularized upper incomplete gamma Q(a,x)=1−P(a,x).
func regIncGammaQ(a, x float64) (float64, error) {
	if x < 0 || a <= 0 {
		return 0, fmt.Errorf("stats: incomplete gamma with a=%v x=%v", a, x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: gamma series failed to converge (a=%v, x=%v)", a, x)
}

// gammaContinuedFraction evaluates Q(a,x) by the Lentz continued fraction
// (x ≥ a+1).
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: gamma continued fraction failed to converge (a=%v, x=%v)", a, x)
}

// BinomialCI returns the 95%% normal-approximation confidence half-width for
// an observed proportion p over m trials: 1.96·√(p(1−p)/m), as used on line
// 13 of Alg 2 for the permutation-test p-value.
func BinomialCI(p float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(m))
}

// MeanVariance returns the sample mean and (population) variance of xs.
func MeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

// LinearRegression fits y = a + b·x by least squares and returns the
// intercept a, slope b, and the coefficient of determination R². It is used
// by the key-attribute detector, which regresses sample entropy on
// log(sample size) (Sec 4). At least two distinct x values are required.
func LinearRegression(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: regression needs ≥2 paired points, got %d/%d", len(x), len(y))
	}
	mx, vx := MeanVariance(x)
	my, _ := MeanVariance(y)
	if vx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: regression with constant x")
	}
	cov := 0.0
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
	}
	cov /= float64(len(x))
	b = cov / vx
	a = my - b*mx
	ssRes, ssTot := 0.0, 0.0
	for i := range x {
		fit := a + b*x[i]
		ssRes += (y[i] - fit) * (y[i] - fit)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		// y constant: a perfect (if trivial) fit.
		return a, b, 1, nil
	}
	return a, b, 1 - ssRes/ssTot, nil
}
