package hypdb

import (
	"context"
	"database/sql"
	"fmt"
	"strings"
	"sync"
	"time"

	"hypdb/internal/core"
	"hypdb/internal/countcache"
	"hypdb/internal/dataset"
	"hypdb/internal/query"
	"hypdb/source"
	"hypdb/source/mem"
	"hypdb/source/remote"
	"hypdb/source/sharded"
	"hypdb/source/sqldb"
)

// DB is a long-lived, concurrency-safe session handle over one relation. It
// owns the cross-query analysis state the paper's interactive-latency
// optimizations (Sec 6) call for: covariate-discovery results are memoized
// per (backend, selection, target, candidates, config), so repeated and
// batched queries skip the dominant CD cost entirely. All methods are safe
// for concurrent use; the underlying data is treated as immutable.
//
// The relation behind a handle is a source.Relation: Open and OpenCSV wrap
// an in-memory table (the mem backend), OpenSQL speaks to a database/sql
// database with count pushdown (the sqldb backend), and OpenSource accepts
// any custom backend. Handles over resource-holding backends must be
// released with Close.
//
// Every long-running method takes a context.Context and returns ctx.Err()
// (wrapped) promptly after cancellation — the Monte-Carlo permutation
// loops, the Markov-boundary search and the CD subset enumerations all
// check it.
type DB struct {
	rel source.Relation

	closeOnce sync.Once
	closeErr  error

	mu sync.Mutex
	cd map[string]*cdEntry
	// stats counters, guarded by mu.
	cdComputes int
	cdHits     int
	// batch-planner state, guarded by mu.
	planStats PlannerStats
	lastPlan  *Plan

	// planMu guards the demand-coalescing gates of the batch planner
	// (separate from mu: a leader holds a gate open across a sleep).
	// planWindow is zero by default — requests plan immediately; the
	// server raises it (SetPlanWindow) for cross-request coalescing.
	planMu     sync.Mutex
	planGates  map[string]*planGate
	planWindow time.Duration
}

// cdEntry is a single-flight memoization slot: the first caller computes,
// concurrent callers wait on done. Failed computations are evicted before
// done is closed so later calls retry.
type cdEntry struct {
	done chan struct{}
	res  *core.CDResult
	err  error
}

// Stats reports the session's cache activity. CDComputes counts covariate
// discoveries actually executed; CDHits counts calls answered from the
// memoized result (including waits on an in-flight computation). Planner
// aggregates the batch planner's cuboid selection and round-trip savings.
type Stats struct {
	CDComputes int
	CDHits     int
	Planner    PlannerStats
}

// OpenOption configures Open and OpenCSV. The zero set of options keeps
// the historical behavior: one in-memory relation, no sharding.
type OpenOption func(*openConfig)

type openConfig struct {
	shards     int
	remotes    []string
	remoteOpts remote.Options
	degraded   bool
}

// WithShards opens the table behind the partition-parallel sharded backend
// with n horizontal partitions: group-by counts fan out to the shards
// concurrently and merge under one shared dictionary, and the handle
// supports streaming Append with versioned snapshots. n < 2 keeps the
// plain in-memory backend. Shard coding is seeded from the table's own
// dictionaries, so every count, code and conclusion is byte-identical to
// the unsharded backend.
func WithShards(n int) OpenOption {
	return func(c *openConfig) { c.shards = n }
}

// WithRemoteShards names the hypdbd peers whose copies of the dataset form
// the shards of an OpenRemote session — one source/remote child per base
// URL, fanned out by the sharded coordinator under one global dictionary.
// Each spec is "url" or "url@token": the suffix after the last '@' is a
// per-peer bearer token attached to every request that peer sees (the
// handshake, counts calls, and health probes), so token-protected peers
// can be mounted; it overrides WithRemoteOptions' Token for that peer.
// Peer URLs therefore must not themselves contain '@'. Repeated options
// accumulate. Ignored by Open/OpenCSV.
func WithRemoteShards(urls ...string) OpenOption {
	return func(c *openConfig) { c.remotes = append(c.remotes, urls...) }
}

// splitPeerSpec splits a WithRemoteShards "url[@token]" peer spec. The
// token is everything after the last '@' so it may itself contain '@';
// specs without one return an empty token.
func splitPeerSpec(spec string) (url, token string) {
	if i := strings.LastIndexByte(spec, '@'); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return spec, ""
}

// WithRemoteOptions tunes the remote-shard transport (per-attempt request
// timeouts, retry budget and backoff, health-probe interval) for every
// peer of an OpenRemote session. The default is remote.Options' zero
// value, i.e. the package defaults. Ignored by Open/OpenCSV.
func WithRemoteOptions(o remote.Options) OpenOption {
	return func(c *openConfig) { c.remoteOpts = o }
}

// WithDegradedReads lets an OpenRemote session keep answering when a peer
// is down: a shard failing as unreachable (ErrPeerUnavailable) is skipped
// and the surviving shards answer alone, with every affected Report or
// AuditReport marked Degraded — partial counts, treat as stale. Without
// this option (the default) a lost peer fails the read with a typed error.
// Version skew (ErrVersionSkew) always fails closed, degraded or not.
// Ignored by Open/OpenCSV.
func WithDegradedReads() OpenOption {
	return func(c *openConfig) { c.degraded = true }
}

// Open creates a session handle over an in-memory table (the mem backend,
// or the sharded backend under WithShards). The table must not be mutated
// afterwards — use Append for growth. Close is a no-op for in-memory
// handles but is always safe to call.
func Open(t *Table, opts ...OpenOption) *DB {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards > 1 {
		if sh, err := sharded.Partition(t, "D", cfg.shards); err == nil {
			return OpenSource(sh)
		}
		// Partitioning can only fail on a malformed table; serve it
		// unsharded rather than failing an error-free constructor.
	}
	return OpenSource(mem.New(t))
}

// OpenCSV creates a session handle over a CSV file (header row required;
// all values treated as categorical).
func OpenCSV(path string, opts ...OpenOption) (*DB, error) {
	t, err := dataset.ReadCSVFile(path)
	if err != nil {
		return nil, err
	}
	return Open(t, opts...), nil
}

// OpenSource creates a session handle over any storage backend implementing
// source.Relation. If the relation implements source.Closer, the handle
// takes ownership: Close releases it.
//
// The handle interposes the dense count cache (internal/countcache): every
// unpredicated group-by count is memoized as a flat OLAP-cube view, and
// requests over attribute subsets are answered by marginalizing the
// smallest cached superset view instead of re-scanning (mem) or re-querying
// (SQL) the backend.
func OpenSource(rel source.Relation) *DB {
	return &DB{
		rel: countcache.Wrap(rel, 0),
		cd:  make(map[string]*cdEntry),
	}
}

// OpenRemote creates a session handle over a dataset served by remote
// hypdbd peers: one source/remote child is opened per WithRemoteShards URL
// (each pinned to the peer's current snapshot version by the registration
// handshake), and the sharded coordinator reconciles their dictionaries
// into one global coding — a cluster of hypdbd nodes serving one logical
// catalog. The handle owns the children; Close releases them (stopping
// their health-check loops).
//
// Reads fail with ErrPeerUnavailable when a peer is down (or, under
// WithDegradedReads, degrade to the surviving shards and mark reports
// stale) and with ErrVersionSkew when a peer's dataset moved to another
// snapshot version — never a hang, never a mixed-epoch result. The context
// bounds the registration handshakes.
func OpenRemote(ctx context.Context, name string, opts ...OpenOption) (*DB, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.remotes) == 0 {
		return nil, fmt.Errorf("hypdb: OpenRemote needs at least one peer URL (WithRemoteShards)")
	}
	children := make([]source.Relation, 0, len(cfg.remotes))
	closeAll := func() {
		for _, c := range children {
			if cl, ok := c.(source.Closer); ok {
				cl.Close() //nolint:errcheck // best-effort teardown on a failed open
			}
		}
	}
	for _, spec := range cfg.remotes {
		u, tok := splitPeerSpec(spec)
		o := cfg.remoteOpts
		if tok != "" {
			o.Token = tok
		}
		child, err := remote.Open(ctx, u, name, o)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("hypdb: opening remote shard %s: %w", u, err)
		}
		children = append(children, child)
	}
	sh, err := sharded.New(ctx, name, children)
	if err != nil {
		closeAll()
		return nil, err
	}
	sh.SetDegradedReads(cfg.degraded)
	return OpenSource(sh), nil
}

// RemotePeers reports the transport counters of every remote shard behind
// an OpenRemote session — per-peer health, pinned version, request/retry/
// error counts and round-trip times — and nil for sessions with no remote
// children.
func (db *DB) RemotePeers() []remote.PeerStats {
	rel := db.rel
	if c, ok := rel.(*countcache.Relation); ok {
		rel = c.Inner()
	}
	ch, ok := rel.(interface{ Children() []source.Relation })
	if !ok {
		return nil
	}
	var out []remote.PeerStats
	for _, c := range ch.Children() {
		if r, ok := c.(*remote.Relation); ok {
			out = append(out, r.Stats())
		}
	}
	return out
}

// DegradedServes reports how many reads the session's storage layer has
// served degraded — answered by the surviving shards after skipping an
// unavailable peer under WithDegradedReads. Zero for backends without
// degraded reads. Surfaced per dataset in /v1/metrics and /metrics.
func (db *DB) DegradedServes() uint64 { return db.degradedServes() }

// degradedServes reads the storage layer's degraded-serve counter (zero
// for backends without degraded reads). Comparing it before and after a
// pipeline run tells whether that run may have read partial counts; the
// check is conservative — a concurrent call's degraded read can mark this
// one's report stale — which errs on the side of flagging.
func (db *DB) degradedServes() uint64 {
	rel := db.rel
	if c, ok := rel.(*countcache.Relation); ok {
		rel = c.Inner()
	}
	if d, ok := rel.(interface{ DegradedServes() uint64 }); ok {
		return d.DegradedServes()
	}
	return 0
}

// OpenSQL creates a session handle over one table of a database/sql
// database (the sqldb backend): the engine's group-by count queries are
// pushed down to the database. The handle takes ownership of db — Close
// (or the server's dataset teardown) closes it. The context bounds the
// initial schema probe.
func OpenSQL(ctx context.Context, db *sql.DB, table string) (*DB, error) {
	rel, err := sqldb.Open(ctx, db, table)
	if err != nil {
		return nil, err
	}
	return OpenSource(rel), nil
}

// Close releases the handle's backend resources (for SQL-backed handles,
// the *sql.DB and its statements). It is safe to call more than once and
// on in-memory handles, where it is a no-op. Methods must not be called
// after Close.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		if c, ok := db.rel.(source.Closer); ok {
			db.closeErr = c.Close()
		}
	})
	return db.closeErr
}

// Relation returns the session's underlying storage relation.
func (db *DB) Relation() source.Relation { return db.rel }

// view returns the relation one API call's backend reads go through. Over
// a versioned (appendable) backend it is pinned to the current snapshot,
// so a concurrent Append can never mix epochs inside one analysis: the
// whole call — covariate discovery, permutation tests, rewritings — sees
// the rows and dictionaries of the moment it started. Over immutable
// backends it is the session relation itself (pinning is free there).
func (db *DB) view() source.Relation {
	if c, ok := db.rel.(*countcache.Relation); ok {
		return c.Pin()
	}
	return db.rel
}

// Append ingests rows (one string per attribute, schema order) into the
// session's relation. Only appendable backends — e.g. sharded ones opened
// with WithShards — accept it; others return ErrNotAppendable. The rows
// become a new delta partition under a new snapshot version: in-flight
// analyses keep their pinned snapshot, and primed count-cache views are
// upgraded in place by tabulating only the delta, so the next query does
// not re-scan the backend.
func (db *DB) Append(ctx context.Context, rows [][]string) (*AppendResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a, ok := db.rel.(source.Appender); ok {
		return a.Append(ctx, rows)
	}
	return nil, fmt.Errorf("hypdb: %s: %w", db.rel.Name(), ErrNotAppendable)
}

// ShardInfo describes a sharded session's partition and snapshot state.
type ShardInfo struct {
	// Shards is the current number of horizontal partitions (including
	// delta partitions admitted by Append).
	Shards int
	// Version is the current snapshot version; it starts at 1 and
	// increments with every non-empty Append — and with every degraded
	// (partial) serve, so counts read with a shard missing are never
	// version-matched by later analyses.
	Version uint64
}

// ShardInfo reports the sharding state of the session's backend, and
// whether the backend is sharded at all.
func (db *DB) ShardInfo() (ShardInfo, bool) {
	rel := db.rel
	if c, ok := rel.(*countcache.Relation); ok {
		rel = c.Inner()
	}
	s, ok := rel.(interface {
		NumPartitions() int
		SnapshotVersion() uint64
	})
	if !ok {
		return ShardInfo{}, false
	}
	return ShardInfo{Shards: s.NumPartitions(), Version: s.SnapshotVersion()}, true
}

// Table returns the session's in-memory table when the handle was opened
// over one (Open/OpenCSV), and nil for other backends. Treat it as
// read-only: the analysis caches assume the data never changes.
//
// Deprecated: prefer Relation; Table exists for callers that predate
// pluggable backends.
func (db *DB) Table() *Table {
	rel := db.rel
	if c, ok := rel.(*countcache.Relation); ok {
		rel = c.Inner()
	}
	if m, ok := rel.(*mem.Relation); ok {
		return m.Table()
	}
	return nil
}

// AttributeInfo describes one attribute of the session's relation.
type AttributeInfo struct {
	// Name is the column name.
	Name string
	// Distinct is the active-domain size (dictionary cardinality).
	Distinct int
}

// Attributes lists the relation's attributes in schema order with their
// active-domain sizes — the schema surface a service or UI shows before the
// analyst picks treatments and outcomes. For SQL backends this may issue
// one SELECT DISTINCT per attribute (cached on the handle).
func (db *DB) Attributes(ctx context.Context) ([]AttributeInfo, error) {
	names := db.rel.Attributes()
	out := make([]AttributeInfo, 0, len(names))
	for _, n := range names {
		card, err := source.Card(ctx, db.rel, n)
		if err != nil {
			return nil, err
		}
		out = append(out, AttributeInfo{Name: n, Distinct: card})
	}
	return out, nil
}

// NumRows returns the relation's row count.
func (db *DB) NumRows(ctx context.Context) (int, error) { return db.rel.NumRows(ctx) }

// Stats returns a snapshot of the session's cache counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{CDComputes: db.cdComputes, CDHits: db.cdHits, Planner: db.planStats}
}

// ResetCache drops all memoized analysis state and zeroes the counters.
func (db *DB) ResetCache() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.cd = make(map[string]*cdEntry)
	db.cdComputes, db.cdHits = 0, 0
	db.planStats = PlannerStats{}
	db.lastPlan = nil
}

// Analyze runs the full HypDB pipeline — detect, explain, resolve — on a
// query, sharing covariate-discovery results with every other call on this
// handle.
func (db *DB) Analyze(ctx context.Context, q Query, opts ...Option) (*Report, error) {
	return db.analyze(ctx, q, newSettings(opts))
}

// analyze is Analyze over resolved settings — AnalyzeAll calls it per
// query so the batch planner can vary the priming mode (settings.opts.
// SkipPrime) per query without re-resolving options.
func (db *DB) analyze(ctx context.Context, q Query, st settings) (*Report, error) {
	o := st.opts
	// Sample the degraded-serve counter before pinning: a concurrent
	// degraded read that lands between the pin and the sample may leave
	// partial counts in the cache under the version this call pins, so the
	// window in which a skip marks this report must open first.
	before := db.degradedServes()
	rel := db.view()
	// A caller-supplied Discover hook (via WithOptions) wins over the
	// session memoizer, and queries whose WHERE clause has no canonical
	// encoding bypass the cache: both run uncached rather than risking a
	// wrong shared entry. The memo key leads with the pinned backend
	// identity, which embeds the snapshot version — results computed on one
	// epoch are never served to another.
	if o.Discover == nil {
		if whereKey, cacheable := whereKeyOf(q); cacheable {
			o.Discover = db.discoverFunc(rel.Backend(), whereKey)
		}
	}
	rep, err := core.Analyze(ctx, rel, q, o)
	if err == nil && db.degradedServes() > before {
		rep.Degraded = true
	}
	return rep, err
}

// AnalyzeAll analyzes a batch of queries over a worker pool (WithWorkers
// bounds it; default GOMAXPROCS). The reports align with the input order.
// The first failure cancels the remaining work and is returned alongside
// whatever completed; the cache makes overlapping queries in one batch pay
// for covariate discovery once.
//
// Unless WithPlanner(false), the batch's count demands are first routed
// through the lattice-aware multi-query planner: one cuboid frontier is
// primed into the session count cache (coalescing with concurrent Audit
// and batch calls on this handle) and queries the plan covers skip their
// per-closure priming — fewer backend round trips, byte-identical counts.
func (db *DB) AnalyzeAll(ctx context.Context, queries []Query, opts ...Option) ([]*Report, error) {
	st := newSettings(opts)
	reports := make([]*Report, len(queries))
	if len(queries) == 0 {
		return reports, nil
	}
	planned := make([]bool, len(queries))
	if !st.noPlanner {
		rel := db.view()
		demands, demandQuery := analyzeDemands(ctx, rel, queries)
		if p, off := db.planBatch(ctx, rel, demands, st); p != nil {
			planned = plannedQueries(p, off, demandQuery, len(queries))
		}
	}
	err := core.RunPool(ctx, len(queries), st.workers, func(ctx context.Context, i int) error {
		stq := st
		stq.opts.SkipPrime = planned[i]
		rep, err := db.analyze(ctx, queries[i], stq)
		if err != nil {
			return fmt.Errorf("hypdb: query %d: %w", i, err)
		}
		reports[i] = rep
		return nil
	})
	return reports, err
}

// AnalyzeAllSettled analyzes a batch like AnalyzeAll but isolates
// failures: one query's error never cancels its siblings. Reports and
// errors both align with the input order, exactly one of reports[i] /
// errs[i] is non-nil per query, and the call itself only fails on ctx
// cancellation. The server's batch endpoint uses it to return per-item
// error entries instead of failing a whole mixed batch.
func (db *DB) AnalyzeAllSettled(ctx context.Context, queries []Query, opts ...Option) (reports []*Report, errs []error) {
	st := newSettings(opts)
	reports = make([]*Report, len(queries))
	errs = make([]error, len(queries))
	if len(queries) == 0 {
		return reports, errs
	}
	planned := make([]bool, len(queries))
	if !st.noPlanner {
		rel := db.view()
		demands, demandQuery := analyzeDemands(ctx, rel, queries)
		if p, off := db.planBatch(ctx, rel, demands, st); p != nil {
			planned = plannedQueries(p, off, demandQuery, len(queries))
		}
	}
	// Workers swallow per-query failures into errs, so RunPool's
	// first-error cancellation never fires for them — only a cancelled
	// context stops the batch, and then every unfinished query reports it.
	_ = core.RunPool(ctx, len(queries), st.workers, func(ctx context.Context, i int) error {
		stq := st
		stq.opts.SkipPrime = planned[i]
		reports[i], errs[i] = db.analyze(ctx, queries[i], stq)
		return nil
	})
	for i := range errs {
		if reports[i] == nil && errs[i] == nil {
			errs[i] = ctx.Err()
		}
	}
	return reports, errs
}

// Run executes the (possibly biased) query as written.
func (db *DB) Run(ctx context.Context, q Query) (*Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return query.Run(ctx, db.view(), q)
}

// RewriteTotal executes the bias-removing rewriting for the total effect
// (adjustment formula, Eq 2) over the given covariates.
func (db *DB) RewriteTotal(ctx context.Context, q Query, covariates []string) (*Rewritten, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return query.RewriteTotal(ctx, db.view(), q, covariates)
}

// RewriteDirect executes the natural-direct-effect rewriting (mediator
// formula, Eq 3) over covariates and mediators. WithBaseline fixes the
// treatment value whose mediator distribution is held constant (default:
// the smallest).
func (db *DB) RewriteDirect(ctx context.Context, q Query, covariates, mediators []string, opts ...Option) (*Rewritten, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := newSettings(opts)
	return query.RewriteDirect(ctx, db.view(), q, covariates, mediators, st.opts.Baseline)
}

// DiscoverCovariates runs the CD algorithm for a treatment over candidate
// attributes, memoized on the session; outcomes are excluded from the
// fallback covariate set.
func (db *DB) DiscoverCovariates(ctx context.Context, treatment string, candidates, outcomes []string, opts ...Option) (*CDResult, error) {
	st := newSettings(opts)
	rel := db.view()
	return db.discoverCached(ctx, rel.Backend(), "", rel, treatment, candidates, outcomes, st.opts.Config)
}

// DetectBias tests, per query context, whether the treatment groups are
// balanced with respect to the given variable set.
func (db *DB) DetectBias(ctx context.Context, treatment string, groupings, variables []string, opts ...Option) ([]BiasResult, error) {
	st := newSettings(opts)
	return core.DetectBias(ctx, db.view(), treatment, groupings, variables, st.opts.Config)
}

// EffectBounds adjusts for every subset of the candidate covariates (up to
// WithMaxAdjustmentSize) and reports the range of effect estimates — the
// Sec 4 extension for treatments whose parents cannot be identified.
func (db *DB) EffectBounds(ctx context.Context, q Query, candidates []string, opts ...Option) (*BoundsResult, error) {
	st := newSettings(opts)
	return core.EffectBounds(ctx, db.view(), q, candidates, st.maxAdjust)
}

// ---------------------------------------------------------------------------
// Cross-query covariate-discovery cache

// discoverFunc builds the core.Options.Discover hook for one query: the
// pipeline's CD calls route through the session cache, keyed by the
// calling view's backend identity (which embeds the snapshot version for
// versioned backends) and the query's WHERE clause (the view CD runs on
// is determined by it).
func (db *DB) discoverFunc(backendKey, whereKey string) func(context.Context, source.Relation, string, []string, []string, core.Config) (*core.CDResult, error) {
	return func(ctx context.Context, view source.Relation, target string, candidates, outcomes []string, cfg core.Config) (*core.CDResult, error) {
		return db.discoverCached(ctx, backendKey, whereKey, view, target, candidates, outcomes, cfg)
	}
}

// discoverCached memoizes DiscoverCovariates per (backend, whereKey,
// target, candidates, outcomes, config). Concurrent callers of the same
// key share one computation (single-flight); errors are not cached — a
// waiter whose leader failed retries with its own context rather than
// inheriting an error (e.g. the leader's cancellation) that says nothing
// about its own request.
func (db *DB) discoverCached(ctx context.Context, backendKey, whereKey string, view source.Relation, target string, candidates, outcomes []string, cfg core.Config) (*core.CDResult, error) {
	key := cdKey(backendKey, whereKey, target, candidates, outcomes, cfg)

	for {
		db.mu.Lock()
		if e, ok := db.cd[key]; ok {
			db.cdHits++
			db.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				// The leader failed and evicted the entry; start over
				// (either becoming the new leader or joining one).
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				continue
			}
			return cloneCD(e.res), nil
		}
		e := &cdEntry{done: make(chan struct{})}
		db.cd[key] = e
		db.cdComputes++
		db.mu.Unlock()

		func() {
			defer func() {
				// Panic safety: waiters must never hang on done or read a
				// half-written entry as a success. Record the panic as the
				// entry's error, release everyone, then re-panic here.
				if r := recover(); r != nil {
					e.err = fmt.Errorf("hypdb: covariate discovery panicked: %v", r)
					db.mu.Lock()
					delete(db.cd, key)
					db.mu.Unlock()
					close(e.done)
					panic(r)
				}
			}()
			e.res, e.err = core.DiscoverCovariates(ctx, view, target, candidates, outcomes, cfg)
			if e.err != nil {
				// Evict before releasing waiters so retries see a fresh slot.
				db.mu.Lock()
				delete(db.cd, key)
				db.mu.Unlock()
			}
			close(e.done)
		}()
		if e.err != nil {
			return nil, e.err
		}
		return cloneCD(e.res), nil
	}
}

// whereKeyOf renders the query's WHERE clause as a stable cache-key part.
// The encoding is injective for the built-in combinators (length-prefixed
// fields, so values containing quotes or separators cannot collide the way
// the display SQL can). User-defined Predicate implementations have no
// canonical encoding — their semantics may be coarser than any rendering —
// so they are reported as uncacheable and the query bypasses the memo.
func whereKeyOf(q Query) (key string, cacheable bool) {
	if q.Where == nil {
		return "", true
	}
	var b strings.Builder
	if !writePredicateKey(&b, q.Where) {
		return "", false
	}
	return b.String(), true
}

func writePredicateKey(b *strings.Builder, p Predicate) bool {
	writeField := func(s string) { fmt.Fprintf(b, "%d:%s", len(s), s) }
	switch v := p.(type) {
	case dataset.In:
		b.WriteString("in(")
		writeField(v.Attr)
		for _, val := range v.Values {
			b.WriteByte(',')
			writeField(val)
		}
		b.WriteByte(')')
	case dataset.Eq:
		b.WriteString("eq(")
		writeField(v.Attr)
		b.WriteByte(',')
		writeField(v.Value)
		b.WriteByte(')')
	case dataset.And:
		b.WriteString("and(")
		for _, child := range v {
			if !writePredicateKey(b, child) {
				return false
			}
		}
		b.WriteByte(')')
	case dataset.Or:
		b.WriteString("or(")
		for _, child := range v {
			if !writePredicateKey(b, child) {
				return false
			}
		}
		b.WriteByte(')')
	case dataset.Not:
		b.WriteString("not(")
		if !writePredicateKey(b, v.Pred) {
			return false
		}
		b.WriteByte(')')
	case dataset.All:
		b.WriteString("all")
	case nil:
		b.WriteString("nil")
	default:
		return false
	}
	return true
}

// cdKey builds the memoization key for one covariate discovery. The
// backend identity leads the key, so cached statistics can never be shared
// across handles over different sources even if cache code is ever hoisted
// out of the per-handle session; every variable-length field is
// length-prefixed, keeping the key injective for any attribute names (the
// same discipline as writePredicateKey).
func cdKey(backend, whereKey, target string, candidates, outcomes []string, cfg core.Config) string {
	var b strings.Builder
	writeField := func(s string) { fmt.Fprintf(&b, "%d:%s", len(s), s) }
	writeList := func(list []string) {
		fmt.Fprintf(&b, "%d[", len(list))
		for _, s := range list {
			writeField(s)
		}
		b.WriteByte(']')
	}
	writeField(backend)
	writeField(whereKey)
	writeField(target)
	writeList(candidates)
	writeList(outcomes)
	// The cube is fingerprinted by identity (%p): distinct cubes over the
	// same table are interchangeable only if built over the same attrs,
	// which identity conservatively under-approximates.
	fmt.Fprintf(&b, "%d|%g|%d|%t|%d|%g|%g|%d|%d|%d|%t|%t|%t|%t|%p|%#v",
		cfg.Method, cfg.Alpha, cfg.Estimator, cfg.EstimatorSet, cfg.Permutations,
		cfg.SampleFactor, cfg.Beta, cfg.Seed, cfg.MaxCondSet, cfg.MaxBoundary,
		cfg.DisableEntropyCache, cfg.DisableMaterialization, cfg.DisableFallback,
		cfg.Parallel, cfg.Cube, cfg.Prepare)
	return b.String()
}

// cloneCD deep-copies a cached CDResult so callers mutating a report cannot
// poison the cache.
func cloneCD(r *core.CDResult) *core.CDResult {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Boundary = append([]string(nil), r.Boundary...)
	cp.Parents = append([]string(nil), r.Parents...)
	cp.CandidateParents = append([]string(nil), r.CandidateParents...)
	if r.Boundaries != nil {
		cp.Boundaries = make(map[string][]string, len(r.Boundaries))
		for k, v := range r.Boundaries {
			cp.Boundaries[k] = append([]string(nil), v...)
		}
	}
	return &cp
}
