package independence

import (
	"context"

	"math"
	"testing"

	"hypdb/internal/stats"
	"hypdb/source/mem"
)

func TestMaterializedProviderMatchesScan(t *testing.T) {
	tab := chainData(t, 600, 20)
	mp, err := NewMaterializedProvider(context.Background(), mem.New(tab), []string{"X", "Y", "Z"}, stats.MillerMadow, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp := relProv(t, tab, stats.MillerMadow)
	for _, sub := range [][]string{{"X"}, {"Y"}, {"Z"}, {"X", "Y"}, {"Y", "Z"}, {"X", "Y", "Z"}} {
		hm, err := mp.JointEntropy(context.Background(), sub)
		if err != nil {
			t.Fatalf("materialized entropy %v: %v", sub, err)
		}
		hs, err := sp.JointEntropy(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hm-hs) > 1e-12 {
			t.Errorf("subset %v: materialized %v != scan %v", sub, hm, hs)
		}
		dm, err := mp.DistinctCount(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sp.DistinctCount(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		if dm != ds {
			t.Errorf("subset %v: materialized distinct %d != scan %d", sub, dm, ds)
		}
	}
	if mp.NumRows() != tab.NumRows() {
		t.Errorf("NumRows = %d, want %d", mp.NumRows(), tab.NumRows())
	}
}

func TestMaterializedProviderCoverage(t *testing.T) {
	tab := chainData(t, 100, 21)
	mp, err := NewMaterializedProvider(context.Background(), mem.New(tab), []string{"X", "Y"}, stats.PlugIn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Covers([]string{"Y", "X"}) {
		t.Error("covered subset rejected")
	}
	if mp.Covers([]string{"Z"}) {
		t.Error("uncovered subset accepted")
	}
	if _, err := mp.JointEntropy(context.Background(), []string{"Z"}); err == nil {
		t.Error("uncovered entropy did not error")
	}
	if _, err := mp.DistinctCount(context.Background(), []string{"X", "Z"}); err == nil {
		t.Error("uncovered distinct did not error")
	}
	// Empty subset conventions.
	if h, err := mp.JointEntropy(context.Background(), nil); err != nil || h != 0 {
		t.Errorf("empty entropy = (%v,%v)", h, err)
	}
	if d, err := mp.DistinctCount(context.Background(), nil); err != nil || d != 1 {
		t.Errorf("empty distinct = (%v,%v)", d, err)
	}
}

func TestMaterializedProviderValidation(t *testing.T) {
	tab := chainData(t, 50, 22)
	if _, err := NewMaterializedProvider(context.Background(), mem.New(tab), nil, stats.PlugIn, 0); err == nil {
		t.Error("empty superset accepted")
	}
	if _, err := NewMaterializedProvider(context.Background(), mem.New(tab), []string{"X", "X"}, stats.PlugIn, 0); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewMaterializedProvider(context.Background(), mem.New(tab), []string{"missing"}, stats.PlugIn, 0); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestChiSquareWithMaterializedProvider(t *testing.T) {
	tab := chainData(t, 900, 23)
	mp, err := NewMaterializedProvider(context.Background(), mem.New(tab), []string{"X", "Y", "Z"}, stats.MillerMadow, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaMat := ChiSquare{Provider: mp, Est: stats.MillerMadow}
	viaScan := ChiSquare{Est: stats.MillerMadow}
	r1, err := viaMat.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := viaScan.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MI != r2.MI || r1.PValue != r2.PValue || r1.DF != r2.DF {
		t.Errorf("materialized test differs: %+v vs %+v", r1, r2)
	}
}
