package dataset

import (
	"fmt"
	"strings"
)

// Predicate is a row filter: the WHERE condition C of the paper's queries.
// Eval returns one bool per row of t.
type Predicate interface {
	Eval(t *Table) ([]bool, error)
	// SQL renders the predicate as a SQL boolean expression, used when the
	// system prints the original and rewritten queries.
	SQL() string
}

// In matches rows whose Attr value is one of Values (SQL: Attr IN (...)).
type In struct {
	Attr   string
	Values []string
}

// Eval implements Predicate.
func (p In) Eval(t *Table) ([]bool, error) {
	c, err := t.Column(p.Attr)
	if err != nil {
		return nil, err
	}
	want := make(map[int32]bool, len(p.Values))
	for _, v := range p.Values {
		if code := c.CodeOf(v); code >= 0 {
			want[code] = true
		}
	}
	out := make([]bool, t.NumRows())
	for i, code := range c.Codes() {
		out[i] = want[code]
	}
	return out, nil
}

// SQL implements Predicate.
func (p In) SQL() string {
	if len(p.Values) == 0 {
		// An empty IN list matches nothing; `Attr IN ()` is not parseable
		// SQL, so render the semantics instead.
		return "FALSE"
	}
	quoted := make([]string, len(p.Values))
	for i, v := range p.Values {
		quoted[i] = sqlString(v)
	}
	return fmt.Sprintf("%s IN (%s)", sqlIdent(p.Attr), strings.Join(quoted, ","))
}

// sqlString renders a value literal, doubling embedded quotes so the text
// round-trips through ParsePredicate.
func sqlString(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// sqlIdent renders an attribute name: bare when it is a plain word that the
// parser would not read as a keyword, double-quoted (with "" escaping)
// otherwise.
func sqlIdent(attr string) string {
	plain := attr != ""
	for _, r := range attr {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '_' || r == '.' || r == '-' || r == '+') {
			plain = false
			break
		}
	}
	switch strings.ToUpper(attr) {
	case "TRUE", "FALSE", "NOT", "AND", "OR", "IN":
		plain = false
	}
	if plain {
		return attr
	}
	return `"` + strings.ReplaceAll(attr, `"`, `""`) + `"`
}

// Eq matches rows with Attr = Value.
type Eq struct {
	Attr  string
	Value string
}

// Eval implements Predicate.
func (p Eq) Eval(t *Table) ([]bool, error) {
	c, err := t.Column(p.Attr)
	if err != nil {
		return nil, err
	}
	code := c.CodeOf(p.Value)
	out := make([]bool, t.NumRows())
	if code < 0 {
		return out, nil
	}
	for i, v := range c.Codes() {
		out[i] = v == code
	}
	return out, nil
}

// SQL implements Predicate.
func (p Eq) SQL() string { return fmt.Sprintf("%s = %s", sqlIdent(p.Attr), sqlString(p.Value)) }

// And is the conjunction of its children. An empty And matches everything
// (SQL: TRUE).
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for i := range out {
		out[i] = true
	}
	for _, child := range p {
		m, err := child.Eval(t)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = out[i] && m[i]
		}
	}
	return out, nil
}

// SQL implements Predicate.
func (p And) SQL() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, child := range p {
		s := child.SQL()
		// A disjunction binds looser than AND: parenthesize it so the
		// rendered text keeps this conjunction's semantics.
		if or, ok := child.(Or); ok && len(or) > 0 {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, " AND ")
}

// Or is the disjunction of its children. An empty Or matches nothing.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for _, child := range p {
		m, err := child.Eval(t)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = out[i] || m[i]
		}
	}
	return out, nil
}

// SQL implements Predicate.
func (p Or) SQL() string {
	if len(p) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(p))
	for i, child := range p {
		parts[i] = "(" + child.SQL() + ")"
	}
	return strings.Join(parts, " OR ")
}

// Not negates its child.
type Not struct{ Pred Predicate }

// Eval implements Predicate.
func (p Not) Eval(t *Table) ([]bool, error) {
	m, err := p.Pred.Eval(t)
	if err != nil {
		return nil, err
	}
	for i := range m {
		m[i] = !m[i]
	}
	return m, nil
}

// SQL implements Predicate.
func (p Not) SQL() string { return "NOT (" + p.Pred.SQL() + ")" }

// All matches every row (no WHERE clause).
type All struct{}

// Eval implements Predicate.
func (All) Eval(t *Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for i := range out {
		out[i] = true
	}
	return out, nil
}

// SQL implements Predicate.
func (All) SQL() string { return "TRUE" }
