// Package cdd implements the baseline causal-DAG discovery methods the
// paper compares against in Sec 7.4: constraint-based structure learning
// over Markov boundaries (Full Grow-Shrink, FGS [28], and IAMB [58]) and
// score-based greedy hill climbing with AIC, BIC and BDeu scores — the
// algorithms the paper ran through R's bnlearn. It also provides the
// parent-recovery F1 metric used in the Fig 5 quality comparison.
package cdd

import (
	"fmt"
	"sort"
)

// PDAG is a partially directed graph: the output of constraint-based
// structure learning, with a mix of directed and undirected edges.
type PDAG struct {
	names []string
	index map[string]int
	// directed[u][v] means u → v; undirected edges are stored in both
	// orientations of adj but neither direction of directed.
	directed map[int]map[int]bool
	adj      map[int]map[int]bool // symmetric adjacency (directed ∪ undirected)
}

// NewPDAG creates an edgeless PDAG over names.
func NewPDAG(names []string) (*PDAG, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cdd: PDAG needs at least one node")
	}
	p := &PDAG{
		names:    append([]string(nil), names...),
		index:    make(map[string]int, len(names)),
		directed: make(map[int]map[int]bool),
		adj:      make(map[int]map[int]bool),
	}
	for i, n := range names {
		if _, dup := p.index[n]; dup {
			return nil, fmt.Errorf("cdd: duplicate node %q", n)
		}
		p.index[n] = i
		p.directed[i] = make(map[int]bool)
		p.adj[i] = make(map[int]bool)
	}
	return p, nil
}

// Names returns the node names. Callers must not mutate.
func (p *PDAG) Names() []string { return p.names }

// Index returns the index of name, or -1.
func (p *PDAG) Index(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	return -1
}

// AddUndirected inserts the undirected edge u–v.
func (p *PDAG) AddUndirected(u, v int) {
	if u == v {
		return
	}
	p.adj[u][v] = true
	p.adj[v][u] = true
}

// Orient turns the edge between u and v into u → v (adding it if absent).
func (p *PDAG) Orient(u, v int) {
	if u == v {
		return
	}
	p.adj[u][v] = true
	p.adj[v][u] = true
	p.directed[u][v] = true
	delete(p.directed[v], u)
}

// Adjacent reports whether u and v share any edge.
func (p *PDAG) Adjacent(u, v int) bool { return p.adj[u][v] }

// HasDirected reports whether u → v.
func (p *PDAG) HasDirected(u, v int) bool { return p.directed[u][v] }

// IsUndirected reports whether u–v exists without orientation.
func (p *PDAG) IsUndirected(u, v int) bool {
	return p.adj[u][v] && !p.directed[u][v] && !p.directed[v][u]
}

// Neighbors returns all nodes adjacent to u, sorted.
func (p *PDAG) NeighborsOf(u int) []int {
	out := make([]int, 0, len(p.adj[u]))
	for v := range p.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Parents returns the names of nodes with a directed edge into the named
// node. Undirected neighbors are not parents.
func (p *PDAG) Parents(name string) ([]string, error) {
	i := p.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("cdd: no node %q", name)
	}
	var out []string
	for u := range p.adj[i] {
		if p.directed[u][i] {
			out = append(out, p.names[u])
		}
	}
	sort.Strings(out)
	return out, nil
}

// NumEdges returns the total number of edges (directed + undirected).
func (p *PDAG) NumEdges() int {
	n := 0
	for u, m := range p.adj {
		for v := range m {
			if u < v {
				n++
			}
		}
	}
	return n
}

// directedPathExists reports a directed path u ⇒ v using only directed
// edges (for Meek rule R2 and acyclicity checks).
func (p *PDAG) directedPathExists(u, v int) bool {
	if u == v {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range p.directed[x] {
			if c == v {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// F1Score compares a predicted attribute set against the ground truth and
// returns precision, recall and F1 (1.0 across the board when both are
// empty — predicting "no parents" for a root is a perfect answer).
func F1Score(predicted, truth []string) (precision, recall, f1 float64) {
	if len(predicted) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	truthSet := make(map[string]bool, len(truth))
	for _, x := range truth {
		truthSet[x] = true
	}
	tp := 0
	for _, x := range predicted {
		if truthSet[x] {
			tp++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	} else if tp == 0 && len(predicted) > 0 {
		recall = 0
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
