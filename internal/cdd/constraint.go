package cdd

import (
	"context"
	"fmt"
	"sort"

	"hypdb/internal/hyperr"
	"hypdb/internal/independence"
	"hypdb/internal/markov"
	"hypdb/source"
)

// BoundaryAlgorithm selects how constraint-based learners compute Markov
// boundaries.
type BoundaryAlgorithm int

const (
	// GrowShrinkBoundary uses the Grow-Shrink algorithm (FGS, [28]).
	GrowShrinkBoundary BoundaryAlgorithm = iota
	// IAMBBoundary uses Incremental Association ([58]).
	IAMBBoundary
)

// ConstraintConfig configures constraint-based structure learning.
type ConstraintConfig struct {
	// Tester decides conditional independence; required.
	Tester independence.Tester
	// Alpha is the significance level; zero means independence.DefaultAlpha.
	Alpha float64
	// Boundary selects the Markov-boundary learner.
	Boundary BoundaryAlgorithm
	// MaxSepSet caps the size of separating sets searched during edge
	// removal and collider detection; zero means no cap.
	MaxSepSet int
}

func (c ConstraintConfig) alpha() float64 {
	if c.Alpha <= 0 {
		return independence.DefaultAlpha
	}
	return c.Alpha
}

// LearnStructure runs the full constraint-based pipeline of the FGS/IAMB
// baselines: (1) learn the Markov boundary of every attribute, (2) resolve
// the underlying undirected graph by searching for separating sets inside
// boundaries, (3) orient v-structures using the recorded separating sets,
// and (4) propagate orientations with Meek's rules. The result is a PDAG;
// its directed edges define each node's predicted parents.
func LearnStructure(ctx context.Context, rel source.Relation, attrs []string, cfg ConstraintConfig) (*PDAG, error) {
	if cfg.Tester == nil {
		return nil, fmt.Errorf("cdd: nil tester")
	}
	if len(attrs) == 0 {
		attrs = rel.Attributes()
	}
	for _, a := range attrs {
		if !rel.HasAttribute(a) {
			return nil, fmt.Errorf("cdd: no column %q: %w", a, hyperr.ErrUnknownAttribute)
		}
	}

	// One shared cached entropy provider for the whole pipeline: boundary
	// learning, separating-set search and collider detection all test over
	// the same relation, so their entropy caches must accumulate rather
	// than reset per call.
	tester, err := independence.SharedProvider(ctx, cfg.Tester, rel)
	if err != nil {
		return nil, err
	}
	cfg.Tester = tester

	// Phase 1: Markov boundaries.
	mbs := make(map[string][]string, len(attrs))
	mcfg := markov.Config{Tester: cfg.Tester, Alpha: cfg.Alpha}
	for _, a := range attrs {
		cands := exclude(attrs, a)
		var (
			mb  []string
			err error
		)
		if cfg.Boundary == IAMBBoundary {
			mb, err = markov.IAMB(ctx, rel, a, cands, mcfg)
		} else {
			mb, err = markov.GrowShrink(ctx, rel, a, cands, mcfg)
		}
		if err != nil {
			return nil, err
		}
		mbs[a] = mb
	}

	p, err := NewPDAG(attrs)
	if err != nil {
		return nil, err
	}

	// Phase 2: adjacency. X–Y is an edge iff Y ∈ MB(X), X ∈ MB(Y), and no
	// subset S of the smaller of MB(X)\{Y}, MB(Y)\{X} separates them.
	// Separating sets are recorded for phase 3.
	sepsets := make(map[[2]int][]string)
	alpha := cfg.alpha()
	for i, x := range attrs {
		for j := i + 1; j < len(attrs); j++ {
			y := attrs[j]
			if !contains(mbs[x], y) || !contains(mbs[y], x) {
				continue
			}
			base := smallerSet(exclude(mbs[x], y), exclude(mbs[y], x))
			sep, s, err := findSeparator(ctx, rel, cfg.Tester, x, y, base, alpha, cfg.MaxSepSet)
			if err != nil {
				return nil, err
			}
			if sep {
				sepsets[pairKey(i, j)] = s
			} else {
				p.AddUndirected(i, j)
			}
		}
	}

	// Phase 3: v-structures. For every non-adjacent pair (X,Z) with common
	// neighbor Y: if Y is absent from their separating set and conditioning
	// on Y creates dependence (the collider signature, cf. condition (a) of
	// Prop 4.1), orient X → Y ← Z. Pairs that were screened out before
	// phase 2 (not in each other's Markov boundary) get their separating
	// set searched here on demand.
	for i := range attrs {
		for j := i + 1; j < len(attrs); j++ {
			if p.Adjacent(i, j) {
				continue
			}
			common := commonNeighbors(p, i, j)
			if len(common) == 0 {
				continue
			}
			x, z := attrs[i], attrs[j]
			s, ok := sepsets[pairKey(i, j)]
			if !ok {
				base := smallerSet(exclude(mbs[x], z), exclude(mbs[z], x))
				sep, found, err := findSeparator(ctx, rel, cfg.Tester, x, z, base, alpha, cfg.MaxSepSet)
				if err != nil {
					return nil, err
				}
				if !sep {
					continue
				}
				s = found
				sepsets[pairKey(i, j)] = s
			}
			for _, y := range common {
				if contains(s, attrs[y]) {
					continue
				}
				// Verify X ⊥̸ Z | S ∪ {Y} before committing the collider.
				cond := append(append([]string(nil), s...), attrs[y])
				res, err := cfg.Tester.Test(ctx, rel, x, z, cond)
				if err != nil {
					return nil, err
				}
				if !independence.Decision(res, alpha) {
					p.Orient(i, y)
					p.Orient(j, y)
				}
			}
		}
	}

	// Phase 4: Meek rules.
	applyMeekRules(p)
	return p, nil
}

// findSeparator searches subsets of base (smallest first) for a set that
// renders x ⊥⊥ y; it returns whether one was found and the set itself.
func findSeparator(ctx context.Context, rel source.Relation, tester independence.Tester, x, y string, base []string, alpha float64, maxSize int) (bool, []string, error) {
	limit := len(base)
	if maxSize > 0 && maxSize < limit {
		limit = maxSize
	}
	for size := 0; size <= limit; size++ {
		found := false
		var sep []string
		err := forEachSubset(base, size, func(s []string) bool {
			res, err := tester.Test(ctx, rel, x, y, s)
			if err != nil {
				return false
			}
			if independence.Decision(res, alpha) {
				found = true
				sep = append([]string(nil), s...)
				return false // stop
			}
			return true
		})
		if err != nil {
			return false, nil, err
		}
		if found {
			return true, sep, nil
		}
	}
	return false, nil, nil
}

// forEachSubset enumerates the size-k subsets of items in lexicographic
// order, invoking f on each; f returning false stops the enumeration.
// An error inside f is surfaced by f storing it; here we keep the simple
// contract that f handles its own errors and signals stop.
func forEachSubset(items []string, k int, f func([]string) bool) error {
	if k > len(items) {
		return nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]string, k)
	for {
		for i, v := range idx {
			buf[i] = items[v]
		}
		if !f(buf) {
			return nil
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(items)-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// applyMeekRules propagates edge orientations (rules R1–R3) until a fixed
// point, never creating directed cycles.
func applyMeekRules(p *PDAG) {
	n := len(p.names)
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b || !p.IsUndirected(a, b) {
					continue
				}
				// R1: c → a, a–b, c and b non-adjacent ⇒ a → b.
				r1 := false
				for c := 0; c < n; c++ {
					if c != b && p.HasDirected(c, a) && !p.Adjacent(c, b) {
						r1 = true
						break
					}
				}
				if r1 {
					p.Orient(a, b)
					changed = true
					continue
				}
				// R2: directed path a ⇒ b exists ⇒ a → b (avoids a cycle).
				if p.directedPathExists(a, b) && a != b {
					hasPath := false
					for c := range p.directed[a] {
						if c == b || p.directedPathExists(c, b) {
							hasPath = true
							break
						}
					}
					if hasPath {
						p.Orient(a, b)
						changed = true
						continue
					}
				}
				// R3: a–c, a–d, c → b, d → b, c,d non-adjacent ⇒ a → b.
				r3 := false
				for c := 0; c < n && !r3; c++ {
					if c == a || c == b || !p.IsUndirected(a, c) || !p.HasDirected(c, b) {
						continue
					}
					for d := c + 1; d < n; d++ {
						if d == a || d == b || !p.IsUndirected(a, d) || !p.HasDirected(d, b) {
							continue
						}
						if !p.Adjacent(c, d) {
							r3 = true
							break
						}
					}
				}
				if r3 {
					p.Orient(a, b)
					changed = true
				}
			}
		}
	}
}

func pairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

func commonNeighbors(p *PDAG, i, j int) []int {
	var out []int
	for _, y := range p.NeighborsOf(i) {
		if p.Adjacent(j, y) {
			out = append(out, y)
		}
	}
	return out
}

func exclude(items []string, drop string) []string {
	out := make([]string, 0, len(items))
	for _, x := range items {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

func contains(items []string, x string) bool {
	for _, v := range items {
		if v == x {
			return true
		}
	}
	return false
}

func smallerSet(a, b []string) []string {
	if len(a) <= len(b) {
		out := append([]string(nil), a...)
		sort.Strings(out)
		return out
	}
	out := append([]string(nil), b...)
	sort.Strings(out)
	return out
}
