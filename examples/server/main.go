// Command server is the hypdbd walkthrough: it starts the HTTP analysis
// service in-process, then drives it through the typed api.Client the way
// an external BI tool would — upload a CSV dataset, analyze the Berkeley
// admissions query, fan a batch through the shared covariate-discovery
// cache, and read the dataset stats back.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Start hypdbd on a loopback port (the binary equivalent:
	//    hypdbd -addr :8080 -request-timeout 2m).
	srv := server.New(server.Config{
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		RequestTimeout: 2 * time.Minute,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	ctx := context.Background()
	c := api.NewClient("http://"+ln.Addr().String(), nil)

	// 2. Upload the Berkeley admissions data as CSV, exactly as
	//    `curl -X POST .../v1/datasets` would.
	tab, err := datagen.Berkeley(1)
	if err != nil {
		return err
	}
	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		return err
	}
	info, err := c.CreateDataset(ctx, "berkeley", csv.String())
	if err != nil {
		return err
	}
	fmt.Printf("uploaded dataset %q: %d rows × %d columns\n\n", info.Name, info.Rows, info.Cols)

	// 3. Analyze the Fig 4 query: does gender cause admission?
	rep, err := c.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		Options: api.Options{Seed: 1},
	})
	if err != nil {
		return err
	}
	fmt.Printf("biased: %v   mediators: %v\n", rep.Biased, rep.Mediators)
	for _, comp := range rep.OriginalComparisons {
		fmt.Printf("SQL answer:     avg(%s)−avg(%s) = %+.4f\n", comp.T1, comp.T0, comp.Diffs[0])
	}
	for _, comp := range rep.DirectComparisons {
		fmt.Printf("direct effect:  avg(%s)−avg(%s) = %+.4f  (mediator distribution held fixed)\n",
			comp.T1, comp.T0, comp.Diffs[0])
	}
	fmt.Println()

	// 4. A batch: per-department drilldowns fan into the session's worker
	//    pool and share its covariate-discovery cache.
	queries := []api.Query{
		{Treatment: "Gender", Outcomes: []string{"Accepted"}},
		{Treatment: "Gender", Outcomes: []string{"Accepted"}, Where: "Department IN ('A','B')"},
		{Treatment: "Gender", Outcomes: []string{"Accepted"}, Where: "Department IN ('C','D','E','F')"},
	}
	reports, err := c.AnalyzeBatch(ctx, api.BatchRequest{
		Dataset: "berkeley",
		Queries: queries,
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err != nil {
		return err
	}
	for i, r := range reports {
		where := queries[i].Where
		if where == "" {
			where = "(all rows)"
		}
		if len(r.OriginalComparisons) == 1 {
			fmt.Printf("batch %d %-40s diff = %+.4f\n", i, where, r.OriginalComparisons[0].Diffs[0])
		}
	}
	fmt.Println()

	// 5. Stats: the repeated full-data query above was answered from the
	//    covariate-discovery cache.
	stats, err := c.Stats(ctx, "berkeley")
	if err != nil {
		return err
	}
	fmt.Printf("analyses served: %d   CD computed: %d   CD cache hits: %d\n",
		stats.Analyses, stats.Cache.CDComputes, stats.Cache.CDHits)
	return nil
}
