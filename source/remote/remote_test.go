package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hypdb/internal/dataset"
	"hypdb/internal/hyperr"
	"hypdb/source"
	"hypdb/source/remote"
)

// fastOpts keeps retry/backoff budgets tiny so fault-injection tests run in
// milliseconds. The health loop is disabled so every call goes to the
// network deterministically.
func fastOpts() remote.Options {
	return remote.Options{
		RequestTimeout: 2 * time.Second,
		MaxRetries:     2,
		RetryBackoff:   time.Millisecond,
		HealthInterval: -1,
	}
}

// schemaResponse is the canned handshake payload every fake peer serves:
// two attributes with two labels each over four rows at version 7.
func schemaResponse() remote.CountsResponse {
	return remote.CountsResponse{
		Version: 7,
		Schema: &remote.Schema{
			Attrs:   []string{"a", "b"},
			Labels:  [][]string{{"x", "y"}, {"u", "v"}},
			Rows:    4,
			Version: 7,
			Backend: "fake",
		},
	}
}

// fakePeer serves the counts endpoint with injectable faults: the first
// failCounts non-handshake requests answer failWith, later ones succeed.
func fakePeer(t *testing.T, failCounts int, failWith func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		var req remote.CountsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		if req.IncludeSchema {
			if err := json.NewEncoder(w).Encode(schemaResponse()); err != nil {
				t.Errorf("encoding handshake: %v", err)
			}
			return
		}
		if int(hits.Add(1)) <= failCounts {
			failWith(w)
			return
		}
		resp := remote.CountsResponse{
			Version: 7,
			Groups:  [][]int32{{0, 0}, {1, 1}},
			Counts:  []int{3, 1},
		}
		if len(req.Attrs) == 1 {
			resp.Groups = [][]int32{{0}, {1}}
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			t.Errorf("encoding response: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &hits
}

func openFake(t *testing.T, srv *httptest.Server, opts remote.Options) *remote.Relation {
	t.Helper()
	rel, err := remote.Open(context.Background(), srv.URL, "D", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { rel.Close() })
	return rel
}

func TestHandshakeSnapshot(t *testing.T) {
	srv, _ := fakePeer(t, 0, nil)
	rel := openFake(t, srv, fastOpts())
	if got := rel.Name(); got != "D" {
		t.Errorf("Name = %q, want D", got)
	}
	if got := rel.Version(); got != 7 {
		t.Errorf("Version = %d, want 7", got)
	}
	if rows, err := rel.NumRows(context.Background()); err != nil || rows != 4 {
		t.Errorf("NumRows = %d, %v; want 4", rows, err)
	}
	labels, err := rel.Labels(context.Background(), "b")
	if err != nil || len(labels) != 2 || labels[0] != "u" {
		t.Errorf("Labels(b) = %v, %v; want [u v]", labels, err)
	}
	if _, err := rel.Labels(context.Background(), "nope"); !errors.Is(err, hyperr.ErrUnknownAttribute) {
		t.Errorf("Labels(nope) error = %v, want ErrUnknownAttribute", err)
	}
	// The backend identity must pin peer, dataset and version so cached
	// statistics never cross epochs.
	if got := rel.Backend(); got != "remote:"+srv.URL+"/D@v7" {
		t.Errorf("Backend = %q", got)
	}
	counts, err := rel.Counts(context.Background(), []string{"a", "b"}, nil)
	if err != nil {
		t.Fatalf("Counts: %v", err)
	}
	if len(counts) != 2 || counts[dataset.EncodeKey(0, 0)] != 3 || counts[dataset.EncodeKey(1, 1)] != 1 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestRetries5xxThenSucceeds(t *testing.T) {
	srv, hits := fakePeer(t, 2, func(w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rel := openFake(t, srv, fastOpts())
	if _, err := rel.Counts(context.Background(), []string{"a", "b"}, nil); err != nil {
		t.Fatalf("Counts after 2×500: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("peer saw %d counts attempts, want 3", got)
	}
	st := rel.Stats()
	if st.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", st.Retries)
	}
	if st.Errors != 0 {
		t.Errorf("Stats.Errors = %d, want 0", st.Errors)
	}
}

func TestRetriesExhaustedIsPeerUnavailable(t *testing.T) {
	srv, hits := fakePeer(t, 1<<30, func(w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rel := openFake(t, srv, fastOpts())
	_, err := rel.Counts(context.Background(), []string{"a"}, nil)
	if !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	if got := hits.Load(); got != 3 { // 1 attempt + MaxRetries(2)
		t.Errorf("peer saw %d attempts, want 3", got)
	}
	st := rel.Stats()
	if st.Errors != 1 || st.Retries != 2 {
		t.Errorf("Stats = %+v, want Errors 1 Retries 2", st)
	}
}

func TestGarbageResponseRetriesThenFails(t *testing.T) {
	srv, hits := fakePeer(t, 1<<30, func(w http.ResponseWriter) {
		w.Write([]byte("<html>not json</html>")) //nolint:errcheck
	})
	rel := openFake(t, srv, fastOpts())
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("peer saw %d attempts, want 3 (garbage bodies are retried)", got)
	}
}

func TestSlowPeerDeadline(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		var req remote.CountsRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		if req.IncludeSchema {
			json.NewEncoder(w).Encode(schemaResponse()) //nolint:errcheck
			return
		}
		hits.Add(1)
		select { // stall past the per-attempt deadline
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	opts := fastOpts()
	opts.RequestTimeout = 30 * time.Millisecond
	rel := openFake(t, srv, opts)
	start := time.Now()
	_, err := rel.Counts(context.Background(), []string{"a"}, nil)
	if !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-bounded call took %s — per-attempt timeouts are not being applied", elapsed)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("peer saw %d attempts, want 3 (timeouts are retried)", got)
	}
}

func TestCallerCancellationIsNotPeerFault(t *testing.T) {
	srv, _ := fakePeer(t, 1<<30, func(w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rel := openFake(t, srv, fastOpts())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rel.Counts(ctx, []string{"a"}, nil)
	if errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("cancellation classified as peer fault: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestVersionSkewFailsClosedWithoutRetry(t *testing.T) {
	srv, hits := fakePeer(t, 1<<30, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":{"code":"version_skew","message":"dataset moved to v8"}}`)) //nolint:errcheck
	})
	rel := openFake(t, srv, fastOpts())
	_, err := rel.Counts(context.Background(), []string{"a"}, nil)
	if !errors.Is(err, hyperr.ErrVersionSkew) {
		t.Fatalf("error = %v, want ErrVersionSkew", err)
	}
	if errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("version skew must not double as peer-unavailable (it would be degraded away): %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("peer saw %d attempts, want 1 (skew is never retried)", got)
	}
}

func TestDeadPeerConnectionRefused(t *testing.T) {
	srv, _ := fakePeer(t, 0, nil)
	rel := openFake(t, srv, fastOpts())
	srv.Close()
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
}

func TestUnhealthyPeerFailsFast(t *testing.T) {
	srv, hits := fakePeer(t, 1<<30, func(w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	opts := fastOpts()
	opts.HealthInterval = time.Hour // loop running, no probe during the test
	rel := openFake(t, srv, opts)
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	before := hits.Load()
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	if got := hits.Load(); got != before {
		t.Errorf("unhealthy peer still saw %d new attempts — calls must fail fast", got-before)
	}
	if st := rel.Stats(); st.Healthy {
		t.Error("Stats.Healthy = true after exhausted retries")
	}
}

func TestBadCodesRejected(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		var req remote.CountsRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		if req.IncludeSchema {
			json.NewEncoder(w).Encode(schemaResponse()) //nolint:errcheck
			return
		}
		// Code 9 is out of range for a two-label dictionary.
		json.NewEncoder(w).Encode(remote.CountsResponse{ //nolint:errcheck
			Version: 7, Groups: [][]int32{{9}}, Counts: []int{1},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	rel := openFake(t, srv, fastOpts())
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); err == nil {
		t.Fatal("out-of-range code accepted")
	}
}

func TestRestrictHandshake(t *testing.T) {
	var restrictSeen atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		var req remote.CountsRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		if req.Restrict != "" {
			restrictSeen.Store(req.Restrict)
		}
		if req.IncludeSchema {
			resp := schemaResponse()
			if req.Restrict != "" { // restricted view: one label of a survives
				resp.Schema.Labels = [][]string{{"x"}, {"u", "v"}}
				resp.Schema.Rows = 2
			}
			json.NewEncoder(w).Encode(resp) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(remote.CountsResponse{ //nolint:errcheck
			Version: 7, Groups: [][]int32{{0}}, Counts: []int{2},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	rel := openFake(t, srv, fastOpts())

	pred, err := dataset.ParsePredicate("a = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rel.Restrict(context.Background(), pred)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if got := restrictSeen.Load(); got != pred.SQL() {
		t.Errorf("peer saw restrict %q, want %q", got, pred.SQL())
	}
	if rows, err := sub.NumRows(context.Background()); err != nil || rows != 2 {
		t.Errorf("restricted NumRows = %d, %v; want 2", rows, err)
	}
	labels, err := sub.Labels(context.Background(), "a")
	if err != nil || len(labels) != 1 || labels[0] != "x" {
		t.Errorf("restricted Labels(a) = %v, %v; want [x] (server-side compaction)", labels, err)
	}
	if sub.Backend() == rel.Backend() {
		t.Error("restricted view shares the root's backend identity")
	}
	var _ = sub.(source.Relation)
}

func TestHealthLoopRecoversPeer(t *testing.T) {
	var down atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{name}/counts", func(w http.ResponseWriter, r *http.Request) {
		var req remote.CountsRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		if down.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if req.IncludeSchema {
			json.NewEncoder(w).Encode(schemaResponse()) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(remote.CountsResponse{ //nolint:errcheck
			Version: 7, Groups: [][]int32{{0}}, Counts: []int{4},
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	opts := fastOpts()
	opts.HealthInterval = 5 * time.Millisecond
	rel := openFake(t, srv, opts)

	down.Store(true)
	if _, err := rel.Counts(context.Background(), []string{"a"}, nil); !errors.Is(err, hyperr.ErrPeerUnavailable) {
		t.Fatalf("error = %v, want ErrPeerUnavailable", err)
	}
	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := rel.Counts(context.Background(), []string{"a"}, nil); err == nil {
			return // the health loop marked the peer healthy again
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("peer never recovered after the health probe target came back")
}
