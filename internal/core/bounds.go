package core

import (
	"context"
	"fmt"

	"hypdb/internal/query"
	"hypdb/source"
)

// BoundsResult brackets the causal effect across candidate adjustment sets.
type BoundsResult struct {
	// Lower and Upper are the minimum and maximum adjusted differences
	// (answer(T1) − answer(T0), first outcome, first context) across all
	// evaluated covariate subsets, including the empty set (the raw
	// difference).
	Lower, Upper float64
	// LowerSet and UpperSet are the subsets attaining the bounds.
	LowerSet, UpperSet []string
	// Sets is the number of adjustment sets evaluated; Skipped counts
	// subsets dropped because overlap failed everywhere.
	Sets    int
	Skipped int
}

// EffectBounds implements the extension the paper sketches at the end of
// Sec 4: when the treatment's parents cannot be identified from data (all
// parents are neighbors, or the Markov equivalence class is ambiguous), one
// can still "compute a set of potential parents of T and use them to
// establish a bound on causal effect" by adjusting for every subset of
// MB(T) − {Y} and reporting the range of estimates.
//
// candidates is typically the treatment's Markov boundary minus the
// outcomes (CDResult.Boundary filtered by the caller); maxSize caps the
// subset size (0 means all sizes). The brackets cover the empty set, so the
// raw (unadjusted) difference is always inside [Lower, Upper].
func EffectBounds(ctx context.Context, rel source.Relation, q query.Query, candidates []string, maxSize int) (*BoundsResult, error) {
	if err := q.Validate(ctx, rel); err != nil {
		return nil, err
	}
	if len(candidates) > 20 {
		return nil, fmt.Errorf("core: %d candidates would enumerate 2^%d adjustment sets; pass maxSize or trim the boundary",
			len(candidates), len(candidates))
	}
	limit := len(candidates)
	if maxSize > 0 && maxSize < limit {
		limit = maxSize
	}

	res := &BoundsResult{}
	consider := func(diff float64, set []string) {
		copySet := append([]string(nil), set...)
		if res.Sets == 0 || diff < res.Lower {
			res.Lower, res.LowerSet = diff, copySet
		}
		if res.Sets == 0 || diff > res.Upper {
			res.Upper, res.UpperSet = diff, copySet
		}
		res.Sets++
	}

	// Empty set: the raw difference.
	ans, err := query.Run(ctx, rel, q)
	if err != nil {
		return nil, err
	}
	comps, err := ans.Compare()
	if err != nil {
		return nil, fmt.Errorf("core: effect bounds need a two-valued treatment: %w", err)
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("core: no comparable context in the query answer")
	}
	consider(comps[0].Diffs[0], nil)

	for size := 1; size <= limit; size++ {
		err := forEachSubsetStr(candidates, size, func(s []string) (bool, error) {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			rw, err := query.RewriteTotal(ctx, rel, q, s)
			if err != nil {
				res.Skipped++ // overlap failure: this adjustment set is unusable
				return true, nil
			}
			rcomps, err := rw.Compare()
			if err != nil || len(rcomps) == 0 {
				res.Skipped++
				return true, nil
			}
			consider(rcomps[0].Diffs[0], s)
			return true, nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
