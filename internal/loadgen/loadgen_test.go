package loadgen

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hypdb/api"
	"hypdb/internal/datagen"
	"hypdb/internal/server"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	// Quantile bounds are bucket upper edges: conservative, never under
	// the true quantile, and max-clamped.
	if p50 := h.Quantile(0.50); p50 < 50*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want a bound in [50ms, 80ms]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want a bound in [99ms, 100ms] (max-clamped)", p99)
	}
	if max := h.Quantile(1.0); max != 100*time.Millisecond {
		t.Errorf("p100 = %v, want the max", max)
	}
	s := h.Summarize()
	if s.Count != 100 || s.MeanMS < 50 || s.MeanMS > 51 {
		t.Errorf("summary = %+v, want count 100 mean ~50.5ms", s)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Summarize().Count != 0 {
		t.Error("empty histogram not zero-valued")
	}
}

// testBed is a hypdbd instance with a sharded berkeley dataset, the shape
// every chaos scenario starts from.
type testBed struct {
	srv  *server.Server
	ts   *httptest.Server
	c    *api.Client
	rows int
}

func newTestBed(t *testing.T, cfg server.Config) *testBed {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := api.NewClient(ts.URL, ts.Client())
	info, err := c.CreateShardedDataset(context.Background(), "berkeley", berkeleyCSV(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	return &testBed{srv: srv, ts: ts, c: c, rows: info.Rows}
}

func berkeleyCSV(t *testing.T) string {
	t.Helper()
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

var defaultQuery = api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}}

// appendBatch is two rows so epoch purity is checkable: any report total
// not landing on a two-row boundary mixed snapshots.
var appendBatch = [][]string{{"Female", "A", "1"}, {"Male", "F", "0"}}

// TestOverloadedMixShedsNotHangs: an analyze/append/metrics mix against a
// deliberately tiny server (one slot, one queue seat, rate limit on)
// sheds loudly, hangs never, and keeps every successful report on one
// snapshot epoch.
func TestOverloadedMixShedsNotHangs(t *testing.T) {
	bed := newTestBed(t, server.Config{
		MaxConcurrentPerDataset: 1,
		MaxQueuedPerDataset:     1,
		// The rate limiter makes shedding deterministic even when every
		// analyze finishes in microseconds: 6 workers comfortably exceed
		// 50 req/s.
		RatePerClient: 50,
		RateBurst:     1,
	})
	r := New(Config{
		Client:            bed.c,
		Dataset:           "berkeley",
		Query:             defaultQuery,
		AppendRows:        appendBatch,
		BaseRows:          bed.rows,
		Workers:           6,
		Duration:          800 * time.Millisecond,
		PerRequestTimeout: 30 * time.Second,
		Mix:               Mix{Analyze: 6, Append: 2, Metrics: 1},
	})
	res := r.Run(context.Background())
	if v := res.Violations(20 * time.Second); len(v) != 0 {
		t.Fatalf("violations: %v (samples: %v)", v, res.ErrorSamples)
	}
	if res.Counts.OK == 0 {
		t.Fatal("no request succeeded under load")
	}
	if res.Counts.Shed == 0 {
		t.Fatal("a one-slot one-seat server under 6 workers shed nothing — admission control inactive?")
	}
	if res.Counts.TypedErrors > 0 || res.Counts.Transport > 0 {
		t.Errorf("unexpected failures: %+v (samples: %v)", res.Counts, res.ErrorSamples)
	}
	if _, ok := res.Latency[OpAnalyze]; !ok {
		t.Error("no analyze latency recorded")
	}
}

// TestFairQueueProtectsLightTenant: a heavy tenant oversubscribes a
// one-slot dataset 8× while a light tenant issues one request at a time.
// The weighted fair queue interleaves per client identity, so the light
// tenant's latency tracks its own (single-file) demand rather than the
// heavy tenant's backlog: every light request succeeds and its p99 stays
// within budget.
func TestFairQueueProtectsLightTenant(t *testing.T) {
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := server.New(server.Config{
		Logger:                  discard,
		MaxConcurrentPerDataset: 1,
		MaxQueuedPerDataset:     -1, // unbounded: isolate fair ordering, not shedding
		Tokens: []server.Token{
			{Secret: "op-secret", Name: "op", Scope: server.ScopeOperator},
			{Secret: "heavy-secret", Name: "heavy", Scope: server.ScopeReader},
			{Secret: "light-secret", Name: "light", Scope: server.ScopeReader},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	op := api.NewClient(ts.URL, ts.Client(), api.WithToken("op-secret"))
	info, err := op.CreateShardedDataset(context.Background(), "berkeley", berkeleyCSV(t), 2)
	if err != nil {
		t.Fatal(err)
	}

	newRunner := func(secret string, workers int) *Runner {
		return New(Config{
			Client:            api.NewClient(ts.URL, ts.Client(), api.WithToken(secret)),
			Dataset:           "berkeley",
			Query:             defaultQuery,
			BaseRows:          info.Rows,
			Workers:           workers,
			Duration:          1200 * time.Millisecond,
			PerRequestTimeout: 30 * time.Second,
			Mix:               Mix{Analyze: 1},
		})
	}
	heavy := newRunner("heavy-secret", 8)
	light := newRunner("light-secret", 1)

	heavyDone := make(chan *Result, 1)
	go func() { heavyDone <- heavy.Run(context.Background()) }()
	lightRes := light.Run(context.Background())
	heavyRes := <-heavyDone

	if heavyRes.Counts.OK == 0 {
		t.Fatal("heavy tenant made no progress")
	}
	c := lightRes.Counts
	if c.OK == 0 {
		t.Fatalf("light tenant starved: %+v (samples: %v)", c, lightRes.ErrorSamples)
	}
	if c.Shed != 0 || c.TypedErrors != 0 || c.Transport != 0 || c.Hung != 0 {
		t.Fatalf("light tenant failed under another tenant's flood: %+v (samples: %v)",
			c, lightRes.ErrorSamples)
	}
	// The budget is deliberately generous for CI noise; without fair
	// queueing the light tenant would instead sit behind the heavy
	// tenant's entire backlog on every single request.
	if p99 := lightRes.Latency[OpAnalyze].P99MS; p99 > 1000 {
		t.Errorf("light tenant p99 = %.1fms under a heavy flood, want within 1000ms budget", p99)
	}
}

// TestMidFlightRestart: the server is stopped and a new incarnation
// recovers the catalog while the load keeps running. Requests during the
// window fail as transport errors — never hangs — and once the load is
// repointed, analyses succeed against the replayed dataset with epoch
// purity intact across the restart.
func TestMidFlightRestart(t *testing.T) {
	dir := t.TempDir()
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))

	boot := func() (*server.Server, *httptest.Server, *api.Client) {
		srv := server.New(server.Config{Logger: discard})
		if err := srv.OpenCatalog(dir); err != nil {
			t.Fatal(err)
		}
		if err := srv.Recover(context.Background()); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, api.NewClient(ts.URL, ts.Client())
	}

	srv1, ts1, c1 := boot()
	info, err := c1.CreateShardedDataset(context.Background(), "berkeley", berkeleyCSV(t), 2)
	if err != nil {
		t.Fatal(err)
	}

	r := New(Config{
		Client:            c1,
		Dataset:           "berkeley",
		Query:             defaultQuery,
		AppendRows:        appendBatch,
		BaseRows:          info.Rows,
		Workers:           4,
		Duration:          1200 * time.Millisecond,
		PerRequestTimeout: 30 * time.Second,
		Mix:               Mix{Analyze: 5, Append: 2},
	})
	done := make(chan *Result, 1)
	go func() { done <- r.Run(context.Background()) }()

	// Kill the first incarnation mid-run, then bring up the successor on
	// the same catalog and repoint the load.
	time.Sleep(400 * time.Millisecond)
	ts1.Close()
	srv1.Close()
	srv2, ts2, c2 := boot()
	t.Cleanup(ts2.Close)
	t.Cleanup(srv2.Close)
	r.SwapClient(c2)

	res := <-done
	if v := res.Violations(20 * time.Second); len(v) != 0 {
		t.Fatalf("violations: %v (samples: %v)", v, res.ErrorSamples)
	}
	if res.Counts.OK == 0 {
		t.Fatal("no request succeeded around the restart")
	}

	// The successor must have replayed the catalog: the dataset is there,
	// and its rows sit on an exact append-batch boundary.
	stats, err := c2.Stats(context.Background(), "berkeley")
	if err != nil {
		t.Fatalf("dataset lost across restart: %v", err)
	}
	if diff := stats.Rows - info.Rows; diff < 0 || diff%len(appendBatch) != 0 {
		t.Fatalf("rows after restart = %d (base %d): journal lost or tore an append", stats.Rows, info.Rows)
	}
}

// TestKilledPeerFailsLoud: analyses against a remote-backed dataset whose
// peer dies mid-run fail with typed or transport errors immediately — no
// request waits out the hang detector.
func TestKilledPeerFailsLoud(t *testing.T) {
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	peer := server.New(server.Config{Shards: 2, Logger: discard})
	peerTS := httptest.NewServer(peer.Handler())
	t.Cleanup(peer.Close)
	tab, err := datagen.Berkeley(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.AddDataset("berkeley", tab); err != nil {
		t.Fatal(err)
	}

	coord := server.New(server.Config{Logger: discard})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)
	t.Cleanup(coord.Close)
	if err := coord.AddRemoteDataset(context.Background(), "berkeley", []string{peerTS.URL}, false); err != nil {
		t.Fatal(err)
	}

	// Rotating WHERE predicates force distinct restriction views, so the
	// run keeps generating real peer traffic instead of replaying one
	// cached cuboid.
	whereQ := func(where string) api.Query {
		return api.Query{Treatment: "Gender", Outcomes: []string{"Accepted"}, Where: where}
	}
	client := api.NewClient(coordTS.URL, coordTS.Client())
	r := New(Config{
		Client:  client,
		Dataset: "berkeley",
		Queries: []api.Query{
			defaultQuery,
			whereQ("Department IN ('A','B')"),
			whereQ("Department IN ('C','D')"),
			whereQ("Department IN ('E','F')"),
		},
		Workers:           3,
		Duration:          1200 * time.Millisecond,
		PerRequestTimeout: 45 * time.Second,
		Mix:               Mix{Analyze: 1},
	})
	done := make(chan *Result, 1)
	go func() { done <- r.Run(context.Background()) }()

	time.Sleep(300 * time.Millisecond)
	peerTS.Close() // the peer drops dead mid-run

	res := <-done
	if res.Counts.Hung > 0 {
		t.Fatalf("requests hung after peer kill: %+v (samples: %v)", res.Counts, res.ErrorSamples)
	}
	if res.Counts.OK == 0 {
		t.Fatal("no analyze succeeded before the peer died")
	}

	// A predicate the coordinator has never seen cannot be served from
	// any cache: it must reach the dead peer and fail loudly — a typed
	// error from the still-alive coordinator, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	_, err = client.Analyze(ctx, api.AnalyzeRequest{
		Dataset: "berkeley",
		Query:   whereQ("Department IN ('A','C','E')"),
		Options: api.Options{Seed: 1, SkipDirect: true},
	})
	if err == nil {
		t.Fatal("fresh-predicate analyze succeeded against a dead peer")
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("fresh-predicate analyze failed untyped: %v", err)
	}
}

// TestSlowLorisDoesNotStarve: a pack of connections dribbling bytes into
// unfinished requests must not keep real traffic from completing.
func TestSlowLorisDoesNotStarve(t *testing.T) {
	bed := newTestBed(t, server.Config{})
	u, err := url.Parse(bed.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := SlowLoris(ctx, u.Host, 16, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	r := New(Config{
		Client:            bed.c,
		Dataset:           "berkeley",
		Query:             defaultQuery,
		Workers:           4,
		Duration:          700 * time.Millisecond,
		PerRequestTimeout: 20 * time.Second,
		Mix:               Mix{Analyze: 4, Metrics: 1},
	})
	res := r.Run(context.Background())
	if v := res.Violations(15 * time.Second); len(v) != 0 {
		t.Fatalf("violations under slow-loris: %v (samples: %v)", v, res.ErrorSamples)
	}
	if res.Counts.OK == 0 {
		t.Fatal("no request completed while slow-loris connections were open")
	}
	if res.Counts.TypedErrors > 0 || res.Counts.Transport > 0 || res.Counts.Hung > 0 {
		t.Errorf("slow-loris bled into real traffic: %+v (samples: %v)", res.Counts, res.ErrorSamples)
	}
}
