package independence

import (
	"context"

	"math"
	"math/rand"
	"strconv"
	"testing"

	"hypdb/internal/dataset"
	"hypdb/internal/stats"
	"hypdb/source/mem"
)

// chainData builds a table with structure X ← Z → Y: X and Y are
// marginally dependent but conditionally independent given Z.
func chainData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("X", "Y", "Z")
	for i := 0; i < n; i++ {
		z := rng.Intn(2)
		x := z
		if rng.Float64() < 0.2 {
			x = 1 - x
		}
		y := z
		if rng.Float64() < 0.2 {
			y = 1 - y
		}
		b.MustAdd(strconv.Itoa(x), strconv.Itoa(y), strconv.Itoa(z))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// independentData builds a table where X, Y, Z are mutually independent.
func independentData(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("X", "Y", "Z")
	for i := 0; i < n; i++ {
		b.MustAdd(strconv.Itoa(rng.Intn(3)), strconv.Itoa(rng.Intn(2)), strconv.Itoa(rng.Intn(2)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func testers(seed int64) map[string]Tester {
	return map[string]Tester{
		"chi2":         ChiSquare{Est: stats.MillerMadow},
		"mit":          MIT{Permutations: 400, Seed: seed, Est: stats.PlugIn},
		"mit-sampling": MIT{Permutations: 400, Seed: seed, Est: stats.PlugIn, SampleGroups: true},
		"mit-parallel": MIT{Permutations: 400, Seed: seed, Est: stats.PlugIn, Parallel: true},
		"hymit":        HyMIT{Permutations: 400, Seed: seed, Est: stats.MillerMadow},
	}
}

func TestAllTestersDetectMarginalDependence(t *testing.T) {
	tab := chainData(t, 2000, 1)
	for name, ts := range testers(7) {
		res, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PValue > 0.01 {
			t.Errorf("%s: X,Y marginally dependent but p = %v", name, res.PValue)
		}
		if res.MI <= 0 {
			t.Errorf("%s: MI = %v, want > 0", name, res.MI)
		}
	}
}

func TestAllTestersAcceptConditionalIndependence(t *testing.T) {
	tab := chainData(t, 2000, 2)
	for name, ts := range testers(8) {
		res, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PValue < 0.01 {
			t.Errorf("%s: X⊥Y|Z should hold but p = %v (MI=%v)", name, res.PValue, res.MI)
		}
	}
}

func TestAllTestersAcceptIndependence(t *testing.T) {
	tab := independentData(t, 2000, 3)
	for name, ts := range testers(9) {
		res, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PValue < 0.01 {
			t.Errorf("%s: independent X,Y rejected with p = %v", name, res.PValue)
		}
	}
}

func TestMITDeterministicAcrossParallel(t *testing.T) {
	tab := chainData(t, 800, 4)
	seq := MIT{Permutations: 300, Seed: 42, Est: stats.PlugIn}
	par := MIT{Permutations: 300, Seed: 42, Est: stats.PlugIn, Parallel: true}
	// Sequential and parallel use different replicate seeding, so exact
	// p-value equality is only guaranteed within each mode.
	r1, err := seq.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := seq.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PValue != r2.PValue {
		t.Errorf("sequential MIT not deterministic: %v vs %v", r1.PValue, r2.PValue)
	}
	p1, err := par.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := par.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if p1.PValue != p2.PValue {
		t.Errorf("parallel MIT not deterministic: %v vs %v", p1.PValue, p2.PValue)
	}
}

func TestMITAgreesWithShuffle(t *testing.T) {
	// MIT samples from the same null distribution the naive shuffle does;
	// their p-values on the same data must be close.
	tab := chainData(t, 400, 5)
	mit := MIT{Permutations: 600, Seed: 10, Est: stats.PlugIn}
	shf := Shuffle{Permutations: 600, Seed: 11, Est: stats.PlugIn}
	for _, z := range [][]string{nil, {"Z"}} {
		rm, err := mit.Test(context.Background(), mem.New(tab), "X", "Y", z)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := shf.Test(context.Background(), mem.New(tab), "X", "Y", z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rm.PValue-rs.PValue) > 0.08 {
			t.Errorf("z=%v: MIT p=%v vs shuffle p=%v differ beyond Monte-Carlo error",
				z, rm.PValue, rs.PValue)
		}
		if math.Abs(rm.MI-rs.MI) > 1e-9 {
			t.Errorf("z=%v: observed statistics differ: %v vs %v", z, rm.MI, rs.MI)
		}
	}
}

func TestMITPValueCIReported(t *testing.T) {
	tab := independentData(t, 500, 6)
	res, err := MIT{Permutations: 200, Seed: 1, Est: stats.PlugIn}.Test(context.Background(), mem.New(tab), "X", "Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.BinomialCI(res.PValue, 200)
	if math.Abs(res.PValueCI-want) > 1e-12 {
		t.Errorf("PValueCI = %v, want %v", res.PValueCI, want)
	}
}

func TestHyMITBranchSelection(t *testing.T) {
	// Large n, tiny df ⇒ chi2 branch.
	big := chainData(t, 3000, 7)
	res, err := HyMIT{Permutations: 100, Seed: 1, Est: stats.MillerMadow}.Test(context.Background(), mem.New(big), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "hymit(chi2)" {
		t.Errorf("large-sample branch = %q, want hymit(chi2)", res.Method)
	}
	// Tiny n with a wide conditioning set ⇒ MIT branch.
	rng := rand.New(rand.NewSource(8))
	b := dataset.NewBuilder("X", "Y", "A", "B", "C")
	for i := 0; i < 40; i++ {
		b.MustAdd(strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(4)),
			strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(4)))
	}
	small, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	res, err = HyMIT{Permutations: 100, Seed: 1}.Test(context.Background(), mem.New(small), "X", "Y", []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "hymit(mit)" {
		t.Errorf("sparse branch = %q, want hymit(mit)", res.Method)
	}
}

func TestDegenerateConstantColumn(t *testing.T) {
	b := dataset.NewBuilder("X", "Y")
	for i := 0; i < 50; i++ {
		b.MustAdd("same", strconv.Itoa(i%2))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	for name, ts := range testers(1) {
		res, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", nil)
		if err != nil {
			t.Fatalf("%s: constant column should not error: %v", name, err)
		}
		if res.PValue < 0.99 {
			t.Errorf("%s: constant X should be independent of everything, p = %v", name, res.PValue)
		}
	}
}

func TestInputValidation(t *testing.T) {
	tab := independentData(t, 50, 9)
	for name, ts := range testers(2) {
		if _, err := ts.Test(context.Background(), mem.New(tab), "X", "X", nil); err == nil {
			t.Errorf("%s: self-test accepted", name)
		}
		if _, err := ts.Test(context.Background(), mem.New(tab), "X", "missing", nil); err == nil {
			t.Errorf("%s: missing column accepted", name)
		}
		if _, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", []string{"X"}); err == nil {
			t.Errorf("%s: conditioning on tested attribute accepted", name)
		}
		if _, err := ts.Test(context.Background(), mem.New(tab), "X", "Y", []string{"missing"}); err == nil {
			t.Errorf("%s: missing conditioning attribute accepted", name)
		}
	}
}

func TestMITGroupSamplingStillDetectsDependence(t *testing.T) {
	// Many conditioning groups; sampling must keep the signal. Build
	// X = Y (strong dependence) within every group of a 3-attribute Z.
	rng := rand.New(rand.NewSource(10))
	b := dataset.NewBuilder("X", "Y", "Z1", "Z2", "Z3")
	for i := 0; i < 4000; i++ {
		x := rng.Intn(2)
		y := x
		if rng.Float64() < 0.1 {
			y = 1 - y
		}
		b.MustAdd(strconv.Itoa(x), strconv.Itoa(y),
			strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(4)))
	}
	tab, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MIT{Permutations: 300, Seed: 3, SampleGroups: true, Est: stats.PlugIn}.
		Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z1", "Z2", "Z3"})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.01 {
		t.Errorf("group-sampled MIT missed strong dependence: p = %v", res.PValue)
	}
	if res.Groups >= 64 {
		t.Errorf("group sampling kept %d groups, expected a strict subset", res.Groups)
	}
}

func TestCachedProvider(t *testing.T) {
	tab := chainData(t, 500, 11)
	cached := NewCachedProvider(relProv(t, tab, stats.MillerMadow))
	h1, err := cached.JointEntropy(context.Background(), []string{"X", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	// Attribute order must not matter for the cache or the value.
	h2, err := cached.JointEntropy(context.Background(), []string{"Z", "X"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("entropy depends on attribute order: %v vs %v", h1, h2)
	}
	hits, misses := cached.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = (%d hits, %d misses), want (1,1)", hits, misses)
	}
	if _, err := cached.DistinctCount(context.Background(), []string{"X"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.DistinctCount(context.Background(), []string{"X"}); err != nil {
		t.Fatal(err)
	}
	hits, _ = cached.Stats()
	if hits != 2 {
		t.Errorf("distinct-count cache not hit: hits = %d", hits)
	}
	if cached.NumRows() != tab.NumRows() {
		t.Errorf("NumRows = %d, want %d", cached.NumRows(), tab.NumRows())
	}
}

func TestChiSquareWithCachedProviderMatchesScan(t *testing.T) {
	tab := chainData(t, 800, 12)
	scan := ChiSquare{Est: stats.MillerMadow}
	cached := ChiSquare{Provider: NewCachedProvider(relProv(t, tab, stats.MillerMadow)), Est: stats.MillerMadow}
	r1, err := scan.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cached.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MI != r2.MI || r1.PValue != r2.PValue || r1.DF != r2.DF {
		t.Errorf("cached result differs: %+v vs %+v", r1, r2)
	}
}

func TestCounter(t *testing.T) {
	tab := independentData(t, 100, 13)
	c := &Counter{Inner: ChiSquare{Est: stats.PlugIn}}
	for i := 0; i < 3; i++ {
		if _, err := c.Test(context.Background(), mem.New(tab), "X", "Y", nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Calls() != 3 {
		t.Errorf("Calls = %d, want 3", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Errorf("Calls after Reset = %d, want 0", c.Calls())
	}
}

func TestDecision(t *testing.T) {
	if Decision(Result{PValue: 0.5}, 0.01) != true {
		t.Error("p=0.5 should be independent at α=0.01")
	}
	if Decision(Result{PValue: 0.001}, 0.01) != false {
		t.Error("p=0.001 should be dependent at α=0.01")
	}
}

func TestShuffleDetectsAndAccepts(t *testing.T) {
	tab := chainData(t, 300, 14)
	s := Shuffle{Permutations: 300, Seed: 15, Est: stats.PlugIn}
	dep, err := s.Test(context.Background(), mem.New(tab), "X", "Y", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dep.PValue > 0.01 {
		t.Errorf("shuffle missed dependence: p = %v", dep.PValue)
	}
	ind, err := s.Test(context.Background(), mem.New(tab), "X", "Y", []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if ind.PValue < 0.01 {
		t.Errorf("shuffle rejected conditional independence: p = %v", ind.PValue)
	}
}

func TestMITCalibrationUnderNull(t *testing.T) {
	// p-values under the null should be roughly uniform: rejection rate at
	// α=0.1 near 10%.
	rejected := 0
	trials := 120
	for tr := 0; tr < trials; tr++ {
		tab := independentData(t, 200, int64(100+tr))
		res, err := MIT{Permutations: 200, Seed: int64(tr), Est: stats.PlugIn}.Test(context.Background(), mem.New(tab), "X", "Y", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.1 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate > 0.2 {
		t.Errorf("MIT null rejection rate at α=0.1 is %v, want ≲0.1 (anti-conservative)", rate)
	}
}
