package datagen

import (
	"context"

	"testing"

	"hypdb/internal/core"
	"hypdb/internal/dataset"
	"hypdb/source/mem"
)

// conditional computes P(b=bv | a=av) on the table.
func conditional(t *testing.T, tab *dataset.Table, a, av, b, bv string) float64 {
	t.Helper()
	ac, err := tab.Column(a)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := tab.Column(b)
	if err != nil {
		t.Fatal(err)
	}
	num, den := 0, 0
	for i := 0; i < tab.NumRows(); i++ {
		if ac.Value(i) != av {
			continue
		}
		den++
		if bc.Value(i) == bv {
			num++
		}
	}
	if den == 0 {
		t.Fatalf("no rows with %s=%s", a, av)
	}
	return float64(num) / float64(den)
}

// TestFlightConfoundingStructure checks the distributions behind Fig 1(b):
// AA concentrates at the low-delay airports, UA at high-delay ROC.
func TestFlightConfoundingStructure(t *testing.T) {
	tab, err := Flight(30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	view, err := tab.Select(dataset.And{
		dataset.In{Attr: "Carrier", Values: []string{"AA", "UA"}},
		dataset.In{Attr: "Airport", Values: []string{"COS", "MFE", "MTJ", "ROC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := conditional(t, view, "Carrier", "AA", "Airport", "COS"); p < 0.25 {
		t.Errorf("P(COS|AA) = %v, want AA concentrated at COS", p)
	}
	if p := conditional(t, view, "Carrier", "UA", "Airport", "ROC"); p < 0.45 {
		t.Errorf("P(ROC|UA) = %v, want UA concentrated at ROC", p)
	}
	if p := conditional(t, view, "Carrier", "AA", "Airport", "ROC"); p > 0.15 {
		t.Errorf("P(ROC|AA) = %v, want AA rare at ROC", p)
	}
	// ROC must be the high-delay airport, COS the low-delay one.
	rocDelay := conditional(t, view, "Airport", "ROC", "Delayed", "1")
	cosDelay := conditional(t, view, "Airport", "COS", "Delayed", "1")
	if rocDelay <= cosDelay+0.1 {
		t.Errorf("delay rates ROC=%v COS=%v, want a clear gap", rocDelay, cosDelay)
	}
}

// TestFlightLogicalDependenciesAreDropped runs the Sec 4 preparation on
// FlightData and verifies the planted FDs and keys are all caught.
func TestFlightLogicalDependenciesAreDropped(t *testing.T) {
	tab, err := Flight(20000, 8)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []string{"FlightID", "FlightNum", "TailNum", "CarrierCode",
		"Airport", "AirportWAC", "AirportCity", "Year", "Month"}
	kept, dropped, err := core.PrepareCandidates(context.Background(), mem.New(tab), "Carrier", candidates, core.PrepareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantDropped := []string{"FlightID", "FlightNum", "TailNum", "CarrierCode", "AirportWAC", "AirportCity"}
	droppedSet := map[string]bool{}
	for _, d := range dropped {
		droppedSet[d.Attr] = true
	}
	for _, w := range wantDropped {
		if !droppedSet[w] {
			t.Errorf("%s not dropped (dropped: %v)", w, dropped)
		}
	}
	for _, k := range []string{"Airport", "Year", "Month"} {
		found := false
		for _, x := range kept {
			if x == k {
				found = true
			}
		}
		if !found {
			t.Errorf("genuine attribute %s wrongly dropped", k)
		}
	}
}

// TestFlightCDFindsAirportAndYear: end-to-end covariate discovery on the
// flight generator must recover the planted confounders.
func TestFlightCDFindsAirportAndYear(t *testing.T) {
	tab, err := Flight(FlightRows, 9)
	if err != nil {
		t.Fatal(err)
	}
	view, err := tab.Select(FlightQuery().Where)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict candidates to the causal core to keep the test fast; the
	// full 101-column pass is exercised by cmd/experiments fig1.
	cands := []string{"Airport", "Year", "Month", "DayOfWeek", "DayofMonth", "Dest", "DepTimeBlk", "Delayed"}
	res, err := core.DiscoverCovariates(context.Background(), mem.New(view), "Carrier", cands, []string{"Delayed"},
		core.Config{Method: core.ChiSquaredMethod, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range res.Parents {
		got[p] = true
	}
	if !got["Airport"] || !got["Year"] {
		t.Errorf("Parents(Carrier) = %v, want Airport and Year", res.Parents)
	}
	if got["Delayed"] {
		t.Errorf("outcome leaked into covariates: %v", res.Parents)
	}
}
