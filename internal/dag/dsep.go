package dag

import (
	"context"

	"fmt"

	"hypdb/internal/independence"
	"hypdb/source"
)

// DSeparated reports whether every node of xs is d-separated from every
// node of ys given the evidence set zs (X ⊥⊥_d Y | Z, Appendix 10.1). It
// uses the standard active-trail reachability algorithm (Bayes-ball).
func (g *DAG) DSeparated(xs, ys, zs []int) bool {
	inZ := make([]bool, len(g.names))
	for _, z := range zs {
		inZ[z] = true
	}
	inY := make([]bool, len(g.names))
	for _, y := range ys {
		inY[y] = true
	}
	// A node "unblocks" a collider when it or one of its descendants is in
	// Z, i.e. when it is an ancestor of Z.
	anc := g.Ancestors(zs)

	for _, x := range xs {
		if inZ[x] {
			continue // conditioning on x blocks all trails through it
		}
		if g.reachableHitsY(x, inZ, anc, inY) {
			return false
		}
	}
	return true
}

// DSeparatedNames is DSeparated over node names.
func (g *DAG) DSeparatedNames(xs, ys, zs []string) (bool, error) {
	xi, err := g.indices(xs)
	if err != nil {
		return false, err
	}
	yi, err := g.indices(ys)
	if err != nil {
		return false, err
	}
	zi, err := g.indices(zs)
	if err != nil {
		return false, err
	}
	return g.DSeparated(xi, yi, zi), nil
}

func (g *DAG) indices(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = g.Index(n)
		if out[i] < 0 {
			return nil, fmt.Errorf("dag: no node %q", n)
		}
	}
	return out, nil
}

// reachableHitsY runs the active-trail BFS from x and reports whether any
// node of Y is reachable. Search states are (node, direction): direction
// "up" means the trail arrived at the node from one of its children (the
// trail points into the node's parents side), "down" means it arrived from
// a parent.
func (g *DAG) reachableHitsY(x int, inZ []bool, ancZ map[int]bool, inY []bool) bool {
	const (
		up   = 0 // arrived from a child (can continue to parents and children)
		down = 1 // arrived from a parent (collider rules apply)
	)
	type state struct{ node, dir int }
	visited := make(map[state]bool)
	queue := []state{{x, up}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if visited[s] {
			continue
		}
		visited[s] = true
		y, d := s.node, s.dir
		if !inZ[y] && inY[y] && y != x {
			return true
		}
		if d == up && !inZ[y] {
			for _, p := range g.parents[y] {
				queue = append(queue, state{p, up})
			}
			for _, c := range g.children[y] {
				queue = append(queue, state{c, down})
			}
		} else if d == down {
			if !inZ[y] {
				// Chain: continue downstream.
				for _, c := range g.children[y] {
					queue = append(queue, state{c, down})
				}
			}
			if ancZ[y] {
				// Collider at y is unblocked (y or a descendant is in Z):
				// the trail may turn back up into y's parents.
				for _, p := range g.parents[y] {
					queue = append(queue, state{p, up})
				}
			}
		}
	}
	return false
}

// Oracle is an independence.Tester backed by d-separation on a known DAG.
// It answers exactly (p-value 0 or 1) and ignores the data argument; it
// exists so that discovery algorithms (Grow-Shrink, IAMB, CD) can be tested
// against ground truth without statistical noise, and to label the
// ground-truth independence relations for the Fig 8(a) accuracy experiment.
type Oracle struct {
	G *DAG
}

// Test implements independence.Tester.
func (o Oracle) Test(_ context.Context, _ source.Relation, x, y string, z []string) (independence.Result, error) {
	sep, err := o.G.DSeparatedNames([]string{x}, []string{y}, z)
	if err != nil {
		return independence.Result{}, err
	}
	if sep {
		return independence.Result{MI: 0, PValue: 1, Method: "d-separation"}, nil
	}
	return independence.Result{MI: 1, PValue: 0, Method: "d-separation"}, nil
}
