package dag

import (
	"context"

	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// fig2DAG builds the example DAG of Fig 2 in the paper:
// Z → T, W → T, T → Y, T → C, D → C (D a parent of T's child, not of T).
func fig2DAG(t *testing.T) *DAG {
	t.Helper()
	g := MustNew("Z", "W", "T", "Y", "C", "D")
	for _, e := range [][2]string{{"Z", "T"}, {"W", "T"}, {"T", "Y"}, {"T", "C"}, {"D", "C"}} {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty DAG accepted")
	}
	if _, err := New("A", "A"); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := MustNew("A", "B", "C")
	if err := g.AddEdge("A", "A"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge("A", "missing"); err == nil {
		t.Error("missing target accepted")
	}
	if err := g.AddEdge("missing", "A"); err == nil {
		t.Error("missing source accepted")
	}
	g.MustAddEdge("A", "B")
	if err := g.AddEdge("A", "B"); err == nil {
		t.Error("duplicate edge accepted")
	}
	g.MustAddEdge("B", "C")
	if err := g.AddEdge("C", "A"); err == nil {
		t.Error("cycle accepted")
	}
}

func TestParentsChildrenNeighbors(t *testing.T) {
	g := fig2DAG(t)
	ti := g.Index("T")
	wantParents := []int{g.Index("Z"), g.Index("W")}
	gotParents := append([]int(nil), g.Parents(ti)...)
	if !sameSet(gotParents, wantParents) {
		t.Errorf("Parents(T) = %v, want %v", gotParents, wantParents)
	}
	pn, err := g.ParentNames("T")
	if err != nil {
		t.Fatal(err)
	}
	if !sameStringSet(pn, []string{"Z", "W"}) {
		t.Errorf("ParentNames(T) = %v", pn)
	}
	if !g.Neighbors(g.Index("Z"), ti) || g.Neighbors(g.Index("Z"), g.Index("W")) {
		t.Error("Neighbors wrong")
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	if _, err := g.ParentNames("missing"); err == nil {
		t.Error("missing node accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	g := fig2DAG(t)
	order := g.TopoOrder()
	if len(order) != g.NumNodes() {
		t.Fatalf("topo order has %d nodes, want %d", len(order), g.NumNodes())
	}
	pos := make(map[int]int)
	for i, x := range order {
		pos[x] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := fig2DAG(t)
	anc := g.Ancestors([]int{g.Index("C")})
	for _, n := range []string{"C", "T", "Z", "W", "D"} {
		if !anc[g.Index(n)] {
			t.Errorf("%s missing from Ancestors(C)", n)
		}
	}
	if anc[g.Index("Y")] {
		t.Error("Y wrongly in Ancestors(C)")
	}
	desc := g.Descendants(g.Index("T"))
	for _, n := range []string{"T", "Y", "C"} {
		if !desc[g.Index(n)] {
			t.Errorf("%s missing from Descendants(T)", n)
		}
	}
	if desc[g.Index("Z")] {
		t.Error("Z wrongly in Descendants(T)")
	}
}

func TestMarkovBoundary(t *testing.T) {
	g := fig2DAG(t)
	mb, err := g.MarkovBoundaryNames("T")
	if err != nil {
		t.Fatal(err)
	}
	// Parents Z,W; children Y,C; spouse D.
	if !sameStringSet(mb, []string{"Z", "W", "Y", "C", "D"}) {
		t.Errorf("MB(T) = %v, want {Z W Y C D}", mb)
	}
	mb, err = g.MarkovBoundaryNames("D")
	if err != nil {
		t.Fatal(err)
	}
	if !sameStringSet(mb, []string{"C", "T"}) {
		t.Errorf("MB(D) = %v, want {C T}", mb)
	}
	if _, err := g.MarkovBoundaryNames("missing"); err == nil {
		t.Error("missing node accepted")
	}
}

func TestDSeparationChainForkCollider(t *testing.T) {
	// Chain A → B → C.
	chain := MustNew("A", "B", "C")
	chain.MustAddEdge("A", "B")
	chain.MustAddEdge("B", "C")
	assertDSep(t, chain, "A", "C", nil, false)          // open chain
	assertDSep(t, chain, "A", "C", []string{"B"}, true) // blocked by B

	// Fork A ← B → C.
	fork := MustNew("A", "B", "C")
	fork.MustAddEdge("B", "A")
	fork.MustAddEdge("B", "C")
	assertDSep(t, fork, "A", "C", nil, false)
	assertDSep(t, fork, "A", "C", []string{"B"}, true)

	// Collider A → B ← C.
	col := MustNew("A", "B", "C", "D")
	col.MustAddEdge("A", "B")
	col.MustAddEdge("C", "B")
	col.MustAddEdge("B", "D")
	assertDSep(t, col, "A", "C", nil, true)            // blocked collider
	assertDSep(t, col, "A", "C", []string{"B"}, false) // conditioning opens it
	assertDSep(t, col, "A", "C", []string{"D"}, false) // descendant opens it too
	assertDSep(t, col, "A", "C", []string{"B", "D"}, false)
}

func TestDSeparationFig2(t *testing.T) {
	g := fig2DAG(t)
	// Z ⊥ W marginally; Z ⊥̸ W | T (T is a collider between its parents).
	assertDSep(t, g, "Z", "W", nil, true)
	assertDSep(t, g, "Z", "W", []string{"T"}, false)
	// D ⊥ W marginally; D ⊥̸ W | T is false? T is a collider on the path
	// W → T → C ← D: conditioning on T does not open C. But conditioning on
	// C does: W → T → C ← D with C observed and T observed... Check the
	// paper's claim: (D ⊥ W) and (D ⊥̸ W | T).
	assertDSep(t, g, "D", "W", nil, true)
	// Path W → T → C ← D: given T, the chain at T is blocked... The paper
	// states D ⊥̸ W | T cannot come from this path; it comes from W → T → C ← D
	// where conditioning on T leaves the collider C closed. Indeed the
	// dependence the paper refers to arises when conditioning on T because
	// T is a DESCENDANT-side: actually (a) in Prop 4.1 uses
	// (Z ⊥ W | S) ∧ (Z ⊥̸ W | S ∪ {T}) with a path where T is the collider:
	// W → T ← Z. For D: D → C ← T with W ∗→ T: conditioning on C (a
	// descendant of T... no. Verify with the oracle: D ⊥̸ W | C holds
	// because C is a collider between D and T, and T is reached from W.
	assertDSep(t, g, "D", "W", []string{"C"}, false)
	// Y ⊥ Z | T: conditioning on T blocks the only path.
	assertDSep(t, g, "Y", "Z", []string{"T"}, true)
	assertDSep(t, g, "Y", "Z", nil, false)
}

// The paper's CancerData example (Ex 10.1): Smoking is a collider between
// Peer_Pressure and Anxiety; conditioning on it creates dependence.
func TestDSeparationBerksonExample(t *testing.T) {
	g := MustNew("Anxiety", "Peer_Pressure", "Smoking")
	g.MustAddEdge("Anxiety", "Smoking")
	g.MustAddEdge("Peer_Pressure", "Smoking")
	assertDSep(t, g, "Anxiety", "Peer_Pressure", nil, true)
	assertDSep(t, g, "Anxiety", "Peer_Pressure", []string{"Smoking"}, false)
}

func TestDSeparationConditioningOnEndpoint(t *testing.T) {
	g := MustNew("A", "B")
	g.MustAddEdge("A", "B")
	// Conditioning on A itself: trails out of A are blocked.
	sep, err := g.DSeparatedNames([]string{"A"}, []string{"B"}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if !sep {
		t.Error("conditioning on the endpoint should block everything")
	}
	if _, err := g.DSeparatedNames([]string{"missing"}, []string{"B"}, nil); err == nil {
		t.Error("missing node accepted")
	}
}

func TestOracle(t *testing.T) {
	g := fig2DAG(t)
	o := Oracle{G: g}
	res, err := o.Test(context.Background(), nil, "Z", "W", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Errorf("oracle p(Z,W) = %v, want 1", res.PValue)
	}
	res, err = o.Test(context.Background(), nil, "Z", "W", []string{"T"})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 0 {
		t.Errorf("oracle p(Z,W|T) = %v, want 0", res.PValue)
	}
	if _, err := o.Test(context.Background(), nil, "Z", "missing", nil); err == nil {
		t.Error("missing node accepted")
	}
}

func TestRandomDAGAcyclicAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 16, 32} {
		g, err := RandomDAG(rng, n, 0.2)
		if err != nil {
			t.Fatalf("RandomDAG(%d): %v", n, err)
		}
		if g.NumNodes() != n {
			t.Errorf("nodes = %d, want %d", g.NumNodes(), n)
		}
		if len(g.TopoOrder()) != n {
			t.Errorf("n=%d: topo order incomplete — cycle present", n)
		}
	}
	if _, err := RandomDAG(rng, 0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomDAG(rng, 3, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestRandomDAGAvgDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 16
	trials := 200
	totalEdges := 0
	for i := 0; i < trials; i++ {
		g, err := RandomDAGAvgDegree(rng, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		totalEdges += g.NumEdges()
	}
	avgDeg := 2 * float64(totalEdges) / float64(trials) / float64(n)
	if avgDeg < 2.5 || avgDeg > 3.5 {
		t.Errorf("average degree = %v, want ≈3", avgDeg)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := fig2DAG(t)
	c := g.Clone()
	c.MustAddEdge("Z", "Y")
	if g.HasEdge(g.Index("Z"), g.Index("Y")) {
		t.Error("clone mutation leaked into original")
	}
}

// Property: random DAGs are acyclic and every reported edge respects
// adjacency bookkeeping.
func TestQuickRandomDAGInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g, err := RandomDAG(r, n, r.Float64())
		if err != nil {
			return false
		}
		if len(g.TopoOrder()) != n {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
			found := false
			for _, p := range g.Parents(e[1]) {
				if p == e[0] {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: d-separation is symmetric in its first two arguments.
func TestQuickDSeparationSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g, err := RandomDAG(r, n, 0.3)
		if err != nil {
			return false
		}
		x := r.Intn(n)
		y := r.Intn(n)
		for y == x {
			y = r.Intn(n)
		}
		var z []int
		for i := 0; i < n; i++ {
			if i != x && i != y && r.Intn(3) == 0 {
				z = append(z, i)
			}
		}
		return g.DSeparated([]int{x}, []int{y}, z) == g.DSeparated([]int{y}, []int{x}, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func assertDSep(t *testing.T, g *DAG, x, y string, z []string, want bool) {
	t.Helper()
	got, err := g.DSeparatedNames([]string{x}, []string{y}, z)
	if err != nil {
		t.Fatalf("DSeparatedNames(%s,%s|%v): %v", x, y, z, err)
	}
	if got != want {
		t.Errorf("DSeparated(%s,%s|%v) = %v, want %v", x, y, z, got, want)
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool)
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool)
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func TestEdgesDeterministic(t *testing.T) {
	g := fig2DAG(t)
	e1 := g.Edges()
	e2 := g.Edges()
	if !reflect.DeepEqual(e1, e2) {
		t.Error("Edges not deterministic")
	}
}
